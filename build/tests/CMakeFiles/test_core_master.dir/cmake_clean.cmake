file(REMOVE_RECURSE
  "CMakeFiles/test_core_master.dir/core_master_test.cpp.o"
  "CMakeFiles/test_core_master.dir/core_master_test.cpp.o.d"
  "test_core_master"
  "test_core_master.pdb"
  "test_core_master[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_master.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
