#include "obs/provenance.hpp"

#include <algorithm>
#include <set>
#include <utility>

#include "common/strings.hpp"

namespace excovery::obs {

namespace {

/// The event type the recorder logs when an SD agent reports a discovery
/// (sd::events::kServiceAdd; spelled out here so obs does not depend on the
/// sd layer).
constexpr std::string_view kServiceAddEvent = "sd_service_add";

}  // namespace

std::string describe(const sim::LineageLog& log,
                     const sim::LineageEvent& event) {
  std::string out(log.name(event.label));
  const std::string_view peer = log.name(event.peer);
  if (!peer.empty() && peer != log.name(event.node)) {
    if (!out.empty()) out += ' ';
    out += peer;
  }
  if (event.kind == sim::LineageKind::kQuery) {
    out += strings::format(" round %llu",
                           static_cast<unsigned long long>(event.uid));
  }
  return out;
}

std::vector<CriticalPath> extract_critical_paths(const sim::LineageLog& log) {
  const std::vector<sim::LineageEvent>& events = log.events();
  std::vector<CriticalPath> out;
  // First discovery per (node, instance); later re-reports (e.g. a refresh
  // after a cache expiry) are not *the* discovery being attributed.
  std::set<std::pair<std::uint16_t, std::uint16_t>> seen;
  for (const sim::LineageEvent& event : events) {
    if (event.kind != sim::LineageKind::kSdEvent) continue;
    if (log.name(event.label) != kServiceAddEvent) continue;
    if (!seen.insert({event.node, event.peer}).second) continue;

    // Walk the parent chain to the root.  Parents always have smaller ids
    // (they were recorded first), so the walk terminates; the bound check
    // guards against a graph truncated by a mid-run enable.
    std::vector<const sim::LineageEvent*> chain;
    const sim::LineageEvent* current = &event;
    for (;;) {
      chain.push_back(current);
      if (current->parent == 0 || current->parent >= current->id) break;
      if (current->parent > events.size()) break;
      current = &events[current->parent - 1];
    }
    std::reverse(chain.begin(), chain.end());

    CriticalPath path;
    path.node = std::string(log.name(event.node));
    path.instance = std::string(log.name(event.peer));
    path.found_ns = event.ts_ns;
    path.total_ns = event.ts_ns - chain.front()->ts_ns;
    path.steps.reserve(chain.size());
    for (std::size_t i = 0; i < chain.size(); ++i) {
      ProvenanceStep step;
      step.kind = std::string(to_string(chain[i]->kind));
      step.node = std::string(log.name(chain[i]->node));
      step.detail = describe(log, *chain[i]);
      step.t_ns = chain[i]->ts_ns;
      step.latency_ns = i == 0 ? 0 : chain[i]->ts_ns - chain[i - 1]->ts_ns;
      path.steps.push_back(std::move(step));
    }
    out.push_back(std::move(path));
  }
  return out;
}

void ProvenanceLedger::record_run(std::int64_t run_id,
                                  const std::vector<CriticalPath>& paths) {
  std::lock_guard lock(mutex_);
  for (std::size_t p = 0; p < paths.size(); ++p) {
    const CriticalPath& path = paths[p];
    for (std::size_t s = 0; s < path.steps.size(); ++s) {
      const ProvenanceStep& step = path.steps[s];
      storage::ProvenanceRow row;
      row.run_id = run_id;
      row.path = static_cast<std::int64_t>(p);
      row.seq = static_cast<std::int64_t>(s);
      row.kind = step.kind;
      row.node_id = step.node;
      row.detail = step.detail;
      row.time = static_cast<double>(step.t_ns) / 1e9;
      row.latency = static_cast<double>(step.latency_ns) / 1e9;
      rows_.push_back(std::move(row));
    }
  }
}

std::vector<storage::ProvenanceRow> ProvenanceLedger::sorted() const {
  std::vector<storage::ProvenanceRow> out;
  {
    std::lock_guard lock(mutex_);
    out = rows_;
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const storage::ProvenanceRow& a,
                      const storage::ProvenanceRow& b) {
                     if (a.run_id != b.run_id) return a.run_id < b.run_id;
                     if (a.path != b.path) return a.path < b.path;
                     return a.seq < b.seq;
                   });
  return out;
}

std::size_t ProvenanceLedger::size() const {
  std::lock_guard lock(mutex_);
  return rows_.size();
}

}  // namespace excovery::obs
