// ExperimentService behaviour (DESIGN.md §14): memoization layers
// (memory LRU, disk CAS), single-flight dedup of concurrent identical
// submissions, admission control at the configured queue depth, and the
// central invariant that cache hits are byte-identical to fresh
// simulations.  Runs under TSan in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <thread>
#include <vector>

#include "core/canonical.hpp"
#include "core/master.hpp"
#include "core/platform.hpp"
#include "core/scenario.hpp"
#include "core/service.hpp"
#include "obs/obs.hpp"
#include "storage/repository.hpp"

namespace excovery::core {
namespace {

namespace fs = std::filesystem;

/// Unique scratch directory per test, removed on destruction.
struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("excovery-service-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter++));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  static inline int counter = 0;
};

/// A small but real campaign; distinct `seed`s give distinct digests.
Submission small_submission(std::uint64_t seed = 1) {
  scenario::TwoPartyOptions options;
  options.replications = 2;
  options.environment_count = 1;
  options.deadline_s = 5.0;
  options.seed = seed;
  Result<ExperimentDescription> description =
      scenario::two_party_sd(options);
  EXPECT_TRUE(description.ok());
  Submission submission;
  submission.description = std::move(description).value();
  submission.scope.platform_seed = 77;
  return submission;
}

Bytes bytes_of(const storage::ExperimentPackage& package) {
  return package.database().serialize();
}

TEST(ExperimentService, MissThenMemoryHitIsByteIdentical) {
  const Submission submission = small_submission();
  ExperimentService::Config config;
  config.workers = 1;
  ExperimentService service(std::move(config));

  const ServiceReply first = service.submit(submission);
  ASSERT_TRUE(first.status.ok()) << first.status.error().to_string();
  EXPECT_EQ(first.outcome, SubmitOutcome::kSimulated);
  EXPECT_EQ(first.digest, submission.digest());
  ASSERT_NE(first.package, nullptr);

  const ServiceReply second = service.submit(submission);
  EXPECT_EQ(second.outcome, SubmitOutcome::kMemoryHit);
  ASSERT_NE(second.package, nullptr);
  EXPECT_EQ(second.package.get(), first.package.get());  // aliases the cache

  // The answer-invisibility invariant: a fresh, independent simulation of
  // the same campaign produces the exact bytes the cache served.
  Result<net::Topology> topology =
      scenario::topology_for(submission.description,
                             submission.scope.topology);
  ASSERT_TRUE(topology.ok());
  SimPlatformConfig platform_config;
  platform_config.topology = std::move(topology).value();
  platform_config.seed = submission.scope.platform_seed;
  Result<std::unique_ptr<SimPlatform>> platform = SimPlatform::create(
      submission.description, std::move(platform_config));
  ASSERT_TRUE(platform.ok());
  MasterOptions master_options;
  master_options.max_attempts_per_run =
      submission.scope.max_attempts_per_run;
  master_options.run_watchdog = submission.scope.run_watchdog;
  master_options.settle = submission.scope.settle;
  ExperiMaster master(submission.description, *platform.value(),
                      std::move(master_options));
  Result<storage::ExperimentPackage> fresh = master.execute();
  ASSERT_TRUE(fresh.ok());
  EXPECT_EQ(bytes_of(fresh.value()), bytes_of(*second.package));

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.simulations, 1u);
  EXPECT_EQ(stats.memory_hits, 1u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST(ExperimentService, ConcurrentIdenticalSubmissionsSimulateOnce) {
  constexpr int kClients = 4;
  ExperimentService* service_ptr = nullptr;

  ExperimentService::Config config;
  config.workers = 2;
  // Hold the one admitted simulation until all other clients have arrived
  // and coalesced onto its flight — making the dedup window deterministic.
  config.before_simulate = [&](const std::string&) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (service_ptr->stats().coalesced <
               static_cast<std::uint64_t>(kClients - 1) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  };
  ExperimentService service(std::move(config));
  service_ptr = &service;

  const Submission submission = small_submission();
  std::vector<ServiceReply> replies(kClients);
  {
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (int i = 0; i < kClients; ++i) {
      clients.emplace_back(
          [&, i] { replies[i] = service.submit(submission); });
    }
    for (std::thread& t : clients) t.join();
  }

  int simulated = 0;
  int coalesced = 0;
  for (const ServiceReply& reply : replies) {
    ASSERT_TRUE(reply.status.ok()) << reply.status.error().to_string();
    ASSERT_NE(reply.package, nullptr);
    // Single flight: everyone shares the one simulated package object.
    EXPECT_EQ(reply.package.get(), replies[0].package.get());
    if (reply.outcome == SubmitOutcome::kSimulated) ++simulated;
    if (reply.outcome == SubmitOutcome::kCoalesced) ++coalesced;
  }
  EXPECT_EQ(simulated, 1);
  EXPECT_EQ(coalesced, kClients - 1);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.simulations, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.coalesced, static_cast<std::uint64_t>(kClients - 1));
}

TEST(ExperimentService, DistinctSubmissionsSimulateInParallel) {
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  int in_flight = 0;

  ExperimentService::Config config;
  config.workers = 2;
  // Each simulation waits until BOTH are inside the hook: only true
  // parallel execution of distinct digests lets the test get past this.
  config.before_simulate = [&](const std::string&) {
    std::unique_lock lock(gate_mutex);
    ++in_flight;
    gate_cv.notify_all();
    gate_cv.wait_for(lock, std::chrono::seconds(30),
                     [&] { return in_flight >= 2; });
  };
  ExperimentService service(std::move(config));

  auto a = service.submit_async(small_submission(1));
  auto b = service.submit_async(small_submission(2));
  const ServiceReply reply_a = a.get();
  const ServiceReply reply_b = b.get();

  EXPECT_EQ(reply_a.outcome, SubmitOutcome::kSimulated);
  EXPECT_EQ(reply_b.outcome, SubmitOutcome::kSimulated);
  EXPECT_NE(reply_a.digest, reply_b.digest);
  {
    std::lock_guard lock(gate_mutex);
    EXPECT_EQ(in_flight, 2);
  }
  EXPECT_EQ(service.stats().simulations, 2u);
}

TEST(ExperimentService, AdmissionControlRejectsDeterministicallyAtDepth) {
  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool released = false;

  ExperimentService::Config config;
  config.workers = 1;
  config.max_queue_depth = 2;
  config.before_simulate = [&](const std::string&) {
    std::unique_lock lock(gate_mutex);
    gate_cv.wait_for(lock, std::chrono::seconds(30), [&] { return released; });
  };
  ExperimentService service(std::move(config));

  // Two distinct misses fill the admitted depth (one running-but-held, one
  // queued behind the single worker); the third must be rejected.
  auto first = service.submit_async(small_submission(1));
  auto second = service.submit_async(small_submission(2));
  const ServiceReply rejected = service.submit(small_submission(3));
  EXPECT_EQ(rejected.outcome, SubmitOutcome::kRejected);
  EXPECT_EQ(rejected.package, nullptr);
  ASSERT_FALSE(rejected.status.ok());
  EXPECT_EQ(rejected.status.error().code(), ErrorCode::kState);

  // An identical resubmission coalesces instead of being rejected: single
  // flight takes precedence over admission control.
  auto coalesced = service.submit_async(small_submission(1));

  {
    std::lock_guard lock(gate_mutex);
    released = true;
  }
  gate_cv.notify_all();

  EXPECT_EQ(first.get().outcome, SubmitOutcome::kSimulated);
  EXPECT_EQ(second.get().outcome, SubmitOutcome::kSimulated);
  EXPECT_EQ(coalesced.get().outcome, SubmitOutcome::kSimulated);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.simulations, 2u);
  EXPECT_EQ(stats.coalesced, 1u);
  EXPECT_EQ(stats.queue_depth, 0u);

  // With the queue drained, the same submission is admitted again — here
  // it hits the cache outright.
  EXPECT_EQ(service.submit(small_submission(3)).outcome,
            SubmitOutcome::kSimulated);
}

TEST(ExperimentService, DiskHitAcrossServiceInstancesIsByteIdentical) {
  TempDir dir;
  Result<storage::Repository> repo =
      storage::Repository::open(dir.path.string());
  ASSERT_TRUE(repo.ok());

  const Submission submission = small_submission();
  Bytes fresh_bytes;
  {
    ExperimentService::Config config;
    config.workers = 1;
    config.repository = &repo.value();
    ExperimentService service(std::move(config));
    const ServiceReply reply = service.submit(submission);
    ASSERT_EQ(reply.outcome, SubmitOutcome::kSimulated);
    fresh_bytes = bytes_of(*reply.package);
    EXPECT_TRUE(repo.value().contains_hash(reply.digest));
  }

  // A brand-new service with no memory cache must answer from disk.
  ExperimentService::Config config;
  config.workers = 1;
  config.memory_cache_capacity = 0;
  config.repository = &repo.value();
  ExperimentService service(std::move(config));
  const ServiceReply reply = service.submit(submission);
  EXPECT_EQ(reply.outcome, SubmitOutcome::kDiskHit);
  ASSERT_NE(reply.package, nullptr);
  EXPECT_EQ(bytes_of(*reply.package), fresh_bytes);
  EXPECT_EQ(service.memory_cache_size(), 0u);  // capacity 0 stays empty
  EXPECT_EQ(service.stats().disk_hits, 1u);
  EXPECT_EQ(service.stats().simulations, 0u);
}

TEST(ExperimentService, CorruptCasEntryDegradesToMiss) {
  TempDir dir;
  Result<storage::Repository> repo =
      storage::Repository::open(dir.path.string());
  ASSERT_TRUE(repo.ok());

  const Submission submission = small_submission();
  const std::string digest = submission.digest();
  Bytes fresh_bytes;
  {
    ExperimentService::Config config;
    config.workers = 1;
    config.repository = &repo.value();
    ExperimentService service(std::move(config));
    const ServiceReply reply = service.submit(submission);
    ASSERT_EQ(reply.outcome, SubmitOutcome::kSimulated);
    fresh_bytes = bytes_of(*reply.package);
  }

  // Truncate the stored package behind the repository's back.
  const fs::path cas_file =
      dir.path / storage::Repository::cas_relative_path(digest);
  ASSERT_TRUE(fs::exists(cas_file));
  std::ofstream(cas_file, std::ios::binary | std::ios::trunc) << "garbage";

  ExperimentService::Config config;
  config.workers = 1;
  config.memory_cache_capacity = 0;
  config.repository = &repo.value();
  ExperimentService service(std::move(config));
  const ServiceReply reply = service.submit(submission);
  // The unreadable entry degrades to a re-simulation, not a failure, and
  // the re-simulated package is still the canonical bytes.
  EXPECT_EQ(reply.outcome, SubmitOutcome::kSimulated);
  ASSERT_NE(reply.package, nullptr);
  EXPECT_EQ(bytes_of(*reply.package), fresh_bytes);
}

TEST(ExperimentService, LruEvictsLeastRecentlyUsed) {
  ExperimentService::Config config;
  config.workers = 1;
  config.memory_cache_capacity = 1;
  ExperimentService service(std::move(config));

  EXPECT_EQ(service.submit(small_submission(1)).outcome,
            SubmitOutcome::kSimulated);
  EXPECT_EQ(service.submit(small_submission(2)).outcome,
            SubmitOutcome::kSimulated);
  EXPECT_EQ(service.memory_cache_size(), 1u);
  // Campaign 2 occupies the single slot; campaign 1 was evicted and must
  // re-simulate, while 2 still hits.
  EXPECT_EQ(service.submit(small_submission(2)).outcome,
            SubmitOutcome::kMemoryHit);
  EXPECT_EQ(service.submit(small_submission(1)).outcome,
            SubmitOutcome::kSimulated);
  EXPECT_EQ(service.stats().simulations, 3u);
}

TEST(ExperimentService, FailingSimulationReportsFailure) {
  Submission submission = small_submission();
  // An action the interpreter does not know makes every attempt fail.
  ASSERT_FALSE(submission.description.actor_processes.empty());
  ASSERT_FALSE(submission.description.actor_processes[0].actions.empty());
  submission.description.actor_processes[0].actions[0].name =
      "no_such_action";
  submission.scope.max_attempts_per_run = 1;

  ExperimentService::Config config;
  config.workers = 1;
  ExperimentService service(std::move(config));
  const ServiceReply reply = service.submit(submission);
  EXPECT_EQ(reply.outcome, SubmitOutcome::kFailed);
  EXPECT_EQ(reply.package, nullptr);
  EXPECT_FALSE(reply.status.ok());
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.failures, 1u);
  EXPECT_EQ(stats.simulations, 0u);
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST(ExperimentService, MetricsMirrorCacheBehaviour) {
  obs::ObsContext obs;
  ExperimentService::Config config;
  config.workers = 1;
  config.max_queue_depth = 1;
  config.obs = &obs;

  std::mutex gate_mutex;
  std::condition_variable gate_cv;
  bool released = false;
  config.before_simulate = [&](const std::string&) {
    std::unique_lock lock(gate_mutex);
    gate_cv.wait_for(lock, std::chrono::seconds(30), [&] { return released; });
  };
  ExperimentService service(std::move(config));

  auto miss = service.submit_async(small_submission(1));
  const ServiceReply rejected = service.submit(small_submission(2));
  EXPECT_EQ(rejected.outcome, SubmitOutcome::kRejected);
  {
    std::lock_guard lock(gate_mutex);
    released = true;
  }
  gate_cv.notify_all();
  ASSERT_TRUE(miss.get().status.ok());
  EXPECT_EQ(service.submit(small_submission(1)).outcome,
            SubmitOutcome::kMemoryHit);

  obs::MetricsRegistry& registry = obs.registry();
  const auto cell = [&](const char* name) {
    return obs.merged_cell(
        registry.counter(name, obs::MetricDomain::kWall));
  };
  EXPECT_EQ(cell("cache.hit").count, 1u);
  EXPECT_EQ(cell("cache.miss").count, 1u);
  EXPECT_EQ(cell("queue.rejected").count, 1u);
  const obs::MetricCell depth = obs.merged_cell(
      registry.gauge("queue.depth", obs::MetricDomain::kWall));
  EXPECT_TRUE(depth.gauge_set);
  EXPECT_EQ(depth.gauge_last, 0);  // drained
  EXPECT_GE(depth.gauge_max, 1);
}

}  // namespace
}  // namespace excovery::core
