// Fig. 4 — "Rudimentary experiment description with informative parameters
// about discovery process": two abstract nodes A and B plus the
// sd_architecture / sd_protocol / sd_comm key-value parameters.
//
// Regenerated from running code: the document is built through the public
// API, serialised (printed for comparison with the paper's listing),
// re-parsed, schema-validated and checked for round-trip fidelity.
#include "bench_common.hpp"
#include "xml/parser.hpp"

using namespace excovery;

int main() {
  bench::banner("bench_fig04_description",
                "Fig. 4: rudimentary experiment description");

  core::ExperimentDescription description;
  description.name = "sd-experiment";
  description.seed = 1;
  description.abstract_nodes = {"A", "B"};
  description.info_params["sd_architecture"] = Value{"two-party"};
  description.info_params["sd_protocol"] = Value{"mdns"};
  description.info_params["sd_comm"] = Value{"active"};

  std::string xml_text = description.to_xml_text();
  std::printf("\n%s\n", xml_text.c_str());

  core::ExperimentDescription reparsed = bench::must(
      core::ExperimentDescription::parse(xml_text), "reparse");
  bool identical = reparsed.to_xml_text() == xml_text;

  xml::Document doc = bench::must(xml::parse(xml_text), "parse");
  Status schema_ok = core::description_schema().validate(doc.root());

  std::printf("round trip identical: %s\n", identical ? "yes" : "NO");
  std::printf("schema validation:    %s\n",
              schema_ok.ok() ? "ok" : schema_ok.error().to_string().c_str());
  std::printf("informative params:   sd_architecture=%s sd_protocol=%s "
              "sd_comm=%s\n",
              reparsed.info("sd_architecture").c_str(),
              reparsed.info("sd_protocol").c_str(),
              reparsed.info("sd_comm").c_str());
  return identical && schema_ok.ok() ? 0 : 1;
}
