#include "storage/table.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <numeric>

namespace excovery::storage {

namespace {

// Value type discriminators reused as cell-key tags (the key identity must
// match Value equality, which compares the type index first).
constexpr std::uint8_t kKeyNull = static_cast<std::uint8_t>(ValueType::kNull);
constexpr std::uint8_t kKeyBool = static_cast<std::uint8_t>(ValueType::kBool);
constexpr std::uint8_t kKeyInt = static_cast<std::uint8_t>(ValueType::kInt);
constexpr std::uint8_t kKeyDouble =
    static_cast<std::uint8_t>(ValueType::kDouble);
constexpr std::uint8_t kKeyString =
    static_cast<std::uint8_t>(ValueType::kString);

std::uint64_t splitmix64(std::uint64_t x) noexcept {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Canonical bit image of a double cell: -0.0 folds onto 0.0 so the key
/// relation matches IEEE (and Value) equality.
std::uint64_t double_bits(double d) noexcept {
  if (d == 0.0) d = 0.0;
  return std::bit_cast<std::uint64_t>(d);
}

}  // namespace

std::optional<std::size_t> TableSchema::column_index(
    std::string_view name) const {
  for (std::size_t i = 0; i < columns.size(); ++i) {
    if (columns[i].name == name) return i;
  }
  return std::nullopt;
}

// ---- RowView ---------------------------------------------------------------

std::size_t RowView::size() const noexcept {
  return table_->schema_.columns.size();
}

bool RowView::is_null(std::size_t column) const {
  const Table::ColumnStore& store = table_->columns_[column];
  switch (store.kind) {
    case Table::ColumnKind::kInt64:
    case Table::ColumnKind::kFloat64:
    case Table::ColumnKind::kBool:
      return store.tags[row_] == Table::kTagNull;
    case Table::ColumnKind::kString:
      return store.str[row_] == Table::kNullStringId;
    case Table::ColumnKind::kGeneric:
      return store.generic[row_].is_null();
  }
  return true;
}

Value RowView::operator[](std::size_t column) const {
  return table_->cell_value(column, row_);
}

Row RowView::materialize() const {
  Row out;
  out.reserve(size());
  for (std::size_t c = 0; c < size(); ++c) out.push_back((*this)[c]);
  return out;
}

std::int64_t RowView::as_int(std::size_t column) const {
  const Table::ColumnStore& store = table_->columns_[column];
  assert(store.kind == Table::ColumnKind::kInt64 &&
         store.tags[row_] == Table::kTagValue);
  return store.i64[row_];
}

double RowView::as_double(std::size_t column) const {
  const Table::ColumnStore& store = table_->columns_[column];
  if (store.kind == Table::ColumnKind::kFloat64) {
    assert(store.tags[row_] != Table::kTagNull);
    // The f64 lane always carries the widened value, also for int cells.
    return store.f64[row_];
  }
  assert(store.kind == Table::ColumnKind::kInt64 &&
         store.tags[row_] == Table::kTagValue);
  return static_cast<double>(store.i64[row_]);
}

bool RowView::as_bool(std::size_t column) const {
  const Table::ColumnStore& store = table_->columns_[column];
  assert(store.kind == Table::ColumnKind::kBool &&
         store.tags[row_] == Table::kTagValue);
  return store.b8[row_] != 0;
}

std::string_view RowView::as_string(std::size_t column) const {
  const Table::ColumnStore& store = table_->columns_[column];
  assert(store.kind == Table::ColumnKind::kString &&
         store.str[row_] != Table::kNullStringId);
  return table_->pool_[store.str[row_]];
}

const Bytes& RowView::as_bytes(std::size_t column) const {
  const Table::ColumnStore& store = table_->columns_[column];
  assert(store.kind == Table::ColumnKind::kGeneric);
  return store.generic[row_].as_bytes();
}

// ---- Table -----------------------------------------------------------------

std::size_t Table::CellKeyHash::operator()(const CellKey& key) const noexcept {
  return static_cast<std::size_t>(
      splitmix64(key.bits ^ (static_cast<std::uint64_t>(key.tag) << 56)));
}

Table::ColumnKind Table::kind_for(ValueType type) noexcept {
  switch (type) {
    case ValueType::kInt: return ColumnKind::kInt64;
    case ValueType::kDouble: return ColumnKind::kFloat64;
    case ValueType::kBool: return ColumnKind::kBool;
    case ValueType::kString: return ColumnKind::kString;
    default: return ColumnKind::kGeneric;
  }
}

Table::Table(TableSchema schema) : schema_(std::move(schema)) {
  columns_.resize(schema_.columns.size());
  for (std::size_t c = 0; c < schema_.columns.size(); ++c) {
    columns_[c].kind = kind_for(schema_.columns[c].type);
  }
}

std::uint32_t Table::intern(std::string_view text) {
  auto it = pool_ids_.find(std::string(text));
  if (it != pool_ids_.end()) return it->second;
  auto id = static_cast<std::uint32_t>(pool_.size());
  pool_.emplace_back(text);
  pool_ids_.emplace(pool_.back(), id);
  return id;
}

Status Table::insert(Row row) {
  if (row.size() != schema_.columns.size()) {
    return err_invalid("table '" + schema_.name + "': row arity " +
                       std::to_string(row.size()) + " != " +
                       std::to_string(schema_.columns.size()));
  }
  for (std::size_t i = 0; i < row.size(); ++i) {
    const Column& column = schema_.columns[i];
    if (row[i].is_null()) {
      if (!column.nullable) {
        return err_invalid("table '" + schema_.name + "': column '" +
                           column.name + "' is not nullable");
      }
      continue;
    }
    // Int is acceptable where double is declared (numeric widening).
    if (row[i].type() != column.type &&
        !(column.type == ValueType::kDouble && row[i].is_int())) {
      return err_invalid(
          "table '" + schema_.name + "': column '" + column.name +
          "' expects " + std::string(to_string(column.type)) + ", got " +
          std::string(to_string(row[i].type())));
    }
  }
  const auto row_id = static_cast<std::uint32_t>(row_count_);
  for (std::size_t c = 0; c < row.size(); ++c) {
    ColumnStore& store = columns_[c];
    Value& cell = row[c];
    switch (store.kind) {
      case ColumnKind::kInt64:
        store.tags.push_back(cell.is_null() ? kTagNull : kTagValue);
        store.i64.push_back(cell.is_null() ? 0 : cell.as_int());
        break;
      case ColumnKind::kFloat64:
        if (cell.is_null()) {
          store.tags.push_back(kTagNull);
          store.i64.push_back(0);
          store.f64.push_back(0.0);
        } else if (cell.is_int()) {
          // The cell stays an int Value (exact round-trip, type-first
          // ordering); the f64 lane carries the widened reading.
          store.tags.push_back(kTagValue);
          store.i64.push_back(cell.as_int());
          store.f64.push_back(static_cast<double>(cell.as_int()));
        } else {
          store.tags.push_back(kTagDouble);
          store.i64.push_back(0);
          store.f64.push_back(cell.as_double());
        }
        break;
      case ColumnKind::kBool:
        store.tags.push_back(cell.is_null() ? kTagNull : kTagValue);
        store.b8.push_back(!cell.is_null() && cell.as_bool() ? 1 : 0);
        break;
      case ColumnKind::kString:
        store.str.push_back(cell.is_null() ? kNullStringId
                                           : intern(cell.as_string()));
        break;
      case ColumnKind::kGeneric:
        store.generic.push_back(std::move(cell));
        break;
    }
    // Keep a built hash index current; drop the sort cache.
    if (store.hash_index) {
      (*store.hash_index)[key_at(store, row_id)].push_back(row_id);
    }
    store.sort_permutation.reset();
  }
  ++row_count_;
  return {};
}

Value Table::cell_value(std::size_t column, std::uint32_t row) const {
  const ColumnStore& store = columns_[column];
  switch (store.kind) {
    case ColumnKind::kInt64:
      if (store.tags[row] == kTagNull) return Value{};
      return Value{store.i64[row]};
    case ColumnKind::kFloat64:
      if (store.tags[row] == kTagNull) return Value{};
      if (store.tags[row] == kTagValue) return Value{store.i64[row]};
      return Value{store.f64[row]};
    case ColumnKind::kBool:
      if (store.tags[row] == kTagNull) return Value{};
      return Value{store.b8[row] != 0};
    case ColumnKind::kString:
      if (store.str[row] == kNullStringId) return Value{};
      return Value{pool_[store.str[row]]};
    case ColumnKind::kGeneric:
      return store.generic[row];
  }
  return Value{};
}

Table::CellKey Table::key_at(const ColumnStore& store,
                             std::uint32_t row) const {
  switch (store.kind) {
    case ColumnKind::kInt64:
      if (store.tags[row] == kTagNull) return {kKeyNull, 0};
      return {kKeyInt, static_cast<std::uint64_t>(store.i64[row])};
    case ColumnKind::kFloat64:
      if (store.tags[row] == kTagNull) return {kKeyNull, 0};
      if (store.tags[row] == kTagValue) {
        return {kKeyInt, static_cast<std::uint64_t>(store.i64[row])};
      }
      return {kKeyDouble, double_bits(store.f64[row])};
    case ColumnKind::kBool:
      if (store.tags[row] == kTagNull) return {kKeyNull, 0};
      return {kKeyBool, store.b8[row] != 0 ? 1u : 0u};
    case ColumnKind::kString:
      if (store.str[row] == kNullStringId) return {kKeyNull, 0};
      return {kKeyString, store.str[row]};
    case ColumnKind::kGeneric:
      break;  // generic columns are never hash-indexed
  }
  assert(false);
  return {};
}

std::optional<Table::CellKey> Table::probe_key(const ColumnStore& store,
                                               const Value& value) const {
  if (value.is_null()) return CellKey{kKeyNull, 0};
  switch (store.kind) {
    case ColumnKind::kInt64:
      if (value.is_int()) {
        return CellKey{kKeyInt, static_cast<std::uint64_t>(value.as_int())};
      }
      return std::nullopt;
    case ColumnKind::kFloat64:
      if (value.is_int()) {
        return CellKey{kKeyInt, static_cast<std::uint64_t>(value.as_int())};
      }
      if (value.is_double()) {
        double d = value.as_double();
        if (std::isnan(d)) return std::nullopt;  // NaN equals nothing
        return CellKey{kKeyDouble, double_bits(d)};
      }
      return std::nullopt;
    case ColumnKind::kBool:
      if (value.is_bool()) {
        return CellKey{kKeyBool, value.as_bool() ? 1u : 0u};
      }
      return std::nullopt;
    case ColumnKind::kString: {
      if (!value.is_string()) return std::nullopt;
      auto it = pool_ids_.find(value.as_string());
      if (it == pool_ids_.end()) return std::nullopt;  // never interned
      return CellKey{kKeyString, it->second};
    }
    case ColumnKind::kGeneric:
      break;
  }
  return std::nullopt;
}

const Table::HashIndex& Table::ensure_hash_index(
    const ColumnStore& store) const {
  if (!store.hash_index) {
    HashIndex index;
    index.reserve(row_count_);
    for (std::uint32_t r = 0; r < row_count_; ++r) {
      index[key_at(store, r)].push_back(r);
    }
    store.hash_index = std::move(index);
  }
  return *store.hash_index;
}

bool Table::cell_less(const ColumnStore& store, std::uint32_t a,
                      std::uint32_t b) const {
  // Replicates Value::operator<: order by type discriminator first, then
  // content.  Null cells (monostate) compare equal among themselves, so a
  // stable sort keeps their insertion order.
  switch (store.kind) {
    case ColumnKind::kInt64:
    case ColumnKind::kBool: {
      if (store.tags[a] != store.tags[b]) {
        return store.tags[a] == kTagNull;  // null type index sorts first
      }
      if (store.tags[a] == kTagNull) return false;
      if (store.kind == ColumnKind::kInt64) {
        return store.i64[a] < store.i64[b];
      }
      return store.b8[a] < store.b8[b];
    }
    case ColumnKind::kFloat64: {
      // Type ranks: null(0) < int(2) < double(3) — tag values are already
      // in that order (kTagNull=0, kTagValue=1, kTagDouble=2).
      if (store.tags[a] != store.tags[b]) {
        return store.tags[a] < store.tags[b];
      }
      if (store.tags[a] == kTagNull) return false;
      if (store.tags[a] == kTagValue) return store.i64[a] < store.i64[b];
      return store.f64[a] < store.f64[b];
    }
    case ColumnKind::kString: {
      const bool null_a = store.str[a] == kNullStringId;
      const bool null_b = store.str[b] == kNullStringId;
      if (null_a != null_b) return null_a;
      if (null_a) return false;
      if (store.str[a] == store.str[b]) return false;
      return pool_[store.str[a]] < pool_[store.str[b]];
    }
    case ColumnKind::kGeneric:
      return store.generic[a] < store.generic[b];
  }
  return false;
}

const std::vector<std::uint32_t>& Table::ensure_sort_permutation(
    std::size_t column) const {
  const ColumnStore& store = columns_[column];
  if (!store.sort_permutation) {
    std::vector<std::uint32_t> order(row_count_);
    std::iota(order.begin(), order.end(), 0u);
    std::stable_sort(order.begin(), order.end(),
                     [this, &store](std::uint32_t a, std::uint32_t b) {
                       return cell_less(store, a, b);
                     });
    store.sort_permutation = std::move(order);
  }
  return *store.sort_permutation;
}

std::vector<RowView> Table::select(const RowPredicate& predicate) const {
  std::vector<RowView> out;
  for (std::uint32_t r = 0; r < row_count_; ++r) {
    RowView view(this, r);
    if (predicate(view)) out.push_back(view);
  }
  return out;
}

std::vector<RowView> Table::select_equals(std::string_view column,
                                          const Value& value) const {
  std::optional<std::size_t> index = schema_.column_index(column);
  if (!index) return {};
  const ColumnStore& store = columns_[*index];
  std::vector<RowView> out;
  if (store.kind == ColumnKind::kGeneric) {
    for (std::uint32_t r = 0; r < row_count_; ++r) {
      if (store.generic[r] == value) out.emplace_back(RowView(this, r));
    }
    return out;
  }
  std::optional<CellKey> key = probe_key(store, value);
  if (!key) return {};
  const HashIndex& hash = ensure_hash_index(store);
  auto it = hash.find(*key);
  if (it == hash.end()) return {};
  out.reserve(it->second.size());
  for (std::uint32_t r : it->second) out.emplace_back(RowView(this, r));
  return out;
}

Result<std::vector<RowView>> Table::order_by(std::string_view column) const {
  std::optional<std::size_t> index = schema_.column_index(column);
  if (!index) {
    return err_not_found("table '" + schema_.name + "' has no column '" +
                         std::string(column) + "'");
  }
  const std::vector<std::uint32_t>& order = ensure_sort_permutation(*index);
  std::vector<RowView> out;
  out.reserve(order.size());
  for (std::uint32_t r : order) out.emplace_back(RowView(this, r));
  return out;
}

std::size_t Table::count_equals(std::string_view column,
                                const Value& value) const {
  std::optional<std::size_t> index = schema_.column_index(column);
  if (!index) return 0;
  const ColumnStore& store = columns_[*index];
  if (store.kind == ColumnKind::kGeneric) {
    std::size_t count = 0;
    for (std::uint32_t r = 0; r < row_count_; ++r) {
      if (store.generic[r] == value) ++count;
    }
    return count;
  }
  std::optional<CellKey> key = probe_key(store, value);
  if (!key) return 0;
  const HashIndex& hash = ensure_hash_index(store);
  auto it = hash.find(*key);
  return it == hash.end() ? 0 : it->second.size();
}

Result<Value> Table::cell(const RowView& row, std::string_view column) const {
  std::optional<std::size_t> index = schema_.column_index(column);
  if (!index) {
    return err_not_found("table '" + schema_.name + "' has no column '" +
                         std::string(column) + "'");
  }
  assert(row.table_ == this);
  if (row.row_ >= row_count_) return err_internal("row index out of range");
  return cell_value(*index, row.row_);
}

void Table::clear() {
  for (ColumnStore& store : columns_) {
    store.tags.clear();
    store.i64.clear();
    store.f64.clear();
    store.b8.clear();
    store.str.clear();
    store.generic.clear();
    store.hash_index.reset();
    store.sort_permutation.reset();
  }
  pool_.clear();
  pool_ids_.clear();
  row_count_ = 0;
}

// ---- column-block serialisation --------------------------------------------

void Table::serialize_columns(ByteWriter& writer) const {
  // Interned-string dictionary, then one length-prefixed block per column.
  writer.u32(static_cast<std::uint32_t>(pool_.size()));
  for (const std::string& text : pool_) writer.string(text);
  for (const ColumnStore& store : columns_) {
    ByteWriter block;
    block.u8(static_cast<std::uint8_t>(store.kind));
    switch (store.kind) {
      case ColumnKind::kInt64:
        block.raw(store.tags.data(), store.tags.size());
        for (std::uint32_t r = 0; r < row_count_; ++r) {
          if (store.tags[r] != kTagNull) block.i64(store.i64[r]);
        }
        break;
      case ColumnKind::kFloat64:
        block.raw(store.tags.data(), store.tags.size());
        for (std::uint32_t r = 0; r < row_count_; ++r) {
          if (store.tags[r] == kTagValue) {
            block.i64(store.i64[r]);
          } else if (store.tags[r] == kTagDouble) {
            block.f64(store.f64[r]);
          }
        }
        break;
      case ColumnKind::kBool:
        block.raw(store.tags.data(), store.tags.size());
        block.raw(store.b8.data(), store.b8.size());
        break;
      case ColumnKind::kString:
        for (std::uint32_t id : store.str) block.u32(id);
        break;
      case ColumnKind::kGeneric:
        for (const Value& cell : store.generic) block.value(cell);
        break;
    }
    writer.u64(block.size());
    writer.raw(block.bytes().data(), block.size());
  }
}

Status Table::deserialize_columns(ByteReader& reader, std::uint64_t rows) {
  if (row_count_ != 0) return err_state("table is not empty");
  EXC_ASSIGN_OR_RETURN(std::uint32_t pool_size, reader.u32());
  for (std::uint32_t i = 0; i < pool_size; ++i) {
    EXC_ASSIGN_OR_RETURN(std::string text, reader.string());
    pool_.push_back(std::move(text));
    pool_ids_.emplace(pool_.back(), i);
  }
  const auto n = static_cast<std::size_t>(rows);
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    const Column& column = schema_.columns[c];
    ColumnStore& store = columns_[c];
    EXC_ASSIGN_OR_RETURN(std::uint64_t block_size, reader.u64());
    if (block_size > reader.remaining()) {
      return err_io("column block for '" + column.name + "' is truncated");
    }
    const std::size_t block_end = reader.position() + block_size;
    EXC_ASSIGN_OR_RETURN(std::uint8_t kind, reader.u8());
    if (kind != static_cast<std::uint8_t>(store.kind)) {
      return err_io("column '" + column.name +
                    "' has mismatched storage kind");
    }
    auto check_tag = [&](std::uint8_t tag, std::uint8_t max_tag) -> Status {
      if (tag > max_tag) {
        return err_io("column '" + column.name + "' has invalid cell tag");
      }
      if (tag == kTagNull && !column.nullable) {
        return err_io("column '" + column.name +
                      "' is not nullable but stores a null");
      }
      return {};
    };
    switch (store.kind) {
      case ColumnKind::kInt64:
      case ColumnKind::kFloat64:
      case ColumnKind::kBool: {
        const std::uint8_t max_tag =
            store.kind == ColumnKind::kFloat64 ? kTagDouble : kTagValue;
        EXC_ASSIGN_OR_RETURN(Bytes tags, reader.raw(n));
        store.tags.assign(tags.begin(), tags.end());
        for (std::uint8_t tag : store.tags) EXC_TRY(check_tag(tag, max_tag));
        if (store.kind == ColumnKind::kBool) {
          EXC_ASSIGN_OR_RETURN(Bytes values, reader.raw(n));
          store.b8.assign(values.begin(), values.end());
        } else {
          store.i64.assign(n, 0);
          if (store.kind == ColumnKind::kFloat64) store.f64.assign(n, 0.0);
          for (std::size_t r = 0; r < n; ++r) {
            if (store.tags[r] == kTagValue) {
              EXC_ASSIGN_OR_RETURN(store.i64[r], reader.i64());
              if (store.kind == ColumnKind::kFloat64) {
                store.f64[r] = static_cast<double>(store.i64[r]);
              }
            } else if (store.tags[r] == kTagDouble) {
              EXC_ASSIGN_OR_RETURN(store.f64[r], reader.f64());
            }
          }
        }
        break;
      }
      case ColumnKind::kString:
        store.str.reserve(n);
        for (std::size_t r = 0; r < n; ++r) {
          EXC_ASSIGN_OR_RETURN(std::uint32_t id, reader.u32());
          if (id == kNullStringId) {
            if (!column.nullable) {
              return err_io("column '" + column.name +
                            "' is not nullable but stores a null");
            }
          } else if (id >= pool_.size()) {
            return err_io("column '" + column.name +
                          "' references an unknown interned string");
          }
          store.str.push_back(id);
        }
        break;
      case ColumnKind::kGeneric:
        store.generic.reserve(n);
        for (std::size_t r = 0; r < n; ++r) {
          EXC_ASSIGN_OR_RETURN(Value cell, reader.value());
          if (cell.is_null()) {
            if (!column.nullable) {
              return err_io("column '" + column.name +
                            "' is not nullable but stores a null");
            }
          } else if (cell.type() != column.type) {
            return err_io("column '" + column.name + "' stores a " +
                          std::string(to_string(cell.type())) +
                          " cell but declares " +
                          std::string(to_string(column.type)));
          }
          store.generic.push_back(std::move(cell));
        }
        break;
    }
    if (reader.position() != block_end) {
      return err_io("column block for '" + column.name +
                    "' has trailing bytes");
    }
  }
  row_count_ = n;
  return {};
}

}  // namespace excovery::storage
