file(REMOVE_RECURSE
  "libexcovery_stats.a"
)
