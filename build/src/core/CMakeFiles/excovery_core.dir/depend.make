# Empty dependencies file for excovery_core.
# This may be replaced when dependencies are built.
