// Local service cache with TTL expiry.
//
// "most SDPs implement also a local cache on SUs and SMs to reduce network
// load" (§III-A).  Records expire when their TTL elapses; expiry, addition,
// update and withdrawal are reported through a listener so the owning agent
// can emit sd_service_add / sd_service_del / sd_service_upd.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sd/message.hpp"
#include "sim/scheduler.hpp"

namespace excovery::sd {

/// What happened to a cached record.
enum class CacheChange { kAdded, kUpdated, kRemoved, kExpired };

using CacheListener =
    std::function<void(CacheChange change, const ServiceInstance& instance)>;

class ServiceCache {
 public:
  explicit ServiceCache(sim::Scheduler& scheduler) : scheduler_(scheduler) {}
  /// Expiry callbacks capture `this`; cancel them before the map goes away.
  ~ServiceCache() { clear(); }

  void set_listener(CacheListener listener) {
    listener_ = std::move(listener);
  }

  /// Insert or refresh a record.  A record with ttl 0 withdraws (goodbye).
  /// A record with a higher version than the cached one is an update.
  /// `lineage` is the causal event id the record arrived under (typically
  /// the delivering packet's cache-store event); it is retained so a later
  /// passive discovery can attribute its answer to the storing packet.
  void store(const ServiceRecord& record, std::uint64_t lineage = 0);

  /// Causal lineage id the instance's record was stored under (0 if absent
  /// or recorded without lineage).
  std::uint64_t lineage(const std::string& instance_name) const;

  /// All live instances of a type.
  std::vector<ServiceInstance> instances(const ServiceType& type) const;
  /// All live instances.
  std::vector<ServiceInstance> all_instances() const;

  bool contains(const std::string& instance_name) const;
  std::size_t size() const noexcept { return entries_.size(); }

  /// Remaining TTL of an instance in seconds (0 if absent).  Used to build
  /// known-answer lists.
  std::uint32_t remaining_ttl(const std::string& instance_name) const;
  /// Original TTL the record arrived with (0 if absent).
  std::uint32_t original_ttl(const std::string& instance_name) const;

  /// Drop everything without emitting events (agent exit).
  void clear();

 private:
  struct Entry {
    ServiceRecord record;
    sim::SimTime expires;
    sim::TimerHandle expiry_timer;
    std::uint64_t lineage = 0;  ///< causal event the record arrived under
  };

  void notify(CacheChange change, const ServiceInstance& instance) {
    if (listener_) listener_(change, instance);
  }
  void schedule_expiry(const std::string& name, Entry& entry);

  sim::Scheduler& scheduler_;
  CacheListener listener_;
  std::map<std::string, Entry> entries_;
};

}  // namespace excovery::sd
