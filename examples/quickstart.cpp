// Quickstart: describe, execute and analyse a minimal service discovery
// experiment — one publisher (SM), one requester (SU), two bystander nodes,
// five replications on a simulated wireless mesh.
//
//   $ ./quickstart [--run-workers N] [--log-level LEVEL]
//                  [--trace-out FILE] [--metrics-out FILE] [--packet-trace]
//
// --run-workers N executes the treatment plan's runs on N parallel platform
// replicas (0 = hardware concurrency); the conditioned package is
// bit-identical to the sequential default (DESIGN.md §10).
//
// --log-level sets the global log threshold (trace|debug|info|warn|error).
// --trace-out writes a Chrome/Perfetto trace_event JSON file with a wall
// track (workers, conditioning) and a simulated-time track (runs, and with
// --packet-trace per-packet lifecycles); open it in https://ui.perfetto.dev.
// --metrics-out writes the runtime metrics (counters, histograms and the
// per-run ledger) as JSON.  All observability is out-of-band: the package
// bytes are identical with and without these flags (DESIGN.md §11).
//
// The program walks the full ExCovery workflow (Fig. 3 of the paper):
//   1. build the abstract experiment description (Fig. 9/10 processes),
//   2. set up the simulated platform,
//   3. execute the treatment plan with the ExperiMaster,
//   4. collect + condition measurements into a level-3 package,
//   5. query the package: responsiveness and the run-1 event timeline.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/log.hpp"
#include "core/master.hpp"
#include "core/scenario.hpp"
#include "obs/obs.hpp"
#include "stats/analysis.hpp"

using namespace excovery;

namespace {

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [--run-workers N] [--log-level "
               "trace|debug|info|warn|error]\n"
               "          [--trace-out FILE] [--metrics-out FILE] "
               "[--packet-trace]\n",
               prog);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  core::MasterOptions master_options;
  std::string trace_out;
  std::string metrics_out;
  bool packet_trace = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--run-workers") == 0 && i + 1 < argc) {
      master_options.run_workers =
          static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--log-level") == 0 && i + 1 < argc) {
      Result<LogLevel> level = parse_log_level(argv[++i]);
      if (!level.ok()) {
        std::fprintf(stderr, "--log-level: %s\n",
                     level.error().to_string().c_str());
        return 2;
      }
      Logger::instance().set_level(level.value());
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (std::strcmp(argv[i], "--packet-trace") == 0) {
      packet_trace = true;
    } else {
      return usage(argv[0]);
    }
  }

  // Observability: attach a context whenever any output was requested (a
  // context costs nothing measurable and never changes the package bytes).
  obs::ObsConfig obs_config;
  obs_config.trace = !trace_out.empty();
  obs_config.packet_trace = packet_trace;
  obs::ObsContext obs(obs_config);
  master_options.obs = &obs;

  // 1. The experiment description.  scenario::two_party_sd builds exactly
  //    the SM/SU processes of the paper's Figures 9 and 10.
  core::scenario::TwoPartyOptions options;
  options.sm_count = 1;
  options.su_count = 1;
  options.environment_count = 2;
  options.replications = 5;
  options.deadline_s = 30.0;  // the SU's search deadline (Fig. 10)

  Result<core::ExperimentDescription> description =
      core::scenario::two_party_sd(options);
  if (!description.ok()) {
    std::fprintf(stderr, "description: %s\n",
                 description.error().to_string().c_str());
    return 1;
  }
  std::printf("=== experiment description (excerpt) ===\n%.1200s...\n\n",
              description.value().to_xml_text().c_str());

  // 2. Platform setup: a full-mesh topology containing every node the
  //    description names, with imperfect per-node clocks.
  Result<net::Topology> topology =
      core::scenario::topology_for(description.value(), {});
  if (!topology.ok()) {
    std::fprintf(stderr, "topology: %s\n",
                 topology.error().to_string().c_str());
    return 1;
  }
  core::SimPlatformConfig config;
  config.topology = std::move(topology).value();
  config.seed = 2026;
  Result<std::unique_ptr<core::SimPlatform>> platform =
      core::SimPlatform::create(description.value(), std::move(config));
  if (!platform.ok()) {
    std::fprintf(stderr, "platform: %s\n",
                 platform.error().to_string().c_str());
    return 1;
  }

  // 3 + 4. Execute all runs and condition the results.  With
  //    --run-workers > 1 the runs execute in parallel on platform replicas;
  //    the package bytes do not change.
  core::ExperiMaster master(description.value(), *platform.value(),
                            std::move(master_options));
  std::printf("=== treatment plan ===\n%s\n",
              master.plan().format().c_str());
  Result<storage::ExperimentPackage> package = master.execute();
  if (!package.ok()) {
    std::fprintf(stderr, "execution: %s\n",
                 package.error().to_string().c_str());
    return 1;
  }

  // 5. Analysis: responsiveness and the event timeline of run 1.
  Result<stats::Proportion> responsiveness =
      stats::responsiveness(package.value(), 5.0, 1);
  if (responsiveness.ok()) {
    std::printf(
        "responsiveness(deadline=5s): %.2f  [wilson 95%%: %.2f..%.2f]  "
        "(%zu/%zu runs)\n\n",
        responsiveness.value().estimate, responsiveness.value().lower,
        responsiveness.value().upper, responsiveness.value().successes,
        responsiveness.value().trials);
  }

  std::printf("=== run 1 timeline ===\n");
  Result<std::vector<storage::EventRow>> events = package.value().events(1);
  if (events.ok()) {
    for (const storage::EventRow& event : events.value()) {
      std::printf("%10.6fs  %-12s %-22s %s\n", event.common_time,
                  event.node_id.c_str(), event.event_type.c_str(),
                  event.parameter.c_str());
    }
  }
  std::printf("\npackage: %zu events, %zu packets across %zu runs\n",
              package.value().event_count(), package.value().packet_count(),
              package.value().run_ids().size());

  // Observability exports: runtime metrics and the dual-track trace.
  std::printf("\n=== runtime metrics (deterministic domain, excerpt) ===\n");
  std::string deterministic = obs.format_deterministic_metrics();
  std::fwrite(deterministic.data(), 1,
              std::min<std::size_t>(deterministic.size(), 2000), stdout);
  if (deterministic.size() > 2000) std::printf("...\n");
  if (!metrics_out.empty()) {
    Status written = obs.write_metrics_json(metrics_out);
    if (!written.ok()) {
      std::fprintf(stderr, "metrics-out: %s\n",
                   written.error().to_string().c_str());
      return 1;
    }
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    Status written = obs.trace().write_json(trace_out);
    if (!written.ok()) {
      std::fprintf(stderr, "trace-out: %s\n",
                   written.error().to_string().c_str());
      return 1;
    }
    std::printf("trace written to %s (%zu events) — open in "
                "https://ui.perfetto.dev\n",
                trace_out.c_str(), obs.trace().size());
  }
  return 0;
}
