// Fault injection campaign: demonstrates the full §IV-D manipulation
// vocabulary in one experiment — a timed interface fault on the SM
// (duration/rate/randomseed temporal model), path loss between SU and SM,
// and background traffic from the environment nodes — and shows how the
// injected faults shape the recorded event timeline.
//
//   $ ./fault_injection_campaign
#include <cstdio>

#include "common/strings.hpp"
#include "core/master.hpp"
#include "core/scenario.hpp"
#include "stats/analysis.hpp"

using namespace excovery;
using core::ParamValue;
using core::ProcessAction;

namespace {

ProcessAction action(std::string name,
                     std::vector<std::pair<std::string, ParamValue>> params = {}) {
  ProcessAction out;
  out.name = std::move(name);
  out.params = std::move(params);
  return out;
}

ParamValue lit(const std::string& text) {
  return ParamValue::lit(Value{text});
}

}  // namespace

int main() {
  core::scenario::TwoPartyOptions options;
  options.sm_count = 1;
  options.su_count = 1;
  options.environment_count = 4;
  options.replications = 10;
  options.deadline_s = 12.0;
  options.pairs_levels = {3};    // Fig. 7 environment traffic
  options.bw_levels = {100};

  Result<core::ExperimentDescription> built =
      core::scenario::two_party_sd(options);
  if (!built.ok()) {
    std::fprintf(stderr, "%s\n", built.error().to_string().c_str());
    return 1;
  }
  core::ExperimentDescription description = std::move(built).value();

  // Manipulation process on the SM (§IV-D3): a windowed interface fault —
  // within a 2 s window the interface is dead for half the time, in one
  // continuous block placed by the replication-seeded PRNG.  (Runs end as
  // soon as discovery completes, so a short window keeps the fault inside
  // most runs.)
  {
    core::ManipulationProcess manipulation;
    manipulation.node_id = "SM0";
    manipulation.actions.push_back(action(
        "fault_interface_start",
        {{"direction", lit("both")},
         {"duration", lit("2")},
         {"rate", lit("0.5")},
         {"randomseed", ParamValue::factor("fact_replication_id")}}));
    manipulation.actions.push_back(action(
        "wait_for_event", {{"event_dependency", lit("done")}}));
    // The windowed fault auto-stops; stopping an already-finished fault is
    // handled by run clean-up, so no explicit stop action here.
    description.manipulation_processes.push_back(std::move(manipulation));
  }
  // Path loss on the SU against the SM specifically (§IV-D1 path fault).
  {
    core::ManipulationProcess manipulation;
    manipulation.node_id = "SU0";
    manipulation.actions.push_back(
        action("fault_path_loss_start", {{"peer", lit("SM0")},
                                         {"probability", lit("0.3")},
                                         {"direction", lit("both")}}));
    manipulation.actions.push_back(
        action("wait_for_event", {{"event_dependency", lit("done")}}));
    manipulation.actions.push_back(action("fault_path_loss_stop"));
    description.manipulation_processes.push_back(std::move(manipulation));
  }
  Status valid = description.validate();
  if (!valid.ok()) {
    std::fprintf(stderr, "description invalid: %s\n",
                 valid.error().to_string().c_str());
    return 1;
  }

  Result<net::Topology> topology =
      core::scenario::topology_for(description, {});
  core::SimPlatformConfig config;
  config.topology = std::move(topology).value();
  config.seed = 99;
  Result<std::unique_ptr<core::SimPlatform>> platform =
      core::SimPlatform::create(description, std::move(config));
  if (!platform.ok()) {
    std::fprintf(stderr, "%s\n", platform.error().to_string().c_str());
    return 1;
  }
  core::ExperiMaster master(description, *platform.value());
  std::printf("executing %zu runs with interface fault + path loss + "
              "background traffic...\n",
              master.plan().run_count());
  Result<storage::ExperimentPackage> package = master.execute();
  if (!package.ok()) {
    std::fprintf(stderr, "%s\n", package.error().to_string().c_str());
    return 1;
  }

  // Per-run fault windows and discovery outcomes.
  std::printf("\n%-5s %-22s %-22s %-12s\n", "run", "interface fault window",
              "discovery latency", "timed out");
  Result<std::vector<stats::RunDiscovery>> discoveries =
      stats::discoveries(package.value());
  for (std::int64_t run_id : package.value().run_ids()) {
    Result<std::vector<storage::EventRow>> events =
        package.value().events(run_id);
    if (!events.ok()) continue;
    double fault_start = -1;
    double fault_stop = -1;
    double run_start = 0;
    for (const storage::EventRow& event : events.value()) {
      if (event.event_type == "run_init" && run_start == 0) {
        run_start = event.common_time;
      }
      if (event.event_type == "fault_interface_start") {
        fault_start = event.common_time - run_start;
      }
      if (event.event_type == "fault_interface_stop") {
        fault_stop = event.common_time - run_start;
      }
    }
    double latency = -1;
    bool timed_out = false;
    if (discoveries.ok()) {
      for (const stats::RunDiscovery& run : discoveries.value()) {
        if (run.run_id != run_id) continue;
        timed_out = run.timed_out;
        for (const auto& [provider, value] : run.latencies) {
          latency = value;
        }
      }
    }
    std::printf("%-5lld [%6.2fs .. %6.2fs]     %-22s %s\n",
                static_cast<long long>(run_id), fault_start, fault_stop,
                latency >= 0 ? excovery::strings::format("%.3fs", latency).c_str()
                             : "-",
                timed_out ? "yes" : "no");
  }

  Result<stats::Proportion> responsiveness =
      stats::responsiveness(package.value(), options.deadline_s, 1);
  if (responsiveness.ok()) {
    std::printf(
        "\nresponsiveness under faults (deadline %.0fs): %.2f "
        "[%.2f..%.2f]\n",
        options.deadline_s, responsiveness.value().estimate,
        responsiveness.value().lower, responsiveness.value().upper);
  }
  return 0;
}
