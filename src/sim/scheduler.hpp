// Discrete-event scheduler.
//
// The kernel of the simulated platform: a time-ordered queue of callbacks.
// Ties at equal timestamps break on insertion sequence number, so execution
// order is a pure function of the schedule calls — the whole simulation is
// deterministic and replayable (a platform property §IV-A depends on).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace excovery::sim {

/// Handle for cancelling a scheduled event.
class TimerHandle {
 public:
  TimerHandle() = default;
  bool valid() const noexcept { return id_ != 0; }
  std::uint64_t id() const noexcept { return id_; }

 private:
  friend class Scheduler;
  explicit TimerHandle(std::uint64_t id) noexcept : id_(id) {}
  std::uint64_t id_ = 0;
};

class Scheduler {
 public:
  using Callback = std::function<void()>;

  SimTime now() const noexcept { return now_; }

  /// Schedule `fn` to run `delay` from now.  Negative delays clamp to now.
  TimerHandle schedule(SimDuration delay, Callback fn);
  /// Schedule at an absolute time (>= now; earlier clamps to now).
  TimerHandle schedule_at(SimTime when, Callback fn);
  /// Cancel a pending event; no-op if it already ran or was cancelled.
  void cancel(TimerHandle handle);

  /// Number of pending (non-cancelled) events.
  std::size_t pending() const noexcept { return live_.size(); }
  bool idle() const noexcept { return pending() == 0; }

  /// Run a single event; returns false when the queue is empty.
  bool step();
  /// Run until the queue drains or `limit` events executed (0 = unlimited).
  /// Returns the number of events executed.
  std::size_t run(std::size_t limit = 0);
  /// Run events with timestamps <= deadline; clock ends at
  /// max(reached, deadline).  Returns events executed.
  std::size_t run_until(SimTime deadline);

  /// Total events executed since construction (for overhead metrics).
  std::uint64_t executed() const noexcept { return executed_; }

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    std::uint64_t id;
    // Callbacks live outside the priority queue entries via shared storage
    // to keep Entry cheap to move within the heap.
    std::shared_ptr<Callback> fn;

    bool operator>(const Entry& other) const noexcept {
      if (when != other.when) return when > other.when;
      return seq > other.seq;
    }
  };

  SimTime now_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t executed_ = 0;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue_;
  /// Ids of scheduled-but-not-yet-executed (and not cancelled) events.
  std::unordered_set<std::uint64_t> live_;
};

}  // namespace excovery::sim
