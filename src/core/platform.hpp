// The simulated platform: everything §IV-A requires a target platform to
// provide, implemented on the discrete-event network simulator.
//
//  * Experiment management (§IV-A1): a separate, reliable control channel
//    (in-process XML-RPC transport) with full privileged access to nodes.
//  * Connection control (§IV-A2): interface up/down and rule-based packet
//    manipulation (via net::Network and the fault injector).
//  * Measurement (§IV-A3): packet capture with local timestamps and
//    unaltered content, packet tagging/tracking, time synchronisation with
//    quantifiable error, hop-count topology probing.
//
// The platform maps the description's abstract/environment nodes onto
// simulator nodes by host name (Fig. 8) and owns one NodeManager (and RPC
// endpoint) per concrete node.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/description.hpp"
#include "core/recorder.hpp"
#include "faults/injector.hpp"
#include "faults/schedule.hpp"
#include "faults/traffic.hpp"
#include "net/network.hpp"
#include "rpc/endpoint.hpp"
#include "sd/mdns.hpp"
#include "sd/model.hpp"
#include "sd/slp.hpp"
#include "sim/lineage.hpp"
#include "sim/scheduler.hpp"
#include "storage/level2.hpp"

namespace excovery::core {

class NodeManager;

/// Which SD protocol stack nodes run ("sd_protocol" informative parameter).
enum class SdProtocol { kMdns, kSlp, kHybrid };
Result<SdProtocol> parse_protocol(const std::string& text);
std::string_view to_string(SdProtocol protocol) noexcept;

struct SimPlatformConfig {
  net::Topology topology;  ///< must contain every platform node by name
  std::uint64_t seed = 1;
  SdProtocol protocol = SdProtocol::kMdns;

  // Local clock imperfection: per-node offset drawn uniform in
  // [-max_offset, +max_offset], drift uniform in [-max_drift_ppm, +...].
  sim::SimDuration max_clock_offset = sim::SimDuration::from_millis(50);
  double max_drift_ppm = 20.0;
  sim::SimDuration clock_read_jitter = sim::SimDuration::from_micros(10);

  // Control-channel characteristics used by the time-sync measurement:
  // one-way delays drawn uniform in [min, max] per exchange.
  sim::SimDuration control_delay_min = sim::SimDuration::from_micros(100);
  sim::SimDuration control_delay_max = sim::SimDuration::from_micros(800);
  int sync_samples = 8;  ///< exchanges averaged per offset estimate

  // Protocol knob bundles (per-node seeds are derived from `seed`).
  sd::MdnsConfig mdns;
  sd::SlpConfig slp;
};

class SimPlatform {
 public:
  /// Build the platform for a description.  Fails if a platform node has no
  /// counterpart (by name) in the topology.
  static Result<std::unique_ptr<SimPlatform>> create(
      const ExperimentDescription& description, SimPlatformConfig config);

  ~SimPlatform();
  SimPlatform(const SimPlatform&) = delete;
  SimPlatform& operator=(const SimPlatform&) = delete;

  sim::Scheduler& scheduler() noexcept { return scheduler_; }
  net::Network& network() noexcept { return *network_; }
  EventRecorder& recorder() noexcept { return *recorder_; }
  storage::Level2Store& level2() noexcept { return level2_; }
  faults::FaultInjector& injector() noexcept { return *injector_; }
  faults::FaultScheduleEngine& schedule_engine() noexcept { return *engine_; }
  faults::TrafficGenerator& traffic() noexcept { return *traffic_; }
  rpc::InProcessTransport& transport() noexcept { return transport_; }
  sim::LineageLog& lineage() noexcept { return lineage_; }
  const SimPlatformConfig& config() const noexcept { return config_; }

  /// Concrete node names in description order (actor nodes then env nodes).
  const std::vector<std::string>& node_names() const noexcept {
    return node_names_;
  }
  /// Concrete names of actor nodes / environment nodes.
  const std::vector<std::string>& actor_node_names() const noexcept {
    return actor_node_names_;
  }
  const std::vector<std::string>& environment_node_names() const noexcept {
    return environment_node_names_;
  }
  /// Concrete node name an abstract node maps to.
  Result<std::string> concrete_name(const std::string& abstract_id) const;

  Result<net::NodeId> node_id(const std::string& concrete_name) const;
  NodeManager& manager(const std::string& concrete_name);

  /// RPC client bound to a node's endpoint (the master's view of a node).
  rpc::RpcClient client(const std::string& concrete_name);

  // ---- platform measurements (§IV-A3) -----------------------------------
  /// NTP-style offset estimation over the control channel: returns the
  /// estimated (local - reference) offset in nanoseconds.  The estimate
  /// carries a bounded error from asymmetric control-channel delays, which
  /// is what §IV-A3's "quantification of the synchronization error"
  /// refers to.
  std::int64_t measure_offset(const std::string& concrete_name);

  /// Hop counts between all acting node pairs, rendered as one line per
  /// pair ("a b hops").  Taken before and after each experiment (§IV-B4).
  std::string measure_topology(const std::vector<std::string>& nodes);

  /// Advanced topology recording (§IV-B4 names this as future work): the
  /// full adjacency with per-link quality (loss, delay, bandwidth) and
  /// node positions, as a text block stored into ExperimentMeasurements.
  std::string measure_topology_detailed() const;

  /// Run preparation: drop leftover packets, clear capture buffers and
  /// multicast dedup state, stop stray faults and traffic (§IV-C1).
  void reset_run_state();

  /// Rebase every order-dependent random stream on a substream keyed by
  /// (experiment seed, run id, attempt): the time-sync exchange delays and
  /// the network's loss/jitter/clock-read streams.  After this call a run's
  /// randomness is independent of which runs executed before it on this
  /// platform instance, so runs can execute out of order or on worker
  /// replicas and still draw identical values (DESIGN.md §10).
  void begin_run(std::int64_t run_id, int attempt = 1);

  /// Cheap replica: a fresh platform with this platform's configuration
  /// (including any runtime link-model changes, since the topology is read
  /// back from the live network).  Replicas start with a zeroed scheduler
  /// clock and empty level-2 store; the run executor gives each worker its
  /// own replica so runs can execute concurrently.
  Result<std::unique_ptr<SimPlatform>> replicate(
      const ExperimentDescription& description) const;

 private:
  SimPlatform(const ExperimentDescription& description,
              SimPlatformConfig config);
  Status setup(const ExperimentDescription& description);

  SimPlatformConfig config_;
  sim::Scheduler scheduler_;
  sim::LineageLog lineage_;
  std::unique_ptr<net::Network> network_;
  storage::Level2Store level2_;
  std::unique_ptr<EventRecorder> recorder_;
  std::unique_ptr<faults::FaultInjector> injector_;
  std::unique_ptr<faults::FaultScheduleEngine> engine_;
  std::unique_ptr<faults::TrafficGenerator> traffic_;
  rpc::InProcessTransport transport_;

  std::vector<std::string> node_names_;
  std::vector<std::string> actor_node_names_;
  std::vector<std::string> environment_node_names_;
  std::map<std::string, std::string> abstract_to_concrete_;
  std::map<std::string, net::NodeId> name_to_id_;
  std::map<std::string, std::unique_ptr<NodeManager>> managers_;
  Pcg32 sync_rng_;
};

}  // namespace excovery::core
