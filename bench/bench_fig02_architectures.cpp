// Fig. 2 — "Illustration of service discovery architectures: two-party
// (left) and three-party (right)".
//
// Regenerated from running code: the same discovery workload executed on
// the two-party (mdns) and three-party (slp + SCM) protocol suites; the
// bench prints each architecture's roles and the message classes actually
// observed on the wire, plus the load they put on the network.
#include <map>

#include "bench_common.hpp"
#include "sd/message.hpp"

using namespace excovery;

namespace {

void run_architecture(const char* label, const char* protocol,
                      int scm_count) {
  core::scenario::TwoPartyOptions options;
  options.protocol = protocol;
  options.architecture = label;
  options.scm_count = scm_count;
  options.sm_count = 2;
  options.su_count = 1;
  options.environment_count = 1;
  options.replications = 5;
  options.deadline_s = 15.0;

  bench::Executed executed =
      bench::must(bench::execute(options), label);

  // Roles present.
  std::printf("\n--- %s (%s) ---\n", label, protocol);
  std::printf("roles: %d SM, %d SU%s\n", options.sm_count, options.su_count,
              scm_count > 0 ? ", 1 SCM" : "");

  // Message classes observed in the packet record.
  std::map<std::string, std::size_t> kinds;
  std::size_t total_packets = 0;
  double total_bytes = 0;
  for (std::int64_t run_id : executed.package.run_ids()) {
    std::vector<storage::PacketRow> packets =
        bench::must(executed.package.packets(run_id), "packets");
    for (const storage::PacketRow& row : packets) {
      Result<net::WireImage> image = net::capture_from_wire(row.data);
      if (!image.ok()) continue;
      if (image.value().direction != net::Direction::kTransmit) continue;
      ++total_packets;
      total_bytes += static_cast<double>(image.value().packet.wire_size());
      Result<sd::SdMessage> message =
          sd::decode(image.value().packet.payload);
      if (message.ok()) {
        kinds[std::string(sd::to_string(message.value().kind))]++;
      }
    }
  }
  std::printf("SD messages transmitted (5 runs):\n");
  for (const auto& [kind, count] : kinds) {
    std::printf("  %-16s %zu\n", kind.c_str(), count);
  }
  std::printf("total transmissions: %zu (%.1f KiB)\n", total_packets,
              total_bytes / 1024.0);

  stats::Proportion responsiveness = bench::must(
      stats::responsiveness(executed.package, 15.0, 2), "responsiveness");
  std::printf("both SMs discovered within 15s: %.2f\n",
              responsiveness.estimate);
}

}  // namespace

int main() {
  bench::banner("bench_fig02_architectures",
                "Fig. 2: two-party vs three-party SD architectures");
  run_architecture("two-party", "mdns", 0);
  run_architecture("three-party", "slp", 1);
  std::printf(
      "\nshape check: two-party traffic is multicast query/response/"
      "announce;\nthree-party adds scm adverts + registrations and serves "
      "lookups with\nunicast directed query/reply.\n");
  return 0;
}
