// Deterministic fault-schedule engine: time-varying fault processes on top
// of the one-shot injector (DESIGN.md §12).
//
// The injector's faults (§IV-D) are static: one activation window, one
// deactivation.  Dynamic worlds — the scenarios that actually stress
// service discovery — need *processes*: nodes that crash and come back,
// links that flap, partitions that form and heal.  The engine builds these
// as self-rescheduling loops on the simulation scheduler, drawing holding
// times from per-fault RNG substreams keyed by the description-provided
// randomseed, so a schedule is a pure function of the seed: identical
// packages at any worker count, including retries.
//
// Every process is registered with the injector (its reset() stops engine
// faults too) and flows through the same §IV-D event vocabulary
// (fault_<kind>_start/stop), with inner transitions emitting their own
// events (fault_node_down/up, fault_link_down/up).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "faults/injector.hpp"

namespace excovery::faults {

/// Up/down alternation for churn-style fault processes.
struct ChurnSpec {
  sim::SimDuration mean_uptime;
  sim::SimDuration mean_downtime;
  /// true: holding times are exponential with the given means (memoryless
  /// churn); false: fixed holding times.
  bool exponential = true;
};

class FaultScheduleEngine {
 public:
  explicit FaultScheduleEngine(FaultInjector& injector)
      : injector_(injector) {}

  /// Hook invoked (with the node's name) when a churn/crash process takes a
  /// node down or brings it back.  The platform wires these to the node
  /// manager, which drops the SD agent's soft state and later replays its
  /// discovery role.  Without hooks the engine falls back to toggling the
  /// node's interfaces only.
  using LifecycleHook = std::function<void(const std::string& node_name)>;
  void set_lifecycle_hooks(LifecycleHook crash, LifecycleHook restore) {
    crash_ = std::move(crash);
    restore_ = std::move(restore);
  }

  /// One crash/restart cycle: the node is down for the fault's active
  /// window (soft state lost at activation, role replayed at deactivation).
  Result<FaultHandle> node_crash(net::NodeId node,
                                 const TemporalSpec& temporal = {});

  /// Continuous crash/restart churn: while the fault is active the node
  /// alternates up/down with the spec's holding times.  Emits
  /// fault_node_down / fault_node_up on every transition.
  Result<FaultHandle> node_churn(net::NodeId node, const ChurnSpec& spec,
                                 const TemporalSpec& temporal = {});

  /// Link churn: the link between `a` and `b` alternates up/down.  Routing
  /// is repaired incrementally on every transition.  Emits
  /// fault_link_down / fault_link_up at node `a`.
  Result<FaultHandle> link_flap(net::NodeId a, net::NodeId b,
                                const ChurnSpec& spec,
                                const TemporalSpec& temporal = {});

  /// Named bipartition: while active, every link with exactly one endpoint
  /// in `side` is down, splitting the network into `side` and the rest;
  /// deactivation heals all of them at once.
  Result<FaultHandle> partition(const std::vector<net::NodeId>& side,
                                const TemporalSpec& temporal = {});

 private:
  /// Take a node down / bring it back, preferring the lifecycle hooks.
  void crash_node(net::NodeId node, const std::string& name);
  void restore_node(net::NodeId node, const std::string& name);

  FaultInjector& injector_;
  LifecycleHook crash_;
  LifecycleHook restore_;
};

Status validate(const ChurnSpec& spec);

}  // namespace excovery::faults
