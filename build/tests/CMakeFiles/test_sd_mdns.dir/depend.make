# Empty dependencies file for test_sd_mdns.
# This may be replaced when dependencies are built.
