
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/campaign.cpp" "src/core/CMakeFiles/excovery_core.dir/campaign.cpp.o" "gcc" "src/core/CMakeFiles/excovery_core.dir/campaign.cpp.o.d"
  "/root/repo/src/core/description.cpp" "src/core/CMakeFiles/excovery_core.dir/description.cpp.o" "gcc" "src/core/CMakeFiles/excovery_core.dir/description.cpp.o.d"
  "/root/repo/src/core/interpreter.cpp" "src/core/CMakeFiles/excovery_core.dir/interpreter.cpp.o" "gcc" "src/core/CMakeFiles/excovery_core.dir/interpreter.cpp.o.d"
  "/root/repo/src/core/master.cpp" "src/core/CMakeFiles/excovery_core.dir/master.cpp.o" "gcc" "src/core/CMakeFiles/excovery_core.dir/master.cpp.o.d"
  "/root/repo/src/core/node_manager.cpp" "src/core/CMakeFiles/excovery_core.dir/node_manager.cpp.o" "gcc" "src/core/CMakeFiles/excovery_core.dir/node_manager.cpp.o.d"
  "/root/repo/src/core/plan.cpp" "src/core/CMakeFiles/excovery_core.dir/plan.cpp.o" "gcc" "src/core/CMakeFiles/excovery_core.dir/plan.cpp.o.d"
  "/root/repo/src/core/platform.cpp" "src/core/CMakeFiles/excovery_core.dir/platform.cpp.o" "gcc" "src/core/CMakeFiles/excovery_core.dir/platform.cpp.o.d"
  "/root/repo/src/core/recorder.cpp" "src/core/CMakeFiles/excovery_core.dir/recorder.cpp.o" "gcc" "src/core/CMakeFiles/excovery_core.dir/recorder.cpp.o.d"
  "/root/repo/src/core/scenario.cpp" "src/core/CMakeFiles/excovery_core.dir/scenario.cpp.o" "gcc" "src/core/CMakeFiles/excovery_core.dir/scenario.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/excovery_common.dir/DependInfo.cmake"
  "/root/repo/build/src/xml/CMakeFiles/excovery_xml.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/excovery_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/excovery_net.dir/DependInfo.cmake"
  "/root/repo/build/src/rpc/CMakeFiles/excovery_rpc.dir/DependInfo.cmake"
  "/root/repo/build/src/faults/CMakeFiles/excovery_faults.dir/DependInfo.cmake"
  "/root/repo/build/src/sd/CMakeFiles/excovery_sd.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/excovery_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
