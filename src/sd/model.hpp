// The abstract service discovery model (§III and §V of the paper).
//
// Roles follow the Dabrowski/Mills/Quirolgico taxonomy the paper adopts:
// service user (SU), service manager (SM), service cache manager (SCM).
// The action set is §V's: Init SD, Exit SD, Start/Stop searching,
// Start/Stop publishing, Update publication; each emits the events named
// there.  "The description does not intend to model an SDP specific
// behavior in detail ... so that multiple implementations which adhere to
// the same SD concepts can be compared in experiments" — hence the SdAgent
// interface with three implementations (mdns two-party, slp three-party,
// hybrid).
#pragma once

#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "common/value.hpp"
#include "net/address.hpp"

namespace excovery::sd {

/// Discovery role of a node (§III-A).
enum class SdRole {
  kServiceUser,          ///< SU — discovers services
  kServiceManager,       ///< SM — publishes services
  kServiceCacheManager,  ///< SCM — directory of registrations (3-party only)
};

Result<SdRole> parse_role(const std::string& text);
std::string_view to_string(SdRole role) noexcept;

/// An abstract service ("service type / service class", §III-A),
/// e.g. "_expservice._udp".
using ServiceType = std::string;

/// A concrete service instance: "The SM identity, a service type
/// specification, an interface location or network address and optionally,
/// various additional attributes" (§III-A).
struct ServiceInstance {
  std::string instance_name;  ///< unique identity, e.g. "printer-42"
  ServiceType type;
  net::Address provider;      ///< interface location
  net::Port port = 0;
  std::map<std::string, std::string> attributes;  ///< TXT-style metadata
  std::uint32_t version = 1;  ///< bumped by Update publication

  friend bool operator==(const ServiceInstance&,
                         const ServiceInstance&) = default;
};

// ---- the event vocabulary of §V -----------------------------------------
namespace events {
inline constexpr std::string_view kInitDone = "sd_init_done";
inline constexpr std::string_view kExitDone = "sd_exit_done";
inline constexpr std::string_view kStartSearch = "sd_start_search";
inline constexpr std::string_view kStopSearch = "sd_stop_search";
inline constexpr std::string_view kServiceAdd = "sd_service_add";
inline constexpr std::string_view kServiceDel = "sd_service_del";
inline constexpr std::string_view kServiceUpd = "sd_service_upd";
inline constexpr std::string_view kStartPublish = "sd_start_publish";
inline constexpr std::string_view kStopPublish = "sd_stop_publish";
inline constexpr std::string_view kScmStarted = "scm_started";
inline constexpr std::string_view kScmFound = "scm_found";
inline constexpr std::string_view kScmRegistrationAdd = "scm_registration_add";
inline constexpr std::string_view kScmRegistrationDel = "scm_registration_del";
inline constexpr std::string_view kScmRegistrationUpd = "scm_registration_upd";
}  // namespace events

/// Sink for SD events: (event name, parameter).  The agent does not know
/// which node it runs on from ExCovery's perspective; the core layer binds
/// the sink to the node's event recorder.
using SdEventSink =
    std::function<void(std::string_view event, const Value& parameter)>;

/// The abstract SD agent every protocol implements (§V action set).
class SdAgent {
 public:
  virtual ~SdAgent() = default;

  /// "Init SD — Mandatory action to allow participation of a node in the
  /// SD."  Emits sd_init_done (and scm_started when role is SCM).
  /// `params` configures SDP-specific knobs.
  virtual Status init(SdRole role, const ValueMap& params) = 0;

  /// "Exit SD — Stops the previously started role and all assigned searches
  /// and publishings", emits sd_exit_done.
  virtual Status exit() = 0;

  /// Ungraceful failure (node crash churn, DESIGN.md §12): drop ALL soft
  /// state — caches, registrations, pending queries, timers — without
  /// goodbyes, deregistrations, or exit events.  Peers keep whatever stale
  /// state they hold until their own expiry machinery clears it.  After a
  /// crash the agent is uninitialised; a later init() starts from scratch.
  virtual void crash() = 0;

  /// "Start searching — initiates a continuous SD process for a given
  /// service type", emits sd_start_search; discovered services emit
  /// sd_service_add with the instance identifier as parameter.
  virtual Status start_search(const ServiceType& type) = 0;

  /// "Stop searching", emits sd_stop_search.
  virtual Status stop_search(const ServiceType& type) = 0;

  /// "Start publishing", emits sd_start_publish.
  virtual Status start_publish(const ServiceInstance& instance) = 0;

  /// "Stop publishing — gracefully", emits sd_stop_publish.
  virtual Status stop_publish(const std::string& instance_name) = 0;

  /// "Update publication", emits sd_service_upd before the update.
  virtual Status update_publication(const ServiceInstance& instance) = 0;

  /// Services currently known for a type (local cache view).
  virtual std::vector<ServiceInstance> discovered(
      const ServiceType& type) const = 0;

  virtual bool initialized() const = 0;
  virtual SdRole role() const = 0;

  /// "Executing SDPs are allowed to generate user specified events which
  /// will be recorded by ExCovery" (§V).
  void generate_event(std::string_view name, const Value& parameter) {
    if (sink_) sink_(name, parameter);
  }

  void set_event_sink(SdEventSink sink) { sink_ = std::move(sink); }

 protected:
  void emit(std::string_view event, const Value& parameter = {}) {
    if (sink_) sink_(event, parameter);
  }

 private:
  SdEventSink sink_;
};

/// Port of the SLP-style three-party protocol (427 is real SLP's).
inline constexpr net::Port kSlpPort = 427;

/// Multicast group of the SLP-style protocol (SLP uses 239.255.255.253).
inline constexpr net::Address slp_multicast() noexcept {
  return net::Address(239, 255, 255, 253);
}

}  // namespace excovery::sd
