#include "xml/select.hpp"

#include "common/strings.hpp"

namespace excovery::xml {

namespace {

struct Step {
  std::string name;           // element name or "*"
  std::string attr_name;      // predicate attribute, empty if none
  std::string attr_value;
  int index = -1;             // 1-based positional predicate, -1 if none
};

std::vector<Step> parse_path(std::string_view path) {
  std::vector<Step> steps;
  for (const std::string& raw : strings::split(path, '/')) {
    if (raw.empty()) continue;
    Step step;
    std::size_t bracket = raw.find('[');
    if (bracket == std::string::npos) {
      step.name = raw;
    } else {
      step.name = raw.substr(0, bracket);
      std::string pred = raw.substr(bracket + 1);
      if (!pred.empty() && pred.back() == ']') pred.pop_back();
      if (!pred.empty() && pred[0] == '@') {
        std::size_t eq = pred.find('=');
        if (eq != std::string::npos) {
          step.attr_name = pred.substr(1, eq - 1);
          std::string value = pred.substr(eq + 1);
          step.attr_value = strings::strip_quotes(
              value.size() >= 2 && value.front() == '\'' &&
                      value.back() == '\''
                  ? "\"" + value.substr(1, value.size() - 2) + "\""
                  : value);
        }
      } else {
        step.index = std::atoi(pred.c_str());
      }
    }
    steps.push_back(std::move(step));
  }
  return steps;
}

bool matches(const Element& e, const Step& step) {
  if (step.name != "*" && e.name() != step.name) return false;
  if (!step.attr_name.empty()) {
    const std::string_view* v = e.attr(step.attr_name);
    if (!v || *v != step.attr_value) return false;
  }
  return true;
}

void apply_step(const std::vector<const Element*>& in, const Step& step,
                std::vector<const Element*>& out) {
  for (const Element* e : in) {
    int position = 0;
    for (const Element& child : e->children()) {
      if (matches(child, step)) {
        ++position;
        if (step.index < 0 || position == step.index) {
          out.push_back(&child);
        }
      }
    }
  }
}

}  // namespace

std::vector<const Element*> select_all(const Element& root,
                                       std::string_view path) {
  std::vector<const Element*> current{&root};
  for (const Step& step : parse_path(path)) {
    std::vector<const Element*> next;
    apply_step(current, step, next);
    current = std::move(next);
    if (current.empty()) break;
  }
  return current;
}

const Element* select_first(const Element& root, std::string_view path) {
  std::vector<const Element*> all = select_all(root, path);
  return all.empty() ? nullptr : all.front();
}

Result<const Element*> select_required(const Element& root,
                                       std::string_view path) {
  const Element* e = select_first(root, path);
  if (!e) {
    return err_not_found("no element matches path '" + std::string(path) +
                         "' under <" + std::string(root.name()) + ">");
  }
  return e;
}

std::vector<const Element*> select_all_recursive(const Element& root,
                                                 std::string_view name) {
  // Preorder walk over the sibling-linked tree: visit a node, descend into
  // its first child, and resume pending siblings from the stack — document
  // order without materialising child lists.
  std::vector<const Element*> out;
  std::vector<const Element*> pending;
  const Element* cur = root.first_child();
  while (cur) {
    if (cur->name() == name) out.push_back(cur);
    if (cur->next_sibling()) pending.push_back(cur->next_sibling());
    if (cur->first_child()) {
      cur = cur->first_child();
    } else if (!pending.empty()) {
      cur = pending.back();
      pending.pop_back();
    } else {
      cur = nullptr;
    }
  }
  return out;
}

std::string select_text_or(const Element& root, std::string_view path,
                           std::string_view fallback) {
  const Element* e = select_first(root, path);
  return e ? e->text() : std::string(fallback);
}

}  // namespace excovery::xml
