// Trace-event layer: Chrome/Perfetto `trace_event` JSON with dual tracks
// (DESIGN.md §11).
//
// Track kWall (pid 1) carries real execution: run sharding, storage
// conditioning, thread-pool tasks.  Track kSim (pid 2) carries simulated
// time: runs, attempts, SD transactions and per-packet lifecycles, with
// timestamps taken from the discrete-event clock.  Because every run
// executes at its canonical simulated-time epoch (DESIGN.md §10), the sim
// track renders the same timeline no matter how many workers executed the
// runs — concurrent wall execution, disjoint simulated intervals.
//
// Spans are emitted through RAII guards (WallSpan / SimSpan); punctual and
// long-lived flows (per-packet lifecycles) use instant and async events.
// The buffer is mutex-protected: worker replicas append concurrently.
//
// Open the written file in https://ui.perfetto.dev or chrome://tracing.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/obs_switch.hpp"

namespace excovery::obs {

enum class Track : std::uint8_t { kWall = 1, kSim = 2 };

/// One trace_event record.  Timestamps/durations are nanoseconds on the
/// track's own timeline (wall: since buffer construction; sim: since
/// simulated time zero); the JSON writer converts to microseconds.
struct TraceEvent {
  Track track = Track::kWall;
  char phase = 'X';       ///< 'X' complete, 'i' instant, 'b'/'e' async, 'C' counter
  std::int64_t ts_ns = 0;
  std::int64_t dur_ns = 0;     ///< complete events only
  std::uint64_t async_id = 0;  ///< async events only
  std::uint32_t tid = 0;
  std::string name;
  std::string category;
  /// Pre-rendered JSON object for "args" ("" = omitted).
  std::string args_json;
};

/// Stable small integer for the calling thread (dense, first-use order).
std::uint32_t current_thread_tid();

class TraceBuffer {
 public:
  explicit TraceBuffer(bool enabled = true)
      : enabled_(enabled), wall_origin_(std::chrono::steady_clock::now()) {}

  bool enabled() const noexcept { return enabled_; }
  void set_enabled(bool enabled) noexcept { enabled_ = enabled; }

  /// Nanoseconds since buffer construction (the wall track's timeline).
  std::int64_t wall_now_ns() const;

  void complete(Track track, std::uint32_t tid, std::string name,
                std::string category, std::int64_t ts_ns, std::int64_t dur_ns,
                std::string args_json = "");
  void instant(Track track, std::uint32_t tid, std::string name,
               std::string category, std::int64_t ts_ns,
               std::string args_json = "");
  void async_begin(Track track, std::uint64_t id, std::string name,
                   std::string category, std::int64_t ts_ns,
                   std::string args_json = "");
  void async_end(Track track, std::uint64_t id, std::string name,
                 std::string category, std::int64_t ts_ns);
  void counter(Track track, std::uint32_t tid, std::string name,
               std::int64_t ts_ns, double value);

  std::size_t size() const;

  /// Full trace as Chrome trace_event JSON (object form, with track
  /// metadata naming the two processes).
  std::string to_json() const;
  Status write_json(const std::string& path) const;

 private:
  void push(TraceEvent event);

  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  bool enabled_;
  std::chrono::steady_clock::time_point wall_origin_;
};

#if EXCOVERY_OBS_ENABLED

/// RAII wall-clock span on the wall track: begins at construction, emits a
/// complete event at destruction.  A default-constructed (or null-buffer)
/// span is inert.
class WallSpan {
 public:
  WallSpan() = default;
  WallSpan(TraceBuffer* buffer, std::string name, std::string category,
           std::string args_json = "")
      : buffer_(buffer && buffer->enabled() ? buffer : nullptr),
        name_(std::move(name)),
        category_(std::move(category)),
        args_json_(std::move(args_json)) {
    if (buffer_) start_ns_ = buffer_->wall_now_ns();
  }
  WallSpan(WallSpan&& other) noexcept { swap(other); }
  WallSpan& operator=(WallSpan&& other) noexcept {
    if (this != &other) {
      finish();
      swap(other);
    }
    return *this;
  }
  WallSpan(const WallSpan&) = delete;
  WallSpan& operator=(const WallSpan&) = delete;
  ~WallSpan() { finish(); }

 private:
  void swap(WallSpan& other) noexcept {
    std::swap(buffer_, other.buffer_);
    std::swap(start_ns_, other.start_ns_);
    name_.swap(other.name_);
    category_.swap(other.category_);
    args_json_.swap(other.args_json_);
  }
  void finish() {
    if (!buffer_) return;
    buffer_->complete(Track::kWall, current_thread_tid(), std::move(name_),
                      std::move(category_), start_ns_,
                      buffer_->wall_now_ns() - start_ns_,
                      std::move(args_json_));
    buffer_ = nullptr;
  }

  TraceBuffer* buffer_ = nullptr;
  std::int64_t start_ns_ = 0;
  std::string name_;
  std::string category_;
  std::string args_json_;
};

/// RAII simulated-time span on the sim track.  The caller supplies the
/// clock (typically `[&s]{ return s.now().nanos(); }` over the scheduler);
/// construction reads the start, destruction reads the end.
class SimSpan {
 public:
  using NowFn = std::function<std::int64_t()>;

  SimSpan() = default;
  SimSpan(TraceBuffer* buffer, std::uint32_t tid, std::string name,
          std::string category, NowFn now, std::string args_json = "")
      : buffer_(buffer && buffer->enabled() ? buffer : nullptr),
        tid_(tid),
        name_(std::move(name)),
        category_(std::move(category)),
        args_json_(std::move(args_json)),
        now_(std::move(now)) {
    if (buffer_) start_ns_ = now_();
  }
  SimSpan(SimSpan&& other) noexcept { swap(other); }
  SimSpan& operator=(SimSpan&& other) noexcept {
    if (this != &other) {
      finish();
      swap(other);
    }
    return *this;
  }
  SimSpan(const SimSpan&) = delete;
  SimSpan& operator=(const SimSpan&) = delete;
  ~SimSpan() { finish(); }

 private:
  void swap(SimSpan& other) noexcept {
    std::swap(buffer_, other.buffer_);
    std::swap(tid_, other.tid_);
    std::swap(start_ns_, other.start_ns_);
    name_.swap(other.name_);
    category_.swap(other.category_);
    args_json_.swap(other.args_json_);
    now_.swap(other.now_);
  }
  void finish() {
    if (!buffer_) return;
    buffer_->complete(Track::kSim, tid_, std::move(name_),
                      std::move(category_), start_ns_, now_() - start_ns_,
                      std::move(args_json_));
    buffer_ = nullptr;
  }

  TraceBuffer* buffer_ = nullptr;
  std::uint32_t tid_ = 0;
  std::int64_t start_ns_ = 0;
  std::string name_;
  std::string category_;
  std::string args_json_;
  NowFn now_;
};

#else  // !EXCOVERY_OBS_ENABLED: spans collapse to inert guards.

class WallSpan {
 public:
  WallSpan() = default;
  WallSpan(TraceBuffer*, std::string, std::string, std::string = "") {}
};

class SimSpan {
 public:
  using NowFn = std::function<std::int64_t()>;
  SimSpan() = default;
  SimSpan(TraceBuffer*, std::uint32_t, std::string, std::string, NowFn,
          std::string = "") {}
};

#endif  // EXCOVERY_OBS_ENABLED

/// Escape a string for embedding in a JSON string literal.
std::string json_escape(std::string_view text);

}  // namespace excovery::obs
