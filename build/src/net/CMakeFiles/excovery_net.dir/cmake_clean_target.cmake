file(REMOVE_RECURSE
  "libexcovery_net.a"
)
