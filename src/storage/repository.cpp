#include "storage/repository.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

namespace excovery::storage {

namespace fs = std::filesystem;

namespace {

bool plain_name(const std::string& name) {
  return !name.empty() && name.find('/') == std::string::npos &&
         name.find('\\') == std::string::npos;
}

bool hex_digest(const std::string& digest) {
  if (digest.size() < 2) return false;
  for (char c : digest) {
    const bool hex = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f');
    if (!hex) return false;
  }
  return true;
}

/// Write `contents` to `path` crash-safely: a temporary sibling file is
/// written in full, then atomically renamed over the destination.  A crash
/// mid-write leaves at worst a stale .tmp sibling, never a truncated
/// destination; re-storing over an existing file replaces it in place.
Status atomic_write(const fs::path& path, const std::string& contents) {
  const fs::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return err_io("cannot write '" + tmp.string() + "'");
    out.write(contents.data(),
              static_cast<std::streamsize>(contents.size()));
    if (!out.flush()) return err_io("cannot flush '" + tmp.string() + "'");
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return err_io("cannot rename into '" + path.string() + "'");
  }
  return {};
}

Status atomic_save_package(const ExperimentPackage& package,
                           const fs::path& path) {
  const Bytes bytes = package.database().serialize();
  return atomic_write(
      path, std::string(reinterpret_cast<const char*>(bytes.data()),
                        bytes.size()));
}

/// Read a tab-separated two-column index file, invoking `entry` per
/// well-formed line.  Corrupt lines (no tab, empty columns, embedded
/// separators) are skipped: an index damaged by a crash degrades to the
/// directory scan instead of failing open().
template <typename Fn>
void load_index_lines(const fs::path& path, Fn&& entry) {
  std::ifstream in(path);
  if (!in) return;
  std::string line;
  while (std::getline(in, line)) {
    const std::size_t tab = line.find('\t');
    if (tab == std::string::npos || tab == 0 || tab + 1 >= line.size()) {
      continue;
    }
    entry(line.substr(0, tab), line.substr(tab + 1));
  }
}

}  // namespace

Result<Repository> Repository::open(const std::string& directory) {
  std::error_code ec;
  fs::create_directories(directory, ec);
  if (ec) {
    return err_io("cannot create repository directory '" + directory +
                  "': " + ec.message());
  }
  Repository repo(directory);

  // Index files first (tolerating corrupt lines), keeping only entries
  // whose package file actually exists.
  load_index_lines(fs::path(directory) / "index.txt",
                   [&](std::string id, std::string file) {
                     if (!plain_name(id) || !plain_name(file)) return;
                     if (!fs::exists(fs::path(directory) / file)) return;
                     repo.index_.insert_or_assign(std::move(id),
                                                  std::move(file));
                   });
  load_index_lines(
      fs::path(directory) / "cas-index.txt",
      [&](std::string digest, std::string relative) {
        if (!hex_digest(digest)) return;
        if (relative.find("..") != std::string::npos) return;
        if (!fs::exists(fs::path(directory) / relative)) return;
        repo.cas_index_.insert_or_assign(std::move(digest),
                                         std::move(relative));
      });

  // Then rebuild from the files actually present (self-healing if either
  // index file is stale, corrupt or missing).
  std::vector<fs::path> entries;
  for (const auto& entry : fs::directory_iterator(directory, ec)) {
    entries.push_back(entry.path());
  }
  std::sort(entries.begin(), entries.end());
  for (const fs::path& path : entries) {
    if (path.extension() == ".excovery") {
      repo.index_.insert_or_assign(path.stem().string(),
                                   path.filename().string());
    }
  }
  const fs::path cas_root = fs::path(directory) / "cas";
  if (fs::is_directory(cas_root, ec)) {
    std::vector<fs::path> cas_files;
    for (const auto& entry :
         fs::recursive_directory_iterator(cas_root, ec)) {
      if (entry.path().extension() == ".excovery") {
        cas_files.push_back(entry.path());
      }
    }
    std::sort(cas_files.begin(), cas_files.end());
    for (const fs::path& path : cas_files) {
      const std::string digest = path.stem().string();
      if (!hex_digest(digest)) continue;
      repo.cas_index_.insert_or_assign(
          digest, fs::relative(path, directory, ec).generic_string());
    }
  }
  return repo;
}

std::string Repository::path_for(const std::string& experiment_id) const {
  return (fs::path(directory_) / (experiment_id + ".excovery")).string();
}

std::string Repository::cas_relative_path(const std::string& digest) {
  return "cas/" + digest.substr(0, 2) + "/" + digest + ".excovery";
}

Status Repository::save_index() const {
  std::ostringstream out;
  for (const auto& [id, file] : index_) out << id << "\t" << file << "\n";
  return atomic_write(fs::path(directory_) / "index.txt", out.str());
}

Status Repository::save_cas_index() const {
  std::ostringstream out;
  for (const auto& [digest, relative] : cas_index_) {
    out << digest << "\t" << relative << "\n";
  }
  return atomic_write(fs::path(directory_) / "cas-index.txt", out.str());
}

Status Repository::store(const std::string& experiment_id,
                         const ExperimentPackage& package) {
  if (!plain_name(experiment_id)) {
    return err_invalid("experiment id must be a non-empty plain name");
  }
  // The file name is a pure function of the id, so the atomic rename
  // replaces any previous package for this id in place: no leaked file,
  // and the index entry below overwrites rather than duplicates.
  EXC_TRY(atomic_save_package(package, path_for(experiment_id)));
  index_.insert_or_assign(experiment_id, experiment_id + ".excovery");
  return save_index();
}

Result<ExperimentPackage> Repository::fetch(
    const std::string& experiment_id) const {
  if (!contains(experiment_id)) {
    return err_not_found("no experiment '" + experiment_id +
                         "' in repository");
  }
  return ExperimentPackage::load(path_for(experiment_id));
}

bool Repository::contains(const std::string& experiment_id) const {
  return index_.find(experiment_id) != index_.end();
}

std::vector<std::string> Repository::experiment_ids() const {
  std::vector<std::string> out;
  out.reserve(index_.size());
  for (const auto& [id, file] : index_) out.push_back(id);
  return out;
}

Status Repository::store_by_hash(const std::string& digest,
                                 const ExperimentPackage& package) {
  if (!hex_digest(digest)) {
    return err_invalid("content digest must be lower-case hex: '" + digest +
                       "'");
  }
  if (contains_hash(digest)) return {};  // content-addressed: idempotent
  const std::string relative = cas_relative_path(digest);
  const fs::path path = fs::path(directory_) / relative;
  std::error_code ec;
  fs::create_directories(path.parent_path(), ec);
  if (ec) {
    return err_io("cannot create CAS directory '" +
                  path.parent_path().string() + "': " + ec.message());
  }
  EXC_TRY(atomic_save_package(package, path));
  cas_index_.insert_or_assign(digest, relative);
  return save_cas_index();
}

Result<ExperimentPackage> Repository::fetch_by_hash(
    const std::string& digest) const {
  auto it = cas_index_.find(digest);
  if (it == cas_index_.end()) {
    return err_not_found("no package with digest '" + digest +
                         "' in repository");
  }
  return ExperimentPackage::load(
      (fs::path(directory_) / it->second).string());
}

bool Repository::contains_hash(const std::string& digest) const {
  return cas_index_.find(digest) != cas_index_.end();
}

std::vector<std::string> Repository::hashes() const {
  std::vector<std::string> out;
  out.reserve(cas_index_.size());
  for (const auto& [digest, relative] : cas_index_) out.push_back(digest);
  return out;
}

Result<std::vector<Repository::CrossEvent>> Repository::events_of_type(
    const std::string& event_type) const {
  std::vector<CrossEvent> out;
  for (const auto& [id, file] : index_) {
    EXC_ASSIGN_OR_RETURN(ExperimentPackage package, fetch(id));
    EXC_ASSIGN_OR_RETURN(std::vector<EventRow> events, package.all_events());
    for (EventRow& event : events) {
      if (event.event_type == event_type) {
        out.push_back(CrossEvent{id, std::move(event)});
      }
    }
  }
  return out;
}

Result<std::vector<Repository::Summary>> Repository::summaries() const {
  std::vector<Summary> out;
  for (const auto& [id, file] : index_) {
    EXC_ASSIGN_OR_RETURN(ExperimentPackage package, fetch(id));
    Summary summary;
    summary.experiment_id = id;
    summary.name = package.experiment_name().value_or("");
    summary.runs = package.run_ids().size();
    summary.events = package.event_count();
    summary.packets = package.packet_count();
    out.push_back(std::move(summary));
  }
  return out;
}

}  // namespace excovery::storage
