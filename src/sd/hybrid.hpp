// Hybrid (adaptive) SD architecture (§III-B: "There exist mixed forms that
// can switch among two- and three-party, called adaptive or hybrid
// architectures").
//
// Composition of the two concrete protocols:
//  * While no SCM is known, the agent operates two-party: multicast mDNS
//    queries/announcements carry discovery.
//  * The SLP stack keeps looking for an SCM the whole time ("In a hybrid
//    architecture, SU and SM agents keep looking for SCMs", §V).  When one
//    is found (scm_found), active mDNS querying is suspended and directed
//    discovery via the SCM takes over; publications are registered.
//  * A watchdog monitors SCM liveness; when the SCM disappears, the agent
//    falls back to two-party operation seamlessly.
//
// Discovery results from both stacks are merged and deduplicated, so the
// experiment process sees exactly one sd_service_add per instance.
#pragma once

#include <map>
#include <memory>
#include <set>

#include "sd/mdns.hpp"
#include "sd/slp.hpp"
#include "sim/lifetime.hpp"

namespace excovery::sd {

struct HybridConfig {
  MdnsConfig mdns;
  SlpConfig slp;
  /// Watchdog period for detecting SCM loss and re-enabling mDNS search.
  sim::SimDuration watchdog_interval = sim::SimDuration::from_seconds(2);
};

class HybridAgent final : public SdAgent {
 public:
  HybridAgent(net::Network& network, net::NodeId node,
              const HybridConfig& config = {});
  ~HybridAgent() override;

  Status init(SdRole role, const ValueMap& params) override;
  Status exit() override;
  void crash() override;
  Status start_search(const ServiceType& type) override;
  Status stop_search(const ServiceType& type) override;
  Status start_publish(const ServiceInstance& instance) override;
  Status stop_publish(const std::string& instance_name) override;
  Status update_publication(const ServiceInstance& instance) override;

  std::vector<ServiceInstance> discovered(
      const ServiceType& type) const override;
  bool initialized() const override { return initialized_; }
  SdRole role() const override { return role_; }

  /// True while the agent operates in three-party (directed) mode.
  bool directed_mode() const noexcept { return directed_mode_; }
  std::optional<net::Address> known_scm() const {
    return slp_ ? slp_->known_scm() : std::nullopt;
  }

  const MdnsAgent* mdns() const noexcept { return mdns_.get(); }
  const SlpAgent* slp() const noexcept { return slp_.get(); }

 private:
  void route_inner_event(std::string_view event, const Value& parameter,
                         bool from_mdns);
  void enter_directed_mode();
  void leave_directed_mode();
  void watchdog();

  net::Network& network_;
  net::NodeId node_;
  HybridConfig config_;
  std::unique_ptr<MdnsAgent> mdns_;
  std::unique_ptr<SlpAgent> slp_;

  bool initialized_ = false;
  SdRole role_ = SdRole::kServiceUser;
  bool directed_mode_ = false;
  int pending_inits_ = 0;
  sim::GenerationGate generation_;

  std::set<ServiceType> active_searches_;
  /// Names for which sd_service_add has been emitted, per type.
  std::map<ServiceType, std::set<std::string>> reported_;
  std::map<std::string, ServiceInstance> published_;
};

}  // namespace excovery::sd
