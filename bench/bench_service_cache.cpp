// Content-addressed memoization payoff (DESIGN.md §14).
//
// The ExperimentService answers a repeated campaign submission from its
// result cache instead of re-simulating; because the digest covers every
// answer-relevant input, the served package is byte-identical to a fresh
// run.  This bench records what that buys:
//
//  * cold-miss latency: a submission that must simulate (fresh service);
//  * warm-hit latency: the identical submission against a warm cache —
//    the canonical-hash + LRU lookup path, gated to be at least 100x
//    faster than the cold miss (WARN-only under --smoke);
//  * hit throughput at 1, 4 and hardware-concurrency client threads, all
//    hammering the same digest;
//  * heap allocations on the hit path (dominated by the canonical XML
//    serialisation feeding the digest) — reported for trajectory.
//
// Results go to BENCH_cache.json (curated format, bench/collect_bench.py).
// The JSON is written in --smoke mode too so CI can archive the file from
// the smoke run.
//
// Flags:
//   --smoke     tiny campaign + iteration counts, WARN-only gate — CI
//   --reps N    repetitions (default 5, median taken)
//   --out PATH  override the JSON output path (default BENCH_cache.json)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "common/strings.hpp"
#include "core/scenario.hpp"
#include "core/service.hpp"

namespace {

using excovery::Result;
using excovery::core::ExperimentDescription;
using excovery::core::ExperimentService;
using excovery::core::ServiceReply;
using excovery::core::Submission;
using excovery::core::SubmitOutcome;

// ---- allocation counting ---------------------------------------------------

std::atomic<std::uint64_t> g_allocs{0};

}  // namespace

// The replacement operator new/delete intentionally pair ::new with
// std::malloc/std::free (same idiom as bench_kernel_hotpath).
void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

double median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

Submission campaign(int replications) {
  excovery::core::scenario::TwoPartyOptions options;
  options.replications = replications;
  options.environment_count = 2;
  options.deadline_s = 5.0;
  Result<ExperimentDescription> description =
      excovery::core::scenario::two_party_sd(options);
  if (!description.ok()) std::abort();
  Submission submission;
  submission.description = std::move(description).value();
  submission.scope.platform_seed = 2026;
  return submission;
}

ServiceReply must_submit(ExperimentService& service,
                         const Submission& submission) {
  ServiceReply reply = service.submit(submission);
  if (!reply.status.ok()) {
    std::fprintf(stderr, "submit failed: %s\n",
                 reply.status.error().to_string().c_str());
    std::abort();
  }
  return reply;
}

/// Warm-cache submissions per second with `clients` threads hammering the
/// same digest for ~`iterations` submissions each.
double hit_throughput(ExperimentService& service,
                      const Submission& submission, unsigned clients,
                      int iterations) {
  std::atomic<std::uint64_t> total{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (unsigned c = 0; c < clients; ++c) {
    threads.emplace_back([&] {
      for (int i = 0; i < iterations; ++i) {
        if (service.submit(submission).outcome != SubmitOutcome::kMemoryHit) {
          std::abort();
        }
        total.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  return static_cast<double>(total.load()) / seconds_since(start);
}

std::string today() {
  std::time_t now = std::time(nullptr);
  char buffer[32];
  std::strftime(buffer, sizeof buffer, "%Y-%m-%d", std::localtime(&now));
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int reps = 5;
  std::string out = "BENCH_cache.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      reps = 3;
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--reps N] [--out PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  const int replications = smoke ? 5 : 50;
  const int hit_iterations = smoke ? 200 : 2000;
  const Submission submission = campaign(replications);
  std::printf("service cache bench: %d-replication campaign, %d reps%s\n",
              replications, reps, smoke ? " (smoke)" : "");

  // Cold miss: a fresh service per repetition, so every submission
  // simulates the full campaign.
  std::vector<double> cold_times;
  for (int rep = 0; rep < reps; ++rep) {
    ExperimentService::Config config;
    config.workers = 1;
    ExperimentService service(std::move(config));
    const auto start = std::chrono::steady_clock::now();
    ServiceReply reply = must_submit(service, submission);
    cold_times.push_back(seconds_since(start));
    if (reply.outcome != SubmitOutcome::kSimulated) std::abort();
  }
  const double cold_s = median(cold_times);

  // Warm hit: one service, one simulation, then timed repeats.  The timed
  // path is digest computation + LRU lookup.
  ExperimentService::Config config;
  config.workers = 1;
  ExperimentService service(std::move(config));
  (void)must_submit(service, submission);
  std::vector<double> warm_times;
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < hit_iterations; ++i) {
      if (service.submit(submission).outcome != SubmitOutcome::kMemoryHit) {
        std::abort();
      }
    }
    warm_times.push_back(seconds_since(start) / hit_iterations);
  }
  const double warm_s = median(warm_times);
  const double speedup = cold_s / warm_s;

  // Allocations on one hit.
  const std::uint64_t allocs_before =
      g_allocs.load(std::memory_order_relaxed);
  (void)must_submit(service, submission);
  const std::uint64_t hit_allocs =
      g_allocs.load(std::memory_order_relaxed) - allocs_before;

  // Hit throughput at 1 / 4 / hardware-concurrency clients.
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const double rate_1 = hit_throughput(service, submission, 1, hit_iterations);
  const double rate_4 = hit_throughput(service, submission, 4, hit_iterations);
  const double rate_hw =
      hit_throughput(service, submission, hw, hit_iterations);

  std::printf("  cold miss  %10.3f ms\n", cold_s * 1e3);
  std::printf("  warm hit   %10.3f us   (%0.0fx faster, %llu allocations)\n",
              warm_s * 1e6, speedup,
              static_cast<unsigned long long>(hit_allocs));
  std::printf("  hit throughput: 1 client %8.0f/s   4 clients %8.0f/s   "
              "%u clients %8.0f/s\n",
              rate_1, rate_4, hw, rate_hw);

  const double gate = 100.0;
  bool failed = false;
  if (speedup < gate) {
    std::fprintf(stderr,
                 "%s: warm hit only %.1fx faster than cold miss "
                 "(gate: >= %.0fx)\n",
                 smoke ? "WARN (smoke, not gated)" : "FAIL", speedup, gate);
    failed = !smoke;
  }

  std::string json;
  json += "{\n";
  json +=
      " \"description\": \"Content-addressed campaign memoization "
      "(bench/bench_service_cache.cpp, DESIGN.md \\u00a714). 'seed' = "
      "cold-miss submission latency (the service must simulate the whole "
      "campaign); 'current' = warm-hit latency for the identical submission "
      "(canonical digest + LRU lookup, byte-identical reply). The speedup "
      "is gated >= 100x outside --smoke. clients_*_per_second are warm-hit "
      "submissions/s with that many client threads on one digest; "
      "hit_allocations counts heap allocations for a single hit "
      "(dominated by the canonical XML serialisation). Median over "
      "repetitions.\",\n";
  json += " \"machine\": \"vm\",\n";
  json += " \"date\": \"" + today() + "\",\n";
  json += " \"benchmarks\": {\n";
  json += excovery::strings::format(
      "  \"BM_ServiceCache/warm_hit_vs_cold_miss\": {\n"
      "   \"seed\": {\"items_per_second\": %.3f, \"cpu_time_ns\": %.0f},\n"
      "   \"current\": {\"items_per_second\": %.0f, \"cpu_time_ns\": "
      "%.0f},\n"
      "   \"speedup_vs_cold_miss\": %.1f,\n"
      "   \"hit_allocations\": %llu,\n"
      "   \"campaign_replications\": %d\n"
      "  },\n",
      1.0 / cold_s, cold_s * 1e9, 1.0 / warm_s, warm_s * 1e9, speedup,
      static_cast<unsigned long long>(hit_allocs), replications);
  json += excovery::strings::format(
      "  \"BM_ServiceCache/hit_throughput\": {\n"
      "   \"current\": {\"items_per_second\": %.0f, \"cpu_time_ns\": "
      "%.0f},\n"
      "   \"clients_1_per_second\": %.0f,\n"
      "   \"clients_4_per_second\": %.0f,\n"
      "   \"clients_%u_per_second\": %.0f\n"
      "  }\n",
      rate_hw, 1e9 / rate_hw, rate_1, rate_4, hw, rate_hw);
  json += " }\n}\n";

  std::FILE* file = std::fopen(out.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  std::printf("wrote %s\n", out.c_str());
  return failed ? 1 : 0;
}
