file(REMOVE_RECURSE
  "CMakeFiles/excovery_core.dir/campaign.cpp.o"
  "CMakeFiles/excovery_core.dir/campaign.cpp.o.d"
  "CMakeFiles/excovery_core.dir/description.cpp.o"
  "CMakeFiles/excovery_core.dir/description.cpp.o.d"
  "CMakeFiles/excovery_core.dir/interpreter.cpp.o"
  "CMakeFiles/excovery_core.dir/interpreter.cpp.o.d"
  "CMakeFiles/excovery_core.dir/master.cpp.o"
  "CMakeFiles/excovery_core.dir/master.cpp.o.d"
  "CMakeFiles/excovery_core.dir/node_manager.cpp.o"
  "CMakeFiles/excovery_core.dir/node_manager.cpp.o.d"
  "CMakeFiles/excovery_core.dir/plan.cpp.o"
  "CMakeFiles/excovery_core.dir/plan.cpp.o.d"
  "CMakeFiles/excovery_core.dir/platform.cpp.o"
  "CMakeFiles/excovery_core.dir/platform.cpp.o.d"
  "CMakeFiles/excovery_core.dir/recorder.cpp.o"
  "CMakeFiles/excovery_core.dir/recorder.cpp.o.d"
  "CMakeFiles/excovery_core.dir/scenario.cpp.o"
  "CMakeFiles/excovery_core.dir/scenario.cpp.o.d"
  "libexcovery_core.a"
  "libexcovery_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/excovery_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
