# Empty compiler generated dependencies file for test_core_master.
# This may be replaced when dependencies are built.
