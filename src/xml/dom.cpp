#include "xml/dom.hpp"

#include "common/strings.hpp"

namespace excovery::xml {

const std::string* Element::attr(std::string_view name) const noexcept {
  for (const Attribute& a : attrs_) {
    if (a.name == name) return &a.value;
  }
  return nullptr;
}

std::string Element::attr_or(std::string_view name,
                             std::string_view fallback) const {
  const std::string* v = attr(name);
  return v ? *v : std::string(fallback);
}

Result<std::string> Element::require_attr(std::string_view name) const {
  const std::string* v = attr(name);
  if (!v) {
    return err_validation("element <" + name_ + "> missing attribute '" +
                          std::string(name) + "'");
  }
  return *v;
}

Element& Element::set_attr(std::string_view name, std::string_view value) {
  for (Attribute& a : attrs_) {
    if (a.name == name) {
      a.value = std::string(value);
      return *this;
    }
  }
  attrs_.push_back({std::string(name), std::string(value)});
  return *this;
}

Element& Element::add_child(std::string name) {
  children_.push_back(std::make_unique<Element>(std::move(name)));
  return *children_.back();
}

Element& Element::adopt(ElementPtr child) {
  children_.push_back(std::move(child));
  return *children_.back();
}

const Element* Element::child(std::string_view name) const noexcept {
  for (const ElementPtr& c : children_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

Element* Element::child(std::string_view name) noexcept {
  for (ElementPtr& c : children_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

Result<const Element*> Element::require_child(std::string_view name) const {
  const Element* c = child(name);
  if (!c) {
    return err_validation("element <" + name_ + "> missing child <" +
                          std::string(name) + ">");
  }
  return c;
}

std::vector<const Element*> Element::children_named(
    std::string_view name) const {
  std::vector<const Element*> out;
  for (const ElementPtr& c : children_) {
    if (c->name() == name) out.push_back(c.get());
  }
  return out;
}

std::string Element::text() const {
  std::string joined;
  for (const std::string& seg : text_segments_) joined += seg;
  return strings::trim(joined);
}

void Element::append_text(std::string_view text) {
  text_segments_.emplace_back(text);
}

Element& Element::set_text(std::string_view text) {
  text_segments_.clear();
  if (!text.empty()) text_segments_.emplace_back(text);
  return *this;
}

Element& Element::add_text_child(std::string name, std::string_view text) {
  Element& c = add_child(std::move(name));
  c.set_text(text);
  return c;
}

ElementPtr Element::clone() const {
  auto copy = std::make_unique<Element>(name_);
  copy->attrs_ = attrs_;
  copy->text_segments_ = text_segments_;
  copy->children_.reserve(children_.size());
  for (const ElementPtr& c : children_) copy->children_.push_back(c->clone());
  return copy;
}

bool Element::equals(const Element& other) const {
  if (name_ != other.name_) return false;
  if (attrs_.size() != other.attrs_.size()) return false;
  for (std::size_t i = 0; i < attrs_.size(); ++i) {
    if (attrs_[i].name != other.attrs_[i].name ||
        attrs_[i].value != other.attrs_[i].value) {
      return false;
    }
  }
  if (text() != other.text()) return false;
  if (children_.size() != other.children_.size()) return false;
  for (std::size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->equals(*other.children_[i])) return false;
  }
  return true;
}

}  // namespace excovery::xml
