// Fault-subsystem overhead and dynamic-world throughput (DESIGN.md §12).
//
// Two promises are checked on the bench_kernel_hotpath packet workloads:
//
//  1. Idle cost: with the fault subsystem constructed (injector + schedule
//     engine, lifecycle exercised once) but NO fault active, the packet hot
//     path must cost under 3% versus a network without the subsystem — the
//     filter chain is pay-per-use.
//  2. Churn-world throughput (not gated, reported for trajectory): the same
//     workloads with a representative dynamic world active — crash/restart
//     churn on interior nodes, Gilbert–Elliott bursty loss, and packet
//     reordering at the source.
//
// Results go to BENCH_faults.json (curated format, bench/collect_bench.py).
// Unlike the other benches the JSON is written in --smoke mode too (gate is
// WARN-only there) so CI can archive the file from the smoke run.
//
// Flags:
//   --smoke     tiny iteration counts, WARN-only gate — CI smoke step
//   --reps N    repetitions per mode (default 5, median taken)
//   --out PATH  override the JSON output path (default BENCH_faults.json)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <functional>
#include <string>
#include <vector>

#include "common/strings.hpp"
#include "faults/injector.hpp"
#include "faults/schedule.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "sim/scheduler.hpp"

namespace {

using excovery::net::Address;
using excovery::net::NodeId;
using excovery::net::Packet;
using excovery::sim::SimDuration;
namespace faults = excovery::faults;

enum class Mode { kBare, kIdle, kChurnWorld };

double median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

excovery::net::LinkModel lossless_link() {
  excovery::net::LinkModel model = excovery::net::LinkModel::ideal();
  model.loss = 0.0;
  model.jitter_frac = 0.0;
  return model;
}

struct FaultWorld {
  std::unique_ptr<faults::FaultInjector> injector;
  std::unique_ptr<faults::FaultScheduleEngine> engine;

  /// kIdle: construct the subsystem and run one schedule/stop cycle so the
  /// registration path is exercised, then leave the network fault-free.
  /// kChurnWorld: arm a representative dynamic world for the whole bench.
  void arm(Mode mode, excovery::net::Network& network,
           excovery::net::Port port, const std::vector<NodeId>& churn_nodes,
           NodeId ge_node, NodeId reorder_node) {
    if (mode == Mode::kBare) return;
    injector = std::make_unique<faults::FaultInjector>(network, port);
    engine = std::make_unique<faults::FaultScheduleEngine>(*injector);
    if (mode == Mode::kIdle) {
      excovery::Result<faults::FaultHandle> probe =
          injector->message_loss(0, 0.5, faults::FaultDirection::kBoth);
      if (!probe.ok()) std::abort();
      probe.value()->stop();
      return;
    }
    faults::TemporalSpec window;
    window.duration = SimDuration::from_seconds(100000.0);
    faults::ChurnSpec churn;
    churn.mean_uptime = SimDuration::from_millis(400);
    churn.mean_downtime = SimDuration::from_millis(100);
    for (NodeId node : churn_nodes) {
      faults::TemporalSpec seeded = window;
      seeded.randomseed = 17 + node;
      if (!engine->node_churn(node, churn, seeded).ok()) std::abort();
    }
    faults::GilbertElliott ge;
    ge.p_enter_bad = 0.05;
    ge.p_exit_bad = 0.3;
    ge.loss_bad = 1.0;
    if (!injector->ge_loss(ge_node, ge, faults::FaultDirection::kBoth, window)
             .ok()) {
      std::abort();
    }
    if (!injector
             ->message_reorder(reorder_node, 0.2,
                               SimDuration::from_millis(5), window)
             .ok()) {
      std::abort();
    }
  }
};

/// Multicast flood over an 8x8 grid — the dominant packet path of mesh
/// campaigns.  Stepped with run_until so churn processes never block the
/// drain.
double flood_grid(Mode mode, std::size_t side, int floods) {
  excovery::sim::Scheduler scheduler;
  excovery::net::Network network(
      scheduler, excovery::net::Topology::grid(side, side, lossless_link()),
      /*seed=*/7);
  network.set_capture_enabled(false);
  FaultWorld world;
  world.arm(mode, network, excovery::net::kSdPort,
            {9, 27, 45}, /*ge_node=*/18, /*reorder_node=*/0);

  const Address group = Address::sd_multicast();
  std::uint64_t delivered = 0;
  for (NodeId n = 0; n < network.node_count(); ++n) {
    network.join_group(n, group);
    network.bind(n, excovery::net::kSdPort,
                 [&delivered](NodeId, const Packet&) { ++delivered; });
  }
  auto send_flood = [&] {
    Packet packet;
    packet.dst = group;
    packet.dst_port = excovery::net::kSdPort;
    packet.ttl = 32;
    packet.payload.assign(512, 0x6B);
    (void)network.send(0, std::move(packet));
  };
  auto step = [&] {
    scheduler.run_until(scheduler.now() + SimDuration::from_millis(50));
  };
  send_flood();  // warm-up
  step();
  network.reset_run_state();

  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < floods; ++i) {
    send_flood();
    step();
    network.reset_run_state();  // clear dedup sets between floods
  }
  auto stop = std::chrono::steady_clock::now();
  if (delivered == 0) std::abort();
  return std::chrono::duration<double>(stop - start).count();
}

/// Unicast hop chain: every packet crosses length-1 links.
double unicast_chain(Mode mode, std::size_t length, int batches) {
  excovery::sim::Scheduler scheduler;
  excovery::net::Network network(
      scheduler, excovery::net::Topology::chain(length, lossless_link()),
      /*seed=*/7);
  network.set_capture_enabled(false);
  const excovery::net::Port port = 4000;
  FaultWorld world;
  // Churn the ends' neighbours, burst-loss a relay, reorder at the source.
  world.arm(mode, network, port,
            {static_cast<NodeId>(length - 2)}, /*ge_node=*/2,
            /*reorder_node=*/0);

  const NodeId last = static_cast<NodeId>(length - 1);
  std::uint64_t delivered = 0;
  network.bind(last, port, [&delivered](NodeId, const Packet&) {
    ++delivered;
  });
  auto send_one = [&] {
    Packet packet;
    packet.dst = network.topology().node(last).address;
    packet.dst_port = port;
    packet.payload.assign(256, 0x5A);
    (void)network.send(0, std::move(packet));
  };
  auto step = [&] {
    scheduler.run_until(scheduler.now() + SimDuration::from_millis(20));
  };
  send_one();  // warm-up
  step();

  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < batches; ++i) {
    for (int j = 0; j < 16; ++j) send_one();
    step();
  }
  auto stop = std::chrono::steady_clock::now();
  if (mode != Mode::kChurnWorld && delivered == 0) std::abort();
  return std::chrono::duration<double>(stop - start).count();
}

struct Workload {
  std::string name;
  double items_per_iteration = 0.0;  ///< for items/s reporting
  std::function<double(Mode)> run;   ///< returns seconds for the fixed loop
};

std::string today() {
  std::time_t now = std::time(nullptr);
  char buffer[32];
  std::strftime(buffer, sizeof buffer, "%Y-%m-%d", std::localtime(&now));
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int reps = 5;
  std::string out = "BENCH_faults.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      reps = 3;
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--reps N] [--out PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  const int floods = smoke ? 100 : 600;
  const int batches = smoke ? 2000 : 20000;
  std::vector<Workload> workloads;
  workloads.push_back(
      {"flood_grid_8x8", static_cast<double>(floods) * 64,
       [floods](Mode mode) { return flood_grid(mode, 8, floods); }});
  workloads.push_back(
      {"unicast_chain_8", static_cast<double>(batches) * 16 * 7,
       [batches](Mode mode) { return unicast_chain(mode, 8, batches); }});

  std::printf("fault overhead bench: %d repetitions per mode%s\n", reps,
              smoke ? " (smoke)" : "");

  const Mode kModes[] = {Mode::kBare, Mode::kIdle, Mode::kChurnWorld};
  const double budget_percent = 3.0;
  bool over_budget = false;
  struct Line {
    std::string workload;
    double bare_s = 0.0, idle_s = 0.0, churn_s = 0.0;
    double items = 0.0;
  };
  std::vector<Line> lines;

  for (const Workload& workload : workloads) {
    std::vector<double> times[3];
    // Interleave modes within each repetition so clock drift (thermal,
    // noisy neighbours) biases no mode.
    for (int rep = 0; rep < reps; ++rep) {
      for (std::size_t m = 0; m < 3; ++m) {
        times[m].push_back(workload.run(kModes[m]));
      }
    }
    Line line;
    line.workload = workload.name;
    line.items = workload.items_per_iteration;
    line.bare_s = median(times[0]);
    line.idle_s = median(times[1]);
    line.churn_s = median(times[2]);
    const double idle_pct = (line.idle_s - line.bare_s) / line.bare_s * 100.0;
    std::printf("  %-18s bare %8.2f Mitems/s   idle %+6.2f%% %s   "
                "churn-world %8.2f Mitems/s (not gated)\n",
                workload.name.c_str(), line.items / line.bare_s / 1e6,
                idle_pct, idle_pct <= budget_percent ? "PASS" : "OVER-BUDGET",
                line.items / line.churn_s / 1e6);
    if (idle_pct > budget_percent) over_budget = true;
    lines.push_back(std::move(line));
  }

  if (over_budget) {
    if (smoke) {
      std::fprintf(stderr,
                   "WARN: idle fault-subsystem overhead exceeds %.1f%% "
                   "(not gated in smoke mode)\n",
                   budget_percent);
    } else {
      std::fprintf(stderr, "FAIL: idle fault-subsystem overhead exceeds "
                           "%.1f%%\n",
                   budget_percent);
      return 1;
    }
  }

  std::string json;
  json += "{\n";
  json +=
      " \"description\": \"Fault-subsystem overhead "
      "(bench/bench_faults.cpp, DESIGN.md \\u00a712), on the "
      "bench_kernel_hotpath packet workloads. 'seed' = the workload with no "
      "fault subsystem constructed; 'current' = injector + schedule engine "
      "constructed and one fault scheduled/stopped, leaving the network "
      "fault-free (the pay-per-use promise: idle filter chain under 3%, "
      "gated outside --smoke). churn_items_per_second additionally arms a "
      "representative dynamic world — crash/restart churn on interior "
      "nodes, Gilbert-Elliott bursty loss, source-side reordering — and is "
      "reported for trajectory, not gated. Median over interleaved "
      "repetitions.\",\n";
  json += " \"machine\": \"vm\",\n";
  json += " \"date\": \"" + today() + "\",\n";
  json += " \"benchmarks\": {\n";
  bool first = true;
  for (const Line& line : lines) {
    if (!first) json += ",\n";
    first = false;
    json += excovery::strings::format(
        "  \"BM_FaultOverhead/%s\": {\n"
        "   \"seed\": {\"items_per_second\": %.0f, \"cpu_time_ns\": %.3f},\n"
        "   \"current\": {\"items_per_second\": %.0f, \"cpu_time_ns\": "
        "%.3f},\n"
        "   \"overhead_percent\": %.3f,\n"
        "   \"churn_items_per_second\": %.0f\n"
        "  }",
        line.workload.c_str(), line.items / line.bare_s,
        line.bare_s / line.items * 1e9, line.items / line.idle_s,
        line.idle_s / line.items * 1e9,
        (line.idle_s - line.bare_s) / line.bare_s * 100.0,
        line.items / line.churn_s);
  }
  json += "\n }\n}\n";

  std::FILE* file = std::fopen(out.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
