// Deterministic pseudo-random number generation.
//
// Section IV-C1 of the paper: "The various random values used in ExCovery
// are generated using pseudo-random generators.  This allows for perfect
// repeatability of random sequences used within an experiment when
// initialized with the same seed.  Which seed is used for initialization is
// clearly defined in the experiment description."
//
// We realise this with *named streams*: every consumer derives its own
// generator from (experiment seed, stream name, index) so that adding a new
// random consumer never perturbs the sequences seen by existing ones.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace excovery {

/// SplitMix64 step; used for seed derivation and as a simple generator.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Stable 64-bit FNV-1a hash of a string (used to fold stream names into
/// seeds; never changes between versions, part of the repeatability
/// contract).
std::uint64_t fnv1a64(std::string_view s) noexcept;

/// PCG32 (XSH-RR 64/32): small, fast, statistically solid generator with a
/// 64-bit state and 64-bit stream-selection increment.
class Pcg32 {
 public:
  using result_type = std::uint32_t;

  Pcg32() noexcept : Pcg32(0x853c49e6748fea9bULL, 0xda3e39cb94b95bdbULL) {}
  Pcg32(std::uint64_t seed, std::uint64_t stream) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return 0xFFFFFFFFu; }

  result_type operator()() noexcept;

  /// Uniform in [0, bound) without modulo bias.
  std::uint32_t bounded(std::uint32_t bound) noexcept;
  /// Uniform double in [0, 1).
  double uniform01() noexcept;
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;
  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;
  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) noexcept;
  /// Exponential with rate lambda (>0).
  double exponential(double lambda) noexcept;
  /// Normal via Box-Muller (mean, stddev).
  double normal(double mean, double stddev) noexcept;

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& items) noexcept {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = bounded(static_cast<std::uint32_t>(i));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

 private:
  std::uint64_t state_;
  std::uint64_t inc_;
  // Box-Muller caches one deviate.
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Root of the per-experiment randomness tree.  All generators in one
/// experiment derive from a single master seed recorded in the description.
class RngFactory {
 public:
  explicit RngFactory(std::uint64_t master_seed) noexcept
      : master_seed_(master_seed) {}

  std::uint64_t master_seed() const noexcept { return master_seed_; }

  /// Generator for a named stream ("treatment-order", "traffic-pairs", ...)
  /// and an index (run id, node id, ...).  Deterministic in all inputs.
  Pcg32 stream(std::string_view name, std::uint64_t index = 0) const noexcept;

  /// Derived 64-bit sub-seed for handing to components that own their RNGs.
  std::uint64_t derive_seed(std::string_view name,
                            std::uint64_t index = 0) const noexcept;

  /// Derived sub-factory rooted at (name, index).  The run-parallel
  /// executor uses this to give every (run, attempt) its own substream
  /// tree — `factory.sub("run", run_id).sub("attempt", attempt)` — so a
  /// run's randomness is a pure function of the experiment seed and the
  /// run id, never of which runs executed before it or on which worker
  /// replica it landed (DESIGN.md §10).
  RngFactory sub(std::string_view name,
                 std::uint64_t index = 0) const noexcept {
    return RngFactory(derive_seed(name, index));
  }

 private:
  std::uint64_t master_seed_;
};

}  // namespace excovery
