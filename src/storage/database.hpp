// A collection of tables serialisable to a single file.
//
// "This package represents one complete experiment and is preferably stored
// as a database to unify and accelerate data access and extraction methods.
// Facilitating exchange of experiments, ExCovery currently stores the third
// level in a file based relational SQLite database" (§IV-F).  We store a
// single binary file with a magic header, a schema section and column
// blocks (format v2: per-table interned-string dictionary plus one
// length-prefixed typed block per column; the cell-by-cell v1 format is
// still readable for old packages).
#pragma once

#include <map>
#include <memory>
#include <string>

#include "storage/table.hpp"

namespace excovery::storage {

class Database {
 public:
  Database() = default;
  Database(Database&&) = default;
  Database& operator=(Database&&) = default;

  /// Create a table; fails if the name exists.
  Result<Table*> create_table(TableSchema schema);
  /// Existing table or nullptr.
  Table* table(const std::string& name);
  const Table* table(const std::string& name) const;
  /// Existing table or kNotFound.
  Result<Table*> require_table(const std::string& name);

  std::size_t table_count() const noexcept { return tables_.size(); }
  /// Table names in creation order.
  std::vector<std::string> table_names() const;

  /// Human-readable "Table | Attributes" schema listing (regenerates the
  /// paper's Table I from the live store).
  std::string schema_description() const;

  /// Serialise to / from one binary buffer.
  Bytes serialize() const;
  static Result<Database> deserialize(const Bytes& data);

  /// Single-file persistence.
  Status save(const std::string& path) const;
  static Result<Database> load(const std::string& path);

 private:
  std::vector<std::string> order_;  // creation order
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace excovery::storage
