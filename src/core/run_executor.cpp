#include "core/run_executor.hpp"

#include <algorithm>
#include <cstdlib>
#include <memory>
#include <optional>
#include <vector>

#include "common/log.hpp"
#include "common/strings.hpp"
#include "obs/recorder.hpp"

namespace excovery::core {

RunExecutor::RunExecutor(const ExperimentDescription& description,
                         SimPlatform& platform, RunExecutorOptions options)
    : description_(description),
      platform_(platform),
      options_(std::move(options)) {
  if (options_.flight_dir.empty()) {
    if (const char* env = std::getenv("EXCOVERY_FLIGHT_DIR")) {
      options_.flight_dir = env;
    }
  }
}

sim::SimTime RunExecutor::run_epoch(std::int64_t run_id) const noexcept {
  // Worst case per attempt: the full watchdog plus the settle drain; one
  // extra second absorbs preparation/clean-up time.  Sizing the slot for
  // every allowed attempt keeps a retried run inside its own slot, so the
  // *next* run still starts exactly at its epoch.
  std::int64_t attempt_ns = options_.run_watchdog.nanos() +
                            options_.settle.nanos() +
                            sim::SimDuration::from_seconds(1).nanos();
  std::int64_t stride = attempt_ns * options_.max_attempts_per_run;
  return sim::SimTime((run_id - 1) * stride);
}

Status RunExecutor::execute_run(const RunSpec& run, int attempt) {
  // Fast-forward to the run's canonical epoch (a no-op when the clock is
  // already past it, e.g. on retries).  Leftover timers from earlier runs
  // on this instance fire as gated no-ops during the jump; only then are
  // the per-run random substreams rebased, so the streams the run consumes
  // are untouched by the drain.
  platform_.scheduler().run_until(run_epoch(run.run_id));
  platform_.begin_run(run.run_id, attempt);

#if EXCOVERY_OBS_ENABLED
  // Kernel counters are sampled after the epoch drain so the recorded
  // deltas cover exactly this attempt, not leftovers from the jump.
  KernelSample before;
  std::int64_t sim_start_ns = 0;
  std::int64_t wall_start_ns = 0;
  obs::WallSpan wall_span;
  obs::SimSpan sim_span;
  if (obs_ != nullptr) {
    before = sample_kernel();
    sim_start_ns = platform_.scheduler().now().nanos();
    wall_start_ns = obs_->trace().wall_now_ns();
    if (obs_->trace().enabled()) {
      // Label construction is gated too: in metrics-only mode the spans are
      // inert and formatting per attempt would be pure overhead.
      std::string label =
          strings::format("run %lld attempt %d",
                          static_cast<long long>(run.run_id), attempt);
      std::string args =
          strings::format("{\"run\":%lld,\"attempt\":%d}",
                          static_cast<long long>(run.run_id), attempt);
      wall_span = obs::WallSpan(&obs_->trace(), label, "run", args);
      sim_span = obs::SimSpan(
          &obs_->trace(), 0, std::move(label), "run",
          [this] { return platform_.scheduler().now().nanos(); },
          std::move(args));
    }
  }
#endif

  current_run_ = &run;
  Status status = prepare_run(run);
  if (status.ok()) status = run_processes(run, attempt);
  // Clean-up happens even after a failed execution phase.
  Status cleanup = cleanup_run(run);
  current_run_ = nullptr;

#if EXCOVERY_OBS_ENABLED
  const Status& outcome = !status.ok() ? status : cleanup;
  if (obs_ != nullptr) {
    record_attempt_obs(run, outcome, before, sim_start_ns, wall_start_ns);
    if (outcome.ok()) {
      // Only the successful attempt contributes critical paths (the same
      // rule as the metrics ledger): an aborted attempt's graph is partial
      // and its rows would duplicate the retry's.
      obs_->provenance().record_run(
          run.run_id, obs::extract_critical_paths(platform_.lineage()));
    }
  }
  if (!outcome.ok()) dump_flight_recorder(outcome);
#endif

  if (!status.ok()) return status;
  if (!cleanup.ok()) return cleanup;
  platform_.level2().mark_run_complete(run.run_id);
  return {};
}

void RunExecutor::attach_obs(obs::ObsContext* context,
                             obs::MetricsShard* shard) {
#if EXCOVERY_OBS_ENABLED
  obs_ = context;
  obs_shard_ = shard;
  // Full lineage-graph retention only while a context is attached: the
  // flight-recorder ring is always on, but provenance extraction needs the
  // whole run.  Takes effect at the next begin_run.
  platform_.lineage().set_graph_enabled(context != nullptr);
  if (obs_ == nullptr) {
    platform_.network().set_packet_trace_hook(nullptr);
    return;
  }
  platform_.network().enable_link_stats();
  if (obs_->config().trace && obs_->config().packet_trace) {
    platform_.network().set_packet_trace_hook(
        [this](const net::PacketTraceEvent& event) { on_packet_trace(event); });
  }
#else
  (void)context;
  (void)shard;
#endif
}

#if EXCOVERY_OBS_ENABLED

RunExecutor::KernelSample RunExecutor::sample_kernel() const {
  KernelSample sample;
  sample.executed = platform_.scheduler().executed();
  sample.cancelled = platform_.scheduler().cancelled();
  sample.published = platform_.recorder().bus().published();
  sample.dispatched = platform_.recorder().bus().dispatched();
  sample.activations = platform_.injector().activations();
  sample.kind_stats = platform_.injector().kind_stats();
  return sample;
}

void RunExecutor::record_attempt_obs(const RunSpec& run, const Status& status,
                                     const KernelSample& before,
                                     std::int64_t sim_start_ns,
                                     std::int64_t wall_start_ns) {
  const obs::MetricIds& ids = obs_->ids();
  auto add = [&](obs::MetricId id, std::uint64_t n) {
    if (n == 0) return;
    if (obs_shard_ != nullptr) {
      obs_shard_->add(id, n);
    } else {
      obs_->add(id, n);
    }
  };
  auto observe = [&](obs::MetricId id, double value) {
    if (obs_shard_ != nullptr) {
      obs_shard_->observe(id, value);
    } else {
      obs_->observe(id, value);
    }
  };
  auto set_gauge = [&](obs::MetricId id, std::int64_t value) {
    if (obs_shard_ != nullptr) {
      obs_shard_->set_gauge(id, value);
    } else {
      obs_->set_gauge(id, value);
    }
  };

  const KernelSample after = sample_kernel();
  // Network stats were reset by prepare_run (reset_run_state), so the
  // end-of-attempt values are per-attempt absolutes.
  const net::NetworkStats& net = platform_.network().stats();
  const std::uint64_t net_dropped =
      net.dropped_loss + net.dropped_interface + net.dropped_filter +
      net.dropped_ttl + net.dropped_no_route + net.dropped_no_handler +
      net.dropped_queue + net.dropped_link_down;
  // Per-fault-kind counter deltas over this attempt.  The injector's map
  // only grows, so every `before` kind still exists in `after`.
  faults::FaultKindStats fault_delta;
  std::map<std::string, faults::FaultKindStats> kind_delta;
  for (const auto& [kind, stats] : after.kind_stats) {
    faults::FaultKindStats d = stats;
    if (auto it = before.kind_stats.find(kind); it != before.kind_stats.end()) {
      d.activations -= it->second.activations;
      d.deactivations -= it->second.deactivations;
      d.packets_dropped -= it->second.packets_dropped;
      d.packets_delayed -= it->second.packets_delayed;
      d.packets_duplicated -= it->second.packets_duplicated;
      d.packets_reordered -= it->second.packets_reordered;
    }
    fault_delta.activations += d.activations;
    fault_delta.deactivations += d.deactivations;
    fault_delta.packets_dropped += d.packets_dropped;
    fault_delta.packets_delayed += d.packets_delayed;
    fault_delta.packets_duplicated += d.packets_duplicated;
    fault_delta.packets_reordered += d.packets_reordered;
    kind_delta.emplace(kind, d);
  }
  const double sim_seconds =
      static_cast<double>(platform_.scheduler().now().nanos() - sim_start_ns) /
      1e9;

  // Counters accumulate over every attempt: the attempt sequence of a run
  // is itself deterministic, so these sums are partition-invariant.
  add(ids.runs_attempts, 1);
  if (status.ok()) {
    add(ids.runs_completed, 1);
  } else {
    const std::string& message = status.error().message();
    if (message.find("watchdog") != std::string::npos) {
      add(ids.runs_watchdog_aborts, 1);
    } else if (message.find("deadlock") != std::string::npos) {
      add(ids.runs_deadlock_aborts, 1);
    }
  }
  add(ids.bus_published, after.published - before.published);
  add(ids.bus_dispatched, after.dispatched - before.dispatched);
  add(ids.net_sent, net.sent);
  add(ids.net_delivered, net.delivered);
  add(ids.net_forwarded, net.forwarded);
  add(ids.net_dropped, net_dropped);
  add(ids.net_bytes_sent, net.bytes_sent);
  add(ids.fault_activations, after.activations - before.activations);
  add(ids.fault_deactivations, fault_delta.deactivations);
  add(ids.fault_packets_dropped, fault_delta.packets_dropped);
  add(ids.fault_packets_delayed, fault_delta.packets_delayed);
  add(ids.fault_packets_duplicated, fault_delta.packets_duplicated);
  add(ids.fault_packets_reordered, fault_delta.packets_reordered);
  observe(ids.run_sim_seconds, sim_seconds);

  // Best-effort/wall domain: executed counts include gated-timer husks that
  // drain on shared instances but not on fresh replicas, and gauges depend
  // on instance history — honest, but excluded from the determinism set.
  add(ids.sched_events_executed, after.executed - before.executed);
  add(ids.sched_timers_cancelled, after.cancelled - before.cancelled);
  set_gauge(ids.sched_max_pending,
            static_cast<std::int64_t>(platform_.scheduler().max_pending()));
  set_gauge(ids.sched_arena_slots,
            static_cast<std::int64_t>(platform_.scheduler().arena_size()));
  observe(ids.run_wall_ns,
          static_cast<double>(obs_->trace().wall_now_ns() - wall_start_ns));

  // The ledger holds deterministic per-run values, so only the successful
  // attempt contributes: a retried run would otherwise produce duplicate
  // (run, name) keys whose order depends on scheduling.
  if (!status.ok()) return;
  obs::RunMetricsLedger& ledger = obs_->ledger();
  auto led = [&](std::string_view name, double value) {
    ledger.record(run.run_id, name, value);
  };
  led("bus.published", static_cast<double>(after.published - before.published));
  led("bus.dispatched",
      static_cast<double>(after.dispatched - before.dispatched));
  led("net.sent", static_cast<double>(net.sent));
  led("net.delivered", static_cast<double>(net.delivered));
  led("net.forwarded", static_cast<double>(net.forwarded));
  led("net.dropped", static_cast<double>(net_dropped));
  led("net.bytes_sent", static_cast<double>(net.bytes_sent));
  led("faults.activations",
      static_cast<double>(after.activations - before.activations));
  // Per-kind breakdown for runs where the kind actually did something, so
  // dynamic-world treatments are analysable from the level-3 Metrics table.
  for (const auto& [kind, d] : kind_delta) {
    auto led_kind = [&](const char* counter, std::uint64_t value) {
      if (value == 0) return;
      led(strings::format("faults.%s.%s", kind.c_str(), counter),
          static_cast<double>(value));
    };
    led_kind("activations", d.activations);
    led_kind("deactivations", d.deactivations);
    led_kind("packets_dropped", d.packets_dropped);
    led_kind("packets_delayed", d.packets_delayed);
    led_kind("packets_duplicated", d.packets_duplicated);
    led_kind("packets_reordered", d.packets_reordered);
  }
  led("sim.duration_s", sim_seconds);
  if (platform_.network().link_stats_enabled()) {
    const net::LinkStats& links = platform_.network().link_stats();
    const net::Topology& topology = platform_.network().topology();
    for (std::size_t from = 0; from < links.nodes; ++from) {
      for (std::size_t to = 0; to < links.nodes; ++to) {
        const std::size_t at = from * links.nodes + to;
        const std::string& a = topology.node(static_cast<net::NodeId>(from)).name;
        const std::string& b = topology.node(static_cast<net::NodeId>(to)).name;
        if (links.sent[at] != 0) {
          led(strings::format("net.link.%s->%s.sent", a.c_str(), b.c_str()),
              static_cast<double>(links.sent[at]));
        }
        if (links.dropped[at] != 0) {
          led(strings::format("net.link.%s->%s.dropped", a.c_str(), b.c_str()),
              static_cast<double>(links.dropped[at]));
        }
      }
    }
  }
}

void RunExecutor::on_packet_trace(const net::PacketTraceEvent& event) {
  obs::TraceBuffer& trace = obs_->trace();
  if (!trace.enabled()) return;
  const std::int64_t ts = platform_.scheduler().now().nanos();
  const net::Topology& topology = platform_.network().topology();
  const std::string& node = topology.node(event.node).name;
  // Flow ids fold the run id in so uids recycled across runs stay distinct.
  const std::int64_t run_id = current_run_ != nullptr ? current_run_->run_id : 0;
  const std::uint64_t flow = (static_cast<std::uint64_t>(run_id) << 32) ^
                             (event.uid & 0xFFFFFFFFull);
  std::string pkt =
      strings::format("pkt %llu", static_cast<unsigned long long>(event.uid));
  switch (event.kind) {
    case net::PacketTraceEvent::Kind::kSend:
      trace.async_begin(
          obs::Track::kSim, flow, std::move(pkt), "packet", ts,
          strings::format("{\"from\":\"%s\",\"bytes\":%zu}",
                          obs::json_escape(node).c_str(), event.bytes));
      break;
    case net::PacketTraceEvent::Kind::kHop:
      trace.instant(
          obs::Track::kSim, 0, "hop", "packet", ts,
          strings::format(
              "{\"uid\":%llu,\"from\":\"%s\",\"to\":\"%s\"}",
              static_cast<unsigned long long>(event.uid),
              obs::json_escape(node).c_str(),
              obs::json_escape(topology.node(event.peer).name).c_str()));
      break;
    case net::PacketTraceEvent::Kind::kDup:
      trace.instant(obs::Track::kSim, 0, "dup", "packet", ts,
                    strings::format("{\"uid\":%llu,\"at\":\"%s\"}",
                                    static_cast<unsigned long long>(event.uid),
                                    obs::json_escape(node).c_str()));
      break;
    case net::PacketTraceEvent::Kind::kDeliver:
      trace.instant(obs::Track::kSim, 0, "deliver", "packet", ts,
                    strings::format("{\"uid\":%llu,\"at\":\"%s\"}",
                                    static_cast<unsigned long long>(event.uid),
                                    obs::json_escape(node).c_str()));
      trace.async_end(obs::Track::kSim, flow, std::move(pkt), "packet", ts);
      break;
    case net::PacketTraceEvent::Kind::kDrop:
      trace.instant(obs::Track::kSim, 0,
                    strings::format("drop:%s", event.detail), "packet", ts,
                    strings::format("{\"uid\":%llu,\"at\":\"%s\"}",
                                    static_cast<unsigned long long>(event.uid),
                                    obs::json_escape(node).c_str()));
      trace.async_end(obs::Track::kSim, flow, std::move(pkt), "packet", ts);
      break;
  }
}

void RunExecutor::dump_flight_recorder(const Status& failure) {
  if (options_.flight_dir.empty()) return;
  Result<std::string> written = obs::write_flight_dump(
      platform_.lineage(), options_.flight_dir,
      failure.ok() ? std::string_view("unknown failure")
                   : std::string_view(failure.error().message()));
  if (written.ok()) {
    EXC_LOG_WARN("core.run", "flight recorder dumped to " << written.value());
  } else {
    EXC_LOG_WARN("core.run", "flight recorder dump failed: "
                                 << written.error().to_string());
  }
}

#endif  // EXCOVERY_OBS_ENABLED

Status RunExecutor::prepare_run(const RunSpec& run) {
  // "During preparation, the whole environment of the experiment process
  // must be reset to a defined initial working condition ... network
  // packets generated in previous runs must be dropped on all
  // participants."
  platform_.reset_run_state();
  platform_.recorder().begin_run(run.run_id);

  sim::SimTime run_start = platform_.scheduler().now();
  for (const std::string& node : platform_.node_names()) {
    ValueMap args;
    args["run_id"] = Value{run.run_id};
    EXC_TRY(node_action(node, "run_init", args));

    // "Preliminary measurements ... such as clock offsets for all
    // participants" (§IV-C1); stored on the master (§IV-B5).
    storage::SyncMeasurement sync;
    sync.run_id = run.run_id;
    sync.node = node;
    sync.offset_ns = platform_.measure_offset(node);
    sync.run_start_ns = run_start.nanos();
    platform_.level2().add_sync(sync);
  }
  return {};
}

Status RunExecutor::run_processes(const RunSpec& run, int attempt) {
  // Build interpreters: one per (actor process, mapped node), one per
  // manipulation process, one per environment process.
  std::vector<std::unique_ptr<ProcessInterpreter>> interpreters;

  for (const ActorProcess& process : description_.actor_processes) {
    auto it = run.actor_map.find(process.actor_id);
    if (it == run.actor_map.end()) continue;  // actor unmapped in this run
    for (const std::string& abstract : it->second) {
      EXC_ASSIGN_OR_RETURN(std::string concrete,
                           platform_.concrete_name(abstract));
      interpreters.push_back(std::make_unique<ProcessInterpreter>(
          platform_, description_, run, *this, ProcessInterpreter::Kind::kActor,
          concrete, process.actions,
          process.name + "@" + concrete));
    }
  }
  for (const ManipulationProcess& process :
       description_.manipulation_processes) {
    EXC_ASSIGN_OR_RETURN(std::string concrete,
                         platform_.concrete_name(process.node_id));
    interpreters.push_back(std::make_unique<ProcessInterpreter>(
        platform_, description_, run, *this,
        ProcessInterpreter::Kind::kManipulation, concrete, process.actions,
        "manipulation@" + concrete));
  }
  for (const EnvProcess& process : description_.env_processes) {
    interpreters.push_back(std::make_unique<ProcessInterpreter>(
        platform_, description_, run, *this,
        ProcessInterpreter::Kind::kEnvironment, "", process.actions, "env"));
  }

  std::size_t open = interpreters.size();
  std::optional<Error> first_error;
  for (auto& interpreter : interpreters) {
    interpreter->start([&open, &first_error](const ProcessInterpreter& done) {
      --open;
      if (done.state() == ProcessInterpreter::State::kFailed &&
          !first_error) {
        first_error = done.error();
      }
    });
  }

  // Test hook: simulate a mid-run platform failure.
  bool forced_abort = false;
  if (options_.abort_hook && options_.abort_hook(run.run_id, attempt)) {
    platform_.scheduler().schedule(
        sim::SimDuration::from_millis(10),
        [&forced_abort] { forced_abort = true; });
  }

  // Drive the simulation until all processes finish or the watchdog fires.
  sim::SimTime deadline = platform_.scheduler().now() + options_.run_watchdog;
  while (open > 0 && !forced_abort) {
    if (platform_.scheduler().now() >= deadline) break;
    if (platform_.scheduler().idle()) {
      // No pending events but processes still open: a wait with no timeout
      // can never complete.  Abort rather than spin.
      return err_aborted(strings::format(
          "run %lld deadlocked: %zu process(es) waiting with no pending "
          "events",
          static_cast<long long>(run.run_id), open));
    }
    platform_.scheduler().step();
  }
  if (forced_abort) {
    return err_aborted("platform failure injected by abort hook");
  }
  if (open > 0) {
    return err_aborted(strings::format(
        "run %lld hit the %0.1fs watchdog with %zu process(es) unfinished",
        static_cast<long long>(run.run_id), options_.run_watchdog.seconds(),
        open));
  }
  if (first_error) return *first_error;

  // Let in-flight packets drain so captures are complete.
  platform_.scheduler().run_until(platform_.scheduler().now() +
                                  options_.settle);
  return {};
}

Status RunExecutor::cleanup_run(const RunSpec& run) {
  // Environment manipulations end with the run.
  platform_.traffic().stop();
  if (env_drop_all_) {
    env_drop_all_->stop();
    env_drop_all_.reset();
  }
  if (env_partition_) {
    env_partition_->stop();
    env_partition_.reset();
  }
  for (const std::string& node : platform_.node_names()) {
    ValueMap args;
    args["run_id"] = Value{run.run_id};
    EXC_TRY(node_action(node, "run_exit", args));
  }
  return {};
}

Status RunExecutor::node_action(const std::string& concrete_node,
                                const std::string& method, ValueMap params) {
  rpc::RpcClient client = platform_.client(concrete_node);
  Result<Value> outcome =
      client.call(method, ValueArray{Value{std::move(params)}});
  if (!outcome.ok()) return std::move(outcome).error();
  return {};
}

Status RunExecutor::env_action(const std::string& method, ValueMap params) {
  if (!current_run_) return err_state("environment action outside a run");
  const RunSpec& run = *current_run_;

  if (method == "env_traffic_start") {
    faults::TrafficConfig config;
    if (auto it = params.find("bw"); it != params.end()) {
      EXC_ASSIGN_OR_RETURN(config.rate_kbps, it->second.to_double());
    }
    if (auto it = params.find("random_pairs"); it != params.end()) {
      EXC_ASSIGN_OR_RETURN(std::int64_t pairs, it->second.to_int());
      config.pairs = static_cast<int>(pairs);
    }
    if (auto it = params.find("choice"); it != params.end()) {
      EXC_ASSIGN_OR_RETURN(config.choice,
                           faults::parse_pair_choice(it->second.to_text()));
    }
    if (auto it = params.find("random_seed"); it != params.end()) {
      EXC_ASSIGN_OR_RETURN(std::int64_t seed, it->second.to_int());
      config.pair_seed = static_cast<std::uint64_t>(seed);
    }
    if (auto it = params.find("random_switch_amount"); it != params.end()) {
      EXC_ASSIGN_OR_RETURN(std::int64_t amount, it->second.to_int());
      config.switch_amount = static_cast<int>(amount);
    }
    if (auto it = params.find("random_switch_seed"); it != params.end()) {
      EXC_ASSIGN_OR_RETURN(std::int64_t seed, it->second.to_int());
      config.switch_seed = static_cast<std::uint64_t>(seed);
    }

    // Acting nodes of this run (concrete), environment nodes from the
    // platform.
    std::vector<net::NodeId> acting;
    for (const std::string& abstract : run.acting_nodes()) {
      EXC_ASSIGN_OR_RETURN(std::string concrete,
                           platform_.concrete_name(abstract));
      EXC_ASSIGN_OR_RETURN(net::NodeId id, platform_.node_id(concrete));
      acting.push_back(id);
    }
    std::vector<net::NodeId> environment;
    for (const std::string& name : platform_.environment_node_names()) {
      EXC_ASSIGN_OR_RETURN(net::NodeId id, platform_.node_id(name));
      environment.push_back(id);
    }
    EXC_TRY(platform_.traffic().start(
        config, acting, environment,
        static_cast<std::uint64_t>(run.replication)));
    platform_.recorder().record(kEnvironmentNode, "env_traffic_start",
                                Value{static_cast<std::int64_t>(
                                    platform_.traffic().active_pairs().size())});
    return {};
  }
  if (method == "env_traffic_stop") {
    platform_.traffic().stop();
    platform_.recorder().record(kEnvironmentNode, "env_traffic_stop");
    return {};
  }
  if (method == "env_drop_all_start") {
    if (env_drop_all_) return err_state("drop_all already active");
    faults::TemporalSpec temporal;  // until stopped
    EXC_ASSIGN_OR_RETURN(env_drop_all_,
                         platform_.injector().drop_all_packets(temporal));
    return {};
  }
  if (method == "env_drop_all_stop") {
    if (!env_drop_all_) return err_state("drop_all not active");
    env_drop_all_->stop();
    env_drop_all_.reset();
    return {};
  }
  if (method == "env_partition_start") {
    if (env_partition_) return err_state("partition already active");
    // "nodes": comma-separated concrete node names forming one side of the
    // bipartition; every link crossing the cut goes down until _stop.
    std::string side_text;
    if (auto it = params.find("nodes"); it != params.end()) {
      side_text = strings::strip_quotes(it->second.to_text());
    }
    std::vector<net::NodeId> side;
    for (const std::string& name : strings::split(side_text, ',')) {
      std::string trimmed = strings::trim(name);
      if (trimmed.empty()) continue;
      EXC_ASSIGN_OR_RETURN(std::string concrete,
                           platform_.concrete_name(trimmed));
      EXC_ASSIGN_OR_RETURN(net::NodeId id, platform_.node_id(concrete));
      side.push_back(id);
    }
    faults::TemporalSpec temporal;  // until stopped
    EXC_ASSIGN_OR_RETURN(env_partition_,
                         platform_.schedule_engine().partition(side, temporal));
    return {};
  }
  if (method == "env_partition_stop") {
    if (!env_partition_) return err_state("partition not active");
    env_partition_->stop();
    env_partition_.reset();
    return {};
  }
  if (method == "event_flag") {
    // Environment-scope event flags arrive here when raised through the
    // dispatcher (interpreter flow control already handles the common case).
    auto it = params.find("value");
    if (it == params.end()) return err_invalid("event_flag needs a value");
    platform_.recorder().record(kEnvironmentNode,
                                strings::strip_quotes(it->second.to_text()));
    return {};
  }
  // Node-targeted fault actions prefixed env_ run on every node: not in the
  // default set; extensions land here.
  return err_unsupported("unknown environment action '" + method + "'");
}

}  // namespace excovery::core
