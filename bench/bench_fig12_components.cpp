// Fig. 12 — "Execution components of the provided implementation":
// ExperiMaster with per-node objects, XML-RPC control channel, NodeManager
// with event generator + SDP backend + packet tagger on every node.
//
// Regenerated from running code: a component inventory printed from a live
// platform, plus google-benchmark microbenchmarks of the control path the
// figure depicts (XML-RPC encode/decode, full round trip, action dispatch,
// event generation).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "rpc/codec.hpp"

using namespace excovery;

namespace {

struct Fixture {
  core::ExperimentDescription description;
  std::unique_ptr<core::SimPlatform> platform;

  Fixture() {
    core::scenario::TwoPartyOptions options;
    options.replications = 1;
    description =
        bench::must(core::scenario::two_party_sd(options), "description");
    net::Topology topology = bench::must(
        core::scenario::topology_for(description, {}), "topology");
    core::SimPlatformConfig config;
    config.topology = std::move(topology);
    config.seed = 1;
    platform = bench::must(
        core::SimPlatform::create(description, std::move(config)),
        "platform");
  }
};

Fixture& fixture() {
  static Fixture instance;
  return instance;
}

void BM_XmlRpcEncodeCall(benchmark::State& state) {
  ValueMap params;
  params["run_id"] = Value{42};
  params["role"] = Value{"SM"};
  rpc::MethodCall call{"sd_init", {Value{params}}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(rpc::encode(call));
  }
}
BENCHMARK(BM_XmlRpcEncodeCall);

void BM_XmlRpcDecodeCall(benchmark::State& state) {
  ValueMap params;
  params["run_id"] = Value{42};
  params["role"] = Value{"SM"};
  std::string wire = rpc::encode(rpc::MethodCall{"sd_init", {Value{params}}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(rpc::decode_call(wire));
  }
}
BENCHMARK(BM_XmlRpcDecodeCall);

void BM_ControlChannelRoundTrip(benchmark::State& state) {
  Fixture& fx = fixture();
  rpc::RpcClient client = fx.platform->client("SU0");
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.call("clock_read"));
  }
}
BENCHMARK(BM_ControlChannelRoundTrip);

void BM_EventGeneration(benchmark::State& state) {
  Fixture& fx = fixture();
  fx.platform->recorder().begin_run(1);
  for (auto _ : state) {
    fx.platform->recorder().record("SU0", "bench_event", Value{1});
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventGeneration);

void BM_TimeSyncMeasurement(benchmark::State& state) {
  Fixture& fx = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.platform->measure_offset("SU0"));
  }
}
BENCHMARK(BM_TimeSyncMeasurement);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("bench_fig12_components",
                "Fig. 12: execution components (master, XML-RPC, node "
                "manager, event generator, tagger)");
  Fixture& fx = fixture();
  std::printf("\ncomponent inventory of the live platform:\n");
  std::printf("  ExperiMaster        1 (drives the treatment plan)\n");
  std::printf("  control channel     in-process XML-RPC, %zu endpoints\n",
              fx.platform->transport().endpoint_count());
  std::printf("  NodeManager         %zu (one per concrete node)\n",
              fx.platform->node_names().size());
  std::printf("  SDP backend         %s (created per node at sd_init)\n",
              std::string(core::to_string(fx.platform->config().protocol))
                  .c_str());
  std::printf("  event generator     shared recorder, %llu events so far\n",
              static_cast<unsigned long long>(
                  fx.platform->recorder().recorded()));
  std::printf("  packet tagger       per-sender 16-bit ids on every packet\n");
  std::printf("  fault injector      1 (+ traffic generator)\n\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
