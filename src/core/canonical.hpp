// Canonical form and content digest of a campaign submission.
//
// DESIGN.md §10/§12/§13 pinned the invariant this module exploits: the
// conditioned level-3 package is a pure function of (experiment
// description, platform seed, answer-relevant execution knobs, package
// format version) — bit-identical across worker counts, retries, fault
// schedules and topology-cache behaviour.  A digest over exactly those
// inputs therefore *names* the package: two submissions with equal digests
// are guaranteed byte-identical results, so re-simulation is pure waste
// (the Nix binary-cache insight applied to experiments; DESIGN.md §14).
//
// Canonicalisation goes through the XML model: a description is serialised
// via xml::write_canonical (sorted attributes, no whitespace), so attribute
// order and formatting never reach the digest, while every semantic field —
// factors, levels, processes, actions, platform mapping, seed — does.
#pragma once

#include <cstdint>
#include <string>

#include "core/description.hpp"
#include "core/scenario.hpp"
#include "sim/time.hpp"

namespace excovery::core {

/// Version of the digest protocol.  Bump whenever the canonical form, the
/// digest field order, the package file format, or any simulation default
/// that affects package bytes changes — a bump invalidates every cache
/// entry instead of serving stale (now unreproducible) packages.
inline constexpr std::uint32_t kCampaignDigestVersion = 1;

/// Attribute-order- and whitespace-invariant serialisation of a
/// description (its to_xml() tree through xml::write_canonical).
std::string canonical_description_text(const ExperimentDescription& d);

/// Everything answer-relevant about a submission besides the description:
/// the platform seed and topology shape (which nodes, links, clocks the
/// world has) and the master knobs that can alter recorded events.
/// Execution-only knobs (run_workers, progress callbacks, observability)
/// are deliberately absent — DESIGN.md §10/§11 pin them answer-invisible.
struct CampaignScope {
  std::uint64_t platform_seed = 1;  ///< SimPlatformConfig::seed
  scenario::TopologyOptions topology;
  int max_attempts_per_run = 3;
  sim::SimDuration run_watchdog = sim::SimDuration::from_seconds(300);
  sim::SimDuration settle = sim::SimDuration::from_millis(200);
};

/// Content address of the (description, scope, version) triple: 64 hex
/// characters of SHA-256.  Equal digests guarantee byte-identical packages;
/// any semantic change to the description, the scope, or the version
/// produces a different digest.
std::string campaign_digest(const ExperimentDescription& description,
                            const CampaignScope& scope = {},
                            std::uint32_t version = kCampaignDigestVersion);

}  // namespace excovery::core
