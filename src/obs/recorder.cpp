#include "obs/recorder.hpp"

#include <filesystem>
#include <fstream>

#include "common/strings.hpp"
#include "obs/provenance.hpp"

namespace excovery::obs {

std::string render_flight_dump(const sim::LineageLog& log,
                               std::string_view reason) {
  std::string out;
  out += "# ExCovery flight recorder\n";
  out += strings::format("# run %llu attempt %u: ",
                         static_cast<unsigned long long>(log.run_id()),
                         static_cast<unsigned>(log.attempt()));
  out += reason;
  out += '\n';
  out += strings::format(
      "# %zu retained event(s) of %llu recorded, oldest first\n",
      log.recent_count(), static_cast<unsigned long long>(log.recorded()));
  out += "#       id   parent        t(s)  kind        node          "
         "detail\n";
  log.for_each_recent([&](const sim::LineageEvent& event) {
    out += strings::format(
        "%10llu %8llu %12.6f  %-10s  %-12s  ",
        static_cast<unsigned long long>(event.id),
        static_cast<unsigned long long>(event.parent),
        static_cast<double>(event.ts_ns) / 1e9,
        std::string(to_string(event.kind)).c_str(),
        std::string(log.name(event.node)).c_str());
    out += describe(log, event);
    out += '\n';
  });
  return out;
}

Result<std::string> write_flight_dump(const sim::LineageLog& log,
                                      const std::string& dir,
                                      std::string_view reason) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    return err_io("cannot create flight-recorder directory " + dir + ": " +
                  ec.message());
  }
  const std::string path =
      (std::filesystem::path(dir) /
       strings::format("flight-run%llu-attempt%u.txt",
                       static_cast<unsigned long long>(log.run_id()),
                       static_cast<unsigned>(log.attempt())))
          .string();
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return err_io("cannot open flight-recorder file " + path);
  const std::string dump = render_flight_dump(log, reason);
  file.write(dump.data(), static_cast<std::streamsize>(dump.size()));
  file.flush();
  if (!file) return err_io("failed writing flight-recorder file " + path);
  return path;
}

}  // namespace excovery::obs
