file(REMOVE_RECURSE
  "libexcovery_storage.a"
)
