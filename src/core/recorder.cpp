#include "core/recorder.hpp"

namespace excovery::core {

EventRecorder::EventRecorder(sim::Scheduler& scheduler,
                             storage::Level2Store& level2, ClockFn clock_of)
    : scheduler_(scheduler),
      level2_(level2),
      clock_of_(std::move(clock_of)) {}

void EventRecorder::begin_run(std::int64_t run_id) {
  run_id_ = run_id;
  history_.clear();
  // Node-store pointers can be invalidated between runs (discard_run /
  // clear on retry); the cache is only trusted within one run.
  cached_node_ = nullptr;
  cached_name_.clear();
}

void EventRecorder::record(const std::string& node, std::string_view type,
                           const Value& parameter) {
  ++recorded_;

  // (1) level-2 storage with the node's local timestamp.
  storage::RawEvent raw;
  raw.run_id = run_id_;
  raw.local_time_ns = clock_of_ ? clock_of_(node)
                                : scheduler_.now().nanos();
  raw.type = std::string(type);
  raw.parameter = parameter;
  // Events cluster by node (one interpreter step emits several on the same
  // node), so caching the last store skips the map lookup on the hot path.
  if (cached_node_ == nullptr || cached_name_ != node) {
    cached_node_ = &level2_.node(node);
    cached_name_ = node;
#if EXCOVERY_OBS_ENABLED
    cached_label_ = lineage_ ? lineage_->intern(node) : 0;
#endif
  }
  cached_node_->record_event(std::move(raw));

  // (2)+(3) reference-time publication for flow control.
  sim::BusEvent event;
  event.time = scheduler_.now();
  event.node = node;
  event.name = std::string(type);
  event.parameter = parameter;
  history_.push_back(event);

  // (4) lineage: the event is a causal node (parent = whatever activity
  // raised it), and every bus subscriber — flow-control waits resuming the
  // interpreter included — runs as its descendant.
  std::uint64_t lin_event = 0;
  if (lineage_) {
    const std::uint16_t param_label =
        parameter.is_string() ? lineage_->intern(parameter.as_string()) : 0;
    lin_event =
        lineage_->record(sim::LineageKind::kSdEvent, scheduler_.current_context(),
                         0, scheduler_.now(), cached_label_, param_label,
                         lineage_->intern(type));
  }
  sim::LineageScope lin_scope(scheduler_, lin_event);
  bus_.publish(event);
}

}  // namespace excovery::core
