#include "sim/time.hpp"

#include "common/strings.hpp"

namespace excovery::sim {

std::string SimTime::to_string() const {
  return strings::format("%.6fs", seconds());
}

}  // namespace excovery::sim
