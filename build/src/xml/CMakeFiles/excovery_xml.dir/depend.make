# Empty dependencies file for excovery_xml.
# This may be replaced when dependencies are built.
