// Table I — "Tables and attributes of current storage concept": the eight
// tables of the level-3 store.
//
// Regenerated from running code: the schema is printed from a live package
// produced by a real experiment (so the listing is evidence, not a copy),
// with row counts per table; google-benchmark then measures the store's
// insert/scan/serialise throughput.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "common/strings.hpp"
#include "storage/package.hpp"

using namespace excovery;

namespace {

storage::ExperimentPackage& live_package() {
  static storage::ExperimentPackage package = [] {
    core::scenario::TwoPartyOptions options;
    options.replications = 5;
    bench::Executed executed =
        bench::must(bench::execute(options), "experiment");
    return std::move(executed.package);
  }();
  return package;
}

void BM_EventInsert(benchmark::State& state) {
  storage::ExperimentPackage package;
  storage::EventRow row{1, "SU0", 0.25, "sd_service_add", "SM0"};
  for (auto _ : state) {
    benchmark::DoNotOptimize(package.add_event(row).ok());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventInsert);

void BM_PacketInsert(benchmark::State& state) {
  storage::ExperimentPackage package;
  storage::PacketRow row{1, "SU0", 0.25, "SM0", Bytes(96, 0x42)};
  for (auto _ : state) {
    benchmark::DoNotOptimize(package.add_packet(row).ok());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PacketInsert);

void BM_EventScanPerRun(benchmark::State& state) {
  storage::ExperimentPackage& package = live_package();
  for (auto _ : state) {
    benchmark::DoNotOptimize(package.events(1));
  }
}
BENCHMARK(BM_EventScanPerRun);

void BM_SerializePackage(benchmark::State& state) {
  storage::ExperimentPackage& package = live_package();
  std::size_t bytes = 0;
  for (auto _ : state) {
    Bytes data = package.database().serialize();
    bytes = data.size();
    benchmark::DoNotOptimize(data);
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(bytes * state.iterations()));
}
BENCHMARK(BM_SerializePackage);

void BM_DeserializePackage(benchmark::State& state) {
  Bytes data = live_package().database().serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(storage::Database::deserialize(data));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(data.size() * state.iterations()));
}
BENCHMARK(BM_DeserializePackage);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("bench_table1_storage",
                "Table I: tables and attributes of the storage concept");

  storage::ExperimentPackage& package = live_package();
  std::printf("\nschema of the live level-3 store (Table I):\n");
  std::printf("%-24s| %s\n", "Table", "Attributes");
  std::printf("------------------------|--------------------------------------"
              "----------\n");
  for (const std::string& line :
       excovery::strings::split(package.database().schema_description(), '\n')) {
    if (line.empty()) continue;
    std::vector<std::string> parts = excovery::strings::split(line, '|');
    std::printf("%-24s|%s\n", excovery::strings::trim(parts[0]).c_str(),
                parts.size() > 1 ? parts[1].c_str() : "");
  }
  std::printf("\nrow counts after a real 5-run experiment:\n");
  for (const std::string& name : package.database().table_names()) {
    std::printf("  %-24s %zu\n", name.c_str(),
                package.database().table(name)->row_count());
  }
  std::printf("\n");

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
