file(REMOVE_RECURSE
  "CMakeFiles/test_sd_slp.dir/sd_slp_test.cpp.o"
  "CMakeFiles/test_sd_slp.dir/sd_slp_test.cpp.o.d"
  "test_sd_slp"
  "test_sd_slp.pdb"
  "test_sd_slp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sd_slp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
