file(REMOVE_RECURSE
  "libexcovery_rpc.a"
)
