// Three-party vs hybrid under SCM failure.
//
//   $ ./three_party_scm
//
// Runs the same discovery scenario twice: once with the pure three-party
// (SLP-style, directory-only) protocol and once with the hybrid protocol —
// while a manipulation process knocks out the SCM's network interface for
// most of the run.  The pure three-party architecture loses discovery with
// its directory; the hybrid one falls back to two-party mDNS operation and
// keeps finding the service (the availability argument for adaptive
// architectures, §III-B).
#include <cstdio>

#include "core/master.hpp"
#include "core/scenario.hpp"
#include "stats/analysis.hpp"

using namespace excovery;
using core::ParamValue;
using core::ProcessAction;

namespace {

ProcessAction action(std::string name,
                     std::vector<std::pair<std::string, ParamValue>> params = {}) {
  ProcessAction out;
  out.name = std::move(name);
  out.params = std::move(params);
  return out;
}

ParamValue lit(const std::string& text) {
  return ParamValue::lit(Value{text});
}

Result<stats::Proportion> run_architecture(const std::string& protocol,
                                           bool scm_fault) {
  core::scenario::TwoPartyOptions options;
  options.protocol = protocol;
  options.architecture =
      protocol == "slp" ? "three-party" : "hybrid";
  options.scm_count = 1;
  options.sm_count = 1;
  options.su_count = 1;
  options.environment_count = 1;
  options.replications = 8;
  options.deadline_s = 15.0;
  // The SU only starts discovering at t = 3 s — after the SM has registered
  // and (in the faulty variants) after the SCM has been killed.
  options.su_start_delay_s = 3.0;
  EXC_ASSIGN_OR_RETURN(core::ExperimentDescription description,
                       core::scenario::two_party_sd(options));

  if (scm_fault) {
    // Kill the SCM's interfaces 1 s into the run, for good.
    core::ManipulationProcess manipulation;
    manipulation.node_id = "SCM0";
    manipulation.actions.push_back(
        action("wait_for_time", {{"time", lit("1")}}));
    manipulation.actions.push_back(action(
        "fault_interface_start", {{"direction", lit("both")}}));
    manipulation.actions.push_back(
        action("wait_for_event", {{"event_dependency", lit("done")}}));
    manipulation.actions.push_back(action("fault_interface_stop"));
    description.manipulation_processes.push_back(std::move(manipulation));
    EXC_TRY(description.validate());
  }

  EXC_ASSIGN_OR_RETURN(net::Topology topology,
                       core::scenario::topology_for(description, {}));
  core::SimPlatformConfig config;
  config.topology = std::move(topology);
  config.seed = 4242;
  EXC_ASSIGN_OR_RETURN(
      std::unique_ptr<core::SimPlatform> platform,
      core::SimPlatform::create(description, std::move(config)));
  core::ExperiMaster master(description, *platform);
  EXC_ASSIGN_OR_RETURN(storage::ExperimentPackage package, master.execute());
  return stats::responsiveness(package, options.deadline_s, 1);
}

void report(const char* label, const Result<stats::Proportion>& outcome) {
  if (!outcome.ok()) {
    std::printf("%-38s ERROR: %s\n", label,
                outcome.error().to_string().c_str());
    return;
  }
  std::printf("%-38s %.2f  [%.2f..%.2f]  (%zu/%zu)\n", label,
              outcome.value().estimate, outcome.value().lower,
              outcome.value().upper, outcome.value().successes,
              outcome.value().trials);
}

}  // namespace

int main() {
  std::printf("responsiveness (deadline 15 s), 8 replications each:\n\n");
  report("three-party, healthy SCM",
         run_architecture("slp", /*scm_fault=*/false));
  report("three-party, SCM killed at t=1s",
         run_architecture("slp", /*scm_fault=*/true));
  report("hybrid, healthy SCM",
         run_architecture("hybrid", /*scm_fault=*/false));
  report("hybrid, SCM killed at t=1s",
         run_architecture("hybrid", /*scm_fault=*/true));
  std::printf(
      "\nexpected shape: the pure three-party architecture loses discovery\n"
      "with its directory; the hybrid one falls back to two-party mDNS and\n"
      "keeps responsiveness high.\n");
  return 0;
}
