file(REMOVE_RECURSE
  "CMakeFiles/test_net_contention.dir/net_contention_test.cpp.o"
  "CMakeFiles/test_net_contention.dir/net_contention_test.cpp.o.d"
  "test_net_contention"
  "test_net_contention.pdb"
  "test_net_contention[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_contention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
