# Empty compiler generated dependencies file for excovery_rpc.
# This may be replaced when dependencies are built.
