file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_fig10_sd_roles.dir/bench_fig09_fig10_sd_roles.cpp.o"
  "CMakeFiles/bench_fig09_fig10_sd_roles.dir/bench_fig09_fig10_sd_roles.cpp.o.d"
  "bench_fig09_fig10_sd_roles"
  "bench_fig09_fig10_sd_roles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_fig10_sd_roles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
