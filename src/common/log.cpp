#include "common/log.hpp"

#include <cstdio>
#include <utility>

namespace excovery {

std::string_view to_string(LogLevel level) noexcept {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

Result<LogLevel> parse_log_level(std::string_view text) {
  std::string lower(text);
  for (char& c : lower) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  return err_invalid("unknown log level '" + std::string(text) +
                     "' (expected trace|debug|info|warn|error)");
}

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

Logger::Logger() {
  sink_ = [](LogLevel level, std::string_view component,
             std::string_view message) {
    std::fprintf(stderr, "[%.*s] %.*s: %.*s\n",
                 static_cast<int>(to_string(level).size()),
                 to_string(level).data(), static_cast<int>(component.size()),
                 component.data(), static_cast<int>(message.size()),
                 message.data());
  };
}

Logger::Sink Logger::set_sink(Sink sink) {
  std::lock_guard lock(mutex_);
  Sink old = std::move(sink_);
  sink_ = std::move(sink);
  return old;
}

void Logger::log(LogLevel level, std::string_view component,
                 std::string_view message) {
  if (!enabled(level)) return;
  std::lock_guard lock(mutex_);
  if (sink_) sink_(level, component, message);
}

void CapturingLog::log(LogLevel level, std::string_view message) {
  {
    std::lock_guard lock(mutex_);
    captured_ += to_string(level);
    captured_ += ' ';
    captured_ += component_;
    captured_ += ": ";
    captured_ += message;
    captured_ += '\n';
  }
  Logger::instance().log(level, component_, message);
}

std::string CapturingLog::text() const {
  std::lock_guard lock(mutex_);
  return captured_;
}

std::string CapturingLog::take() {
  std::lock_guard lock(mutex_);
  return std::exchange(captured_, {});
}

void CapturingLog::clear() {
  std::lock_guard lock(mutex_);
  captured_.clear();
}

}  // namespace excovery
