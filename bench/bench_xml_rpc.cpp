// Zero-copy XML pipeline payoff (DESIGN.md §15).
//
// PR 9 rewrote the XML engine: arena-backed DOM with interned names and
// in-situ string_view text, a single-pass parser that eliminates per-node
// heap allocation, and a canonical writer that streams sorted-attribute
// bytes straight into SHA-256.  This bench carries a condensed copy of the
// seed implementation (unique_ptr DOM, per-character cursor parser,
// materialised canonical string — namespace `seedimpl` below) and races it
// against the live engine on the same document, so the reported speedup is
// an honest A/B on identical work:
//
//  * description parse: experiment-description XML -> DOM, gated >= 3x
//    documents/s over the seed parser (WARN-only under --smoke);
//  * canonical digest: DOM -> canonical bytes -> SHA-256, gated >= 3x
//    digests/s (the streaming path never materialises the canonical
//    string); both implementations must produce the same digest;
//  * heap allocations per parse and per digest for both implementations;
//  * XML-RPC round trip (encode + decode of a struct-carrying call) —
//    reported for trajectory, not gated.
//
// Results go to BENCH_xml.json (curated format, bench/collect_bench.py).
//
// Flags:
//   --smoke     small document + iteration counts, WARN-only gates — CI
//   --reps N    repetitions (default 5, median taken)
//   --out PATH  override the JSON output path (default BENCH_xml.json)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "common/strings.hpp"
#include "core/scenario.hpp"
#include "rpc/codec.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

// The replacement operator new/delete below intentionally pair ::new with
// std::malloc/std::free (same idiom as bench_kernel_hotpath); GCC's
// heuristic cannot see that they match.
// -Wmaybe-uninitialized: GCC's tracker loses the std::variant active-member
// index when copying excovery::Value under sanitizer instrumentation and
// flags the inactive-union read it then imagines (false positive).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif

namespace {

std::atomic<std::uint64_t> g_allocs{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

// ---- condensed seed implementation (pre-PR-9 engine) -----------------------
//
// A faithful reduction of the old src/xml: unique_ptr-owned elements with
// std::string fields, a Cursor parser advancing one character at a time
// with eager line/column tracking, and a canonical writer that sorts
// attribute pointers per element and appends into a growing std::string.
namespace seedimpl {

using excovery::Result;
using excovery::Status;
using excovery::err_parse;

class Element;
using ElementPtr = std::unique_ptr<Element>;

struct Attribute {
  std::string name;
  std::string value;
};

class Element {
 public:
  explicit Element(std::string name) : name_(std::move(name)) {}

  const std::string& name() const noexcept { return name_; }
  const std::vector<Attribute>& attributes() const noexcept { return attrs_; }
  const std::vector<ElementPtr>& children() const noexcept {
    return children_;
  }

  bool has_attr(std::string_view name) const noexcept {
    for (const Attribute& a : attrs_) {
      if (a.name == name) return true;
    }
    return false;
  }
  void set_attr(std::string_view name, std::string_view value) {
    attrs_.push_back({std::string(name), std::string(value)});
  }
  void adopt(ElementPtr child) { children_.push_back(std::move(child)); }
  void append_text(std::string_view text) {
    text_segments_.emplace_back(text);
  }
  std::string text() const {
    std::string joined;
    for (const std::string& seg : text_segments_) joined += seg;
    return excovery::strings::trim(joined);
  }

 private:
  std::string name_;
  std::vector<Attribute> attrs_;
  std::vector<ElementPtr> children_;
  std::vector<std::string> text_segments_;
};

class Cursor {
 public:
  explicit Cursor(std::string_view input) noexcept : input_(input) {}

  bool eof() const noexcept { return pos_ >= input_.size(); }
  char peek() const noexcept { return eof() ? '\0' : input_[pos_]; }
  char peek_at(std::size_t ahead) const noexcept {
    return pos_ + ahead < input_.size() ? input_[pos_ + ahead] : '\0';
  }
  char advance() noexcept {
    char c = input_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }
  bool consume(std::string_view literal) noexcept {
    if (input_.substr(pos_).substr(0, literal.size()) != literal) return false;
    for (std::size_t i = 0; i < literal.size(); ++i) advance();
    return true;
  }
  void skip_whitespace() noexcept {
    while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) {
      advance();
    }
  }
  excovery::Error error(std::string message) const {
    return err_parse("line " + std::to_string(line_) + ", column " +
                     std::to_string(column_) + ": " + std::move(message));
  }

 private:
  std::string_view input_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

inline bool is_name_start(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}
inline bool is_name_char(char c) noexcept {
  return is_name_start(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

Result<std::string> parse_name(Cursor& cur) {
  if (!is_name_start(cur.peek())) return cur.error("expected a name");
  std::string name;
  while (!cur.eof() && is_name_char(cur.peek())) name.push_back(cur.advance());
  return name;
}

Result<std::string> parse_entity(Cursor& cur) {
  std::string entity;
  while (!cur.eof() && cur.peek() != ';') {
    entity.push_back(cur.advance());
    if (entity.size() > 8) return cur.error("unterminated entity reference");
  }
  if (cur.eof()) return cur.error("unterminated entity reference");
  cur.advance();
  if (entity == "amp") return std::string("&");
  if (entity == "lt") return std::string("<");
  if (entity == "gt") return std::string(">");
  if (entity == "apos") return std::string("'");
  if (entity == "quot") return std::string("\"");
  return cur.error("unknown entity &" + entity + ";");
}

Result<Attribute> parse_attribute(Cursor& cur) {
  EXC_ASSIGN_OR_RETURN(std::string name, parse_name(cur));
  cur.skip_whitespace();
  if (!cur.consume("=")) return cur.error("expected '='");
  cur.skip_whitespace();
  char quote = cur.peek();
  if (quote != '"' && quote != '\'') {
    return cur.error("expected quoted attribute value");
  }
  cur.advance();
  std::string value;
  while (!cur.eof() && cur.peek() != quote) {
    char c = cur.advance();
    if (c == '&') {
      EXC_ASSIGN_OR_RETURN(std::string decoded, parse_entity(cur));
      value += decoded;
    } else {
      value.push_back(c);
    }
  }
  if (cur.eof()) return cur.error("unterminated attribute value");
  cur.advance();
  return Attribute{std::move(name), std::move(value)};
}

Status skip_comment(Cursor& cur) {
  for (;;) {
    if (cur.eof()) return cur.error("unterminated comment");
    if (cur.consume("-->")) return {};
    cur.advance();
  }
}

Status skip_pi(Cursor& cur) {
  for (;;) {
    if (cur.eof()) return cur.error("unterminated processing instruction");
    if (cur.consume("?>")) return {};
    cur.advance();
  }
}

Result<ElementPtr> parse_element_at(Cursor& cur, int depth) {
  if (depth > 256) return cur.error("document nested too deeply");
  EXC_ASSIGN_OR_RETURN(std::string name, parse_name(cur));
  auto element = std::make_unique<Element>(std::move(name));
  for (;;) {
    cur.skip_whitespace();
    if (cur.consume("/>")) return element;
    if (cur.consume(">")) break;
    if (cur.eof()) return cur.error("unterminated start tag");
    EXC_ASSIGN_OR_RETURN(Attribute attr, parse_attribute(cur));
    if (element->has_attr(attr.name)) {
      return cur.error("duplicate attribute '" + attr.name + "'");
    }
    element->set_attr(attr.name, attr.value);
  }
  std::string text;
  auto flush_text = [&] {
    if (!text.empty()) {
      element->append_text(text);
      text.clear();
    }
  };
  for (;;) {
    if (cur.eof()) {
      return cur.error("unterminated element <" + element->name() + ">");
    }
    if (cur.peek() == '<') {
      if (cur.consume("<!--")) {
        EXC_TRY(skip_comment(cur));
        continue;
      }
      if (cur.consume("<![CDATA[")) {
        while (!cur.consume("]]>")) {
          if (cur.eof()) return cur.error("unterminated CDATA section");
          text.push_back(cur.advance());
        }
        continue;
      }
      if (cur.consume("<?")) {
        EXC_TRY(skip_pi(cur));
        continue;
      }
      if (cur.peek_at(1) == '/') {
        cur.advance();
        cur.advance();
        EXC_ASSIGN_OR_RETURN(std::string close, parse_name(cur));
        cur.skip_whitespace();
        if (!cur.consume(">")) return cur.error("malformed end tag");
        if (close != element->name()) return cur.error("mismatched end tag");
        flush_text();
        return element;
      }
      cur.advance();
      flush_text();
      EXC_ASSIGN_OR_RETURN(ElementPtr child, parse_element_at(cur, depth + 1));
      element->adopt(std::move(child));
      continue;
    }
    char c = cur.advance();
    if (c == '&') {
      EXC_ASSIGN_OR_RETURN(std::string decoded, parse_entity(cur));
      text += decoded;
    } else {
      text.push_back(c);
    }
  }
}

Result<ElementPtr> parse_element(std::string_view input) {
  Cursor cur(input);
  ElementPtr root;
  for (;;) {
    cur.skip_whitespace();
    if (cur.eof()) break;
    if (cur.consume("<!--")) {
      EXC_TRY(skip_comment(cur));
      continue;
    }
    if (cur.consume("<?")) {
      EXC_TRY(skip_pi(cur));
      continue;
    }
    if (!cur.consume("<")) {
      return cur.error("unexpected character data outside root element");
    }
    if (root) return cur.error("multiple root elements");
    EXC_ASSIGN_OR_RETURN(root, parse_element_at(cur, 0));
  }
  if (!root) return err_parse("document has no root element");
  return root;
}

std::string escape_attr(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string escape_text(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

void write_canonical_element(const Element& element, std::string& out) {
  out.push_back('<');
  out += element.name();
  std::vector<const Attribute*> attrs;
  attrs.reserve(element.attributes().size());
  for (const Attribute& a : element.attributes()) attrs.push_back(&a);
  std::stable_sort(attrs.begin(), attrs.end(),
                   [](const Attribute* a, const Attribute* b) {
                     return a->name < b->name;
                   });
  for (const Attribute* a : attrs) {
    out.push_back(' ');
    out += a->name;
    out += "=\"";
    out += escape_attr(a->value);
    out.push_back('"');
  }
  const std::string text = element.text();
  if (element.children().empty() && text.empty()) {
    out += "/>";
    return;
  }
  out.push_back('>');
  if (!text.empty()) out += escape_text(text);
  for (const ElementPtr& child : element.children()) {
    write_canonical_element(*child, out);
  }
  out += "</";
  out += element.name();
  out.push_back('>');
}

std::string write_canonical(const Element& root) {
  std::string out;
  write_canonical_element(root, out);
  return out;
}

/// The seed's portable scalar SHA-256 compression (the live excovery::Sha256
/// now dispatches to the CPU's SHA extensions, so the baseline carries its
/// own copy to stay a faithful pre-arena pipeline).
class Sha256 {
 public:
  Sha256()
      : state_{0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a,
               0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19} {}

  Sha256& update(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const std::uint8_t*>(data);
    length_ += size;
    while (size > 0) {
      if (buffered_ == 0 && size >= 64) {
        compress(bytes);
        bytes += 64;
        size -= 64;
        continue;
      }
      const std::size_t take = std::min<std::size_t>(64 - buffered_, size);
      std::memcpy(buffer_ + buffered_, bytes, take);
      buffered_ += take;
      bytes += take;
      size -= take;
      if (buffered_ == 64) {
        compress(buffer_);
        buffered_ = 0;
      }
    }
    return *this;
  }

  Sha256& update_u64(std::uint64_t v) {
    std::uint8_t le[8];
    for (int i = 0; i < 8; ++i) {
      le[i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
    return update(le, sizeof(le));
  }

  Sha256& update_sized(std::string_view text) {
    update_u64(text.size());
    return update(text.data(), text.size());
  }

  std::string finish_hex() {
    const std::uint64_t bit_length = length_ * 8;
    const std::uint8_t pad_byte = 0x80;
    update(&pad_byte, 1);
    const std::uint8_t zero = 0;
    while (buffered_ != 56) update(&zero, 1);
    std::uint8_t be[8];
    for (int i = 0; i < 8; ++i) {
      be[i] = static_cast<std::uint8_t>(bit_length >> (56 - 8 * i));
    }
    update(be, sizeof(be));
    static constexpr char kHex[] = "0123456789abcdef";
    std::string out;
    out.reserve(64);
    for (int i = 0; i < 8; ++i) {
      for (int shift = 28; shift >= 0; shift -= 4) {
        out.push_back(kHex[(state_[i] >> shift) & 0xF]);
      }
    }
    return out;
  }

 private:
  static constexpr std::uint32_t kK[64] = {
      0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
      0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
      0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
      0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
      0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
      0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
      0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
      0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
      0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
      0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
      0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

  static std::uint32_t rotr(std::uint32_t x, int n) noexcept {
    return (x >> n) | (x << (32 - n));
  }

  void compress(const std::uint8_t block[64]) {
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
      w[i] = (std::uint32_t{block[i * 4]} << 24) |
             (std::uint32_t{block[i * 4 + 1]} << 16) |
             (std::uint32_t{block[i * 4 + 2]} << 8) |
             std::uint32_t{block[i * 4 + 3]};
    }
    for (int i = 16; i < 64; ++i) {
      const std::uint32_t s0 =
          rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const std::uint32_t s1 =
          rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }
    std::uint32_t a = state_[0], b = state_[1], c = state_[2], d = state_[3];
    std::uint32_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];
    for (int i = 0; i < 64; ++i) {
      const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
      const std::uint32_t ch = (e & f) ^ (~e & g);
      const std::uint32_t t1 = h + s1 + ch + kK[i] + w[i];
      const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
      const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const std::uint32_t t2 = s0 + maj;
      h = g;
      g = f;
      f = e;
      e = d + t1;
      d = c;
      c = b;
      b = a;
      a = t1 + t2;
    }
    state_[0] += a;
    state_[1] += b;
    state_[2] += c;
    state_[3] += d;
    state_[4] += e;
    state_[5] += f;
    state_[6] += g;
    state_[7] += h;
  }

  std::uint32_t state_[8];
  std::uint8_t buffer_[64];
  std::uint64_t length_ = 0;
  std::size_t buffered_ = 0;
};

}  // namespace seedimpl

// ---- harness ---------------------------------------------------------------

namespace {

using excovery::Result;
using excovery::Sha256;

double median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::string today() {
  std::time_t now = std::time(nullptr);
  char buffer[32];
  std::strftime(buffer, sizeof buffer, "%Y-%m-%d", std::localtime(&now));
  return buffer;
}

/// Median seconds per call of fn() over `reps` repetitions of `iters`
/// timed iterations.
template <typename Fn>
double time_per_call(int reps, int iters, Fn&& fn) {
  std::vector<double> times;
  times.reserve(static_cast<std::size_t>(reps));
  for (int rep = 0; rep < reps; ++rep) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) fn();
    times.push_back(seconds_since(start) / iters);
  }
  return median(times);
}

/// Heap allocations for a single fn() call.
template <typename Fn>
std::uint64_t allocs_per_call(Fn&& fn) {
  const std::uint64_t before = g_allocs.load(std::memory_order_relaxed);
  fn();
  return g_allocs.load(std::memory_order_relaxed) - before;
}

class HashSink final : public excovery::xml::Sink {
 public:
  explicit HashSink(Sha256& hash) noexcept : hash_(hash) {}
  void write(const char* data, std::size_t size) override {
    hash_.update(data, size);
  }

 private:
  Sha256& hash_;
};

std::string streamed_digest(const excovery::xml::Element& root) {
  Sha256 hash;
  hash.update_u64(excovery::xml::canonical_size(root));
  HashSink sink(hash);
  excovery::xml::write_canonical(root, sink);
  return hash.finish_hex();
}

std::string materialised_digest(const seedimpl::Element& root) {
  seedimpl::Sha256 hash;
  hash.update_sized(seedimpl::write_canonical(root));
  return hash.finish_hex();
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int reps = 5;
  std::string out = "BENCH_xml.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      reps = 3;
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--reps N] [--out PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  // The document under test: a generated experiment description — the
  // exact document class the hot paths (campaign digest, package load,
  // control channel) parse and serialise.
  excovery::core::scenario::TwoPartyOptions options;
  options.replications = smoke ? 5 : 50;
  options.environment_count = 2;
  options.sm_count = smoke ? 2 : 6;
  Result<excovery::core::ExperimentDescription> description =
      excovery::core::scenario::two_party_sd(options);
  if (!description.ok()) std::abort();
  const std::string xml_text = description.value().to_xml_text();
  const int iters = smoke ? 200 : 2000;

  std::printf("xml pipeline bench: %zu-byte description, %d reps%s\n",
              xml_text.size(), reps, smoke ? " (smoke)" : "");

  // ---- description parse ---------------------------------------------------
  Result<seedimpl::ElementPtr> seed_tree = seedimpl::parse_element(xml_text);
  Result<excovery::xml::Document> new_tree = excovery::xml::parse(xml_text);
  if (!seed_tree.ok() || !new_tree.ok()) std::abort();

  const double parse_seed_s = time_per_call(reps, iters, [&] {
    if (!seedimpl::parse_element(xml_text).ok()) std::abort();
  });
  const double parse_new_s = time_per_call(reps, iters, [&] {
    if (!excovery::xml::parse(xml_text).ok()) std::abort();
  });
  const std::uint64_t parse_seed_allocs = allocs_per_call(
      [&] { (void)seedimpl::parse_element(xml_text); });
  const std::uint64_t parse_new_allocs = allocs_per_call(
      [&] { (void)excovery::xml::parse(xml_text); });
  const double parse_speedup = parse_seed_s / parse_new_s;

  // ---- canonical digest ----------------------------------------------------
  const std::string digest_seed = materialised_digest(*seed_tree.value());
  const std::string digest_new = streamed_digest(new_tree.value().root());
  if (digest_seed != digest_new) {
    std::fprintf(stderr,
                 "FATAL: canonical digests diverge (seed %s, current %s) — "
                 "the zero-copy pipeline changed canonical bytes\n",
                 digest_seed.c_str(), digest_new.c_str());
    return 1;
  }

  const double digest_seed_s = time_per_call(reps, iters, [&] {
    (void)materialised_digest(*seed_tree.value());
  });
  const double digest_new_s = time_per_call(reps, iters, [&] {
    (void)streamed_digest(new_tree.value().root());
  });
  const std::uint64_t digest_seed_allocs = allocs_per_call(
      [&] { (void)materialised_digest(*seed_tree.value()); });
  const std::uint64_t digest_new_allocs = allocs_per_call(
      [&] { (void)streamed_digest(new_tree.value().root()); });
  const double digest_speedup = digest_seed_s / digest_new_s;

  // ---- XML-RPC round trip (informational) ----------------------------------
  excovery::ValueMap args;
  args["run_id"] = excovery::Value{std::int64_t{42}};
  args["actor"] = excovery::Value{"SM"};
  excovery::ValueArray batch;
  for (int i = 0; i < 16; ++i) batch.push_back(excovery::Value{args});
  excovery::rpc::MethodCall call{"sd_init", {excovery::Value{batch}}};
  const double rpc_s = time_per_call(reps, iters, [&] {
    Result<excovery::rpc::MethodCall> back =
        excovery::rpc::decode_call(excovery::rpc::encode(call));
    if (!back.ok()) std::abort();
  });

  const double mb = static_cast<double>(xml_text.size()) / (1024.0 * 1024.0);
  std::printf("  parse:  seed %8.1f us (%llu allocs)   current %8.1f us "
              "(%llu allocs)   %4.1fx   %.0f MB/s\n",
              parse_seed_s * 1e6,
              static_cast<unsigned long long>(parse_seed_allocs),
              parse_new_s * 1e6,
              static_cast<unsigned long long>(parse_new_allocs),
              parse_speedup, mb / parse_new_s);
  std::printf("  digest: seed %8.1f us (%llu allocs)   current %8.1f us "
              "(%llu allocs)   %4.1fx\n",
              digest_seed_s * 1e6,
              static_cast<unsigned long long>(digest_seed_allocs),
              digest_new_s * 1e6,
              static_cast<unsigned long long>(digest_new_allocs),
              digest_speedup);
  std::printf("  rpc round trip: %8.1f us\n", rpc_s * 1e6);

  const double gate = 3.0;
  bool failed = false;
  auto check_gate = [&](const char* what, double speedup) {
    if (speedup < gate) {
      std::fprintf(stderr,
                   "%s: %s only %.2fx faster than the seed implementation "
                   "(gate: >= %.0fx)\n",
                   smoke ? "WARN (smoke, not gated)" : "FAIL", what, speedup,
                   gate);
      failed = failed || !smoke;
    }
  };
  check_gate("description parse", parse_speedup);
  check_gate("canonical digest", digest_speedup);

  std::string json;
  json += "{\n";
  json +=
      " \"description\": \"Zero-copy XML pipeline "
      "(bench/bench_xml_rpc.cpp, DESIGN.md \\u00a715). 'seed' = the "
      "pre-arena engine (unique_ptr DOM, per-character cursor parser, "
      "materialised canonical string) embedded in the bench; 'current' = "
      "the live arena DOM / in-situ parser / streaming canonical digest, "
      "racing on the same generated experiment description. Both parse and "
      "digest are gated >= 3x outside --smoke, and the two canonical "
      "digests must be byte-identical. allocations are heap allocations "
      "for a single call. Median over repetitions.\",\n";
  json += " \"machine\": \"vm\",\n";
  json += " \"date\": \"" + today() + "\",\n";
  json += " \"benchmarks\": {\n";
  json += excovery::strings::format(
      "  \"BM_Xml/description_parse\": {\n"
      "   \"seed\": {\"items_per_second\": %.1f, \"cpu_time_ns\": %.0f, "
      "\"allocations\": %llu},\n"
      "   \"current\": {\"items_per_second\": %.1f, \"cpu_time_ns\": %.0f, "
      "\"allocations\": %llu},\n"
      "   \"speedup\": %.2f,\n"
      "   \"document_bytes\": %zu,\n"
      "   \"current_mb_per_second\": %.1f\n"
      "  },\n",
      1.0 / parse_seed_s, parse_seed_s * 1e9,
      static_cast<unsigned long long>(parse_seed_allocs), 1.0 / parse_new_s,
      parse_new_s * 1e9, static_cast<unsigned long long>(parse_new_allocs),
      parse_speedup, xml_text.size(), mb / parse_new_s);
  json += excovery::strings::format(
      "  \"BM_Xml/canonical_digest\": {\n"
      "   \"seed\": {\"items_per_second\": %.1f, \"cpu_time_ns\": %.0f, "
      "\"allocations\": %llu},\n"
      "   \"current\": {\"items_per_second\": %.1f, \"cpu_time_ns\": %.0f, "
      "\"allocations\": %llu},\n"
      "   \"speedup\": %.2f,\n"
      "   \"digest\": \"%s\"\n"
      "  },\n",
      1.0 / digest_seed_s, digest_seed_s * 1e9,
      static_cast<unsigned long long>(digest_seed_allocs), 1.0 / digest_new_s,
      digest_new_s * 1e9, static_cast<unsigned long long>(digest_new_allocs),
      digest_speedup, digest_new.c_str());
  json += excovery::strings::format(
      "  \"BM_Xml/rpc_round_trip\": {\n"
      "   \"current\": {\"items_per_second\": %.1f, \"cpu_time_ns\": %.0f}\n"
      "  }\n",
      1.0 / rpc_s, rpc_s * 1e9);
  json += " }\n}\n";

  std::FILE* file = std::fopen(out.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  std::printf("wrote %s\n", out.c_str());
  return failed ? 1 : 0;
}
