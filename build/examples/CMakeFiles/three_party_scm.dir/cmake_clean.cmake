file(REMOVE_RECURSE
  "CMakeFiles/three_party_scm.dir/three_party_scm.cpp.o"
  "CMakeFiles/three_party_scm.dir/three_party_scm.cpp.o.d"
  "three_party_scm"
  "three_party_scm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/three_party_scm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
