// Figs. 9 & 10 — the SD process descriptions for the SM (publisher) and SU
// (requester) roles in a two-party architecture.
//
// Regenerated from running code: the exact role processes are emitted as
// XML (for comparison with the listings), then executed end to end; the
// bench verifies each prescribed action ran and each prescribed event was
// recorded, including the 30 s deadline path of Fig. 10.
#include "bench_common.hpp"

using namespace excovery;

int main() {
  bench::banner("bench_fig09_fig10_sd_roles",
                "Figs. 9/10: SM and SU role processes (two-party)");

  core::scenario::TwoPartyOptions options;
  options.sm_count = 2;  // "all SMs" semantics of Fig. 10 exercised
  options.replications = 3;
  options.deadline_s = 30.0;

  core::ExperimentDescription description = bench::must(
      core::scenario::two_party_sd(options), "description");
  std::string xml_text = description.to_xml_text();
  std::size_t start = xml_text.find("<node_process>");
  std::size_t end = xml_text.find("</node_process>");
  if (start != std::string::npos && end != std::string::npos) {
    std::printf("\n%s</node_process>\n",
                xml_text.substr(start, end - start).c_str());
  }

  bench::Executed executed = bench::must(
      bench::execute_description(std::move(description)), "execution");

  // Event checklist per run, per the two listings.
  const char* required[] = {
      "sd_init_done",   "sd_start_publish", "sd_start_search",
      "sd_service_add", "done",             "sd_stop_search",
      "sd_stop_publish", "sd_exit_done"};
  std::printf("\nper-run event checklist:\n");
  bool all_ok = true;
  for (std::int64_t run_id : executed.package.run_ids()) {
    std::vector<storage::EventRow> events =
        bench::must(executed.package.events(run_id), "events");
    std::printf("  run %lld:", static_cast<long long>(run_id));
    for (const char* name : required) {
      bool found = false;
      for (const storage::EventRow& event : events) {
        if (event.event_type == name) {
          found = true;
          break;
        }
      }
      std::printf(" %s%s", found ? "" : "MISSING:", name);
      all_ok = all_ok && found;
    }
    std::printf("\n");
  }

  // The SU waited for BOTH SMs (param_dependency actor0 instance="all").
  std::vector<stats::RunDiscovery> discoveries = bench::must(
      stats::discoveries(executed.package), "discoveries");
  for (const stats::RunDiscovery& run : discoveries) {
    if (run.latencies.size() != 2) {
      std::printf("run %lld: discovered %zu of 2 SMs\n",
                  static_cast<long long>(run.run_id), run.latencies.size());
      all_ok = false;
    }
  }
  std::printf("\nall SMs discovered before 'done' in every run: %s\n",
              all_ok ? "yes" : "NO");
  return all_ok ? 0 : 1;
}
