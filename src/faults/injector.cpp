#include "faults/injector.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace excovery::faults {

Result<FaultDirection> parse_fault_direction(const std::string& text) {
  std::string t = strings::to_lower(strings::trim(strings::strip_quotes(text)));
  if (t == "receive" || t == "rx") return FaultDirection::kReceive;
  if (t == "transmit" || t == "tx") return FaultDirection::kTransmit;
  if (t == "both") return FaultDirection::kBoth;
  if (t == "random") return FaultDirection::kRandom;
  return err_invalid("unknown fault direction '" + text + "'");
}

std::string_view to_string(FaultDirection d) noexcept {
  switch (d) {
    case FaultDirection::kReceive: return "receive";
    case FaultDirection::kTransmit: return "transmit";
    case FaultDirection::kBoth: return "both";
    case FaultDirection::kRandom: return "random";
  }
  return "?";
}

bool is_experiment_packet(const net::Packet& packet,
                          net::Port port) noexcept {
  return packet.dst_port == port || packet.src_port == port;
}

namespace {

/// Generic fault whose activation installs state and whose deactivation
/// removes it, with lifecycle bookkeeping.
class GenericFault final : public ActiveFault {
 public:
  GenericFault(std::string kind, std::function<void()> activate,
               std::function<void()> deactivate)
      : kind_(std::move(kind)),
        activate_(std::move(activate)),
        deactivate_(std::move(deactivate)) {}

  ~GenericFault() override = default;

  void arm_immediately() {
    active_ = true;
    activate_();
  }

  /// Schedule activation window [start, start+length] on the scheduler.
  void arm_window(sim::Scheduler& scheduler, sim::SimDuration start,
                  sim::SimDuration length) {
    auto self = weak_self_.lock();
    scheduler.schedule(start, [this, self] {
      if (stopped_) return;
      active_ = true;
      activate_();
    });
    scheduler.schedule(start + length, [this, self] { stop(); });
  }

  void stop() override {
    if (stopped_) return;
    stopped_ = true;
    if (active_) {
      active_ = false;
      deactivate_();
    }
  }

  bool active() const override { return active_; }
  const std::string& kind() const override { return kind_; }

  /// GenericFault keeps itself alive across scheduled callbacks.
  void set_self(std::shared_ptr<GenericFault> self) { weak_self_ = self; }

 private:
  std::string kind_;
  std::function<void()> activate_;
  std::function<void()> deactivate_;
  bool active_ = false;
  bool stopped_ = false;
  std::weak_ptr<GenericFault> weak_self_;
};

}  // namespace

FaultInjector::FaultInjector(net::Network& network, net::Port experiment_port)
    : network_(network), experiment_port_(experiment_port) {}

void FaultInjector::emit(const std::string& node, const std::string& event,
                         const Value& parameter) {
  if (sink_) sink_(node, event, parameter);
}

FaultDirection FaultInjector::resolve_direction(FaultDirection dir,
                                                std::uint64_t seed) const {
  if (dir != FaultDirection::kRandom) return dir;
  std::uint64_t state = seed ^ 0xD1CEu;
  return (splitmix64(state) & 1) ? FaultDirection::kReceive
                                 : FaultDirection::kTransmit;
}

FaultHandle FaultInjector::schedule(std::string kind,
                                    const std::string& node_name,
                                    const TemporalSpec& temporal,
                                    std::function<void()> activate,
                                    std::function<void()> deactivate) {
  std::string start_event = "fault_" + kind + "_start";
  std::string stop_event = "fault_" + kind + "_stop";
  auto fault = std::make_shared<GenericFault>(
      std::move(kind),
      [this, node_name, start_event, activate = std::move(activate)] {
        activate();
#if EXCOVERY_OBS_ENABLED
        ++activations_;
#endif
        emit(node_name, start_event, Value{});
      },
      [this, node_name, stop_event, deactivate = std::move(deactivate)] {
        deactivate();
        emit(node_name, stop_event, Value{});
      });
  fault->set_self(fault);
  registered_.push_back(fault);

  if (!temporal.duration.has_value()) {
    // "Every fault injection ... is started only once and without a given
    // duration, needs to be explicitly stopped."
    fault->arm_immediately();
  } else {
    double rate = std::clamp(temporal.rate, 0.0, 1.0);
    auto window = static_cast<double>(temporal.duration->nanos());
    auto active_len = static_cast<std::int64_t>(window * rate);
    std::int64_t slack = temporal.duration->nanos() - active_len;
    Pcg32 rng = RngFactory(temporal.randomseed).stream("fault-window");
    std::int64_t start =
        slack > 0 ? rng.uniform_int(0, slack) : 0;
    fault->arm_window(network_.scheduler(), sim::SimDuration(start),
                      sim::SimDuration(active_len));
  }
  return fault;
}

Result<FaultHandle> FaultInjector::interface_fault(
    net::NodeId node, FaultDirection dir, const TemporalSpec& temporal) {
  if (node >= network_.node_count()) {
    return err_invalid("interface_fault: unknown node " + std::to_string(node));
  }
  FaultDirection resolved = resolve_direction(dir, temporal.randomseed);
  std::string name = network_.topology().node(node).name;
  bool affect_rx =
      resolved == FaultDirection::kReceive || resolved == FaultDirection::kBoth;
  bool affect_tx = resolved == FaultDirection::kTransmit ||
                   resolved == FaultDirection::kBoth;
  return schedule(
      "interface", name, temporal,
      [this, node, affect_rx, affect_tx] {
        if (affect_rx) {
          network_.set_interface_up(node, net::Direction::kReceive, false);
        }
        if (affect_tx) {
          network_.set_interface_up(node, net::Direction::kTransmit, false);
        }
      },
      [this, node, affect_rx, affect_tx] {
        if (affect_rx) {
          network_.set_interface_up(node, net::Direction::kReceive, true);
        }
        if (affect_tx) {
          network_.set_interface_up(node, net::Direction::kTransmit, true);
        }
      });
}

Result<FaultHandle> FaultInjector::message_loss(net::NodeId node,
                                                double probability,
                                                FaultDirection dir,
                                                const TemporalSpec& temporal) {
  if (node >= network_.node_count()) {
    return err_invalid("message_loss: unknown node " + std::to_string(node));
  }
  if (probability < 0.0 || probability > 1.0) {
    return err_invalid("message_loss: probability out of [0,1]");
  }
  FaultDirection resolved = resolve_direction(dir, temporal.randomseed);
  std::string name = network_.topology().node(node).name;
  // Loss decisions draw from a dedicated deterministic stream.
  auto rng = std::make_shared<Pcg32>(
      RngFactory(temporal.randomseed ^ fnv1a64(name)).stream("message-loss"));
  auto handle = std::make_shared<net::FilterHandle>();
  net::Port port = experiment_port_;
  return schedule(
      "message_loss", name, temporal,
      [this, node, resolved, probability, rng, handle, port] {
        std::optional<net::Direction> scope_dir;
        if (resolved == FaultDirection::kReceive) {
          scope_dir = net::Direction::kReceive;
        } else if (resolved == FaultDirection::kTransmit) {
          scope_dir = net::Direction::kTransmit;
        }
        *handle = network_.add_filter(
            net::FilterScope{node, scope_dir},
            [rng, probability, port](net::NodeId, net::Direction,
                                     net::Packet& packet) {
              if (!is_experiment_packet(packet, port)) {
                return net::FilterVerdict::pass();
              }
              return rng->bernoulli(probability)
                         ? net::FilterVerdict::drop()
                         : net::FilterVerdict::pass();
            });
      },
      [this, handle] { network_.remove_filter(*handle); });
}

Result<FaultHandle> FaultInjector::message_delay(net::NodeId node,
                                                 sim::SimDuration delay,
                                                 const TemporalSpec& temporal) {
  if (node >= network_.node_count()) {
    return err_invalid("message_delay: unknown node " + std::to_string(node));
  }
  std::string name = network_.topology().node(node).name;
  auto handle = std::make_shared<net::FilterHandle>();
  net::Port port = experiment_port_;
  return schedule(
      "message_delay", name, temporal,
      [this, node, delay, handle, port] {
        *handle = network_.add_filter(
            net::FilterScope{node, std::nullopt},
            [delay, port](net::NodeId, net::Direction, net::Packet& packet) {
              if (!is_experiment_packet(packet, port)) {
                return net::FilterVerdict::pass();
              }
              return net::FilterVerdict::delayed(delay);
            });
      },
      [this, handle] { network_.remove_filter(*handle); });
}

Result<FaultHandle> FaultInjector::path_loss(net::NodeId node,
                                             net::NodeId peer,
                                             double probability,
                                             const TemporalSpec& temporal) {
  if (node >= network_.node_count() || peer >= network_.node_count()) {
    return err_invalid("path_loss: unknown node");
  }
  if (probability < 0.0 || probability > 1.0) {
    return err_invalid("path_loss: probability out of [0,1]");
  }
  std::string name = network_.topology().node(node).name;
  net::Address peer_addr = network_.topology().node(peer).address;
  auto rng = std::make_shared<Pcg32>(
      RngFactory(temporal.randomseed ^ fnv1a64(name)).stream("path-loss"));
  auto handle = std::make_shared<net::FilterHandle>();
  net::Port port = experiment_port_;
  return schedule(
      "path_loss", name, temporal,
      [this, node, peer_addr, probability, rng, handle, port] {
        *handle = network_.add_filter(
            net::FilterScope{node, std::nullopt},
            [rng, probability, peer_addr, port](net::NodeId, net::Direction,
                                                net::Packet& packet) {
              if (!is_experiment_packet(packet, port)) {
                return net::FilterVerdict::pass();
              }
              if (packet.src != peer_addr && packet.dst != peer_addr) {
                return net::FilterVerdict::pass();
              }
              return rng->bernoulli(probability)
                         ? net::FilterVerdict::drop()
                         : net::FilterVerdict::pass();
            });
      },
      [this, handle] { network_.remove_filter(*handle); });
}

Result<FaultHandle> FaultInjector::path_delay(net::NodeId node,
                                              net::NodeId peer,
                                              sim::SimDuration delay,
                                              const TemporalSpec& temporal) {
  if (node >= network_.node_count() || peer >= network_.node_count()) {
    return err_invalid("path_delay: unknown node");
  }
  std::string name = network_.topology().node(node).name;
  net::Address peer_addr = network_.topology().node(peer).address;
  auto handle = std::make_shared<net::FilterHandle>();
  net::Port port = experiment_port_;
  return schedule(
      "path_delay", name, temporal,
      [this, node, peer_addr, delay, handle, port] {
        *handle = network_.add_filter(
            net::FilterScope{node, std::nullopt},
            [delay, peer_addr, port](net::NodeId, net::Direction,
                                     net::Packet& packet) {
              if (!is_experiment_packet(packet, port)) {
                return net::FilterVerdict::pass();
              }
              if (packet.src != peer_addr && packet.dst != peer_addr) {
                return net::FilterVerdict::pass();
              }
              return net::FilterVerdict::delayed(delay);
            });
      },
      [this, handle] { network_.remove_filter(*handle); });
}

Result<FaultHandle> FaultInjector::drop_all_packets(
    const TemporalSpec& temporal) {
  auto handle = std::make_shared<net::FilterHandle>();
  net::Port port = experiment_port_;
  return schedule(
      "drop_all", "", temporal,
      [this, handle, port] {
        // Scope: every node, both directions — including forwarding, since
        // transmit filters run on relays too.
        *handle = network_.add_filter(
            net::FilterScope{std::nullopt, std::nullopt},
            [port](net::NodeId, net::Direction, net::Packet& packet) {
              return is_experiment_packet(packet, port)
                         ? net::FilterVerdict::drop()
                         : net::FilterVerdict::pass();
            });
      },
      [this, handle] { network_.remove_filter(*handle); });
}

void FaultInjector::reset() {
  for (const FaultHandle& fault : registered_) fault->stop();
  registered_.clear();
}

std::size_t FaultInjector::active_count() const {
  std::size_t count = 0;
  for (const FaultHandle& fault : registered_) {
    if (fault->active()) ++count;
  }
  return count;
}

}  // namespace excovery::faults
