#include "sd/hybrid.hpp"

namespace excovery::sd {

HybridAgent::HybridAgent(net::Network& network, net::NodeId node,
                         const HybridConfig& config)
    : network_(network), node_(node), config_(config) {}

HybridAgent::~HybridAgent() {
  if (initialized_) (void)exit();
}

Status HybridAgent::init(SdRole role, const ValueMap& params) {
  if (initialized_) return err_state("hybrid agent already initialised");
  role_ = role;

  if (role == SdRole::kServiceCacheManager) {
    // A hybrid SCM is simply the three-party directory.
    slp_ = std::make_unique<SlpAgent>(network_, node_, config_.slp);
    slp_->set_event_sink([this](std::string_view event, const Value& param) {
      route_inner_event(event, param, /*from_mdns=*/false);
    });
    pending_inits_ = 1;
    initialized_ = true;
    return slp_->init(role, params);
  }

  mdns_ = std::make_unique<MdnsAgent>(network_, node_, config_.mdns);
  slp_ = std::make_unique<SlpAgent>(network_, node_, config_.slp);
  mdns_->set_event_sink([this](std::string_view event, const Value& param) {
    route_inner_event(event, param, /*from_mdns=*/true);
  });
  slp_->set_event_sink([this](std::string_view event, const Value& param) {
    route_inner_event(event, param, /*from_mdns=*/false);
  });
  pending_inits_ = 2;
  initialized_ = true;
  EXC_TRY(mdns_->init(role, params));
  EXC_TRY(slp_->init(role, params));

  // Start the SCM liveness watchdog.
  std::uint64_t generation = generation_.value();
  network_.scheduler().schedule(
      config_.watchdog_interval,
      [this, alive = generation_.token(), generation] {
        if (*alive != generation) return;
        watchdog();
      });
  return {};
}

void HybridAgent::route_inner_event(std::string_view event,
                                    const Value& parameter, bool from_mdns) {
  // Lifecycle events of the inner stacks are implementation detail; the
  // hybrid emits one lifecycle of its own.
  if (event == events::kInitDone) {
    if (--pending_inits_ == 0) {
      emit(events::kInitDone, Value{to_string(role_).data()});
    }
    return;
  }
  if (event == events::kExitDone || event == events::kStartSearch ||
      event == events::kStopSearch || event == events::kStartPublish ||
      event == events::kStopPublish) {
    return;
  }

  if (event == events::kScmFound) {
    emit(events::kScmFound, parameter);
    enter_directed_mode();
    return;
  }
  if (event == events::kScmStarted || event == events::kScmRegistrationAdd ||
      event == events::kScmRegistrationDel ||
      event == events::kScmRegistrationUpd) {
    emit(event, parameter);
    return;
  }

  // Discovery events: deduplicate across stacks.
  if (event == events::kServiceAdd) {
    const std::string& name = parameter.as_string();
    const SdAgent* source =
        from_mdns ? static_cast<const SdAgent*>(mdns_.get())
                  : static_cast<const SdAgent*>(slp_.get());
    // Find which search the instance belongs to.
    for (const ServiceType& type : active_searches_) {
      for (const ServiceInstance& instance : source->discovered(type)) {
        if (instance.instance_name != name) continue;
        if (reported_[type].insert(name).second) {
          emit(events::kServiceAdd, parameter);
        } else {
          // The other stack reported this instance first; leave a lineage
          // marker so provenance shows the losing stack's answer arrived
          // (and when) even though no event was emitted for it.
          network_.record_lineage(sim::LineageKind::kDup,
                                  network_.lineage_ambient(), 0, node_,
                                  "hybrid_dedup");
        }
        return;
      }
    }
    return;
  }
  if (event == events::kServiceDel) {
    const std::string& name = parameter.as_string();
    for (auto& [type, names] : reported_) {
      if (names.count(name) == 0) continue;
      // Only report the loss when neither stack still knows the instance.
      bool still_known = false;
      for (const SdAgent* agent :
           {static_cast<const SdAgent*>(mdns_.get()),
            static_cast<const SdAgent*>(slp_.get())}) {
        if (!agent) continue;
        for (const ServiceInstance& instance : agent->discovered(type)) {
          if (instance.instance_name == name) {
            still_known = true;
            break;
          }
        }
      }
      if (!still_known) {
        names.erase(name);
        emit(events::kServiceDel, parameter);
      }
      return;
    }
    return;
  }
  if (event == events::kServiceUpd) {
    emit(event, parameter);
    return;
  }
  // Unknown / user-specified events pass through.
  emit(event, parameter);
}

void HybridAgent::enter_directed_mode() {
  if (directed_mode_ || !mdns_) return;
  directed_mode_ = true;
  // Suspend active mDNS querying; the SCM serves lookups from here on.
  for (const ServiceType& type : active_searches_) {
    (void)mdns_->stop_search(type);
  }
}

void HybridAgent::leave_directed_mode() {
  if (!directed_mode_ || !mdns_) return;
  directed_mode_ = false;
  for (const ServiceType& type : active_searches_) {
    (void)mdns_->start_search(type);
  }
}

void HybridAgent::watchdog() {
  if (!initialized_) return;
  if (directed_mode_ && slp_ && !slp_->known_scm().has_value()) {
    leave_directed_mode();
  }
  std::uint64_t generation = generation_.value();
  network_.scheduler().schedule(
      config_.watchdog_interval,
      [this, alive = generation_.token(), generation] {
        if (*alive != generation) return;
        watchdog();
      });
}

Status HybridAgent::exit() {
  if (!initialized_) return err_state("hybrid agent not initialised");
  if (mdns_) EXC_TRY(mdns_->exit());
  if (slp_) EXC_TRY(slp_->exit());
  mdns_.reset();
  slp_.reset();
  active_searches_.clear();
  reported_.clear();
  published_.clear();
  directed_mode_ = false;
  generation_.bump();
  initialized_ = false;
  emit(events::kExitDone);
  return {};
}

void HybridAgent::crash() {
  if (!initialized_) return;
  // Crash both inner stacks without goodbyes/deregistrations or events.
  if (mdns_) mdns_->crash();
  if (slp_) slp_->crash();
  mdns_.reset();
  slp_.reset();
  active_searches_.clear();
  reported_.clear();
  published_.clear();
  directed_mode_ = false;
  generation_.bump();
  initialized_ = false;
}

Status HybridAgent::start_search(const ServiceType& type) {
  if (!initialized_) return err_state("start_search before init");
  if (role_ == SdRole::kServiceCacheManager) {
    return err_state("SCM nodes do not search");
  }
  if (!active_searches_.insert(type).second) {
    return err_state("search for '" + type + "' already active");
  }
  emit(events::kStartSearch, Value{type});
  EXC_TRY(slp_->start_search(type));
  if (!directed_mode_) {
    EXC_TRY(mdns_->start_search(type));
  }
  return {};
}

Status HybridAgent::stop_search(const ServiceType& type) {
  if (!initialized_) return err_state("stop_search before init");
  if (active_searches_.erase(type) == 0) {
    return err_state("no active search for '" + type + "'");
  }
  (void)slp_->stop_search(type);
  if (!directed_mode_ && mdns_) (void)mdns_->stop_search(type);
  reported_.erase(type);
  emit(events::kStopSearch, Value{type});
  return {};
}

Status HybridAgent::start_publish(const ServiceInstance& instance) {
  if (!initialized_) return err_state("start_publish before init");
  if (role_ != SdRole::kServiceManager) {
    return err_state("only SM nodes publish services");
  }
  if (!published_.emplace(instance.instance_name, instance).second) {
    return err_state("instance '" + instance.instance_name +
                     "' already published");
  }
  emit(events::kStartPublish, Value{instance.instance_name});
  EXC_TRY(mdns_->start_publish(instance));
  EXC_TRY(slp_->start_publish(instance));
  return {};
}

Status HybridAgent::stop_publish(const std::string& instance_name) {
  if (!initialized_) return err_state("stop_publish before init");
  if (published_.erase(instance_name) == 0) {
    return err_state("instance '" + instance_name + "' is not published");
  }
  (void)mdns_->stop_publish(instance_name);
  (void)slp_->stop_publish(instance_name);
  emit(events::kStopPublish, Value{instance_name});
  return {};
}

Status HybridAgent::update_publication(const ServiceInstance& instance) {
  if (!initialized_) return err_state("update_publication before init");
  auto it = published_.find(instance.instance_name);
  if (it == published_.end()) {
    return err_state("instance '" + instance.instance_name +
                     "' is not published");
  }
  emit(events::kServiceUpd, Value{instance.instance_name});
  it->second = instance;
  EXC_TRY(mdns_->update_publication(instance));
  EXC_TRY(slp_->update_publication(instance));
  return {};
}

std::vector<ServiceInstance> HybridAgent::discovered(
    const ServiceType& type) const {
  std::map<std::string, ServiceInstance> merged;
  if (mdns_) {
    for (ServiceInstance& instance : mdns_->discovered(type)) {
      merged.emplace(instance.instance_name, std::move(instance));
    }
  }
  if (slp_) {
    for (ServiceInstance& instance : slp_->discovered(type)) {
      merged.emplace(instance.instance_name, std::move(instance));
    }
  }
  std::vector<ServiceInstance> out;
  out.reserve(merged.size());
  for (auto& [name, instance] : merged) out.push_back(std::move(instance));
  return out;
}

}  // namespace excovery::sd
