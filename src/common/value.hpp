// Value: the dynamically typed datum used throughout ExCovery.
//
// Factor levels, action parameters, event parameters, XML-RPC arguments and
// storage cells all carry Values.  The type set intentionally matches what
// both XML-RPC (scalar + array + struct) and the relational store (typed
// columns) can represent, so data flows end to end without lossy casts.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/error.hpp"

namespace excovery {

class Value;

using ValueArray = std::vector<Value>;
using ValueMap = std::map<std::string, Value>;
using Bytes = std::vector<std::uint8_t>;

/// Discriminator for Value alternatives.
enum class ValueType {
  kNull,
  kBool,
  kInt,
  kDouble,
  kString,
  kBytes,
  kArray,
  kMap,
};

std::string_view to_string(ValueType type) noexcept;

/// A dynamically typed value (null, bool, int64, double, string, bytes,
/// array, map).  Small, regular, value-semantic.
class Value {
 public:
  Value() = default;  // null
  Value(bool b) : data_(b) {}                      // NOLINT
  Value(std::int64_t i) : data_(i) {}              // NOLINT
  Value(int i) : data_(static_cast<std::int64_t>(i)) {}  // NOLINT
  Value(double d) : data_(d) {}                    // NOLINT
  Value(std::string s) : data_(std::move(s)) {}    // NOLINT
  Value(const char* s) : data_(std::string(s)) {}  // NOLINT
  Value(Bytes b) : data_(std::move(b)) {}          // NOLINT
  Value(ValueArray a) : data_(std::move(a)) {}     // NOLINT
  Value(ValueMap m) : data_(std::move(m)) {}       // NOLINT

  ValueType type() const noexcept {
    return static_cast<ValueType>(data_.index());
  }
  bool is_null() const noexcept { return type() == ValueType::kNull; }
  bool is_bool() const noexcept { return type() == ValueType::kBool; }
  bool is_int() const noexcept { return type() == ValueType::kInt; }
  bool is_double() const noexcept { return type() == ValueType::kDouble; }
  bool is_string() const noexcept { return type() == ValueType::kString; }
  bool is_bytes() const noexcept { return type() == ValueType::kBytes; }
  bool is_array() const noexcept { return type() == ValueType::kArray; }
  bool is_map() const noexcept { return type() == ValueType::kMap; }
  /// Int or double.
  bool is_number() const noexcept { return is_int() || is_double(); }

  // Checked accessors: assert on type mismatch (programming error).
  bool as_bool() const { return std::get<bool>(data_); }
  std::int64_t as_int() const { return std::get<std::int64_t>(data_); }
  double as_double() const {
    if (is_int()) return static_cast<double>(as_int());
    return std::get<double>(data_);
  }
  const std::string& as_string() const { return std::get<std::string>(data_); }
  const Bytes& as_bytes() const { return std::get<Bytes>(data_); }
  const ValueArray& as_array() const { return std::get<ValueArray>(data_); }
  ValueArray& as_array() { return std::get<ValueArray>(data_); }
  const ValueMap& as_map() const { return std::get<ValueMap>(data_); }
  ValueMap& as_map() { return std::get<ValueMap>(data_); }

  // Coercing accessors used when reading levels/parameters from XML text.
  /// Parse-to-int: ints pass through, numeric strings are parsed.
  Result<std::int64_t> to_int() const;
  /// Parse-to-double: numbers pass through, numeric strings are parsed.
  Result<double> to_double() const;
  /// Parse-to-bool: bools pass through; "true"/"false"/"1"/"0" strings.
  Result<bool> to_bool() const;
  /// Render any scalar as text (arrays/maps render as compact literals).
  std::string to_text() const;

  /// Map element lookup; null Value if absent (map type required).
  const Value* find(std::string_view key) const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.data_ == b.data_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  /// Total order over (type index, content); used for deterministic
  /// serialisation and for ORDER BY in the relational store.
  friend bool operator<(const Value& a, const Value& b);

 private:
  std::variant<std::monostate, bool, std::int64_t, double, std::string, Bytes,
               ValueArray, ValueMap>
      data_;
};

}  // namespace excovery
