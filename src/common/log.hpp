// Minimal structured logger.
//
// Experiment logs are first-class measurement artifacts in ExCovery (they
// land in the Logs table of the level-3 store), so the logger supports
// capturing into per-node string sinks in addition to stderr.
#pragma once

#include <functional>
#include <mutex>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>

#include "common/error.hpp"

namespace excovery {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError };

std::string_view to_string(LogLevel level) noexcept;

/// Parse a case-insensitive level name ("trace", "debug", "info", "warn" /
/// "warning", "error") — the format CLI flags like --log-level accept.
Result<LogLevel> parse_log_level(std::string_view text);

/// Global logger with a pluggable sink.  Thread-safe.
class Logger {
 public:
  using Sink = std::function<void(LogLevel, std::string_view component,
                                  std::string_view message)>;

  static Logger& instance();

  void set_level(LogLevel level) noexcept { level_ = level; }
  LogLevel level() const noexcept { return level_; }

  /// Replace the sink (default writes to stderr).  Returns the old sink.
  Sink set_sink(Sink sink);

  void log(LogLevel level, std::string_view component,
           std::string_view message);

  bool enabled(LogLevel level) const noexcept { return level >= level_; }

 private:
  Logger();

  std::mutex mutex_;
  LogLevel level_ = LogLevel::kWarn;
  Sink sink_;
};

/// RAII sink replacement: installs `sink` on construction and restores the
/// previous sink when the scope ends, so a test that captures log output
/// cannot leak its sink into later tests even on early return or throw.
class ScopedSink {
 public:
  explicit ScopedSink(Logger::Sink sink)
      : previous_(Logger::instance().set_sink(std::move(sink))) {}
  ~ScopedSink() { Logger::instance().set_sink(std::move(previous_)); }

  ScopedSink(const ScopedSink&) = delete;
  ScopedSink& operator=(const ScopedSink&) = delete;

 private:
  Logger::Sink previous_;
};

/// A per-component capturing log that also forwards to the global logger.
/// NodeManager instances use one of these so their log text can be stored
/// into the Logs table verbatim.
class CapturingLog {
 public:
  explicit CapturingLog(std::string component)
      : component_(std::move(component)) {}

  void log(LogLevel level, std::string_view message);
  void info(std::string_view message) { log(LogLevel::kInfo, message); }
  void warn(std::string_view message) { log(LogLevel::kWarn, message); }
  void error(std::string_view message) { log(LogLevel::kError, message); }

  /// Entire captured text ("LEVEL component: message\n" lines).
  std::string text() const;
  /// Move the captured text out, leaving the buffer empty.
  std::string take();
  void clear();

  const std::string& component() const noexcept { return component_; }

 private:
  mutable std::mutex mutex_;
  std::string component_;
  std::string captured_;
};

}  // namespace excovery

#define EXC_LOG(level, component, message)                                \
  do {                                                                    \
    if (::excovery::Logger::instance().enabled(level)) {                  \
      std::ostringstream exc_log_oss_;                                    \
      exc_log_oss_ << message; /* NOLINT */                               \
      ::excovery::Logger::instance().log(level, component,                \
                                         exc_log_oss_.str());             \
    }                                                                     \
  } while (false)

#define EXC_LOG_TRACE(component, message) \
  EXC_LOG(::excovery::LogLevel::kTrace, component, message)
#define EXC_LOG_DEBUG(component, message) \
  EXC_LOG(::excovery::LogLevel::kDebug, component, message)
#define EXC_LOG_INFO(component, message) \
  EXC_LOG(::excovery::LogLevel::kInfo, component, message)
#define EXC_LOG_WARN(component, message) \
  EXC_LOG(::excovery::LogLevel::kWarn, component, message)
#define EXC_LOG_ERROR(component, message) \
  EXC_LOG(::excovery::LogLevel::kError, component, message)
