// Unit tests for the XML module: arena DOM, in-situ parser, writer,
// selection, schema.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "xml/dom.hpp"
#include "xml/parser.hpp"
#include "xml/schema.hpp"
#include "xml/select.hpp"
#include "xml/writer.hpp"

namespace excovery::xml {
namespace {

// ---- parser ------------------------------------------------------------------

TEST(XmlParser, SimpleElement) {
  Result<Document> doc = parse("<a/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().root().name(), "a");
  EXPECT_TRUE(doc.value().root().children().empty());
}

TEST(XmlParser, AttributesBothQuoteStyles) {
  Result<Document> doc = parse(R"(<node id="A" kind='actor'/>)");
  ASSERT_TRUE(doc.ok());
  const Element& root = doc.value().root();
  EXPECT_EQ(*root.attr("id"), "A");
  EXPECT_EQ(*root.attr("kind"), "actor");
  EXPECT_EQ(root.attr("missing"), nullptr);
}

TEST(XmlParser, NestedChildrenAndText) {
  Result<Document> doc = parse(
      "<factor id=\"f\"><levels><level>5</level><level>20</level>"
      "</levels></factor>");
  ASSERT_TRUE(doc.ok());
  const Element* levels = doc.value().root().child("levels");
  ASSERT_NE(levels, nullptr);
  std::vector<const Element*> level_nodes;
  for (const Element* level : levels->children_named("level")) {
    level_nodes.push_back(level);
  }
  ASSERT_EQ(level_nodes.size(), 2u);
  EXPECT_EQ(level_nodes[0]->text(), "5");
  EXPECT_EQ(level_nodes[1]->text(), "20");
  EXPECT_EQ(levels->children_named("level").size(), 2u);
}

TEST(XmlParser, EntityDecoding) {
  Result<Document> doc =
      parse("<t a=\"&lt;&amp;&gt;\">&quot;x&apos; &#65;&#x42;</t>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(*doc.value().root().attr("a"), "<&>");
  EXPECT_EQ(doc.value().root().text(), "\"x' AB");
}

TEST(XmlParser, CdataPreserved) {
  Result<Document> doc = parse("<t><![CDATA[a < b && c > d]]></t>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().root().text(), "a < b && c > d");
}

TEST(XmlParser, CommentsAndPisSkipped) {
  Result<Document> doc = parse(
      "<?xml version=\"1.0\"?><!-- hello --><t><!-- inner -->x<?pi y?></t>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().root().text(), "x");
}

TEST(XmlParser, MismatchedTagIsError) {
  Result<Document> doc = parse("<a><b></a></b>");
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(doc.error().code(), ErrorCode::kParse);
}

TEST(XmlParser, ErrorsCarryPosition) {
  Result<Document> doc = parse("<a>\n<b attr></b></a>");
  ASSERT_FALSE(doc.ok());
  EXPECT_NE(doc.error().message().find("line 2"), std::string::npos);
}

TEST(XmlParser, DuplicateAttributeRejected) {
  EXPECT_FALSE(parse("<a x=\"1\" x=\"2\"/>").ok());
}

TEST(XmlParser, MultipleRootsRejected) {
  EXPECT_FALSE(parse("<a/><b/>").ok());
}

TEST(XmlParser, EmptyDocumentRejected) {
  EXPECT_FALSE(parse("   ").ok());
  EXPECT_FALSE(parse("<!-- only a comment -->").ok());
}

TEST(XmlParser, UnterminatedElementRejected) {
  EXPECT_FALSE(parse("<a><b>").ok());
}

TEST(XmlParser, DeepNestingBounded) {
  std::string deep;
  for (int i = 0; i < 400; ++i) deep += "<d>";
  for (int i = 0; i < 400; ++i) deep += "</d>";
  EXPECT_FALSE(parse(deep).ok());
}

TEST(XmlParser, Utf8CharacterReferences) {
  Result<Document> doc = parse("<t>&#xE9;&#x4E16;</t>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().root().text(), "\xC3\xA9\xE4\xB8\x96");
}

TEST(XmlParser, XmlWhitespaceOnlyBetweenTokens) {
  // The four XML whitespace characters are accepted between markup tokens;
  // tokenisation no longer consults the locale-sensitive std::isspace.
  EXPECT_TRUE(parse("<a \t\r\n x=\"1\" \t />").ok());
  Result<Document> doc = parse(" \t\r\n <a/> \t\r\n ");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc.value().root().name(), "a");
}

TEST(XmlParser, OwnershipTransferOverloadParsesInSitu) {
  // The rvalue overload retains the input buffer inside the document and
  // parses in situ; views stay valid for the document's whole lifetime.
  std::string source = "<config mode=\"fast\"><entry>payload</entry></config>";
  Result<Document> doc = parse(std::move(source));
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(*doc.value().root().attr("mode"), "fast");
  EXPECT_EQ(doc.value().root().child("entry")->text(), "payload");
}

TEST(XmlParser, DocumentIsStableAcrossMoves) {
  Result<Document> parsed = parse("<r a=\"v\"><c>text</c></r>");
  ASSERT_TRUE(parsed.ok());
  Document moved = std::move(parsed).value();
  Document moved_again = std::move(moved);
  EXPECT_EQ(*moved_again.root().attr("a"), "v");
  EXPECT_EQ(moved_again.root().child("c")->text(), "text");
}

// ---- writer ----------------------------------------------------------------------

TEST(XmlWriter, RoundTripPreservesStructure) {
  const char* source =
      "<experiment name=\"x\"><nodelist><node id=\"A\" /><node id=\"B\" />"
      "</nodelist><note>with &lt;escapes&gt; &amp; entities</note>"
      "</experiment>";
  Result<Document> first = parse(source);
  ASSERT_TRUE(first.ok());
  std::string text = write(first.value().root());
  Result<Document> second = parse(text);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(first.value().root().equals(second.value().root()));
}

TEST(XmlWriter, CompactModeHasNoNewlines) {
  Document doc("a");
  doc.root().add_child("b").set_text("t");
  std::string text = write(doc.root(), {.pretty = false, .declaration = false});
  EXPECT_EQ(text.find('\n'), std::string::npos);
  EXPECT_EQ(text, "<a><b>t</b></a>");
}

TEST(XmlWriter, AttributeEscaping) {
  Document doc("a");
  doc.root().set_attr("v", "x\"<&>'");
  std::string text = write(doc.root(), {.pretty = false, .declaration = false});
  Result<Document> back = parse(text);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back.value().root().attr("v"), "x\"<&>'");
}

TEST(XmlWriter, CanonicalSinkMatchesStringOutput) {
  Result<Document> doc =
      parse("<r b=\"2\" a=\"1\"><k>v</k>  tail  </r>");
  ASSERT_TRUE(doc.ok());
  std::string canonical = write_canonical(doc.value().root());
  struct Collect final : Sink {
    std::string out;
    void write(const char* data, std::size_t size) override {
      out.append(data, size);
    }
  } collect;
  write_canonical(doc.value().root(), collect);
  EXPECT_EQ(collect.out, canonical);
  EXPECT_EQ(canonical_size(doc.value().root()), canonical.size());
}

// ---- DOM helpers --------------------------------------------------------------------

TEST(XmlDom, RequireHelpers) {
  Document doc("r");
  Element& root = doc.root();
  root.add_child("c").set_attr("id", "1");
  EXPECT_TRUE(root.require_child("c").ok());
  EXPECT_FALSE(root.require_child("missing").ok());
  EXPECT_TRUE(root.child("c")->require_attr("id").ok());
  EXPECT_FALSE(root.child("c")->require_attr("nope").ok());
}

TEST(XmlDom, CloneIsDeepAndEqual) {
  Result<Document> doc = parse("<a x=\"1\"><b>t</b><b>u</b></a>");
  ASSERT_TRUE(doc.ok());
  Document copy = doc.value().clone();
  EXPECT_TRUE(doc.value().root().equals(copy.root()));
  copy.root().child("b")->set_text("changed");
  EXPECT_FALSE(doc.value().root().equals(copy.root()));
}

TEST(XmlDom, AddTextChildConvenience) {
  Document doc("r");
  doc.root().add_text_child("k", "v");
  EXPECT_EQ(doc.root().child("k")->text(), "v");
}

TEST(XmlDom, MutationAfterParseCopiesIntoArena) {
  // set_attr / append_text on a parsed document must copy transient input
  // into the arena, not alias it.
  Result<Document> parsed = parse("<r/>");
  ASSERT_TRUE(parsed.ok());
  Document doc = std::move(parsed).value();
  {
    std::string transient = "short-lived-value";
    doc.root().set_attr("k", transient);
    doc.root().append_text(transient);
    transient.assign(transient.size(), 'X');
  }
  EXPECT_EQ(*doc.root().attr("k"), "short-lived-value");
  EXPECT_EQ(doc.root().text(), "short-lived-value");
}

TEST(XmlDom, NamedChildRangeIsLazyAndOrdered) {
  Result<Document> doc =
      parse("<r><a i=\"1\"/><b/><a i=\"2\"/><c/><a i=\"3\"/></r>");
  ASSERT_TRUE(doc.ok());
  std::vector<std::string> seen;
  for (const Element* a : doc.value().root().children_named("a")) {
    seen.push_back(std::string(*a->attr("i")));
  }
  EXPECT_EQ(seen, (std::vector<std::string>{"1", "2", "3"}));
  EXPECT_TRUE(doc.value().root().children_named("missing").empty());
}

TEST(XmlDom, SubtreeCopyAcrossDocuments) {
  Result<Document> source = parse("<s><sub k=\"v\"><leaf>t</leaf></sub></s>");
  ASSERT_TRUE(source.ok());
  Document target("t");
  target.root().add_subtree_copy(*source.value().root().child("sub"));
  const Element* sub = target.root().child("sub");
  ASSERT_NE(sub, nullptr);
  EXPECT_TRUE(sub->equals(*source.value().root().child("sub")));
}

// ---- selection -----------------------------------------------------------------------

TEST(XmlSelect, PathNavigation) {
  Result<Document> doc = parse(
      "<r><a><b id=\"1\">x</b><b id=\"2\">y</b></a><a><b id=\"3\">z</b></a>"
      "</r>");
  ASSERT_TRUE(doc.ok());
  const Element& root = doc.value().root();
  EXPECT_EQ(select_all(root, "a/b").size(), 3u);
  EXPECT_EQ(select_first(root, "a/b")->text(), "x");
  EXPECT_EQ(select_first(root, "a/b[@id=2]")->text(), "y");
  EXPECT_EQ(select_first(root, "a/b[2]")->text(), "y");
  EXPECT_EQ(select_all(root, "a/*").size(), 3u);
  EXPECT_EQ(select_first(root, "a/c"), nullptr);
  EXPECT_TRUE(select_required(root, "a/b").ok());
  EXPECT_FALSE(select_required(root, "q").ok());
}

TEST(XmlSelect, RecursiveDescent) {
  Result<Document> doc =
      parse("<r><x><y><leaf/></y></x><leaf/><z><leaf/></z></r>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(select_all_recursive(doc.value().root(), "leaf").size(), 3u);
}

TEST(XmlSelect, RecursiveDescentDocumentOrder) {
  Result<Document> doc = parse(
      "<r><k i=\"1\"><k i=\"2\"/></k><m><k i=\"3\"/></m><k i=\"4\"/></r>");
  ASSERT_TRUE(doc.ok());
  std::vector<std::string> order;
  for (const Element* k : select_all_recursive(doc.value().root(), "k")) {
    order.push_back(std::string(*k->attr("i")));
  }
  EXPECT_EQ(order, (std::vector<std::string>{"1", "2", "3", "4"}));
}

TEST(XmlSelect, TextOrDefault) {
  Result<Document> doc = parse("<r><k>v</k></r>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(select_text_or(doc.value().root(), "k", "d"), "v");
  EXPECT_EQ(select_text_or(doc.value().root(), "missing", "d"), "d");
}

// ---- schema ----------------------------------------------------------------------------

Schema make_schema() {
  Schema schema;
  schema.element("library")
      .child("book", Occurs::at_least(1))
      .no_text();
  schema.element("book")
      .attr("isbn", /*required=*/true)
      .attr("lang", false, {"en", "de"})
      .child("title", Occurs::required())
      .child("author", Occurs::any());
  schema.element("title");
  schema.element("author");
  return schema;
}

TEST(XmlSchema, AcceptsValidDocument) {
  Result<Document> doc = parse(
      "<library><book isbn=\"1\" lang=\"en\"><title>t</title>"
      "<author>a</author><author>b</author></book></library>");
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(make_schema().validate(doc.value().root()).ok());
}

TEST(XmlSchema, MissingRequiredAttribute) {
  Result<Document> doc =
      parse("<library><book><title>t</title></book></library>");
  ASSERT_TRUE(doc.ok());
  Status status = make_schema().validate(doc.value().root());
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.error().message().find("isbn"), std::string::npos);
}

TEST(XmlSchema, EnumeratedAttributeValue) {
  Result<Document> doc = parse(
      "<library><book isbn=\"1\" lang=\"fr\"><title>t</title></book>"
      "</library>");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(make_schema().validate(doc.value().root()).ok());
}

TEST(XmlSchema, OccurrenceBounds) {
  Result<Document> no_books = parse("<library></library>");
  ASSERT_TRUE(no_books.ok());
  EXPECT_FALSE(make_schema().validate(no_books.value().root()).ok());

  Result<Document> two_titles = parse(
      "<library><book isbn=\"1\"><title>a</title><title>b</title></book>"
      "</library>");
  ASSERT_TRUE(two_titles.ok());
  EXPECT_FALSE(make_schema().validate(two_titles.value().root()).ok());
}

TEST(XmlSchema, UnexpectedChildRejectedUnlessOpen) {
  Result<Document> doc = parse(
      "<library><book isbn=\"1\"><title>t</title><extra/></book></library>");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(make_schema().validate(doc.value().root()).ok());

  Schema open = make_schema();
  open.element("book").open_children();
  EXPECT_TRUE(open.validate(doc.value().root()).ok());
}

TEST(XmlSchema, TextPolicyEnforced) {
  Result<Document> doc = parse(
      "<library>oops<book isbn=\"1\"><title>t</title></book></library>");
  ASSERT_TRUE(doc.ok());
  EXPECT_FALSE(make_schema().validate(doc.value().root()).ok());
}

TEST(XmlSchema, StrictModeFlagsUnknownElements) {
  Schema schema = make_schema();
  Result<Document> doc = parse("<unknown/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_TRUE(schema.validate(doc.value().root()).ok());
  EXPECT_FALSE(schema.validate(doc.value().root(), /*strict=*/true).ok());
}

TEST(XmlSchema, CollectsAllProblems) {
  Result<Document> doc =
      parse("<library><book lang=\"fr\"></book></library>");
  ASSERT_TRUE(doc.ok());
  Status status = make_schema().validate(doc.value().root());
  ASSERT_FALSE(status.ok());
  // Three problems: missing isbn, bad lang, missing title.
  EXPECT_NE(status.error().message().find("isbn"), std::string::npos);
  EXPECT_NE(status.error().message().find("lang"), std::string::npos);
  EXPECT_NE(status.error().message().find("title"), std::string::npos);
}

}  // namespace
}  // namespace excovery::xml
