#include "xml/writer.hpp"

#include <array>
#include <cstdint>
#include <type_traits>
#include <vector>

#ifdef __SSE2__
#include <emmintrin.h>
#endif

namespace excovery::xml {

namespace {

constexpr std::string_view kDeclaration =
    "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";

// The emitters are templated over a tiny output concept (append/push) so
// the same single serialisation routine drives three instantiations: exact
// byte counting, emission into a pre-sized string, and chunked streaming
// into a Sink.  Count + emit is how write() sizes its buffer exactly and
// how campaign_digest learns the canonical length for its length prefix
// without materialising the text.

struct CountOut {
  std::size_t n = 0;
  void append(const char*, std::size_t size) noexcept { n += size; }
  void append(std::string_view s) noexcept { n += s.size(); }
  void push(char) noexcept { ++n; }
};

struct StringOut {
  std::string& s;
  void append(const char* data, std::size_t size) { s.append(data, size); }
  void append(std::string_view v) { s.append(v); }
  void push(char c) { s.push_back(c); }
};

struct SinkOut {
  explicit SinkOut(Sink& sink) noexcept : sink_(sink) {}
  void append(const char* data, std::size_t size) {
    if (size > sizeof(buf_) - used_) {
      flush();
      if (size >= sizeof(buf_)) {
        sink_.write(data, size);
        return;
      }
    }
    std::memcpy(buf_ + used_, data, size);
    used_ += size;
  }
  void append(std::string_view v) { append(v.data(), v.size()); }
  void push(char c) {
    if (used_ == sizeof(buf_)) flush();
    buf_[used_++] = c;
  }
  void flush() {
    if (used_) sink_.write(buf_, used_);
    used_ = 0;
  }

 private:
  Sink& sink_;
  char buf_[4096];
  std::size_t used_ = 0;
};

// Escaping tables: per byte, the number of EXTRA output bytes its escape
// sequence needs (0 marks a plain byte).  The counting pass sums these
// branchlessly; the emit pass uses "nonzero" as "needs replacing".
constexpr std::array<std::uint8_t, 256> make_extra(bool attr) {
  std::array<std::uint8_t, 256> table{};
  table[static_cast<unsigned char>('&')] = 4;  // &amp;
  table[static_cast<unsigned char>('<')] = 3;  // &lt;
  table[static_cast<unsigned char>('>')] = 3;  // &gt;
  if (attr) {
    table[static_cast<unsigned char>('"')] = 5;   // &quot;
    table[static_cast<unsigned char>('\'')] = 5;  // &apos;
  }
  return table;
}
constexpr std::array<std::uint8_t, 256> kTextExtra = make_extra(false);
constexpr std::array<std::uint8_t, 256> kAttrExtra = make_extra(true);

constexpr std::size_t escaped_size(
    std::string_view text, const std::array<std::uint8_t, 256>& extra) {
  std::size_t n = text.size();
  for (char c : text) n += extra[static_cast<unsigned char>(c)];
  return n;
}

/// Index of the first byte at or after `i` that `extra` marks as needing
/// an escape, or text.size().  SSE2 scans 16 bytes per step against the
/// five escapable characters; the table re-check keeps the text/attr
/// distinction (quotes are plain in character data).
inline std::size_t find_escape(std::string_view text, std::size_t i,
                               const std::array<std::uint8_t, 256>& extra) {
#ifdef __SSE2__
  const __m128i amp = _mm_set1_epi8('&');
  const __m128i lt = _mm_set1_epi8('<');
  const __m128i gt = _mm_set1_epi8('>');
  const __m128i quot = _mm_set1_epi8('"');
  const __m128i apos = _mm_set1_epi8('\'');
  while (i + 16 <= text.size()) {
    const __m128i v = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(text.data() + i));
    const __m128i hit = _mm_or_si128(
        _mm_or_si128(_mm_cmpeq_epi8(v, amp), _mm_cmpeq_epi8(v, lt)),
        _mm_or_si128(_mm_cmpeq_epi8(v, gt),
                     _mm_or_si128(_mm_cmpeq_epi8(v, quot),
                                  _mm_cmpeq_epi8(v, apos))));
    int mask = _mm_movemask_epi8(hit);
    while (mask != 0) {
      const int bit = __builtin_ctz(static_cast<unsigned>(mask));
      const auto c = static_cast<unsigned char>(text[i + bit]);
      if (extra[c] != 0) return i + static_cast<std::size_t>(bit);
      mask &= mask - 1;
    }
    i += 16;
  }
#endif
  while (i < text.size() &&
         extra[static_cast<unsigned char>(text[i])] == 0) {
    ++i;
  }
  return i;
}

template <class Out>
void emit_escaped(std::string_view text, Out& out,
                  const std::array<std::uint8_t, 256>& extra) {
  if constexpr (std::is_same_v<Out, CountOut>) {
    out.n += escaped_size(text, extra);
    return;
  }
  std::size_t start = 0;
  std::size_t i = find_escape(text, 0, extra);
  while (i < text.size()) {
    out.append(text.data() + start, i - start);
    switch (text[i]) {
      case '&': out.append("&amp;", 5); break;
      case '<': out.append("&lt;", 4); break;
      case '>': out.append("&gt;", 4); break;
      case '"': out.append("&quot;", 6); break;
      case '\'': out.append("&apos;", 6); break;
    }
    start = i + 1;
    i = find_escape(text, start, extra);
  }
  out.append(text.data() + start, text.size() - start);
}

template <class Out>
void emit_escaped_text(std::string_view text, Out& out) {
  emit_escaped(text, out, kTextExtra);
}

template <class Out>
void emit_escaped_attr(std::string_view text, Out& out) {
  emit_escaped(text, out, kAttrExtra);
}

template <class Out>
void emit_trimmed_text(const Element& element, Out& out) {
  element.for_each_text_span(
      [&](std::string_view span) { emit_escaped_text(span, out); });
}

template <class Out>
void emit_indent(int level, const WriteOptions& options, Out& out) {
  if (!options.pretty) return;
  out.push('\n');
  static constexpr char kSpaces[64] = {' ', ' ', ' ', ' ', ' ', ' ', ' ', ' ',
                                       ' ', ' ', ' ', ' ', ' ', ' ', ' ', ' ',
                                       ' ', ' ', ' ', ' ', ' ', ' ', ' ', ' ',
                                       ' ', ' ', ' ', ' ', ' ', ' ', ' ', ' ',
                                       ' ', ' ', ' ', ' ', ' ', ' ', ' ', ' ',
                                       ' ', ' ', ' ', ' ', ' ', ' ', ' ', ' ',
                                       ' ', ' ', ' ', ' ', ' ', ' ', ' ', ' ',
                                       ' ', ' ', ' ', ' ', ' ', ' ', ' ', ' '};
  int n = level * options.indent_width;
  while (n > 0) {
    int take = n < 64 ? n : 64;
    out.append(kSpaces, static_cast<std::size_t>(take));
    n -= take;
  }
}

template <class Out>
void emit_element(const Element& element, const WriteOptions& options,
                  int depth, Out& out) {
  if (depth > 0 || options.declaration) emit_indent(depth, options, out);
  out.push('<');
  out.append(element.name());
  for (const Attribute& a : element.attributes()) {
    out.push(' ');
    out.append(a.name);
    out.append("=\"", 2);
    emit_escaped_attr(a.value, out);
    out.push('"');
  }

  bool has_text = element.has_text();
  if (!element.has_children() && !has_text) {
    out.append(" />", 3);
    return;
  }
  out.push('>');

  if (!element.has_children()) {
    // Text-only element: keep text inline for readability.
    emit_trimmed_text(element, out);
    out.append("</", 2);
    out.append(element.name());
    out.push('>');
    return;
  }

  if (has_text) {
    emit_indent(depth + 1, options, out);
    emit_trimmed_text(element, out);
  }
  for (const Element& child : element.children()) {
    emit_element(child, options, depth + 1, out);
  }
  emit_indent(depth, options, out);
  out.append("</", 2);
  out.append(element.name());
  out.push('>');
}

/// Sorted attribute emission for the canonical form: small attribute lists
/// (the common case) sort on the stack; a stable insertion sort keeps
/// original order for (invalid) duplicate names, so the output is still
/// deterministic.
template <class Out>
void emit_sorted_attrs(const Element& element, Out& out) {
  if constexpr (std::is_same_v<Out, CountOut>) {
    // Byte counting is order-invariant: skip the sort entirely.
    for (const Attribute& a : element.attributes()) {
      out.n += 4 + a.name.size() + escaped_size(a.value, kAttrExtra);
    }
    return;
  }
  constexpr std::size_t kInline = 16;
  const Attribute* stack_slots[kInline];
  std::vector<const Attribute*> heap_slots;
  const Attribute** attrs = stack_slots;
  std::size_t count = 0;
  for (const Attribute& a : element.attributes()) {
    (void)a;
    ++count;
  }
  if (count > kInline) {
    heap_slots.resize(count);
    attrs = heap_slots.data();
  }
  std::size_t i = 0;
  for (const Attribute& a : element.attributes()) attrs[i++] = &a;
  for (std::size_t j = 1; j < count; ++j) {
    const Attribute* key = attrs[j];
    std::size_t k = j;
    while (k > 0 && attrs[k - 1]->name > key->name) {
      attrs[k] = attrs[k - 1];
      --k;
    }
    attrs[k] = key;
  }
  for (std::size_t j = 0; j < count; ++j) {
    out.push(' ');
    out.append(attrs[j]->name);
    out.append("=\"", 2);
    emit_escaped_attr(attrs[j]->value, out);
    out.push('"');
  }
}

template <class Out>
void emit_canonical(const Element& element, Out& out) {
  out.push('<');
  out.append(element.name());
  emit_sorted_attrs(element, out);

  bool has_text = element.has_text();
  if (!element.has_children() && !has_text) {
    out.append("/>", 2);
    return;
  }
  out.push('>');
  if (has_text) emit_trimmed_text(element, out);
  for (const Element& child : element.children()) {
    emit_canonical(child, out);
  }
  out.append("</", 2);
  out.append(element.name());
  out.push('>');
}

}  // namespace

std::string write(const Element& root, const WriteOptions& options) {
  CountOut counter;
  if (options.declaration) counter.append(kDeclaration);
  emit_element(root, options, 0, counter);
  if (options.pretty) counter.push('\n');

  std::string out;
  out.reserve(counter.n);
  StringOut sink{out};
  if (options.declaration) sink.append(kDeclaration);
  emit_element(root, options, 0, sink);
  if (options.pretty) sink.push('\n');
  return out;
}

std::string write(const Document& doc, const WriteOptions& options) {
  return write(doc.root(), options);
}

std::string write_canonical(const Element& root) {
  CountOut counter;
  emit_canonical(root, counter);
  std::string out;
  out.reserve(counter.n);
  StringOut sink{out};
  emit_canonical(root, sink);
  return out;
}

void write_canonical(const Element& root, Sink& sink) {
  SinkOut out(sink);
  emit_canonical(root, out);
  out.flush();
}

std::size_t canonical_size(const Element& root) {
  CountOut counter;
  emit_canonical(root, counter);
  return counter.n;
}

}  // namespace excovery::xml
