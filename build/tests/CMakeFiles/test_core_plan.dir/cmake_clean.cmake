file(REMOVE_RECURSE
  "CMakeFiles/test_core_plan.dir/core_plan_test.cpp.o"
  "CMakeFiles/test_core_plan.dir/core_plan_test.cpp.o.d"
  "test_core_plan"
  "test_core_plan.pdb"
  "test_core_plan[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
