// Canonical-form and content-digest properties (DESIGN.md §14): the digest
// must be invariant under XML presentation (attribute order, whitespace)
// and must change on every semantic field, the seeds, the scope knobs and
// the digest protocol version.  These properties are what make serving a
// cached package for an equal digest answer-invisible.
#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "common/hash.hpp"
#include "core/canonical.hpp"
#include "core/scenario.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace excovery::core {
namespace {

using scenario::TwoPartyOptions;

ExperimentDescription small_description(std::uint64_t seed = 5) {
  TwoPartyOptions options;
  options.replications = 2;
  options.environment_count = 1;
  options.seed = seed;
  options.loss_levels = {0.0, 0.2};
  Result<ExperimentDescription> description =
      scenario::two_party_sd(options);
  EXPECT_TRUE(description.ok());
  return std::move(description).value();
}

/// Deep copy of an element tree with every attribute list reversed — a
/// presentation-only change a canonicaliser must erase.
void copy_with_reversed_attrs(const xml::Element& from, xml::Element& to) {
  std::vector<const xml::Attribute*> attrs;
  for (const xml::Attribute& attr : from.attributes()) attrs.push_back(&attr);
  for (auto it = attrs.rbegin(); it != attrs.rend(); ++it) {
    to.set_attr((*it)->name, (*it)->value);
  }
  const std::string text = from.text();
  if (!text.empty()) to.set_text(text);
  for (const xml::Element& child : from.children()) {
    copy_with_reversed_attrs(child, to.add_child(child.name()));
  }
}

xml::Document reverse_attributes(const xml::Element& element) {
  xml::Document doc(element.name());
  copy_with_reversed_attrs(element, doc.root());
  return doc;
}

// ---- the digest primitive ------------------------------------------------

TEST(Sha256, PublishedTestVectors) {
  EXPECT_EQ(to_hex(Sha256::digest("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(to_hex(Sha256::digest("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      to_hex(Sha256::digest(
          "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, StreamingMatchesOneShot) {
  const std::string text(1000, 'x');
  Sha256 streamed;
  for (std::size_t i = 0; i < text.size(); i += 7) {
    streamed.update(text.substr(i, 7));
  }
  EXPECT_EQ(to_hex(streamed.finish()), to_hex(Sha256::digest(text)));
}

TEST(Sha256, SizedUpdatesCannotAlias) {
  Sha256 a;
  a.update_sized("ab").update_sized("c");
  Sha256 b;
  b.update_sized("a").update_sized("bc");
  EXPECT_NE(to_hex(a.finish()), to_hex(b.finish()));
}

// ---- canonical XML -------------------------------------------------------

TEST(CanonicalXml, AttributeOrderDoesNotMatter) {
  xml::Document a("node");
  a.root().set_attr("id", "A").set_attr("address", "10.0.0.1").set_attr("x",
                                                                        "3");
  xml::Document b("node");
  b.root().set_attr("x", "3").set_attr("id", "A").set_attr("address",
                                                           "10.0.0.1");
  EXPECT_EQ(xml::write_canonical(a.root()), xml::write_canonical(b.root()));
  // pretty writer keeps order
  EXPECT_NE(xml::write(a.root(), {}), xml::write(b.root(), {}));
}

TEST(CanonicalXml, WhitespaceDoesNotMatter) {
  Result<xml::Document> compact =
      xml::parse("<e a=\"1\"><c>text</c><d/></e>");
  Result<xml::Document> spaced = xml::parse(
      "<e   a = \"1\" >\n   <c>\n     text\n   </c>\n   <d></d>\n</e>\n");
  ASSERT_TRUE(compact.ok());
  ASSERT_TRUE(spaced.ok());
  EXPECT_EQ(xml::write_canonical(compact.value().root()),
            xml::write_canonical(spaced.value().root()));
}

TEST(CanonicalXml, SemanticDifferencesSurvive) {
  Result<xml::Document> base = xml::parse("<e a=\"1\"><c>text</c></e>");
  ASSERT_TRUE(base.ok());
  const std::string canonical = xml::write_canonical(base.value().root());
  for (const char* variant :
       {"<e a=\"2\"><c>text</c></e>", "<e a=\"1\"><c>other</c></e>",
        "<e a=\"1\" b=\"0\"><c>text</c></e>", "<e a=\"1\"><d>text</d></e>",
        "<e a=\"1\"><c>text</c><c>text</c></e>"}) {
    Result<xml::Document> parsed = xml::parse(variant);
    ASSERT_TRUE(parsed.ok()) << variant;
    EXPECT_NE(xml::write_canonical(parsed.value().root()), canonical)
        << variant;
  }
}

// ---- description canonical form -----------------------------------------

TEST(CanonicalDescription, InvariantUnderAttributeReorderAndWhitespace) {
  const ExperimentDescription description = small_description();
  const std::string digest = campaign_digest(description);

  // Whitespace: re-parse a compact serialisation of the same tree.
  xml::Document doc = description.to_xml();
  xml::WriteOptions compact;
  compact.pretty = false;
  compact.declaration = false;
  Result<ExperimentDescription> reparsed =
      ExperimentDescription::parse(xml::write(doc.root(), compact));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(canonical_description_text(reparsed.value()),
            canonical_description_text(description));
  EXPECT_EQ(campaign_digest(reparsed.value()), digest);

  // Attribute order: reverse every attribute list, re-parse, re-digest.
  xml::Document reversed = reverse_attributes(doc.root());
  EXPECT_EQ(xml::write_canonical(doc.root()),
            xml::write_canonical(reversed.root()));
  Result<ExperimentDescription> from_reversed =
      ExperimentDescription::parse(xml::write(reversed.root(), {}));
  ASSERT_TRUE(from_reversed.ok());
  EXPECT_EQ(campaign_digest(from_reversed.value()), digest);
}

TEST(CanonicalDescription, RoundTripStableAcrossSeeds) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const ExperimentDescription description = small_description(seed);
    Result<ExperimentDescription> round =
        ExperimentDescription::parse(description.to_xml_text());
    ASSERT_TRUE(round.ok());
    EXPECT_EQ(campaign_digest(round.value()), campaign_digest(description))
        << "seed " << seed;
  }
}

TEST(CanonicalDescription, EverySemanticChangeChangesTheDigest) {
  const ExperimentDescription base = small_description();
  const CampaignScope base_scope;
  const std::string base_digest = campaign_digest(base, base_scope);

  struct Mutation {
    const char* what;
    std::function<void(ExperimentDescription&, CampaignScope&)> apply;
  };
  const std::vector<Mutation> mutations = {
      {"experiment name",
       [](ExperimentDescription& d, CampaignScope&) { d.name += "-x"; }},
      {"description seed",
       [](ExperimentDescription& d, CampaignScope&) { d.seed += 1; }},
      {"replication count",
       [](ExperimentDescription& d, CampaignScope&) { d.replications += 1; }},
      {"informative parameter",
       [](ExperimentDescription& d, CampaignScope&) {
         d.info_params["sd_architecture"] = Value("three-party");
       }},
      {"abstract node set",
       [](ExperimentDescription& d, CampaignScope&) {
         d.abstract_nodes.push_back("EXTRA");
       }},
      {"factor level",
       [](ExperimentDescription& d, CampaignScope&) {
         for (Factor& factor : d.factors) {
           if (factor.id == "fact_loss") {
             factor.levels.push_back(Value(0.7));
             return;
           }
         }
         FAIL() << "no loss factor";
       }},
      {"action parameter",
       [](ExperimentDescription& d, CampaignScope&) {
         ASSERT_FALSE(d.actor_processes.empty());
         ASSERT_FALSE(d.actor_processes[0].actions.empty());
         d.actor_processes[0].actions[0].params.emplace_back(
             "extra", ParamValue::lit(Value(std::int64_t{1})));
       }},
      {"platform address",
       [](ExperimentDescription& d, CampaignScope&) {
         ASSERT_FALSE(d.platform.actor_nodes.empty());
         d.platform.actor_nodes[0].address = "10.9.9.9";
       }},
      {"platform seed",
       [](ExperimentDescription&, CampaignScope& s) {
         s.platform_seed += 1;
       }},
      {"topology kind",
       [](ExperimentDescription&, CampaignScope& s) {
         s.topology.kind = scenario::TopologyKind::kChain;
       }},
      {"topology link loss",
       [](ExperimentDescription&, CampaignScope& s) {
         s.topology.link.loss = 0.01;
       }},
      {"topology radius",
       [](ExperimentDescription&, CampaignScope& s) {
         s.topology.radius += 0.05;
       }},
      {"topology seed",
       [](ExperimentDescription&, CampaignScope& s) { s.topology.seed += 1; }},
      {"chain spacing",
       [](ExperimentDescription&, CampaignScope& s) {
         s.topology.chain_spacing += 1;
       }},
      {"max attempts",
       [](ExperimentDescription&, CampaignScope& s) {
         s.max_attempts_per_run += 1;
       }},
      {"run watchdog",
       [](ExperimentDescription&, CampaignScope& s) {
         s.run_watchdog = s.run_watchdog + sim::SimDuration::from_millis(1);
       }},
      {"settle time",
       [](ExperimentDescription&, CampaignScope& s) {
         s.settle = s.settle + sim::SimDuration::from_millis(1);
       }},
  };

  std::set<std::string> digests = {base_digest};
  for (const Mutation& mutation : mutations) {
    ExperimentDescription mutated = base;
    CampaignScope scope = base_scope;
    mutation.apply(mutated, scope);
    const std::string digest = campaign_digest(mutated, scope);
    EXPECT_NE(digest, base_digest) << mutation.what;
    // All mutations must also be pairwise distinct — no two semantic
    // changes may collapse onto one address.
    EXPECT_TRUE(digests.insert(digest).second)
        << mutation.what << " collided with an earlier mutation";
  }
}

TEST(CanonicalDescription, ProtocolVersionChangesTheDigest) {
  const ExperimentDescription description = small_description();
  EXPECT_NE(campaign_digest(description, {}, kCampaignDigestVersion),
            campaign_digest(description, {}, kCampaignDigestVersion + 1));
}

}  // namespace
}  // namespace excovery::core
