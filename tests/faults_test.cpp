// Unit tests for fault injection and environment manipulation (§IV-D).
#include <gtest/gtest.h>

#include "faults/injector.hpp"
#include "faults/traffic.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"

namespace excovery::faults {
namespace {

constexpr net::Port kPort = net::kSdPort;

struct Fixture {
  sim::Scheduler scheduler;
  net::Network network;
  FaultInjector injector;
  int received = 0;

  explicit Fixture(net::Topology topology = net::Topology::chain(3))
      : network(scheduler, std::move(topology), 1),
        injector(network, kPort) {}

  void bind_counter(net::NodeId node) {
    network.bind(node, kPort, [this](net::NodeId, const net::Packet&) {
      ++received;
    });
  }

  void send_sd(net::NodeId from, net::NodeId to) {
    net::Packet packet;
    packet.dst = network.topology().node(to).address;
    packet.src_port = kPort;
    packet.dst_port = kPort;
    packet.payload.assign(8, 0x01);
    (void)network.send(from, std::move(packet));
  }

  void send_other(net::NodeId from, net::NodeId to) {
    net::Packet packet;
    packet.dst = network.topology().node(to).address;
    packet.src_port = 7777;
    packet.dst_port = 7777;
    packet.payload.assign(8, 0x02);
    (void)network.send(from, std::move(packet));
  }
};

// ---- direction parsing -----------------------------------------------------

TEST(FaultDirection, Parsing) {
  EXPECT_EQ(parse_fault_direction("receive").value(), FaultDirection::kReceive);
  EXPECT_EQ(parse_fault_direction("rx").value(), FaultDirection::kReceive);
  EXPECT_EQ(parse_fault_direction("TRANSMIT").value(),
            FaultDirection::kTransmit);
  EXPECT_EQ(parse_fault_direction("both").value(), FaultDirection::kBoth);
  EXPECT_EQ(parse_fault_direction("\"random\"").value(),
            FaultDirection::kRandom);
  EXPECT_FALSE(parse_fault_direction("sideways").ok());
}

// ---- interface fault ---------------------------------------------------------

TEST(FaultInjection, InterfaceFaultBlocksUntilStopped) {
  Fixture fx;
  fx.bind_counter(2);
  Result<FaultHandle> fault =
      fx.injector.interface_fault(0, FaultDirection::kTransmit);
  ASSERT_TRUE(fault.ok());
  EXPECT_TRUE(fault.value()->active());

  fx.send_sd(0, 2);
  fx.scheduler.run();
  EXPECT_EQ(fx.received, 0);

  fault.value()->stop();
  EXPECT_FALSE(fault.value()->active());
  fx.send_sd(0, 2);
  fx.scheduler.run();
  EXPECT_EQ(fx.received, 1);
}

TEST(FaultInjection, InterfaceFaultBothDirections) {
  Fixture fx;
  fx.bind_counter(0);
  Result<FaultHandle> fault =
      fx.injector.interface_fault(0, FaultDirection::kBoth);
  ASSERT_TRUE(fault.ok());
  fx.send_sd(2, 0);  // toward the faulted node: rx blocked
  fx.scheduler.run();
  EXPECT_EQ(fx.received, 0);
}

TEST(FaultInjection, RandomDirectionIsDeterministicInSeed) {
  Fixture fx1;
  Fixture fx2;
  TemporalSpec temporal;
  temporal.randomseed = 77;
  Result<FaultHandle> f1 =
      fx1.injector.interface_fault(0, FaultDirection::kRandom, temporal);
  Result<FaultHandle> f2 =
      fx2.injector.interface_fault(0, FaultDirection::kRandom, temporal);
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  EXPECT_EQ(fx1.network.interface_up(0, net::Direction::kTransmit),
            fx2.network.interface_up(0, net::Direction::kTransmit));
  EXPECT_EQ(fx1.network.interface_up(0, net::Direction::kReceive),
            fx2.network.interface_up(0, net::Direction::kReceive));
}

TEST(FaultInjection, UnknownNodeRejected) {
  Fixture fx;
  EXPECT_FALSE(fx.injector.interface_fault(99, FaultDirection::kBoth).ok());
  EXPECT_FALSE(fx.injector.message_loss(99, 0.5, FaultDirection::kBoth).ok());
}

// ---- message loss ---------------------------------------------------------------

TEST(FaultInjection, MessageLossDropsFraction) {
  Fixture fx(net::Topology::chain(2));
  fx.bind_counter(1);
  Result<FaultHandle> fault =
      fx.injector.message_loss(0, 0.5, FaultDirection::kTransmit);
  ASSERT_TRUE(fault.ok());
  for (int i = 0; i < 400; ++i) fx.send_sd(0, 1);
  fx.scheduler.run();
  EXPECT_GT(fx.received, 120);
  EXPECT_LT(fx.received, 280);
}

TEST(FaultInjection, MessageLossFullProbabilityDropsEverything) {
  Fixture fx(net::Topology::chain(2));
  fx.bind_counter(1);
  Result<FaultHandle> fault =
      fx.injector.message_loss(0, 1.0, FaultDirection::kBoth);
  ASSERT_TRUE(fault.ok());
  for (int i = 0; i < 20; ++i) fx.send_sd(0, 1);
  fx.scheduler.run();
  EXPECT_EQ(fx.received, 0);
}

TEST(FaultInjection, MessageLossSparesNonExperimentTraffic) {
  Fixture fx(net::Topology::chain(2));
  int other_received = 0;
  fx.network.bind(1, 7777, [&](net::NodeId, const net::Packet&) {
    ++other_received;
  });
  Result<FaultHandle> fault =
      fx.injector.message_loss(0, 1.0, FaultDirection::kBoth);
  ASSERT_TRUE(fault.ok());
  for (int i = 0; i < 10; ++i) fx.send_other(0, 1);
  fx.scheduler.run();
  // "Whenever the term packet is used, it refers to packets belonging to
  // the experiment process" (§IV-D1).
  EXPECT_EQ(other_received, 10);
}

TEST(FaultInjection, ProbabilityRangeValidated) {
  Fixture fx;
  EXPECT_FALSE(fx.injector.message_loss(0, -0.1, FaultDirection::kBoth).ok());
  EXPECT_FALSE(fx.injector.message_loss(0, 1.1, FaultDirection::kBoth).ok());
  EXPECT_FALSE(fx.injector.path_loss(0, 1, 2.0).ok());
}

// ---- message delay -----------------------------------------------------------------

TEST(FaultInjection, MessageDelayAddsConstantDelay) {
  Fixture fx(net::Topology::chain(2));
  sim::SimTime arrival;
  fx.network.bind(1, kPort, [&](net::NodeId, const net::Packet&) {
    arrival = fx.scheduler.now();
  });
  // Baseline.
  fx.send_sd(0, 1);
  fx.scheduler.run();
  sim::SimTime baseline = arrival;

  Result<FaultHandle> fault = fx.injector.message_delay(
      1, sim::SimDuration::from_millis(250));
  ASSERT_TRUE(fault.ok());
  sim::SimTime send_time = fx.scheduler.now();
  fx.send_sd(0, 1);
  fx.scheduler.run();
  EXPECT_GE((arrival - send_time).nanos(),
            sim::SimDuration::from_millis(250).nanos());
  (void)baseline;
}

// ---- path faults ----------------------------------------------------------------------

TEST(FaultInjection, PathLossAffectsOnlyGivenPeer) {
  Fixture fx(net::Topology::full_mesh(3));
  fx.bind_counter(0);
  // Node 0 loses everything from/to node 1 but keeps node 2 traffic.
  Result<FaultHandle> fault = fx.injector.path_loss(0, 1, 1.0);
  ASSERT_TRUE(fault.ok());
  fx.send_sd(1, 0);
  fx.send_sd(2, 0);
  fx.scheduler.run();
  EXPECT_EQ(fx.received, 1);
}

TEST(FaultInjection, PathDelayAffectsOnlyGivenPeer) {
  Fixture fx(net::Topology::full_mesh(3));
  std::map<std::string, sim::SimTime> arrivals;
  fx.network.bind(0, kPort, [&](net::NodeId, const net::Packet& p) {
    arrivals[p.src.to_string()] = fx.scheduler.now();
  });
  Result<FaultHandle> fault =
      fx.injector.path_delay(0, 1, sim::SimDuration::from_millis(500));
  ASSERT_TRUE(fault.ok());
  sim::SimTime start = fx.scheduler.now();
  fx.send_sd(1, 0);
  fx.send_sd(2, 0);
  fx.scheduler.run();
  std::string peer1 = fx.network.topology().node(1).address.to_string();
  std::string peer2 = fx.network.topology().node(2).address.to_string();
  ASSERT_TRUE(arrivals.count(peer1) == 1 && arrivals.count(peer2) == 1);
  EXPECT_GE((arrivals[peer1] - start).nanos(), 500'000'000);
  EXPECT_LT((arrivals[peer2] - start).nanos(), 100'000'000);
}

// ---- drop all --------------------------------------------------------------------------

TEST(FaultInjection, DropAllBlocksExperimentTrafficEverywhere) {
  Fixture fx(net::Topology::chain(3));
  fx.bind_counter(2);
  int other_received = 0;
  fx.network.bind(2, 7777, [&](net::NodeId, const net::Packet&) {
    ++other_received;
  });
  Result<FaultHandle> fault = fx.injector.drop_all_packets();
  ASSERT_TRUE(fault.ok());
  fx.send_sd(0, 2);
  fx.send_other(0, 2);
  fx.scheduler.run();
  EXPECT_EQ(fx.received, 0);
  EXPECT_EQ(other_received, 1);

  fault.value()->stop();
  fx.send_sd(0, 2);
  fx.scheduler.run();
  EXPECT_EQ(fx.received, 1);
}

// ---- temporal behaviour (duration/rate/randomseed) --------------------------------------

TEST(FaultTemporal, WindowedFaultActivatesWithinDuration) {
  Fixture fx(net::Topology::chain(2));
  TemporalSpec temporal;
  temporal.duration = sim::SimDuration::from_seconds(10);
  temporal.rate = 0.3;
  temporal.randomseed = 5;
  Result<FaultHandle> fault =
      fx.injector.interface_fault(0, FaultDirection::kTransmit, temporal);
  ASSERT_TRUE(fault.ok());
  // Not yet active (activation is scheduled).
  EXPECT_FALSE(fault.value()->active());

  // Sample interface state over the window: must be down ~30% of it.
  int down_samples = 0;
  int total_samples = 0;
  for (double t = 0.05; t < 10.0; t += 0.1) {
    fx.scheduler.run_until(sim::SimTime::from_seconds(t));
    ++total_samples;
    if (!fx.network.interface_up(0, net::Direction::kTransmit)) {
      ++down_samples;
    }
  }
  fx.scheduler.run();
  double fraction =
      static_cast<double>(down_samples) / static_cast<double>(total_samples);
  EXPECT_NEAR(fraction, 0.3, 0.05);
  // Auto-stopped at window end.
  EXPECT_FALSE(fault.value()->active());
  EXPECT_TRUE(fx.network.interface_up(0, net::Direction::kTransmit));
}

TEST(FaultTemporal, ActiveBlockIsContinuous) {
  Fixture fx(net::Topology::chain(2));
  TemporalSpec temporal;
  temporal.duration = sim::SimDuration::from_seconds(4);
  temporal.rate = 0.5;
  temporal.randomseed = 11;
  Result<FaultHandle> fault =
      fx.injector.interface_fault(0, FaultDirection::kTransmit, temporal);
  ASSERT_TRUE(fault.ok());
  // The fault must transition up->down->up exactly once ("active in one
  // continuous block", §IV-D).
  int transitions = 0;
  bool last_up = true;
  for (double t = 0.01; t < 4.2; t += 0.01) {
    fx.scheduler.run_until(sim::SimTime::from_seconds(t));
    bool up = fx.network.interface_up(0, net::Direction::kTransmit);
    if (up != last_up) ++transitions;
    last_up = up;
  }
  EXPECT_EQ(transitions, 2);
}

TEST(FaultTemporal, SeedPlacesWindowDeterministically) {
  auto window_start = [](std::uint64_t seed) {
    Fixture fx(net::Topology::chain(2));
    TemporalSpec temporal;
    temporal.duration = sim::SimDuration::from_seconds(10);
    temporal.rate = 0.2;
    temporal.randomseed = seed;
    Result<FaultHandle> fault =
        fx.injector.interface_fault(0, FaultDirection::kTransmit, temporal);
    EXPECT_TRUE(fault.ok());
    for (double t = 0.01; t < 10.0; t += 0.01) {
      fx.scheduler.run_until(sim::SimTime::from_seconds(t));
      if (!fx.network.interface_up(0, net::Direction::kTransmit)) return t;
    }
    return -1.0;
  };
  EXPECT_DOUBLE_EQ(window_start(3), window_start(3));
  EXPECT_NE(window_start(3), window_start(4));
}

TEST(FaultInjection, EventsEmittedOnStartAndStop) {
  Fixture fx(net::Topology::chain(2));
  std::vector<std::string> events;
  fx.injector.set_event_sink([&](const std::string& node,
                                 const std::string& event, const Value&) {
    events.push_back(node + ":" + event);
  });
  Result<FaultHandle> fault =
      fx.injector.interface_fault(0, FaultDirection::kBoth);
  ASSERT_TRUE(fault.ok());
  fault.value()->stop();
  fault.value()->stop();  // idempotent
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], "n0:fault_interface_start");
  EXPECT_EQ(events[1], "n0:fault_interface_stop");
}

TEST(FaultInjection, ResetStopsEverything) {
  Fixture fx(net::Topology::full_mesh(3));
  (void)fx.injector.interface_fault(0, FaultDirection::kBoth);
  (void)fx.injector.message_loss(1, 0.5, FaultDirection::kBoth);
  (void)fx.injector.drop_all_packets();
  EXPECT_EQ(fx.injector.active_count(), 3u);
  fx.injector.reset();
  EXPECT_EQ(fx.injector.active_count(), 0u);
  EXPECT_TRUE(fx.network.interface_up(0, net::Direction::kReceive));
  EXPECT_EQ(fx.network.filter_count(), 0u);
}

// ---- traffic generation (§IV-D2) ----------------------------------------------------------

TEST(TrafficPairs, SelectionIsDeterministicAndDistinct) {
  std::vector<net::NodeId> candidates{0, 1, 2, 3, 4, 5};
  Result<std::vector<NodePair>> a = select_pairs(candidates, 4, 9);
  Result<std::vector<NodePair>> b = select_pairs(candidates, 4, 9);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());
  // All pairs distinct.
  for (std::size_t i = 0; i < a.value().size(); ++i) {
    EXPECT_LT(a.value()[i].a, a.value()[i].b);
    for (std::size_t j = i + 1; j < a.value().size(); ++j) {
      EXPECT_FALSE(a.value()[i] == a.value()[j]);
    }
  }
}

TEST(TrafficPairs, OverflowRejected) {
  std::vector<net::NodeId> candidates{0, 1, 2};
  EXPECT_TRUE(select_pairs(candidates, 3, 1).ok());   // C(3,2) = 3
  EXPECT_FALSE(select_pairs(candidates, 4, 1).ok());
  EXPECT_FALSE(select_pairs(candidates, -1, 1).ok());
  EXPECT_TRUE(select_pairs(candidates, 0, 1).value().empty());
}

TEST(TrafficPairs, SwitchingReplacesExactlyRequestedAmount) {
  std::vector<net::NodeId> candidates{0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<NodePair> base = select_pairs(candidates, 3, 1).value();
  std::vector<NodePair> switched = switch_pairs(base, candidates, 1, 2, 0);
  int differing = 0;
  for (const NodePair& pair : switched) {
    bool in_base = false;
    for (const NodePair& original : base) {
      if (pair == original) in_base = true;
    }
    if (!in_base) ++differing;
  }
  EXPECT_EQ(differing, 1);
  // Same seeds and run -> same switch.
  EXPECT_EQ(switch_pairs(base, candidates, 1, 2, 0), switched);
  // Different run index -> (almost surely) different selection.
  EXPECT_NE(switch_pairs(base, candidates, 1, 2, 1), switched);
}

TEST(TrafficGenerator, GeneratesBidirectionalLoad) {
  Fixture fx(net::Topology::full_mesh(4));
  TrafficGenerator traffic(fx.network);
  TrafficConfig config;
  config.rate_kbps = 100.0;
  config.pairs = 1;
  config.choice = PairChoice::kAll;
  ASSERT_TRUE(traffic.start(config, {0, 1}, {2, 3}, 0).ok());
  EXPECT_TRUE(traffic.running());
  ASSERT_EQ(traffic.active_pairs().size(), 1u);

  fx.scheduler.run_until(sim::SimTime::from_seconds(2));
  traffic.stop();
  EXPECT_FALSE(traffic.running());
  // 100 kbit/s / (512*8 bit) ~ 24.4 pkt/s per direction, 2 s, 2 directions.
  EXPECT_NEAR(static_cast<double>(traffic.packets_offered()), 97.0, 10.0);
  EXPECT_GT(traffic.packets_delivered(), 0u);
  EXPECT_LE(traffic.packets_delivered(), traffic.packets_offered());

  // After stop, no further packets.
  std::uint64_t offered = traffic.packets_offered();
  fx.scheduler.run_until(sim::SimTime::from_seconds(3));
  EXPECT_EQ(traffic.packets_offered(), offered);
}

TEST(TrafficGenerator, ChoiceSelectsCandidateSet) {
  Fixture fx(net::Topology::full_mesh(6));
  TrafficGenerator traffic(fx.network);
  TrafficConfig config;
  config.pairs = 1;
  config.choice = PairChoice::kNonActing;
  ASSERT_TRUE(traffic.start(config, {0, 1}, {2, 3, 4, 5}, 0).ok());
  for (const NodePair& pair : traffic.active_pairs()) {
    EXPECT_GE(pair.a, 2u);
    EXPECT_GE(pair.b, 2u);
  }
  traffic.stop();
}

TEST(TrafficGenerator, DoubleStartRejected) {
  Fixture fx(net::Topology::full_mesh(4));
  TrafficGenerator traffic(fx.network);
  TrafficConfig config;
  config.pairs = 1;
  config.choice = PairChoice::kAll;
  ASSERT_TRUE(traffic.start(config, {0, 1}, {2, 3}, 0).ok());
  EXPECT_FALSE(traffic.start(config, {0, 1}, {2, 3}, 0).ok());
  traffic.stop();
}

TEST(TrafficGenerator, PairChoiceParsing) {
  EXPECT_EQ(parse_pair_choice("0").value(), PairChoice::kActing);
  EXPECT_EQ(parse_pair_choice("\"1\"").value(), PairChoice::kNonActing);
  EXPECT_EQ(parse_pair_choice("all").value(), PairChoice::kAll);
  EXPECT_FALSE(parse_pair_choice("7").ok());
}

}  // namespace
}  // namespace excovery::faults
