// Unit tests for the XML-RPC control channel: codec, server dispatch,
// transport, client faults.
#include <gtest/gtest.h>

#include "rpc/codec.hpp"
#include "rpc/endpoint.hpp"
#include "xml/parser.hpp"

namespace excovery::rpc {
namespace {

// ---- codec: values ------------------------------------------------------------

Value round_trip(const Value& value) {
  xml::Document doc("holder");
  encode_value(value, doc.root());
  Result<Value> back = decode_value(*doc.root().child("value"));
  EXPECT_TRUE(back.ok()) << (back.ok() ? "" : back.error().to_string());
  return back.ok() ? back.value() : Value{};
}

TEST(RpcCodec, ScalarRoundTrips) {
  EXPECT_EQ(round_trip(Value{}), Value{});
  EXPECT_EQ(round_trip(Value{true}), Value{true});
  EXPECT_EQ(round_trip(Value{false}), Value{false});
  EXPECT_EQ(round_trip(Value{42}), Value{42});
  EXPECT_EQ(round_trip(Value{-1}), Value{-1});
  EXPECT_EQ(round_trip(Value{2.5}), Value{2.5});
  EXPECT_EQ(round_trip(Value{"text with <markup> & stuff"}),
            Value{"text with <markup> & stuff"});
}

TEST(RpcCodec, WideIntegersUseI8Extension) {
  std::int64_t wide = 5'000'000'000LL;
  EXPECT_EQ(round_trip(Value{wide}), Value{wide});
  xml::Document doc("holder");
  encode_value(Value{wide}, doc.root());
  EXPECT_NE(doc.root().child("value")->child("i8"), nullptr);
}

TEST(RpcCodec, Base64RoundTripsAllLengths) {
  for (std::size_t len : {0u, 1u, 2u, 3u, 4u, 17u, 255u}) {
    Bytes data;
    for (std::size_t i = 0; i < len; ++i) {
      data.push_back(static_cast<std::uint8_t>(i * 7 + 3));
    }
    EXPECT_EQ(round_trip(Value{data}), Value{data}) << len;
  }
}

TEST(RpcCodec, ArraysAndStructsNest) {
  ValueMap inner;
  inner.emplace("k", Value{1});
  ValueArray array{Value{"a"}, Value{inner}, Value{ValueArray{Value{2}}}};
  EXPECT_EQ(round_trip(Value{array}), Value{array});
}

TEST(RpcCodec, BareValueTextIsString) {
  Result<xml::Document> holder = xml::parse("<value>plain</value>");
  ASSERT_TRUE(holder.ok());
  Result<Value> value = decode_value(holder.value().root());
  ASSERT_TRUE(value.ok());
  EXPECT_EQ(value.value(), Value{"plain"});
}

TEST(RpcCodec, I4AliasAccepted) {
  Result<xml::Document> holder = xml::parse("<value><i4>7</i4></value>");
  ASSERT_TRUE(holder.ok());
  EXPECT_EQ(decode_value(holder.value().root()).value(), Value{7});
}

TEST(RpcCodec, UnknownScalarRejected) {
  Result<xml::Document> holder =
      xml::parse("<value><dateTime.iso8601>x</dateTime.iso8601></value>");
  ASSERT_TRUE(holder.ok());
  EXPECT_FALSE(decode_value(holder.value().root()).ok());
}

// ---- codec: messages ------------------------------------------------------------

TEST(RpcCodec, CallRoundTrip) {
  MethodCall call{"sd_init", {Value{"SM"}, Value{42}}};
  Result<MethodCall> back = decode_call(encode(call));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().method, "sd_init");
  ASSERT_EQ(back.value().params.size(), 2u);
  EXPECT_EQ(back.value().params[0], Value{"SM"});
  EXPECT_EQ(back.value().params[1], Value{42});
}

TEST(RpcCodec, EmptyParamsAllowed) {
  MethodCall call{"run_exit", {}};
  Result<MethodCall> back = decode_call(encode(call));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().params.empty());
}

TEST(RpcCodec, ResponseRoundTrip) {
  Result<MethodResponse> ok =
      decode_response(encode(MethodResponse::success(Value{"done"})));
  ASSERT_TRUE(ok.ok());
  EXPECT_FALSE(ok.value().is_fault);
  EXPECT_EQ(ok.value().result, Value{"done"});
}

TEST(RpcCodec, FaultRoundTrip) {
  Result<MethodResponse> fault =
      decode_response(encode(MethodResponse::fault(-32601, "no such method")));
  ASSERT_TRUE(fault.ok());
  EXPECT_TRUE(fault.value().is_fault);
  EXPECT_EQ(fault.value().fault_code, -32601);
  EXPECT_EQ(fault.value().fault_string, "no such method");
}

TEST(RpcCodec, WrongRootRejected) {
  EXPECT_FALSE(decode_call("<methodResponse/>").ok());
  EXPECT_FALSE(decode_response("<methodCall/>").ok());
  EXPECT_FALSE(decode_call("garbage").ok());
}

TEST(RpcCodec, SpecExampleDecodes) {
  // Shape from Winer's spec [23].
  const char* wire =
      "<?xml version=\"1.0\"?><methodCall>"
      "<methodName>examples.getStateName</methodName>"
      "<params><param><value><i4>41</i4></value></param></params>"
      "</methodCall>";
  Result<MethodCall> call = decode_call(wire);
  ASSERT_TRUE(call.ok());
  EXPECT_EQ(call.value().method, "examples.getStateName");
  EXPECT_EQ(call.value().params[0], Value{41});
}

// ---- server / transport / client ---------------------------------------------------

TEST(RpcServer, DispatchesRegisteredMethod) {
  RpcServer server;
  server.register_method("add", [](const ValueArray& params) -> Result<Value> {
    return Value{params[0].as_int() + params[1].as_int()};
  });
  EXPECT_TRUE(server.has_method("add"));
  EXPECT_EQ(server.method_count(), 1u);
  MethodResponse response = server.dispatch({"add", {Value{2}, Value{3}}});
  EXPECT_FALSE(response.is_fault);
  EXPECT_EQ(response.result, Value{5});
}

TEST(RpcServer, UnknownMethodIsFault) {
  RpcServer server;
  MethodResponse response = server.dispatch({"nope", {}});
  EXPECT_TRUE(response.is_fault);
  EXPECT_EQ(response.fault_code, -32601);
}

TEST(RpcServer, HandlerErrorsBecomeFaults) {
  RpcServer server;
  server.register_method("fail", [](const ValueArray&) -> Result<Value> {
    return err_state("not ready");
  });
  MethodResponse response = server.dispatch({"fail", {}});
  EXPECT_TRUE(response.is_fault);
  EXPECT_NE(response.fault_string.find("not ready"), std::string::npos);
}

TEST(RpcServer, HandleRoundTripsThroughXml) {
  RpcServer server;
  server.register_method("echo", [](const ValueArray& params) -> Result<Value> {
    return params.empty() ? Value{} : params[0];
  });
  Result<std::string> response_xml =
      server.handle(encode(MethodCall{"echo", {Value{"ping"}}}));
  ASSERT_TRUE(response_xml.ok());
  Result<MethodResponse> response = decode_response(response_xml.value());
  ASSERT_TRUE(response.ok());
  EXPECT_EQ(response.value().result, Value{"ping"});
}

TEST(RpcServer, MalformedRequestIsTransportError) {
  RpcServer server;
  EXPECT_FALSE(server.handle("not xml at all <<<").ok());
}

TEST(RpcTransport, RoutesToAttachedEndpoints) {
  RpcServer node_a;
  node_a.register_method("who", [](const ValueArray&) -> Result<Value> {
    return Value{"A"};
  });
  RpcServer node_b;
  node_b.register_method("who", [](const ValueArray&) -> Result<Value> {
    return Value{"B"};
  });
  InProcessTransport transport;
  transport.attach("A", &node_a);
  transport.attach("B", &node_b);
  EXPECT_EQ(transport.endpoint_count(), 2u);

  RpcClient client_a(transport, "A");
  RpcClient client_b(transport, "B");
  EXPECT_EQ(client_a.call("who").value(), Value{"A"});
  EXPECT_EQ(client_b.call("who").value(), Value{"B"});

  transport.detach("B");
  EXPECT_FALSE(client_b.call("who").ok());
}

TEST(RpcClient, FaultSurfacesAsRpcError) {
  RpcServer server;
  InProcessTransport transport;
  transport.attach("node", &server);
  RpcClient client(transport, "node");
  Result<Value> outcome = client.call("missing");
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code(), ErrorCode::kRpc);
  EXPECT_NE(outcome.error().message().find("missing"), std::string::npos);
}

TEST(RpcClient, StructParameterConvention) {
  RpcServer server;
  server.register_method("inspect", [](const ValueArray& params) -> Result<Value> {
    if (params.size() != 1 || !params[0].is_map()) {
      return err_invalid("expected one struct");
    }
    const Value* run = params[0].find("run_id");
    return run ? *run : Value{};
  });
  InProcessTransport transport;
  transport.attach("node", &server);
  RpcClient client(transport, "node");
  ValueMap args;
  args["run_id"] = Value{7};
  Result<Value> outcome = client.call("inspect", {Value{args}});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value(), Value{7});
}

}  // namespace
}  // namespace excovery::rpc
