// Tests for the process interpreter's flow-control semantics (§IV-C2):
// wait_for_time, wait_for_event (from/param dependencies, timeout),
// wait_marker and event_flag — exercised through complete mini-experiments
// so the semantics are verified against the conditioned event record.
#include <gtest/gtest.h>

#include "core/master.hpp"
#include "core/scenario.hpp"

namespace excovery::core {
namespace {

ProcessAction make_action(std::string name,
                          std::vector<std::pair<std::string, ParamValue>>
                              params = {}) {
  ProcessAction action;
  action.name = std::move(name);
  action.params = std::move(params);
  return action;
}

ParamValue lit(const std::string& text) {
  return ParamValue::lit(Value{text});
}

/// Description with `node_count` abstract nodes ("N0", "N1", ...), each
/// mapped to an identically named actor ("actorI") running the given
/// process; one replication.
ExperimentDescription harness(
    std::vector<std::vector<ProcessAction>> processes,
    std::vector<EnvProcess> env = {}) {
  ExperimentDescription description;
  description.name = "interpreter-test";
  description.seed = 5;
  description.replications = 1;
  description.replication_factor_id = "rep";
  description.node_factor_id = "fact_nodes";

  Factor nodes;
  nodes.id = "fact_nodes";
  nodes.type = "actor_node_map";
  nodes.usage = FactorUsage::kBlocking;
  ValueMap map;
  for (std::size_t i = 0; i < processes.size(); ++i) {
    std::string node = "N" + std::to_string(i);
    description.abstract_nodes.push_back(node);
    description.platform.actor_nodes.push_back(
        PlatformNode{node, node, ""});
    map.emplace("actor" + std::to_string(i),
                Value{ValueArray{Value{node}}});
    ActorProcess process;
    process.actor_id = "actor" + std::to_string(i);
    process.name = "P" + std::to_string(i);
    process.actions = std::move(processes[i]);
    description.actor_processes.push_back(std::move(process));
  }
  nodes.levels.push_back(Value{std::move(map)});
  description.factors.push_back(std::move(nodes));
  description.env_processes = std::move(env);
  return description;
}

struct Outcome {
  Status status = Status::ok_status();
  std::vector<storage::EventRow> events;

  /// Common time of the first event of a type on a node; -1 if absent.
  double time_of(const std::string& node, const std::string& type) const {
    for (const storage::EventRow& event : events) {
      if (event.node_id == node && event.event_type == type) {
        return event.common_time;
      }
    }
    return -1.0;
  }
  int count_of(const std::string& type) const {
    int n = 0;
    for (const storage::EventRow& event : events) {
      if (event.event_type == type) ++n;
    }
    return n;
  }
};

Outcome run(const ExperimentDescription& description,
            MasterOptions options = {}) {
  Outcome outcome;
  Result<net::Topology> topology =
      scenario::topology_for(description, {});
  if (!topology.ok()) {
    outcome.status = topology.error();
    return outcome;
  }
  SimPlatformConfig config;
  config.topology = std::move(topology).value();
  config.seed = description.seed;
  // Ideal clocks keep the assertions on absolute times exact, and a
  // symmetric control channel makes the offset estimate error-free.
  config.max_clock_offset = sim::SimDuration::zero();
  config.max_drift_ppm = 0.0;
  config.clock_read_jitter = sim::SimDuration::zero();
  config.control_delay_min = sim::SimDuration::from_micros(100);
  config.control_delay_max = sim::SimDuration::from_micros(100);
  Result<std::unique_ptr<SimPlatform>> platform =
      SimPlatform::create(description, std::move(config));
  if (!platform.ok()) {
    outcome.status = platform.error();
    return outcome;
  }
  ExperiMaster master(description, *platform.value(), std::move(options));
  Result<storage::ExperimentPackage> package = master.execute();
  if (!package.ok()) {
    outcome.status = package.error();
    return outcome;
  }
  Result<std::vector<storage::EventRow>> events = package.value().events(1);
  if (events.ok()) outcome.events = std::move(events).value();
  return outcome;
}

// ---- wait_for_time --------------------------------------------------------------

TEST(Interpreter, WaitForTimeDelaysNextAction) {
  Outcome outcome = run(harness({{
      make_action("event_flag", {{"value", lit("begin")}}),
      make_action("wait_for_time", {{"time", lit("2.5")}}),
      make_action("event_flag", {{"value", lit("end")}}),
  }}));
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.error().to_string();
  double begin = outcome.time_of("N0", "begin");
  double end = outcome.time_of("N0", "end");
  ASSERT_GE(begin, 0.0);
  ASSERT_GE(end, 0.0);
  EXPECT_NEAR(end - begin, 2.5, 1e-6);
}

TEST(Interpreter, WaitForTimeAcceptsValueAlias) {
  Outcome outcome = run(harness({{
      make_action("wait_for_time", {{"value", lit("0.5")}}),
      make_action("event_flag", {{"value", lit("end")}}),
  }}));
  ASSERT_TRUE(outcome.status.ok());
  EXPECT_GE(outcome.time_of("N0", "end"), 0.5);
}

TEST(Interpreter, NegativeWaitRejected) {
  MasterOptions options;
  options.max_attempts_per_run = 1;
  Outcome outcome = run(harness({{
                             make_action("wait_for_time",
                                         {{"time", lit("-1")}}),
                         }}),
                        std::move(options));
  EXPECT_FALSE(outcome.status.ok());
}

// ---- event_flag ------------------------------------------------------------------

TEST(Interpreter, EventFlagCarriesParameter) {
  Outcome outcome = run(harness({{
      make_action("event_flag",
                  {{"value", lit("custom")}, {"parameter", lit("payload")}}),
  }}));
  ASSERT_TRUE(outcome.status.ok());
  for (const storage::EventRow& event : outcome.events) {
    if (event.event_type == "custom") {
      EXPECT_EQ(event.parameter, "payload");
      return;
    }
  }
  FAIL() << "custom event not recorded";
}

TEST(Interpreter, EnvEventFlagRecordsOnEnvironmentNode) {
  EnvProcess env;
  env.actions.push_back(
      make_action("event_flag", {{"value", lit("ready_to_init")}}));
  Outcome outcome = run(harness({{
                                    make_action("wait_for_event",
                                                {{"event_dependency",
                                                  lit("ready_to_init")}}),
                                    make_action("event_flag",
                                                {{"value", lit("done")}}),
                                }},
                                {std::move(env)}));
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.error().to_string();
  EXPECT_GE(outcome.time_of(kEnvironmentNode, "ready_to_init"), 0.0);
  EXPECT_GE(outcome.time_of("N0", "done"), 0.0);
}

// ---- wait_for_event: basic and origin/parameter constraints -----------------------

TEST(Interpreter, WaitForEventReleasesOnMatch) {
  Outcome outcome = run(harness({
      {
          // P0 flags "go" after 1 s.
          make_action("wait_for_time", {{"time", lit("1")}}),
          make_action("event_flag", {{"value", lit("go")}}),
      },
      {
          // P1 waits for it, then flags "done".
          make_action("wait_for_event", {{"event_dependency", lit("go")}}),
          make_action("event_flag", {{"value", lit("done")}}),
      },
  }));
  ASSERT_TRUE(outcome.status.ok());
  double go = outcome.time_of("N0", "go");
  double done = outcome.time_of("N1", "done");
  ASSERT_GE(done, 0.0);
  EXPECT_GE(done, go);
  EXPECT_NEAR(done, go, 1e-3);
}

TEST(Interpreter, FromDependencyAllRequiresEveryNode) {
  // actor0 has two instances; the waiter needs the flag from BOTH.
  ExperimentDescription description;
  description.name = "from-all";
  description.seed = 5;
  description.replications = 1;
  description.replication_factor_id = "rep";
  description.node_factor_id = "fact_nodes";
  description.abstract_nodes = {"N0", "N1", "N2"};
  for (const std::string& node : description.abstract_nodes) {
    description.platform.actor_nodes.push_back(
        PlatformNode{node, node, ""});
  }
  Factor nodes;
  nodes.id = "fact_nodes";
  nodes.type = "actor_node_map";
  nodes.usage = FactorUsage::kBlocking;
  ValueMap map;
  map.emplace("actor0", Value{ValueArray{Value{"N0"}, Value{"N1"}}});
  map.emplace("actor1", Value{ValueArray{Value{"N2"}}});
  nodes.levels.push_back(Value{std::move(map)});
  description.factors.push_back(std::move(nodes));

  ActorProcess flagger;
  flagger.actor_id = "actor0";
  flagger.name = "flagger";
  // Instance-dependent delay is impossible in a shared actor description,
  // so both flag after 1 s; the waiter still needs both events.
  flagger.actions.push_back(
      make_action("wait_for_time", {{"time", lit("1")}}));
  flagger.actions.push_back(
      make_action("event_flag", {{"value", lit("published")}}));
  description.actor_processes.push_back(std::move(flagger));

  ActorProcess waiter;
  waiter.actor_id = "actor1";
  waiter.name = "waiter";
  waiter.actions.push_back(make_action(
      "wait_for_event",
      {{"event_dependency", lit("published")},
       {"from_dependency", ParamValue::nodes(NodeSetRef{"actor0", "all"})}}));
  waiter.actions.push_back(
      make_action("event_flag", {{"value", lit("done")}}));
  description.actor_processes.push_back(std::move(waiter));

  Outcome outcome = run(description);
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.error().to_string();
  EXPECT_EQ(outcome.count_of("published"), 2);
  EXPECT_GE(outcome.time_of("N2", "done"), 1.0);
}

TEST(Interpreter, FromDependencyInstanceIndexSelectsOneNode) {
  MasterOptions options;
  options.max_attempts_per_run = 1;
  options.run_watchdog = sim::SimDuration::from_seconds(5);
  // Waiter listens only to instance 1 of actor0 but only instance 0 ever
  // flags: the run must abort on the watchdog (wait can never complete...
  // except via deadlock detection, which fires first).
  ExperimentDescription description = harness({
      {
          make_action("event_flag", {{"value", lit("only_n0")}}),
      },
      {
          make_action("wait_for_event",
                      {{"event_dependency", lit("only_n0")},
                       {"from_dependency",
                        ParamValue::nodes(NodeSetRef{"actor0", "0"})}}),
      },
  });
  // Sanity: instance 0 matches and completes.
  Outcome good = run(description);
  EXPECT_TRUE(good.status.ok());

  // Out-of-range instance errors out.
  ExperimentDescription broken = description;
  broken.actor_processes[1].actions[0] = make_action(
      "wait_for_event",
      {{"event_dependency", lit("only_n0")},
       {"from_dependency", ParamValue::nodes(NodeSetRef{"actor0", "5"})}});
  Outcome bad = run(broken, std::move(options));
  EXPECT_FALSE(bad.status.ok());
}

TEST(Interpreter, ParamDependencyFiltersOnValue) {
  Outcome outcome = run(harness({
      {
          make_action("event_flag",
                      {{"value", lit("tick")}, {"parameter", lit("wrong")}}),
          make_action("wait_for_time", {{"time", lit("1")}}),
          make_action("event_flag",
                      {{"value", lit("tick")}, {"parameter", lit("right")}}),
      },
      {
          make_action("wait_for_event",
                      {{"event_dependency", lit("tick")},
                       {"param_dependency", lit("right")}}),
          make_action("event_flag", {{"value", lit("done")}}),
      },
  }));
  ASSERT_TRUE(outcome.status.ok());
  // Released by the second tick only.
  EXPECT_GE(outcome.time_of("N1", "done"), 1.0);
}

// ---- wait_for_event: marker and timeout ---------------------------------------------

TEST(Interpreter, WithoutMarkerAllRunEventsCount) {
  Outcome outcome = run(harness({
      {
          make_action("event_flag", {{"value", lit("early")}}),
      },
      {
          make_action("wait_for_time", {{"time", lit("1")}}),
          // "early" happened at ~0 s; without a marker, every event
          // registered during the run counts (Fig. 7/10 rely on this), so
          // the wait releases immediately.
          make_action("wait_for_event",
                      {{"event_dependency", lit("early")},
                       {"timeout", lit("2")}}),
          make_action("event_flag", {{"value", lit("done")}}),
      },
  }));
  ASSERT_TRUE(outcome.status.ok());
  EXPECT_EQ(outcome.count_of("wait_timeout"), 0);
  double done = outcome.time_of("N1", "done");
  EXPECT_GE(done, 1.0);
  EXPECT_LT(done, 1.5);
}

TEST(Interpreter, MarkerExcludesEarlierEvents) {
  Outcome outcome = run(harness({
      {
          make_action("wait_for_time", {{"time", lit("0.2")}}),
          make_action("event_flag", {{"value", lit("early")}}),
      },
      {
          make_action("wait_for_time", {{"time", lit("1")}}),
          make_action("wait_marker"),
          // The only "early" fired at 0.2 s, before the 1 s marker: the
          // wait must NOT match it and times out at +2 s.
          make_action("wait_for_event",
                      {{"event_dependency", lit("early")},
                       {"timeout", lit("2")}}),
          make_action("event_flag", {{"value", lit("done")}}),
      },
  }));
  ASSERT_TRUE(outcome.status.ok());
  EXPECT_EQ(outcome.count_of("wait_timeout"), 1);
  EXPECT_GE(outcome.time_of("N1", "done"), 3.0);
}

TEST(Interpreter, MarkerMakesInterveningEventsVisible) {
  Outcome outcome = run(harness({
      {
          make_action("wait_for_time", {{"time", lit("0.5")}}),
          make_action("event_flag", {{"value", lit("early")}}),
      },
      {
          make_action("wait_marker"),
          make_action("wait_for_time", {{"time", lit("1")}}),
          // The event fired at 0.5 s, after the marker (t~0) but before the
          // wait starts (t~1): the marker makes it count (§IV-C2).
          make_action("wait_for_event",
                      {{"event_dependency", lit("early")},
                       {"timeout", lit("5")}}),
          make_action("event_flag", {{"value", lit("done")}}),
      },
  }));
  ASSERT_TRUE(outcome.status.ok());
  EXPECT_EQ(outcome.count_of("wait_timeout"), 0);
  double done = outcome.time_of("N1", "done");
  EXPECT_GE(done, 1.0);
  EXPECT_LT(done, 1.5);  // released immediately at wait start, not at 6 s
}

TEST(Interpreter, TimeoutRecordsEventAndContinues) {
  Outcome outcome = run(harness({{
      make_action("wait_for_event", {{"event_dependency", lit("never")},
                                     {"timeout", lit("1.5")}}),
      make_action("event_flag", {{"value", lit("done")}}),
  }}));
  ASSERT_TRUE(outcome.status.ok());
  ASSERT_EQ(outcome.count_of("wait_timeout"), 1);
  double done = outcome.time_of("N0", "done");
  EXPECT_NEAR(done, 1.5 + outcome.time_of("N0", "run_init") + 0.0, 0.2);
  // The recorded timeout carries the awaited event name.
  for (const storage::EventRow& event : outcome.events) {
    if (event.event_type == "wait_timeout") {
      EXPECT_EQ(event.parameter, "never");
    }
  }
}

TEST(Interpreter, MissingEventDependencyFailsValidation) {
  MasterOptions options;
  options.max_attempts_per_run = 1;
  Outcome outcome = run(harness({{
                             make_action("wait_for_event", {}),
                         }}),
                        std::move(options));
  EXPECT_FALSE(outcome.status.ok());
}

// ---- deadlock & dispatch errors ----------------------------------------------------

TEST(Interpreter, DeadlockedRunAborts) {
  MasterOptions options;
  options.max_attempts_per_run = 2;
  Outcome outcome = run(harness({{
                             make_action("wait_for_event",
                                         {{"event_dependency",
                                           lit("never_happens")}}),
                         }}),
                        std::move(options));
  ASSERT_FALSE(outcome.status.ok());
  EXPECT_EQ(outcome.status.error().code(), ErrorCode::kAborted);
}

TEST(Interpreter, UnknownActionAbortsRun) {
  MasterOptions options;
  options.max_attempts_per_run = 1;
  Outcome outcome = run(harness({{
                             make_action("no_such_action"),
                         }}),
                        std::move(options));
  ASSERT_FALSE(outcome.status.ok());
}

TEST(Interpreter, FactorRefResolvesInActionParams) {
  ExperimentDescription description = harness({{
      make_action("wait_for_time",
                  {{"time", ParamValue::factor("fact_delay")}}),
      make_action("event_flag", {{"value", lit("done")}}),
  }});
  Factor delay;
  delay.id = "fact_delay";
  delay.type = "double";
  delay.usage = FactorUsage::kConstant;
  delay.levels.emplace_back("2");
  description.factors.push_back(std::move(delay));

  Outcome outcome = run(description);
  ASSERT_TRUE(outcome.status.ok()) << outcome.status.error().to_string();
  double run_init = outcome.time_of("N0", "run_init");
  EXPECT_GE(outcome.time_of("N0", "done") - run_init, 2.0);
}

}  // namespace
}  // namespace excovery::core
