// Network addressing for the simulated IP network.
//
// Nodes carry IPv4-style addresses (the prototype targets IP networks,
// §I/§VI).  A reserved multicast range models the link-scope multicast
// groups that Zeroconf SD uses; the simulator floods those across the mesh
// like the DES testbed's multicast forwarding does.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

#include "common/error.hpp"

namespace excovery::net {

/// An IPv4-style address.
class Address {
 public:
  constexpr Address() = default;
  constexpr explicit Address(std::uint32_t raw) noexcept : raw_(raw) {}
  constexpr Address(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                    std::uint8_t d) noexcept
      : raw_((static_cast<std::uint32_t>(a) << 24) |
             (static_cast<std::uint32_t>(b) << 16) |
             (static_cast<std::uint32_t>(c) << 8) | d) {}

  constexpr std::uint32_t raw() const noexcept { return raw_; }

  /// 224.0.0.0/4 is multicast, as in IPv4.
  constexpr bool is_multicast() const noexcept {
    return (raw_ >> 28) == 0xE;
  }
  constexpr bool is_broadcast() const noexcept {
    return raw_ == 0xFFFFFFFFu;
  }
  constexpr bool is_unspecified() const noexcept { return raw_ == 0; }

  std::string to_string() const;
  static Result<Address> parse(const std::string& text);

  /// Experiment-node unicast addresses: 10.0.<hi>.<lo> by node index.
  static constexpr Address for_node(std::uint32_t index) noexcept {
    return Address(10, 0, static_cast<std::uint8_t>((index >> 8) & 0xFF),
                   static_cast<std::uint8_t>(index & 0xFF));
  }
  /// The mDNS-style SD multicast group (224.0.0.251 in real Zeroconf).
  static constexpr Address sd_multicast() noexcept {
    return Address(224, 0, 0, 251);
  }
  static constexpr Address broadcast() noexcept {
    return Address(0xFFFFFFFFu);
  }

  constexpr auto operator<=>(const Address&) const noexcept = default;

 private:
  std::uint32_t raw_ = 0;
};

/// UDP-style port.
using Port = std::uint16_t;

/// The well-known SD port (5353 in real mDNS).
inline constexpr Port kSdPort = 5353;
/// Port used by the traffic generator's load flows.
inline constexpr Port kTrafficPort = 9000;

}  // namespace excovery::net
