// Causal lineage log: the provenance backbone of a simulated run.
//
// Every interesting event in a run — a packet transmission, a hop, a
// delivery, a drop, an SD query round, a cache store — is recorded as a
// `LineageEvent` with a parent id, forming a forest whose roots are the
// experiment actions that started the activity.  Causality propagates
// *ambiently*: the scheduler carries a current-context id that is captured
// into every timer at schedule time and restored around its dispatch
// (see Scheduler::current_context), so multi-hop asynchronous chains link
// up without threading ids through any API.
//
// Two retention modes share one recording call:
//   - the *flight recorder*: an always-on, bounded, preallocated ring of
//     the most recent events.  Zero steady-state allocation; dumped to a
//     readable artifact only when a run attempt fails (DESIGN.md §16).
//   - the *provenance graph*: full retention for the current run, enabled
//     only when an ObsContext is attached.  The obs layer walks it at
//     sd_exit to extract the critical path of every discovery.
//
// Recording consumes no randomness and schedules nothing, so enabling or
// disabling lineage can never change simulation results — the determinism
// contract (DESIGN.md §11) is preserved by construction.  Under
// -DEXCOVERY_OBS=OFF the whole facility collapses to inert inline no-ops.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/obs_switch.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace excovery::sim {

/// What a lineage event describes.  Kept deliberately coarse: the interned
/// `label` carries the site-specific detail ("loss", "ttl", round number…).
enum class LineageKind : std::uint16_t {
  kRoot = 0,     ///< experiment-level root (run begin, action)
  kSend,         ///< packet enters the network at its origin
  kHop,          ///< packet arrives on a node after one link traversal
  kDeliver,      ///< packet handed to a local handler
  kDrop,         ///< packet terminated (loss, filter, ttl, no handler…)
  kDup,          ///< flood duplicate suppressed by uid dedup (graph only)
  kQuery,        ///< SD query round (uid = round number)
  kAnswer,       ///< SD answer / SCM reply transmission decided
  kCacheStore,   ///< service record stored into a cache
  kCacheHit,     ///< discovery answered from an already-cached record
  kScmHit,       ///< SCM directory record matched a directed query
  kSdEvent,      ///< recorded sd_* / fault_* event (label = event type)
};

/// Readable name for a kind ("send", "drop", …).
std::string_view to_string(LineageKind kind);

#if EXCOVERY_OBS_ENABLED

/// One node in the causal forest.  40-byte POD; stored by value in both
/// the flight-recorder ring and the provenance graph.
struct LineageEvent {
  std::uint64_t id = 0;      ///< 1-based per run; 0 = "no event"
  std::uint64_t parent = 0;  ///< causal parent id (0 = root)
  std::uint64_t uid = 0;     ///< packet uid, query round, or other payload
  std::int64_t ts_ns = 0;    ///< simulated time of the event
  LineageKind kind = LineageKind::kRoot;
  std::uint16_t node = 0;    ///< interned name of the node it happened on
  std::uint16_t peer = 0;    ///< interned peer node name (0 = none)
  std::uint16_t label = 0;   ///< interned site detail ("loss", "mdns", …)
};
static_assert(sizeof(LineageEvent) == 40, "LineageEvent layout drifted");

class LineageLog {
 public:
  /// `ring_capacity` bounds the flight recorder; the buffer is allocated
  /// once here and never grows.
  explicit LineageLog(std::size_t ring_capacity = kDefaultRingCapacity);

  /// 1024 events * 40 bytes = 40 KiB: big enough that a failure dump shows
  /// the whole final query round with context, small enough that the ring's
  /// steady-state stores stay cache-resident next to the packet hot path.
  static constexpr std::size_t kDefaultRingCapacity = 1024;

  /// Reset for a new run attempt: ids restart at 1, the ring and graph
  /// empty.  The string interner persists (it holds site labels and node
  /// names, which recur run after run — steady state allocates nothing).
  void begin_run(std::uint64_t run_id, std::uint32_t attempt);

  std::uint64_t run_id() const noexcept { return run_id_; }
  std::uint32_t attempt() const noexcept { return attempt_; }

  /// Full-graph retention toggle (provenance extraction needs the whole
  /// run; the flight recorder alone does not).  Applies from the next
  /// begin_run.
  void set_graph_enabled(bool enabled) noexcept { graph_enabled_ = enabled; }
  bool graph_enabled() const noexcept { return graph_enabled_; }
  /// Whether the current run retains the full graph (latched at begin_run).
  /// High-volume, causally-dead event classes (flood dup suppressions) are
  /// recorded only when this holds — they would evict live events from the
  /// bounded ring without ever appearing on a critical path.
  bool graph_active() const noexcept { return graph_active_; }

  /// Intern a label / node name; stable for the lifetime of the log.
  std::uint16_t intern(std::string_view text);
  /// The string behind an interned id ("" for 0 / unknown ids).
  std::string_view name(std::uint16_t id) const noexcept;

  /// Record one event; returns its id (never 0).  O(1), no allocation in
  /// steady state, no RNG, no scheduling.  Inline and branch-light: this
  /// sits on every packet hop, so it is part of the kernel hot path.
  std::uint64_t record(LineageKind kind, std::uint64_t parent,
                       std::uint64_t uid, SimTime ts, std::uint16_t node,
                       std::uint16_t peer, std::uint16_t label) {
    const std::uint64_t id = next_id_++;
    LineageEvent& slot = ring_[ring_next_];
    if (++ring_next_ == ring_cap_) ring_next_ = 0;
    slot.id = id;
    slot.parent = parent;
    slot.uid = uid;
    slot.ts_ns = ts.nanos();
    slot.kind = kind;
    slot.node = node;
    slot.peer = peer;
    slot.label = label;
    if (graph_active_) graph_.push_back(slot);
    return id;
  }

  /// The retained full graph of the current run (empty unless graph mode
  /// was enabled at begin_run).  events()[i].id == i + 1.
  const std::vector<LineageEvent>& events() const noexcept { return graph_; }

  /// Flight-recorder view: invoke `fn(const LineageEvent&)` for each ring
  /// event, oldest first.
  template <typename Fn>
  void for_each_recent(Fn&& fn) const {
    const std::size_t n = recent_count();
    const std::size_t cap = ring_.size();
    const std::size_t start = (ring_next_ + cap - n) % cap;
    for (std::size_t i = 0; i < n; ++i) fn(ring_[(start + i) % cap]);
  }
  std::size_t recent_count() const noexcept {
    const std::uint64_t recorded_events = next_id_ - 1;
    return recorded_events < ring_cap_
               ? static_cast<std::size_t>(recorded_events)
               : ring_cap_;
  }
  /// Events recorded since begin_run (>= recent_count once the ring wraps).
  std::uint64_t recorded() const noexcept { return next_id_ - 1; }

 private:
  /// Transparent string hashing so interning a string_view never builds a
  /// temporary std::string.
  struct NameHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view text) const noexcept {
      return std::hash<std::string_view>{}(text);
    }
    std::size_t operator()(const std::string& text) const noexcept {
      return std::hash<std::string_view>{}(text);
    }
  };

  std::uint64_t run_id_ = 0;
  std::uint32_t attempt_ = 0;
  std::uint64_t next_id_ = 1;
  bool graph_enabled_ = false;
  bool graph_active_ = false;  ///< graph_enabled_ latched at begin_run
  std::vector<LineageEvent> ring_;
  std::size_t ring_next_ = 0;
  std::size_t ring_cap_ = 0;  ///< == ring_.size(), kept in a register-friendly
                              ///< scalar for the record() fast path
  std::vector<LineageEvent> graph_;
  std::vector<std::string> names_;
  std::unordered_map<std::string, std::uint16_t, NameHash, std::equal_to<>>
      name_ids_;
};

/// RAII ambient-context scope: while alive, timers scheduled and lineage
/// recorded (with parent = ambient) attach to `ctx`.  A zero ctx leaves
/// the ambient context untouched, so call sites need no null checks.
class LineageScope {
 public:
  LineageScope(Scheduler& scheduler, std::uint64_t ctx) noexcept
      : scheduler_(scheduler), prev_(scheduler.current_context()) {
    if (ctx != 0) scheduler_.set_current_context(ctx);
  }
  ~LineageScope() { scheduler_.set_current_context(prev_); }
  LineageScope(const LineageScope&) = delete;
  LineageScope& operator=(const LineageScope&) = delete;

 private:
  Scheduler& scheduler_;
  std::uint64_t prev_;
};

#else  // !EXCOVERY_OBS_ENABLED — inert shells; call sites compile away.

struct LineageEvent {
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  std::uint64_t uid = 0;
  std::int64_t ts_ns = 0;
  LineageKind kind = LineageKind::kRoot;
  std::uint16_t node = 0;
  std::uint16_t peer = 0;
  std::uint16_t label = 0;
};

class LineageLog {
 public:
  explicit LineageLog(std::size_t = 0) {}
  static constexpr std::size_t kDefaultRingCapacity = 0;
  void begin_run(std::uint64_t, std::uint32_t) {}
  std::uint64_t run_id() const noexcept { return 0; }
  std::uint32_t attempt() const noexcept { return 0; }
  void set_graph_enabled(bool) noexcept {}
  bool graph_enabled() const noexcept { return false; }
  bool graph_active() const noexcept { return false; }
  std::uint16_t intern(std::string_view) { return 0; }
  std::string_view name(std::uint16_t) const noexcept { return {}; }
  std::uint64_t record(LineageKind, std::uint64_t, std::uint64_t, SimTime,
                       std::uint16_t, std::uint16_t, std::uint16_t) {
    return 0;
  }
  const std::vector<LineageEvent>& events() const noexcept {
    static const std::vector<LineageEvent> kEmpty;
    return kEmpty;
  }
  template <typename Fn>
  void for_each_recent(Fn&&) const {}
  std::size_t recent_count() const noexcept { return 0; }
  std::uint64_t recorded() const noexcept { return 0; }
};

class LineageScope {
 public:
  LineageScope(Scheduler&, std::uint64_t) noexcept {}
};

#endif  // EXCOVERY_OBS_ENABLED

}  // namespace excovery::sim
