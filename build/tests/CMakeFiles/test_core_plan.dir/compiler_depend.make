# Empty compiler generated dependencies file for test_core_plan.
# This may be replaced when dependencies are built.
