file(REMOVE_RECURSE
  "CMakeFiles/test_core_interpreter.dir/core_interpreter_test.cpp.o"
  "CMakeFiles/test_core_interpreter.dir/core_interpreter_test.cpp.o.d"
  "test_core_interpreter"
  "test_core_interpreter.pdb"
  "test_core_interpreter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_interpreter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
