// Tests for the extension features: timeline visualisation, the
// dimensional warehouse (§IV-F future work), packet-route analysis,
// the parallel campaign runner, detailed topology recording (§IV-B4
// future work), plugin measurements (§IV-B), and the NodeManager's RPC
// surface exercised directly over the control channel.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/campaign.hpp"
#include "core/master.hpp"
#include "core/node_manager.hpp"
#include "core/scenario.hpp"
#include "stats/analysis.hpp"
#include "stats/timeline.hpp"
#include "storage/repository.hpp"
#include "storage/warehouse.hpp"

namespace excovery {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("excovery-ext-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter++));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  static inline int counter = 0;
};

struct Rig {
  core::ExperimentDescription description;
  std::unique_ptr<core::SimPlatform> platform;
};

Result<Rig> make_rig(core::scenario::TwoPartyOptions options,
                     std::uint64_t seed = 42) {
  EXC_ASSIGN_OR_RETURN(core::ExperimentDescription description,
                       core::scenario::two_party_sd(options));
  EXC_ASSIGN_OR_RETURN(net::Topology topology,
                       core::scenario::topology_for(description, {}));
  core::SimPlatformConfig config;
  config.topology = std::move(topology);
  config.seed = seed;
  EXC_ASSIGN_OR_RETURN(std::unique_ptr<core::SimPlatform> platform,
                       core::SimPlatform::create(description,
                                                 std::move(config)));
  return Rig{std::move(description), std::move(platform)};
}

Result<storage::ExperimentPackage> run_rig(Rig& rig) {
  core::ExperiMaster master(rig.description, *rig.platform);
  return master.execute();
}

// ---- timeline visualisation ---------------------------------------------------

TEST(Timeline, RendersLanesAndLegend) {
  core::scenario::TwoPartyOptions options;
  options.replications = 1;
  Result<Rig> rig = make_rig(options);
  ASSERT_TRUE(rig.ok());
  Result<storage::ExperimentPackage> package = run_rig(rig.value());
  ASSERT_TRUE(package.ok());

  Result<std::string> timeline = stats::render_timeline(package.value(), 1);
  ASSERT_TRUE(timeline.ok()) << timeline.error().to_string();
  const std::string& text = timeline.value();
  // One lane per node that produced events.
  EXPECT_NE(text.find("SM0"), std::string::npos);
  EXPECT_NE(text.find("SU0"), std::string::npos);
  // Phase annotations per Fig. 11.
  EXPECT_NE(text.find("<execute"), std::string::npos);
  EXPECT_NE(text.find("<clean-up"), std::string::npos);
  // Legend lists the discovery event.
  EXPECT_NE(text.find("sd_service_add"), std::string::npos);
  // Lane rows contain markers.
  EXPECT_NE(text.find('*'), std::string::npos);
}

TEST(Timeline, MarkerFilterRestrictsLegend) {
  core::scenario::TwoPartyOptions options;
  options.replications = 1;
  Result<Rig> rig = make_rig(options);
  ASSERT_TRUE(rig.ok());
  Result<storage::ExperimentPackage> package = run_rig(rig.value());
  ASSERT_TRUE(package.ok());

  stats::TimelineOptions timeline_options;
  timeline_options.marker_events = {"sd_service_add"};
  Result<std::string> timeline =
      stats::render_timeline(package.value(), 1, timeline_options);
  ASSERT_TRUE(timeline.ok());
  EXPECT_NE(timeline.value().find("sd_service_add"), std::string::npos);
  EXPECT_EQ(timeline.value().find("run_exit"), std::string::npos);
}

TEST(Timeline, UnknownRunIsError) {
  storage::ExperimentPackage package;
  EXPECT_FALSE(stats::render_timeline(package, 99).ok());
}

// ---- dimensional warehouse -----------------------------------------------------

TEST(Warehouse, StarSchemaFromPackages) {
  core::scenario::TwoPartyOptions options;
  options.replications = 2;
  Result<Rig> rig_a = make_rig(options, 1);
  Result<Rig> rig_b = make_rig(options, 2);
  ASSERT_TRUE(rig_a.ok());
  ASSERT_TRUE(rig_b.ok());
  Result<storage::ExperimentPackage> package_a = run_rig(rig_a.value());
  Result<storage::ExperimentPackage> package_b = run_rig(rig_b.value());
  ASSERT_TRUE(package_a.ok());
  ASSERT_TRUE(package_b.ok());

  storage::Warehouse warehouse;
  ASSERT_TRUE(warehouse.add("exp-a", package_a.value()).ok());
  ASSERT_TRUE(warehouse.add("exp-b", package_b.value()).ok());
  EXPECT_FALSE(warehouse.add("exp-a", package_a.value()).ok());

  EXPECT_EQ(warehouse.experiment_count(), 2u);
  EXPECT_EQ(warehouse.fact_count(), package_a.value().event_count() +
                                        package_b.value().event_count());

  // Star schema tables exist with surrogate keys.
  for (const char* table : {"DimExperiment", "DimRun", "DimNode",
                            "DimEventType", "FactEvent"}) {
    ASSERT_NE(warehouse.database().table(table), nullptr) << table;
  }
  EXPECT_EQ(warehouse.database().table("DimExperiment")->row_count(), 2u);
  // Shared dimensions are reused, not duplicated: node set is identical.
  EXPECT_EQ(warehouse.database().table("DimNode")->row_count(),
            6u);  // SM0, SU0, ENV0..ENV3 — shared across both experiments

  // Roll-up query covers both experiments.
  std::string rollup = warehouse.rollup_by_type();
  EXPECT_NE(rollup.find("exp-a sd_service_add"), std::string::npos);
  EXPECT_NE(rollup.find("exp-b sd_service_add"), std::string::npos);
}

TEST(Warehouse, MeanIntervalComputesTr) {
  core::scenario::TwoPartyOptions options;
  options.replications = 3;
  Result<Rig> rig = make_rig(options);
  ASSERT_TRUE(rig.ok());
  Result<storage::ExperimentPackage> package = run_rig(rig.value());
  ASSERT_TRUE(package.ok());

  storage::Warehouse warehouse;
  ASSERT_TRUE(warehouse.add("exp", package.value()).ok());
  Result<double> t_r =
      warehouse.mean_interval("exp", "sd_start_search", "sd_service_add");
  ASSERT_TRUE(t_r.ok()) << t_r.error().to_string();
  // Cross-check against the operation-level analysis.
  Result<std::vector<double>> latencies =
      stats::first_latencies(package.value());
  ASSERT_TRUE(latencies.ok());
  EXPECT_NEAR(t_r.value(), stats::mean(latencies.value()), 1e-6);

  EXPECT_FALSE(warehouse.mean_interval("nope", "a", "b").ok());
  EXPECT_FALSE(
      warehouse.mean_interval("exp", "sd_start_search", "never_happens").ok());
}

// ---- packet route analysis -------------------------------------------------------

TEST(RouteStats, MultiHopRoutesVisible) {
  core::scenario::TwoPartyOptions options;
  options.replications = 1;
  options.environment_count = 0;
  Result<core::ExperimentDescription> description =
      core::scenario::two_party_sd(options);
  ASSERT_TRUE(description.ok());
  core::scenario::TopologyOptions topology;
  topology.kind = core::scenario::TopologyKind::kChain;
  topology.chain_spacing = 3;  // SM0 and SU0 are 3 hops apart
  Result<net::Topology> topo =
      core::scenario::topology_for(description.value(), topology);
  ASSERT_TRUE(topo.ok());
  core::SimPlatformConfig config;
  config.topology = std::move(topo).value();
  config.seed = 5;
  Result<std::unique_ptr<core::SimPlatform>> platform =
      core::SimPlatform::create(description.value(), std::move(config));
  ASSERT_TRUE(platform.ok());
  core::ExperiMaster master(description.value(), *platform.value());
  Result<storage::ExperimentPackage> package = master.execute();
  ASSERT_TRUE(package.ok());

  Result<stats::RouteStats> routes = stats::route_stats(package.value());
  ASSERT_TRUE(routes.ok());
  EXPECT_GT(routes.value().receptions, 0u);
  EXPECT_GE(routes.value().max_hops, 3);
  EXPECT_GT(routes.value().mean_hops, 0.9);
  // The distribution sums to the reception count.
  std::size_t sum = 0;
  for (const auto& [hops, count] : routes.value().distribution) sum += count;
  EXPECT_EQ(sum, routes.value().receptions);
}

// ---- campaign runner ----------------------------------------------------------------

TEST(Campaign, RunsEntriesInParallelAndArchives) {
  TempDir dir;
  Result<storage::Repository> repo =
      storage::Repository::open((dir.path / "repo").string());
  ASSERT_TRUE(repo.ok());

  std::vector<core::CampaignEntry> entries;
  for (int i = 0; i < 3; ++i) {
    core::scenario::TwoPartyOptions options;
    options.replications = 2;
    core::CampaignEntry entry;
    entry.id = "campaign-" + std::to_string(i);
    entry.description =
        core::scenario::two_party_sd(options).value();
    entry.platform.topology =
        core::scenario::topology_for(entry.description, {}).value();
    entry.platform.seed = static_cast<std::uint64_t>(i + 1);
    entries.push_back(std::move(entry));
  }

  int progress = 0;
  core::CampaignOptions options;
  options.workers = 3;
  options.archive = &repo.value();
  options.progress = [&progress](const std::string&, bool ok) {
    if (ok) ++progress;
  };
  std::vector<core::CampaignOutcome> outcomes =
      core::run_campaign(std::move(entries), options);

  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_EQ(progress, 3);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_EQ(outcomes[i].id, "campaign-" + std::to_string(i));
    ASSERT_TRUE(outcomes[i].package.ok());
    EXPECT_TRUE(repo.value().contains(outcomes[i].id));
  }
  // Different seeds -> different packet timings, same structure.
  EXPECT_EQ(outcomes[0].package.value().run_ids().size(), 2u);
}

TEST(Campaign, FailuresIsolatedPerEntry) {
  std::vector<core::CampaignEntry> entries;
  {
    core::scenario::TwoPartyOptions options;
    options.replications = 1;
    core::CampaignEntry good;
    good.id = "good";
    good.description = core::scenario::two_party_sd(options).value();
    good.platform.topology =
        core::scenario::topology_for(good.description, {}).value();
    entries.push_back(std::move(good));
  }
  {
    core::CampaignEntry bad;
    bad.id = "bad";
    core::scenario::TwoPartyOptions options;
    options.replications = 1;
    bad.description = core::scenario::two_party_sd(options).value();
    // Topology missing the described nodes -> platform creation fails.
    bad.platform.topology = net::Topology::chain(2);
    entries.push_back(std::move(bad));
  }
  std::vector<core::CampaignOutcome> outcomes =
      core::run_campaign(std::move(entries), {});
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_TRUE(outcomes[0].package.ok());
  EXPECT_FALSE(outcomes[1].package.ok());
}

// ---- detailed topology recording -------------------------------------------------------

TEST(DetailedTopology, ListsNodesAndLinkQuality) {
  core::scenario::TwoPartyOptions options;
  options.replications = 1;
  Result<Rig> rig = make_rig(options);
  ASSERT_TRUE(rig.ok());
  std::string detail = rig.value().platform->measure_topology_detailed();
  EXPECT_NE(detail.find("nodes:"), std::string::npos);
  EXPECT_NE(detail.find("links:"), std::string::npos);
  EXPECT_NE(detail.find("SM0"), std::string::npos);
  EXPECT_NE(detail.find("loss="), std::string::npos);
  EXPECT_NE(detail.find("bw="), std::string::npos);
}

// ---- plugin measurements (§IV-B) ----------------------------------------------------------

TEST(Plugins, MeasurementsLandInExtraRunMeasurements) {
  core::scenario::TwoPartyOptions options;
  options.replications = 2;
  Result<Rig> rig = make_rig(options);
  ASSERT_TRUE(rig.ok());
  // Custom measurement: network delivery count at run exit.
  net::Network* network = &rig.value().platform->network();
  rig.value().platform->manager("SU0").register_plugin(
      "netstats", "delivered", [network](std::int64_t) {
        return std::to_string(network->stats().delivered);
      });
  Result<storage::ExperimentPackage> package = run_rig(rig.value());
  ASSERT_TRUE(package.ok());

  const storage::Table* extra =
      package.value().database().table("ExtraRunMeasurements");
  ASSERT_EQ(extra->row_count(), 2u);  // one per run
  for (std::size_t r = 0; r < extra->row_count(); ++r) {
    storage::RowView row = extra->row(r);
    EXPECT_EQ(row.as_string(1), "SU0");
    EXPECT_EQ(row.as_string(2), "netstats/delivered");
    EXPECT_FALSE(row.as_string(3).empty());
  }
}

// ---- NodeManager RPC surface ---------------------------------------------------------------

TEST(NodeManagerRpc, SdActionsOverControlChannel) {
  core::scenario::TwoPartyOptions options;
  options.replications = 1;
  Result<Rig> rig = make_rig(options);
  ASSERT_TRUE(rig.ok());
  core::SimPlatform& platform = *rig.value().platform;
  rpc::RpcClient sm = platform.client("SM0");
  rpc::RpcClient su = platform.client("SU0");

  auto call = [](rpc::RpcClient& client, const std::string& method,
                 ValueMap params) {
    return client.call(method, {Value{std::move(params)}});
  };

  // Lifecycle + discovery over the wire protocol, driving the scheduler
  // manually.
  ASSERT_TRUE(call(sm, "run_init", {{"run_id", Value{1}}}).ok());
  ASSERT_TRUE(call(su, "run_init", {{"run_id", Value{1}}}).ok());
  ASSERT_TRUE(call(sm, "sd_init", {{"role", Value{"SM"}}}).ok());
  ASSERT_TRUE(call(su, "sd_init", {{"role", Value{"SU"}}}).ok());
  platform.scheduler().run_until(platform.scheduler().now() +
                                 sim::SimDuration::from_seconds(1));
  ASSERT_TRUE(call(sm, "sd_start_publish", {{"type", Value{"_x._udp"}}}).ok());
  ASSERT_TRUE(call(su, "sd_start_search", {{"type", Value{"_x._udp"}}}).ok());
  platform.scheduler().run_until(platform.scheduler().now() +
                                 sim::SimDuration::from_seconds(5));

  // clock_read returns the node's local nanoseconds.
  Result<Value> clock = call(su, "clock_read", {});
  ASSERT_TRUE(clock.ok());
  EXPECT_GT(clock.value().as_int(), 0);

  // The SU's agent discovered the instance.
  sd::SdAgent* agent = platform.manager("SU0").agent();
  ASSERT_NE(agent, nullptr);
  EXPECT_EQ(agent->discovered("_x._udp").size(), 1u);

  // Unknown method and invalid parameters surface as RPC faults.
  EXPECT_FALSE(call(su, "no_such_method", {}).ok());
  EXPECT_FALSE(
      call(su, "fault_message_loss_start", {{"probability", Value{2.0}}})
          .ok());
  // Double fault start rejected.
  ASSERT_TRUE(call(su, "fault_message_loss_start",
                   {{"probability", Value{0.5}}})
                  .ok());
  EXPECT_FALSE(call(su, "fault_message_loss_start",
                    {{"probability", Value{0.5}}})
                   .ok());
  ASSERT_TRUE(call(su, "fault_message_loss_stop", {}).ok());
  EXPECT_FALSE(call(su, "fault_message_loss_stop", {}).ok());

  // event_flag records through the shared recorder.
  ASSERT_TRUE(
      call(su, "event_flag", {{"value", Value{"custom_marker"}}}).ok());
  bool found = false;
  for (const sim::BusEvent& event : platform.recorder().history()) {
    if (event.name == "custom_marker" && event.node == "SU0") found = true;
  }
  EXPECT_TRUE(found);

  ASSERT_TRUE(call(su, "run_exit", {{"run_id", Value{1}}}).ok());
  ASSERT_TRUE(call(sm, "run_exit", {{"run_id", Value{1}}}).ok());
}

}  // namespace
}  // namespace excovery
