// Level-4 storage: a repository of experiment packages.
//
// §IV-F: "The fourth level describes the integration of multiple
// experiments into a single repository to facilitate comparison and
// analysis covering multiple experiments.  To date, ExCovery does not
// realize this level."  It is realised here (the paper marks it as future
// work): a directory of level-3 packages with an index and cross-experiment
// query helpers.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "storage/package.hpp"

namespace excovery::storage {

class Repository {
 public:
  /// Open (or create) a repository rooted at a directory.
  static Result<Repository> open(const std::string& directory);

  const std::string& directory() const noexcept { return directory_; }

  /// Store a package under a unique experiment id; persists it as
  /// <dir>/<id>.excovery and updates the index.
  Status store(const std::string& experiment_id,
               const ExperimentPackage& package);

  /// Load one experiment.
  Result<ExperimentPackage> fetch(const std::string& experiment_id) const;

  bool contains(const std::string& experiment_id) const;
  /// All experiment ids, sorted.
  std::vector<std::string> experiment_ids() const;
  std::size_t size() const noexcept { return index_.size(); }

  /// Cross-experiment query: every event of a given type across all stored
  /// experiments, tagged with the experiment id.
  struct CrossEvent {
    std::string experiment_id;
    EventRow event;
  };
  Result<std::vector<CrossEvent>> events_of_type(
      const std::string& event_type) const;

  /// Per-experiment summary (name, runs, events, packets) for comparison
  /// tooling.
  struct Summary {
    std::string experiment_id;
    std::string name;
    std::size_t runs = 0;
    std::size_t events = 0;
    std::size_t packets = 0;
  };
  Result<std::vector<Summary>> summaries() const;

 private:
  explicit Repository(std::string directory)
      : directory_(std::move(directory)) {}

  std::string path_for(const std::string& experiment_id) const;
  Status save_index() const;

  std::string directory_;
  std::map<std::string, std::string> index_;  // id -> file name
};

}  // namespace excovery::storage
