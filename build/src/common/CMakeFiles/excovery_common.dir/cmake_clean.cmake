file(REMOVE_RECURSE
  "CMakeFiles/excovery_common.dir/bytes.cpp.o"
  "CMakeFiles/excovery_common.dir/bytes.cpp.o.d"
  "CMakeFiles/excovery_common.dir/error.cpp.o"
  "CMakeFiles/excovery_common.dir/error.cpp.o.d"
  "CMakeFiles/excovery_common.dir/log.cpp.o"
  "CMakeFiles/excovery_common.dir/log.cpp.o.d"
  "CMakeFiles/excovery_common.dir/rng.cpp.o"
  "CMakeFiles/excovery_common.dir/rng.cpp.o.d"
  "CMakeFiles/excovery_common.dir/strings.cpp.o"
  "CMakeFiles/excovery_common.dir/strings.cpp.o.d"
  "CMakeFiles/excovery_common.dir/thread_pool.cpp.o"
  "CMakeFiles/excovery_common.dir/thread_pool.cpp.o.d"
  "CMakeFiles/excovery_common.dir/value.cpp.o"
  "CMakeFiles/excovery_common.dir/value.cpp.o.d"
  "libexcovery_common.a"
  "libexcovery_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/excovery_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
