#include "xml/schema.hpp"

#include <algorithm>
#include <string_view>

#include "common/strings.hpp"

namespace excovery::xml {

Status Schema::validate(const Element& root, bool strict) const {
  std::vector<std::string> problems;
  validate_element(root, strict, "/" + std::string(root.name()), problems);
  if (problems.empty()) return {};
  return err_validation(strings::join(problems, "; "));
}

void Schema::validate_element(const Element& element, bool strict,
                              const std::string& path,
                              std::vector<std::string>& problems) const {
  const ElementRule* rule = find(element.name());
  if (!rule) {
    if (strict) {
      problems.push_back(path + ": unknown element");
    }
    // Even without a rule, recurse so descendants with rules are checked.
    for (const Element& child : element.children()) {
      validate_element(child, strict, path + "/" + std::string(child.name()),
                       problems);
    }
    return;
  }

  // Attributes.
  for (const auto& [name, attr_rule] : rule->attributes) {
    const std::string_view* v = element.attr(name);
    if (!v) {
      if (attr_rule.required) {
        problems.push_back(path + ": missing required attribute '" + name +
                           "'");
      }
      continue;
    }
    if (!attr_rule.allowed_values.empty() &&
        std::find(attr_rule.allowed_values.begin(),
                  attr_rule.allowed_values.end(),
                  *v) == attr_rule.allowed_values.end()) {
      problems.push_back(path + ": attribute '" + name + "' has value '" +
                         std::string(*v) + "' not in {" +
                         strings::join(attr_rule.allowed_values, ", ") + "}");
    }
  }
  if (!rule->allow_other_attrs) {
    for (const Attribute& a : element.attributes()) {
      if (rule->attributes.find(a.name) == rule->attributes.end()) {
        problems.push_back(path + ": unexpected attribute '" +
                           std::string(a.name) + "'");
      }
    }
  }

  // Children occurrence counts (keys are interned names owned by the
  // document, so views are safe for the duration of validation).
  std::map<std::string_view, std::size_t> counts;
  for (const Element& child : element.children()) {
    ++counts[child.name()];
  }
  for (const auto& [name, occurs] : rule->children) {
    std::size_t n = 0;
    if (auto it = counts.find(name); it != counts.end()) n = it->second;
    if (n < occurs.min) {
      problems.push_back(path + ": child <" + name + "> occurs " +
                         std::to_string(n) + " time(s), minimum " +
                         std::to_string(occurs.min));
    }
    if (n > occurs.max) {
      problems.push_back(path + ": child <" + name + "> occurs " +
                         std::to_string(n) + " time(s), maximum " +
                         std::to_string(occurs.max));
    }
  }
  if (!rule->allow_other_children) {
    for (const auto& [name, n] : counts) {
      (void)n;
      if (rule->children.find(name) == rule->children.end()) {
        problems.push_back(path + ": unexpected child <" + std::string(name) +
                           ">");
      }
    }
  }

  // Text policy.
  if (!rule->allow_text && element.has_text()) {
    problems.push_back(path + ": character data not allowed here");
  }

  // Recurse.
  std::map<std::string_view, std::size_t> sibling_index;
  for (const Element& child : element.children()) {
    std::size_t idx = ++sibling_index[child.name()];
    std::string child_path = path + "/" + std::string(child.name());
    if (counts[child.name()] > 1) {
      child_path += "[" + std::to_string(idx) + "]";
    }
    validate_element(child, strict, child_path, problems);
  }
}

}  // namespace excovery::xml
