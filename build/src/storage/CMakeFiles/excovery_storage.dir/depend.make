# Empty dependencies file for excovery_storage.
# This may be replaced when dependencies are built.
