// Case study [25] — "Experimental responsiveness evaluation of
// decentralized service discovery" (Dittrich & Salfner, IPDPSW 2013): the
// experiments ExCovery was originally built to support (§VI).
//
// Regenerated shape: responsiveness — P(provider found within deadline) —
// as a function of injected packet loss, for a sweep of deadlines.  The
// expected shape (paper [25]): monotone decrease with loss, monotone
// increase with deadline, near 1 at loss 0, with step-like gains just
// after each mDNS retransmission epoch (announce at +1 s, queries at
// 1 s/2 s/4 s back-off).
#include "bench_common.hpp"

using namespace excovery;

int main(int argc, char** argv) {
  int replications = argc > 1 ? std::atoi(argv[1]) : 40;
  bench::banner("bench_case_responsiveness",
                "case study [25]: responsiveness of decentralised SD vs "
                "packet loss and deadline");

  core::scenario::TwoPartyOptions options;
  options.replications = replications;
  options.environment_count = 2;
  options.deadline_s = 8.0;
  options.loss_levels = {0.0, 0.2, 0.4, 0.6};

  bench::Executed executed =
      bench::must(bench::execute(options), "experiment");
  std::vector<stats::RunDiscovery> discoveries = bench::must(
      stats::discoveries(executed.package), "discoveries");

  const double deadlines[] = {0.25, 0.5, 0.9, 1.2, 1.9, 2.2,
                              3.5,  4.0, 6.0, 8.0};
  std::printf("\nresponsiveness by loss level and deadline "
              "(%d replications per cell):\n\n%-6s", replications, "loss");
  for (double deadline : deadlines) std::printf(" %6.2fs", deadline);
  std::printf("\n");
  for (std::size_t level = 0; level < options.loss_levels.size(); ++level) {
    std::printf("%-6.2f", options.loss_levels[level]);
    std::int64_t lo = static_cast<std::int64_t>(level) * replications + 1;
    std::int64_t hi = lo + replications - 1;
    for (double deadline : deadlines) {
      std::size_t hits = 0;
      std::size_t trials = 0;
      for (const stats::RunDiscovery& run : discoveries) {
        if (run.run_id < lo || run.run_id > hi) continue;
        ++trials;
        for (const auto& [provider, latency] : run.latencies) {
          if (latency <= deadline) {
            ++hits;
            break;
          }
        }
      }
      std::printf(" %6.2f",
                  trials > 0 ? static_cast<double>(hits) /
                                   static_cast<double>(trials)
                             : 0.0);
    }
    std::printf("\n");
  }

  // Latency distribution: the retransmission steps should be visible.
  std::vector<double> latencies = bench::must(
      stats::discovery_latencies(executed.package), "latencies");
  std::printf("\ndiscovery latency histogram (all loss levels pooled):\n");
  stats::Histogram histogram(0.0, 4.0, 16);
  for (double latency : latencies) histogram.add(latency);
  std::printf("%s", histogram.format(36).c_str());

  std::printf(
      "\nshape check vs [25]: rows decrease to the right? no — they\n"
      "increase with deadline and decrease downwards with loss; mass in\n"
      "the histogram clusters just after the announce (~0.7 s) and the\n"
      "retransmission epochs (~1.7 s, ~3.1 s).\n");
  return 0;
}
