// A typed in-memory relational table.
//
// Together with Database this is the stand-in for the prototype's SQLite
// third-level store (§IV-F): typed columns, insertion, predicate scans and
// ordered iteration, serialisable into a single binary package.  The query
// surface is the small subset the paper's "reusable data access functions"
// need — not a SQL engine.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/value.hpp"

namespace excovery::storage {

/// Column definition.
struct Column {
  std::string name;
  ValueType type = ValueType::kString;
  bool nullable = true;
};

/// Table definition.
struct TableSchema {
  std::string name;
  std::vector<Column> columns;

  /// Index of a column by name, or nullopt.
  std::optional<std::size_t> column_index(std::string_view name) const;
};

using Row = ValueArray;
using RowPredicate = std::function<bool(const Row&)>;

class Table {
 public:
  explicit Table(TableSchema schema) : schema_(std::move(schema)) {}

  const TableSchema& schema() const noexcept { return schema_; }
  const std::string& name() const noexcept { return schema_.name; }
  std::size_t row_count() const noexcept { return rows_.size(); }
  const std::vector<Row>& rows() const noexcept { return rows_; }

  /// Insert a row; arity and types are checked (null allowed if nullable).
  Status insert(Row row);

  /// Rows matching a predicate.
  std::vector<const Row*> select(const RowPredicate& predicate) const;
  /// Rows where column == value.
  std::vector<const Row*> select_equals(std::string_view column,
                                        const Value& value) const;
  /// All rows ordered ascending by a column (stable).
  Result<std::vector<const Row*>> order_by(std::string_view column) const;

  /// Count of rows matching column == value.
  std::size_t count_equals(std::string_view column, const Value& value) const;

  /// Column value of a row by name (checked).
  Result<Value> cell(const Row& row, std::string_view column) const;

  void clear() { rows_.clear(); }

 private:
  TableSchema schema_;
  std::vector<Row> rows_;
};

}  // namespace excovery::storage
