// Property-based suites (parameterised gtest): invariants swept across
// randomised inputs and parameter grids.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/bytes.hpp"
#include "common/strings.hpp"
#include "common/rng.hpp"
#include "core/master.hpp"
#include "core/scenario.hpp"
#include "net/routing.hpp"
#include "rpc/codec.hpp"
#include "sd/message.hpp"
#include "stats/analysis.hpp"
#include "storage/conditioning.hpp"
#include "storage/database.hpp"
#include "storage/level2.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace excovery {
namespace {

// ---- random Value generation shared by several properties ---------------------

Value random_value(Pcg32& rng, int depth) {
  switch (depth <= 0 ? rng.bounded(6) : rng.bounded(8)) {
    case 0: return Value{};
    case 1: return Value{rng.bernoulli(0.5)};
    case 2: return Value{static_cast<std::int64_t>(rng()) - INT32_MAX};
    case 3: return Value{rng.uniform(-1e6, 1e6)};
    case 4: {
      std::string s;
      std::uint32_t len = rng.bounded(12);
      for (std::uint32_t i = 0; i < len; ++i) {
        s.push_back(static_cast<char>('a' + rng.bounded(26)));
      }
      return Value{std::move(s)};
    }
    case 5: {
      Bytes b;
      std::uint32_t len = rng.bounded(16);
      for (std::uint32_t i = 0; i < len; ++i) {
        b.push_back(static_cast<std::uint8_t>(rng.bounded(256)));
      }
      return Value{std::move(b)};
    }
    case 6: {
      ValueArray array;
      std::uint32_t len = rng.bounded(4);
      for (std::uint32_t i = 0; i < len; ++i) {
        array.push_back(random_value(rng, depth - 1));
      }
      return Value{std::move(array)};
    }
    default: {
      ValueMap map;
      std::uint32_t len = rng.bounded(4);
      for (std::uint32_t i = 0; i < len; ++i) {
        map.emplace("k" + std::to_string(i), random_value(rng, depth - 1));
      }
      return Value{std::move(map)};
    }
  }
}

// ---- Value <-> bytes codec -----------------------------------------------------

class ValueCodecProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ValueCodecProperty, BinaryRoundTripIsIdentity) {
  Pcg32 rng(GetParam(), GetParam() ^ 0xABCD);
  for (int i = 0; i < 50; ++i) {
    Value original = random_value(rng, 3);
    ByteWriter w;
    w.value(original);
    ByteReader r(w.bytes());
    Result<Value> back = r.value();
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), original);
    EXPECT_TRUE(r.exhausted());
  }
}

TEST_P(ValueCodecProperty, XmlRpcRoundTripIsIdentity) {
  Pcg32 rng(GetParam(), GetParam() ^ 0x1234);
  for (int i = 0; i < 30; ++i) {
    Value original = random_value(rng, 2);
    xml::Document holder("h");
    rpc::encode_value(original, holder.root());
    Result<Value> back = rpc::decode_value(*holder.root().child("value"));
    ASSERT_TRUE(back.ok());
    // Doubles survive because format_double round-trips exactly.
    EXPECT_EQ(back.value(), original);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ValueCodecProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---- XML-RPC codec: special doubles ----------------------------------------

/// Value equality with IEEE edge semantics: any NaN matches any NaN, and
/// zeros must agree in sign (variant operator== would reject NaN==NaN and
/// accept -0.0==0.0, hiding codec defects either way).
bool equivalent(const Value& a, const Value& b) {
  if (a.type() != b.type()) return false;
  switch (a.type()) {
    case ValueType::kDouble: {
      double x = a.as_double();
      double y = b.as_double();
      if (std::isnan(x) || std::isnan(y)) {
        return std::isnan(x) && std::isnan(y);
      }
      return x == y && std::signbit(x) == std::signbit(y);
    }
    case ValueType::kArray: {
      const ValueArray& xs = a.as_array();
      const ValueArray& ys = b.as_array();
      if (xs.size() != ys.size()) return false;
      for (std::size_t i = 0; i < xs.size(); ++i) {
        if (!equivalent(xs[i], ys[i])) return false;
      }
      return true;
    }
    case ValueType::kMap: {
      const ValueMap& xs = a.as_map();
      const ValueMap& ys = b.as_map();
      if (xs.size() != ys.size()) return false;
      auto it = ys.begin();
      for (const auto& [key, item] : xs) {
        if (it->first != key || !equivalent(item, it->second)) return false;
        ++it;
      }
      return true;
    }
    default:
      return a == b;
  }
}

double special_double(Pcg32& rng) {
  switch (rng.bounded(6)) {
    case 0: return std::numeric_limits<double>::quiet_NaN();
    case 1: return -0.0;
    case 2: return std::numeric_limits<double>::infinity();
    case 3: return -std::numeric_limits<double>::infinity();
    case 4: return std::numeric_limits<double>::denorm_min();
    default: return rng.uniform(-1e308, 1e308);
  }
}

Value random_edge_value(Pcg32& rng, int depth) {
  switch (depth <= 0 ? rng.bounded(2) : rng.bounded(4)) {
    case 0: return Value{special_double(rng)};
    case 1: return Value{static_cast<std::int64_t>(rng()) - INT32_MAX};
    case 2: {
      ValueArray array;
      std::uint32_t len = rng.bounded(4);
      for (std::uint32_t i = 0; i < len; ++i) {
        array.push_back(random_edge_value(rng, depth - 1));
      }
      return Value{std::move(array)};
    }
    default: {
      ValueMap map;
      std::uint32_t len = rng.bounded(4);
      for (std::uint32_t i = 0; i < len; ++i) {
        map.emplace("k" + std::to_string(i), random_edge_value(rng, depth - 1));
      }
      return Value{std::move(map)};
    }
  }
}

class RpcEdgeDoubleProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RpcEdgeDoubleProperty, SpecialDoublesSurviveNestedRoundTrips) {
  Pcg32 rng(GetParam(), 0xD0B1);
  for (int i = 0; i < 60; ++i) {
    Value original = random_edge_value(rng, 3);
    xml::Document holder("h");
    rpc::encode_value(original, holder.root());
    Result<Value> back = rpc::decode_value(*holder.root().child("value"));
    ASSERT_TRUE(back.ok()) << back.error().to_string();
    EXPECT_TRUE(equivalent(back.value(), original)) << "iteration " << i;
  }
}

TEST_P(RpcEdgeDoubleProperty, DeterministicEdgeCases) {
  (void)GetParam();
  ValueMap nested;
  nested.emplace("nan", Value{std::numeric_limits<double>::quiet_NaN()});
  nested.emplace("neg_zero", Value{-0.0});
  nested.emplace("inf", Value{std::numeric_limits<double>::infinity()});
  ValueArray deep{Value{nested}, Value{-0.0}};
  Value original{ValueMap{{"deep", Value{deep}}}};

  xml::Document holder("h");
  rpc::encode_value(original, holder.root());
  Result<Value> back = rpc::decode_value(*holder.root().child("value"));
  ASSERT_TRUE(back.ok());
  const Value* round = back.value().find("deep");
  ASSERT_NE(round, nullptr);
  const ValueMap& map = round->as_array()[0].as_map();
  EXPECT_TRUE(std::isnan(map.at("nan").as_double()));
  EXPECT_TRUE(std::signbit(map.at("neg_zero").as_double()));
  EXPECT_EQ(map.at("neg_zero").as_double(), 0.0);
  EXPECT_TRUE(std::isinf(map.at("inf").as_double()));
  EXPECT_TRUE(std::signbit(round->as_array()[1].as_double()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RpcEdgeDoubleProperty,
                         ::testing::Values(9, 27, 81));

// ---- XML escaping --------------------------------------------------------------

class XmlEscapingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(XmlEscapingProperty, ArbitraryTextSurvivesElementRoundTrip) {
  Pcg32 rng(GetParam(), 99);
  const std::string alphabet = "ab<>&\"' \t\n;=[]{}";
  for (int i = 0; i < 40; ++i) {
    std::string text;
    std::uint32_t len = rng.bounded(40);
    for (std::uint32_t c = 0; c < len; ++c) {
      text.push_back(alphabet[rng.bounded(
          static_cast<std::uint32_t>(alphabet.size()))]);
    }
    xml::Document doc("t");
    doc.root().set_text(text);
    doc.root().set_attr("a", text);
    Result<xml::Document> back = xml::parse(
        xml::write(doc.root(), {.pretty = false, .declaration = false}));
    ASSERT_TRUE(back.ok());
    // Text content is whitespace-trimmed by the DOM accessor; compare
    // trimmed forms.  Attributes must match exactly.
    EXPECT_EQ(back.value().root().text(), strings::trim(text));
    EXPECT_EQ(*back.value().root().attr("a"), text);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlEscapingProperty,
                         ::testing::Values(7, 11, 19, 23));

// ---- random-DOM round trips and canonical invariance -----------------------

std::string random_markupish_text(Pcg32& rng, std::uint32_t max_len) {
  static const std::string alphabet = "abcXYZ<>&\"' \t\n;=[]{}]]>";
  std::string text;
  std::uint32_t len = rng.bounded(max_len);
  for (std::uint32_t i = 0; i < len; ++i) {
    text.push_back(alphabet[rng.bounded(
        static_cast<std::uint32_t>(alphabet.size()))]);
  }
  return text;
}

void grow_random_subtree(Pcg32& rng, xml::Element& into, int depth) {
  std::uint32_t attrs = rng.bounded(4);
  for (std::uint32_t a = 0; a < attrs; ++a) {
    into.set_attr("a" + std::to_string(a), random_markupish_text(rng, 12));
  }
  if (rng.bernoulli(0.6)) into.set_text(random_markupish_text(rng, 20));
  if (depth > 0) {
    std::uint32_t children = rng.bounded(4);
    for (std::uint32_t c = 0; c < children; ++c) {
      grow_random_subtree(
          rng, into.add_child("e" + std::to_string(rng.bounded(5))),
          depth - 1);
    }
  }
}

xml::Document random_document(Pcg32& rng) {
  xml::Document doc("root");
  grow_random_subtree(rng, doc.root(), 3);
  return doc;
}

/// Deep copy with every attribute list Fisher-Yates shuffled — a
/// presentation-only permutation the canonical writer must erase.
void copy_with_shuffled_attrs(Pcg32& rng, const xml::Element& from,
                              xml::Element& to) {
  std::vector<const xml::Attribute*> attrs;
  for (const xml::Attribute& attr : from.attributes()) attrs.push_back(&attr);
  for (std::size_t i = attrs.size(); i > 1; --i) {
    std::swap(attrs[i - 1], attrs[rng.bounded(static_cast<std::uint32_t>(i))]);
  }
  for (const xml::Attribute* attr : attrs) to.set_attr(attr->name, attr->value);
  const std::string text = from.text();
  if (!text.empty()) to.set_text(text);
  for (const xml::Element& child : from.children()) {
    copy_with_shuffled_attrs(rng, child, to.add_child(child.name()));
  }
}

class XmlDomProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(XmlDomProperty, ParseOfWriteIsIdentity) {
  Pcg32 rng(GetParam(), 0xD0C5);
  for (int i = 0; i < 200; ++i) {
    xml::Document doc = random_document(rng);
    // Compact and pretty serialisations must both re-parse to an
    // equal tree (equality compares trimmed text, which both writers
    // preserve).
    Result<xml::Document> compact = xml::parse(
        xml::write(doc.root(), {.pretty = false, .declaration = false}));
    ASSERT_TRUE(compact.ok()) << compact.error().to_string();
    EXPECT_TRUE(doc.root().equals(compact.value().root())) << "iteration "
                                                           << i;
    Result<xml::Document> pretty = xml::parse(xml::write(doc.root(), {}));
    ASSERT_TRUE(pretty.ok()) << pretty.error().to_string();
    EXPECT_TRUE(doc.root().equals(pretty.value().root())) << "iteration " << i;
  }
}

TEST_P(XmlDomProperty, CanonicalFormErasesPresentation) {
  Pcg32 rng(GetParam(), 0xCA40);
  for (int i = 0; i < 200; ++i) {
    xml::Document doc = random_document(rng);
    const std::string canonical = xml::write_canonical(doc.root());
    // Whitespace/indentation: canonical form survives a pretty round trip.
    Result<xml::Document> pretty = xml::parse(xml::write(doc.root(), {}));
    ASSERT_TRUE(pretty.ok());
    EXPECT_EQ(xml::write_canonical(pretty.value().root()), canonical)
        << "iteration " << i;
    // Attribute order: canonical form is invariant under permutation.
    xml::Document shuffled(doc.root().name());
    copy_with_shuffled_attrs(rng, doc.root(), shuffled.root());
    EXPECT_EQ(xml::write_canonical(shuffled.root()), canonical)
        << "iteration " << i;
    // The streaming sink and the string writer must agree byte for byte.
    EXPECT_EQ(xml::canonical_size(doc.root()), canonical.size())
        << "iteration " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlDomProperty,
                         ::testing::Values(5, 23, 77, 131));

// ---- SD message codec -------------------------------------------------------------

class SdCodecProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SdCodecProperty, RandomMessagesRoundTrip) {
  Pcg32 rng(GetParam(), 0x5D);
  const sd::MessageKind kinds[] = {
      sd::MessageKind::kQuery,        sd::MessageKind::kResponse,
      sd::MessageKind::kAnnounce,     sd::MessageKind::kGoodbye,
      sd::MessageKind::kProbe,        sd::MessageKind::kScmQuery,
      sd::MessageKind::kScmAdvert,    sd::MessageKind::kRegister,
      sd::MessageKind::kRegisterAck,  sd::MessageKind::kDeregister,
      sd::MessageKind::kDirectedQuery, sd::MessageKind::kDirectedReply};
  for (int i = 0; i < 60; ++i) {
    sd::SdMessage message;
    message.kind = kinds[rng.bounded(12)];
    message.txn_id = rng();
    message.service_type = "_t" + std::to_string(rng.bounded(100));
    message.sender_name = "n" + std::to_string(rng.bounded(100));
    message.lease_seconds = rng.bounded(1000);
    std::uint32_t records = rng.bounded(4);
    for (std::uint32_t r = 0; r < records; ++r) {
      sd::ServiceRecord record;
      record.instance.instance_name = "i" + std::to_string(rng());
      record.instance.type = message.service_type;
      record.instance.provider = net::Address(rng());
      record.instance.port = static_cast<net::Port>(rng.bounded(65536));
      record.instance.version = rng.bounded(10);
      std::uint32_t attrs = rng.bounded(3);
      for (std::uint32_t a = 0; a < attrs; ++a) {
        record.instance.attributes["k" + std::to_string(a)] =
            "v" + std::to_string(rng.bounded(10));
      }
      record.ttl_seconds = rng.bounded(300);
      message.records.push_back(std::move(record));
    }
    std::uint32_t known = rng.bounded(3);
    for (std::uint32_t k = 0; k < known; ++k) {
      message.known_answers.push_back(
          {"ka" + std::to_string(k), rng.bounded(120)});
    }
    Result<sd::SdMessage> back = sd::decode(sd::encode(message));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(back.value(), message);
  }
}

TEST_P(SdCodecProperty, TruncationNeverCrashesDecoder) {
  Pcg32 rng(GetParam(), 0xDEAD);
  sd::SdMessage message;
  message.kind = sd::MessageKind::kResponse;
  message.service_type = "_t._udp";
  message.sender_name = "node";
  sd::ServiceRecord record;
  record.instance.instance_name = "instance";
  record.instance.type = "_t._udp";
  record.instance.attributes["key"] = "value";
  message.records.push_back(record);
  Bytes wire = sd::encode(message);
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    Bytes truncated(wire.begin(),
                    wire.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(sd::decode(truncated).ok());
  }
  // Random corruption: decode either fails or returns *something*; it must
  // never crash, hang or read out of bounds.
  for (int i = 0; i < 100; ++i) {
    Bytes corrupted = wire;
    corrupted[rng.bounded(static_cast<std::uint32_t>(corrupted.size()))] =
        static_cast<std::uint8_t>(rng.bounded(256));
    (void)sd::decode(corrupted);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SdCodecProperty,
                         ::testing::Values(101, 202, 303));

// ---- routing invariants ----------------------------------------------------------

class RoutingProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoutingProperty, PathsAreConsistentOnRandomGraphs) {
  Result<net::Topology> topology =
      net::Topology::random_geometric(18, 0.4, GetParam());
  ASSERT_TRUE(topology.ok());
  net::RoutingTable routing(topology.value());
  std::size_t n = topology.value().node_count();
  for (net::NodeId a = 0; a < n; ++a) {
    for (net::NodeId b = 0; b < n; ++b) {
      int hops = routing.hop_count(a, b);
      // Connected graph: everything reachable; distance symmetric.
      ASSERT_GE(hops, 0);
      EXPECT_EQ(hops, routing.hop_count(b, a));
      std::vector<net::NodeId> path = routing.path(a, b);
      ASSERT_EQ(path.size(), static_cast<std::size_t>(hops) + 1);
      EXPECT_EQ(path.front(), a);
      EXPECT_EQ(path.back(), b);
      // Every consecutive pair is adjacent; the path is loop-free.
      std::set<net::NodeId> seen;
      for (std::size_t i = 0; i < path.size(); ++i) {
        EXPECT_TRUE(seen.insert(path[i]).second);
        if (i + 1 < path.size()) {
          EXPECT_NE(topology.value().link_between(path[i], path[i + 1]),
                    nullptr);
        }
      }
      // Triangle inequality over hop metric.
      for (net::NodeId c = 0; c < n; c += 5) {
        EXPECT_LE(hops,
                  routing.hop_count(a, c) + routing.hop_count(c, b));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingProperty,
                         ::testing::Values(1, 2, 3, 4));

// ---- conditioning invariant ---------------------------------------------------------

class ConditioningProperty : public ::testing::TestWithParam<std::int64_t> {};

TEST_P(ConditioningProperty, OffsetCorrectionInvertsClockShift) {
  std::int64_t offset = GetParam();
  Pcg32 rng(static_cast<std::uint64_t>(offset) ^ 42, 7);
  for (int i = 0; i < 100; ++i) {
    auto common_ns = static_cast<std::int64_t>(rng.bounded(1'000'000'000));
    std::int64_t local_ns = common_ns + offset;
    EXPECT_NEAR(storage::to_common_time(local_ns, offset),
                static_cast<double>(common_ns) / 1e9, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Offsets, ConditioningProperty,
                         ::testing::Values(-50'000'000, -1'000, 0, 1'000,
                                           50'000'000, 2'000'000'000));

// ---- deterministic replay across seeds -----------------------------------------------

struct SweepParam {
  std::uint64_t seed;
  int sm_count;
};

class ExperimentSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ExperimentSweep, EveryConfigurationCompletesAndIsCoherent) {
  core::scenario::TwoPartyOptions options;
  options.sm_count = GetParam().sm_count;
  options.replications = 2;
  options.environment_count = 1;
  Result<core::ExperimentDescription> description =
      core::scenario::two_party_sd(options);
  ASSERT_TRUE(description.ok());
  Result<net::Topology> topology =
      core::scenario::topology_for(description.value(), {});
  ASSERT_TRUE(topology.ok());
  core::SimPlatformConfig config;
  config.topology = std::move(topology).value();
  config.seed = GetParam().seed;
  Result<std::unique_ptr<core::SimPlatform>> platform =
      core::SimPlatform::create(description.value(), std::move(config));
  ASSERT_TRUE(platform.ok());
  core::ExperiMaster master(description.value(), *platform.value());
  Result<storage::ExperimentPackage> package = master.execute();
  ASSERT_TRUE(package.ok()) << package.error().to_string();

  // Invariants that must hold for every configuration:
  // (1) all runs completed,
  EXPECT_EQ(package.value().run_ids().size(), 2u);
  // (2) every provider discovered in every run (clean network),
  Result<std::vector<stats::RunDiscovery>> discoveries =
      stats::discoveries(package.value());
  ASSERT_TRUE(discoveries.ok());
  for (const stats::RunDiscovery& run : discoveries.value()) {
    EXPECT_EQ(run.latencies.size(),
              static_cast<std::size_t>(GetParam().sm_count));
  }
  // (3) causally coherent packet pairing,
  Result<std::size_t> violations =
      stats::causal_violations(package.value());
  ASSERT_TRUE(violations.ok());
  EXPECT_EQ(violations.value(), 0u);
  // (4) per-run event lists non-decreasing in time.
  for (std::int64_t run_id : package.value().run_ids()) {
    Result<std::vector<storage::EventRow>> events =
        package.value().events(run_id);
    ASSERT_TRUE(events.ok());
    for (std::size_t i = 1; i < events.value().size(); ++i) {
      EXPECT_LE(events.value()[i - 1].common_time,
                events.value()[i].common_time);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ExperimentSweep,
    ::testing::Values(SweepParam{1, 1}, SweepParam{1, 2}, SweepParam{1, 3},
                      SweepParam{2, 1}, SweepParam{2, 2}, SweepParam{3, 1},
                      SweepParam{3, 3}, SweepParam{4, 2}),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return "seed" + std::to_string(info.param.seed) + "sm" +
             std::to_string(info.param.sm_count);
    });

// ---- scheduler determinism under random workloads ---------------------------------------

class SchedulerProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerProperty, ExecutionOrderIndependentOfHeapInternals) {
  auto trace = [](std::uint64_t seed) {
    sim::Scheduler scheduler;
    Pcg32 rng(seed, 1);
    std::vector<int> order;
    std::function<void(int)> spawn = [&](int id) {
      order.push_back(id);
      if (order.size() < 200) {
        scheduler.schedule(
            sim::SimDuration(rng.bounded(1000)),
            [&spawn, next = static_cast<int>(order.size() * 1000)] {
              spawn(next);
            });
      }
    };
    for (int i = 0; i < 10; ++i) {
      scheduler.schedule(sim::SimDuration(rng.bounded(1000)),
                         [&spawn, i] { spawn(i); });
    }
    scheduler.run();
    return order;
  };
  EXPECT_EQ(trace(GetParam()), trace(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerProperty,
                         ::testing::Values(11, 22, 33, 44, 55));


// ---- level-2 store serialisation -----------------------------------------------

class Level2Property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Level2Property, NodeStoreRoundTripsRandomContent) {
  Pcg32 rng(GetParam(), 0x4C32);
  storage::NodeStore store;
  std::uint32_t events = rng.bounded(60);
  for (std::uint32_t i = 0; i < events; ++i) {
    storage::RawEvent event;
    event.run_id = rng.bounded(10);
    event.local_time_ns = static_cast<std::int64_t>(rng()) - INT32_MAX;
    event.type = "type" + std::to_string(rng.bounded(8));
    event.parameter = random_value(rng, 2);
    store.record_event(std::move(event));
  }
  std::uint32_t packets = rng.bounded(30);
  for (std::uint32_t i = 0; i < packets; ++i) {
    storage::RawPacket packet;
    packet.run_id = rng.bounded(10);
    packet.local_time_ns = rng();
    packet.src_node = "n" + std::to_string(rng.bounded(5));
    std::uint32_t len = rng.bounded(64);
    for (std::uint32_t b = 0; b < len; ++b) {
      packet.data.push_back(static_cast<std::uint8_t>(rng.bounded(256)));
    }
    store.record_packet(std::move(packet));
  }
  store.append_log("log " + std::to_string(GetParam()));
  store.add_run_blob(1, "blob", "content");
  store.add_plugin_measurement(2, "plug", "metric", "v");

  Result<storage::NodeStore> back =
      storage::NodeStore::deserialize(store.serialize());
  ASSERT_TRUE(back.ok());
  ASSERT_EQ(back.value().events().size(), store.events().size());
  for (std::size_t i = 0; i < store.events().size(); ++i) {
    EXPECT_EQ(back.value().events()[i].run_id, store.events()[i].run_id);
    EXPECT_EQ(back.value().events()[i].local_time_ns,
              store.events()[i].local_time_ns);
    EXPECT_EQ(back.value().events()[i].type, store.events()[i].type);
    EXPECT_EQ(back.value().events()[i].parameter,
              store.events()[i].parameter);
  }
  ASSERT_EQ(back.value().packets().size(), store.packets().size());
  for (std::size_t i = 0; i < store.packets().size(); ++i) {
    EXPECT_EQ(back.value().packets()[i].data, store.packets()[i].data);
  }
  EXPECT_EQ(back.value().log(), store.log());
  EXPECT_EQ(back.value().blobs().size(), 1u);
  EXPECT_EQ(back.value().plugin_data().size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Level2Property,
                         ::testing::Values(41, 42, 43, 44));

// ---- treatment plan completeness ------------------------------------------------

class PlanProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PlanProperty, PlanIsAPermutationOfTheFullFactorial) {
  // Whatever mixture of usages the factors carry, the generated plan must
  // contain every level combination exactly `replications` times.
  Pcg32 rng(GetParam(), 0x9A);
  core::ExperimentDescription description;
  description.name = "plan-prop";
  description.seed = GetParam();
  description.abstract_nodes = {"A"};
  description.replications = static_cast<int>(1 + rng.bounded(4));
  description.replication_factor_id = "rep";
  const core::FactorUsage usages[] = {core::FactorUsage::kBlocking,
                                      core::FactorUsage::kConstant,
                                      core::FactorUsage::kRandom};
  std::uint32_t factor_count = 1 + rng.bounded(3);
  std::size_t combinations = 1;
  for (std::uint32_t f = 0; f < factor_count; ++f) {
    core::Factor factor;
    factor.id = "f" + std::to_string(f);
    factor.type = "int";
    factor.usage = usages[rng.bounded(3)];
    std::uint32_t levels = 1 + rng.bounded(4);
    combinations *= levels;
    for (std::uint32_t l = 0; l < levels; ++l) {
      factor.levels.emplace_back(static_cast<std::int64_t>(l));
    }
    description.factors.push_back(std::move(factor));
  }

  Result<core::TreatmentPlan> plan =
      core::TreatmentPlan::generate(description);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().treatment_count(), combinations);
  EXPECT_EQ(plan.value().run_count(),
            combinations * static_cast<std::size_t>(description.replications));

  // Count distinct full assignments.
  std::map<std::string, int> counts;
  for (const core::RunSpec& run : plan.value().runs()) {
    std::string key;
    for (const core::Factor& factor : description.factors) {
      key += factor.id + "=" +
             std::to_string(run.treatment.level_int(factor.id).value()) + ";";
    }
    counts[key]++;
  }
  EXPECT_EQ(counts.size(), combinations);
  for (const auto& [key, count] : counts) {
    EXPECT_EQ(count, description.replications) << key;
  }
  // Run ids are 1..N in order.
  for (std::size_t i = 0; i < plan.value().runs().size(); ++i) {
    EXPECT_EQ(plan.value().runs()[i].run_id,
              static_cast<std::int64_t>(i + 1));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlanProperty,
                         ::testing::Values(1, 7, 13, 29, 57, 99));

// ---- incremental routing repair under link churn --------------------------------

class RoutingChurnProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoutingChurnProperty, IncrementalRepairMatchesFullRebuild) {
  // Random flap sequence: after every single-link toggle, the incrementally
  // repaired table must be indistinguishable from a full rebuild over the
  // same reduced graph — including disconnected segments mid-sequence.
  Result<net::Topology> topology =
      net::Topology::random_geometric(14, 0.45, GetParam());
  ASSERT_TRUE(topology.ok());
  const net::Topology& topo = topology.value();
  std::size_t n = topo.node_count();
  std::vector<net::LinkKey> links;
  for (net::NodeId a = 0; a < n; ++a) {
    for (net::NodeId b = a + 1; b < n; ++b) {
      if (topo.link_between(a, b) != nullptr) links.push_back({a, b});
    }
  }
  ASSERT_FALSE(links.empty());

  net::RoutingTable incremental(topo);
  // A second engine with a tiny row cache: eviction and recomputation under
  // pressure must not change any answer (rows are pure functions of the
  // reduced graph).
  net::RoutingTable thrashed(topo);
  thrashed.set_row_cache_capacity(3);
  net::RoutingTable reference(topo);
  net::LinkSet disabled;
  Pcg32 rng(GetParam(), 0xFA11);
  for (int step = 0; step < 60; ++step) {
    const net::LinkKey& link =
        links[rng.bounded(static_cast<std::uint32_t>(links.size()))];
    bool enable = disabled.contains(link.first, link.second);
    incremental.set_link_enabled(link.first, link.second, enable);
    thrashed.set_link_enabled(link.first, link.second, enable);
    if (enable) {
      disabled.erase(link.first, link.second);
    } else {
      disabled.insert(link.first, link.second);
    }
    reference.rebuild(topo, disabled);
    for (net::NodeId a = 0; a < n; ++a) {
      for (net::NodeId b = 0; b < n; ++b) {
        ASSERT_EQ(incremental.hop_count(a, b), reference.hop_count(a, b))
            << "step " << step << " pair " << a << "->" << b;
        ASSERT_EQ(incremental.next_hop(a, b), reference.next_hop(a, b))
            << "step " << step << " pair " << a << "->" << b;
        ASSERT_EQ(thrashed.hop_count(a, b), reference.hop_count(a, b))
            << "thrashed, step " << step << " pair " << a << "->" << b;
        ASSERT_EQ(thrashed.next_hop(a, b), reference.next_hop(a, b))
            << "thrashed, step " << step << " pair " << a << "->" << b;
      }
    }
    EXPECT_LE(thrashed.cached_row_count(), 3u);
  }
}

TEST_P(RoutingChurnProperty, LazyRepairSurvivesPartitionBulkToggles) {
  // Partition-style bulk sequences: several links toggled per step through
  // set_link_enabled with only sparse interleaved queries, so most cached
  // rows go stale between queries rather than being refreshed each step.
  Result<net::Topology> topology =
      net::Topology::random_geometric(16, 0.42, GetParam() ^ 0xBEEF);
  ASSERT_TRUE(topology.ok());
  const net::Topology& topo = topology.value();
  std::size_t n = topo.node_count();
  std::vector<net::LinkKey> links;
  for (net::NodeId a = 0; a < n; ++a) {
    for (net::NodeId b = a + 1; b < n; ++b) {
      if (topo.link_between(a, b) != nullptr) links.push_back({a, b});
    }
  }
  net::RoutingTable lazy(topo);
  net::RoutingTable reference(topo);
  net::LinkSet disabled;
  Pcg32 rng(GetParam(), 0x9A27);
  for (int step = 0; step < 60; ++step) {
    std::uint32_t toggles = 1 + rng.bounded(4);
    for (std::uint32_t t = 0; t < toggles; ++t) {
      const net::LinkKey& link =
          links[rng.bounded(static_cast<std::uint32_t>(links.size()))];
      bool enable = disabled.contains(link.first, link.second);
      lazy.set_link_enabled(link.first, link.second, enable);
      if (enable) {
        disabled.erase(link.first, link.second);
      } else {
        disabled.insert(link.first, link.second);
      }
    }
    // Sparse queries: a handful of random pairs, then (every few steps) a
    // full sweep against an eager reference rebuilt from scratch.
    reference.rebuild(topo, disabled);
    for (int q = 0; q < 5; ++q) {
      net::NodeId a = rng.bounded(static_cast<std::uint32_t>(n));
      net::NodeId b = rng.bounded(static_cast<std::uint32_t>(n));
      ASSERT_EQ(lazy.next_hop(a, b), reference.next_hop(a, b))
          << "step " << step << " pair " << a << "->" << b;
    }
    if (step % 7 == 0) {
      for (net::NodeId a = 0; a < n; ++a) {
        for (net::NodeId b = 0; b < n; ++b) {
          ASSERT_EQ(lazy.hop_count(a, b), reference.hop_count(a, b))
              << "sweep at step " << step << " pair " << a << "->" << b;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoutingChurnProperty,
                         ::testing::Values(3, 17, 58));

// ---- spatial-indexed geometric generation ----------------------------------------

/// Reference implementation: the pre-spatial-index O(V²) pairwise scan the
/// grid-indexed generator must reproduce byte for byte.
Result<net::Topology> naive_random_geometric(std::size_t size, double radius,
                                             std::uint64_t seed) {
  constexpr int kMaxAttempts = 64;
  RngFactory factory(seed);
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    Pcg32 rng = factory.stream("geometric-topology",
                               static_cast<std::uint64_t>(attempt));
    net::Topology topo;
    for (std::size_t i = 0; i < size; ++i) {
      topo.add_node("n" + std::to_string(i), rng.uniform01(), rng.uniform01());
    }
    for (std::size_t i = 0; i < size; ++i) {
      for (std::size_t j = i + 1; j < size; ++j) {
        double dx = topo.nodes()[i].x - topo.nodes()[j].x;
        double dy = topo.nodes()[i].y - topo.nodes()[j].y;
        if (std::sqrt(dx * dx + dy * dy) <= radius) {
          (void)topo.connect(static_cast<net::NodeId>(i),
                             static_cast<net::NodeId>(j), {});
        }
      }
    }
    if (topo.connected()) return topo;
  }
  return err_invalid("naive geometric generation failed");
}

struct GeometricParam {
  std::uint64_t seed;
  std::size_t size;
  double radius;
};

class GeometricIndexProperty
    : public ::testing::TestWithParam<GeometricParam> {};

TEST_P(GeometricIndexProperty, GridIndexedGenerationMatchesNaiveScanExactly) {
  const GeometricParam& param = GetParam();
  Result<net::Topology> indexed =
      net::Topology::random_geometric(param.size, param.radius, param.seed);
  Result<net::Topology> naive =
      naive_random_geometric(param.size, param.radius, param.seed);
  ASSERT_TRUE(indexed.ok());
  ASSERT_TRUE(naive.ok());
  ASSERT_EQ(indexed.value().node_count(), naive.value().node_count());
  for (std::size_t i = 0; i < naive.value().node_count(); ++i) {
    // Positions drawn from the identical RNG stream: bit-equal doubles.
    EXPECT_EQ(indexed.value().nodes()[i].x, naive.value().nodes()[i].x);
    EXPECT_EQ(indexed.value().nodes()[i].y, naive.value().nodes()[i].y);
    EXPECT_EQ(indexed.value().nodes()[i].name, naive.value().nodes()[i].name);
  }
  // The link *sequence* must match, not just the link set: downstream
  // consumers (CSR layouts, flood fan-out order, capture streams) depend on
  // declaration order.
  ASSERT_EQ(indexed.value().link_count(), naive.value().link_count());
  for (std::size_t l = 0; l < naive.value().link_count(); ++l) {
    EXPECT_EQ(indexed.value().links()[l].a, naive.value().links()[l].a)
        << "link " << l;
    EXPECT_EQ(indexed.value().links()[l].b, naive.value().links()[l].b)
        << "link " << l;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, GeometricIndexProperty,
    ::testing::Values(GeometricParam{1, 40, 0.3},
                      GeometricParam{7, 120, 0.18},
                      GeometricParam{21, 300, 0.12},
                      GeometricParam{33, 80, 0.9},    // radius ~ whole square
                      GeometricParam{58, 250, 0.14}),
    [](const ::testing::TestParamInfo<GeometricParam>& info) {
      return "seed" + std::to_string(info.param.seed) + "n" +
             std::to_string(info.param.size);
    });

// ---- dynamic-world determinism (DESIGN.md §12) ----------------------------------

/// Executes the canonical scenario with churn + bursty loss + a timed
/// partition all active and returns the conditioned package bytes.
Result<Bytes> dynamic_world_package(std::uint64_t seed,
                                    core::MasterOptions master_options) {
  core::scenario::TwoPartyOptions options;
  options.replications = 2;
  options.environment_count = 1;
  options.deadline_s = 10.0;
  options.dynamic.sm_churn = true;
  options.dynamic.churn_mean_uptime_s = 2.0;
  options.dynamic.churn_mean_downtime_s = 0.5;
  options.dynamic.ge_loss = true;
  options.dynamic.ge_p_enter_bad = 0.02;
  options.dynamic.ge_p_exit_bad = 0.4;
  options.dynamic.partition_nodes = {"ENV0"};
  options.dynamic.partition_start_s = 1.0;
  options.dynamic.partition_duration_s = 3.0;
  EXC_ASSIGN_OR_RETURN(core::ExperimentDescription description,
                       core::scenario::two_party_sd(options));
  EXC_ASSIGN_OR_RETURN(net::Topology topology,
                       core::scenario::topology_for(description, {}));
  core::SimPlatformConfig config;
  config.topology = std::move(topology);
  config.seed = seed;
  EXC_ASSIGN_OR_RETURN(std::unique_ptr<core::SimPlatform> platform,
                       core::SimPlatform::create(description,
                                                 std::move(config)));
  core::ExperiMaster master(description, *platform,
                            std::move(master_options));
  EXC_ASSIGN_OR_RETURN(storage::ExperimentPackage package, master.execute());
  return package.database().serialize();
}

class DynamicWorldProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DynamicWorldProperty, PackageBitIdenticalAcrossWorkersAndRetries) {
  core::MasterOptions sequential;
  sequential.run_workers = 1;
  Result<Bytes> baseline = dynamic_world_package(GetParam(), sequential);
  ASSERT_TRUE(baseline.ok()) << baseline.error().to_string();
  ASSERT_FALSE(baseline.value().empty());

  for (std::size_t workers : {std::size_t{4}, std::size_t{0}}) {
    core::MasterOptions parallel;
    parallel.run_workers = workers;
    Result<Bytes> bytes = dynamic_world_package(GetParam(), parallel);
    ASSERT_TRUE(bytes.ok()) << bytes.error().to_string();
    EXPECT_EQ(bytes.value(), baseline.value()) << "run_workers=" << workers;
  }

  // Retries in the mix: an aborted first attempt replays the exact same
  // churn/loss/partition realisation (schedules seed from the replication
  // factor, not the attempt), so a parallel execution with a forced retry
  // still matches the sequential execution with the same retry pattern.
  auto flaky_hook = [](std::int64_t run_id, int attempt) {
    return run_id == 1 && attempt == 1;
  };
  core::MasterOptions flaky_sequential;
  flaky_sequential.run_workers = 1;
  flaky_sequential.abort_hook = flaky_hook;
  Result<Bytes> retried_baseline =
      dynamic_world_package(GetParam(), flaky_sequential);
  ASSERT_TRUE(retried_baseline.ok())
      << retried_baseline.error().to_string();

  core::MasterOptions flaky_parallel;
  flaky_parallel.run_workers = 2;
  flaky_parallel.abort_hook = flaky_hook;
  Result<Bytes> retried = dynamic_world_package(GetParam(), flaky_parallel);
  ASSERT_TRUE(retried.ok()) << retried.error().to_string();
  EXPECT_EQ(retried.value(), retried_baseline.value()) << "with forced retry";
}

INSTANTIATE_TEST_SUITE_P(Seeds, DynamicWorldProperty,
                         ::testing::Values(11, 29));

// ---- storage: random tables -----------------------------------------------------

/// Random column over the storable scalar types (bytes exercises the
/// generic column path).  Small value domains force hash-index buckets
/// with many rows and probes that actually hit.
storage::TableSchema random_schema(Pcg32& rng, int index) {
  storage::TableSchema schema;
  schema.name = "T" + std::to_string(index);
  static constexpr ValueType kTypes[] = {ValueType::kInt, ValueType::kDouble,
                                         ValueType::kBool, ValueType::kString,
                                         ValueType::kBytes};
  std::uint32_t columns = 2 + rng.bounded(4);
  for (std::uint32_t c = 0; c < columns; ++c) {
    storage::Column column;
    column.name = "c" + std::to_string(c);
    column.type = kTypes[rng.bounded(5)];
    column.nullable = rng.bernoulli(0.5);
    schema.columns.push_back(std::move(column));
  }
  return schema;
}

Value random_cell(Pcg32& rng, const storage::Column& column) {
  if (column.nullable && rng.bernoulli(0.2)) return Value{};
  switch (column.type) {
    case ValueType::kInt:
      return Value{static_cast<std::int64_t>(rng.bounded(8)) - 3};
    case ValueType::kDouble: {
      // Int cells in double columns and the -0.0 == 0.0 normalisation are
      // both part of the equality contract under test.
      switch (rng.bounded(6)) {
        case 0: return Value{0.0};
        case 1: return Value{-0.0};
        case 2: return Value{1.5};
        case 3: return Value{static_cast<std::int64_t>(rng.bounded(4))};
        case 4: return Value{-2.25e6};
        default: return Value{0.125};
      }
    }
    case ValueType::kBool:
      return Value{rng.bernoulli(0.5)};
    case ValueType::kString:
      return Value{"s" + std::to_string(rng.bounded(6))};
    default: {  // kBytes
      Bytes bytes;
      std::uint32_t len = rng.bounded(4);
      for (std::uint32_t i = 0; i < len; ++i) {
        bytes.push_back(static_cast<std::uint8_t>(rng.bounded(4)));
      }
      return Value{std::move(bytes)};
    }
  }
}

storage::Row random_row(Pcg32& rng, const storage::TableSchema& schema) {
  storage::Row row;
  row.reserve(schema.columns.size());
  for (const storage::Column& column : schema.columns) {
    row.push_back(random_cell(rng, column));
  }
  return row;
}

class StorageProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StorageProperty, SerializeDeserializeRoundTripsRandomDatabases) {
  Pcg32 rng(GetParam(), GetParam() ^ 0x5707A6E);
  storage::Database db;
  std::vector<std::vector<storage::Row>> contents;
  const int tables = 1 + static_cast<int>(rng.bounded(3));
  for (int t = 0; t < tables; ++t) {
    storage::TableSchema schema = random_schema(rng, t);
    Result<storage::Table*> table = db.create_table(schema);
    ASSERT_TRUE(table.ok());
    std::vector<storage::Row> rows;
    std::uint32_t count = rng.bounded(60);
    for (std::uint32_t r = 0; r < count; ++r) {
      rows.push_back(random_row(rng, schema));
      ASSERT_TRUE(table.value()->insert(rows.back()).ok());
    }
    contents.push_back(std::move(rows));
  }

  Bytes bytes = db.serialize();
  Result<storage::Database> back = storage::Database::deserialize(bytes);
  ASSERT_TRUE(back.ok()) << back.error().to_string();
  ASSERT_EQ(back.value().table_names(), db.table_names());
  for (int t = 0; t < tables; ++t) {
    const storage::Table* table =
        back.value().table("T" + std::to_string(t));
    ASSERT_NE(table, nullptr);
    ASSERT_EQ(table->row_count(), contents[t].size());
    for (std::size_t r = 0; r < contents[t].size(); ++r) {
      EXPECT_EQ(table->row(r).materialize(), contents[t][r])
          << "table " << t << " row " << r;
    }
  }
  // Deserialisation is lossless enough to re-serialise byte-identically
  // (string pools round-trip in interning order).
  EXPECT_EQ(back.value().serialize(), bytes);
}

TEST_P(StorageProperty, IndexedSelectMatchesLinearScanExactly) {
  Pcg32 rng(GetParam(), GetParam() ^ 0x1DE8);
  storage::TableSchema schema = random_schema(rng, 0);
  storage::Table table(schema);
  auto insert_rows = [&](std::uint32_t count) {
    for (std::uint32_t r = 0; r < count; ++r) {
      ASSERT_TRUE(table.insert(random_row(rng, schema)).ok());
    }
  };
  auto check_column = [&](const storage::Column& column) {
    // Probe with existing cells, fresh random cells and an explicit null:
    // the hash-indexed path must reproduce the scan's rows, order included.
    std::vector<Value> probes;
    std::optional<std::size_t> index = schema.column_index(column.name);
    ASSERT_TRUE(index.has_value());
    for (int i = 0; i < 4 && table.row_count() > 0; ++i) {
      probes.push_back(
          table.row(rng.bounded(static_cast<std::uint32_t>(
              table.row_count())))[*index]);
    }
    for (int i = 0; i < 4; ++i) probes.push_back(random_cell(rng, column));
    probes.push_back(Value{});
    for (const Value& probe : probes) {
      std::vector<storage::RowView> indexed =
          table.select_equals(column.name, probe);
      std::vector<storage::RowView> scanned = table.select(
          [&](const storage::RowView& row) { return row[*index] == probe; });
      ASSERT_EQ(indexed.size(), scanned.size()) << column.name;
      EXPECT_EQ(table.count_equals(column.name, probe), scanned.size());
      for (std::size_t i = 0; i < indexed.size(); ++i) {
        EXPECT_EQ(indexed[i].index(), scanned[i].index());
      }
    }
  };

  insert_rows(40);
  for (const storage::Column& column : schema.columns) check_column(column);
  // The index is maintained incrementally: after further inserts the
  // already-built structures must keep matching a fresh scan.
  insert_rows(25);
  for (const storage::Column& column : schema.columns) check_column(column);
}

TEST_P(StorageProperty, OrderByMatchesStableSortOfScan) {
  Pcg32 rng(GetParam(), GetParam() ^ 0x0B5E);
  storage::TableSchema schema = random_schema(rng, 0);
  storage::Table table(schema);
  for (std::uint32_t r = 0; r < 50; ++r) {
    ASSERT_TRUE(table.insert(random_row(rng, schema)).ok());
  }
  for (std::size_t c = 0; c < schema.columns.size(); ++c) {
    Result<std::vector<storage::RowView>> ordered =
        table.order_by(schema.columns[c].name);
    ASSERT_TRUE(ordered.ok());
    std::vector<std::uint32_t> expected(table.row_count());
    std::iota(expected.begin(), expected.end(), 0u);
    std::stable_sort(expected.begin(), expected.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                       return table.row(a)[c] < table.row(b)[c];
                     });
    ASSERT_EQ(ordered.value().size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(ordered.value()[i].index(), expected[i])
          << "column " << schema.columns[c].name << " position " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StorageProperty,
                         ::testing::Values(3, 17, 41, 97, 131));

}  // namespace
}  // namespace excovery
