// Flat sorted set of undirected links, used for the administratively-down
// link state on the per-hop hot path and inside the routing engine.
//
// The previous std::set<std::pair<NodeId, NodeId>> cost a red-black tree
// walk plus a node allocation per insert on every flap of a link-churn fault
// schedule, and a pointer-chasing lookup on every packet hop while any link
// was down.  Link keys pack into one 64-bit word, the live set is small
// (faults disable tens of links, not thousands), and lookups outnumber
// mutations by orders of magnitude — a sorted flat vector with binary search
// is both smaller and faster, and reaches steady state with zero
// allocations.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "net/packet.hpp"

namespace excovery::net {

/// Packed normalised key of an undirected link: (min << 32) | max.
using PackedLink = std::uint64_t;

inline PackedLink pack_link(NodeId a, NodeId b) noexcept {
  return a < b ? (static_cast<PackedLink>(a) << 32) | b
               : (static_cast<PackedLink>(b) << 32) | a;
}

inline NodeId packed_link_a(PackedLink key) noexcept {
  return static_cast<NodeId>(key >> 32);
}
inline NodeId packed_link_b(PackedLink key) noexcept {
  return static_cast<NodeId>(key & 0xFFFFFFFFu);
}

/// Sorted flat vector of packed link keys.  Iteration yields keys in
/// ascending (a, b) order, which callers rely on for determinism.
class LinkSet {
 public:
  bool contains(NodeId a, NodeId b) const noexcept {
    return contains(pack_link(a, b));
  }
  bool contains(PackedLink key) const noexcept {
    auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
    return it != keys_.end() && *it == key;
  }

  /// Insert; returns false if the link was already present.
  bool insert(NodeId a, NodeId b) { return insert(pack_link(a, b)); }
  bool insert(PackedLink key) {
    auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
    if (it != keys_.end() && *it == key) return false;
    keys_.insert(it, key);
    return true;
  }

  /// Erase; returns false if the link was absent.
  bool erase(NodeId a, NodeId b) { return erase(pack_link(a, b)); }
  bool erase(PackedLink key) {
    auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
    if (it == keys_.end() || *it != key) return false;
    keys_.erase(it);
    return true;
  }

  void clear() noexcept { keys_.clear(); }
  bool empty() const noexcept { return keys_.empty(); }
  std::size_t size() const noexcept { return keys_.size(); }

  std::vector<PackedLink>::const_iterator begin() const noexcept {
    return keys_.begin();
  }
  std::vector<PackedLink>::const_iterator end() const noexcept {
    return keys_.end();
  }

 private:
  std::vector<PackedLink> keys_;
};

}  // namespace excovery::net
