#include "net/topology.hpp"

#include <cmath>
#include <queue>

#include "common/strings.hpp"

namespace excovery::net {

NodeId Topology::add_node(std::string name, std::optional<Address> address) {
  auto id = static_cast<NodeId>(nodes_.size());
  Address addr = address.value_or(Address::for_node(id + 1));
  nodes_.push_back(TopologyNode{std::move(name), addr, 0.0, 0.0});
  return id;
}

NodeId Topology::add_node(std::string name, double x, double y) {
  NodeId id = add_node(std::move(name));
  nodes_[id].x = x;
  nodes_[id].y = y;
  return id;
}

Status Topology::connect(NodeId a, NodeId b, const LinkModel& model) {
  if (a >= nodes_.size() || b >= nodes_.size()) {
    return err_invalid("link endpoint out of range");
  }
  if (a == b) return err_invalid("self-link not allowed");
  if (link_between(a, b) != nullptr) {
    return err_invalid(strings::format("nodes %u and %u already linked", a, b));
  }
  links_.push_back(Link{a, b, model});
  return {};
}

Result<NodeId> Topology::find(const std::string& name) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].name == name) return static_cast<NodeId>(i);
  }
  return err_not_found("no node named '" + name + "'");
}

Result<NodeId> Topology::find(Address address) const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].address == address) return static_cast<NodeId>(i);
  }
  return err_not_found("no node with address " + address.to_string());
}

std::vector<std::pair<NodeId, const LinkModel*>> Topology::neighbours(
    NodeId id) const {
  std::vector<std::pair<NodeId, const LinkModel*>> out;
  for (const Link& link : links_) {
    if (link.a == id) out.emplace_back(link.b, &link.model);
    if (link.b == id) out.emplace_back(link.a, &link.model);
  }
  return out;
}

const LinkModel* Topology::link_between(NodeId a, NodeId b) const {
  for (const Link& link : links_) {
    if ((link.a == a && link.b == b) || (link.a == b && link.b == a)) {
      return &link.model;
    }
  }
  return nullptr;
}

LinkModel* Topology::mutable_link_between(NodeId a, NodeId b) {
  for (Link& link : links_) {
    if ((link.a == a && link.b == b) || (link.a == b && link.b == a)) {
      return &link.model;
    }
  }
  return nullptr;
}

bool Topology::connected() const {
  if (nodes_.empty()) return true;
  std::vector<bool> seen(nodes_.size(), false);
  std::queue<NodeId> frontier;
  frontier.push(0);
  seen[0] = true;
  std::size_t visited = 1;
  while (!frontier.empty()) {
    NodeId current = frontier.front();
    frontier.pop();
    for (const auto& [next, model] : neighbours(current)) {
      (void)model;
      if (!seen[next]) {
        seen[next] = true;
        ++visited;
        frontier.push(next);
      }
    }
  }
  return visited == nodes_.size();
}

Topology Topology::chain(std::size_t length, const LinkModel& model) {
  Topology topo;
  for (std::size_t i = 0; i < length; ++i) {
    topo.add_node("n" + std::to_string(i), static_cast<double>(i), 0.0);
  }
  for (std::size_t i = 0; i + 1 < length; ++i) {
    (void)topo.connect(static_cast<NodeId>(i), static_cast<NodeId>(i + 1),
                       model);
  }
  return topo;
}

Topology Topology::grid(std::size_t width, std::size_t height,
                        const LinkModel& model) {
  Topology topo;
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      topo.add_node("n" + std::to_string(y * width + x),
                    static_cast<double>(x), static_cast<double>(y));
    }
  }
  auto id = [width](std::size_t x, std::size_t y) {
    return static_cast<NodeId>(y * width + x);
  };
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      if (x + 1 < width) (void)topo.connect(id(x, y), id(x + 1, y), model);
      if (y + 1 < height) (void)topo.connect(id(x, y), id(x, y + 1), model);
    }
  }
  return topo;
}

Topology Topology::full_mesh(std::size_t size, const LinkModel& model) {
  Topology topo;
  for (std::size_t i = 0; i < size; ++i) {
    topo.add_node("n" + std::to_string(i));
  }
  for (std::size_t i = 0; i < size; ++i) {
    for (std::size_t j = i + 1; j < size; ++j) {
      (void)topo.connect(static_cast<NodeId>(i), static_cast<NodeId>(j),
                         model);
    }
  }
  return topo;
}

Result<Topology> Topology::random_geometric(std::size_t size, double radius,
                                            std::uint64_t seed,
                                            const LinkModel& model) {
  constexpr int kMaxAttempts = 64;
  RngFactory factory(seed);
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    Pcg32 rng = factory.stream("geometric-topology",
                               static_cast<std::uint64_t>(attempt));
    Topology topo;
    for (std::size_t i = 0; i < size; ++i) {
      topo.add_node("n" + std::to_string(i), rng.uniform01(), rng.uniform01());
    }
    for (std::size_t i = 0; i < size; ++i) {
      for (std::size_t j = i + 1; j < size; ++j) {
        double dx = topo.nodes()[i].x - topo.nodes()[j].x;
        double dy = topo.nodes()[i].y - topo.nodes()[j].y;
        if (std::sqrt(dx * dx + dy * dy) <= radius) {
          (void)topo.connect(static_cast<NodeId>(i), static_cast<NodeId>(j),
                             model);
        }
      }
    }
    if (topo.connected()) return topo;
  }
  return err_invalid(strings::format(
      "could not generate a connected geometric graph (size=%zu radius=%.3f)",
      size, radius));
}

}  // namespace excovery::net
