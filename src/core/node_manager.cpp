#include "core/node_manager.hpp"

#include "common/strings.hpp"
#include "core/platform.hpp"
#include "faults/schedule.hpp"

namespace excovery::core {

namespace {

/// Parameter helpers over the single-struct RPC calling convention.
std::string param_text(const ValueMap& params, const std::string& key,
                       const std::string& fallback = "") {
  auto it = params.find(key);
  if (it == params.end()) return fallback;
  return strings::strip_quotes(it->second.to_text());
}

Result<double> param_double(const ValueMap& params, const std::string& key,
                            double fallback) {
  auto it = params.find(key);
  if (it == params.end()) return fallback;
  return it->second.to_double();
}

Result<std::int64_t> param_int(const ValueMap& params, const std::string& key,
                               std::int64_t fallback) {
  auto it = params.find(key);
  if (it == params.end()) return fallback;
  return it->second.to_int();
}

Result<ValueMap> unwrap(const ValueArray& rpc_params) {
  if (rpc_params.empty()) return ValueMap{};
  if (!rpc_params.front().is_map()) {
    return err_rpc("expected a single struct parameter");
  }
  return rpc_params.front().as_map();
}

}  // namespace

NodeManager::NodeManager(SimPlatform& platform, std::string name,
                         net::NodeId node_id, AgentFactory agent_factory)
    : platform_(platform),
      name_(std::move(name)),
      node_id_(node_id),
      agent_factory_(std::move(agent_factory)),
      log_("node/" + name_) {
  register_methods();
}

NodeManager::~NodeManager() = default;

void NodeManager::register_methods() {
  auto wrap = [this](auto handler) {
    return [this, handler](const ValueArray& rpc_params) -> Result<Value> {
      EXC_ASSIGN_OR_RETURN(ValueMap params, unwrap(rpc_params));
      return handler(params);
    };
  };

  // ---- management -------------------------------------------------------
  server_.register_method(
      "experiment_init", wrap([this](const ValueMap&) -> Result<Value> {
        EXC_TRY(experiment_init());
        return Value{true};
      }));
  server_.register_method(
      "experiment_exit", wrap([this](const ValueMap&) -> Result<Value> {
        EXC_TRY(experiment_exit());
        return Value{true};
      }));
  server_.register_method(
      "run_init", wrap([this](const ValueMap& params) -> Result<Value> {
        EXC_ASSIGN_OR_RETURN(std::int64_t run, param_int(params, "run_id", 0));
        EXC_TRY(run_init(run));
        return Value{true};
      }));
  server_.register_method(
      "run_exit", wrap([this](const ValueMap& params) -> Result<Value> {
        EXC_ASSIGN_OR_RETURN(std::int64_t run, param_int(params, "run_id", 0));
        EXC_TRY(run_exit(run));
        return Value{true};
      }));
  server_.register_method(
      "clock_read", wrap([this](const ValueMap&) -> Result<Value> {
        return Value{platform_.network()
                         .clock(node_id_)
                         .read(platform_.scheduler().now())
                         .nanos()};
      }));
  server_.register_method(
      "event_flag", wrap([this](const ValueMap& params) -> Result<Value> {
        std::string value = param_text(params, "value");
        if (value.empty()) return err_invalid("event_flag needs a value");
        Value parameter;
        if (auto it = params.find("parameter"); it != params.end()) {
          parameter = it->second;
        }
        platform_.recorder().record(name_, value, parameter);
        return Value{true};
      }));

  // ---- SD process actions -----------------------------------------------
  for (const char* method :
       {"sd_init", "sd_exit", "sd_start_search", "sd_stop_search",
        "sd_start_publish", "sd_stop_publish", "sd_update_publication"}) {
    server_.register_method(
        method, wrap([this, method](const ValueMap& params) -> Result<Value> {
          return dispatch_sd(method, params);
        }));
  }

  // ---- fault injections ---------------------------------------------------
  for (const char* method :
       {"fault_interface_start", "fault_interface_stop",
        "fault_message_loss_start", "fault_message_loss_stop",
        "fault_message_delay_start", "fault_message_delay_stop",
        "fault_path_loss_start", "fault_path_loss_stop",
        "fault_path_delay_start", "fault_path_delay_stop",
        "fault_node_crash_start", "fault_node_crash_stop",
        "fault_node_churn_start", "fault_node_churn_stop",
        "fault_link_flap_start", "fault_link_flap_stop",
        "fault_ge_loss_start", "fault_ge_loss_stop",
        "fault_message_duplicate_start", "fault_message_duplicate_stop",
        "fault_message_reorder_start", "fault_message_reorder_stop"}) {
    server_.register_method(
        method, wrap([this, method](const ValueMap& params) -> Result<Value> {
          return dispatch_fault(method, params);
        }));
  }
}

Status NodeManager::ensure_agent() {
  if (agent_) return {};
  agent_ = agent_factory_();
  if (!agent_) return err_internal("agent factory returned null");
  agent_->set_event_sink(
      [this](std::string_view event, const Value& parameter) {
        platform_.recorder().record(name_, event, parameter);
      });
  return {};
}

Result<Value> NodeManager::dispatch_sd(const std::string& method,
                                       const ValueMap& params) {
  if (crashed_) {
    // The control channel stays reachable while the node's SD stack is down
    // (§IV-A1: management runs out of band), so experiment processes can
    // still issue SD actions against a crashed node.  Teardown degrades
    // gracefully — the crashed role's soft state is already gone — and
    // role-shaping actions are recorded for replay when the node restarts.
    if (method == "sd_exit") {
      sd_state_ = {};
      log_.info("sd_exit (crashed: role already gone)");
      platform_.recorder().record(name_, "sd_exit_done");
      return Value{true};
    }
    if (method == "sd_stop_publish") {
      sd_state_.publishes.erase(param_text(params, "instance", name_));
      return Value{true};
    }
    if (method == "sd_stop_search") {
      sd_state_.searches.erase(param_text(params, "type", "_expservice._udp"));
      return Value{true};
    }
    if (method == "sd_start_publish" || method == "sd_update_publication") {
      if (!sd_state_.initialized) {
        return err_state("sd action '" + method + "' before sd_init");
      }
      sd_state_.publishes[param_text(params, "instance", name_)] = params;
      return Value{true};
    }
    if (method == "sd_start_search") {
      if (!sd_state_.initialized) {
        return err_state("sd action '" + method + "' before sd_init");
      }
      sd_state_.searches[param_text(params, "type", "_expservice._udp")] =
          params;
      return Value{true};
    }
    return err_state("sd action '" + method + "' on crashed node");
  }
  if (method == "sd_init") {
    EXC_TRY(ensure_agent());
    std::string role_text = param_text(params, "role", "SU");
    EXC_ASSIGN_OR_RETURN(sd::SdRole role, sd::parse_role(role_text));
    // Remaining parameters pass through to the SDP implementation.
    ValueMap sdp_params = params;
    sdp_params.erase("role");
    log_.info("sd_init role=" + std::string(sd::to_string(role)));
    EXC_TRY(agent_->init(role, sdp_params));
    sd_state_.initialized = true;
    sd_state_.init_params = params;
    return Value{true};
  }
  if (!agent_) return err_state("sd action '" + method + "' before sd_init");

  if (method == "sd_exit") {
    log_.info("sd_exit");
    EXC_TRY(agent_->exit());
    agent_.reset();
    sd_state_ = {};
    return Value{true};
  }
  if (method == "sd_start_search") {
    std::string type = param_text(params, "type", "_expservice._udp");
    EXC_TRY(agent_->start_search(type));
    sd_state_.searches[type] = params;
    return Value{true};
  }
  if (method == "sd_stop_search") {
    std::string type = param_text(params, "type", "_expservice._udp");
    EXC_TRY(agent_->stop_search(type));
    sd_state_.searches.erase(type);
    return Value{true};
  }
  if (method == "sd_start_publish") {
    sd::ServiceInstance instance;
    instance.instance_name = param_text(params, "instance", name_);
    instance.type = param_text(params, "type", "_expservice._udp");
    EXC_ASSIGN_OR_RETURN(std::int64_t port, param_int(params, "port", 8080));
    instance.port = static_cast<net::Port>(port);
    if (auto it = params.find("attributes");
        it != params.end() && it->second.is_map()) {
      for (const auto& [key, value] : it->second.as_map()) {
        instance.attributes[key] = value.to_text();
      }
    }
    EXC_TRY(agent_->start_publish(instance));
    sd_state_.publishes[instance.instance_name] = params;
    return Value{true};
  }
  if (method == "sd_stop_publish") {
    std::string instance = param_text(params, "instance", name_);
    EXC_TRY(agent_->stop_publish(instance));
    sd_state_.publishes.erase(instance);
    return Value{true};
  }
  if (method == "sd_update_publication") {
    sd::ServiceInstance instance;
    instance.instance_name = param_text(params, "instance", name_);
    instance.type = param_text(params, "type", "_expservice._udp");
    EXC_ASSIGN_OR_RETURN(std::int64_t port, param_int(params, "port", 8080));
    instance.port = static_cast<net::Port>(port);
    if (auto it = params.find("attributes");
        it != params.end() && it->second.is_map()) {
      for (const auto& [key, value] : it->second.as_map()) {
        instance.attributes[key] = value.to_text();
      }
    }
    EXC_TRY(agent_->update_publication(instance));
    // Replay memory keeps the latest parameters per instance.
    sd_state_.publishes[instance.instance_name] = params;
    return Value{true};
  }
  return err_rpc("unknown sd method '" + method + "'");
}

faults::TemporalSpec NodeManager::temporal_from(const ValueMap& params) const {
  faults::TemporalSpec spec;
  if (auto it = params.find("duration"); it != params.end()) {
    if (Result<double> seconds = it->second.to_double(); seconds.ok()) {
      spec.duration = sim::SimDuration::from_seconds(seconds.value());
    }
  }
  if (auto it = params.find("rate"); it != params.end()) {
    if (Result<double> rate = it->second.to_double(); rate.ok()) {
      spec.rate = rate.value();
    }
  }
  if (auto it = params.find("randomseed"); it != params.end()) {
    if (Result<std::int64_t> seed = it->second.to_int(); seed.ok()) {
      spec.randomseed = static_cast<std::uint64_t>(seed.value());
    }
  }
  return spec;
}

Result<Value> NodeManager::dispatch_fault(const std::string& method,
                                          const ValueMap& params) {
  faults::FaultInjector& injector = platform_.injector();

  // Stop methods: tear down the active fault of that kind on this node.
  if (strings::ends_with(method, "_stop")) {
    std::string kind = method.substr(0, method.size() - 5);
    auto it = active_faults_.find(kind);
    if (it == active_faults_.end()) {
      return err_state("no active " + kind + " on node " + name_);
    }
    it->second->stop();
    active_faults_.erase(it);
    return Value{true};
  }

  std::string kind = method.substr(0, method.size() - 6);  // strip "_start"
  if (active_faults_.count(kind) != 0) {
    return err_state(kind + " already active on node " + name_);
  }
  faults::TemporalSpec temporal = temporal_from(params);

  Result<faults::FaultHandle> handle = [&]() -> Result<faults::FaultHandle> {
    if (kind == "fault_interface") {
      EXC_ASSIGN_OR_RETURN(
          faults::FaultDirection direction,
          faults::parse_fault_direction(param_text(params, "direction",
                                                   "both")));
      return injector.interface_fault(node_id_, direction, temporal);
    }
    if (kind == "fault_message_loss") {
      EXC_ASSIGN_OR_RETURN(double probability,
                           param_double(params, "probability", 0.0));
      EXC_ASSIGN_OR_RETURN(
          faults::FaultDirection direction,
          faults::parse_fault_direction(param_text(params, "direction",
                                                   "both")));
      return injector.message_loss(node_id_, probability, direction, temporal);
    }
    if (kind == "fault_message_delay") {
      EXC_ASSIGN_OR_RETURN(double delay_ms,
                           param_double(params, "delay_ms", 0.0));
      return injector.message_delay(
          node_id_, sim::SimDuration::from_seconds(delay_ms / 1000.0),
          temporal);
    }
    if (kind == "fault_path_loss" || kind == "fault_path_delay") {
      std::string peer_name = param_text(params, "peer");
      if (peer_name.empty()) return err_invalid(kind + " needs a peer");
      EXC_ASSIGN_OR_RETURN(net::NodeId peer, platform_.node_id(peer_name));
      if (kind == "fault_path_loss") {
        EXC_ASSIGN_OR_RETURN(double probability,
                             param_double(params, "probability", 0.0));
        return injector.path_loss(node_id_, peer, probability, temporal);
      }
      EXC_ASSIGN_OR_RETURN(double delay_ms,
                           param_double(params, "delay_ms", 0.0));
      return injector.path_delay(
          node_id_, peer, sim::SimDuration::from_seconds(delay_ms / 1000.0),
          temporal);
    }
    if (kind == "fault_node_crash") {
      return platform_.schedule_engine().node_crash(node_id_, temporal);
    }
    if (kind == "fault_node_churn" || kind == "fault_link_flap") {
      EXC_ASSIGN_OR_RETURN(double up_s,
                           param_double(params, "mean_uptime_s", 2.0));
      EXC_ASSIGN_OR_RETURN(double down_s,
                           param_double(params, "mean_downtime_s", 1.0));
      faults::ChurnSpec spec;
      spec.mean_uptime = sim::SimDuration::from_seconds(up_s);
      spec.mean_downtime = sim::SimDuration::from_seconds(down_s);
      spec.exponential =
          param_text(params, "distribution", "exponential") != "fixed";
      if (kind == "fault_node_churn") {
        return platform_.schedule_engine().node_churn(node_id_, spec,
                                                      temporal);
      }
      std::string peer_name = param_text(params, "peer");
      if (peer_name.empty()) return err_invalid(kind + " needs a peer");
      EXC_ASSIGN_OR_RETURN(net::NodeId peer, platform_.node_id(peer_name));
      return platform_.schedule_engine().link_flap(node_id_, peer, spec,
                                                   temporal);
    }
    if (kind == "fault_ge_loss") {
      faults::GilbertElliott model;
      EXC_ASSIGN_OR_RETURN(model.loss_good,
                           param_double(params, "probability_good", 0.0));
      EXC_ASSIGN_OR_RETURN(model.loss_bad,
                           param_double(params, "probability_bad", 1.0));
      EXC_ASSIGN_OR_RETURN(model.p_enter_bad,
                           param_double(params, "p_enter_bad", 0.0));
      EXC_ASSIGN_OR_RETURN(model.p_exit_bad,
                           param_double(params, "p_exit_bad", 1.0));
      std::string peer_name = param_text(params, "peer");
      if (!peer_name.empty()) {
        EXC_ASSIGN_OR_RETURN(net::NodeId peer, platform_.node_id(peer_name));
        return injector.ge_path_loss(node_id_, peer, model, temporal);
      }
      EXC_ASSIGN_OR_RETURN(
          faults::FaultDirection direction,
          faults::parse_fault_direction(param_text(params, "direction",
                                                   "both")));
      return injector.ge_loss(node_id_, model, direction, temporal);
    }
    if (kind == "fault_message_duplicate") {
      EXC_ASSIGN_OR_RETURN(double probability,
                           param_double(params, "probability", 0.0));
      EXC_ASSIGN_OR_RETURN(std::int64_t copies,
                           param_int(params, "copies", 1));
      EXC_ASSIGN_OR_RETURN(double gap_ms, param_double(params, "gap_ms", 0.0));
      return injector.message_duplicate(
          node_id_, probability, static_cast<int>(copies),
          sim::SimDuration::from_seconds(gap_ms / 1000.0), temporal);
    }
    if (kind == "fault_message_reorder") {
      EXC_ASSIGN_OR_RETURN(double probability,
                           param_double(params, "probability", 0.0));
      EXC_ASSIGN_OR_RETURN(double max_delay_ms,
                           param_double(params, "max_delay_ms", 10.0));
      return injector.message_reorder(
          node_id_, probability,
          sim::SimDuration::from_seconds(max_delay_ms / 1000.0), temporal);
    }
    return err_rpc("unknown fault method '" + method + "'");
  }();
  if (!handle.ok()) return std::move(handle).error();
  active_faults_.emplace(kind, std::move(handle).value());
  return Value{true};
}

void NodeManager::crash() {
  if (crashed_) return;
  crashed_ = true;
  log_.info("node crash: SD soft state lost, interfaces down");
  if (agent_) {
    // Drop all soft state without goodbyes or deregistrations; peers keep
    // stale knowledge of this node until their caches/leases expire.
    agent_->crash();
    agent_.reset();
  }
  net::Network& network = platform_.network();
  network.set_interface_up(node_id_, net::Direction::kTransmit, false);
  network.set_interface_up(node_id_, net::Direction::kReceive, false);
}

void NodeManager::restore() {
  if (!crashed_) return;
  crashed_ = false;
  net::Network& network = platform_.network();
  network.set_interface_up(node_id_, net::Direction::kTransmit, true);
  network.set_interface_up(node_id_, net::Direction::kReceive, true);
  log_.info("node restart: replaying discovery role");
  if (!sd_state_.initialized) return;
  // Replay through the regular dispatch path so re-announcement and
  // re-registration use the protocol's normal startup machinery (probe /
  // announce backoff, SCM registration).  Iterate over copies: dispatch_sd
  // rewrites the replay memory as it goes.
  ValueMap init_params = sd_state_.init_params;
  auto publishes = sd_state_.publishes;
  auto searches = sd_state_.searches;
  sd_state_ = {};
  if (Result<Value> r = dispatch_sd("sd_init", init_params); !r.ok()) {
    log_.warn("restart replay: sd_init failed: " + r.error().message());
    return;
  }
  for (const auto& [instance, params] : publishes) {
    if (Result<Value> r = dispatch_sd("sd_start_publish", params); !r.ok()) {
      log_.warn("restart replay: publish '" + instance +
                "' failed: " + r.error().message());
    }
  }
  for (const auto& [type, params] : searches) {
    if (Result<Value> r = dispatch_sd("sd_start_search", params); !r.ok()) {
      log_.warn("restart replay: search '" + type +
                "' failed: " + r.error().message());
    }
  }
}

void NodeManager::register_plugin(const std::string& plugin,
                                  const std::string& name, PluginFn fn) {
  plugins_.push_back(Plugin{plugin, name, std::move(fn)});
}

Status NodeManager::experiment_init() {
  log_.info("experiment_init");
  platform_.recorder().record(name_, "experiment_init");
  return {};
}

Status NodeManager::experiment_exit() {
  log_.info("experiment_exit");
  platform_.recorder().record(name_, "experiment_exit");
  // The log was flushed run by run (run_exit); experiment-scope lines are
  // not persisted so the stored log is independent of which platform
  // instance (master or worker replica) executed each run.
  log_.clear();
  return {};
}

Status NodeManager::run_init(std::int64_t run_id) {
  current_run_ = run_id;
  sd_state_ = {};
  crashed_ = false;
  // Drop buffered experiment-scope lines so this run's log segment holds
  // exactly the lines logged between run_init and run_exit.
  log_.clear();
  log_.info(strings::format("run_init %lld", static_cast<long long>(run_id)));
  platform_.recorder().record(name_, "run_init", Value{run_id});
  return {};
}

Status NodeManager::run_exit(std::int64_t run_id) {
  // Stop faults still active on this node BEFORE tearing the agent down: a
  // churn fault's deactivation restores the node (recreating the agent),
  // which must happen inside the run so the final agent exit below sees it.
  for (auto& [kind, fault] : active_faults_) fault->stop();
  active_faults_.clear();
  // Safety net: a node left crashed by a one-shot crash fault comes back so
  // the next run starts from a defined state.
  if (crashed_) restore();
  // Terminate any SD role still active (clean-up phase must leave a
  // defined state for the next run).
  if (agent_ && agent_->initialized()) {
    (void)agent_->exit();
    agent_.reset();
  }
  sd_state_ = {};

  collect_captures(run_id);

  // Plugin measurements run at the end of every run (§IV-B, plugins have
  // "a separate storage location on the node").
  for (const Plugin& plugin : plugins_) {
    platform_.level2().node(name_).add_plugin_measurement(
        run_id, plugin.plugin, plugin.name, plugin.fn(run_id));
  }

  log_.info(strings::format("run_exit %lld", static_cast<long long>(run_id)));
  platform_.recorder().record(name_, "run_exit", Value{run_id});
  // Flush this run's log lines as a run-scoped segment: discard_run can
  // drop an aborted attempt's lines and the run-parallel merge can splice
  // the segment in at the right position.
  platform_.level2().node(name_).append_run_log(run_id, log_.take());
  return {};
}

void NodeManager::collect_captures(std::int64_t run_id) {
  std::vector<net::CapturedPacket> captures =
      platform_.network().take_captures(node_id_);
  storage::NodeStore& store = platform_.level2().node(name_);
  const net::Topology& topology = platform_.network().topology();
  for (const net::CapturedPacket& captured : captures) {
    storage::RawPacket raw;
    raw.run_id = run_id;
    raw.local_time_ns = captured.local_time.nanos();
    if (!captured.packet.route.empty()) {
      raw.src_node = topology.node(captured.packet.route.front()).name;
    }
    raw.data = net::capture_to_wire(captured);
    store.record_packet(std::move(raw));
  }
}

}  // namespace excovery::core
