// File-based workflow: the way an experimenter actually uses ExCovery —
// author the experiment as an XML document, validate it against the
// shipped schema, execute it, and keep the single-file results database.
//
//   $ ./xml_workflow [description.xml]
//
// Without an argument the example writes a self-contained description
// (a two-SM discovery experiment with a message-loss manipulation) to
// ./experiment.xml first, so you can edit it and re-run.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/master.hpp"
#include "core/scenario.hpp"
#include "stats/analysis.hpp"
#include "stats/timeline.hpp"
#include "xml/parser.hpp"

using namespace excovery;

namespace {

const char* kDefaultDocument = R"(<?xml version="1.0" encoding="UTF-8"?>
<experiment name="xml-workflow-demo" seed="77">
  <parameterlist>
    <parameter key="sd_architecture">two-party</parameter>
    <parameter key="sd_protocol">mdns</parameter>
    <parameter key="sd_comm">active</parameter>
  </parameterlist>
  <nodelist>
    <node id="SM0" /><node id="SM1" /><node id="SU0" />
  </nodelist>
  <factorlist>
    <factor id="fact_nodes" type="actor_node_map" usage="blocking">
      <levels><level>
        <actor id="actor0">
          <instance id="0">SM0</instance>
          <instance id="1">SM1</instance>
        </actor>
        <actor id="actor1"><instance id="0">SU0</instance></actor>
      </level></levels>
    </factor>
    <factor usage="constant" id="fact_loss" type="double">
      <levels><level>0</level><level>0.4</level></levels>
    </factor>
    <replicationfactor usage="replication" type="int"
        id="fact_replication_id">6</replicationfactor>
  </factorlist>
  <processes>
    <node_process>
      <actor id="actor0" name="SM">
        <sd_actions>
          <sd_init role="SM" />
          <sd_start_publish />
          <wait_for_event>
            <event_dependency>"done"</event_dependency>
          </wait_for_event>
          <sd_stop_publish />
          <sd_exit />
        </sd_actions>
      </actor>
      <actor id="actor1" name="SU">
        <sd_actions>
          <wait_for_event>
            <from_dependency><node actor="actor0" instance="all"/>
            </from_dependency>
            <event_dependency>"sd_start_publish"</event_dependency>
          </wait_for_event>
          <sd_init role="SU" />
          <wait_marker />
          <sd_start_search />
          <wait_for_event>
            <event_dependency>"sd_service_add"</event_dependency>
            <param_dependency><node actor="actor0" instance="all"/>
            </param_dependency>
            <timeout>"10"</timeout>
          </wait_for_event>
          <event_flag><value>"done"</value></event_flag>
          <sd_stop_search />
          <sd_exit />
        </sd_actions>
      </actor>
    </node_process>
    <manipulation_process node="SU0">
      <actions>
        <fault_message_loss_start>
          <probability><factorref id="fact_loss" /></probability>
          <direction>both</direction>
          <randomseed><factorref id="fact_replication_id" /></randomseed>
        </fault_message_loss_start>
        <wait_for_event>
          <event_dependency>"done"</event_dependency>
        </wait_for_event>
        <fault_message_loss_stop />
      </actions>
    </manipulation_process>
  </processes>
  <platform>
    <actor_nodes>
      <node id="SM0" abstract="SM0" />
      <node id="SM1" abstract="SM1" />
      <node id="SU0" abstract="SU0" />
    </actor_nodes>
    <environment_nodes>
      <node id="ENV0" /><node id="ENV1" />
    </environment_nodes>
  </platform>
</experiment>
)";

}  // namespace

int main(int argc, char** argv) {
  std::string path = argc > 1 ? argv[1] : "experiment.xml";
  if (argc <= 1) {
    std::ofstream out(path, std::ios::trunc);
    out << kDefaultDocument;
    std::printf("wrote default description to %s (edit and re-run)\n\n",
                path.c_str());
  }

  // Load and parse the document from disk.
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();

  Result<core::ExperimentDescription> description =
      core::ExperimentDescription::parse(buffer.str());
  if (!description.ok()) {
    std::fprintf(stderr, "description invalid: %s\n",
                 description.error().to_string().c_str());
    return 1;
  }
  std::printf("parsed '%s': %zu abstract nodes, %zu factors, %d "
              "replications, protocol=%s\n",
              description.value().name.c_str(),
              description.value().abstract_nodes.size(),
              description.value().factors.size(),
              description.value().replications,
              description.value().info("sd_protocol").c_str());

  // Platform and execution.
  Result<net::Topology> topology =
      core::scenario::topology_for(description.value(), {});
  if (!topology.ok()) {
    std::fprintf(stderr, "%s\n", topology.error().to_string().c_str());
    return 1;
  }
  core::SimPlatformConfig config;
  config.topology = std::move(topology).value();
  config.seed = description.value().seed;
  Result<std::unique_ptr<core::SimPlatform>> platform =
      core::SimPlatform::create(description.value(), std::move(config));
  if (!platform.ok()) {
    std::fprintf(stderr, "%s\n", platform.error().to_string().c_str());
    return 1;
  }
  core::ExperiMaster master(description.value(), *platform.value());
  std::printf("executing %zu runs...\n", master.plan().run_count());
  Result<storage::ExperimentPackage> package = master.execute();
  if (!package.ok()) {
    std::fprintf(stderr, "%s\n", package.error().to_string().c_str());
    return 1;
  }

  // Analysis + timeline of the first run.
  Result<stats::Proportion> responsiveness =
      stats::responsiveness(package.value(), 10.0, 2);
  if (responsiveness.ok()) {
    std::printf("\nboth SMs found within 10 s: %.2f [%.2f..%.2f] "
                "(%zu/%zu runs)\n",
                responsiveness.value().estimate,
                responsiveness.value().lower, responsiveness.value().upper,
                responsiveness.value().successes,
                responsiveness.value().trials);
  }
  stats::TimelineOptions timeline_options;
  timeline_options.marker_events = {"sd_start_publish", "sd_start_search",
                                    "sd_service_add", "done"};
  Result<std::string> timeline =
      stats::render_timeline(package.value(), 1, timeline_options);
  if (timeline.ok()) std::printf("\n%s", timeline.value().c_str());

  // Persist the level-3 database next to the description.
  std::string db_path = path + ".excovery";
  if (package.value().save(db_path).ok()) {
    std::printf("\nresults database: %s\n", db_path.c_str());
  }
  return 0;
}
