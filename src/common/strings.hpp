// Small string helpers shared across modules.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace excovery::strings {

/// Remove leading/trailing ASCII whitespace.
std::string trim(std::string_view s);

/// Remove one pair of surrounding double quotes, if present.  The paper's
/// XML listings quote scalar values ("done", "30"); descriptions accept both
/// quoted and bare forms.
std::string strip_quotes(std::string_view s);

/// ASCII lower-case copy.
std::string to_lower(std::string_view s);

/// Split on a separator character; empty fields are kept.
std::vector<std::string> split(std::string_view s, char sep);

/// True if `s` starts with / ends with the given prefix/suffix.
bool starts_with(std::string_view s, std::string_view prefix) noexcept;
bool ends_with(std::string_view s, std::string_view suffix) noexcept;

/// Join items with a separator.
std::string join(const std::vector<std::string>& items, std::string_view sep);

/// Shortest round-trippable rendering of a double ("1.5", "0.001", "3").
std::string format_double(double d);

/// Lower-case hex encoding / decoding of raw bytes.
std::string to_hex(const std::vector<std::uint8_t>& bytes);
std::vector<std::uint8_t> from_hex(std::string_view hex);

/// printf-style formatting into a std::string.
std::string format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace excovery::strings
