// Unit tests for treatment plan generation (§IV-C1).
#include <gtest/gtest.h>

#include "core/plan.hpp"

namespace excovery::core {
namespace {

Factor int_factor(std::string id, std::vector<std::int64_t> levels,
                  FactorUsage usage = FactorUsage::kConstant) {
  Factor factor;
  factor.id = std::move(id);
  factor.type = "int";
  factor.usage = usage;
  for (std::int64_t level : levels) factor.levels.emplace_back(level);
  return factor;
}

ExperimentDescription base_description() {
  ExperimentDescription description;
  description.name = "plan-test";
  description.seed = 11;
  description.abstract_nodes = {"A"};
  description.replications = 2;
  description.replication_factor_id = "rep";
  return description;
}

TEST(Plan, CartesianProductTimesReplications) {
  ExperimentDescription description = base_description();
  description.factors.push_back(int_factor("f1", {1, 2}));
  description.factors.push_back(int_factor("f2", {10, 20, 30}));

  Result<TreatmentPlan> plan = TreatmentPlan::generate(description);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().treatment_count(), 6u);
  EXPECT_EQ(plan.value().run_count(), 12u);
  EXPECT_EQ(plan.value().replications(), 2);
}

TEST(Plan, OfatOrderFirstFactorVariesLeast) {
  ExperimentDescription description = base_description();
  description.replications = 1;
  description.factors.push_back(int_factor("first", {1, 2}));
  description.factors.push_back(int_factor("last", {10, 20}));

  Result<TreatmentPlan> plan = TreatmentPlan::generate(description);
  ASSERT_TRUE(plan.ok());
  const auto& runs = plan.value().runs();
  ASSERT_EQ(runs.size(), 4u);
  // "the first factor varies least often during execution while the last
  // factor changes every run" (§IV-C).
  EXPECT_EQ(runs[0].treatment.level_int("first").value(), 1);
  EXPECT_EQ(runs[0].treatment.level_int("last").value(), 10);
  EXPECT_EQ(runs[1].treatment.level_int("first").value(), 1);
  EXPECT_EQ(runs[1].treatment.level_int("last").value(), 20);
  EXPECT_EQ(runs[2].treatment.level_int("first").value(), 2);
  EXPECT_EQ(runs[2].treatment.level_int("last").value(), 10);
  EXPECT_EQ(runs[3].treatment.level_int("first").value(), 2);
}

TEST(Plan, ReplicationsAreInnermost) {
  ExperimentDescription description = base_description();
  description.replications = 3;
  description.factors.push_back(int_factor("f", {1, 2}));

  Result<TreatmentPlan> plan = TreatmentPlan::generate(description);
  ASSERT_TRUE(plan.ok());
  const auto& runs = plan.value().runs();
  ASSERT_EQ(runs.size(), 6u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(runs[static_cast<std::size_t>(i)].replication, i);
    EXPECT_EQ(runs[static_cast<std::size_t>(i)].treatment_index, 0);
  }
  EXPECT_EQ(runs[3].treatment_index, 1);
  // Run ids are sequential from 1 (execution order).
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].run_id, static_cast<std::int64_t>(i + 1));
  }
}

TEST(Plan, ReplicationIndexExposedAsFactorLevel) {
  ExperimentDescription description = base_description();
  description.replications = 2;
  Result<TreatmentPlan> plan = TreatmentPlan::generate(description);
  ASSERT_TRUE(plan.ok());
  // Fig. 7 uses factorref to the replication id for traffic seeds.
  EXPECT_EQ(plan.value().runs()[0].treatment.level_int("rep").value(), 0);
  EXPECT_EQ(plan.value().runs()[1].treatment.level_int("rep").value(), 1);
}

TEST(Plan, BlockingFactorsHoistedOutermost) {
  ExperimentDescription description = base_description();
  description.replications = 1;
  description.factors.push_back(int_factor("varied", {1, 2}));
  description.factors.push_back(
      int_factor("block", {100, 200}, FactorUsage::kBlocking));

  Result<TreatmentPlan> plan = TreatmentPlan::generate(description);
  ASSERT_TRUE(plan.ok());
  const auto& runs = plan.value().runs();
  ASSERT_EQ(runs.size(), 4u);
  // Despite being listed last, the blocking factor varies slowest.
  EXPECT_EQ(runs[0].treatment.level_int("block").value(), 100);
  EXPECT_EQ(runs[1].treatment.level_int("block").value(), 100);
  EXPECT_EQ(runs[2].treatment.level_int("block").value(), 200);
  EXPECT_EQ(runs[0].treatment.level_int("varied").value(), 1);
  EXPECT_EQ(runs[1].treatment.level_int("varied").value(), 2);
}

TEST(Plan, RandomFactorLevelsShuffledDeterministically) {
  ExperimentDescription description = base_description();
  description.replications = 1;
  description.factors.push_back(
      int_factor("r", {1, 2, 3, 4, 5, 6, 7, 8}, FactorUsage::kRandom));

  Result<TreatmentPlan> a = TreatmentPlan::generate(description);
  Result<TreatmentPlan> b = TreatmentPlan::generate(description);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  std::vector<std::int64_t> order_a;
  std::vector<std::int64_t> order_b;
  for (const RunSpec& run : a.value().runs()) {
    order_a.push_back(run.treatment.level_int("r").value());
  }
  for (const RunSpec& run : b.value().runs()) {
    order_b.push_back(run.treatment.level_int("r").value());
  }
  // Same seed: identical ("perfect repeatability", §IV-C1).
  EXPECT_EQ(order_a, order_b);
  // All levels appear exactly once.
  std::vector<std::int64_t> sorted = order_a;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<std::int64_t>{1, 2, 3, 4, 5, 6, 7, 8}));
  // Different seed: different order (with overwhelming probability).
  description.seed = 12;
  Result<TreatmentPlan> c = TreatmentPlan::generate(description);
  ASSERT_TRUE(c.ok());
  std::vector<std::int64_t> order_c;
  for (const RunSpec& run : c.value().runs()) {
    order_c.push_back(run.treatment.level_int("r").value());
  }
  EXPECT_NE(order_a, order_c);
}

TEST(Plan, ActorMapResolvedPerRun) {
  ExperimentDescription description = base_description();
  description.abstract_nodes = {"A", "B", "C"};
  description.node_factor_id = "fact_nodes";
  Factor nodes;
  nodes.id = "fact_nodes";
  nodes.type = "actor_node_map";
  nodes.usage = FactorUsage::kBlocking;
  ValueMap level1;
  level1.emplace("actor0", Value{ValueArray{Value{"A"}, Value{"B"}}});
  level1.emplace("actor1", Value{ValueArray{Value{"C"}}});
  ValueMap level2;
  level2.emplace("actor0", Value{ValueArray{Value{"A"}}});
  level2.emplace("actor1", Value{ValueArray{Value{"B"}}});
  nodes.levels.push_back(Value{level1});
  nodes.levels.push_back(Value{level2});
  description.factors.push_back(std::move(nodes));
  description.replications = 1;

  Result<TreatmentPlan> plan = TreatmentPlan::generate(description);
  ASSERT_TRUE(plan.ok());
  ASSERT_EQ(plan.value().run_count(), 2u);
  const RunSpec& first = plan.value().runs()[0];
  EXPECT_EQ(first.actor_map.at("actor0"),
            (std::vector<std::string>{"A", "B"}));
  EXPECT_EQ(first.acting_nodes(),
            (std::vector<std::string>{"A", "B", "C"}));
  const RunSpec& second = plan.value().runs()[1];
  EXPECT_EQ(second.acting_nodes(), (std::vector<std::string>{"A", "B"}));
}

TEST(Plan, ActingNodesCachedSortedAndDeduped) {
  RunSpec run;
  // Duplicates across actors and unsorted instance lists.
  run.actor_map.emplace("actor0", std::vector<std::string>{"C", "A", "B"});
  run.actor_map.emplace("actor1", std::vector<std::string>{"B", "A"});
  const std::vector<std::string>& nodes = run.acting_nodes();
  EXPECT_EQ(nodes, (std::vector<std::string>{"A", "B", "C"}));
  EXPECT_TRUE(std::is_sorted(nodes.begin(), nodes.end()));
  // Repeated calls reuse the cached vector (same storage, same contents).
  EXPECT_EQ(&run.acting_nodes(), &nodes);
  // Mutation requires explicit invalidation.
  run.actor_map.emplace("actor2", std::vector<std::string>{"D"});
  EXPECT_EQ(run.acting_nodes(), (std::vector<std::string>{"A", "B", "C"}));
  run.invalidate_acting_nodes();
  EXPECT_EQ(run.acting_nodes(),
            (std::vector<std::string>{"A", "B", "C", "D"}));
}

TEST(Plan, NoFactorsStillReplicates) {
  ExperimentDescription description = base_description();
  description.replications = 5;
  Result<TreatmentPlan> plan = TreatmentPlan::generate(description);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan.value().run_count(), 5u);
  EXPECT_EQ(plan.value().treatment_count(), 1u);
}

TEST(Plan, RemainingSupportsResume) {
  ExperimentDescription description = base_description();
  description.replications = 4;
  Result<TreatmentPlan> plan = TreatmentPlan::generate(description);
  ASSERT_TRUE(plan.ok());
  std::vector<const RunSpec*> remaining =
      plan.value().remaining({1, 3});
  ASSERT_EQ(remaining.size(), 2u);
  EXPECT_EQ(remaining[0]->run_id, 2);
  EXPECT_EQ(remaining[1]->run_id, 4);
  EXPECT_EQ(plan.value().remaining({}).size(), 4u);
  EXPECT_TRUE(plan.value().remaining({1, 2, 3, 4}).empty());
}

TEST(Plan, TreatmentLevelAccessors) {
  Treatment treatment;
  treatment.levels["i"] = Value{"42"};
  treatment.levels["d"] = Value{"0.5"};
  treatment.levels["s"] = Value{"text"};
  EXPECT_EQ(treatment.level_int("i").value(), 42);
  EXPECT_DOUBLE_EQ(treatment.level_double("d").value(), 0.5);
  EXPECT_EQ(treatment.level_text("s").value(), "text");
  EXPECT_FALSE(treatment.level("missing").ok());
  EXPECT_FALSE(treatment.level_int("s").ok());
}

TEST(Plan, FormatShowsHead) {
  ExperimentDescription description = base_description();
  description.replications = 20;
  Result<TreatmentPlan> plan = TreatmentPlan::generate(description);
  ASSERT_TRUE(plan.ok());
  std::string text = plan.value().format(3);
  EXPECT_NE(text.find("20 runs"), std::string::npos);
  EXPECT_NE(text.find("more runs"), std::string::npos);
}

}  // namespace
}  // namespace excovery::core
