#include "common/error.hpp"

namespace excovery {

std::string_view to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kParse: return "parse";
    case ErrorCode::kValidation: return "validation";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kState: return "state";
    case ErrorCode::kIo: return "io";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kRpc: return "rpc";
    case ErrorCode::kAborted: return "aborted";
    case ErrorCode::kUnsupported: return "unsupported";
    case ErrorCode::kInternal: return "internal";
  }
  return "unknown";
}

std::string Error::to_string() const {
  std::string out{excovery::to_string(code_)};
  out += ": ";
  out += message_;
  return out;
}

Error Error::with_context(std::string_view context) const {
  std::string msg{context};
  msg += ": ";
  msg += message_;
  return {code_, std::move(msg)};
}

}  // namespace excovery
