
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sd/cache.cpp" "src/sd/CMakeFiles/excovery_sd.dir/cache.cpp.o" "gcc" "src/sd/CMakeFiles/excovery_sd.dir/cache.cpp.o.d"
  "/root/repo/src/sd/hybrid.cpp" "src/sd/CMakeFiles/excovery_sd.dir/hybrid.cpp.o" "gcc" "src/sd/CMakeFiles/excovery_sd.dir/hybrid.cpp.o.d"
  "/root/repo/src/sd/mdns.cpp" "src/sd/CMakeFiles/excovery_sd.dir/mdns.cpp.o" "gcc" "src/sd/CMakeFiles/excovery_sd.dir/mdns.cpp.o.d"
  "/root/repo/src/sd/message.cpp" "src/sd/CMakeFiles/excovery_sd.dir/message.cpp.o" "gcc" "src/sd/CMakeFiles/excovery_sd.dir/message.cpp.o.d"
  "/root/repo/src/sd/model.cpp" "src/sd/CMakeFiles/excovery_sd.dir/model.cpp.o" "gcc" "src/sd/CMakeFiles/excovery_sd.dir/model.cpp.o.d"
  "/root/repo/src/sd/slp.cpp" "src/sd/CMakeFiles/excovery_sd.dir/slp.cpp.o" "gcc" "src/sd/CMakeFiles/excovery_sd.dir/slp.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/excovery_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/excovery_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/excovery_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
