file(REMOVE_RECURSE
  "CMakeFiles/excovery_sim.dir/clock.cpp.o"
  "CMakeFiles/excovery_sim.dir/clock.cpp.o.d"
  "CMakeFiles/excovery_sim.dir/event_bus.cpp.o"
  "CMakeFiles/excovery_sim.dir/event_bus.cpp.o.d"
  "CMakeFiles/excovery_sim.dir/scheduler.cpp.o"
  "CMakeFiles/excovery_sim.dir/scheduler.cpp.o.d"
  "CMakeFiles/excovery_sim.dir/time.cpp.o"
  "CMakeFiles/excovery_sim.dir/time.cpp.o.d"
  "libexcovery_sim.a"
  "libexcovery_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/excovery_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
