// Single-run execution engine, shared by the sequential and the sharded
// (run-parallel) paths of ExperiMaster (DESIGN.md §10).
//
// One RunExecutor drives runs on one platform instance — the master's own
// platform in sequential mode, a worker-owned replica in parallel mode.
// Every run starts from the same defined initial condition (§IV-C1):
//   * the scheduler is fast-forwarded to the run's canonical epoch, a
//     simulated-time slot derived from the run id alone, so timestamps do
//     not depend on which runs executed before on this instance;
//   * every order-dependent random stream is rebased on the per-run
//     substream (SimPlatform::begin_run);
//   * leftover packets/faults/traffic are cleared (reset_run_state).
// Together these make a run's recorded data a pure function of
// (description, platform config, run id, attempt) — the invariant the
// deterministic level-2 merge relies on.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "common/obs_switch.hpp"
#include "core/description.hpp"
#include "core/interpreter.hpp"
#include "core/plan.hpp"
#include "core/platform.hpp"
#include "obs/obs.hpp"

namespace excovery::core {

struct RunExecutorOptions {
  /// Attempts per run before the experiment gives up; also sizes the
  /// per-run epoch stride so retries never overrun the next run's slot.
  int max_attempts_per_run = 3;
  /// Simulated-time watchdog per run; a run whose processes have not all
  /// completed by then is aborted (and resumed/retried).
  sim::SimDuration run_watchdog = sim::SimDuration::from_seconds(300);
  /// Extra simulated settle time after the last process finishes, letting
  /// in-flight packets drain before clean-up.
  sim::SimDuration settle = sim::SimDuration::from_millis(200);
  /// Test hook: force the given (run_id, attempt) to abort mid-run.  May be
  /// invoked from worker threads in parallel mode.
  std::function<bool(std::int64_t run_id, int attempt)> abort_hook;
  /// Directory for post-mortem flight-recorder dumps (DESIGN.md §16): every
  /// failed attempt writes its lineage ring there as a readable artifact.
  /// Empty falls back to the EXCOVERY_FLIGHT_DIR environment variable; if
  /// that is unset too, no dumps are written.
  std::string flight_dir;
};

class RunExecutor : public ActionDispatcher {
 public:
  RunExecutor(const ExperimentDescription& description, SimPlatform& platform,
              RunExecutorOptions options);

  /// Canonical simulated-time start of a run: every run gets its own slot,
  /// wide enough for max_attempts_per_run worst-case attempts, so a run's
  /// timestamps are identical no matter which instance executes it.
  sim::SimTime run_epoch(std::int64_t run_id) const noexcept;

  /// Execute one run: fast-forward to its epoch, rebase the per-run RNG
  /// substreams, then run preparation / execution / clean-up.  Marks the
  /// run complete in the platform's level-2 store on success.
  Status execute_run(const RunSpec& run, int attempt = 1);

  /// Attach observability: per-attempt kernel/network/fault deltas are
  /// recorded into `shard` (or, when `shard` is null, into the context's
  /// locked fallback shard), run spans go to the context's trace buffer,
  /// and deterministic per-run values to its ledger.  Enables per-link
  /// packet statistics on the platform's network, full lineage-graph
  /// retention for provenance extraction (each successful attempt's
  /// critical paths land in the context's provenance ledger), and — when
  /// the context asks for packet traces — installs the per-packet
  /// lifecycle hook.  Compiled to a no-op when EXCOVERY_OBS is off.
  void attach_obs(obs::ObsContext* context, obs::MetricsShard* shard);

  SimPlatform& platform() noexcept { return platform_; }

 private:
  // ActionDispatcher implementation ----------------------------------------
  Status node_action(const std::string& concrete_node,
                     const std::string& method, ValueMap params) override;
  Status env_action(const std::string& method, ValueMap params) override;

  Status prepare_run(const RunSpec& run);
  Status run_processes(const RunSpec& run, int attempt);
  Status cleanup_run(const RunSpec& run);

#if EXCOVERY_OBS_ENABLED
  /// Snapshot of the monotonic kernel counters, taken right after the
  /// fast-forward to the run epoch so the recorded deltas cover exactly one
  /// attempt (epoch drains of leftover gated timers are excluded).
  struct KernelSample {
    std::uint64_t executed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t published = 0;
    std::uint64_t dispatched = 0;
    std::uint64_t activations = 0;
    /// Per-fault-kind counters (copied: the live map keeps growing).
    std::map<std::string, faults::FaultKindStats> kind_stats;
  };
  KernelSample sample_kernel() const;
  void record_attempt_obs(const RunSpec& run, const Status& status,
                          const KernelSample& before, std::int64_t sim_start_ns,
                          std::int64_t wall_start_ns);
  void on_packet_trace(const net::PacketTraceEvent& event);
  /// Failed attempt: dump the lineage ring to the flight directory (no-op
  /// when none is configured).
  void dump_flight_recorder(const Status& failure);
#endif

  const ExperimentDescription& description_;
  SimPlatform& platform_;
  RunExecutorOptions options_;
  const RunSpec* current_run_ = nullptr;
  faults::FaultHandle env_drop_all_;
  faults::FaultHandle env_partition_;
  obs::ObsContext* obs_ = nullptr;
  obs::MetricsShard* obs_shard_ = nullptr;
};

}  // namespace excovery::core
