#include "storage/package.hpp"

#include <algorithm>

namespace excovery::storage {

namespace {

TableSchema experiment_info_schema() {
  return {"ExperimentInfo",
          {{"ExpXML", ValueType::kString, false},
           {"EEVersion", ValueType::kString, false},
           {"Name", ValueType::kString, false},
           {"Comment", ValueType::kString, true}}};
}
TableSchema logs_schema() {
  return {"Logs",
          {{"NodeID", ValueType::kString, false},
           {"Log", ValueType::kString, false}}};
}
TableSchema ee_files_schema() {
  return {"EEFiles",
          {{"ID", ValueType::kString, false},
           {"File", ValueType::kBytes, false}}};
}
TableSchema experiment_measurements_schema() {
  return {"ExperimentMeasurements",
          {{"ID", ValueType::kInt, false},
           {"NodeID", ValueType::kString, false},
           {"Name", ValueType::kString, false},
           {"Content", ValueType::kString, true}}};
}
TableSchema run_infos_schema() {
  return {"RunInfos",
          {{"RunID", ValueType::kInt, false},
           {"NodeID", ValueType::kString, false},
           {"StartTime", ValueType::kDouble, false},
           {"TimeDiff", ValueType::kDouble, false}}};
}
TableSchema extra_run_measurements_schema() {
  return {"ExtraRunMeasurements",
          {{"RunID", ValueType::kInt, false},
           {"NodeID", ValueType::kString, false},
           {"Name", ValueType::kString, false},
           {"Content", ValueType::kString, true}}};
}
TableSchema events_schema() {
  return {"Events",
          {{"RunID", ValueType::kInt, false},
           {"NodeID", ValueType::kString, false},
           {"CommonTime", ValueType::kDouble, false},
           {"EventType", ValueType::kString, false},
           {"Parameter", ValueType::kString, true}}};
}
TableSchema packets_schema() {
  return {"Packets",
          {{"RunID", ValueType::kInt, false},
           {"NodeID", ValueType::kString, false},
           {"CommonTime", ValueType::kDouble, false},
           {"SrcNodeID", ValueType::kString, false},
           {"Data", ValueType::kBytes, false}}};
}

TableSchema metrics_schema() {
  return {"Metrics",
          {{"RunID", ValueType::kInt, false},
           {"Name", ValueType::kString, false},
           {"Value", ValueType::kDouble, false}}};
}

TableSchema provenance_schema() {
  return {"Provenance",
          {{"RunID", ValueType::kInt, false},
           {"Path", ValueType::kInt, false},
           {"Seq", ValueType::kInt, false},
           {"Kind", ValueType::kString, false},
           {"NodeID", ValueType::kString, false},
           {"Detail", ValueType::kString, true},
           {"Time", ValueType::kDouble, false},
           {"Latency", ValueType::kDouble, false}}};
}

// The Metrics and Provenance tables are deliberately absent here: packages
// written before they existed must keep loading.
const char* kRequiredTables[] = {
    "ExperimentInfo", "Logs",      "EEFiles",
    "ExperimentMeasurements",      "RunInfos",
    "ExtraRunMeasurements",        "Events",
    "Packets"};

}  // namespace

ExperimentPackage::ExperimentPackage() {
  // Creation of the canonical schema cannot fail on an empty database.
  (void)db_.create_table(experiment_info_schema());
  (void)db_.create_table(logs_schema());
  (void)db_.create_table(ee_files_schema());
  (void)db_.create_table(experiment_measurements_schema());
  (void)db_.create_table(run_infos_schema());
  (void)db_.create_table(extra_run_measurements_schema());
  (void)db_.create_table(events_schema());
  (void)db_.create_table(packets_schema());
  (void)db_.create_table(metrics_schema());
  (void)db_.create_table(provenance_schema());
}

Result<ExperimentPackage> ExperimentPackage::from_database(Database db) {
  ExperimentPackage package(std::move(db));
  EXC_TRY(package.check_schema());
  return package;
}

Result<ExperimentPackage> ExperimentPackage::load(const std::string& path) {
  EXC_ASSIGN_OR_RETURN(Database db, Database::load(path));
  return from_database(std::move(db));
}

Status ExperimentPackage::check_schema() const {
  for (const char* name : kRequiredTables) {
    if (!db_.table(name)) {
      return err_validation(std::string("package missing table '") + name +
                            "'");
    }
  }
  return {};
}

Status ExperimentPackage::set_experiment_info(
    const std::string& description_xml, const std::string& name,
    const std::string& comment) {
  Table* info = db_.table("ExperimentInfo");
  if (info->row_count() != 0) {
    return err_state("ExperimentInfo already set (single-tuple table)");
  }
  return info->insert(
      {Value{description_xml}, Value{kEeVersion}, Value{name}, Value{comment}});
}

Result<std::string> ExperimentPackage::description_xml() const {
  const Table* info = db_.table("ExperimentInfo");
  if (info->row_count() != 1) return err_state("ExperimentInfo not set");
  return std::string(info->row(0).as_string(0));
}

Result<std::string> ExperimentPackage::experiment_name() const {
  const Table* info = db_.table("ExperimentInfo");
  if (info->row_count() != 1) return err_state("ExperimentInfo not set");
  return std::string(info->row(0).as_string(2));
}

Result<std::string> ExperimentPackage::ee_version() const {
  const Table* info = db_.table("ExperimentInfo");
  if (info->row_count() != 1) return err_state("ExperimentInfo not set");
  return std::string(info->row(0).as_string(1));
}

Status ExperimentPackage::add_log(const std::string& node_id,
                                  const std::string& log_text) {
  return db_.table("Logs")->insert({Value{node_id}, Value{log_text}});
}

Status ExperimentPackage::add_ee_file(const std::string& id, Bytes contents) {
  return db_.table("EEFiles")->insert({Value{id}, Value{std::move(contents)}});
}

Status ExperimentPackage::add_experiment_measurement(std::int64_t id,
                                                     const std::string& node_id,
                                                     const std::string& name,
                                                     const std::string& content) {
  return db_.table("ExperimentMeasurements")
      ->insert({Value{id}, Value{node_id}, Value{name}, Value{content}});
}

Status ExperimentPackage::add_run_info(const RunInfoRow& info) {
  return db_.table("RunInfos")
      ->insert({Value{info.run_id}, Value{info.node_id},
                Value{info.start_time}, Value{info.time_diff}});
}

Status ExperimentPackage::add_extra_run_measurement(std::int64_t run_id,
                                                    const std::string& node_id,
                                                    const std::string& name,
                                                    const std::string& content) {
  return db_.table("ExtraRunMeasurements")
      ->insert({Value{run_id}, Value{node_id}, Value{name}, Value{content}});
}

Status ExperimentPackage::add_event(const EventRow& event) {
  return db_.table("Events")->insert(
      {Value{event.run_id}, Value{event.node_id}, Value{event.common_time},
       Value{event.event_type}, Value{event.parameter}});
}

Status ExperimentPackage::add_packet(const PacketRow& packet) {
  return db_.table("Packets")->insert(
      {Value{packet.run_id}, Value{packet.node_id}, Value{packet.common_time},
       Value{packet.src_node_id}, Value{packet.data}});
}

Status ExperimentPackage::add_metric(std::int64_t run_id,
                                     const std::string& name, double value) {
  Table* table = db_.table("Metrics");
  if (!table) {
    // Loaded legacy package: materialise the table on first write.
    EXC_ASSIGN_OR_RETURN(table, db_.create_table(metrics_schema()));
  }
  return table->insert({Value{run_id}, Value{name}, Value{value}});
}

Status ExperimentPackage::add_provenance(const ProvenanceRow& row) {
  Table* table = db_.table("Provenance");
  if (!table) {
    // Loaded legacy package: materialise the table on first write.
    EXC_ASSIGN_OR_RETURN(table, db_.create_table(provenance_schema()));
  }
  return table->insert({Value{row.run_id}, Value{row.path}, Value{row.seq},
                        Value{row.kind}, Value{row.node_id},
                        Value{row.detail}, Value{row.time},
                        Value{row.latency}});
}

std::vector<ProvenanceRow> ExperimentPackage::provenance() const {
  const Table* table = db_.table("Provenance");
  std::vector<ProvenanceRow> out;
  if (!table) return out;
  out.reserve(table->row_count());
  for (std::size_t r = 0; r < table->row_count(); ++r) {
    RowView row = table->row(r);
    ProvenanceRow step;
    step.run_id = row.as_int(0);
    step.path = row.as_int(1);
    step.seq = row.as_int(2);
    step.kind = std::string(row.as_string(3));
    step.node_id = std::string(row.as_string(4));
    step.detail = row.is_null(5) ? "" : std::string(row.as_string(5));
    step.time = row.as_double(6);
    step.latency = row.as_double(7);
    out.push_back(std::move(step));
  }
  return out;
}

std::vector<MetricRow> ExperimentPackage::metrics() const {
  const Table* table = db_.table("Metrics");
  std::vector<MetricRow> out;
  if (!table) return out;
  out.reserve(table->row_count());
  for (std::size_t r = 0; r < table->row_count(); ++r) {
    RowView row = table->row(r);
    MetricRow metric;
    metric.run_id = row.as_int(0);
    metric.name = std::string(row.as_string(1));
    metric.value = row.as_double(2);
    out.push_back(std::move(metric));
  }
  return out;
}

namespace {
EventRow event_from_row(const RowView& row) {
  EventRow event;
  event.run_id = row.as_int(0);
  event.node_id = std::string(row.as_string(1));
  event.common_time = row.as_double(2);
  event.event_type = std::string(row.as_string(3));
  event.parameter = row.is_null(4) ? "" : std::string(row.as_string(4));
  return event;
}
PacketRow packet_from_row(const RowView& row) {
  PacketRow packet;
  packet.run_id = row.as_int(0);
  packet.node_id = std::string(row.as_string(1));
  packet.common_time = row.as_double(2);
  packet.src_node_id = std::string(row.as_string(3));
  packet.data = row.as_bytes(4);
  return packet;
}
}  // namespace

Result<std::vector<EventRow>> ExperimentPackage::events(
    std::int64_t run_id) const {
  const Table* table = db_.table("Events");
  std::vector<RowView> rows = table->select_equals("RunID", Value{run_id});
  std::stable_sort(rows.begin(), rows.end(),
                   [](const RowView& a, const RowView& b) {
                     return a.as_double(2) < b.as_double(2);
                   });
  std::vector<EventRow> out;
  out.reserve(rows.size());
  for (const RowView& row : rows) out.push_back(event_from_row(row));
  return out;
}

Result<std::vector<EventRow>> ExperimentPackage::all_events() const {
  const Table* table = db_.table("Events");
  std::vector<RowView> rows;
  rows.reserve(table->row_count());
  for (std::size_t r = 0; r < table->row_count(); ++r) {
    rows.push_back(table->row(r));
  }
  std::stable_sort(rows.begin(), rows.end(),
                   [](const RowView& a, const RowView& b) {
                     if (a.as_int(0) != b.as_int(0)) {
                       return a.as_int(0) < b.as_int(0);
                     }
                     return a.as_double(2) < b.as_double(2);
                   });
  std::vector<EventRow> out;
  out.reserve(rows.size());
  for (const RowView& row : rows) out.push_back(event_from_row(row));
  return out;
}

Result<std::vector<PacketRow>> ExperimentPackage::packets(
    std::int64_t run_id) const {
  const Table* table = db_.table("Packets");
  std::vector<RowView> rows = table->select_equals("RunID", Value{run_id});
  std::stable_sort(rows.begin(), rows.end(),
                   [](const RowView& a, const RowView& b) {
                     return a.as_double(2) < b.as_double(2);
                   });
  std::vector<PacketRow> out;
  out.reserve(rows.size());
  for (const RowView& row : rows) out.push_back(packet_from_row(row));
  return out;
}

Result<std::vector<RunInfoRow>> ExperimentPackage::run_infos() const {
  const Table* table = db_.table("RunInfos");
  std::vector<RunInfoRow> out;
  out.reserve(table->row_count());
  for (std::size_t r = 0; r < table->row_count(); ++r) {
    RowView row = table->row(r);
    RunInfoRow info;
    info.run_id = row.as_int(0);
    info.node_id = std::string(row.as_string(1));
    info.start_time = row.as_double(2);
    info.time_diff = row.as_double(3);
    out.push_back(std::move(info));
  }
  return out;
}

std::vector<std::int64_t> ExperimentPackage::run_ids() const {
  const Table* table = db_.table("RunInfos");
  std::vector<std::int64_t> out;
  out.reserve(table->row_count());
  for (std::size_t r = 0; r < table->row_count(); ++r) {
    out.push_back(table->row(r).as_int(0));
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string ExperimentPackage::log_for(const std::string& node_id) const {
  const Table* table = db_.table("Logs");
  std::vector<RowView> rows = table->select_equals("NodeID", Value{node_id});
  std::string out;
  for (const RowView& row : rows) out += row.as_string(1);
  return out;
}

std::size_t ExperimentPackage::event_count() const {
  return db_.table("Events")->row_count();
}

std::size_t ExperimentPackage::packet_count() const {
  return db_.table("Packets")->row_count();
}

}  // namespace excovery::storage
