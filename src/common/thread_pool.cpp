#include "common/thread_pool.hpp"

namespace excovery {

namespace {
#if EXCOVERY_OBS_ENABLED
std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
#endif
}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  if (workers == 0) {
    workers = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::enqueue(std::function<void()> fn) {
  QueuedTask task;
  task.fn = std::move(fn);
#if EXCOVERY_OBS_ENABLED
  if (observer_.load(std::memory_order_acquire) != nullptr) {
    task.enqueued_ns = steady_now_ns();
  }
#endif
  {
    std::lock_guard lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop() {
  for (;;) {
    QueuedTask task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
#if EXCOVERY_OBS_ENABLED
    if (ThreadPoolObserver* obs = observer_.load(std::memory_order_acquire)) {
      const std::int64_t start = steady_now_ns();
      const std::int64_t delay =
          task.enqueued_ns > 0 ? start - task.enqueued_ns : 0;
      task.fn();
      obs->on_task(delay, steady_now_ns() - start);
      continue;
    }
#endif
    task.fn();
  }
}

void ThreadPool::post(std::function<void()> task) { enqueue(std::move(task)); }

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  for (auto& f : futures) f.get();
}

}  // namespace excovery
