#include "faults/injector.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace excovery::faults {

Result<FaultDirection> parse_fault_direction(const std::string& text) {
  std::string t = strings::to_lower(strings::trim(strings::strip_quotes(text)));
  if (t == "receive" || t == "rx") return FaultDirection::kReceive;
  if (t == "transmit" || t == "tx") return FaultDirection::kTransmit;
  if (t == "both") return FaultDirection::kBoth;
  if (t == "random") return FaultDirection::kRandom;
  return err_invalid("unknown fault direction '" + text + "'");
}

std::string_view to_string(FaultDirection d) noexcept {
  switch (d) {
    case FaultDirection::kReceive: return "receive";
    case FaultDirection::kTransmit: return "transmit";
    case FaultDirection::kBoth: return "both";
    case FaultDirection::kRandom: return "random";
  }
  return "?";
}

bool is_experiment_packet(const net::Packet& packet,
                          net::Port port) noexcept {
  return packet.dst_port == port || packet.src_port == port;
}

Status validate(const TemporalSpec& temporal) {
  if (!(temporal.rate > 0.0) || temporal.rate > 1.0) {
    return err_invalid("temporal rate " + std::to_string(temporal.rate) +
                       " out of (0, 1]");
  }
  if (temporal.duration.has_value() && temporal.duration->nanos() <= 0) {
    return err_invalid("temporal duration must be positive, got " +
                       std::to_string(temporal.duration->nanos()) + "ns");
  }
  return {};
}

namespace {

/// Obs-gated counter bump for the per-kind fault statistics.
inline void count_one(std::uint64_t& counter) noexcept {
#if EXCOVERY_OBS_ENABLED
  ++counter;
#else
  (void)counter;
#endif
}

/// True only at the origin transmit of a packet (route holds just the
/// sender); relay transmits see the accumulated hop trace.
inline bool at_origin(const net::Packet& packet) noexcept {
  return packet.route.size() <= 1;
}

Status validate_ge(const GilbertElliott& model) {
  auto in_unit = [](double p) { return p >= 0.0 && p <= 1.0; };
  if (!in_unit(model.p_enter_bad) || !in_unit(model.p_exit_bad) ||
      !in_unit(model.loss_good) || !in_unit(model.loss_bad)) {
    return err_invalid("gilbert-elliott parameters out of [0,1]");
  }
  return {};
}

/// Generic fault whose activation installs state and whose deactivation
/// removes it, with lifecycle bookkeeping.
class GenericFault final : public ActiveFault {
 public:
  GenericFault(std::string kind, std::function<void()> activate,
               std::function<void()> deactivate)
      : kind_(std::move(kind)),
        activate_(std::move(activate)),
        deactivate_(std::move(deactivate)) {}

  ~GenericFault() override = default;

  void arm_immediately() {
    active_ = true;
    activate_();
  }

  /// Schedule activation window [start, start+length] on the scheduler.
  void arm_window(sim::Scheduler& scheduler, sim::SimDuration start,
                  sim::SimDuration length) {
    auto self = weak_self_.lock();
    scheduler.schedule(start, [this, self] {
      if (stopped_) return;
      active_ = true;
      activate_();
    });
    scheduler.schedule(start + length, [this, self] { stop(); });
  }

  void stop() override {
    if (stopped_) return;
    stopped_ = true;
    if (active_) {
      active_ = false;
      deactivate_();
    }
  }

  bool active() const override { return active_; }
  const std::string& kind() const override { return kind_; }

  /// GenericFault keeps itself alive across scheduled callbacks.
  void set_self(std::shared_ptr<GenericFault> self) { weak_self_ = self; }

 private:
  std::string kind_;
  std::function<void()> activate_;
  std::function<void()> deactivate_;
  bool active_ = false;
  bool stopped_ = false;
  std::weak_ptr<GenericFault> weak_self_;
};

}  // namespace

FaultInjector::FaultInjector(net::Network& network, net::Port experiment_port)
    : network_(network), experiment_port_(experiment_port) {}

void FaultInjector::emit(const std::string& node, const std::string& event,
                         const Value& parameter) {
  if (sink_) sink_(node, event, parameter);
}

FaultDirection FaultInjector::resolve_direction(FaultDirection dir,
                                                std::uint64_t seed) const {
  if (dir != FaultDirection::kRandom) return dir;
  std::uint64_t state = seed ^ 0xD1CEu;
  return (splitmix64(state) & 1) ? FaultDirection::kReceive
                                 : FaultDirection::kTransmit;
}

FaultHandle FaultInjector::schedule(std::string kind,
                                    const std::string& node_name,
                                    const TemporalSpec& temporal,
                                    std::function<void()> activate,
                                    std::function<void()> deactivate) {
  std::string start_event = "fault_" + kind + "_start";
  std::string stop_event = "fault_" + kind + "_stop";
  FaultKindStats& kind_stats = stats_for(kind);
  auto fault = std::make_shared<GenericFault>(
      std::move(kind),
      [this, node_name, start_event, &kind_stats,
       activate = std::move(activate)] {
        activate();
#if EXCOVERY_OBS_ENABLED
        ++activations_;
#endif
        count_one(kind_stats.activations);
        emit(node_name, start_event, Value{});
      },
      [this, node_name, stop_event, &kind_stats,
       deactivate = std::move(deactivate)] {
        deactivate();
        count_one(kind_stats.deactivations);
        emit(node_name, stop_event, Value{});
      });
  fault->set_self(fault);
  registered_.push_back(fault);

  if (!temporal.duration.has_value()) {
    // "Every fault injection ... is started only once and without a given
    // duration, needs to be explicitly stopped."
    fault->arm_immediately();
  } else {
    double rate = std::clamp(temporal.rate, 0.0, 1.0);
    auto window = static_cast<double>(temporal.duration->nanos());
    auto active_len = static_cast<std::int64_t>(window * rate);
    std::int64_t slack = temporal.duration->nanos() - active_len;
    Pcg32 rng = RngFactory(temporal.randomseed).stream("fault-window");
    std::int64_t start =
        slack > 0 ? rng.uniform_int(0, slack) : 0;
    fault->arm_window(network_.scheduler(), sim::SimDuration(start),
                      sim::SimDuration(active_len));
  }
  return fault;
}

Result<FaultHandle> FaultInjector::interface_fault(
    net::NodeId node, FaultDirection dir, const TemporalSpec& temporal) {
  if (node >= network_.node_count()) {
    return err_invalid("interface_fault: unknown node " + std::to_string(node));
  }
  EXC_TRY(validate(temporal));
  FaultDirection resolved = resolve_direction(dir, temporal.randomseed);
  std::string name = network_.topology().node(node).name;
  bool affect_rx =
      resolved == FaultDirection::kReceive || resolved == FaultDirection::kBoth;
  bool affect_tx = resolved == FaultDirection::kTransmit ||
                   resolved == FaultDirection::kBoth;
  return schedule(
      "interface", name, temporal,
      [this, node, affect_rx, affect_tx] {
        if (affect_rx) {
          network_.set_interface_up(node, net::Direction::kReceive, false);
        }
        if (affect_tx) {
          network_.set_interface_up(node, net::Direction::kTransmit, false);
        }
      },
      [this, node, affect_rx, affect_tx] {
        if (affect_rx) {
          network_.set_interface_up(node, net::Direction::kReceive, true);
        }
        if (affect_tx) {
          network_.set_interface_up(node, net::Direction::kTransmit, true);
        }
      });
}

Result<FaultHandle> FaultInjector::message_loss(net::NodeId node,
                                                double probability,
                                                FaultDirection dir,
                                                const TemporalSpec& temporal) {
  if (node >= network_.node_count()) {
    return err_invalid("message_loss: unknown node " + std::to_string(node));
  }
  if (probability < 0.0 || probability > 1.0) {
    return err_invalid("message_loss: probability out of [0,1]");
  }
  EXC_TRY(validate(temporal));
  FaultDirection resolved = resolve_direction(dir, temporal.randomseed);
  std::string name = network_.topology().node(node).name;
  // Loss decisions draw from a dedicated deterministic stream.
  auto rng = std::make_shared<Pcg32>(
      RngFactory(temporal.randomseed ^ fnv1a64(name)).stream("message-loss"));
  auto handle = std::make_shared<net::FilterHandle>();
  net::Port port = experiment_port_;
  FaultKindStats& ks = stats_for("message_loss");
  return schedule(
      "message_loss", name, temporal,
      [this, node, resolved, probability, rng, handle, port, &ks] {
        std::optional<net::Direction> scope_dir;
        if (resolved == FaultDirection::kReceive) {
          scope_dir = net::Direction::kReceive;
        } else if (resolved == FaultDirection::kTransmit) {
          scope_dir = net::Direction::kTransmit;
        }
        *handle = network_.add_filter(
            net::FilterScope{node, scope_dir},
            [rng, probability, port, &ks](net::NodeId, net::Direction,
                                          net::Packet& packet) {
              if (!is_experiment_packet(packet, port)) {
                return net::FilterVerdict::pass();
              }
              if (rng->bernoulli(probability)) {
                count_one(ks.packets_dropped);
                return net::FilterVerdict::drop("fault:message_loss");
              }
              return net::FilterVerdict::pass();
            });
      },
      [this, handle] { network_.remove_filter(*handle); });
}

Result<FaultHandle> FaultInjector::message_delay(net::NodeId node,
                                                 sim::SimDuration delay,
                                                 const TemporalSpec& temporal) {
  if (node >= network_.node_count()) {
    return err_invalid("message_delay: unknown node " + std::to_string(node));
  }
  EXC_TRY(validate(temporal));
  std::string name = network_.topology().node(node).name;
  auto handle = std::make_shared<net::FilterHandle>();
  net::Port port = experiment_port_;
  FaultKindStats& ks = stats_for("message_delay");
  return schedule(
      "message_delay", name, temporal,
      [this, node, delay, handle, port, &ks] {
        *handle = network_.add_filter(
            net::FilterScope{node, std::nullopt},
            [delay, port, &ks](net::NodeId, net::Direction,
                               net::Packet& packet) {
              if (!is_experiment_packet(packet, port)) {
                return net::FilterVerdict::pass();
              }
              count_one(ks.packets_delayed);
              return net::FilterVerdict::delayed(delay);
            });
      },
      [this, handle] { network_.remove_filter(*handle); });
}

Result<FaultHandle> FaultInjector::path_loss(net::NodeId node,
                                             net::NodeId peer,
                                             double probability,
                                             const TemporalSpec& temporal) {
  if (node >= network_.node_count() || peer >= network_.node_count()) {
    return err_invalid("path_loss: unknown node");
  }
  if (probability < 0.0 || probability > 1.0) {
    return err_invalid("path_loss: probability out of [0,1]");
  }
  EXC_TRY(validate(temporal));
  std::string name = network_.topology().node(node).name;
  net::Address peer_addr = network_.topology().node(peer).address;
  auto rng = std::make_shared<Pcg32>(
      RngFactory(temporal.randomseed ^ fnv1a64(name)).stream("path-loss"));
  auto handle = std::make_shared<net::FilterHandle>();
  net::Port port = experiment_port_;
  FaultKindStats& ks = stats_for("path_loss");
  return schedule(
      "path_loss", name, temporal,
      [this, node, peer_addr, probability, rng, handle, port, &ks] {
        *handle = network_.add_filter(
            net::FilterScope{node, std::nullopt},
            [rng, probability, peer_addr, port, &ks](
                net::NodeId, net::Direction, net::Packet& packet) {
              if (!is_experiment_packet(packet, port)) {
                return net::FilterVerdict::pass();
              }
              if (packet.src != peer_addr && packet.dst != peer_addr) {
                return net::FilterVerdict::pass();
              }
              if (rng->bernoulli(probability)) {
                count_one(ks.packets_dropped);
                return net::FilterVerdict::drop("fault:path_loss");
              }
              return net::FilterVerdict::pass();
            });
      },
      [this, handle] { network_.remove_filter(*handle); });
}

Result<FaultHandle> FaultInjector::path_delay(net::NodeId node,
                                              net::NodeId peer,
                                              sim::SimDuration delay,
                                              const TemporalSpec& temporal) {
  if (node >= network_.node_count() || peer >= network_.node_count()) {
    return err_invalid("path_delay: unknown node");
  }
  EXC_TRY(validate(temporal));
  std::string name = network_.topology().node(node).name;
  net::Address peer_addr = network_.topology().node(peer).address;
  auto handle = std::make_shared<net::FilterHandle>();
  net::Port port = experiment_port_;
  FaultKindStats& ks = stats_for("path_delay");
  return schedule(
      "path_delay", name, temporal,
      [this, node, peer_addr, delay, handle, port, &ks] {
        *handle = network_.add_filter(
            net::FilterScope{node, std::nullopt},
            [delay, peer_addr, port, &ks](net::NodeId, net::Direction,
                                          net::Packet& packet) {
              if (!is_experiment_packet(packet, port)) {
                return net::FilterVerdict::pass();
              }
              if (packet.src != peer_addr && packet.dst != peer_addr) {
                return net::FilterVerdict::pass();
              }
              count_one(ks.packets_delayed);
              return net::FilterVerdict::delayed(delay);
            });
      },
      [this, handle] { network_.remove_filter(*handle); });
}

Result<FaultHandle> FaultInjector::drop_all_packets(
    const TemporalSpec& temporal) {
  EXC_TRY(validate(temporal));
  auto handle = std::make_shared<net::FilterHandle>();
  net::Port port = experiment_port_;
  FaultKindStats& ks = stats_for("drop_all");
  return schedule(
      "drop_all", "", temporal,
      [this, handle, port, &ks] {
        // Scope: every node, both directions — including forwarding, since
        // transmit filters run on relays too.
        *handle = network_.add_filter(
            net::FilterScope{std::nullopt, std::nullopt},
            [port, &ks](net::NodeId, net::Direction, net::Packet& packet) {
              if (!is_experiment_packet(packet, port)) {
                return net::FilterVerdict::pass();
              }
              count_one(ks.packets_dropped);
              return net::FilterVerdict::drop("fault:drop_all");
            });
      },
      [this, handle] { network_.remove_filter(*handle); });
}

Result<FaultHandle> FaultInjector::ge_loss(net::NodeId node,
                                           const GilbertElliott& model,
                                           FaultDirection dir,
                                           const TemporalSpec& temporal) {
  if (node >= network_.node_count()) {
    return err_invalid("ge_loss: unknown node " + std::to_string(node));
  }
  EXC_TRY(validate_ge(model));
  EXC_TRY(validate(temporal));
  FaultDirection resolved = resolve_direction(dir, temporal.randomseed);
  std::string name = network_.topology().node(node).name;
  // The loss stream uses the exact derivation of message_loss so that a
  // chain pinned to the good state (p_enter_bad == 0) reproduces the
  // Bernoulli drop sequence bit for bit; state transitions draw from their
  // own stream and never advance the loss stream.
  auto loss_rng = std::make_shared<Pcg32>(
      RngFactory(temporal.randomseed ^ fnv1a64(name)).stream("message-loss"));
  auto state_rng = std::make_shared<Pcg32>(
      RngFactory(temporal.randomseed ^ fnv1a64(name)).stream("ge-state"));
  auto in_bad = std::make_shared<bool>(false);
  auto handle = std::make_shared<net::FilterHandle>();
  net::Port port = experiment_port_;
  FaultKindStats& ks = stats_for("ge_loss");
  return schedule(
      "ge_loss", name, temporal,
      [this, node, resolved, model, loss_rng, state_rng, in_bad, handle, port,
       &ks] {
        std::optional<net::Direction> scope_dir;
        if (resolved == FaultDirection::kReceive) {
          scope_dir = net::Direction::kReceive;
        } else if (resolved == FaultDirection::kTransmit) {
          scope_dir = net::Direction::kTransmit;
        }
        *in_bad = false;  // each activation starts in the good state
        *handle = network_.add_filter(
            net::FilterScope{node, scope_dir},
            [model, loss_rng, state_rng, in_bad, port, &ks](
                net::NodeId, net::Direction, net::Packet& packet) {
              if (!is_experiment_packet(packet, port)) {
                return net::FilterVerdict::pass();
              }
              const double p = *in_bad ? model.loss_bad : model.loss_good;
              const bool drop = loss_rng->bernoulli(p);
              // Transition after the loss draw.
              if (*in_bad) {
                if (state_rng->bernoulli(model.p_exit_bad)) *in_bad = false;
              } else if (state_rng->bernoulli(model.p_enter_bad)) {
                *in_bad = true;
              }
              if (drop) {
                count_one(ks.packets_dropped);
                return net::FilterVerdict::drop("fault:ge_loss");
              }
              return net::FilterVerdict::pass();
            });
      },
      [this, handle] { network_.remove_filter(*handle); });
}

Result<FaultHandle> FaultInjector::ge_path_loss(net::NodeId node,
                                                net::NodeId peer,
                                                const GilbertElliott& model,
                                                const TemporalSpec& temporal) {
  if (node >= network_.node_count() || peer >= network_.node_count()) {
    return err_invalid("ge_path_loss: unknown node");
  }
  EXC_TRY(validate_ge(model));
  EXC_TRY(validate(temporal));
  std::string name = network_.topology().node(node).name;
  net::Address peer_addr = network_.topology().node(peer).address;
  auto loss_rng = std::make_shared<Pcg32>(
      RngFactory(temporal.randomseed ^ fnv1a64(name)).stream("path-loss"));
  auto state_rng = std::make_shared<Pcg32>(
      RngFactory(temporal.randomseed ^ fnv1a64(name)).stream("ge-state"));
  auto in_bad = std::make_shared<bool>(false);
  auto handle = std::make_shared<net::FilterHandle>();
  net::Port port = experiment_port_;
  FaultKindStats& ks = stats_for("ge_path_loss");
  return schedule(
      "ge_path_loss", name, temporal,
      [this, node, peer_addr, model, loss_rng, state_rng, in_bad, handle,
       port, &ks] {
        *in_bad = false;
        *handle = network_.add_filter(
            net::FilterScope{node, std::nullopt},
            [model, loss_rng, state_rng, in_bad, peer_addr, port, &ks](
                net::NodeId, net::Direction, net::Packet& packet) {
              if (!is_experiment_packet(packet, port)) {
                return net::FilterVerdict::pass();
              }
              if (packet.src != peer_addr && packet.dst != peer_addr) {
                return net::FilterVerdict::pass();
              }
              const double p = *in_bad ? model.loss_bad : model.loss_good;
              const bool drop = loss_rng->bernoulli(p);
              if (*in_bad) {
                if (state_rng->bernoulli(model.p_exit_bad)) *in_bad = false;
              } else if (state_rng->bernoulli(model.p_enter_bad)) {
                *in_bad = true;
              }
              if (drop) {
                count_one(ks.packets_dropped);
                return net::FilterVerdict::drop("fault:ge_path_loss");
              }
              return net::FilterVerdict::pass();
            });
      },
      [this, handle] { network_.remove_filter(*handle); });
}

Result<FaultHandle> FaultInjector::message_duplicate(
    net::NodeId node, double probability, int copies, sim::SimDuration gap,
    const TemporalSpec& temporal) {
  if (node >= network_.node_count()) {
    return err_invalid("message_duplicate: unknown node " +
                       std::to_string(node));
  }
  if (probability < 0.0 || probability > 1.0) {
    return err_invalid("message_duplicate: probability out of [0,1]");
  }
  if (copies < 1) {
    return err_invalid("message_duplicate: copies must be >= 1");
  }
  EXC_TRY(validate(temporal));
  std::string name = network_.topology().node(node).name;
  auto rng = std::make_shared<Pcg32>(
      RngFactory(temporal.randomseed ^ fnv1a64(name))
          .stream("message-duplicate"));
  auto handle = std::make_shared<net::FilterHandle>();
  net::Port port = experiment_port_;
  FaultKindStats& ks = stats_for("message_duplicate");
  return schedule(
      "message_duplicate", name, temporal,
      [this, node, probability, copies, gap, rng, handle, port, &ks] {
        // Transmit scope: duplication is an origin-side fault; the network
        // honours duplicate verdicts only on the first transmission, and
        // the origin check keeps relay traversals from consuming draws.
        *handle = network_.add_filter(
            net::FilterScope{node, net::Direction::kTransmit},
            [rng, probability, copies, gap, port, &ks](
                net::NodeId, net::Direction, net::Packet& packet) {
              if (!is_experiment_packet(packet, port) || !at_origin(packet)) {
                return net::FilterVerdict::pass();
              }
              if (rng->bernoulli(probability)) {
#if EXCOVERY_OBS_ENABLED
                ks.packets_duplicated += static_cast<std::uint64_t>(copies);
#endif
                return net::FilterVerdict::duplicated(copies, gap);
              }
              return net::FilterVerdict::pass();
            });
      },
      [this, handle] { network_.remove_filter(*handle); });
}

Result<FaultHandle> FaultInjector::message_reorder(
    net::NodeId node, double probability, sim::SimDuration max_extra,
    const TemporalSpec& temporal) {
  if (node >= network_.node_count()) {
    return err_invalid("message_reorder: unknown node " +
                       std::to_string(node));
  }
  if (probability < 0.0 || probability > 1.0) {
    return err_invalid("message_reorder: probability out of [0,1]");
  }
  if (max_extra.nanos() <= 0) {
    return err_invalid("message_reorder: max_extra must be positive");
  }
  EXC_TRY(validate(temporal));
  std::string name = network_.topology().node(node).name;
  auto rng = std::make_shared<Pcg32>(
      RngFactory(temporal.randomseed ^ fnv1a64(name))
          .stream("message-reorder"));
  auto handle = std::make_shared<net::FilterHandle>();
  net::Port port = experiment_port_;
  FaultKindStats& ks = stats_for("message_reorder");
  return schedule(
      "message_reorder", name, temporal,
      [this, node, probability, max_extra, rng, handle, port, &ks] {
        // Holding back a fraction of originated sends by a random extra
        // delay lets later packets overtake them — reordering without a
        // dedicated queue.
        *handle = network_.add_filter(
            net::FilterScope{node, net::Direction::kTransmit},
            [rng, probability, max_extra, port, &ks](
                net::NodeId, net::Direction, net::Packet& packet) {
              if (!is_experiment_packet(packet, port) || !at_origin(packet)) {
                return net::FilterVerdict::pass();
              }
              if (rng->bernoulli(probability)) {
                count_one(ks.packets_reordered);
                return net::FilterVerdict::delayed(sim::SimDuration(
                    rng->uniform_int(1, max_extra.nanos())));
              }
              return net::FilterVerdict::pass();
            });
      },
      [this, handle] { network_.remove_filter(*handle); });
}

void FaultInjector::reset() {
  for (const FaultHandle& fault : registered_) fault->stop();
  registered_.clear();
}

std::size_t FaultInjector::active_count() const {
  std::size_t count = 0;
  for (const FaultHandle& fault : registered_) {
    if (fault->active()) ++count;
  }
  return count;
}

}  // namespace excovery::faults
