// Network topology: nodes, links and link-quality models.
//
// Substitutes the physical DES wireless mesh (§VI, [22]).  Generators cover
// the shapes used in mesh-testbed studies: chains (controlled hop distance),
// grids, random geometric graphs (the standard wireless connectivity model)
// and full meshes (single-broadcast-domain LANs).
//
// Scales to 10k–100k-node worlds (DESIGN.md §13): link membership is an
// O(1) hash lookup instead of a scan of every link, name/address resolution
// is lazily indexed, the random-geometric generator discovers neighbours
// through a uniform-grid spatial index (O(V·k) instead of O(V²) pairwise
// distance checks, byte-identical output for the same seed), and
// connectivity checking builds a flat adjacency once instead of re-scanning
// the link list per node.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "net/address.hpp"
#include "net/packet.hpp"
#include "sim/time.hpp"

namespace excovery::net {

/// Quality model of one (directed) link.  The simulator applies, per hop:
/// Bernoulli loss, base propagation delay, serialisation delay from
/// bandwidth, and uniform jitter as a fraction of base delay.
struct LinkModel {
  sim::SimDuration base_delay = sim::SimDuration::from_micros(500);
  double loss = 0.0;             ///< per-hop loss probability [0,1]
  double jitter_frac = 0.1;      ///< uniform jitter in [0, frac*base_delay]
  double bandwidth_bps = 6e6;    ///< serialisation rate (802.11-ish basic)

  static LinkModel ideal() {
    return {sim::SimDuration::from_micros(100), 0.0, 0.0, 1e9};
  }
};

/// An undirected edge between two nodes.
struct Link {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  LinkModel model;
};

/// A named node with an address and an optional position (for geometric
/// topologies; also used by visualisation).
struct TopologyNode {
  std::string name;
  Address address;
  double x = 0.0;
  double y = 0.0;
};

class Topology {
 public:
  /// Add a node; the address defaults to Address::for_node(index).
  NodeId add_node(std::string name,
                  std::optional<Address> address = std::nullopt);
  NodeId add_node(std::string name, double x, double y);

  /// Connect two nodes bidirectionally.  Duplicate links are rejected.
  Status connect(NodeId a, NodeId b, const LinkModel& model = {});

  std::size_t node_count() const noexcept { return nodes_.size(); }
  std::size_t link_count() const noexcept { return links_.size(); }
  const TopologyNode& node(NodeId id) const { return nodes_.at(id); }
  const std::vector<TopologyNode>& nodes() const noexcept { return nodes_; }
  const std::vector<Link>& links() const noexcept { return links_; }

  /// Node id by name; kNotFound error if absent.  First match wins when
  /// names collide (lazily indexed — O(1) amortised).
  Result<NodeId> find(const std::string& name) const;
  /// Node id by address (lazily indexed, first match wins).
  Result<NodeId> find(Address address) const;

  /// Neighbours of a node with the link models toward them, in
  /// link-declaration order.
  std::vector<std::pair<NodeId, const LinkModel*>> neighbours(
      NodeId id) const;
  /// Link model between two adjacent nodes, nullptr if not adjacent.  O(1).
  const LinkModel* link_between(NodeId a, NodeId b) const;
  /// Mutable access for fault injection that degrades specific links.
  LinkModel* mutable_link_between(NodeId a, NodeId b);

  /// True if every node can reach every other node.  O(V + E).
  bool connected() const;

  // ---- Generators ------------------------------------------------------
  /// Chain n0 - n1 - ... - n_{k-1}: hop distance fully controlled.
  static Topology chain(std::size_t length, const LinkModel& model = {});
  /// w x h grid with 4-neighbourhood.
  static Topology grid(std::size_t width, std::size_t height,
                       const LinkModel& model = {});
  /// Every node adjacent to every other (one broadcast domain).
  static Topology full_mesh(std::size_t size, const LinkModel& model = {});
  /// Random geometric graph: nodes uniform in the unit square, connected if
  /// within `radius`.  Retries placement until connected (bounded attempts);
  /// deterministic in the seed.  Neighbour discovery runs over a
  /// uniform-grid spatial index; the resulting node placement and link list
  /// are byte-identical to the naive all-pairs scan for the same seed.
  static Result<Topology> random_geometric(std::size_t size, double radius,
                                           std::uint64_t seed,
                                           const LinkModel& model = {});

 private:
  /// Index of the link between a and b, or -1.
  std::ptrdiff_t link_index(NodeId a, NodeId b) const;

  std::vector<TopologyNode> nodes_;
  std::vector<Link> links_;
  /// Packed (min<<32)|max endpoint key -> index into links_.
  std::unordered_map<std::uint64_t, std::uint32_t> link_index_;
  // Lazy lookup indexes: valid for the first `*_indexed_` nodes; appended
  // nodes are folded in on the next query.  Nodes are append-only and
  // immutable after add, so entries never go stale.  First-added wins on
  // duplicate names/addresses, matching the former linear scan.
  mutable std::unordered_map<std::string, NodeId> name_index_;
  mutable std::size_t names_indexed_ = 0;
  mutable std::unordered_map<std::uint32_t, NodeId> address_index_;
  mutable std::size_t addresses_indexed_ = 0;
};

}  // namespace excovery::net
