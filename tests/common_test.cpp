// Unit tests for the common kernel: Result/Status, Value, strings, RNG,
// byte codec, thread pool, logging.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "common/log.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"
#include "common/thread_pool.hpp"
#include "common/value.hpp"

namespace excovery {
namespace {

// ---- Result / Status --------------------------------------------------------

Result<int> parse_positive(int v) {
  if (v <= 0) return err_invalid("not positive");
  return v;
}

TEST(ResultTest, HoldsValueOrError) {
  Result<int> ok = parse_positive(5);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 5);

  Result<int> bad = parse_positive(-1);
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code(), ErrorCode::kInvalidArgument);
  EXPECT_EQ(bad.value_or(7), 7);
}

TEST(ResultTest, MapTransformsValueAndPropagatesError) {
  Result<int> doubled = parse_positive(4).map([](int v) { return v * 2; });
  ASSERT_TRUE(doubled.ok());
  EXPECT_EQ(doubled.value(), 8);

  Result<int> still_bad =
      parse_positive(0).map([](int v) { return v * 2; });
  EXPECT_FALSE(still_bad.ok());
}

TEST(ResultTest, ContextPrefixesMessage) {
  Result<int> bad = parse_positive(0);
  Result<int> wrapped = std::move(bad).context("while parsing config");
  ASSERT_FALSE(wrapped.ok());
  EXPECT_NE(wrapped.error().message().find("while parsing config"),
            std::string::npos);
}

Status needs_even(int v) {
  if (v % 2 != 0) return err_state("odd");
  return {};
}

TEST(StatusTest, TryMacroPropagates) {
  auto run = [](int v) -> Status {
    EXC_TRY(needs_even(v));
    return {};
  };
  EXPECT_TRUE(run(2).ok());
  EXPECT_FALSE(run(3).ok());
}

TEST(StatusTest, AssignOrReturnMacro) {
  auto run = [](int v) -> Result<int> {
    EXC_ASSIGN_OR_RETURN(int parsed, parse_positive(v));
    return parsed + 1;
  };
  EXPECT_EQ(run(2).value(), 3);
  EXPECT_FALSE(run(-2).ok());
}

TEST(ErrorTest, CodeNamesAreStable) {
  EXPECT_EQ(to_string(ErrorCode::kTimeout), "timeout");
  EXPECT_EQ(to_string(ErrorCode::kParse), "parse");
  Error e = err_timeout("waiting for x");
  EXPECT_EQ(e.to_string(), "timeout: waiting for x");
}

// ---- Value -------------------------------------------------------------------

TEST(ValueTest, TypeDiscrimination) {
  EXPECT_TRUE(Value{}.is_null());
  EXPECT_TRUE(Value{true}.is_bool());
  EXPECT_TRUE(Value{42}.is_int());
  EXPECT_TRUE(Value{1.5}.is_double());
  EXPECT_TRUE(Value{"hi"}.is_string());
  EXPECT_TRUE((Value{Bytes{1, 2}}.is_bytes()));
  EXPECT_TRUE(Value{ValueArray{}}.is_array());
  EXPECT_TRUE(Value{ValueMap{}}.is_map());
  EXPECT_TRUE(Value{42}.is_number());
  EXPECT_TRUE(Value{1.5}.is_number());
  EXPECT_FALSE(Value{"x"}.is_number());
}

TEST(ValueTest, IntCoercion) {
  EXPECT_EQ(Value{"123"}.to_int().value(), 123);
  EXPECT_EQ(Value{"\"123\""}.to_int().value(), 123);  // quoted XML levels
  EXPECT_EQ(Value{" 7 "}.to_int().value(), 7);
  EXPECT_EQ(Value{3.0}.to_int().value(), 3);
  EXPECT_FALSE(Value{3.5}.to_int().ok());
  EXPECT_FALSE(Value{"abc"}.to_int().ok());
  EXPECT_EQ(Value{true}.to_int().value(), 1);
}

TEST(ValueTest, DoubleCoercion) {
  EXPECT_DOUBLE_EQ(Value{"0.25"}.to_double().value(), 0.25);
  EXPECT_DOUBLE_EQ(Value{7}.to_double().value(), 7.0);
  EXPECT_FALSE(Value{"x1"}.to_double().ok());
}

TEST(ValueTest, BoolCoercion) {
  EXPECT_TRUE(Value{"true"}.to_bool().value());
  EXPECT_TRUE(Value{"1"}.to_bool().value());
  EXPECT_FALSE(Value{"off"}.to_bool().value());
  EXPECT_FALSE(Value{"maybe"}.to_bool().ok());
}

TEST(ValueTest, TextRendering) {
  EXPECT_EQ(Value{42}.to_text(), "42");
  EXPECT_EQ(Value{true}.to_text(), "true");
  EXPECT_EQ(Value{"s"}.to_text(), "s");
  EXPECT_EQ(Value{}.to_text(), "");
  ValueArray arr{Value{1}, Value{2}};
  EXPECT_EQ(Value{arr}.to_text(), "[1,2]");
  ValueMap map;
  map.emplace("a", Value{1});
  EXPECT_EQ(Value{map}.to_text(), "{a=1}");
}

TEST(ValueTest, EqualityAndOrdering) {
  EXPECT_EQ(Value{1}, Value{1});
  EXPECT_NE(Value{1}, Value{2});
  EXPECT_NE(Value{1}, Value{"1"});
  EXPECT_LT(Value{1}, Value{2});
  // Cross-type ordering is by type index: int (2) < string (4).
  EXPECT_LT(Value{99}, Value{"a"});
}

TEST(ValueTest, MapFind) {
  ValueMap map;
  map.emplace("key", Value{5});
  Value v{map};
  ASSERT_NE(v.find("key"), nullptr);
  EXPECT_EQ(v.find("key")->as_int(), 5);
  EXPECT_EQ(v.find("missing"), nullptr);
  EXPECT_EQ(Value{1}.find("x"), nullptr);
}

// ---- strings -------------------------------------------------------------------

TEST(StringsTest, Trim) {
  EXPECT_EQ(strings::trim("  a b \n"), "a b");
  EXPECT_EQ(strings::trim(""), "");
  EXPECT_EQ(strings::trim("   "), "");
}

TEST(StringsTest, StripQuotes) {
  EXPECT_EQ(strings::strip_quotes("\"done\""), "done");
  EXPECT_EQ(strings::strip_quotes("done"), "done");
  EXPECT_EQ(strings::strip_quotes("\""), "\"");  // lone quote untouched
}

TEST(StringsTest, SplitAndJoin) {
  std::vector<std::string> parts = strings::split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(strings::join(parts, "-"), "a-b--c");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(strings::starts_with("fault_message_loss_start", "fault_"));
  EXPECT_TRUE(strings::ends_with("fault_message_loss_start", "_start"));
  EXPECT_FALSE(strings::ends_with("x", "_start"));
}

TEST(StringsTest, FormatDoubleRoundTrips) {
  for (double v : {0.1, 1.0 / 3.0, 1e-9, 123456.789, 0.0, -2.5}) {
    std::string text = strings::format_double(v);
    EXPECT_DOUBLE_EQ(Value{text}.to_double().value(), v) << text;
  }
}

TEST(StringsTest, HexRoundTrip) {
  Bytes data{0x00, 0xFF, 0x5A};
  EXPECT_EQ(strings::to_hex(data), "00ff5a");
  EXPECT_EQ(strings::from_hex("00ff5a"), data);
}

// ---- RNG -----------------------------------------------------------------------

TEST(RngTest, Pcg32IsDeterministic) {
  Pcg32 a(123, 456);
  Pcg32 b(123, 456);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentStreamsDiffer) {
  Pcg32 a(123, 1);
  Pcg32 b(123, 2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, BoundedStaysInRange) {
  Pcg32 rng(9, 9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.bounded(17), 17u);
  }
  EXPECT_EQ(rng.bounded(1), 0u);
  EXPECT_EQ(rng.bounded(0), 0u);
}

TEST(RngTest, Uniform01CoversUnitInterval) {
  Pcg32 rng(5, 5);
  double lo = 1.0;
  double hi = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

TEST(RngTest, UniformIntInclusiveRange) {
  Pcg32 rng(7, 7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    std::int64_t v = rng.uniform_int(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
  EXPECT_EQ(rng.uniform_int(3, 3), 3);
  EXPECT_EQ(rng.uniform_int(5, 2), 5);  // degenerate -> lo
}

TEST(RngTest, BernoulliExtremes) {
  Pcg32 rng(1, 1);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Pcg32 rng(2, 3);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ExponentialMean) {
  Pcg32 rng(11, 13);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.05);
}

TEST(RngTest, NormalMoments) {
  Pcg32 rng(17, 19);
  std::vector<double> samples;
  for (int i = 0; i < 20000; ++i) samples.push_back(rng.normal(10.0, 2.0));
  double sum = 0;
  for (double s : samples) sum += s;
  double mean = sum / static_cast<double>(samples.size());
  EXPECT_NEAR(mean, 10.0, 0.1);
}

TEST(RngTest, ShuffleIsPermutation) {
  Pcg32 rng(3, 3);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  rng.shuffle(shuffled);
  std::multiset<int> a(items.begin(), items.end());
  std::multiset<int> b(shuffled.begin(), shuffled.end());
  EXPECT_EQ(a, b);
}

TEST(RngFactoryTest, NamedStreamsAreStable) {
  RngFactory factory(99);
  Pcg32 a = factory.stream("loss", 1);
  Pcg32 b = factory.stream("loss", 1);
  EXPECT_EQ(a(), b());
  Pcg32 c = factory.stream("loss", 2);
  Pcg32 d = factory.stream("delay", 1);
  EXPECT_NE(factory.derive_seed("loss", 1), factory.derive_seed("loss", 2));
  EXPECT_NE(factory.derive_seed("loss", 1), factory.derive_seed("delay", 1));
  (void)c;
  (void)d;
}

TEST(RngFactoryTest, Fnv1aMatchesKnownVector) {
  // FNV-1a 64 of empty string is the offset basis.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_NE(fnv1a64("a"), fnv1a64("b"));
}

// ---- bytes ---------------------------------------------------------------------

TEST(BytesTest, ScalarRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0x1234);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i64(-42);
  w.f64(3.25);
  w.string("hello");
  w.blob(Bytes{9, 8, 7});

  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8().value(), 0xAB);
  EXPECT_EQ(r.u16().value(), 0x1234);
  EXPECT_EQ(r.u32().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64().value(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i64().value(), -42);
  EXPECT_DOUBLE_EQ(r.f64().value(), 3.25);
  EXPECT_EQ(r.string().value(), "hello");
  EXPECT_EQ(r.blob().value(), (Bytes{9, 8, 7}));
  EXPECT_TRUE(r.exhausted());
}

TEST(BytesTest, TruncationIsAnError) {
  ByteWriter w;
  w.u32(7);
  Bytes data = w.take();
  data.pop_back();
  ByteReader r(data);
  EXPECT_FALSE(r.u32().ok());
}

TEST(BytesTest, ValueRoundTripNested) {
  ValueMap inner;
  inner.emplace("x", Value{1});
  ValueArray arr{Value{}, Value{true}, Value{-7}, Value{2.5}, Value{"s"},
                 Value{Bytes{1, 2, 3}}, Value{inner}};
  Value original{arr};
  ByteWriter w;
  w.value(original);
  ByteReader r(w.bytes());
  Result<Value> back = r.value();
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), original);
}

TEST(BytesTest, BadValueTagRejected) {
  Bytes data{0x77};
  ByteReader r(data);
  EXPECT_FALSE(r.value().ok());
}

// ---- thread pool ------------------------------------------------------------------

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter, i] {
      counter.fetch_add(1);
      return i * i;
    }));
  }
  for (int i = 0; i < 100; ++i) EXPECT_EQ(futures[i].get(), i * i);
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(50);
  pool.parallel_for(50, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPoolTest, DefaultsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_GE(pool.worker_count(), 1u);
  EXPECT_EQ(pool.submit([] { return 42; }).get(), 42);
}

// ---- logging ---------------------------------------------------------------------

TEST(LogTest, CapturingLogAccumulates) {
  CapturingLog log("test-node");
  log.info("first");
  log.warn("second");
  std::string text = log.text();
  EXPECT_NE(text.find("INFO test-node: first"), std::string::npos);
  EXPECT_NE(text.find("WARN test-node: second"), std::string::npos);
  log.clear();
  EXPECT_TRUE(log.text().empty());
}

TEST(LogTest, SinkReceivesEnabledLevels) {
  Logger& logger = Logger::instance();
  LogLevel old_level = logger.level();
  logger.set_level(LogLevel::kInfo);
  std::vector<std::string> seen;
  Logger::Sink old_sink = logger.set_sink(
      [&seen](LogLevel, std::string_view, std::string_view message) {
        seen.emplace_back(message);
      });
  EXC_LOG_INFO("t", "visible " << 1);
  EXC_LOG_DEBUG("t", "hidden");
  logger.set_sink(std::move(old_sink));
  logger.set_level(old_level);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "visible 1");
}

TEST(LogTest, ParseLogLevelAcceptsAllNames) {
  EXPECT_EQ(parse_log_level("trace").value(), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("DEBUG").value(), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("Info").value(), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn").value(), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning").value(), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error").value(), LogLevel::kError);
  Result<LogLevel> bad = parse_log_level("loud");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.error().message().find("unknown log level"),
            std::string::npos);
}

TEST(LogTest, ScopedSinkRestoresPreviousSinkOnScopeExit) {
  Logger& logger = Logger::instance();
  LogLevel old_level = logger.level();
  logger.set_level(LogLevel::kInfo);
  std::vector<std::string> outer;
  {
    ScopedSink outer_sink(
        [&outer](LogLevel, std::string_view, std::string_view message) {
          outer.emplace_back(message);
        });
    {
      std::vector<std::string> inner;
      ScopedSink inner_sink(
          [&inner](LogLevel, std::string_view, std::string_view message) {
            inner.emplace_back(message);
          });
      EXC_LOG_INFO("t", "inner message");
      ASSERT_EQ(inner.size(), 1u);
      EXPECT_TRUE(outer.empty());
    }  // inner sink gone: the outer capture is back in place
    EXC_LOG_INFO("t", "outer message");
  }  // outer sink gone: the default (stderr) sink is back in place
  logger.set_level(old_level);
  ASSERT_EQ(outer.size(), 1u);
  EXPECT_EQ(outer[0], "outer message");
}

TEST(LogTest, TraceMacroRespectsThreshold) {
  Logger& logger = Logger::instance();
  LogLevel old_level = logger.level();
  std::vector<std::string> seen;
  ScopedSink sink(
      [&seen](LogLevel level, std::string_view, std::string_view message) {
        seen.emplace_back(std::string(to_string(level)) + " " +
                          std::string(message));
      });
  logger.set_level(LogLevel::kWarn);
  EXC_LOG_TRACE("t", "suppressed");
  logger.set_level(LogLevel::kTrace);
  EXC_LOG_TRACE("t", "emitted " << 2);
  logger.set_level(old_level);
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], "TRACE emitted 2");
}

TEST(LogTest, CapturingLogConcurrentAppendAndTake) {
  CapturingLog log("node");
  constexpr int kThreads = 4;
  constexpr int kPerThread = 100;
  std::string drained;
  std::atomic<bool> stop{false};
  // One consumer drains with take() while the producers append.
  std::thread taker([&log, &drained, &stop] {
    while (!stop.load(std::memory_order_acquire)) drained += log.take();
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&log, t] {
      for (int i = 0; i < kPerThread; ++i) {
        log.info("m" + std::to_string(t) + "." + std::to_string(i) + ";");
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  stop.store(true, std::memory_order_release);
  taker.join();
  drained += log.take();
  EXPECT_TRUE(log.text().empty());
  // No line was lost or torn between take() and the appends.
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kPerThread; ++i) {
      std::string needle =
          "m" + std::to_string(t) + "." + std::to_string(i) + ";";
      EXPECT_NE(drained.find(needle), std::string::npos) << needle;
    }
  }
}

}  // namespace
}  // namespace excovery
