// Post-mortem flight recorder (DESIGN.md §16): render the lineage log's
// always-on bounded ring into a readable artifact when a run attempt fails.
//
// The ring itself lives in sim::LineageLog (zero steady-state allocation;
// recording never schedules or consumes randomness).  This module only
// *renders*: it runs on the cold failure path, after the attempt's outcome
// is already decided, so formatting cost is irrelevant and the successful
// path never pays anything.
#pragma once

#include <string>
#include <string_view>

#include "common/error.hpp"
#include "sim/lineage.hpp"

namespace excovery::obs {

/// Human-readable dump of the ring: a header naming the run, attempt and
/// failure reason, then one line per retained event, oldest first.
std::string render_flight_dump(const sim::LineageLog& log,
                               std::string_view reason);

/// Write the dump into `dir` (created if missing) as
/// flight-run<id>-attempt<n>.txt; returns the path written.
Result<std::string> write_flight_dump(const sim::LineageLog& log,
                                      const std::string& dir,
                                      std::string_view reason);

}  // namespace excovery::obs
