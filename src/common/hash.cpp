#include "common/hash.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

#if defined(__x86_64__) && defined(__GNUC__)
#include <cpuid.h>
#include <immintrin.h>
#define EXCOVERY_SHA_NI 1
#endif

namespace excovery {

namespace {

constexpr std::array<std::uint32_t, 64> kRound = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

constexpr std::uint32_t rotr(std::uint32_t x, int n) noexcept {
  return (x >> n) | (x << (32 - n));
}

void compress_scalar(std::uint32_t* state, const std::uint8_t* block,
                     std::size_t count) {
  for (; count > 0; --count, block += 64) {
    std::uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
      w[i] = (std::uint32_t{block[i * 4]} << 24) |
             (std::uint32_t{block[i * 4 + 1]} << 16) |
             (std::uint32_t{block[i * 4 + 2]} << 8) |
             std::uint32_t{block[i * 4 + 3]};
    }
    for (int i = 16; i < 64; ++i) {
      const std::uint32_t s0 =
          rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      const std::uint32_t s1 =
          rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + s0 + w[i - 7] + s1;
    }

    std::uint32_t a = state[0], b = state[1], c = state[2], d = state[3];
    std::uint32_t e = state[4], f = state[5], g = state[6], h = state[7];
    for (int i = 0; i < 64; ++i) {
      const std::uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
      const std::uint32_t ch = (e & f) ^ (~e & g);
      const std::uint32_t temp1 = h + s1 + ch + kRound[i] + w[i];
      const std::uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
      const std::uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      const std::uint32_t temp2 = s0 + maj;
      h = g;
      g = f;
      f = e;
      e = d + temp1;
      d = c;
      c = b;
      b = a;
      a = temp1 + temp2;
    }
    state[0] += a;
    state[1] += b;
    state[2] += c;
    state[3] += d;
    state[4] += e;
    state[5] += f;
    state[6] += g;
    state[7] += h;
  }
}

#ifdef EXCOVERY_SHA_NI

/// True when the CPU exposes the SHA extensions (CPUID.7.0:EBX bit 29) plus
/// the SSSE3/SSE4.1 shuffles the kernel below relies on.
bool detect_sha_ni() noexcept {
  unsigned eax = 0, ebx = 0, ecx = 0, edx = 0;
  if (!__get_cpuid_count(7, 0, &eax, &ebx, &ecx, &edx)) return false;
  if ((ebx & (1u << 29)) == 0) return false;
  if (!__get_cpuid(1, &eax, &ebx, &ecx, &edx)) return false;
  return (ecx & (1u << 9)) != 0 && (ecx & (1u << 19)) != 0;
}

const bool g_has_sha_ni = detect_sha_ni();

/// SHA-256 message schedule + rounds on the SHA-NI execution units.  The
/// two-lane (ABEF/CDGH) state layout and the per-four-rounds structure
/// follow the Intel SHA extensions reference flow; round constants are
/// loaded straight from kRound (lane order matches the little-endian
/// 128-bit load).  Compiled with a function-level target so the rest of
/// the TU keeps the portable baseline ISA.
__attribute__((target("sha,sse4.1,ssse3"))) void compress_sha_ni(
    std::uint32_t* state, const std::uint8_t* block, std::size_t count) {
  const auto k = [](int i) {
    return _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(kRound.data() + i));
  };
  const __m128i kFlip =
      _mm_set_epi64x(0x0c0d0e0f08090a0bLL, 0x0405060700010203LL);

  // Load H0..H7 and swizzle into the ABEF / CDGH lane pairs the
  // SHA256RNDS2 instruction expects.
  __m128i tmp = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state));
  __m128i st1 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(state + 4));
  tmp = _mm_shuffle_epi32(tmp, 0xB1);
  st1 = _mm_shuffle_epi32(st1, 0x1B);
  __m128i st0 = _mm_alignr_epi8(tmp, st1, 8);
  st1 = _mm_blend_epi16(st1, tmp, 0xF0);

  for (; count > 0; --count, block += 64) {
    const __m128i abef_save = st0;
    const __m128i cdgh_save = st1;
    __m128i msg;

    // Rounds 0-3.
    __m128i msg0 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(block)), kFlip);
    msg = _mm_add_epi32(msg0, k(0));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);

    // Rounds 4-7.
    __m128i msg1 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 16)), kFlip);
    msg = _mm_add_epi32(msg1, k(4));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    msg0 = _mm_sha256msg1_epu32(msg0, msg1);

    // Rounds 8-11.
    __m128i msg2 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 32)), kFlip);
    msg = _mm_add_epi32(msg2, k(8));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    msg1 = _mm_sha256msg1_epu32(msg1, msg2);

    // Rounds 12-15.
    __m128i msg3 = _mm_shuffle_epi8(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(block + 48)), kFlip);
    msg = _mm_add_epi32(msg3, k(12));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    tmp = _mm_alignr_epi8(msg3, msg2, 4);
    msg0 = _mm_add_epi32(msg0, tmp);
    msg0 = _mm_sha256msg2_epu32(msg0, msg3);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    msg2 = _mm_sha256msg1_epu32(msg2, msg3);

    // Rounds 16-51: the schedule recurrence in steady state, four rounds
    // per step, message registers rotating msg0 -> msg1 -> msg2 -> msg3.
    // The msg1 seeding must continue through the 48-51 group: it feeds the
    // W56..W63 expansions consumed by the final rounds.
    __m128i* m[4] = {&msg0, &msg1, &msg2, &msg3};
    for (int round = 16; round < 52; round += 4) {
      const int i = (round / 4) & 3;
      __m128i& cur = *m[i];
      __m128i& prev = *m[(i + 3) & 3];
      __m128i& next = *m[(i + 1) & 3];
      msg = _mm_add_epi32(cur, k(round));
      st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
      tmp = _mm_alignr_epi8(cur, prev, 4);
      next = _mm_add_epi32(next, tmp);
      next = _mm_sha256msg2_epu32(next, cur);
      msg = _mm_shuffle_epi32(msg, 0x0E);
      st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
      // prev has been consumed by the alignr above; it now becomes the
      // partially expanded schedule word four steps ahead.
      prev = _mm_sha256msg1_epu32(prev, cur);
    }

    // Rounds 52-59: schedule winds down (no more msg1 expansions).
    for (int round = 52; round < 60; round += 4) {
      const int i = (round / 4) & 3;
      __m128i& cur = *m[i];
      __m128i& prev = *m[(i + 3) & 3];
      __m128i& next = *m[(i + 1) & 3];
      msg = _mm_add_epi32(cur, k(round));
      st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
      tmp = _mm_alignr_epi8(cur, prev, 4);
      next = _mm_add_epi32(next, tmp);
      next = _mm_sha256msg2_epu32(next, cur);
      msg = _mm_shuffle_epi32(msg, 0x0E);
      st0 = _mm_sha256rnds2_epu32(st0, st1, msg);
    }

    // Rounds 60-63.
    msg = _mm_add_epi32(msg3, k(60));
    st1 = _mm_sha256rnds2_epu32(st1, st0, msg);
    msg = _mm_shuffle_epi32(msg, 0x0E);
    st0 = _mm_sha256rnds2_epu32(st0, st1, msg);

    st0 = _mm_add_epi32(st0, abef_save);
    st1 = _mm_add_epi32(st1, cdgh_save);
  }

  // Swizzle ABEF/CDGH back to H0..H7.
  tmp = _mm_shuffle_epi32(st0, 0x1B);
  st1 = _mm_shuffle_epi32(st1, 0xB1);
  st0 = _mm_blend_epi16(tmp, st1, 0xF0);
  st1 = _mm_alignr_epi8(st1, tmp, 8);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state), st0);
  _mm_storeu_si128(reinterpret_cast<__m128i*>(state + 4), st1);
}

#endif  // EXCOVERY_SHA_NI

}  // namespace

Sha256::Sha256()
    : state_{0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f,
             0x9b05688c, 0x1f83d9ab, 0x5be0cd19} {}

void Sha256::compress(const std::uint8_t* blocks, std::size_t count) {
#ifdef EXCOVERY_SHA_NI
  if (g_has_sha_ni) {
    compress_sha_ni(state_.data(), blocks, count);
    return;
  }
#endif
  compress_scalar(state_.data(), blocks, count);
}

Sha256& Sha256::update(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const std::uint8_t*>(data);
  length_ += size;
  while (size > 0) {
    if (buffered_ == 0 && size >= 64) {
      // Full blocks straight from the input, no buffering; one dispatch
      // for the whole run keeps the SHA-NI state in registers.
      const std::size_t blocks = size / 64;
      compress(bytes, blocks);
      bytes += blocks * 64;
      size -= blocks * 64;
      continue;
    }
    const std::size_t take = std::min<std::size_t>(64 - buffered_, size);
    std::memcpy(buffer_.data() + buffered_, bytes, take);
    buffered_ += take;
    bytes += take;
    size -= take;
    if (buffered_ == 64) {
      compress(buffer_.data(), 1);
      buffered_ = 0;
    }
  }
  return *this;
}

Sha256& Sha256::update(std::string_view text) {
  return update(text.data(), text.size());
}

Sha256& Sha256::update_u32(std::uint32_t v) {
  std::uint8_t le[4];
  for (int i = 0; i < 4; ++i) le[i] = static_cast<std::uint8_t>(v >> (8 * i));
  return update(le, sizeof(le));
}

Sha256& Sha256::update_u64(std::uint64_t v) {
  std::uint8_t le[8];
  for (int i = 0; i < 8; ++i) le[i] = static_cast<std::uint8_t>(v >> (8 * i));
  return update(le, sizeof(le));
}

Sha256& Sha256::update_f64(double v) {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  return update_u64(bits);
}

Sha256& Sha256::update_sized(std::string_view text) {
  update_u64(text.size());
  return update(text);
}

Sha256::Digest Sha256::finish() {
  const std::uint64_t bit_length = length_ * 8;
  const std::uint8_t pad_byte = 0x80;
  update(&pad_byte, 1);
  const std::uint8_t zero = 0;
  while (buffered_ != 56) update(&zero, 1);
  std::uint8_t be[8];
  for (int i = 0; i < 8; ++i) {
    be[i] = static_cast<std::uint8_t>(bit_length >> (56 - 8 * i));
  }
  update(be, sizeof(be));
  assert(buffered_ == 0);

  Digest digest;
  for (int i = 0; i < 8; ++i) {
    digest[i * 4] = static_cast<std::uint8_t>(state_[i] >> 24);
    digest[i * 4 + 1] = static_cast<std::uint8_t>(state_[i] >> 16);
    digest[i * 4 + 2] = static_cast<std::uint8_t>(state_[i] >> 8);
    digest[i * 4 + 3] = static_cast<std::uint8_t>(state_[i]);
  }
  return digest;
}

std::string Sha256::finish_hex() { return to_hex(finish()); }

Sha256::Digest Sha256::digest(std::string_view text) {
  Sha256 hash;
  hash.update(text);
  return hash.finish();
}

std::string to_hex(const Sha256::Digest& digest) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(digest.size() * 2);
  for (std::uint8_t byte : digest) {
    out.push_back(kHex[byte >> 4]);
    out.push_back(kHex[byte & 0xF]);
  }
  return out;
}

}  // namespace excovery
