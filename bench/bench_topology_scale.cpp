// Mega-scale topology engine bench (DESIGN.md §13): nodes vs. events/sec
// and routing memory for random-geometric worlds from 100 to 50k nodes.
//
// For each scale the full pipeline is timed in three phases:
//
//   1. generation  — Topology::random_geometric with the grid spatial index
//                    (O(V·k) neighbour discovery, byte-identical to the old
//                    all-pairs scan, which is pinned by the property suite)
//   2. warm-up     — lazy RoutingTable row queries from a spread of sources
//                    (each row is one on-demand BFS, cached under the bounded
//                    row budget)
//   3. flood       — one-or-more full multicast floods through the Network
//                    CSR adjacency; events/sec = packet deliveries per second
//
// Two promises are gated (FAIL outside --smoke, WARN inside):
//
//   * the 50k-node pipeline (generation + warm-up + flood) finishes within
//     the wall budget — the former eager all-pairs table alone would need
//     ~15 GB and hours of rebuild time at this scale;
//   * warm routing memory at >=10k nodes stays an order of magnitude below
//     the eager V² matrix (6 bytes per pair) — O(cached rows), not O(V²).
//
// Results go to BENCH_topology.json (curated format, bench/collect_bench.py;
// the speedup column reports the memory reduction vs. the eager matrix).
// Like bench_faults the JSON is written in --smoke mode too so CI can
// archive the file from the smoke run.
//
// Flags:
//   --smoke     small scale set, 1 rep, WARN-only gates — CI smoke step
//   --reps N    repetitions per scale (default 3, median taken)
//   --out PATH  override the JSON output path (default BENCH_topology.json)
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

#include "common/strings.hpp"
#include "net/network.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "sim/scheduler.hpp"

namespace {

using excovery::net::Address;
using excovery::net::LinkModel;
using excovery::net::NodeId;
using excovery::net::Packet;
using excovery::net::RoutingTable;
using excovery::net::Topology;

double median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

LinkModel lossless_link() {
  LinkModel model = LinkModel::ideal();
  model.loss = 0.0;
  model.jitter_frac = 0.0;
  return model;
}

struct Scale {
  std::size_t nodes = 0;
  double radius = 0.0;  ///< keeps mean degree ~ pi * r^2 * V ~ 28
  int floods = 1;       ///< per repetition; more at small scales for signal
};

struct ScaleResult {
  std::size_t nodes = 0;
  std::size_t links = 0;
  double gen_s = 0.0;
  double warm_s = 0.0;
  double flood_s = 0.0;
  double deliveries = 0.0;  ///< per repetition
  std::size_t routing_bytes = 0;
  std::size_t cached_rows = 0;
  std::size_t capacity_rows = 0;
};

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// One full pipeline repetition at one scale.  Generation, warm-up and
/// flood are timed separately; the caller takes medians across repetitions.
ScaleResult run_scale(const Scale& scale, std::uint64_t seed) {
  ScaleResult result;
  result.nodes = scale.nodes;

  auto start = std::chrono::steady_clock::now();
  excovery::Result<Topology> generated = Topology::random_geometric(
      scale.nodes, scale.radius, seed, lossless_link());
  result.gen_s = seconds_since(start);
  if (!generated.ok()) std::abort();
  Topology topology = std::move(generated).value();
  result.links = topology.link_count();
  const bool connected = topology.connected();

  // Lazy routing warm-up: on-demand BFS rows from a spread of sources.
  RoutingTable routing(topology);
  const NodeId node_count = static_cast<NodeId>(scale.nodes);
  const NodeId stride =
      std::max<NodeId>(1, node_count / 64);  // ~64 distinct source rows
  start = std::chrono::steady_clock::now();
  long reachable = 0;
  for (NodeId from = 0; from < node_count; from += stride) {
    for (NodeId probe = 1; probe <= 4; ++probe) {
      const NodeId to = static_cast<NodeId>(
          (static_cast<std::uint64_t>(from) * 7919 + probe * 131) %
          scale.nodes);
      if (routing.hop_count(from, to) >= 0) ++reachable;
    }
  }
  result.warm_s = seconds_since(start);
  if (connected && reachable == 0) std::abort();
  result.routing_bytes = routing.memory_bytes();
  result.cached_rows = routing.cached_row_count();
  result.capacity_rows = routing.row_cache_capacity();

  // Multicast floods over the Network CSR adjacency.
  excovery::sim::Scheduler scheduler;
  excovery::net::Network network(scheduler, std::move(topology), /*seed=*/7);
  network.set_capture_enabled(false);
  const Address group = Address::sd_multicast();
  std::uint64_t delivered = 0;
  for (NodeId n = 0; n < node_count; ++n) {
    network.join_group(n, group);
    network.bind(n, excovery::net::kSdPort,
                 [&delivered](NodeId, const Packet&) { ++delivered; });
  }
  auto send_flood = [&] {
    Packet packet;
    packet.dst = group;
    packet.dst_port = excovery::net::kSdPort;
    packet.ttl = 255;  // geometric worlds at 50k have >32-hop diameters
    packet.payload.assign(256, 0x5A);
    (void)network.send(0, std::move(packet));
  };
  send_flood();  // warm-up flood, untimed
  scheduler.run();
  network.reset_run_state();
  delivered = 0;

  start = std::chrono::steady_clock::now();
  for (int i = 0; i < scale.floods; ++i) {
    send_flood();
    scheduler.run();
    network.reset_run_state();  // clear flood dedup sets between floods
  }
  result.flood_s = seconds_since(start);
  result.deliveries = static_cast<double>(delivered);
  if (connected &&
      delivered != static_cast<std::uint64_t>(scale.floods) * scale.nodes) {
    std::fprintf(stderr, "flood under-delivered at %zu nodes: %llu\n",
                 scale.nodes, static_cast<unsigned long long>(delivered));
    std::abort();
  }
  return result;
}

std::string today() {
  std::time_t now = std::time(nullptr);
  char buffer[32];
  std::strftime(buffer, sizeof buffer, "%Y-%m-%d", std::localtime(&now));
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int reps = 3;
  std::string out = "BENCH_topology.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      reps = 1;
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--reps N] [--out PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  // Mean degree held ~constant (r = sqrt(28 / (pi * V))) so every scale is
  // mesh-like and connected with overwhelming probability.
  std::vector<Scale> scales = {
      {100, 0.30, 200},
      {1'000, 0.094, 20},
      {10'000, 0.030, 2},
      {50'000, 0.0134, 1},
  };
  if (smoke) scales = {{100, 0.30, 50}, {10'000, 0.030, 1}};

  const double wall_budget_s = 120.0;  // 50k full pipeline, per repetition
  std::printf("topology scale bench: %d repetition(s) per scale%s\n", reps,
              smoke ? " (smoke)" : "");

  bool over_budget = false;
  std::vector<ScaleResult> results;
  for (const Scale& scale : scales) {
    std::vector<double> gen, warm, flood;
    ScaleResult last;
    for (int rep = 0; rep < reps; ++rep) {
      last = run_scale(scale, /*seed=*/20260808 + rep);
      gen.push_back(last.gen_s);
      warm.push_back(last.warm_s);
      flood.push_back(last.flood_s);
    }
    last.gen_s = median(gen);
    last.warm_s = median(warm);
    last.flood_s = median(flood);
    const double pipeline_s = last.gen_s + last.warm_s + last.flood_s;
    const double events_per_s = last.deliveries / last.flood_s;
    const double eager_bytes =
        static_cast<double>(scale.nodes) * scale.nodes * 6;
    const double mem_ratio = eager_bytes / last.routing_bytes;

    std::printf(
        "  %6zu nodes  %7zu links  gen %7.3fs  warm %7.3fs  "
        "flood %8.2f kdeliveries/s  routing %6.2f MiB (%5.0fx under "
        "all-pairs, %zu/%zu rows)\n",
        last.nodes, last.links, last.gen_s, last.warm_s, events_per_s / 1e3,
        last.routing_bytes / 1048576.0, mem_ratio, last.cached_rows,
        last.capacity_rows);

    if (scale.nodes >= 10'000 &&
        last.routing_bytes * 10 >= static_cast<std::size_t>(eager_bytes)) {
      std::fprintf(stderr,
                   "%s: routing memory at %zu nodes is not an order of "
                   "magnitude under the eager all-pairs matrix\n",
                   smoke ? "WARN" : "FAIL", scale.nodes);
      over_budget = true;
    }
    if (scale.nodes >= 50'000 && pipeline_s > wall_budget_s) {
      std::fprintf(stderr,
                   "%s: 50k pipeline took %.1fs, budget %.0fs\n",
                   smoke ? "WARN" : "FAIL", pipeline_s, wall_budget_s);
      over_budget = true;
    }
    results.push_back(last);
  }

  std::string json;
  json += "{\n";
  json +=
      " \"description\": \"Mega-scale topology engine "
      "(bench/bench_topology_scale.cpp, DESIGN.md \\u00a713): "
      "random-geometric worlds at constant mean degree (~28). Per scale: "
      "grid-indexed generation, lazy-routing warm-up (~64 on-demand BFS "
      "rows), then full multicast floods over the CSR adjacency. "
      "items_per_second = packet deliveries/sec during the flood phase; "
      "cpu_time_ns = full pipeline (generation + warm-up + floods); "
      "speedup = warm routing memory reduction vs. the former eager "
      "all-pairs matrix (6 bytes/pair), which at 50k nodes would need "
      "~15 GB before the first packet moves. Medians over repetitions.\",\n";
  json += " \"machine\": \"vm\",\n";
  json += " \"date\": \"" + today() + "\",\n";
  json += " \"benchmarks\": {\n";
  bool first = true;
  for (const ScaleResult& r : results) {
    if (!first) json += ",\n";
    first = false;
    const double pipeline_s = r.gen_s + r.warm_s + r.flood_s;
    const double eager_bytes = static_cast<double>(r.nodes) * r.nodes * 6;
    json += excovery::strings::format(
        "  \"BM_TopologyScale/%zu\": {\n"
        "   \"current\": {\"items_per_second\": %.0f, \"cpu_time_ns\": "
        "%.0f},\n"
        "   \"speedup_memory_vs_all_pairs\": %.2f,\n"
        "   \"links\": %zu,\n"
        "   \"generation_seconds\": %.6f,\n"
        "   \"routing_warmup_seconds\": %.6f,\n"
        "   \"flood_seconds\": %.6f,\n"
        "   \"routing_memory_bytes\": %zu,\n"
        "   \"eager_matrix_bytes\": %.0f,\n"
        "   \"cached_rows\": %zu,\n"
        "   \"row_cache_capacity\": %zu\n"
        "  }",
        r.nodes, r.deliveries / r.flood_s, pipeline_s * 1e9,
        eager_bytes / r.routing_bytes, r.links, r.gen_s, r.warm_s, r.flood_s,
        r.routing_bytes, eager_bytes, r.cached_rows, r.capacity_rows);
  }
  json += "\n }\n}\n";

  std::FILE* file = std::fopen(out.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  std::printf("wrote %s\n", out.c_str());

  if (over_budget && !smoke) return 1;
  return 0;
}
