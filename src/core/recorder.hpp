// Event measurement and recording (§IV-B1).
//
// "State changes on nodes in the context of ExCovery reflect events ...
// They contain a local time stamp and may have additional parameters."
//
// The recorder is the single funnel for events: every occurrence is
//  (1) stored into the originating node's level-2 store with the node's
//      *local* clock reading (as a real testbed would see it), and
//  (2) published on the master's event bus with the reference time, which
//      is what wait_for_event flow control subscribes to (the prototype
//      forwards events to the master over the control channel), and
//  (3) appended to a per-run history so waits can match events that
//      occurred between a wait_marker and the wait's start.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/value.hpp"
#include "sim/event_bus.hpp"
#include "sim/lineage.hpp"
#include "sim/scheduler.hpp"
#include "storage/level2.hpp"

namespace excovery::core {

/// Name used for events raised by environment processes, which are not
/// bound to a participant node.
inline constexpr const char* kEnvironmentNode = "environment";

class EventRecorder {
 public:
  /// `clock_of` returns the local clock reading (ns) of a node at the
  /// current reference time; the environment pseudo-node uses reference
  /// time directly.
  using ClockFn = std::function<std::int64_t(const std::string& node)>;

  EventRecorder(sim::Scheduler& scheduler, storage::Level2Store& level2,
                ClockFn clock_of);

  /// Current run id applied to recorded data.
  void begin_run(std::int64_t run_id);
  std::int64_t current_run() const noexcept { return run_id_; }

  /// Record an event occurring now on `node`.
  void record(const std::string& node, std::string_view type,
              const Value& parameter = {});

  /// Attach the causal lineage log: every recorded event then becomes a
  /// lineage node (parent = ambient context), and its bus subscribers run
  /// under it — so flow-control reactions chain to the event that woke
  /// them.  nullptr detaches.
  void set_lineage(sim::LineageLog* lineage) noexcept { lineage_ = lineage; }

  /// Reference-time history of the current run (for marker-based waits).
  const std::vector<sim::BusEvent>& history() const noexcept {
    return history_;
  }

  sim::EventBus& bus() noexcept { return bus_; }

  /// Total events recorded across all runs.
  std::uint64_t recorded() const noexcept { return recorded_; }

 private:
  sim::Scheduler& scheduler_;
  storage::Level2Store& level2_;
  ClockFn clock_of_;
  sim::EventBus bus_;
  std::vector<sim::BusEvent> history_;
  std::int64_t run_id_ = 0;
  std::uint64_t recorded_ = 0;
  /// Last-node store cache (valid within one run; reset by begin_run).
  std::string cached_name_;
  storage::NodeStore* cached_node_ = nullptr;
  sim::LineageLog* lineage_ = nullptr;
  std::uint16_t cached_label_ = 0;  ///< interned name of cached_name_
};

}  // namespace excovery::core
