# Empty dependencies file for bench_fig12_components.
# This may be replaced when dependencies are built.
