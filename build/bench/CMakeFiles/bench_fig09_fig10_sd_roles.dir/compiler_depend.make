# Empty compiler generated dependencies file for bench_fig09_fig10_sd_roles.
# This may be replaced when dependencies are built.
