// Unit tests for the experiment description: parsing the paper's XML
// dialect (Figures 4-10), serialisation round trips, validation and the
// shipped schema.
#include <gtest/gtest.h>

#include "core/description.hpp"
#include "core/scenario.hpp"
#include "xml/parser.hpp"

namespace excovery::core {
namespace {

/// A complete description in the dialect of the paper's figures.
const char* kFullDocument = R"(
<experiment name="sd-experiment" seed="1234">
  <parameterlist>
    <parameter key="sd_architecture">two-party</parameter>
    <parameter key="sd_protocol">mdns</parameter>
    <parameter key="sd_comm">active</parameter>
  </parameterlist>
  <nodelist>
    <node id="A" />
    <node id="B" />
  </nodelist>
  <factorlist>
    <factor id="fact_nodes" type="actor_node_map" usage="blocking">
      <levels><level>
        <actor id="actor0"><instance id="0">A</instance></actor>
        <actor id="actor1"><instance id="0">B</instance></actor>
      </level></levels>
    </factor>
    <factor usage="random" type="int" id="fact_pairs">
      <levels>
        <level>5</level><level>20</level>
      </levels>
    </factor>
    <factor usage="constant" id="fact_bw" type="int">
      <levels>
        <level>10</level><level>50</level><level>100</level>
      </levels>
    </factor>
    <replicationfactor usage="replication" type="int"
        id="fact_replication_id">1000</replicationfactor>
  </factorlist>
  <processes>
    <node_process>
      <actor id="actor0" name="SM">
        <sd_actions>
          <sd_init role="SM" />
          <sd_start_publish />
          <wait_for_event>
            <event_dependency>"done"</event_dependency>
          </wait_for_event>
          <sd_stop_publish />
          <sd_exit />
        </sd_actions>
      </actor>
      <actor id="actor1" name="SU">
        <sd_actions>
          <wait_for_event>
            <from_dependency>
              <node actor="actor0" instance="all"/>
            </from_dependency>
            <event_dependency>"sd_start_publish"</event_dependency>
          </wait_for_event>
          <sd_init />
          <wait_marker />
          <sd_start_search />
          <wait_for_event>
            <from_dependency><node actor="actor1" instance="all"/>
            </from_dependency>
            <event_dependency>"sd_service_add"</event_dependency>
            <param_dependency><node actor="actor0" instance="all"/>
            </param_dependency>
            <timeout>"30"</timeout>
          </wait_for_event>
          <event_flag><value>"done"</value></event_flag>
          <sd_stop_search />
          <sd_exit />
        </sd_actions>
      </actor>
    </node_process>
    <manipulation_process node="B">
      <actions>
        <fault_message_loss_start>
          <probability>0.2</probability>
          <direction>both</direction>
        </fault_message_loss_start>
        <wait_for_event>
          <event_dependency>"done"</event_dependency>
        </wait_for_event>
        <fault_message_loss_stop />
      </actions>
    </manipulation_process>
    <env_process>
      <env_actions>
        <event_flag><value>"ready_to_init"</value></event_flag>
        <env_traffic_start>
          <bw><factorref id="fact_bw" /></bw>
          <choice>0</choice>
          <random_switch_amount>"1"</random_switch_amount>
          <random_switch_seed>
            <factorref id="fact_replication_id" />
          </random_switch_seed>
          <random_pairs><factorref id="fact_pairs" /></random_pairs>
          <random_seed><factorref id="fact_pairs" /></random_seed>
        </env_traffic_start>
        <wait_for_event>
          <event_dependency>"done"</event_dependency>
        </wait_for_event>
        <env_traffic_stop />
      </env_actions>
    </env_process>
  </processes>
  <platform>
    <actor_nodes>
      <node id="A" abstract="A" address="10.0.0.1" />
      <node id="B" abstract="B" address="10.0.0.2" />
    </actor_nodes>
    <environment_nodes>
      <node id="E1" address="10.0.0.3" />
      <node id="E2" address="10.0.0.4" />
    </environment_nodes>
  </platform>
</experiment>
)";

TEST(Description, ParsesFullDocument) {
  Result<ExperimentDescription> parsed =
      ExperimentDescription::parse(kFullDocument);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  const ExperimentDescription& description = parsed.value();

  EXPECT_EQ(description.name, "sd-experiment");
  EXPECT_EQ(description.seed, 1234u);
  EXPECT_EQ(description.info("sd_architecture"), "two-party");
  EXPECT_EQ(description.info("sd_protocol"), "mdns");
  EXPECT_EQ(description.info("missing"), "");
  EXPECT_EQ(description.abstract_nodes,
            (std::vector<std::string>{"A", "B"}));
  EXPECT_EQ(description.replications, 1000);
  EXPECT_EQ(description.replication_factor_id, "fact_replication_id");
  EXPECT_EQ(description.node_factor_id, "fact_nodes");
  ASSERT_EQ(description.factors.size(), 3u);
  EXPECT_EQ(description.factors[1].usage, FactorUsage::kRandom);
  ASSERT_EQ(description.factors[2].levels.size(), 3u);
  EXPECT_EQ(description.factors[2].levels[1].to_int().value(), 50);

  ASSERT_EQ(description.actor_processes.size(), 2u);
  const ActorProcess& su = description.actor_processes[1];
  EXPECT_EQ(su.name, "SU");
  ASSERT_EQ(su.actions.size(), 8u);
  EXPECT_EQ(su.actions[0].name, "wait_for_event");
  const ParamValue* from = su.actions[0].param("from_dependency");
  ASSERT_NE(from, nullptr);
  EXPECT_EQ(from->kind, ParamValue::Kind::kNodeSet);
  EXPECT_EQ(from->node_set.actor, "actor0");
  EXPECT_EQ(from->node_set.instance, "all");
  const ParamValue* timeout = su.actions[4].param("timeout");
  ASSERT_NE(timeout, nullptr);
  EXPECT_EQ(timeout->literal.to_double().value(), 30.0);

  ASSERT_EQ(description.manipulation_processes.size(), 1u);
  EXPECT_EQ(description.manipulation_processes[0].node_id, "B");
  ASSERT_EQ(description.env_processes.size(), 1u);
  const ProcessAction& traffic = description.env_processes[0].actions[1];
  EXPECT_EQ(traffic.name, "env_traffic_start");
  const ParamValue* bw = traffic.param("bw");
  ASSERT_NE(bw, nullptr);
  EXPECT_EQ(bw->kind, ParamValue::Kind::kFactorRef);
  EXPECT_EQ(bw->factor_id, "fact_bw");

  ASSERT_EQ(description.platform.actor_nodes.size(), 2u);
  EXPECT_EQ(description.platform.actor_nodes[0].address, "10.0.0.1");
  ASSERT_EQ(description.platform.environment_nodes.size(), 2u);

}

TEST(Description, RoundTripThroughXml) {
  Result<ExperimentDescription> parsed =
      ExperimentDescription::parse(kFullDocument);
  ASSERT_TRUE(parsed.ok());
  std::string text = parsed.value().to_xml_text();
  Result<ExperimentDescription> reparsed =
      ExperimentDescription::parse(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.error().to_string();

  EXPECT_EQ(reparsed.value().name, parsed.value().name);
  EXPECT_EQ(reparsed.value().seed, parsed.value().seed);
  EXPECT_EQ(reparsed.value().replications, parsed.value().replications);
  EXPECT_EQ(reparsed.value().abstract_nodes, parsed.value().abstract_nodes);
  EXPECT_EQ(reparsed.value().factors.size(), parsed.value().factors.size());
  ASSERT_EQ(reparsed.value().actor_processes.size(),
            parsed.value().actor_processes.size());
  for (std::size_t i = 0; i < parsed.value().actor_processes.size(); ++i) {
    EXPECT_EQ(reparsed.value().actor_processes[i].actions.size(),
              parsed.value().actor_processes[i].actions.size());
  }
  EXPECT_EQ(reparsed.value().env_processes.size(), 1u);
  // Second round trip is a fixed point.
  EXPECT_EQ(reparsed.value().to_xml_text(), text);
}

TEST(Description, SchemaAcceptsGeneratedDocuments) {
  Result<ExperimentDescription> parsed =
      ExperimentDescription::parse(kFullDocument);
  ASSERT_TRUE(parsed.ok());
  xml::Document doc = parsed.value().to_xml();
  Status status = description_schema().validate(doc.root());
  EXPECT_TRUE(status.ok()) << (status.ok() ? "" : status.error().to_string());
}

TEST(Description, ValidationCatchesDanglingReferences) {
  scenario::TwoPartyOptions options;
  Result<ExperimentDescription> base = scenario::two_party_sd(options);
  ASSERT_TRUE(base.ok());

  {
    ExperimentDescription broken = base.value();
    ProcessAction action;
    action.name = "env_traffic_start";
    action.params.emplace_back("bw", ParamValue::factor("no_such_factor"));
    broken.env_processes.push_back(EnvProcess{{action}});
    Status status = broken.validate();
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.error().message().find("no_such_factor"),
              std::string::npos);
  }
  {
    ExperimentDescription broken = base.value();
    broken.manipulation_processes.push_back(
        ManipulationProcess{"GHOST", {}});
    EXPECT_FALSE(broken.validate().ok());
  }
  {
    ExperimentDescription broken = base.value();
    broken.abstract_nodes.clear();
    EXPECT_FALSE(broken.validate().ok());
  }
  {
    ExperimentDescription broken = base.value();
    broken.replications = 0;
    EXPECT_FALSE(broken.validate().ok());
  }
  {
    // Actor map referencing an undefined actor.
    ExperimentDescription broken = base.value();
    for (Factor& factor : broken.factors) {
      if (factor.id != broken.node_factor_id) continue;
      ValueMap map = factor.levels[0].as_map();
      map.emplace("actor9", Value{ValueArray{Value{"SM0"}}});
      factor.levels[0] = Value{std::move(map)};
    }
    Status status = broken.validate();
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.error().message().find("actor9"), std::string::npos);
  }
}

TEST(Description, ValidationRequiresPlatformMapping) {
  scenario::TwoPartyOptions options;
  Result<ExperimentDescription> base = scenario::two_party_sd(options);
  ASSERT_TRUE(base.ok());
  ExperimentDescription broken = base.value();
  broken.platform.actor_nodes.pop_back();  // drop one mapping
  EXPECT_FALSE(broken.validate().ok());
}

TEST(Description, FactorUsageParsing) {
  EXPECT_EQ(parse_factor_usage("blocking").value(), FactorUsage::kBlocking);
  EXPECT_EQ(parse_factor_usage("CONSTANT").value(), FactorUsage::kConstant);
  EXPECT_EQ(parse_factor_usage("random").value(), FactorUsage::kRandom);
  EXPECT_EQ(parse_factor_usage("replication").value(),
            FactorUsage::kReplication);
  EXPECT_FALSE(parse_factor_usage("sometimes").ok());
}

TEST(Description, FactorsNeedLevels) {
  const char* doc = R"(
    <experiment name="x">
      <nodelist><node id="A"/></nodelist>
      <factorlist>
        <factor id="f" type="int"><levels></levels></factor>
      </factorlist>
      <processes/>
    </experiment>)";
  EXPECT_FALSE(ExperimentDescription::parse(doc).ok());
}

TEST(Description, MinimalDocumentParses) {
  const char* doc = R"(
    <experiment name="tiny" seed="7">
      <nodelist><node id="A"/></nodelist>
      <factorlist>
        <replicationfactor usage="replication" type="int" id="r">3
        </replicationfactor>
      </factorlist>
      <processes/>
    </experiment>)";
  Result<ExperimentDescription> parsed = ExperimentDescription::parse(doc);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(parsed.value().replications, 3);
  EXPECT_TRUE(parsed.value().actor_processes.empty());
}

TEST(Description, ScenarioBuilderMatchesPaperShape) {
  scenario::TwoPartyOptions options;
  options.sm_count = 2;
  options.su_count = 1;
  options.pairs_levels = {5, 20};
  options.bw_levels = {10, 50, 100};
  options.loss_levels = {0.0, 0.2};
  Result<ExperimentDescription> description =
      scenario::two_party_sd(options);
  ASSERT_TRUE(description.ok());
  EXPECT_EQ(description.value().factors.size(), 4u);  // nodes, pairs, bw, loss
  EXPECT_EQ(description.value().actor_processes.size(), 2u);
  EXPECT_EQ(description.value().manipulation_processes.size(), 1u);
  EXPECT_EQ(description.value().env_processes.size(), 1u);
  // The generated description itself validates and round-trips.
  std::string text = description.value().to_xml_text();
  EXPECT_TRUE(ExperimentDescription::parse(text).ok());
}

TEST(Description, ScenarioRejectsEmptyRoles) {
  scenario::TwoPartyOptions options;
  options.sm_count = 0;
  EXPECT_FALSE(scenario::two_party_sd(options).ok());
}

}  // namespace
}  // namespace excovery::core
