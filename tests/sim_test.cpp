// Unit tests for the discrete-event kernel: scheduler, clocks, event bus.
#include <gtest/gtest.h>

#include "sim/clock.hpp"
#include "sim/event_bus.hpp"
#include "sim/scheduler.hpp"

namespace excovery::sim {
namespace {

// ---- SimTime -----------------------------------------------------------------

TEST(SimTime, ConversionsAndArithmetic) {
  EXPECT_EQ(SimTime::from_seconds(1.5).nanos(), 1'500'000'000);
  EXPECT_EQ(SimTime::from_millis(3).nanos(), 3'000'000);
  EXPECT_EQ(SimTime::from_micros(5).nanos(), 5'000);
  EXPECT_DOUBLE_EQ(SimTime(2'000'000'000).seconds(), 2.0);
  EXPECT_DOUBLE_EQ(SimTime(1'500'000).millis(), 1.5);
  EXPECT_EQ(SimTime(5) + SimTime(3), SimTime(8));
  EXPECT_EQ(SimTime(5) - SimTime(3), SimTime(2));
  EXPECT_LT(SimTime(1), SimTime(2));
}

// ---- Scheduler ------------------------------------------------------------------

TEST(Scheduler, ExecutesInTimeOrder) {
  Scheduler scheduler;
  std::vector<int> order;
  scheduler.schedule(SimDuration::from_millis(30), [&] { order.push_back(3); });
  scheduler.schedule(SimDuration::from_millis(10), [&] { order.push_back(1); });
  scheduler.schedule(SimDuration::from_millis(20), [&] { order.push_back(2); });
  scheduler.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(scheduler.now(), SimTime::from_millis(30));
}

TEST(Scheduler, TiesBreakByInsertionOrder) {
  Scheduler scheduler;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    scheduler.schedule(SimDuration::from_millis(5),
                       [&order, i] { order.push_back(i); });
  }
  scheduler.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler scheduler;
  bool ran = false;
  TimerHandle handle =
      scheduler.schedule(SimDuration::from_millis(1), [&] { ran = true; });
  scheduler.cancel(handle);
  scheduler.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(scheduler.pending(), 0u);
}

TEST(Scheduler, CancelAfterRunIsNoop) {
  Scheduler scheduler;
  TimerHandle handle = scheduler.schedule(SimDuration::zero(), [] {});
  scheduler.run();
  scheduler.cancel(handle);  // must not crash or corrupt
  EXPECT_TRUE(scheduler.idle());
}

TEST(Scheduler, RunUntilStopsAtDeadline) {
  Scheduler scheduler;
  int count = 0;
  for (int i = 1; i <= 5; ++i) {
    scheduler.schedule(SimDuration::from_millis(i * 10), [&] { ++count; });
  }
  std::size_t executed = scheduler.run_until(SimTime::from_millis(25));
  EXPECT_EQ(executed, 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(scheduler.now(), SimTime::from_millis(25));
  scheduler.run();
  EXPECT_EQ(count, 5);
}

TEST(Scheduler, RunUntilAdvancesClockWhenIdle) {
  Scheduler scheduler;
  scheduler.run_until(SimTime::from_seconds(2));
  EXPECT_EQ(scheduler.now(), SimTime::from_seconds(2));
}

TEST(Scheduler, EventsCanScheduleEvents) {
  Scheduler scheduler;
  std::vector<double> times;
  std::function<void()> chain = [&] {
    times.push_back(scheduler.now().seconds());
    if (times.size() < 4) {
      scheduler.schedule(SimDuration::from_seconds(1), chain);
    }
  };
  scheduler.schedule(SimDuration::zero(), chain);
  scheduler.run();
  ASSERT_EQ(times.size(), 4u);
  EXPECT_DOUBLE_EQ(times[3], 3.0);
}

TEST(Scheduler, NegativeDelayClampsToNow) {
  Scheduler scheduler;
  bool ran = false;
  scheduler.schedule(SimDuration(-100), [&] { ran = true; });
  scheduler.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(scheduler.now(), SimTime::zero());
}

TEST(Scheduler, RunWithLimit) {
  Scheduler scheduler;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    scheduler.schedule(SimDuration::from_millis(i), [&] { ++count; });
  }
  EXPECT_EQ(scheduler.run(3), 3u);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(scheduler.pending(), 7u);
}

// ---- LocalClock ---------------------------------------------------------------------

TEST(LocalClock, IdealClockTracksReference) {
  LocalClock clock;
  EXPECT_EQ(clock.read(SimTime::from_seconds(5)), SimTime::from_seconds(5));
  EXPECT_EQ(clock.true_offset_at(SimTime::from_seconds(5)), SimDuration(0));
}

TEST(LocalClock, OffsetShiftsReadings) {
  ClockModel model;
  model.offset = SimDuration::from_millis(25);
  LocalClock clock(model, 1);
  EXPECT_EQ(clock.read(SimTime::zero()), SimTime::from_millis(25));
}

TEST(LocalClock, DriftAccumulates) {
  ClockModel model;
  model.drift_ppm = 100.0;  // 100 us per second
  LocalClock clock(model, 1);
  SimTime at_100s = clock.local_at(SimTime::from_seconds(100));
  EXPECT_NEAR(static_cast<double>((at_100s - SimTime::from_seconds(100)).nanos()),
              100.0 * 100.0 * 1000.0, 1000.0);
}

TEST(LocalClock, GlobalAtInvertsLocalAt) {
  ClockModel model;
  model.offset = SimDuration::from_millis(-40);
  model.drift_ppm = -75.0;
  LocalClock clock(model, 1);
  SimTime global = SimTime::from_seconds(123.456);
  SimTime local = clock.local_at(global);
  SimTime back = clock.global_at(local);
  EXPECT_NEAR(static_cast<double>((back - global).nanos()), 0.0, 5.0);
}

TEST(LocalClock, JitterIsBoundedAndDeterministic) {
  ClockModel model;
  model.read_jitter = SimDuration::from_micros(50);
  LocalClock a(model, 99);
  LocalClock b(model, 99);
  for (int i = 0; i < 100; ++i) {
    SimTime t = SimTime::from_millis(i);
    SimTime ra = a.read(t);
    EXPECT_LE(std::abs((ra - t).nanos()), 50'000);
    EXPECT_EQ(ra, b.read(t));  // same seed -> same jitter sequence
  }
}

// ---- EventBus --------------------------------------------------------------------------

TEST(EventBus, DeliversToNameSubscribers) {
  EventBus bus;
  int hits = 0;
  bus.subscribe("boom", [&](const BusEvent&) { ++hits; });
  bus.publish({SimTime::zero(), "n", "boom", Value{}});
  bus.publish({SimTime::zero(), "n", "other", Value{}});
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(bus.published(), 2u);
}

TEST(EventBus, WildcardSeesEverything) {
  EventBus bus;
  std::vector<std::string> seen;
  bus.subscribe("", [&](const BusEvent& e) { seen.push_back(e.name); });
  bus.publish({SimTime::zero(), "n", "a", Value{}});
  bus.publish({SimTime::zero(), "n", "b", Value{}});
  EXPECT_EQ(seen, (std::vector<std::string>{"a", "b"}));
}

TEST(EventBus, UnsubscribeStopsDelivery) {
  EventBus bus;
  int hits = 0;
  SubscriptionHandle handle =
      bus.subscribe("x", [&](const BusEvent&) { ++hits; });
  bus.publish({SimTime::zero(), "n", "x", Value{}});
  bus.unsubscribe(handle);
  bus.publish({SimTime::zero(), "n", "x", Value{}});
  EXPECT_EQ(hits, 1);
}

TEST(EventBus, ReentrantSubscribeDoesNotSeeCurrentEvent) {
  EventBus bus;
  int inner_hits = 0;
  bus.subscribe("x", [&](const BusEvent&) {
    bus.subscribe("x", [&](const BusEvent&) { ++inner_hits; });
  });
  bus.publish({SimTime::zero(), "n", "x", Value{}});
  EXPECT_EQ(inner_hits, 0);
  bus.publish({SimTime::zero(), "n", "x", Value{}});
  EXPECT_EQ(inner_hits, 1);
}

TEST(EventBus, UnsubscribeDuringPublishIsSafe) {
  EventBus bus;
  int hits_a = 0;
  int hits_b = 0;
  SubscriptionHandle b_handle;
  bus.subscribe("x", [&](const BusEvent&) {
    ++hits_a;
    bus.unsubscribe(b_handle);
  });
  b_handle = bus.subscribe("x", [&](const BusEvent&) { ++hits_b; });
  bus.publish({SimTime::zero(), "n", "x", Value{}});
  bus.publish({SimTime::zero(), "n", "x", Value{}});
  EXPECT_EQ(hits_a, 2);
  EXPECT_EQ(hits_b, 0);  // removed before its first delivery
}

TEST(EventBus, EventCarriesPayload) {
  EventBus bus;
  BusEvent captured;
  bus.subscribe("sd_service_add",
                [&](const BusEvent& e) { captured = e; });
  bus.publish({SimTime::from_seconds(1), "SU0", "sd_service_add",
               Value{"SM0"}});
  EXPECT_EQ(captured.node, "SU0");
  EXPECT_EQ(captured.parameter.as_string(), "SM0");
  EXPECT_EQ(captured.time, SimTime::from_seconds(1));
}

}  // namespace
}  // namespace excovery::sim
