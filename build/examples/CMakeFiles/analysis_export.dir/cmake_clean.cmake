file(REMOVE_RECURSE
  "CMakeFiles/analysis_export.dir/analysis_export.cpp.o"
  "CMakeFiles/analysis_export.dir/analysis_export.cpp.o.d"
  "analysis_export"
  "analysis_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
