file(REMOVE_RECURSE
  "CMakeFiles/responsiveness_study.dir/responsiveness_study.cpp.o"
  "CMakeFiles/responsiveness_study.dir/responsiveness_study.cpp.o.d"
  "responsiveness_study"
  "responsiveness_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/responsiveness_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
