#include "common/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>

namespace excovery::strings {

namespace {
bool is_space(char c) noexcept {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}
}  // namespace

std::string trim(std::string_view s) {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && is_space(s[begin])) ++begin;
  while (end > begin && is_space(s[end - 1])) --end;
  return std::string(s.substr(begin, end - begin));
}

std::string strip_quotes(std::string_view s) {
  if (s.size() >= 2 && s.front() == '"' && s.back() == '"') {
    return std::string(s.substr(1, s.size() - 2));
  }
  return std::string(s);
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += sep;
    out += items[i];
  }
  return out;
}

std::string format_double(double d) {
  char buf[64];
  // %.17g always round-trips but is ugly; try shorter precisions first.
  for (int precision = 6; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof buf, "%.*g", precision, d);
    double back = 0.0;
    std::string_view sv(buf);
    auto [ptr, ec] = std::from_chars(sv.data(), sv.data() + sv.size(), back);
    if (ec == std::errc{} && ptr == sv.data() + sv.size() && back == d) break;
  }
  return buf;
}

std::string to_hex(const std::vector<std::uint8_t>& bytes) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (std::uint8_t b : bytes) {
    out.push_back(kDigits[b >> 4]);
    out.push_back(kDigits[b & 0x0F]);
  }
  return out;
}

std::vector<std::uint8_t> from_hex(std::string_view hex) {
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  std::vector<std::uint8_t> out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2) {
    int hi = nibble(hex[i]);
    int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) break;
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

std::string format(const char* fmt, ...) {
  std::va_list args;
  va_start(args, fmt);
  std::va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed) + 1);
    std::vsnprintf(out.data(), out.size(), fmt, args_copy);
    out.resize(static_cast<std::size_t>(needed));
  }
  va_end(args_copy);
  return out;
}

}  // namespace excovery::strings
