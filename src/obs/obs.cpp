#include "obs/obs.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>

#include "common/log.hpp"
#include "stats/metrics.hpp"
#include "storage/package.hpp"

namespace excovery::obs {

namespace {

void append_double(std::string& out, double value) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu",
                static_cast<unsigned long long>(value));
  out += buf;
}

}  // namespace

// ---- RunMetricsLedger ------------------------------------------------------

void RunMetricsLedger::record(std::int64_t run_id, std::string_view name,
                              double value) {
  std::lock_guard lock(mutex_);
  Entry entry;
  entry.run_id = run_id;
  entry.name = std::string(name);
  entry.value = value;
  entries_.push_back(std::move(entry));
}

std::vector<RunMetricsLedger::Entry> RunMetricsLedger::sorted() const {
  std::vector<Entry> out;
  {
    std::lock_guard lock(mutex_);
    out = entries_;
  }
  std::stable_sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    if (a.run_id != b.run_id) return a.run_id < b.run_id;
    return a.name < b.name;
  });
  return out;
}

std::size_t RunMetricsLedger::size() const {
  std::lock_guard lock(mutex_);
  return entries_.size();
}

// ---- ObsContext ------------------------------------------------------------

ObsContext::ObsContext(ObsConfig config)
    : config_(config),
      trace_(config.trace),
      merged_(&registry_),
      started_(std::chrono::steady_clock::now()),
      last_progress_log_(started_) {
  using D = MetricDomain;
  ids_.runs_completed = registry_.counter("runs.completed", D::kDeterministic);
  ids_.runs_attempts = registry_.counter("runs.attempts", D::kDeterministic);
  ids_.runs_retries = registry_.counter("runs.retries", D::kDeterministic);
  ids_.runs_watchdog_aborts =
      registry_.counter("runs.watchdog_aborts", D::kDeterministic);
  ids_.runs_deadlock_aborts =
      registry_.counter("runs.deadlock_aborts", D::kDeterministic);
  ids_.bus_published =
      registry_.counter("bus.published", D::kDeterministic, "events");
  ids_.bus_dispatched =
      registry_.counter("bus.dispatched", D::kDeterministic, "callbacks");
  ids_.net_sent = registry_.counter("net.sent", D::kDeterministic, "packets");
  ids_.net_delivered =
      registry_.counter("net.delivered", D::kDeterministic, "packets");
  ids_.net_forwarded =
      registry_.counter("net.forwarded", D::kDeterministic, "packets");
  ids_.net_dropped =
      registry_.counter("net.dropped", D::kDeterministic, "packets");
  ids_.net_bytes_sent =
      registry_.counter("net.bytes_sent", D::kDeterministic, "bytes");
  ids_.fault_activations =
      registry_.counter("faults.activations", D::kDeterministic);
  ids_.fault_deactivations =
      registry_.counter("faults.deactivations", D::kDeterministic);
  ids_.fault_packets_dropped =
      registry_.counter("faults.packets_dropped", D::kDeterministic, "packets");
  ids_.fault_packets_delayed =
      registry_.counter("faults.packets_delayed", D::kDeterministic, "packets");
  ids_.fault_packets_duplicated = registry_.counter(
      "faults.packets_duplicated", D::kDeterministic, "packets");
  ids_.fault_packets_reordered = registry_.counter(
      "faults.packets_reordered", D::kDeterministic, "packets");
  ids_.run_sim_seconds =
      registry_.log_histogram("run.sim_seconds", D::kDeterministic, "s");

  ids_.sched_events_executed =
      registry_.counter("sched.events_executed", D::kBestEffort, "events");
  ids_.sched_timers_cancelled =
      registry_.counter("sched.timers_cancelled", D::kBestEffort, "timers");
  ids_.sched_max_pending =
      registry_.gauge("sched.max_pending", D::kBestEffort, "events");
  ids_.sched_arena_slots =
      registry_.gauge("sched.arena_slots", D::kBestEffort, "slots");

  ids_.run_wall_ns = registry_.log_histogram("run.wall_ns", D::kWall, "ns");
  ids_.pool_tasks = registry_.counter("pool.tasks", D::kWall, "tasks");
  ids_.pool_queue_delay_ns =
      registry_.log_histogram("pool.queue_delay_ns", D::kWall, "ns");
  ids_.pool_busy_ns = registry_.log_histogram("pool.busy_ns", D::kWall, "ns");
  ids_.condition_wall_ns =
      registry_.log_histogram("storage.condition_wall_ns", D::kWall, "ns");
  ids_.condition_shards =
      registry_.counter("storage.condition_shards", D::kWall, "shards");
}

void ObsContext::merge_shard(const MetricsShard& shard) {
  std::lock_guard lock(merge_mutex_);
  merged_.merge_from(shard);
}

void ObsContext::add(MetricId id, std::uint64_t n) {
  std::lock_guard lock(merge_mutex_);
  merged_.add(id, n);
}

void ObsContext::observe(MetricId id, double value) {
  std::lock_guard lock(merge_mutex_);
  merged_.observe(id, value);
}

void ObsContext::set_gauge(MetricId id, std::int64_t value) {
  std::lock_guard lock(merge_mutex_);
  merged_.set_gauge(id, value);
}

MetricCell ObsContext::merged_cell(MetricId id) const {
  std::lock_guard lock(merge_mutex_);
  const MetricCell* cell = merged_.cell(id);
  return cell ? *cell : MetricCell{};
}

void ObsContext::PoolObserverImpl::on_task(std::int64_t queue_delay_ns,
                                           std::int64_t busy_ns) {
  std::lock_guard lock(owner_->merge_mutex_);
  owner_->merged_.add(owner_->ids_.pool_tasks);
  owner_->merged_.observe(owner_->ids_.pool_queue_delay_ns,
                          static_cast<double>(queue_delay_ns));
  owner_->merged_.observe(owner_->ids_.pool_busy_ns,
                          static_cast<double>(busy_ns));
}

void ObsContext::report_progress(std::size_t completed, std::size_t total,
                                 std::int64_t run_id, int attempt) {
  const auto now = std::chrono::steady_clock::now();
  bool log_line = false;
  {
    std::lock_guard lock(progress_mutex_);
    const double since_last =
        std::chrono::duration<double>(now - last_progress_log_).count();
    if (!progress_logged_ || completed >= total ||
        since_last >= config_.progress_interval_s) {
      log_line = true;
      progress_logged_ = true;
      last_progress_log_ = now;
    }
  }
  if (log_line) {
    const double elapsed =
        std::chrono::duration<double>(now - started_).count();
    const double pct =
        total == 0 ? 100.0
                   : 100.0 * static_cast<double>(completed) /
                         static_cast<double>(total);
    char line[160];
    std::snprintf(line, sizeof line,
                  "runs %zu/%zu (%.1f%%) last=#%lld attempt=%d elapsed=%.2fs",
                  completed, total, pct, static_cast<long long>(run_id),
                  attempt, elapsed);
    EXC_LOG_INFO("obs", line);
  }
  trace_.counter(Track::kWall, 0, "runs_completed", trace_.wall_now_ns(),
                 static_cast<double>(completed));
}

std::string ObsContext::format_deterministic_metrics() const {
  MetricsShard merged(&registry_);
  {
    std::lock_guard lock(merge_mutex_);
    merged.merge_from(merged_);
  }
  const std::vector<MetricDesc> descs = registry_.descriptors();

  std::string out;
  for (std::size_t i = 0; i < descs.size(); ++i) {
    const MetricDesc& desc = descs[i];
    if (desc.domain != MetricDomain::kDeterministic) continue;
    const MetricCell* cell = merged.cell(MetricId{
        static_cast<std::uint32_t>(i)});
    static const MetricCell kZero{};
    if (!cell) cell = &kZero;
    out += desc.name;
    switch (desc.kind) {
      case MetricKind::kCounter:
        out += '=';
        append_u64(out, cell->count);
        break;
      case MetricKind::kGauge:
        out += '=';
        if (cell->gauge_set) {
          char buf[32];
          std::snprintf(buf, sizeof buf, "%lld",
                        static_cast<long long>(cell->gauge_last));
          out += buf;
        } else {
          out += "unset";
        }
        break;
      case MetricKind::kHistogram:
        out += " count=";
        append_u64(out, cell->count);
        out += " nan=";
        append_u64(out, cell->nan_count);
        if (cell->count > 0) {
          out += " sum=";
          append_double(out, cell->sum);
          out += " min=";
          append_double(out, cell->min);
          out += " max=";
          append_double(out, cell->max);
        }
        out += " bins=";
        bool first = true;
        for (std::size_t b = 0; b < cell->bins.size(); ++b) {
          if (cell->bins[b] == 0) continue;
          if (!first) out += ',';
          first = false;
          append_u64(out, b);
          out += ':';
          append_u64(out, cell->bins[b]);
        }
        break;
    }
    out += '\n';
  }

  for (const RunMetricsLedger::Entry& entry : ledger_.sorted()) {
    out += "run/";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld",
                  static_cast<long long>(entry.run_id));
    out += buf;
    out += '/';
    out += entry.name;
    out += '=';
    append_double(out, entry.value);
    out += '\n';
  }
  return out;
}

std::string ObsContext::metrics_json() const {
  MetricsShard merged(&registry_);
  {
    std::lock_guard lock(merge_mutex_);
    merged.merge_from(merged_);
  }
  const std::vector<MetricDesc> descs = registry_.descriptors();
  const std::vector<RunMetricsLedger::Entry> entries = ledger_.sorted();

  std::string out = "{\n\"metrics\":[";
  for (std::size_t i = 0; i < descs.size(); ++i) {
    const MetricDesc& desc = descs[i];
    const MetricCell* cell =
        merged.cell(MetricId{static_cast<std::uint32_t>(i)});
    static const MetricCell kZero{};
    if (!cell) cell = &kZero;
    if (i != 0) out += ',';
    out += "\n{\"name\":\"";
    out += json_escape(desc.name);
    out += "\",\"kind\":\"";
    out += to_string(desc.kind);
    out += "\",\"domain\":\"";
    out += to_string(desc.domain);
    out += "\",\"unit\":\"";
    out += json_escape(desc.unit);
    out += '"';
    switch (desc.kind) {
      case MetricKind::kCounter:
        out += ",\"value\":";
        append_u64(out, cell->count);
        break;
      case MetricKind::kGauge:
        if (cell->gauge_set) {
          char buf[64];
          std::snprintf(buf, sizeof buf, ",\"last\":%lld,\"max\":%lld",
                        static_cast<long long>(cell->gauge_last),
                        static_cast<long long>(cell->gauge_max));
          out += buf;
        } else {
          out += ",\"last\":null";
        }
        break;
      case MetricKind::kHistogram:
        out += ",\"count\":";
        append_u64(out, cell->count);
        out += ",\"nan\":";
        append_u64(out, cell->nan_count);
        if (cell->count > 0) {
          out += ",\"sum\":";
          append_double(out, cell->sum);
          out += ",\"mean\":";
          append_double(out, cell->sum / static_cast<double>(cell->count));
          out += ",\"min\":";
          append_double(out, cell->min);
          out += ",\"max\":";
          append_double(out, cell->max);
        }
        // Non-empty bins as [lower_bound, count] pairs for log-scale
        // histograms, [index, count] pairs for equal-width ones.
        out += ",\"bins\":[";
        {
          bool first = true;
          for (std::size_t b = 0; b < cell->bins.size(); ++b) {
            if (cell->bins[b] == 0) continue;
            if (!first) out += ',';
            first = false;
            out += '[';
            if (desc.hist.log_scale) {
              append_double(out, log_bin_lower(b));
            } else {
              append_u64(out, b);
            }
            out += ',';
            append_u64(out, cell->bins[b]);
            out += ']';
          }
        }
        out += ']';
        break;
    }
    out += '}';
  }
  out += "\n],\n\"run_summaries\":[";

  // Per-name summaries over the ledger, using the analysis layer's
  // percentile so the dump matches what the stats tooling would report.
  std::map<std::string, std::vector<double>> by_name;
  for (const auto& entry : entries) {
    by_name[entry.name].push_back(entry.value);
  }
  bool first_summary = true;
  for (const auto& [name, values] : by_name) {
    if (!first_summary) out += ',';
    first_summary = false;
    out += "\n{\"name\":\"";
    out += json_escape(name);
    out += "\",\"runs\":";
    append_u64(out, values.size());
    out += ",\"mean\":";
    append_double(out, stats::mean(values));
    out += ",\"p50\":";
    append_double(out, stats::percentile(values, 50.0));
    out += ",\"p95\":";
    append_double(out, stats::percentile(values, 95.0));
    out += ",\"min\":";
    append_double(out, stats::min_of(values));
    out += ",\"max\":";
    append_double(out, stats::max_of(values));
    out += '}';
  }
  out += "\n],\n\"runs\":[";

  bool first_run = true;
  std::int64_t open_run = 0;
  bool run_open = false;
  for (const auto& entry : entries) {
    if (!run_open || entry.run_id != open_run) {
      if (run_open) out += "}}";
      if (!first_run) out += ',';
      first_run = false;
      run_open = true;
      open_run = entry.run_id;
      out += "\n{\"run\":";
      char buf[32];
      std::snprintf(buf, sizeof buf, "%lld",
                    static_cast<long long>(entry.run_id));
      out += buf;
      out += ",\"values\":{";
      out += '"';
      out += json_escape(entry.name);
      out += "\":";
      append_double(out, entry.value);
      continue;
    }
    out += ",\"";
    out += json_escape(entry.name);
    out += "\":";
    append_double(out, entry.value);
  }
  if (run_open) out += "}}";
  out += "\n]\n}\n";
  return out;
}

Status ObsContext::write_metrics_json(const std::string& path) const {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return err_io("cannot open metrics output file " + path);
  const std::string json = metrics_json();
  file.write(json.data(), static_cast<std::streamsize>(json.size()));
  file.flush();
  if (!file) return err_io("failed writing metrics output file " + path);
  return Status::ok_status();
}

Status ObsContext::export_metrics(storage::ExperimentPackage& package) const {
  MetricsShard merged(&registry_);
  {
    std::lock_guard lock(merge_mutex_);
    merged.merge_from(merged_);
  }
  const std::vector<MetricDesc> descs = registry_.descriptors();
  // Experiment-wide deterministic values first, as RunID -1 rows.
  for (std::size_t i = 0; i < descs.size(); ++i) {
    const MetricDesc& desc = descs[i];
    if (desc.domain != MetricDomain::kDeterministic) continue;
    const MetricCell* cell =
        merged.cell(MetricId{static_cast<std::uint32_t>(i)});
    static const MetricCell kZero{};
    if (!cell) cell = &kZero;
    switch (desc.kind) {
      case MetricKind::kCounter:
        EXC_TRY(package.add_metric(-1, desc.name,
                                   static_cast<double>(cell->count)));
        break;
      case MetricKind::kGauge:
        if (cell->gauge_set) {
          EXC_TRY(package.add_metric(
              -1, desc.name, static_cast<double>(cell->gauge_last)));
        }
        break;
      case MetricKind::kHistogram:
        EXC_TRY(package.add_metric(-1, desc.name + ".count",
                                   static_cast<double>(cell->count)));
        EXC_TRY(package.add_metric(-1, desc.name + ".sum", cell->sum));
        break;
    }
  }
  for (const RunMetricsLedger::Entry& entry : ledger_.sorted()) {
    EXC_TRY(package.add_metric(entry.run_id, entry.name, entry.value));
  }
  return Status::ok_status();
}

std::string ObsContext::provenance_json() const {
  const std::vector<storage::ProvenanceRow> rows = provenance_.sorted();
  std::string out = "{\n\"paths\":[";
  bool path_open = false;
  std::int64_t open_run = 0;
  std::int64_t open_path = 0;
  bool first_path = true;
  for (const storage::ProvenanceRow& row : rows) {
    if (!path_open || row.run_id != open_run || row.path != open_path) {
      if (path_open) out += "]}";
      if (!first_path) out += ',';
      first_path = false;
      path_open = true;
      open_run = row.run_id;
      open_path = row.path;
      char buf[64];
      std::snprintf(buf, sizeof buf, "\n{\"run\":%lld,\"path\":%lld",
                    static_cast<long long>(row.run_id),
                    static_cast<long long>(row.path));
      out += buf;
      out += ",\"steps\":[";
    } else {
      out += ',';
    }
    out += "\n{\"kind\":\"";
    out += json_escape(row.kind);
    out += "\",\"node\":\"";
    out += json_escape(row.node_id);
    out += "\",\"detail\":\"";
    out += json_escape(row.detail);
    out += "\",\"t\":";
    append_double(out, row.time);
    out += ",\"latency\":";
    append_double(out, row.latency);
    out += '}';
  }
  if (path_open) out += "]}";
  out += "\n]\n}\n";
  return out;
}

Status ObsContext::write_provenance_json(const std::string& path) const {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return err_io("cannot open provenance output file " + path);
  const std::string json = provenance_json();
  file.write(json.data(), static_cast<std::streamsize>(json.size()));
  file.flush();
  if (!file) return err_io("failed writing provenance output file " + path);
  return Status::ok_status();
}

Status ObsContext::export_provenance(
    storage::ExperimentPackage& package) const {
  for (const storage::ProvenanceRow& row : provenance_.sorted()) {
    EXC_TRY(package.add_provenance(row));
  }
  return Status::ok_status();
}

}  // namespace excovery::obs
