// Golden-digest pin (DESIGN.md §14/§15): the canonical bytes and the
// campaign digest of a fixed description are part of the storage contract —
// every cached package on disk is addressed by them.  The fixtures below
// were captured from the PR 8 implementation (the pre-arena DOM and string
// canonical writer); the arena DOM, in-situ parser and streaming digest
// must reproduce them byte for byte, with kCampaignDigestVersion still at
// 1.  If this test fails, cached packages are silently orphaned: bump
// kCampaignDigestVersion *and* regenerate the fixtures in the same change.
//
// The fixtures are embedded (not read from tests/data) so the test is
// independent of the working directory; tests/data keeps the same bytes
// for humans and external tools.
#include <gtest/gtest.h>

#include "common/hash.hpp"
#include "core/canonical.hpp"
#include "core/description.hpp"
#include "core/scenario.hpp"
#include "storage/package.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace excovery::core {
namespace {

// tests/data/golden_campaign.xml — pretty serialisation of
// scenario::two_party_sd with replications=2, environment_count=1, seed=5,
// loss_levels={0.0, 0.2}.
constexpr const char* kGoldenPretty = R"gold(<?xml version="1.0" encoding="UTF-8"?>
<experiment name="sd-mdns-two-party" seed="5">
  <parameterlist>
    <parameter key="sd_architecture">two-party</parameter>
    <parameter key="sd_comm">active</parameter>
    <parameter key="sd_protocol">mdns</parameter>
    <parameter key="sd_service_type">_expservice._udp</parameter>
  </parameterlist>
  <nodelist>
    <node id="SM0" />
    <node id="SU0" />
  </nodelist>
  <factorlist>
    <factor id="fact_nodes" type="actor_node_map" usage="blocking">
      <levels>
        <level>
          <actor id="actor0">
            <instance id="0">SM0</instance>
          </actor>
          <actor id="actor1">
            <instance id="0">SU0</instance>
          </actor>
        </level>
      </levels>
    </factor>
    <factor id="fact_loss" type="double" usage="constant">
      <levels>
        <level>0</level>
        <level>0.2</level>
      </levels>
    </factor>
    <replicationfactor usage="replication" type="int" id="fact_replication_id">2</replicationfactor>
  </factorlist>
  <processes>
    <node_process>
      <actor id="actor0" name="SM">
        <sd_actions>
          <sd_init>
            <role>SM</role>
          </sd_init>
          <sd_start_publish>
            <type>_expservice._udp</type>
          </sd_start_publish>
          <wait_for_event>
            <event_dependency>done</event_dependency>
            <from_dependency>
              <node actor="actor1" instance="all" />
            </from_dependency>
          </wait_for_event>
          <sd_stop_publish>
            <type>_expservice._udp</type>
          </sd_stop_publish>
          <sd_exit />
        </sd_actions>
      </actor>
      <actor id="actor1" name="SU">
        <sd_actions>
          <wait_for_event>
            <from_dependency>
              <node actor="actor0" instance="all" />
            </from_dependency>
            <event_dependency>sd_start_publish</event_dependency>
          </wait_for_event>
          <sd_init>
            <role>SU</role>
          </sd_init>
          <wait_marker />
          <sd_start_search>
            <type>_expservice._udp</type>
          </sd_start_search>
          <wait_for_event>
            <from_dependency>
              <node actor="actor1" instance="all" />
            </from_dependency>
            <event_dependency>sd_service_add</event_dependency>
            <param_dependency>
              <node actor="actor0" instance="all" />
            </param_dependency>
            <timeout>30</timeout>
          </wait_for_event>
          <event_flag>
            <value>done</value>
          </event_flag>
          <sd_stop_search>
            <type>_expservice._udp</type>
          </sd_stop_search>
          <sd_exit />
        </sd_actions>
      </actor>
    </node_process>
    <manipulation_process node="SU0">
      <actions>
        <fault_message_loss_start>
          <probability>
            <factorref id="fact_loss" />
          </probability>
          <direction>both</direction>
          <randomseed>
            <factorref id="fact_replication_id" />
          </randomseed>
        </fault_message_loss_start>
        <wait_for_event>
          <event_dependency>done</event_dependency>
          <from_dependency>
            <node actor="actor1" instance="all" />
          </from_dependency>
        </wait_for_event>
        <fault_message_loss_stop />
      </actions>
    </manipulation_process>
  </processes>
  <platform>
    <actor_nodes>
      <node id="SM0" abstract="SM0" />
      <node id="SU0" abstract="SU0" />
    </actor_nodes>
    <environment_nodes>
      <node id="ENV0" />
    </environment_nodes>
  </platform>
</experiment>
)gold";

// tests/data/golden_campaign_canonical.xml — canonical form of the same
// document (sorted attributes, no insignificant whitespace).
constexpr const char* kGoldenCanonical = R"gold(<experiment name="sd-mdns-two-party" seed="5"><parameterlist><parameter key="sd_architecture">two-party</parameter><parameter key="sd_comm">active</parameter><parameter key="sd_protocol">mdns</parameter><parameter key="sd_service_type">_expservice._udp</parameter></parameterlist><nodelist><node id="SM0"/><node id="SU0"/></nodelist><factorlist><factor id="fact_nodes" type="actor_node_map" usage="blocking"><levels><level><actor id="actor0"><instance id="0">SM0</instance></actor><actor id="actor1"><instance id="0">SU0</instance></actor></level></levels></factor><factor id="fact_loss" type="double" usage="constant"><levels><level>0</level><level>0.2</level></levels></factor><replicationfactor id="fact_replication_id" type="int" usage="replication">2</replicationfactor></factorlist><processes><node_process><actor id="actor0" name="SM"><sd_actions><sd_init><role>SM</role></sd_init><sd_start_publish><type>_expservice._udp</type></sd_start_publish><wait_for_event><event_dependency>done</event_dependency><from_dependency><node actor="actor1" instance="all"/></from_dependency></wait_for_event><sd_stop_publish><type>_expservice._udp</type></sd_stop_publish><sd_exit/></sd_actions></actor><actor id="actor1" name="SU"><sd_actions><wait_for_event><from_dependency><node actor="actor0" instance="all"/></from_dependency><event_dependency>sd_start_publish</event_dependency></wait_for_event><sd_init><role>SU</role></sd_init><wait_marker/><sd_start_search><type>_expservice._udp</type></sd_start_search><wait_for_event><from_dependency><node actor="actor1" instance="all"/></from_dependency><event_dependency>sd_service_add</event_dependency><param_dependency><node actor="actor0" instance="all"/></param_dependency><timeout>30</timeout></wait_for_event><event_flag><value>done</value></event_flag><sd_stop_search><type>_expservice._udp</type></sd_stop_search><sd_exit/></sd_actions></actor></node_process><manipulation_process node="SU0"><actions><fault_message_loss_start><probability><factorref id="fact_loss"/></probability><direction>both</direction><randomseed><factorref id="fact_replication_id"/></randomseed></fault_message_loss_start><wait_for_event><event_dependency>done</event_dependency><from_dependency><node actor="actor1" instance="all"/></from_dependency></wait_for_event><fault_message_loss_stop/></actions></manipulation_process></processes><platform><actor_nodes><node abstract="SM0" id="SM0"/><node abstract="SU0" id="SU0"/></actor_nodes><environment_nodes><node id="ENV0"/></environment_nodes></platform></experiment>)gold";

// Digests captured from the seed implementation.
constexpr const char* kGoldenDigestDefaultScope =
    "5dc830da3f71c60ce59b15a14fe545a48f3f66b213d7e5eb50b11e1c4685a856";
constexpr const char* kGoldenDigestScoped =
    "bf6008c51c7fcacf9b29f4f299d9823e2a8bca308e5880014100a9b7d7b9235e";

static_assert(kCampaignDigestVersion == 1,
              "changing the digest protocol version orphans every cached "
              "package; regenerate the golden fixtures in the same change");

ExperimentDescription golden_description() {
  scenario::TwoPartyOptions options;
  options.replications = 2;
  options.environment_count = 1;
  options.seed = 5;
  options.loss_levels = {0.0, 0.2};
  Result<ExperimentDescription> description =
      scenario::two_party_sd(options);
  EXPECT_TRUE(description.ok());
  return std::move(description).value();
}

TEST(GoldenDigest, PrettySerialisationUnchanged) {
  EXPECT_EQ(golden_description().to_xml_text(), kGoldenPretty);
}

TEST(GoldenDigest, CanonicalBytesUnchanged) {
  EXPECT_EQ(canonical_description_text(golden_description()),
            kGoldenCanonical);
}

TEST(GoldenDigest, ParsedFixtureReproducesCanonicalBytes) {
  // The canonical bytes must also be reachable *through the parser*: pretty
  // fixture -> description -> canonical text.
  Result<ExperimentDescription> parsed =
      ExperimentDescription::parse(kGoldenPretty);
  ASSERT_TRUE(parsed.ok()) << parsed.error().to_string();
  EXPECT_EQ(canonical_description_text(parsed.value()), kGoldenCanonical);
}

TEST(GoldenDigest, CampaignDigestUnchangedDefaultScope) {
  EXPECT_EQ(campaign_digest(golden_description()),
            kGoldenDigestDefaultScope);
}

TEST(GoldenDigest, CampaignDigestUnchangedScoped) {
  CampaignScope scope;
  scope.platform_seed = 2026;
  scope.topology.kind = scenario::TopologyKind::kChain;
  scope.max_attempts_per_run = 5;
  EXPECT_EQ(campaign_digest(golden_description(), scope),
            kGoldenDigestScoped);
}

TEST(GoldenDigest, StreamedDigestMatchesMaterialisedForm) {
  // Cross-check the streaming path against the definitionally-correct
  // one-shot form: length-prefixed canonical text hashed in one update.
  const ExperimentDescription description = golden_description();
  const std::string canonical = canonical_description_text(description);
  Sha256 hash;
  hash.update_sized("excovery-campaign");
  hash.update_u32(kCampaignDigestVersion);
  hash.update_sized(storage::kEeVersion);
  hash.update_sized(canonical);
  hash.update_u64(description.seed);
  const CampaignScope scope;
  hash.update_u64(scope.platform_seed);
  hash.update_u32(static_cast<std::uint32_t>(scope.topology.kind));
  hash.update_u64(
      static_cast<std::uint64_t>(scope.topology.link.base_delay.nanos()));
  hash.update_f64(scope.topology.link.loss);
  hash.update_f64(scope.topology.link.jitter_frac);
  hash.update_f64(scope.topology.link.bandwidth_bps);
  hash.update_u32(static_cast<std::uint32_t>(scope.topology.chain_spacing));
  hash.update_f64(scope.topology.radius);
  hash.update_u64(scope.topology.seed);
  hash.update_u32(static_cast<std::uint32_t>(scope.max_attempts_per_run));
  hash.update_u64(static_cast<std::uint64_t>(scope.run_watchdog.nanos()));
  hash.update_u64(static_cast<std::uint64_t>(scope.settle.nanos()));
  EXPECT_EQ(hash.finish_hex(), campaign_digest(description));
}

}  // namespace
}  // namespace excovery::core
