// XPath-lite selection over the DOM.
//
// Grammar (a practical subset sufficient for experiment tooling):
//   path      := step ('/' step)*
//   step      := name | '*' | name predicate | '..'
//   predicate := '[' '@' attr '=' value ']' | '[' index ']'
// Paths are relative to the element passed in.  "//name" descendant search
// is supported as a leading "**/" style via select_all_recursive.
#pragma once

#include <string_view>
#include <vector>

#include "common/error.hpp"
#include "xml/dom.hpp"

namespace excovery::xml {

/// All elements matching the path, document order.
std::vector<const Element*> select_all(const Element& root,
                                       std::string_view path);

/// First element matching the path, or nullptr.
const Element* select_first(const Element& root, std::string_view path);

/// First element matching the path, or a kNotFound error.
Result<const Element*> select_required(const Element& root,
                                       std::string_view path);

/// All descendants (any depth) with the given element name.
std::vector<const Element*> select_all_recursive(const Element& root,
                                                 std::string_view name);

/// Text of the first match, or a default.
std::string select_text_or(const Element& root, std::string_view path,
                           std::string_view fallback);

}  // namespace excovery::xml
