// Unit tests for fault injection and environment manipulation (§IV-D),
// plus the dynamic-world fault engine (DESIGN.md §12).
#include <gtest/gtest.h>

#include <algorithm>

#include "faults/injector.hpp"
#include "faults/schedule.hpp"
#include "faults/traffic.hpp"
#include "net/network.hpp"
#include "sim/scheduler.hpp"

namespace excovery::faults {
namespace {

constexpr net::Port kPort = net::kSdPort;

struct Fixture {
  sim::Scheduler scheduler;
  net::Network network;
  FaultInjector injector;
  int received = 0;

  explicit Fixture(net::Topology topology = net::Topology::chain(3))
      : network(scheduler, std::move(topology), 1),
        injector(network, kPort) {}

  void bind_counter(net::NodeId node) {
    network.bind(node, kPort, [this](net::NodeId, const net::Packet&) {
      ++received;
    });
  }

  void send_sd(net::NodeId from, net::NodeId to) {
    net::Packet packet;
    packet.dst = network.topology().node(to).address;
    packet.src_port = kPort;
    packet.dst_port = kPort;
    packet.payload.assign(8, 0x01);
    (void)network.send(from, std::move(packet));
  }

  void send_other(net::NodeId from, net::NodeId to) {
    net::Packet packet;
    packet.dst = network.topology().node(to).address;
    packet.src_port = 7777;
    packet.dst_port = 7777;
    packet.payload.assign(8, 0x02);
    (void)network.send(from, std::move(packet));
  }
};

// ---- direction parsing -----------------------------------------------------

TEST(FaultDirection, Parsing) {
  EXPECT_EQ(parse_fault_direction("receive").value(), FaultDirection::kReceive);
  EXPECT_EQ(parse_fault_direction("rx").value(), FaultDirection::kReceive);
  EXPECT_EQ(parse_fault_direction("TRANSMIT").value(),
            FaultDirection::kTransmit);
  EXPECT_EQ(parse_fault_direction("both").value(), FaultDirection::kBoth);
  EXPECT_EQ(parse_fault_direction("\"random\"").value(),
            FaultDirection::kRandom);
  EXPECT_FALSE(parse_fault_direction("sideways").ok());
}

// ---- interface fault ---------------------------------------------------------

TEST(FaultInjection, InterfaceFaultBlocksUntilStopped) {
  Fixture fx;
  fx.bind_counter(2);
  Result<FaultHandle> fault =
      fx.injector.interface_fault(0, FaultDirection::kTransmit);
  ASSERT_TRUE(fault.ok());
  EXPECT_TRUE(fault.value()->active());

  fx.send_sd(0, 2);
  fx.scheduler.run();
  EXPECT_EQ(fx.received, 0);

  fault.value()->stop();
  EXPECT_FALSE(fault.value()->active());
  fx.send_sd(0, 2);
  fx.scheduler.run();
  EXPECT_EQ(fx.received, 1);
}

TEST(FaultInjection, InterfaceFaultBothDirections) {
  Fixture fx;
  fx.bind_counter(0);
  Result<FaultHandle> fault =
      fx.injector.interface_fault(0, FaultDirection::kBoth);
  ASSERT_TRUE(fault.ok());
  fx.send_sd(2, 0);  // toward the faulted node: rx blocked
  fx.scheduler.run();
  EXPECT_EQ(fx.received, 0);
}

TEST(FaultInjection, RandomDirectionIsDeterministicInSeed) {
  Fixture fx1;
  Fixture fx2;
  TemporalSpec temporal;
  temporal.randomseed = 77;
  Result<FaultHandle> f1 =
      fx1.injector.interface_fault(0, FaultDirection::kRandom, temporal);
  Result<FaultHandle> f2 =
      fx2.injector.interface_fault(0, FaultDirection::kRandom, temporal);
  ASSERT_TRUE(f1.ok());
  ASSERT_TRUE(f2.ok());
  EXPECT_EQ(fx1.network.interface_up(0, net::Direction::kTransmit),
            fx2.network.interface_up(0, net::Direction::kTransmit));
  EXPECT_EQ(fx1.network.interface_up(0, net::Direction::kReceive),
            fx2.network.interface_up(0, net::Direction::kReceive));
}

TEST(FaultInjection, UnknownNodeRejected) {
  Fixture fx;
  EXPECT_FALSE(fx.injector.interface_fault(99, FaultDirection::kBoth).ok());
  EXPECT_FALSE(fx.injector.message_loss(99, 0.5, FaultDirection::kBoth).ok());
}

// ---- message loss ---------------------------------------------------------------

TEST(FaultInjection, MessageLossDropsFraction) {
  Fixture fx(net::Topology::chain(2));
  fx.bind_counter(1);
  Result<FaultHandle> fault =
      fx.injector.message_loss(0, 0.5, FaultDirection::kTransmit);
  ASSERT_TRUE(fault.ok());
  for (int i = 0; i < 400; ++i) fx.send_sd(0, 1);
  fx.scheduler.run();
  EXPECT_GT(fx.received, 120);
  EXPECT_LT(fx.received, 280);
}

TEST(FaultInjection, MessageLossFullProbabilityDropsEverything) {
  Fixture fx(net::Topology::chain(2));
  fx.bind_counter(1);
  Result<FaultHandle> fault =
      fx.injector.message_loss(0, 1.0, FaultDirection::kBoth);
  ASSERT_TRUE(fault.ok());
  for (int i = 0; i < 20; ++i) fx.send_sd(0, 1);
  fx.scheduler.run();
  EXPECT_EQ(fx.received, 0);
}

TEST(FaultInjection, MessageLossSparesNonExperimentTraffic) {
  Fixture fx(net::Topology::chain(2));
  int other_received = 0;
  fx.network.bind(1, 7777, [&](net::NodeId, const net::Packet&) {
    ++other_received;
  });
  Result<FaultHandle> fault =
      fx.injector.message_loss(0, 1.0, FaultDirection::kBoth);
  ASSERT_TRUE(fault.ok());
  for (int i = 0; i < 10; ++i) fx.send_other(0, 1);
  fx.scheduler.run();
  // "Whenever the term packet is used, it refers to packets belonging to
  // the experiment process" (§IV-D1).
  EXPECT_EQ(other_received, 10);
}

TEST(FaultInjection, ProbabilityRangeValidated) {
  Fixture fx;
  EXPECT_FALSE(fx.injector.message_loss(0, -0.1, FaultDirection::kBoth).ok());
  EXPECT_FALSE(fx.injector.message_loss(0, 1.1, FaultDirection::kBoth).ok());
  EXPECT_FALSE(fx.injector.path_loss(0, 1, 2.0).ok());
}

// ---- message delay -----------------------------------------------------------------

TEST(FaultInjection, MessageDelayAddsConstantDelay) {
  Fixture fx(net::Topology::chain(2));
  sim::SimTime arrival;
  fx.network.bind(1, kPort, [&](net::NodeId, const net::Packet&) {
    arrival = fx.scheduler.now();
  });
  // Baseline.
  fx.send_sd(0, 1);
  fx.scheduler.run();
  sim::SimTime baseline = arrival;

  Result<FaultHandle> fault = fx.injector.message_delay(
      1, sim::SimDuration::from_millis(250));
  ASSERT_TRUE(fault.ok());
  sim::SimTime send_time = fx.scheduler.now();
  fx.send_sd(0, 1);
  fx.scheduler.run();
  EXPECT_GE((arrival - send_time).nanos(),
            sim::SimDuration::from_millis(250).nanos());
  (void)baseline;
}

// ---- path faults ----------------------------------------------------------------------

TEST(FaultInjection, PathLossAffectsOnlyGivenPeer) {
  Fixture fx(net::Topology::full_mesh(3));
  fx.bind_counter(0);
  // Node 0 loses everything from/to node 1 but keeps node 2 traffic.
  Result<FaultHandle> fault = fx.injector.path_loss(0, 1, 1.0);
  ASSERT_TRUE(fault.ok());
  fx.send_sd(1, 0);
  fx.send_sd(2, 0);
  fx.scheduler.run();
  EXPECT_EQ(fx.received, 1);
}

TEST(FaultInjection, PathDelayAffectsOnlyGivenPeer) {
  Fixture fx(net::Topology::full_mesh(3));
  std::map<std::string, sim::SimTime> arrivals;
  fx.network.bind(0, kPort, [&](net::NodeId, const net::Packet& p) {
    arrivals[p.src.to_string()] = fx.scheduler.now();
  });
  Result<FaultHandle> fault =
      fx.injector.path_delay(0, 1, sim::SimDuration::from_millis(500));
  ASSERT_TRUE(fault.ok());
  sim::SimTime start = fx.scheduler.now();
  fx.send_sd(1, 0);
  fx.send_sd(2, 0);
  fx.scheduler.run();
  std::string peer1 = fx.network.topology().node(1).address.to_string();
  std::string peer2 = fx.network.topology().node(2).address.to_string();
  ASSERT_TRUE(arrivals.count(peer1) == 1 && arrivals.count(peer2) == 1);
  EXPECT_GE((arrivals[peer1] - start).nanos(), 500'000'000);
  EXPECT_LT((arrivals[peer2] - start).nanos(), 100'000'000);
}

// ---- drop all --------------------------------------------------------------------------

TEST(FaultInjection, DropAllBlocksExperimentTrafficEverywhere) {
  Fixture fx(net::Topology::chain(3));
  fx.bind_counter(2);
  int other_received = 0;
  fx.network.bind(2, 7777, [&](net::NodeId, const net::Packet&) {
    ++other_received;
  });
  Result<FaultHandle> fault = fx.injector.drop_all_packets();
  ASSERT_TRUE(fault.ok());
  fx.send_sd(0, 2);
  fx.send_other(0, 2);
  fx.scheduler.run();
  EXPECT_EQ(fx.received, 0);
  EXPECT_EQ(other_received, 1);

  fault.value()->stop();
  fx.send_sd(0, 2);
  fx.scheduler.run();
  EXPECT_EQ(fx.received, 1);
}

// ---- temporal behaviour (duration/rate/randomseed) --------------------------------------

TEST(FaultTemporal, WindowedFaultActivatesWithinDuration) {
  Fixture fx(net::Topology::chain(2));
  TemporalSpec temporal;
  temporal.duration = sim::SimDuration::from_seconds(10);
  temporal.rate = 0.3;
  temporal.randomseed = 5;
  Result<FaultHandle> fault =
      fx.injector.interface_fault(0, FaultDirection::kTransmit, temporal);
  ASSERT_TRUE(fault.ok());
  // Not yet active (activation is scheduled).
  EXPECT_FALSE(fault.value()->active());

  // Sample interface state over the window: must be down ~30% of it.
  int down_samples = 0;
  int total_samples = 0;
  for (double t = 0.05; t < 10.0; t += 0.1) {
    fx.scheduler.run_until(sim::SimTime::from_seconds(t));
    ++total_samples;
    if (!fx.network.interface_up(0, net::Direction::kTransmit)) {
      ++down_samples;
    }
  }
  fx.scheduler.run();
  double fraction =
      static_cast<double>(down_samples) / static_cast<double>(total_samples);
  EXPECT_NEAR(fraction, 0.3, 0.05);
  // Auto-stopped at window end.
  EXPECT_FALSE(fault.value()->active());
  EXPECT_TRUE(fx.network.interface_up(0, net::Direction::kTransmit));
}

TEST(FaultTemporal, ActiveBlockIsContinuous) {
  Fixture fx(net::Topology::chain(2));
  TemporalSpec temporal;
  temporal.duration = sim::SimDuration::from_seconds(4);
  temporal.rate = 0.5;
  temporal.randomseed = 11;
  Result<FaultHandle> fault =
      fx.injector.interface_fault(0, FaultDirection::kTransmit, temporal);
  ASSERT_TRUE(fault.ok());
  // The fault must transition up->down->up exactly once ("active in one
  // continuous block", §IV-D).
  int transitions = 0;
  bool last_up = true;
  for (double t = 0.01; t < 4.2; t += 0.01) {
    fx.scheduler.run_until(sim::SimTime::from_seconds(t));
    bool up = fx.network.interface_up(0, net::Direction::kTransmit);
    if (up != last_up) ++transitions;
    last_up = up;
  }
  EXPECT_EQ(transitions, 2);
}

TEST(FaultTemporal, SeedPlacesWindowDeterministically) {
  auto window_start = [](std::uint64_t seed) {
    Fixture fx(net::Topology::chain(2));
    TemporalSpec temporal;
    temporal.duration = sim::SimDuration::from_seconds(10);
    temporal.rate = 0.2;
    temporal.randomseed = seed;
    Result<FaultHandle> fault =
        fx.injector.interface_fault(0, FaultDirection::kTransmit, temporal);
    EXPECT_TRUE(fault.ok());
    for (double t = 0.01; t < 10.0; t += 0.01) {
      fx.scheduler.run_until(sim::SimTime::from_seconds(t));
      if (!fx.network.interface_up(0, net::Direction::kTransmit)) return t;
    }
    return -1.0;
  };
  EXPECT_DOUBLE_EQ(window_start(3), window_start(3));
  EXPECT_NE(window_start(3), window_start(4));
}

TEST(FaultInjection, EventsEmittedOnStartAndStop) {
  Fixture fx(net::Topology::chain(2));
  std::vector<std::string> events;
  fx.injector.set_event_sink([&](const std::string& node,
                                 const std::string& event, const Value&) {
    events.push_back(node + ":" + event);
  });
  Result<FaultHandle> fault =
      fx.injector.interface_fault(0, FaultDirection::kBoth);
  ASSERT_TRUE(fault.ok());
  fault.value()->stop();
  fault.value()->stop();  // idempotent
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], "n0:fault_interface_start");
  EXPECT_EQ(events[1], "n0:fault_interface_stop");
}

TEST(FaultInjection, ResetStopsEverything) {
  Fixture fx(net::Topology::full_mesh(3));
  (void)fx.injector.interface_fault(0, FaultDirection::kBoth);
  (void)fx.injector.message_loss(1, 0.5, FaultDirection::kBoth);
  (void)fx.injector.drop_all_packets();
  EXPECT_EQ(fx.injector.active_count(), 3u);
  fx.injector.reset();
  EXPECT_EQ(fx.injector.active_count(), 0u);
  EXPECT_TRUE(fx.network.interface_up(0, net::Direction::kReceive));
  EXPECT_EQ(fx.network.filter_count(), 0u);
}

// ---- temporal spec validation -----------------------------------------------

TEST(FaultTemporal, MalformedSpecsRejected) {
  Fixture fx(net::Topology::chain(2));
  TemporalSpec spec;
  spec.rate = 0.0;
  EXPECT_FALSE(validate(spec).ok());
  EXPECT_FALSE(
      fx.injector.message_loss(0, 0.5, FaultDirection::kBoth, spec).ok());
  spec.rate = -0.5;
  EXPECT_FALSE(validate(spec).ok());
  spec.rate = 1.5;
  EXPECT_FALSE(validate(spec).ok());
  EXPECT_FALSE(fx.injector.interface_fault(0, FaultDirection::kBoth, spec).ok());

  spec.rate = 1.0;
  spec.duration = sim::SimDuration(0);
  EXPECT_FALSE(validate(spec).ok());
  EXPECT_FALSE(fx.injector.drop_all_packets(spec).ok());
  spec.duration = sim::SimDuration::from_seconds(-2);
  EXPECT_FALSE(validate(spec).ok());
  EXPECT_FALSE(
      fx.injector.message_delay(0, sim::SimDuration::from_millis(1), spec)
          .ok());

  spec.duration = sim::SimDuration::from_seconds(2);
  EXPECT_TRUE(validate(spec).ok());
  spec.duration.reset();
  EXPECT_TRUE(validate(spec).ok());
}

// ---- Gilbert-Elliott bursty loss --------------------------------------------

TEST(GilbertElliott, ParametersValidated) {
  Fixture fx;
  GilbertElliott bad;
  bad.p_enter_bad = 1.5;
  EXPECT_FALSE(fx.injector.ge_loss(0, bad, FaultDirection::kBoth).ok());
  GilbertElliott bad2;
  bad2.loss_bad = -0.1;
  EXPECT_FALSE(fx.injector.ge_path_loss(0, 1, bad2).ok());
  GilbertElliott good;
  EXPECT_TRUE(fx.injector.ge_loss(0, good, FaultDirection::kBoth).ok());
}

TEST(GilbertElliott, AbsorbingBadStateDropsEverythingAfterFirstPacket) {
  Fixture fx(net::Topology::chain(2));
  fx.bind_counter(1);
  GilbertElliott model;
  model.p_enter_bad = 1.0;  // falls into the bad state after the first packet
  model.p_exit_bad = 0.0;   // ... and never recovers
  model.loss_good = 0.0;
  model.loss_bad = 1.0;
  TemporalSpec temporal;
  temporal.randomseed = 3;
  ASSERT_TRUE(
      fx.injector.ge_loss(0, model, FaultDirection::kTransmit, temporal).ok());
  for (int i = 0; i < 50; ++i) fx.send_sd(0, 1);
  fx.scheduler.run();
  // The loss draw happens in the CURRENT state before the transition draw,
  // so exactly the first packet (good state) survives.
  EXPECT_EQ(fx.received, 1);
}

TEST(GilbertElliott, DegeneratesToBernoulliDropSequence) {
  // With p_enter_bad == 0 the chain never leaves the good state; the drop
  // decisions must be bit-identical to Bernoulli message_loss on the same
  // randomseed (both derive the same "message-loss" stream).
  auto deliveries = [](bool use_ge) {
    Fixture fx(net::Topology::chain(2));
    std::vector<int> sequence;
    fx.network.bind(1, kPort, [&](net::NodeId, const net::Packet& p) {
      sequence.push_back(static_cast<int>(p.payload[0]));
    });
    TemporalSpec temporal;
    temporal.randomseed = 42;
    if (use_ge) {
      GilbertElliott model;
      model.p_enter_bad = 0.0;
      model.loss_good = 0.4;
      model.loss_bad = 1.0;
      EXPECT_TRUE(
          fx.injector.ge_loss(0, model, FaultDirection::kTransmit, temporal)
              .ok());
    } else {
      EXPECT_TRUE(fx.injector
                      .message_loss(0, 0.4, FaultDirection::kTransmit, temporal)
                      .ok());
    }
    for (int i = 0; i < 200; ++i) {
      net::Packet packet;
      packet.dst = fx.network.topology().node(1).address;
      packet.src_port = kPort;
      packet.dst_port = kPort;
      packet.payload.assign(1, static_cast<std::uint8_t>(i));
      (void)fx.network.send(0, std::move(packet));
    }
    fx.scheduler.run();
    return sequence;
  };
  std::vector<int> ge = deliveries(true);
  std::vector<int> bernoulli = deliveries(false);
  EXPECT_FALSE(ge.empty());
  EXPECT_LT(ge.size(), 200u);
  EXPECT_EQ(ge, bernoulli);
}

// ---- duplication and reordering ---------------------------------------------

TEST(FaultInjection, MessageDuplicateInjectsCopies) {
  Fixture fx(net::Topology::chain(2));
  fx.bind_counter(1);
  Result<FaultHandle> fault = fx.injector.message_duplicate(
      0, 1.0, 2, sim::SimDuration::from_millis(1));
  ASSERT_TRUE(fault.ok());
  fx.send_sd(0, 1);
  fx.scheduler.run();
  EXPECT_EQ(fx.received, 3);  // original + 2 copies

  fault.value()->stop();
  fx.received = 0;
  fx.send_sd(0, 1);
  fx.scheduler.run();
  EXPECT_EQ(fx.received, 1);
}

TEST(FaultInjection, MessageDuplicateSparesRelayedPackets) {
  Fixture fx(net::Topology::chain(3));
  fx.bind_counter(2);
  // Duplication armed on the relay must not clone forwarded packets: only
  // originated sends (route length 1 at tx filter time) are duplicated.
  Result<FaultHandle> fault = fx.injector.message_duplicate(
      1, 1.0, 3, sim::SimDuration::from_millis(1));
  ASSERT_TRUE(fault.ok());
  fx.send_sd(0, 2);
  fx.scheduler.run();
  EXPECT_EQ(fx.received, 1);
}

TEST(FaultInjection, MessageDuplicateValidatesCopies) {
  Fixture fx;
  EXPECT_FALSE(
      fx.injector.message_duplicate(0, 0.5, 0, sim::SimDuration::from_millis(1))
          .ok());
  EXPECT_FALSE(
      fx.injector.message_duplicate(0, 1.5, 1, sim::SimDuration::from_millis(1))
          .ok());
}

TEST(FaultInjection, MessageReorderLetsLaterPacketsOvertake) {
  Fixture fx(net::Topology::chain(2));
  std::vector<int> order;
  fx.network.bind(1, kPort, [&](net::NodeId, const net::Packet& p) {
    order.push_back(static_cast<int>(p.payload[0]));
  });
  TemporalSpec temporal;
  temporal.randomseed = 11;
  Result<FaultHandle> fault = fx.injector.message_reorder(
      0, 0.5, sim::SimDuration::from_millis(50), temporal);
  ASSERT_TRUE(fault.ok());
  for (int i = 0; i < 40; ++i) {
    net::Packet packet;
    packet.dst = fx.network.topology().node(1).address;
    packet.src_port = kPort;
    packet.dst_port = kPort;
    packet.payload.assign(1, static_cast<std::uint8_t>(i));
    (void)fx.network.send(0, std::move(packet));
  }
  fx.scheduler.run();
  ASSERT_EQ(order.size(), 40u);  // reordering never loses packets
  EXPECT_FALSE(std::is_sorted(order.begin(), order.end()));
}

// ---- link control and rerouting ---------------------------------------------

TEST(LinkControl, DownedLinkDropsAndHealRestores) {
  Fixture fx(net::Topology::chain(2));
  fx.bind_counter(1);
  ASSERT_TRUE(fx.network.set_link_up(0, 1, false).ok());
  EXPECT_FALSE(fx.network.link_up(0, 1));
  fx.send_sd(0, 1);
  fx.scheduler.run();
  EXPECT_EQ(fx.received, 0);

  ASSERT_TRUE(fx.network.set_link_up(0, 1, true).ok());
  EXPECT_TRUE(fx.network.link_up(0, 1));
  fx.send_sd(0, 1);
  fx.scheduler.run();
  EXPECT_EQ(fx.received, 1);
}

TEST(LinkControl, ReroutesAroundDownedLink) {
  // 2x2 grid: links 0-1, 0-2, 1-3, 2-3.  With 0-1 down node 0 still
  // reaches 3 via 2; cutting 0-2 as well isolates node 0.
  Fixture fx(net::Topology::grid(2, 2));
  fx.bind_counter(3);
  EXPECT_EQ(fx.network.hop_count(0, 3), 2);
  ASSERT_TRUE(fx.network.set_link_up(0, 1, false).ok());
  fx.send_sd(0, 3);
  fx.scheduler.run();
  EXPECT_EQ(fx.received, 1);
  EXPECT_EQ(fx.network.hop_count(0, 3), 2);

  ASSERT_TRUE(fx.network.set_link_up(0, 2, false).ok());
  fx.send_sd(0, 3);
  fx.scheduler.run();
  EXPECT_EQ(fx.received, 1);  // unchanged: no route
  EXPECT_LT(fx.network.hop_count(0, 3), 0);
}

TEST(LinkControl, UnknownLinkRejected) {
  Fixture fx(net::Topology::chain(3));
  EXPECT_FALSE(fx.network.set_link_up(0, 2, false).ok());  // not adjacent
  EXPECT_FALSE(fx.network.set_link_up(0, 9, false).ok());
}

// ---- fault-schedule engine (DESIGN.md §12) ----------------------------------

TEST(ScheduleEngine, ChurnSpecValidated) {
  ChurnSpec bad;
  bad.mean_uptime = sim::SimDuration(0);
  bad.mean_downtime = sim::SimDuration::from_seconds(1);
  EXPECT_FALSE(validate(bad).ok());
  ChurnSpec good;
  good.mean_uptime = sim::SimDuration::from_seconds(1);
  good.mean_downtime = sim::SimDuration::from_seconds(1);
  EXPECT_TRUE(validate(good).ok());
}

TEST(ScheduleEngine, NodeCrashTogglesInterfacesForWindow) {
  Fixture fx(net::Topology::chain(2));
  FaultScheduleEngine engine(fx.injector);
  TemporalSpec temporal;
  temporal.duration = sim::SimDuration::from_seconds(2);
  Result<FaultHandle> fault = engine.node_crash(0, temporal);
  ASSERT_TRUE(fault.ok());
  // rate 1.0 -> the active block covers the whole window, starting at 0.
  fx.scheduler.run_until(fx.scheduler.now() +
                         sim::SimDuration::from_seconds(1));
  EXPECT_FALSE(fx.network.interface_up(0, net::Direction::kTransmit));
  EXPECT_FALSE(fx.network.interface_up(0, net::Direction::kReceive));
  fx.scheduler.run();
  EXPECT_TRUE(fx.network.interface_up(0, net::Direction::kTransmit));
  EXPECT_TRUE(fx.network.interface_up(0, net::Direction::kReceive));
  EXPECT_FALSE(fault.value()->active());
}

TEST(ScheduleEngine, NodeChurnAlternatesAndEmitsEvents) {
  Fixture fx(net::Topology::chain(2));
  FaultScheduleEngine engine(fx.injector);
  std::vector<std::string> events;
  fx.injector.set_event_sink([&](const std::string& node,
                                 const std::string& event, const Value&) {
    events.push_back(node + ":" + event);
  });
  ChurnSpec spec;
  spec.mean_uptime = sim::SimDuration::from_seconds(1);
  spec.mean_downtime = sim::SimDuration::from_seconds(1);
  spec.exponential = false;
  TemporalSpec temporal;
  temporal.duration = sim::SimDuration::from_seconds(10);
  temporal.randomseed = 9;
  Result<FaultHandle> fault = engine.node_churn(0, spec, temporal);
  ASSERT_TRUE(fault.ok());
  fx.scheduler.run();
  // Fixed 1 s holding times in a 10 s window: several full cycles.
  auto count = [&](const std::string& needle) {
    return std::count(events.begin(), events.end(), needle);
  };
  EXPECT_GE(count("n0:fault_node_down"), 3);
  EXPECT_EQ(count("n0:fault_node_down"), count("n0:fault_node_up"));
  EXPECT_EQ(count("n0:fault_node_churn_start"), 1);
  EXPECT_EQ(count("n0:fault_node_churn_stop"), 1);
  // The stop handler restored the node.
  EXPECT_TRUE(fx.network.interface_up(0, net::Direction::kTransmit));
}

TEST(ScheduleEngine, ChurnScheduleIsDeterministicInSeed) {
  auto trace = [](std::uint64_t seed) {
    Fixture fx(net::Topology::chain(2));
    FaultScheduleEngine engine(fx.injector);
    std::vector<std::string> events;
    fx.injector.set_event_sink([&](const std::string&,
                                   const std::string& event, const Value&) {
      events.push_back(event + "@" +
                       std::to_string(fx.scheduler.now().nanos()));
    });
    ChurnSpec spec;
    spec.mean_uptime = sim::SimDuration::from_seconds(2);
    spec.mean_downtime = sim::SimDuration::from_millis(500);
    TemporalSpec temporal;
    temporal.duration = sim::SimDuration::from_seconds(20);
    temporal.randomseed = seed;
    EXPECT_TRUE(engine.node_churn(0, spec, temporal).ok());
    fx.scheduler.run();
    return events;
  };
  EXPECT_EQ(trace(5), trace(5));
  EXPECT_NE(trace(5), trace(6));
}

TEST(ScheduleEngine, LifecycleHooksPreferredOverInterfaceToggles) {
  Fixture fx(net::Topology::chain(2));
  FaultScheduleEngine engine(fx.injector);
  std::vector<std::string> calls;
  engine.set_lifecycle_hooks(
      [&](const std::string& node) { calls.push_back("crash:" + node); },
      [&](const std::string& node) { calls.push_back("restore:" + node); });
  TemporalSpec temporal;
  temporal.duration = sim::SimDuration::from_seconds(1);
  ASSERT_TRUE(engine.node_crash(0, temporal).ok());
  fx.scheduler.run();
  ASSERT_EQ(calls.size(), 2u);
  EXPECT_EQ(calls[0], "crash:n0");
  EXPECT_EQ(calls[1], "restore:n0");
  // Hooks replace the default interface toggling entirely.
  EXPECT_TRUE(fx.network.interface_up(0, net::Direction::kTransmit));
}

TEST(ScheduleEngine, LinkFlapRequiresAdjacency) {
  Fixture fx(net::Topology::chain(3));
  FaultScheduleEngine engine(fx.injector);
  ChurnSpec spec;
  spec.mean_uptime = sim::SimDuration::from_seconds(1);
  spec.mean_downtime = sim::SimDuration::from_seconds(1);
  EXPECT_FALSE(engine.link_flap(0, 2, spec, {}).ok());  // not adjacent
  EXPECT_TRUE(engine.link_flap(0, 1, spec, {}).ok());
}

TEST(ScheduleEngine, LinkFlapTogglesLinkAndHealsOnStop) {
  Fixture fx(net::Topology::chain(2));
  FaultScheduleEngine engine(fx.injector);
  ChurnSpec spec;
  spec.mean_uptime = sim::SimDuration::from_seconds(1);
  spec.mean_downtime = sim::SimDuration::from_seconds(1);
  spec.exponential = false;
  TemporalSpec temporal;
  temporal.duration = sim::SimDuration::from_seconds(5);
  Result<FaultHandle> fault = engine.link_flap(0, 1, spec, temporal);
  ASSERT_TRUE(fault.ok());
  fx.scheduler.run_until(fx.scheduler.now() +
                         sim::SimDuration::from_millis(1500));
  EXPECT_FALSE(fx.network.link_up(0, 1));  // first down phase at t=1s
  fx.scheduler.run();
  EXPECT_TRUE(fx.network.link_up(0, 1));  // healed by the stop handler
}

TEST(ScheduleEngine, PartitionCutsCrossingLinksAndHeals) {
  Fixture fx(net::Topology::full_mesh(4));
  FaultScheduleEngine engine(fx.injector);
  fx.bind_counter(3);
  Result<FaultHandle> fault = engine.partition({0, 1});
  ASSERT_TRUE(fault.ok());
  EXPECT_FALSE(fx.network.link_up(0, 2));
  EXPECT_FALSE(fx.network.link_up(0, 3));
  EXPECT_FALSE(fx.network.link_up(1, 2));
  EXPECT_FALSE(fx.network.link_up(1, 3));
  EXPECT_TRUE(fx.network.link_up(0, 1));  // intra-side links stay up
  EXPECT_TRUE(fx.network.link_up(2, 3));
  fx.send_sd(0, 3);
  fx.scheduler.run();
  EXPECT_EQ(fx.received, 0);

  fault.value()->stop();
  fx.send_sd(0, 3);
  fx.scheduler.run();
  EXPECT_EQ(fx.received, 1);
}

TEST(ScheduleEngine, InjectorResetStopsEngineFaults) {
  Fixture fx(net::Topology::full_mesh(3));
  FaultScheduleEngine engine(fx.injector);
  ASSERT_TRUE(engine.partition({0}).ok());
  EXPECT_EQ(fx.network.disabled_link_count(), 2u);
  fx.injector.reset();
  EXPECT_EQ(fx.network.disabled_link_count(), 0u);
  EXPECT_EQ(fx.injector.active_count(), 0u);
}

#if EXCOVERY_OBS_ENABLED
TEST(FaultKindStats, CountersTrackPerKind) {
  Fixture fx(net::Topology::chain(2));
  fx.bind_counter(1);
  Result<FaultHandle> loss =
      fx.injector.message_loss(0, 1.0, FaultDirection::kTransmit);
  ASSERT_TRUE(loss.ok());
  for (int i = 0; i < 5; ++i) fx.send_sd(0, 1);
  fx.scheduler.run();
  loss.value()->stop();

  Result<FaultHandle> dup = fx.injector.message_duplicate(
      0, 1.0, 2, sim::SimDuration::from_millis(1));
  ASSERT_TRUE(dup.ok());
  fx.send_sd(0, 1);
  fx.scheduler.run();
  dup.value()->stop();

  const auto& stats = fx.injector.kind_stats();
  auto it = stats.find("message_loss");
  ASSERT_NE(it, stats.end());
  EXPECT_EQ(it->second.activations, 1u);
  EXPECT_EQ(it->second.deactivations, 1u);
  EXPECT_EQ(it->second.packets_dropped, 5u);
  auto dup_it = stats.find("message_duplicate");
  ASSERT_NE(dup_it, stats.end());
  EXPECT_EQ(dup_it->second.packets_duplicated, 2u);
}
#endif

// ---- traffic generation (§IV-D2) ----------------------------------------------------------

TEST(TrafficPairs, SelectionIsDeterministicAndDistinct) {
  std::vector<net::NodeId> candidates{0, 1, 2, 3, 4, 5};
  Result<std::vector<NodePair>> a = select_pairs(candidates, 4, 9);
  Result<std::vector<NodePair>> b = select_pairs(candidates, 4, 9);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());
  // All pairs distinct.
  for (std::size_t i = 0; i < a.value().size(); ++i) {
    EXPECT_LT(a.value()[i].a, a.value()[i].b);
    for (std::size_t j = i + 1; j < a.value().size(); ++j) {
      EXPECT_FALSE(a.value()[i] == a.value()[j]);
    }
  }
}

TEST(TrafficPairs, OverflowRejected) {
  std::vector<net::NodeId> candidates{0, 1, 2};
  EXPECT_TRUE(select_pairs(candidates, 3, 1).ok());   // C(3,2) = 3
  EXPECT_FALSE(select_pairs(candidates, 4, 1).ok());
  EXPECT_FALSE(select_pairs(candidates, -1, 1).ok());
  EXPECT_TRUE(select_pairs(candidates, 0, 1).value().empty());
}

TEST(TrafficPairs, SwitchingReplacesExactlyRequestedAmount) {
  std::vector<net::NodeId> candidates{0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<NodePair> base = select_pairs(candidates, 3, 1).value();
  std::vector<NodePair> switched = switch_pairs(base, candidates, 1, 2, 0);
  int differing = 0;
  for (const NodePair& pair : switched) {
    bool in_base = false;
    for (const NodePair& original : base) {
      if (pair == original) in_base = true;
    }
    if (!in_base) ++differing;
  }
  EXPECT_EQ(differing, 1);
  // Same seeds and run -> same switch.
  EXPECT_EQ(switch_pairs(base, candidates, 1, 2, 0), switched);
  // Different run index -> (almost surely) different selection.
  EXPECT_NE(switch_pairs(base, candidates, 1, 2, 1), switched);
}

TEST(TrafficGenerator, GeneratesBidirectionalLoad) {
  Fixture fx(net::Topology::full_mesh(4));
  TrafficGenerator traffic(fx.network);
  TrafficConfig config;
  config.rate_kbps = 100.0;
  config.pairs = 1;
  config.choice = PairChoice::kAll;
  ASSERT_TRUE(traffic.start(config, {0, 1}, {2, 3}, 0).ok());
  EXPECT_TRUE(traffic.running());
  ASSERT_EQ(traffic.active_pairs().size(), 1u);

  fx.scheduler.run_until(sim::SimTime::from_seconds(2));
  traffic.stop();
  EXPECT_FALSE(traffic.running());
  // 100 kbit/s / (512*8 bit) ~ 24.4 pkt/s per direction, 2 s, 2 directions.
  EXPECT_NEAR(static_cast<double>(traffic.packets_offered()), 97.0, 10.0);
  EXPECT_GT(traffic.packets_delivered(), 0u);
  EXPECT_LE(traffic.packets_delivered(), traffic.packets_offered());

  // After stop, no further packets.
  std::uint64_t offered = traffic.packets_offered();
  fx.scheduler.run_until(sim::SimTime::from_seconds(3));
  EXPECT_EQ(traffic.packets_offered(), offered);
}

TEST(TrafficGenerator, ChoiceSelectsCandidateSet) {
  Fixture fx(net::Topology::full_mesh(6));
  TrafficGenerator traffic(fx.network);
  TrafficConfig config;
  config.pairs = 1;
  config.choice = PairChoice::kNonActing;
  ASSERT_TRUE(traffic.start(config, {0, 1}, {2, 3, 4, 5}, 0).ok());
  for (const NodePair& pair : traffic.active_pairs()) {
    EXPECT_GE(pair.a, 2u);
    EXPECT_GE(pair.b, 2u);
  }
  traffic.stop();
}

TEST(TrafficGenerator, DoubleStartRejected) {
  Fixture fx(net::Topology::full_mesh(4));
  TrafficGenerator traffic(fx.network);
  TrafficConfig config;
  config.pairs = 1;
  config.choice = PairChoice::kAll;
  ASSERT_TRUE(traffic.start(config, {0, 1}, {2, 3}, 0).ok());
  EXPECT_FALSE(traffic.start(config, {0, 1}, {2, 3}, 0).ok());
  traffic.stop();
}

TEST(TrafficGenerator, PairChoiceParsing) {
  EXPECT_EQ(parse_pair_choice("0").value(), PairChoice::kActing);
  EXPECT_EQ(parse_pair_choice("\"1\"").value(), PairChoice::kNonActing);
  EXPECT_EQ(parse_pair_choice("all").value(), PairChoice::kAll);
  EXPECT_FALSE(parse_pair_choice("7").ok());
}

}  // namespace
}  // namespace excovery::faults
