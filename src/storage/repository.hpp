// Level-4 storage: a repository of experiment packages.
//
// §IV-F: "The fourth level describes the integration of multiple
// experiments into a single repository to facilitate comparison and
// analysis covering multiple experiments.  To date, ExCovery does not
// realize this level."  It is realised here (the paper marks it as future
// work): a directory of level-3 packages with an index and cross-experiment
// query helpers.
//
// Two key spaces share one repository directory (DESIGN.md §14):
//
//  * the legacy id space — human-chosen experiment ids, one file
//    <dir>/<id>.excovery, replace-on-re-store;
//  * the content-addressed space — SHA-256 digests of the canonical
//    campaign submission (core::campaign_digest), laid out Nix-style as
//    <dir>/cas/<first-2-hex>/<digest>.excovery.  Content addressing makes
//    stores idempotent: equal digest means byte-identical package, so
//    re-storing an existing digest is a no-op success.
//
// Persistence is crash-safe: package files and both index files are
// written to a temporary sibling and atomically renamed into place, and
// index reload skips corrupt lines / dangling entries instead of failing
// open() (the directory scan self-heals the index anyway).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "storage/package.hpp"

namespace excovery::storage {

class Repository {
 public:
  /// Open (or create) a repository rooted at a directory.
  static Result<Repository> open(const std::string& directory);

  const std::string& directory() const noexcept { return directory_; }

  /// Store a package under an experiment id; persists it atomically as
  /// <dir>/<id>.excovery and updates the index.  Re-storing an existing id
  /// replaces the previous package in place (no leaked file, no stale
  /// index entry).
  Status store(const std::string& experiment_id,
               const ExperimentPackage& package);

  /// Load one experiment.
  Result<ExperimentPackage> fetch(const std::string& experiment_id) const;

  bool contains(const std::string& experiment_id) const;
  /// All experiment ids, sorted.
  std::vector<std::string> experiment_ids() const;
  std::size_t size() const noexcept { return index_.size(); }

  // ---- content-addressed store (DESIGN.md §14) ---------------------------
  /// Store a package under its content digest (64 lower-case hex chars from
  /// core::campaign_digest).  Idempotent: storing a digest that is already
  /// present succeeds without rewriting the file.
  Status store_by_hash(const std::string& digest,
                       const ExperimentPackage& package);
  /// Load the package stored under a digest.
  Result<ExperimentPackage> fetch_by_hash(const std::string& digest) const;
  bool contains_hash(const std::string& digest) const;
  /// All stored digests, sorted.
  std::vector<std::string> hashes() const;
  std::size_t cas_size() const noexcept { return cas_index_.size(); }
  /// Repository-relative CAS file path ("cas/ab/<digest>.excovery") — the
  /// on-disk layout contract, exposed for tooling.
  static std::string cas_relative_path(const std::string& digest);

  /// Cross-experiment query: every event of a given type across all stored
  /// experiments, tagged with the experiment id.
  struct CrossEvent {
    std::string experiment_id;
    EventRow event;
  };
  Result<std::vector<CrossEvent>> events_of_type(
      const std::string& event_type) const;

  /// Per-experiment summary (name, runs, events, packets) for comparison
  /// tooling.
  struct Summary {
    std::string experiment_id;
    std::string name;
    std::size_t runs = 0;
    std::size_t events = 0;
    std::size_t packets = 0;
  };
  Result<std::vector<Summary>> summaries() const;

 private:
  explicit Repository(std::string directory)
      : directory_(std::move(directory)) {}

  std::string path_for(const std::string& experiment_id) const;
  Status save_index() const;
  Status save_cas_index() const;

  std::string directory_;
  std::map<std::string, std::string> index_;      // id -> file name
  std::map<std::string, std::string> cas_index_;  // digest -> relative path
};

}  // namespace excovery::storage
