#include "sim/clock.hpp"

#include <cmath>

namespace excovery::sim {

LocalClock::LocalClock(const ClockModel& model, std::uint64_t jitter_seed)
    : model_(model), jitter_rng_(jitter_seed, jitter_seed ^ 0x9E3779B9ULL) {}

SimTime LocalClock::read(SimTime global) {
  SimTime local = local_at(global);
  if (model_.read_jitter.nanos() > 0) {
    std::int64_t j = jitter_rng_.uniform_int(-model_.read_jitter.nanos(),
                                             model_.read_jitter.nanos());
    local += SimDuration(j);
  }
  return local;
}

SimTime LocalClock::local_at(SimTime global) const noexcept {
  double scale = 1.0 + model_.drift_ppm * 1e-6;
  auto scaled = static_cast<std::int64_t>(
      std::llround(static_cast<double>(global.nanos()) * scale));
  return SimTime(model_.offset.nanos() + scaled);
}

SimTime LocalClock::global_at(SimTime local) const noexcept {
  double scale = 1.0 + model_.drift_ppm * 1e-6;
  auto unscaled = static_cast<std::int64_t>(std::llround(
      static_cast<double>(local.nanos() - model_.offset.nanos()) / scale));
  return SimTime(unscaled);
}

}  // namespace excovery::sim
