// Per-node local clocks.
//
// §IV-B3: "Events and packets have a local time stamp of the node they were
// measured on ... ExCovery defines mandatory measurements to be done before
// each run to estimate the time difference of each participant to a
// reference clock."  The simulated platform gives each node a local clock
//     local(t) = offset + (1 + drift) * t  (+ optional read jitter)
// so the time-synchronisation estimation and the conditioning pipeline are
// exercised against genuinely deviating clocks.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "sim/time.hpp"

namespace excovery::sim {

/// Parameters of a simulated local clock.
struct ClockModel {
  SimDuration offset;        ///< initial offset from the reference clock
  double drift_ppm = 0.0;    ///< frequency error in parts per million
  SimDuration read_jitter;   ///< +/- uniform jitter applied per read

  static ClockModel ideal() { return {}; }
};

/// A node's local clock.  Converts between global (reference) time and the
/// node's local time.  Jitter, when configured, draws from a dedicated
/// deterministic stream.
class LocalClock {
 public:
  LocalClock() : LocalClock(ClockModel::ideal(), 0) {}
  LocalClock(const ClockModel& model, std::uint64_t jitter_seed);

  const ClockModel& model() const noexcept { return model_; }

  /// Local reading at global time `global` (with jitter, if configured).
  SimTime read(SimTime global);

  /// Restart the jitter stream from a fresh seed.  Called at run start so a
  /// run's clock-read jitter depends only on (experiment seed, run id), not
  /// on how many reads earlier runs performed.
  void reseed_jitter(std::uint64_t jitter_seed) noexcept {
    jitter_rng_ = Pcg32(jitter_seed, jitter_seed ^ 0x9E3779B9ULL);
  }

  /// Noise-free local time at a given global time.
  SimTime local_at(SimTime global) const noexcept;

  /// Noise-free inverse: global time at a given local reading.
  SimTime global_at(SimTime local) const noexcept;

  /// True clock offset (local - global) at a given global time; tests use
  /// this as ground truth for the estimation error of time sync.
  SimDuration true_offset_at(SimTime global) const noexcept {
    return local_at(global) - global;
  }

 private:
  ClockModel model_;
  Pcg32 jitter_rng_;
};

}  // namespace excovery::sim
