#include "core/plan.hpp"

#include <algorithm>
#include <unordered_set>

#include "common/strings.hpp"

namespace excovery::core {

Result<Value> Treatment::level(const std::string& factor_id) const {
  auto it = levels.find(factor_id);
  if (it == levels.end()) {
    return err_not_found("treatment has no level for factor '" + factor_id +
                         "'");
  }
  return it->second;
}

Result<std::int64_t> Treatment::level_int(const std::string& factor_id) const {
  EXC_ASSIGN_OR_RETURN(Value value, level(factor_id));
  return value.to_int();
}

Result<double> Treatment::level_double(const std::string& factor_id) const {
  EXC_ASSIGN_OR_RETURN(Value value, level(factor_id));
  return value.to_double();
}

Result<std::string> Treatment::level_text(const std::string& factor_id) const {
  EXC_ASSIGN_OR_RETURN(Value value, level(factor_id));
  return value.to_text();
}

const std::vector<std::string>& RunSpec::acting_nodes() const {
  if (!acting_nodes_cached_) {
    std::vector<std::string> out;
    for (const auto& [actor, nodes] : actor_map) {
      out.insert(out.end(), nodes.begin(), nodes.end());
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    acting_nodes_cache_ = std::move(out);
    acting_nodes_cached_ = true;
  }
  return acting_nodes_cache_;
}

namespace {

Result<ActorMap> actor_map_from_level(const Value& level) {
  if (!level.is_map()) {
    return err_validation("actor_node_map level is not a map");
  }
  ActorMap map;
  for (const auto& [actor_id, instances] : level.as_map()) {
    std::vector<std::string> nodes;
    if (instances.is_array()) {
      for (const Value& instance : instances.as_array()) {
        nodes.push_back(instance.to_text());
      }
    }
    map.emplace(actor_id, std::move(nodes));
  }
  return map;
}

}  // namespace

Result<TreatmentPlan> TreatmentPlan::generate(
    const ExperimentDescription& description) {
  RngFactory rng_factory(description.seed);

  // Order: blocking factors first (outermost), then the rest in list order.
  std::vector<const Factor*> ordered;
  for (const Factor& factor : description.factors) {
    if (factor.usage == FactorUsage::kBlocking) ordered.push_back(&factor);
  }
  for (const Factor& factor : description.factors) {
    if (factor.usage != FactorUsage::kBlocking) ordered.push_back(&factor);
  }

  // Per-factor level order; "random" factors are shuffled reproducibly.
  std::vector<std::vector<const Value*>> level_orders;
  level_orders.reserve(ordered.size());
  for (const Factor* factor : ordered) {
    std::vector<const Value*> order;
    order.reserve(factor->levels.size());
    for (const Value& level : factor->levels) order.push_back(&level);
    if (factor->usage == FactorUsage::kRandom) {
      Pcg32 rng = rng_factory.stream("factor-order/" + factor->id);
      rng.shuffle(order);
    }
    level_orders.push_back(std::move(order));
  }

  TreatmentPlan plan;
  plan.replications_ = description.replications;

  // Cartesian product, first factor varying least often.
  std::size_t combinations = 1;
  for (const auto& order : level_orders) combinations *= order.size();
  plan.treatment_count_ = combinations;

  std::vector<std::size_t> indices(ordered.size(), 0);
  std::int64_t run_id = 1;
  for (std::size_t combo = 0; combo < combinations; ++combo) {
    Treatment treatment;
    for (std::size_t f = 0; f < ordered.size(); ++f) {
      treatment.levels[ordered[f]->id] = *level_orders[f][indices[f]];
    }

    ActorMap actor_map;
    if (!description.node_factor_id.empty()) {
      auto it = treatment.levels.find(description.node_factor_id);
      if (it != treatment.levels.end()) {
        EXC_ASSIGN_OR_RETURN(actor_map, actor_map_from_level(it->second));
      }
    }

    for (int replication = 0; replication < description.replications;
         ++replication) {
      RunSpec run;
      run.run_id = run_id++;
      run.treatment_index = static_cast<std::int64_t>(combo);
      run.replication = replication;
      run.treatment = treatment;
      // The replication index is itself addressable as a factor level
      // (Fig. 7 wires fact_replication_id into the traffic generator's
      // switch seed).
      run.treatment.levels[description.replication_factor_id] =
          Value{static_cast<std::int64_t>(replication)};
      run.actor_map = actor_map;
      plan.runs_.push_back(std::move(run));
    }

    // Odometer increment: last factor changes every treatment.
    for (std::size_t f = ordered.size(); f-- > 0;) {
      if (++indices[f] < level_orders[f].size()) break;
      indices[f] = 0;
    }
  }

  if (plan.runs_.empty() && description.replications > 0) {
    // No factors at all: a single empty treatment, replicated.
    for (int replication = 0; replication < description.replications;
         ++replication) {
      RunSpec run;
      run.run_id = run_id++;
      run.replication = replication;
      run.treatment.levels[description.replication_factor_id] =
          Value{static_cast<std::int64_t>(replication)};
      plan.runs_.push_back(std::move(run));
    }
    plan.treatment_count_ = 1;
  }

  // Warm the per-run acting-node caches so later callers (possibly on
  // several campaign threads) only ever read them.
  for (const RunSpec& run : plan.runs_) (void)run.acting_nodes();

  return plan;
}

std::vector<const RunSpec*> TreatmentPlan::remaining(
    const std::vector<std::int64_t>& completed) const {
  std::unordered_set<std::int64_t> done(completed.begin(), completed.end());
  std::vector<const RunSpec*> out;
  out.reserve(runs_.size() - std::min(done.size(), runs_.size()));
  for (const RunSpec& run : runs_) {
    if (done.count(run.run_id) == 0) out.push_back(&run);
  }
  return out;
}

std::string TreatmentPlan::format(std::size_t max_rows) const {
  std::string out = strings::format(
      "treatment plan: %zu treatments x %d replications = %zu runs\n",
      treatment_count_, replications_, runs_.size());
  std::size_t shown = 0;
  for (const RunSpec& run : runs_) {
    if (shown++ >= max_rows) {
      out += strings::format("  ... (%zu more runs)\n", runs_.size() - shown + 1);
      break;
    }
    out += strings::format("  run %3lld  rep %3d  ",
                           static_cast<long long>(run.run_id),
                           run.replication);
    for (const auto& [factor, level] : run.treatment.levels) {
      out += factor + "=" + level.to_text() + " ";
    }
    out += "\n";
  }
  return out;
}

}  // namespace excovery::core
