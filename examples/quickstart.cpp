// Quickstart: describe, execute and analyse a minimal service discovery
// experiment — one publisher (SM), one requester (SU), two bystander nodes,
// five replications on a simulated wireless mesh.
//
//   $ ./quickstart [--run-workers N] [--log-level LEVEL]
//                  [--trace-out FILE] [--metrics-out FILE]
//                  [--provenance-out FILE] [--packet-trace]
//                  [--cache] [--repo DIR]
//
// --run-workers N executes the treatment plan's runs on N parallel platform
// replicas (0 = hardware concurrency); the conditioned package is
// bit-identical to the sequential default (DESIGN.md §10).
//
// --cache routes execution through the memoizing ExperimentService
// (DESIGN.md §14): the campaign is submitted twice and the second
// submission is answered from the result cache — byte-identical to the
// simulated package and orders of magnitude faster.  --repo DIR (implies
// --cache) additionally persists results in a content-addressed on-disk
// repository, so re-running the program with the same DIR starts with a
// warm cache and never simulates at all.
//
// --log-level sets the global log threshold (trace|debug|info|warn|error).
// --trace-out writes a Chrome/Perfetto trace_event JSON file with a wall
// track (workers, conditioning) and a simulated-time track (runs, and with
// --packet-trace per-packet lifecycles); open it in https://ui.perfetto.dev.
// --metrics-out writes the runtime metrics (counters, histograms and the
// per-run ledger) as JSON.
// --provenance-out writes each run's discovery critical paths — which query
// round, retransmission or cache hop produced every sd_service_add, with
// per-edge simulated latencies — as JSON (DESIGN.md §16).  All
// observability is out-of-band: the package bytes are identical with and
// without these flags (DESIGN.md §11).
//
// The program walks the full ExCovery workflow (Fig. 3 of the paper):
//   1. build the abstract experiment description (Fig. 9/10 processes),
//   2. set up the simulated platform,
//   3. execute the treatment plan with the ExperiMaster,
//   4. collect + condition measurements into a level-3 package,
//   5. query the package: responsiveness and the run-1 event timeline.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>

#include "common/log.hpp"
#include "common/obs_switch.hpp"
#include "core/master.hpp"
#include "core/scenario.hpp"
#include "core/service.hpp"
#include "obs/obs.hpp"
#include "stats/analysis.hpp"
#include "storage/repository.hpp"

using namespace excovery;

namespace {

int usage(const char* prog) {
  std::fprintf(stderr,
               "usage: %s [--run-workers N] [--log-level "
               "trace|debug|info|warn|error]\n"
               "          [--trace-out FILE] [--metrics-out FILE] "
               "[--provenance-out FILE]\n"
               "          [--packet-trace] [--cache] [--repo DIR]\n",
               prog);
  return 2;
}

double ms_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  core::MasterOptions master_options;
  std::string trace_out;
  std::string metrics_out;
  std::string provenance_out;
  bool packet_trace = false;
  bool cache_mode = false;
  std::string repo_dir;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--cache") == 0) {
      cache_mode = true;
    } else if (std::strcmp(argv[i], "--repo") == 0 && i + 1 < argc) {
      repo_dir = argv[++i];
      cache_mode = true;  // a repository only makes sense with the service
    } else if (std::strcmp(argv[i], "--run-workers") == 0 && i + 1 < argc) {
      master_options.run_workers =
          static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--log-level") == 0 && i + 1 < argc) {
      Result<LogLevel> level = parse_log_level(argv[++i]);
      if (!level.ok()) {
        std::fprintf(stderr, "--log-level: %s\n",
                     level.error().to_string().c_str());
        return 2;
      }
      Logger::instance().set_level(level.value());
    } else if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      trace_out = argv[++i];
    } else if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
      metrics_out = argv[++i];
    } else if (std::strcmp(argv[i], "--provenance-out") == 0 &&
               i + 1 < argc) {
      provenance_out = argv[++i];
    } else if (std::strcmp(argv[i], "--packet-trace") == 0) {
      packet_trace = true;
    } else {
      return usage(argv[0]);
    }
  }

#if !EXCOVERY_OBS_ENABLED
  // Observability was compiled out; requesting its outputs would otherwise
  // silently produce empty files.
  if (!trace_out.empty() || !metrics_out.empty() || !provenance_out.empty()) {
    std::fprintf(stderr,
                 "warning: this binary was built with -DEXCOVERY_OBS=OFF; "
                 "--trace-out, --metrics-out and --provenance-out will "
                 "produce empty output.\n"
                 "         Rebuild with -DEXCOVERY_OBS=ON (the default) to "
                 "collect traces, metrics and provenance.\n");
  }
#endif

  // Observability: attach a context whenever any output was requested (a
  // context costs nothing measurable and never changes the package bytes).
  obs::ObsConfig obs_config;
  obs_config.trace = !trace_out.empty();
  obs_config.packet_trace = packet_trace;
  obs::ObsContext obs(obs_config);
  master_options.obs = &obs;

  // 1. The experiment description.  scenario::two_party_sd builds exactly
  //    the SM/SU processes of the paper's Figures 9 and 10.
  core::scenario::TwoPartyOptions options;
  options.sm_count = 1;
  options.su_count = 1;
  options.environment_count = 2;
  options.replications = 5;
  options.deadline_s = 30.0;  // the SU's search deadline (Fig. 10)

  Result<core::ExperimentDescription> description =
      core::scenario::two_party_sd(options);
  if (!description.ok()) {
    std::fprintf(stderr, "description: %s\n",
                 description.error().to_string().c_str());
    return 1;
  }
  std::printf("=== experiment description (excerpt) ===\n%.1200s...\n\n",
              description.value().to_xml_text().c_str());

  // The analysis below works on whichever package the chosen execution
  // path produced; these two keep it alive.
  std::optional<storage::ExperimentPackage> direct_package;
  std::shared_ptr<const storage::ExperimentPackage> cached_package;
  const storage::ExperimentPackage* result = nullptr;

  // Repository must outlive the service that stores into it.
  std::optional<storage::Repository> repository;

  if (cache_mode) {
    // 2-4 via the memoizing experiment service (DESIGN.md §14): submit the
    // identical campaign twice.  The first submission misses (or, with a
    // warm --repo directory, hits the disk CAS); the second is served from
    // the in-memory cache.
    if (!repo_dir.empty()) {
      Result<storage::Repository> opened = storage::Repository::open(repo_dir);
      if (!opened.ok()) {
        std::fprintf(stderr, "repo: %s\n",
                     opened.error().to_string().c_str());
        return 1;
      }
      repository = std::move(opened).value();
    }
    core::ExperimentService::Config service_config;
    service_config.workers = 1;
    service_config.repository = repository ? &*repository : nullptr;
    service_config.obs = &obs;
    core::ExperimentService service(std::move(service_config));

    core::Submission submission;
    submission.description = description.value();
    submission.scope.platform_seed = 2026;
    submission.run_workers = master_options.run_workers;

    std::printf("=== experiment service ===\ncampaign digest: %s\n",
                submission.digest().c_str());
    const auto start_first = std::chrono::steady_clock::now();
    core::ServiceReply first = service.submit(submission);
    const double first_ms = ms_since(start_first);
    if (!first.status.ok()) {
      std::fprintf(stderr, "submit: %s\n",
                   first.status.error().to_string().c_str());
      return 1;
    }
    const auto start_second = std::chrono::steady_clock::now();
    core::ServiceReply second = service.submit(submission);
    const double second_ms = ms_since(start_second);
    if (!second.status.ok()) {
      std::fprintf(stderr, "submit: %s\n",
                   second.status.error().to_string().c_str());
      return 1;
    }

    std::printf("submission 1: %-10s %10.3f ms\n",
                std::string(core::to_string(first.outcome)).c_str(),
                first_ms);
    std::printf("submission 2: %-10s %10.3f ms  (%.0fx faster)\n",
                std::string(core::to_string(second.outcome)).c_str(),
                second_ms, second_ms > 0 ? first_ms / second_ms : 0.0);
    const bool identical = first.package->database().serialize() ==
                           second.package->database().serialize();
    std::printf("cached == fresh bytes: %s\n",
                identical ? "identical" : "DIFFERENT (bug!)");
    const core::ServiceStats stats = service.stats();
    std::printf(
        "stats: %llu memory hit(s), %llu disk hit(s), %llu miss(es), "
        "%llu simulation(s)\n",
        static_cast<unsigned long long>(stats.memory_hits),
        static_cast<unsigned long long>(stats.disk_hits),
        static_cast<unsigned long long>(stats.misses),
        static_cast<unsigned long long>(stats.simulations));
    if (repository) {
      std::printf("repository %s: %zu content-addressed package(s)\n",
                  repo_dir.c_str(), repository->cas_size());
    }
    std::printf("\n");
    cached_package = std::move(second.package);
    result = cached_package.get();
  } else {
    // 2. Platform setup: a full-mesh topology containing every node the
    //    description names, with imperfect per-node clocks.
    Result<net::Topology> topology =
        core::scenario::topology_for(description.value(), {});
    if (!topology.ok()) {
      std::fprintf(stderr, "topology: %s\n",
                   topology.error().to_string().c_str());
      return 1;
    }
    core::SimPlatformConfig config;
    config.topology = std::move(topology).value();
    config.seed = 2026;
    Result<std::unique_ptr<core::SimPlatform>> platform =
        core::SimPlatform::create(description.value(), std::move(config));
    if (!platform.ok()) {
      std::fprintf(stderr, "platform: %s\n",
                   platform.error().to_string().c_str());
      return 1;
    }

    // 3 + 4. Execute all runs and condition the results.  With
    //    --run-workers > 1 the runs execute in parallel on platform
    //    replicas; the package bytes do not change.
    core::ExperiMaster master(description.value(), *platform.value(),
                              std::move(master_options));
    std::printf("=== treatment plan ===\n%s\n",
                master.plan().format().c_str());
    Result<storage::ExperimentPackage> package = master.execute();
    if (!package.ok()) {
      std::fprintf(stderr, "execution: %s\n",
                   package.error().to_string().c_str());
      return 1;
    }
    direct_package = std::move(package).value();
    result = &*direct_package;
  }

  // 5. Analysis: responsiveness and the event timeline of run 1.
  Result<stats::Proportion> responsiveness =
      stats::responsiveness(*result, 5.0, 1);
  if (responsiveness.ok()) {
    std::printf(
        "responsiveness(deadline=5s): %.2f  [wilson 95%%: %.2f..%.2f]  "
        "(%zu/%zu runs)\n\n",
        responsiveness.value().estimate, responsiveness.value().lower,
        responsiveness.value().upper, responsiveness.value().successes,
        responsiveness.value().trials);
  }

  std::printf("=== run 1 timeline ===\n");
  Result<std::vector<storage::EventRow>> events = result->events(1);
  if (events.ok()) {
    for (const storage::EventRow& event : events.value()) {
      std::printf("%10.6fs  %-12s %-22s %s\n", event.common_time,
                  event.node_id.c_str(), event.event_type.c_str(),
                  event.parameter.c_str());
    }
  }
  std::printf("\npackage: %zu events, %zu packets across %zu runs\n",
              result->event_count(), result->packet_count(),
              result->run_ids().size());

  // Observability exports: runtime metrics and the dual-track trace.
  std::printf("\n=== runtime metrics (deterministic domain, excerpt) ===\n");
  std::string deterministic = obs.format_deterministic_metrics();
  std::fwrite(deterministic.data(), 1,
              std::min<std::size_t>(deterministic.size(), 2000), stdout);
  if (deterministic.size() > 2000) std::printf("...\n");
  if (!metrics_out.empty()) {
    Status written = obs.write_metrics_json(metrics_out);
    if (!written.ok()) {
      std::fprintf(stderr, "metrics-out: %s\n",
                   written.error().to_string().c_str());
      return 1;
    }
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }
  if (!provenance_out.empty()) {
    Status written = obs.write_provenance_json(provenance_out);
    if (!written.ok()) {
      std::fprintf(stderr, "provenance-out: %s\n",
                   written.error().to_string().c_str());
      return 1;
    }
    std::printf("provenance written to %s (%zu critical-path step(s))\n",
                provenance_out.c_str(), obs.provenance().size());
  }
  if (!trace_out.empty()) {
    Status written = obs.trace().write_json(trace_out);
    if (!written.ok()) {
      std::fprintf(stderr, "trace-out: %s\n",
                   written.error().to_string().c_str());
      return 1;
    }
    std::printf("trace written to %s (%zu events) — open in "
                "https://ui.perfetto.dev\n",
                trace_out.c_str(), obs.trace().size());
  }
  return 0;
}
