#include "sd/message.hpp"

namespace excovery::sd {

namespace {
/// Magic tag so stray non-SD payloads fail fast in decode().
constexpr std::uint16_t kMagic = 0x5D5D;
constexpr std::uint8_t kVersion = 1;
}  // namespace

std::string_view to_string(MessageKind kind) noexcept {
  switch (kind) {
    case MessageKind::kQuery: return "query";
    case MessageKind::kResponse: return "response";
    case MessageKind::kAnnounce: return "announce";
    case MessageKind::kGoodbye: return "goodbye";
    case MessageKind::kProbe: return "probe";
    case MessageKind::kScmQuery: return "scm_query";
    case MessageKind::kScmAdvert: return "scm_advert";
    case MessageKind::kRegister: return "register";
    case MessageKind::kRegisterAck: return "register_ack";
    case MessageKind::kDeregister: return "deregister";
    case MessageKind::kDirectedQuery: return "directed_query";
    case MessageKind::kDirectedReply: return "directed_reply";
  }
  return "?";
}

Bytes encode(const SdMessage& message) {
  ByteWriter w;
  w.u16(kMagic);
  w.u8(kVersion);
  w.u8(static_cast<std::uint8_t>(message.kind));
  w.u32(message.txn_id);
  w.string(message.service_type);
  w.string(message.sender_name);
  w.u32(message.lease_seconds);
  w.u16(static_cast<std::uint16_t>(message.records.size()));
  for (const ServiceRecord& record : message.records) {
    w.string(record.instance.instance_name);
    w.string(record.instance.type);
    w.u32(record.instance.provider.raw());
    w.u16(record.instance.port);
    w.u32(record.instance.version);
    w.u32(record.ttl_seconds);
    w.u16(static_cast<std::uint16_t>(record.instance.attributes.size()));
    for (const auto& [key, value] : record.instance.attributes) {
      w.string(key);
      w.string(value);
    }
  }
  w.u16(static_cast<std::uint16_t>(message.known_answers.size()));
  for (const KnownAnswer& ka : message.known_answers) {
    w.string(ka.instance_name);
    w.u32(ka.remaining_ttl_seconds);
  }
  return w.take();
}

Result<SdMessage> decode(const Bytes& payload) {
  ByteReader r(payload);
  EXC_ASSIGN_OR_RETURN(std::uint16_t magic, r.u16());
  if (magic != kMagic) return err_parse("not an SD message (bad magic)");
  EXC_ASSIGN_OR_RETURN(std::uint8_t version, r.u8());
  if (version != kVersion) {
    return err_parse("unsupported SD message version " +
                     std::to_string(version));
  }
  SdMessage message;
  EXC_ASSIGN_OR_RETURN(std::uint8_t kind, r.u8());
  if ((kind < 1 || kind > 5) && (kind < 10 || kind > 16)) {
    return err_parse("unknown SD message kind " + std::to_string(kind));
  }
  message.kind = static_cast<MessageKind>(kind);
  EXC_ASSIGN_OR_RETURN(message.txn_id, r.u32());
  EXC_ASSIGN_OR_RETURN(message.service_type, r.string());
  EXC_ASSIGN_OR_RETURN(message.sender_name, r.string());
  EXC_ASSIGN_OR_RETURN(message.lease_seconds, r.u32());
  EXC_ASSIGN_OR_RETURN(std::uint16_t record_count, r.u16());
  message.records.reserve(record_count);
  for (std::uint16_t i = 0; i < record_count; ++i) {
    ServiceRecord record;
    EXC_ASSIGN_OR_RETURN(record.instance.instance_name, r.string());
    EXC_ASSIGN_OR_RETURN(record.instance.type, r.string());
    EXC_ASSIGN_OR_RETURN(std::uint32_t addr, r.u32());
    record.instance.provider = net::Address(addr);
    EXC_ASSIGN_OR_RETURN(record.instance.port, r.u16());
    EXC_ASSIGN_OR_RETURN(record.instance.version, r.u32());
    EXC_ASSIGN_OR_RETURN(record.ttl_seconds, r.u32());
    EXC_ASSIGN_OR_RETURN(std::uint16_t attr_count, r.u16());
    for (std::uint16_t j = 0; j < attr_count; ++j) {
      EXC_ASSIGN_OR_RETURN(std::string key, r.string());
      EXC_ASSIGN_OR_RETURN(std::string value, r.string());
      record.instance.attributes.emplace(std::move(key), std::move(value));
    }
    message.records.push_back(std::move(record));
  }
  EXC_ASSIGN_OR_RETURN(std::uint16_t ka_count, r.u16());
  message.known_answers.reserve(ka_count);
  for (std::uint16_t i = 0; i < ka_count; ++i) {
    KnownAnswer ka;
    EXC_ASSIGN_OR_RETURN(ka.instance_name, r.string());
    EXC_ASSIGN_OR_RETURN(ka.remaining_ttl_seconds, r.u32());
    message.known_answers.push_back(std::move(ka));
  }
  return message;
}

}  // namespace excovery::sd
