// The simulated network: packet delivery over a Topology, driven by the
// discrete-event scheduler.
//
// This class implements the three platform capability groups of §IV-A that
// concern the data plane:
//  * Connection control (§IV-A2): per-node interface up/down in either
//    direction, and rule-based packet manipulation (drop/delay/modify)
//    through filter chains — the hooks the fault injectors plug into.
//  * Measurement (§IV-A3): per-node packet capture with local timestamps
//    and unaltered content, a packet tagger (incrementing 16-bit id per
//    sender) and hop-by-hop route tracking on every packet.
//  * Time: per-node local clocks with configurable offset/drift/jitter.
//
// Unicast travels hop-by-hop along min-hop routes; multicast/broadcast
// floods the mesh with duplicate suppression and a TTL, matching how the
// DES testbed forwards link-scope multicast for Zeroconf experiments.
#pragma once

#include <algorithm>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/obs_switch.hpp"
#include "common/rng.hpp"
#include "net/link_set.hpp"
#include "net/packet.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "net/uid_set.hpp"
#include "sim/clock.hpp"
#include "sim/lineage.hpp"
#include "sim/scheduler.hpp"

namespace excovery::net {

/// What a packet filter decided for one packet at one node.
struct FilterVerdict {
  enum class Action { kPass, kDrop, kDelay, kDuplicate } action = Action::kPass;
  sim::SimDuration delay{};  ///< extra delay when action == kDelay
  int copies = 0;            ///< extra copies when action == kDuplicate
  sim::SimDuration copy_gap{};  ///< spacing between injected copies
  /// Why a kDrop verdict dropped — a static string naming the injector or
  /// rule ("fault:loss", "fault:partition", …).  Recorded as the label of
  /// the lineage terminator so provenance can attribute the loss.
  const char* cause = "filter";

  static FilterVerdict pass() { return {}; }
  static FilterVerdict drop(const char* cause = "filter") {
    FilterVerdict v;
    v.action = Action::kDrop;
    v.cause = cause;
    return v;
  }
  static FilterVerdict delayed(sim::SimDuration d) {
    return {Action::kDelay, d};
  }
  /// Inject `copies` extra transmissions of this packet, `gap` apart.
  /// Honoured only at the origin send (relays ignore it — duplication at
  /// every hop would amplify combinatorially); each copy gets a fresh uid
  /// and tag and does not re-run the filter chain.
  static FilterVerdict duplicated(int copies, sim::SimDuration gap) {
    FilterVerdict v;
    v.action = Action::kDuplicate;
    v.copies = copies;
    v.copy_gap = gap;
    return v;
  }
};

/// Accumulated result of running a filter chain over one packet.
struct FilterOutcome {
  bool drop = false;
  const char* drop_cause = "filter";  ///< cause of the dropping verdict
  sim::SimDuration delay{};
  int duplicates = 0;               ///< origin-send only; relays ignore
  sim::SimDuration duplicate_gap{};
};

/// A packet manipulation rule (§IV-A2).  May mutate the packet (content
/// modification).  Applied at the node/direction it is installed for.
using PacketFilter =
    std::function<FilterVerdict(NodeId node, Direction dir, Packet& packet)>;

/// Handle for removing an installed filter.
class FilterHandle {
 public:
  FilterHandle() = default;
  bool valid() const noexcept { return id_ != 0; }

 private:
  friend class Network;
  explicit FilterHandle(std::uint64_t id) noexcept : id_(id) {}
  std::uint64_t id_ = 0;
};

/// Where filters apply.
struct FilterScope {
  std::optional<NodeId> node;        ///< nullopt = all nodes
  std::optional<Direction> direction;  ///< nullopt = both directions
};

/// Delivery callback: (receiving node, packet).
using PacketHandler = std::function<void(NodeId, const Packet&)>;

/// Aggregate delivery statistics (observed by benches and tests).
struct NetworkStats {
  std::uint64_t sent = 0;             ///< send() calls accepted
  std::uint64_t delivered = 0;        ///< handler invocations
  std::uint64_t forwarded = 0;        ///< intermediate hop transmissions
  std::uint64_t dropped_loss = 0;     ///< stochastic per-hop link loss
  std::uint64_t dropped_interface = 0;///< interface down
  std::uint64_t dropped_filter = 0;   ///< filter verdicts
  std::uint64_t dropped_ttl = 0;      ///< multicast TTL exhausted
  std::uint64_t dropped_no_route = 0; ///< unreachable unicast destination
  std::uint64_t dropped_no_handler = 0;
  std::uint64_t dropped_queue = 0;    ///< egress queue overflow (congestion)
  std::uint64_t dropped_link_down = 0;///< hop over an administratively-down link
  std::uint64_t duplicated = 0;       ///< extra copies injected by filters
  std::uint64_t bytes_sent = 0;
};

/// One moment in a packet's lifecycle, reported to the observability layer
/// when a trace hook is installed (src/obs renders these as sim-track
/// events).  `detail` is a static string naming the drop cause or hop kind.
struct PacketTraceEvent {
  enum class Kind : std::uint8_t { kSend, kHop, kDeliver, kDup, kDrop };
  Kind kind = Kind::kSend;
  std::uint64_t uid = 0;
  NodeId node = 0;        ///< node where the event happened
  NodeId peer = 0;        ///< other end of the hop (kSend/kHop only)
  const char* detail = "";
  std::size_t bytes = 0;
};
using PacketTraceHook = std::function<void(const PacketTraceEvent&)>;

/// Per-directed-link counters (row-major from*n+to), collected only when
/// enabled: the matrix is O(n^2) and the increments sit on the per-hop path.
struct LinkStats {
  std::size_t nodes = 0;
  std::vector<std::uint64_t> sent;     ///< hops scheduled from->to
  std::vector<std::uint64_t> dropped;  ///< hops dropped on from->to
};

class Network {
 public:
  Network(sim::Scheduler& scheduler, Topology topology, std::uint64_t seed);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  const Topology& topology() const noexcept { return topology_; }
  sim::Scheduler& scheduler() noexcept { return scheduler_; }
  std::size_t node_count() const noexcept { return topology_.node_count(); }

  // ---- application layer ------------------------------------------------
  /// Bind a handler to (node, port).  Replaces any existing binding.
  void bind(NodeId node, Port port, PacketHandler handler);
  void unbind(NodeId node, Port port);
  /// Join / leave a multicast group on a node.
  void join_group(NodeId node, Address group);
  void leave_group(NodeId node, Address group);

  /// Send a packet from a node.  The network assigns the unique id, applies
  /// the sender's tagger, and routes (unicast) or floods (multicast /
  /// broadcast).  Returns the assigned uid, or an error if the source
  /// address does not match the node.
  Result<std::uint64_t> send(NodeId from, Packet packet);

  // ---- connection control (§IV-A2) --------------------------------------
  void set_interface_up(NodeId node, Direction direction, bool up);
  bool interface_up(NodeId node, Direction direction) const;

  FilterHandle add_filter(FilterScope scope, PacketFilter filter);
  void remove_filter(FilterHandle handle);
  std::size_t filter_count() const noexcept { return filters_.size(); }

  // ---- measurement (§IV-A3, §IV-B2) --------------------------------------
  void set_capture_enabled(bool enabled) noexcept { capture_ = enabled; }
  bool capture_enabled() const noexcept { return capture_; }
  const std::vector<CapturedPacket>& captures(NodeId node) const;
  /// Move out all captures of a node (drains the buffer).
  std::vector<CapturedPacket> take_captures(NodeId node);
  void clear_captures();

  /// Hop count between nodes per current routing (-1 unreachable).
  int hop_count(NodeId a, NodeId b) const { return routing_.hop_count(a, b); }

  sim::LocalClock& clock(NodeId node) { return nodes_.at(node).clock; }
  void set_clock_model(NodeId node, const sim::ClockModel& model);

  const NetworkStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept {
    stats_ = {};
    if (link_stats_.nodes != 0) {
      std::fill(link_stats_.sent.begin(), link_stats_.sent.end(), 0);
      std::fill(link_stats_.dropped.begin(), link_stats_.dropped.end(), 0);
    }
  }

  /// Turn on per-directed-link hop counters (off by default; O(n^2) memory).
  void enable_link_stats();
  bool link_stats_enabled() const noexcept { return link_stats_.nodes != 0; }
  const LinkStats& link_stats() const noexcept { return link_stats_; }

  /// Install (or clear, with nullptr/empty) the packet lifecycle hook.  The
  /// hook runs synchronously inside the data plane — keep it cheap.
  void set_packet_trace_hook(PacketTraceHook hook) {
    trace_hook_ = std::move(hook);
  }

  /// Attach (or detach, with nullptr) the causal lineage log (DESIGN.md
  /// §16).  Every send/hop/deliver/drop/dup then records a LineageEvent
  /// whose parent is the ambient scheduler context, and delivery handlers
  /// run under their packet's deliver event, so causality threads through
  /// the whole data plane.  Recording consumes no randomness and schedules
  /// nothing: simulation results are identical with or without a log.
  void set_lineage(sim::LineageLog* log);
  /// The attached lineage log (nullptr when none) — the SD agents record
  /// their protocol-level events (query rounds, answers, cache hits)
  /// through the same log.
  sim::LineageLog* lineage() noexcept { return lineage_; }
  /// Interned lineage label of a node's name (0 when no log is attached).
  std::uint16_t lineage_node_label(NodeId node) const noexcept {
    return node < node_labels_.size() ? node_labels_[node] : 0;
  }
  /// The ambient causal context (current scheduler context); what an SD
  /// agent should use as the parent of a protocol-level event.
  std::uint64_t lineage_ambient() const noexcept {
    return scheduler_.current_context();
  }
  /// Record a protocol-level lineage event attributed to `node` (for the
  /// SD agents).  No-op returning 0 when no log is attached.
  std::uint64_t record_lineage(sim::LineageKind kind, std::uint64_t parent,
                               std::uint64_t uid, NodeId node,
                               std::string_view label) {
#if EXCOVERY_OBS_ENABLED
    if (!lineage_) return 0;
    return lineage_->record(kind, parent, uid, scheduler_.now(),
                            lineage_node_label(node), 0,
                            lineage_->intern(label));
#else
    (void)kind;
    (void)parent;
    (void)uid;
    (void)node;
    (void)label;
    return 0;
#endif
  }

  /// Reset per-run state: duplicate-suppression sets, captures, tag
  /// counters.  Used by run preparation ("network packets generated in
  /// previous runs must be dropped", §IV-C1).
  void reset_run_state();

  /// Rebase every network-owned random stream (link loss, delay jitter,
  /// per-node clock-read jitter) on a run-scoped seed.  Makes a run's
  /// network randomness a function of the seed alone rather than of the
  /// draw counts of whatever ran before on this platform instance — the
  /// prerequisite for executing runs out of order or on worker replicas.
  void begin_run(std::uint64_t run_seed);

  /// Degrade or restore a specific link at runtime (used by environment
  /// manipulations); rebuilds routing.
  Status set_link_model(NodeId a, NodeId b, const LinkModel& model);

  // ---- link state (dynamic-world faults, DESIGN.md §12) ------------------
  /// Administratively take one link down or bring it back up.  Routing is
  /// repaired incrementally; packets scheduled onto a down link are dropped
  /// (stats.dropped_link_down).  The link must exist in the topology.
  Status set_link_up(NodeId a, NodeId b, bool up);
  /// Bulk toggle (partitions): applies every pair, then rebuilds routing
  /// once.  All pairs must name existing links.
  Status set_links_up(const std::vector<std::pair<NodeId, NodeId>>& links,
                      bool up);
  bool link_up(NodeId a, NodeId b) const {
    return !disabled_links_.contains(a, b);
  }
  std::size_t disabled_link_count() const noexcept {
    return disabled_links_.size();
  }

  /// Shared-medium contention: each node has a single radio, so its
  /// transmissions serialise.  A packet whose queueing delay would exceed
  /// this limit is dropped (tail drop); this is what makes background load
  /// degrade discovery in a mesh.  Zero disables contention modelling.
  void set_queue_limit(sim::SimDuration limit) noexcept {
    queue_limit_ = limit;
  }
  sim::SimDuration queue_limit() const noexcept { return queue_limit_; }

 private:
  struct NodeState {
    bool rx_up = true;
    bool tx_up = true;
    sim::SimTime tx_free_at;  ///< radio busy until (egress serialisation)
    std::uint16_t next_tag = 1;
    std::set<Address> groups;
    UidSet seen_uids;  // multicast dedup (flat set: no per-insert alloc)
    std::map<Port, PacketHandler> handlers;
    std::vector<CapturedPacket> captures;
    sim::LocalClock clock;
  };

  struct InstalledFilter {
    std::uint64_t id;
    FilterScope scope;
    PacketFilter filter;
  };

  /// Apply filters at a node/direction, accumulating delay and duplicate
  /// requests across the chain.
  FilterOutcome apply_filters(NodeId node, Direction dir, Packet& packet);

  /// Schedule `copies` re-transmissions of an already-filtered packet from
  /// its origin, `gap` apart starting after `initial_delay + gap`.
  void launch_duplicates(NodeId from, const Packet& packet, int copies,
                         sim::SimDuration gap, sim::SimDuration initial_delay);

  void capture(NodeId node, Direction dir, const Packet& packet);

  /// Per-hop transfer: schedules arrival of `packet` at `to` from `from`.
  /// Invokes `on_arrival` if the hop succeeds (loss/downed-rx drop it).
  void transfer(NodeId from, NodeId to, Packet packet,
                std::function<void(Packet)> on_arrival);

  sim::SimDuration hop_delay(const LinkModel& model, std::size_t bytes);

  /// Serialisation time of `bytes` on a link.
  static sim::SimDuration serialisation(const LinkModel& model,
                                        std::size_t bytes);

  void deliver_local(NodeId node, Packet packet);
  void forward_unicast(NodeId current, Packet packet);
  void flood(NodeId origin_hop, Packet packet);

  /// Link model toward an adjacent node, nullptr if not adjacent.  O(degree)
  /// over the cached adjacency instead of a scan of every link.
  const LinkModel* find_link(NodeId from, NodeId to) const noexcept;

  void count_link(NodeId from, NodeId to, bool dropped) noexcept {
#if EXCOVERY_OBS_ENABLED
    if (link_stats_.nodes == 0) return;
    auto& counters = dropped ? link_stats_.dropped : link_stats_.sent;
    counters[from * link_stats_.nodes + to]++;
#else
    (void)from;
    (void)to;
    (void)dropped;
#endif
  }

  void emit_packet_trace(PacketTraceEvent::Kind kind, std::uint64_t uid,
                         NodeId node, NodeId peer, const char* detail,
                         std::size_t bytes) {
#if EXCOVERY_OBS_ENABLED
    if (!trace_hook_) return;
    PacketTraceEvent event;
    event.kind = kind;
    event.uid = uid;
    event.node = node;
    event.peer = peer;
    event.detail = detail;
    event.bytes = bytes;
    trace_hook_(event);
#else
    (void)kind;
    (void)uid;
    (void)node;
    (void)peer;
    (void)detail;
    (void)bytes;
#endif
  }

  /// Ambient causal context (the lineage id the current activity descends
  /// from); 0 outside any context or with observability compiled out.
  std::uint64_t lin_ambient() const noexcept {
    return scheduler_.current_context();
  }

  /// Record one packet lineage event with an explicit parent and a
  /// pre-interned label.  Returns its id, 0 when no log is attached (or
  /// the hooks are compiled out) — a 0 id makes LineageScope a no-op.
  std::uint64_t lin_record(sim::LineageKind kind, std::uint64_t parent,
                           std::uint64_t uid, NodeId node, NodeId peer,
                           std::uint16_t label) {
#if EXCOVERY_OBS_ENABLED
    if (!lineage_) return 0;
    return lineage_->record(kind, parent, uid, scheduler_.now(),
                            lineage_node_label(node),
                            lineage_node_label(peer), label);
#else
    (void)kind;
    (void)parent;
    (void)uid;
    (void)node;
    (void)peer;
    (void)label;
    return 0;
#endif
  }

  /// Same, interning a dynamic cause string (filter verdicts).  Off the
  /// hot path: only dropped packets pay the interner lookup.
  std::uint64_t lin_record_cause(sim::LineageKind kind, std::uint64_t parent,
                                 std::uint64_t uid, NodeId node, NodeId peer,
                                 const char* cause) {
#if EXCOVERY_OBS_ENABLED
    if (!lineage_) return 0;
    return lin_record(kind, parent, uid, node, peer, lineage_->intern(cause));
#else
    (void)kind;
    (void)parent;
    (void)uid;
    (void)node;
    (void)peer;
    (void)cause;
    return 0;
#endif
  }

  /// Pre-interned labels for the fixed data-plane sites, resolved once in
  /// set_lineage so the hot path never touches the interner.
  struct LineageLabels {
    std::uint16_t send = 0, duplicate = 0, hop = 0, deliver = 0, dup = 0,
                  tx_down = 0, rx_down = 0, link_down = 0, loss = 0,
                  queue = 0, ttl = 0, no_route = 0, no_handler = 0;
  };

  sim::Scheduler& scheduler_;
  Topology topology_;
  RoutingTable routing_;
  /// Per-node neighbour cache in link-declaration order (the same order
  /// Topology::neighbours yields), CSR/struct-of-arrays so a 50k-node flood
  /// fan-out streams flat arrays instead of chasing per-node vectors.
  /// Built once: flooding must not allocate a neighbour vector per relay.
  /// Link-model pointers stay valid because the owned topology is never
  /// structurally modified after construction.
  std::vector<std::uint32_t> adj_offset_;        ///< node_count + 1 entries
  std::vector<NodeId> adj_neighbour_;            ///< 2 * link_count entries
  std::vector<const LinkModel*> adj_model_;      ///< parallel to neighbours
  /// Links currently administratively down (flat sorted set of packed
  /// keys).  Checked on the per-hop path only when non-empty; cleared by
  /// reset_run_state so a run always starts from the described topology.
  LinkSet disabled_links_;
  std::vector<NodeState> nodes_;
  std::vector<InstalledFilter> filters_;
  NetworkStats stats_;
  LinkStats link_stats_;
  PacketTraceHook trace_hook_;
  sim::LineageLog* lineage_ = nullptr;
  std::vector<std::uint16_t> node_labels_;  ///< NodeId -> interned name
  LineageLabels lin_labels_;
  sim::SimDuration queue_limit_ = sim::SimDuration::from_millis(250);
  bool capture_ = true;
  std::uint64_t next_uid_ = 1;
  std::uint64_t next_filter_id_ = 1;
  Pcg32 loss_rng_;
  Pcg32 jitter_rng_;
};

}  // namespace excovery::net
