// Serialise DOM trees back to XML text.
#pragma once

#include <string>

#include "xml/dom.hpp"

namespace excovery::xml {

struct WriteOptions {
  bool pretty = true;       ///< newline + indentation per nesting level
  int indent_width = 2;     ///< spaces per level when pretty
  bool declaration = true;  ///< emit <?xml version="1.0" encoding="UTF-8"?>
};

/// Serialise an element subtree.
std::string write(const Element& root, const WriteOptions& options = {});

/// Serialise a document.
std::string write(const Document& doc, const WriteOptions& options = {});

/// Canonical serialisation for content addressing: no XML declaration, no
/// indentation or inter-element whitespace, attributes sorted by name, and
/// character data reduced to the element's trimmed text() (emitted before
/// any children).  Two documents that differ only in attribute order,
/// indentation or surrounding whitespace canonicalise to the same string;
/// any change to names, attribute values, text or child order changes it.
std::string write_canonical(const Element& root);

}  // namespace excovery::xml
