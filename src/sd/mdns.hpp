// Two-party (decentralised) SD protocol in the style of Zeroconf mDNS/
// DNS-SD — the protocol family of the paper's prototype (Avahi, §VI).
//
// Implemented mechanics, mirroring the parts of mDNS that matter for
// dependability experiments:
//  * probing before announcing (uniqueness check, with rename-on-conflict),
//  * unsolicited announcements, repeated a configurable number of times,
//  * active discovery: multicast queries with a randomised first delay and
//    exponential back-off (1 s, 2 s, 4 s, ... capped),
//  * passive discovery: caching of announcements heard while searching,
//  * known-answer suppression (askers list what they hold; responders stay
//    quiet if the asker's copy still has more than half its TTL),
//  * randomised response delay (response aggregation window),
//  * goodbye packets (TTL = 0) and cache TTL expiry,
//  * request/response pairing via transaction ids (the paper's Avahi
//    modification, §VI).
//
// Everything is deterministic given the config seed.
#pragma once

#include <map>
#include <memory>
#include <string>

#include "common/rng.hpp"
#include "net/network.hpp"
#include "sim/lifetime.hpp"
#include "sd/cache.hpp"
#include "sd/message.hpp"
#include "sd/model.hpp"

namespace excovery::sd {

struct MdnsConfig {
  sim::SimDuration startup_delay = sim::SimDuration::from_millis(50);

  int probe_count = 3;
  sim::SimDuration probe_interval = sim::SimDuration::from_millis(250);
  int announce_count = 2;
  sim::SimDuration announce_interval = sim::SimDuration::from_millis(1000);

  sim::SimDuration first_query_min = sim::SimDuration::from_millis(20);
  sim::SimDuration first_query_max = sim::SimDuration::from_millis(120);
  sim::SimDuration query_interval = sim::SimDuration::from_millis(1000);
  double query_backoff = 2.0;
  sim::SimDuration query_interval_max = sim::SimDuration::from_seconds(60);

  sim::SimDuration response_delay_min = sim::SimDuration::from_millis(20);
  sim::SimDuration response_delay_max = sim::SimDuration::from_millis(120);

  std::uint32_t record_ttl_seconds = 120;
  std::uint8_t multicast_ttl = 32;  ///< mesh flooding hop limit
  std::uint64_t seed = 0;
};

class MdnsAgent final : public SdAgent {
 public:
  MdnsAgent(net::Network& network, net::NodeId node,
            const MdnsConfig& config = {});
  ~MdnsAgent() override;

  MdnsAgent(const MdnsAgent&) = delete;
  MdnsAgent& operator=(const MdnsAgent&) = delete;

  Status init(SdRole role, const ValueMap& params) override;
  Status exit() override;
  void crash() override;
  Status start_search(const ServiceType& type) override;
  Status stop_search(const ServiceType& type) override;
  Status start_publish(const ServiceInstance& instance) override;
  Status stop_publish(const std::string& instance_name) override;
  Status update_publication(const ServiceInstance& instance) override;

  std::vector<ServiceInstance> discovered(
      const ServiceType& type) const override;
  bool initialized() const override { return initialized_; }
  SdRole role() const override { return role_; }

  /// Statistics (queries sent etc.) for analysis and tests.
  struct Counters {
    std::uint64_t queries_sent = 0;
    std::uint64_t responses_sent = 0;
    std::uint64_t responses_suppressed = 0;  ///< known-answer suppression
    std::uint64_t announces_sent = 0;
    std::uint64_t probes_sent = 0;
    std::uint64_t goodbyes_sent = 0;
    std::uint64_t conflicts_detected = 0;
  };
  const Counters& counters() const noexcept { return counters_; }

  net::NodeId node() const noexcept { return node_; }
  const MdnsConfig& config() const noexcept { return config_; }

 private:
  struct Publication {
    ServiceInstance instance;
    bool probing = false;   ///< still in uniqueness probing
    int probes_left = 0;
    int announces_left = 0;
  };
  struct Search {
    ServiceType type;
    sim::SimDuration next_interval;
    sim::TimerHandle timer;
    std::uint32_t round = 0;  ///< query rounds fired (lineage attribution)
  };

  void on_packet(const net::Packet& packet);
  void handle_query(const SdMessage& message);
  void handle_records(const SdMessage& message);
  void handle_probe(const SdMessage& message);

  void send_message(const SdMessage& message);
  void send_query(const ServiceType& type);
  void schedule_query(const ServiceType& type, sim::SimDuration delay);
  void continue_probing(const std::string& instance_name);
  void continue_announcing(const std::string& instance_name);
  void resolve_conflict(const std::string& instance_name);

  std::uint32_t next_txn() { return next_txn_id_++; }

  /// Valid only while the current generation matches (cancels stale timers
  /// after exit()).
  template <typename Fn>
  void schedule(sim::SimDuration delay, Fn&& fn);

  net::Network& network_;
  net::NodeId node_;
  MdnsConfig config_;
  Pcg32 rng_;
  ServiceCache cache_;

  bool initialized_ = false;
  SdRole role_ = SdRole::kServiceUser;
  sim::GenerationGate generation_;
  std::uint32_t next_txn_id_ = 1;

  std::map<std::string, Publication> published_;
  std::map<ServiceType, Search> searches_;
  Counters counters_;
};

}  // namespace excovery::sd
