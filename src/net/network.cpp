#include "net/network.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace excovery::net {

Network::Network(sim::Scheduler& scheduler, Topology topology,
                 std::uint64_t seed)
    : scheduler_(scheduler),
      topology_(std::move(topology)),
      routing_(topology_),
      loss_rng_(RngFactory(seed).stream("net-loss")),
      jitter_rng_(RngFactory(seed).stream("net-jitter")) {
  const std::size_t n = topology_.node_count();
  nodes_.resize(n);
  // CSR adjacency in link-declaration order per node (counting sort over
  // the link list preserves the order the per-node vectors used to have).
  adj_offset_.assign(n + 1, 0);
  for (const Link& link : topology_.links()) {
    adj_offset_[link.a + 1]++;
    adj_offset_[link.b + 1]++;
  }
  for (std::size_t i = 0; i < n; ++i) adj_offset_[i + 1] += adj_offset_[i];
  adj_neighbour_.assign(adj_offset_[n], kInvalidNode);
  adj_model_.assign(adj_offset_[n], nullptr);
  std::vector<std::uint32_t> cursor(adj_offset_.begin(),
                                    adj_offset_.end() - 1);
  for (const Link& link : topology_.links()) {
    adj_neighbour_[cursor[link.a]] = link.b;
    adj_model_[cursor[link.a]++] = &link.model;
    adj_neighbour_[cursor[link.b]] = link.a;
    adj_model_[cursor[link.b]++] = &link.model;
  }
}

const LinkModel* Network::find_link(NodeId from, NodeId to) const noexcept {
  for (std::uint32_t i = adj_offset_[from]; i < adj_offset_[from + 1]; ++i) {
    if (adj_neighbour_[i] == to) return adj_model_[i];
  }
  return nullptr;
}

void Network::bind(NodeId node, Port port, PacketHandler handler) {
  nodes_.at(node).handlers[port] = std::move(handler);
}

void Network::unbind(NodeId node, Port port) {
  nodes_.at(node).handlers.erase(port);
}

void Network::join_group(NodeId node, Address group) {
  nodes_.at(node).groups.insert(group);
}

void Network::leave_group(NodeId node, Address group) {
  nodes_.at(node).groups.erase(group);
}

Result<std::uint64_t> Network::send(NodeId from, Packet packet) {
  if (from >= nodes_.size()) {
    return err_invalid("send from unknown node " + std::to_string(from));
  }
  NodeState& sender = nodes_[from];
  if (packet.src.is_unspecified()) {
    packet.src = topology_.node(from).address;
  } else if (packet.src != topology_.node(from).address) {
    return err_invalid("source address " + packet.src.to_string() +
                       " does not belong to node '" +
                       topology_.node(from).name + "'");
  }

  packet.uid = next_uid_++;
  packet.tag = sender.next_tag++;  // wraps at 65535, like the 16-bit tagger
  if (sender.next_tag == 0) sender.next_tag = 1;
  packet.route.clear();
  packet.route.push_back(from);

  stats_.sent++;
  stats_.bytes_sent += packet.wire_size();
  emit_packet_trace(PacketTraceEvent::Kind::kSend, packet.uid, from, from,
                    "send", packet.wire_size());
  const std::uint64_t lin_send = lin_record(
      sim::LineageKind::kSend, lin_ambient(), packet.uid, from, from,
      lin_labels_.send);

  // Transmit-side interface state.
  if (!sender.tx_up) {
    stats_.dropped_interface++;
    lin_record(sim::LineageKind::kDrop, lin_send, packet.uid, from, from,
               lin_labels_.tx_down);
    return packet.uid;
  }
  // Transmit-side filters (may delay, drop, or duplicate the whole send).
  FilterOutcome tx = apply_filters(from, Direction::kTransmit, packet);
  if (tx.drop) {
    stats_.dropped_filter++;
    lin_record_cause(sim::LineageKind::kDrop, lin_send, packet.uid, from,
                     from, tx.drop_cause);
    return packet.uid;
  }
  capture(from, Direction::kTransmit, packet);
  // Everything launched below — duplicate copies, the (possibly delayed)
  // flood / unicast forwarding — descends from this send.
  sim::LineageScope lin_scope(scheduler_, lin_send);
  if (tx.duplicates > 0) {
    launch_duplicates(from, packet, tx.duplicates, tx.duplicate_gap, tx.delay);
  }

  std::uint64_t uid = packet.uid;
  auto launch = [this, from, packet = std::move(packet)]() mutable {
    if (packet.dst.is_multicast() || packet.dst.is_broadcast()) {
      // The sender is also a member of groups it joined (loopback delivery,
      // as real multicast sockets do with IP_MULTICAST_LOOP).
      NodeState& s = nodes_[from];
      s.seen_uids.insert(packet.uid);
      if (packet.dst.is_broadcast() ||
          s.groups.count(packet.dst) != 0) {
        deliver_local(from, packet);
      }
      flood(from, std::move(packet));
    } else {
      forward_unicast(from, std::move(packet));
    }
  };
  if (tx.delay.nanos() > 0) {
    scheduler_.schedule(tx.delay, std::move(launch));
  } else {
    launch();
  }
  return uid;
}

void Network::launch_duplicates(NodeId from, const Packet& packet, int copies,
                                sim::SimDuration gap,
                                sim::SimDuration initial_delay) {
  // Each copy re-enters the data plane as its own transmission — fresh uid
  // and tag, its own capture record — but skips the filter chain so a
  // duplication filter cannot amplify its own copies.
  for (int i = 1; i <= copies; ++i) {
    sim::SimDuration at = initial_delay;
    for (int g = 0; g < i; ++g) at += gap;
    scheduler_.schedule(at, [this, from, copy = packet]() mutable {
      NodeState& sender = nodes_[from];
      copy.uid = next_uid_++;
      copy.tag = sender.next_tag++;
      if (sender.next_tag == 0) sender.next_tag = 1;
      copy.route.clear();
      copy.route.push_back(from);
      stats_.sent++;
      stats_.duplicated++;
      stats_.bytes_sent += copy.wire_size();
      emit_packet_trace(PacketTraceEvent::Kind::kSend, copy.uid, from, from,
                        "duplicate", copy.wire_size());
      // The ambient context here is the original send (captured when the
      // copy was scheduled), so injected copies link to their cause.
      const std::uint64_t lin_copy = lin_record(
          sim::LineageKind::kSend, lin_ambient(), copy.uid, from, from,
          lin_labels_.duplicate);
      if (!sender.tx_up) {
        stats_.dropped_interface++;
        lin_record(sim::LineageKind::kDrop, lin_copy, copy.uid, from, from,
                   lin_labels_.tx_down);
        return;
      }
      capture(from, Direction::kTransmit, copy);
      sim::LineageScope lin_scope(scheduler_, lin_copy);
      if (copy.dst.is_multicast() || copy.dst.is_broadcast()) {
        sender.seen_uids.insert(copy.uid);
        if (copy.dst.is_broadcast() || sender.groups.count(copy.dst) != 0) {
          deliver_local(from, copy);
        }
        flood(from, std::move(copy));
      } else {
        forward_unicast(from, std::move(copy));
      }
    });
  }
}

void Network::set_interface_up(NodeId node, Direction direction, bool up) {
  NodeState& state = nodes_.at(node);
  if (direction == Direction::kReceive) {
    state.rx_up = up;
  } else {
    state.tx_up = up;
  }
}

bool Network::interface_up(NodeId node, Direction direction) const {
  const NodeState& state = nodes_.at(node);
  return direction == Direction::kReceive ? state.rx_up : state.tx_up;
}

FilterHandle Network::add_filter(FilterScope scope, PacketFilter filter) {
  std::uint64_t id = next_filter_id_++;
  filters_.push_back(InstalledFilter{id, scope, std::move(filter)});
  return FilterHandle(id);
}

void Network::remove_filter(FilterHandle handle) {
  if (!handle.valid()) return;
  filters_.erase(std::remove_if(filters_.begin(), filters_.end(),
                                [&](const InstalledFilter& f) {
                                  return f.id == handle.id_;
                                }),
                 filters_.end());
}

const std::vector<CapturedPacket>& Network::captures(NodeId node) const {
  return nodes_.at(node).captures;
}

std::vector<CapturedPacket> Network::take_captures(NodeId node) {
  return std::exchange(nodes_.at(node).captures, {});
}

void Network::clear_captures() {
  for (NodeState& state : nodes_) state.captures.clear();
}

void Network::set_clock_model(NodeId node, const sim::ClockModel& model) {
  std::uint64_t jitter_seed =
      fnv1a64(topology_.node(node).name) ^ 0xC10C4ULL;
  nodes_.at(node).clock = sim::LocalClock(model, jitter_seed);
}

void Network::set_lineage(sim::LineageLog* log) {
  lineage_ = log;
  node_labels_.clear();
  lin_labels_ = {};
#if EXCOVERY_OBS_ENABLED
  if (!log) return;
  node_labels_.reserve(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    node_labels_.push_back(log->intern(topology_.node(i).name));
  }
  lin_labels_.send = log->intern("send");
  lin_labels_.duplicate = log->intern("duplicate");
  lin_labels_.hop = log->intern("hop");
  lin_labels_.deliver = log->intern("deliver");
  lin_labels_.dup = log->intern("dup");
  lin_labels_.tx_down = log->intern("tx_down");
  lin_labels_.rx_down = log->intern("rx_down");
  lin_labels_.link_down = log->intern("link_down");
  lin_labels_.loss = log->intern("loss");
  lin_labels_.queue = log->intern("queue");
  lin_labels_.ttl = log->intern("ttl");
  lin_labels_.no_route = log->intern("no_route");
  lin_labels_.no_handler = log->intern("no_handler");
#endif
}

void Network::enable_link_stats() {
  link_stats_.nodes = nodes_.size();
  link_stats_.sent.assign(nodes_.size() * nodes_.size(), 0);
  link_stats_.dropped.assign(nodes_.size() * nodes_.size(), 0);
}

void Network::reset_run_state() {
  for (NodeState& state : nodes_) {
    state.seen_uids.clear();
    state.captures.clear();
  }
  // Heal any links a fault schedule left down: every run starts from the
  // topology the description declared.
  if (!disabled_links_.empty()) {
    disabled_links_.clear();
    routing_.rebuild(topology_);
  }
}

void Network::begin_run(std::uint64_t run_seed) {
  RngFactory rf(run_seed);
  loss_rng_ = rf.stream("net-loss");
  jitter_rng_ = rf.stream("net-jitter");
  for (std::size_t node = 0; node < nodes_.size(); ++node) {
    nodes_[node].clock.reseed_jitter(rf.derive_seed("clock-jitter", node));
  }
  // Packet identifiers are embedded in the capture wire format, so they are
  // rebased per run like the RNG streams: a run's captures must not encode
  // how many packets earlier runs happened to send on this platform
  // instance.  The dedup sets are cleared with them — a uid from a previous
  // run must not suppress a fresh packet that was assigned the same id.
  next_uid_ = 1;
  for (NodeState& state : nodes_) {
    state.next_tag = 1;
    state.seen_uids.clear();
  }
}

Status Network::set_link_model(NodeId a, NodeId b, const LinkModel& model) {
  LinkModel* link = topology_.mutable_link_between(a, b);
  if (!link) {
    return err_not_found("no link between nodes " + std::to_string(a) +
                         " and " + std::to_string(b));
  }
  *link = model;
  routing_.rebuild(topology_, disabled_links_);
  return {};
}

Status Network::set_link_up(NodeId a, NodeId b, bool up) {
  if (a >= nodes_.size() || b >= nodes_.size() || find_link(a, b) == nullptr) {
    return err_not_found("no link between nodes " + std::to_string(a) +
                         " and " + std::to_string(b));
  }
  const PackedLink key = pack_link(a, b);
  if (up) {
    if (!disabled_links_.erase(key)) return {};  // already up
  } else {
    if (!disabled_links_.insert(key)) return {};  // already down
  }
  routing_.set_link_enabled(a, b, up);
  return {};
}

Status Network::set_links_up(
    const std::vector<std::pair<NodeId, NodeId>>& links, bool up) {
  bool changed = false;
  for (const auto& [a, b] : links) {
    if (a >= nodes_.size() || b >= nodes_.size() ||
        find_link(a, b) == nullptr) {
      return err_not_found("no link between nodes " + std::to_string(a) +
                           " and " + std::to_string(b));
    }
    const PackedLink key = pack_link(a, b);
    changed |= up ? disabled_links_.erase(key) : disabled_links_.insert(key);
  }
  if (changed) routing_.rebuild(topology_, disabled_links_);
  return {};
}

FilterOutcome Network::apply_filters(NodeId node, Direction dir,
                                     Packet& packet) {
  FilterOutcome outcome;
  for (InstalledFilter& installed : filters_) {
    if (installed.scope.node && *installed.scope.node != node) continue;
    if (installed.scope.direction && *installed.scope.direction != dir) {
      continue;
    }
    FilterVerdict verdict = installed.filter(node, dir, packet);
    switch (verdict.action) {
      case FilterVerdict::Action::kDrop:
        outcome.drop = true;
        outcome.drop_cause = verdict.cause;
        return outcome;
      case FilterVerdict::Action::kDelay:
        outcome.delay += verdict.delay;
        break;
      case FilterVerdict::Action::kDuplicate:
        outcome.duplicates += verdict.copies;
        if (verdict.copy_gap.nanos() > 0) {
          outcome.duplicate_gap = verdict.copy_gap;
        }
        break;
      case FilterVerdict::Action::kPass:
        break;
    }
  }
  return outcome;
}

void Network::capture(NodeId node, Direction dir, const Packet& packet) {
  if (!capture_) return;
  NodeState& state = nodes_[node];
  CapturedPacket cap;
  cap.local_time = state.clock.read(scheduler_.now());
  cap.direction = dir;
  cap.node = node;
  cap.packet = packet;
  state.captures.push_back(std::move(cap));
}

sim::SimDuration Network::serialisation(const LinkModel& model,
                                        std::size_t bytes) {
  double seconds = model.bandwidth_bps > 0
                       ? static_cast<double>(bytes) * 8.0 / model.bandwidth_bps
                       : 0.0;
  return sim::SimDuration::from_seconds(seconds);
}

sim::SimDuration Network::hop_delay(const LinkModel& model,
                                    std::size_t bytes) {
  sim::SimDuration delay = model.base_delay + serialisation(model, bytes);
  if (model.jitter_frac > 0) {
    double jitter_max =
        model.jitter_frac * static_cast<double>(model.base_delay.nanos());
    delay += sim::SimDuration(static_cast<std::int64_t>(
        jitter_rng_.uniform(0.0, jitter_max)));
  }
  return delay;
}

void Network::transfer(NodeId from, NodeId to, Packet packet,
                       std::function<void(Packet)> on_arrival) {
  const LinkModel* link = find_link(from, to);
  if (!link) {
    stats_.dropped_no_route++;
    emit_packet_trace(PacketTraceEvent::Kind::kDrop, packet.uid, from, to,
                      "no_route", packet.wire_size());
    lin_record(sim::LineageKind::kDrop, lin_ambient(), packet.uid, from, to,
               lin_labels_.no_route);
    return;
  }
  // Administratively-down link (churn/partition faults).  Checked before
  // the loss draw so a down link consumes no randomness; the empty-set test
  // keeps the fault-free hot path at one branch.
  if (!disabled_links_.empty() &&
      disabled_links_.contains(pack_link(from, to))) {
    stats_.dropped_link_down++;
    count_link(from, to, /*dropped=*/true);
    emit_packet_trace(PacketTraceEvent::Kind::kDrop, packet.uid, from, to,
                      "link_down", packet.wire_size());
    lin_record(sim::LineageKind::kDrop, lin_ambient(), packet.uid, from, to,
               lin_labels_.link_down);
    return;
  }
  if (loss_rng_.bernoulli(link->loss)) {
    stats_.dropped_loss++;
    count_link(from, to, /*dropped=*/true);
    emit_packet_trace(PacketTraceEvent::Kind::kDrop, packet.uid, from, to,
                      "loss", packet.wire_size());
    lin_record(sim::LineageKind::kDrop, lin_ambient(), packet.uid, from, to,
               lin_labels_.loss);
    return;
  }
  sim::SimDuration delay = hop_delay(*link, packet.wire_size());
  // Shared-medium contention: the sender's single radio serialises its
  // transmissions.  Queueing beyond the limit is congestive tail drop.
  if (queue_limit_.nanos() > 0) {
    NodeState& sender = nodes_[from];
    sim::SimTime now = scheduler_.now();
    sim::SimTime start = std::max(now, sender.tx_free_at);
    sim::SimDuration queueing = start - now;
    if (queueing > queue_limit_) {
      stats_.dropped_queue++;
      count_link(from, to, /*dropped=*/true);
      emit_packet_trace(PacketTraceEvent::Kind::kDrop, packet.uid, from, to,
                        "queue", packet.wire_size());
      lin_record(sim::LineageKind::kDrop, lin_ambient(), packet.uid, from,
                 to, lin_labels_.queue);
      return;
    }
    sender.tx_free_at = start + serialisation(*link, packet.wire_size());
    delay += queueing;
  }
  count_link(from, to, /*dropped=*/false);
  scheduler_.schedule(
      delay, [this, from, to, packet = std::move(packet),
              on_arrival = std::move(on_arrival)]() mutable {
        NodeState& receiver = nodes_[to];
        // The ambient context is the upstream send/hop captured when this
        // arrival was scheduled.
        if (!receiver.rx_up) {
          stats_.dropped_interface++;
          count_link(from, to, /*dropped=*/true);
          emit_packet_trace(PacketTraceEvent::Kind::kDrop, packet.uid, to,
                            from, "rx_down", packet.wire_size());
          lin_record(sim::LineageKind::kDrop, lin_ambient(), packet.uid, to,
                     from, lin_labels_.rx_down);
          return;
        }
        emit_packet_trace(PacketTraceEvent::Kind::kHop, packet.uid, to, from,
                          "hop", packet.wire_size());
        // Lineage hop recording is the callback's job: flood suppresses
        // duplicates first so a dead-end arrival costs one event, not two.
        packet.route.push_back(to);
        on_arrival(std::move(packet));
      });
}

void Network::deliver_local(NodeId node, Packet packet) {
  NodeState& state = nodes_[node];
  // Receive-side filters and capture apply to locally delivered packets.
  // Duplicate verdicts are origin-send only and ignored here.
  FilterOutcome rx = apply_filters(node, Direction::kReceive, packet);
  if (rx.drop) {
    stats_.dropped_filter++;
    lin_record_cause(sim::LineageKind::kDrop, lin_ambient(), packet.uid,
                     node, node, rx.drop_cause);
    return;
  }
  auto handoff = [this, node, packet = std::move(packet)]() mutable {
    NodeState& s = nodes_[node];
    capture(node, Direction::kReceive, packet);
    auto it = s.handlers.find(packet.dst_port);
    if (it == s.handlers.end()) {
      stats_.dropped_no_handler++;
      emit_packet_trace(PacketTraceEvent::Kind::kDrop, packet.uid, node, node,
                        "no_handler", packet.wire_size());
      lin_record(sim::LineageKind::kDrop, lin_ambient(), packet.uid, node,
                 node, lin_labels_.no_handler);
      return;
    }
    stats_.delivered++;
    emit_packet_trace(PacketTraceEvent::Kind::kDeliver, packet.uid, node,
                      node, "deliver", packet.wire_size());
    // The handler (and everything it sends, schedules or stores) descends
    // from this delivery — this is the link that lets provenance walk from
    // an sd_service_add back to the packet that caused it.
    const std::uint64_t lin_deliver = lin_record(
        sim::LineageKind::kDeliver, lin_ambient(), packet.uid, node, node,
        lin_labels_.deliver);
    sim::LineageScope lin_scope(scheduler_, lin_deliver);
    it->second(node, packet);
  };
  if (rx.delay.nanos() > 0) {
    scheduler_.schedule(rx.delay, std::move(handoff));
  } else {
    handoff();
  }
  (void)state;
}

void Network::forward_unicast(NodeId current, Packet packet) {
  // The origin hop resolves the destination address and caches the node id
  // in the packet; relays verify the hint (one compare) instead of paying
  // an address lookup per hop.  A stale or foreign hint fails the check and
  // falls back to a full resolve, so it can never misroute.
  NodeId target = packet.dst_node;
  if (target >= nodes_.size() ||
      !(topology_.node(target).address == packet.dst)) {
    Result<NodeId> dest = topology_.find(packet.dst);
    if (!dest.ok()) {
      stats_.dropped_no_route++;
      lin_record(sim::LineageKind::kDrop, lin_ambient(), packet.uid, current,
                 current, lin_labels_.no_route);
      return;
    }
    target = dest.value();
    packet.dst_node = target;
  }
  if (current == target) {
    deliver_local(current, std::move(packet));
    return;
  }
  NodeId next = routing_.next_hop(current, target);
  if (next == kInvalidNode) {
    stats_.dropped_no_route++;
    lin_record(sim::LineageKind::kDrop, lin_ambient(), packet.uid, current,
               target, lin_labels_.no_route);
    return;
  }
  // Intermediate nodes must be willing to forward: a node whose interfaces
  // are down does not relay ("drop all packets" relies on this).
  if (current != packet.route.front()) {
    NodeState& relay = nodes_[current];
    if (!relay.tx_up) {
      stats_.dropped_interface++;
      lin_record(sim::LineageKind::kDrop, lin_ambient(), packet.uid, current,
                 next, lin_labels_.tx_down);
      return;
    }
    FilterOutcome relay_tx =
        apply_filters(current, Direction::kTransmit, packet);
    if (relay_tx.drop) {
      stats_.dropped_filter++;
      lin_record_cause(sim::LineageKind::kDrop, lin_ambient(), packet.uid,
                       current, next, relay_tx.drop_cause);
      return;
    }
    stats_.forwarded++;
  }
  transfer(current, next, std::move(packet), [this](Packet arrived) {
    NodeId here = arrived.route.back();
    const NodeId prev = arrived.route[arrived.route.size() - 2];
    const std::uint64_t lin_hop =
        lin_record(sim::LineageKind::kHop, lin_ambient(), arrived.uid, here,
                   prev, lin_labels_.hop);
    // Tail of this timer dispatch: the scheduler clears the ambient
    // context after every callback, so a bare set (no RAII restore)
    // suffices — this is the hottest lineage site in the kernel.
    if (lin_hop != 0) scheduler_.set_current_context(lin_hop);
    forward_unicast(here, std::move(arrived));
  });
}

void Network::flood(NodeId origin_hop, Packet packet) {
  if (packet.ttl == 0) {
    stats_.dropped_ttl++;
    emit_packet_trace(PacketTraceEvent::Kind::kDrop, packet.uid, origin_hop,
                      origin_hop, "ttl", packet.wire_size());
    lin_record(sim::LineageKind::kDrop, lin_ambient(), packet.uid,
               origin_hop, origin_hop, lin_labels_.ttl);
    return;
  }
  packet.ttl--;
  // Fan out to every neighbour.  Duplicates share the payload bytes
  // (copy-on-write); only the header and route trace diverge per branch.
  // The last branch moves the packet instead of copying it.
  const std::uint32_t adj_begin = adj_offset_[origin_hop];
  const std::uint32_t adj_end = adj_offset_[origin_hop + 1];
  auto arrival = [this](Packet arrived) {
    NodeId here = arrived.route.back();
    const NodeId prev = arrived.route[arrived.route.size() - 2];
    NodeState& state = nodes_[here];
    // Duplicate suppression: first arrival wins.  Suppressed arrivals
    // dominate a flood (~2.5 per fresh hop on a grid) yet are causally
    // dead — no descendants, never on a critical path — so they are
    // retained only for the opt-in provenance graph.  Ring-only mode
    // skips them: they would evict live events from the bounded flight
    // recorder, and packet traces still carry every suppression.
    if (!state.seen_uids.insert(arrived.uid)) {
      emit_packet_trace(PacketTraceEvent::Kind::kDup, arrived.uid, here, here,
                        "dup", arrived.wire_size());
      if (lineage_ && lineage_->graph_active())
        lin_record(sim::LineageKind::kDup, lin_ambient(), arrived.uid, here,
                   prev, lin_labels_.dup);
      return;
    }
    const std::uint64_t lin_hop =
        lin_record(sim::LineageKind::kHop, lin_ambient(), arrived.uid, here,
                   prev, lin_labels_.hop);
    // Tail position within this arrival dispatch (see forward_unicast).
    if (lin_hop != 0) scheduler_.set_current_context(lin_hop);
    bool member = arrived.dst.is_broadcast() ||
                  state.groups.count(arrived.dst) != 0;
    if (member) {
      Packet local = arrived;
      deliver_local(here, std::move(local));
    }
    // Relay onward if the node can transmit.
    if (!state.tx_up) {
      stats_.dropped_interface++;
      lin_record(sim::LineageKind::kDrop, lin_ambient(), arrived.uid, here,
                 here, lin_labels_.tx_down);
      return;
    }
    Packet onward = std::move(arrived);
    FilterOutcome relay_tx = apply_filters(here, Direction::kTransmit, onward);
    if (relay_tx.drop) {
      stats_.dropped_filter++;
      lin_record_cause(sim::LineageKind::kDrop, lin_ambient(), onward.uid,
                       here, here, relay_tx.drop_cause);
      return;
    }
    stats_.forwarded++;
    flood(here, std::move(onward));
  };
  for (std::uint32_t i = adj_begin; i < adj_end; ++i) {
    Packet copy = i + 1 == adj_end ? std::move(packet) : packet;
    transfer(origin_hop, adj_neighbour_[i], std::move(copy), arrival);
  }
}

}  // namespace excovery::net
