// Unit tests for the storage module: tables, database files, the Table I
// package, level-2 stores, conditioning and the level-4 repository.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "storage/conditioning.hpp"
#include "storage/database.hpp"
#include "storage/level2.hpp"
#include "storage/package.hpp"
#include "storage/repository.hpp"

namespace excovery::storage {
namespace {

namespace fs = std::filesystem;

/// Unique scratch directory per test, removed on destruction.
struct TempDir {
  fs::path path;
  TempDir() {
    path = fs::temp_directory_path() /
           ("excovery-test-" + std::to_string(::getpid()) + "-" +
            std::to_string(counter++));
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  static inline int counter = 0;
};

// ---- Table ---------------------------------------------------------------------

TableSchema point_schema() {
  return {"Points",
          {{"Id", ValueType::kInt, false},
           {"Label", ValueType::kString, true},
           {"X", ValueType::kDouble, false}}};
}

TEST(Table, InsertEnforcesArityAndTypes) {
  Table table(point_schema());
  EXPECT_TRUE(table.insert({Value{1}, Value{"a"}, Value{0.5}}).ok());
  EXPECT_TRUE(table.insert({Value{2}, Value{}, Value{1.5}}).ok());  // null ok
  EXPECT_FALSE(table.insert({Value{3}, Value{"b"}}).ok());          // arity
  EXPECT_FALSE(table.insert({Value{"x"}, Value{"b"}, Value{0.1}}).ok());
  EXPECT_FALSE(table.insert({Value{}, Value{"b"}, Value{0.1}}).ok());  // null id
  // Int widens into double columns.
  EXPECT_TRUE(table.insert({Value{4}, Value{"c"}, Value{2}}).ok());
  EXPECT_EQ(table.row_count(), 3u);
}

TEST(Table, SelectAndCount) {
  Table table(point_schema());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(table
                    .insert({Value{i}, Value{i % 2 ? "odd" : "even"},
                             Value{i * 0.5}})
                    .ok());
  }
  EXPECT_EQ(table.select_equals("Label", Value{"odd"}).size(), 5u);
  EXPECT_EQ(table.count_equals("Label", Value{"even"}), 5u);
  EXPECT_EQ(table.select([](const Row& row) { return row[0].as_int() > 6; })
                .size(),
            3u);
  EXPECT_TRUE(table.select_equals("Missing", Value{1}).empty());
}

TEST(Table, OrderByIsStableAndChecked) {
  Table table(point_schema());
  ASSERT_TRUE(table.insert({Value{3}, Value{"c"}, Value{1.0}}).ok());
  ASSERT_TRUE(table.insert({Value{1}, Value{"a"}, Value{2.0}}).ok());
  ASSERT_TRUE(table.insert({Value{2}, Value{"b"}, Value{3.0}}).ok());
  Result<std::vector<const Row*>> ordered = table.order_by("Id");
  ASSERT_TRUE(ordered.ok());
  EXPECT_EQ((*ordered.value()[0])[0].as_int(), 1);
  EXPECT_EQ((*ordered.value()[2])[0].as_int(), 3);
  EXPECT_FALSE(table.order_by("Nope").ok());
}

TEST(Table, CellAccessByName) {
  Table table(point_schema());
  ASSERT_TRUE(table.insert({Value{1}, Value{"a"}, Value{0.5}}).ok());
  Result<Value> cell = table.cell(table.rows()[0], "X");
  ASSERT_TRUE(cell.ok());
  EXPECT_DOUBLE_EQ(cell.value().as_double(), 0.5);
  EXPECT_FALSE(table.cell(table.rows()[0], "Nope").ok());
}

// ---- Database ------------------------------------------------------------------

TEST(Database, CreateAndLookup) {
  Database db;
  ASSERT_TRUE(db.create_table(point_schema()).ok());
  EXPECT_FALSE(db.create_table(point_schema()).ok());  // duplicate
  EXPECT_FALSE(db.create_table({"Empty", {}}).ok());   // no columns
  EXPECT_NE(db.table("Points"), nullptr);
  EXPECT_EQ(db.table("Nope"), nullptr);
  EXPECT_TRUE(db.require_table("Points").ok());
  EXPECT_FALSE(db.require_table("Nope").ok());
}

TEST(Database, SerializeRoundTrip) {
  Database db;
  Table* table = db.create_table(point_schema()).value();
  ASSERT_TRUE(table->insert({Value{1}, Value{"x"}, Value{2.5}}).ok());
  ASSERT_TRUE(table->insert({Value{2}, Value{}, Value{-1.0}}).ok());

  Result<Database> back = Database::deserialize(db.serialize());
  ASSERT_TRUE(back.ok());
  const Table* restored = back.value().table("Points");
  ASSERT_NE(restored, nullptr);
  ASSERT_EQ(restored->row_count(), 2u);
  EXPECT_EQ(restored->rows()[0], table->rows()[0]);
  EXPECT_EQ(restored->rows()[1], table->rows()[1]);
  EXPECT_EQ(restored->schema().columns.size(), 3u);
}

TEST(Database, SaveLoadFile) {
  TempDir dir;
  std::string path = (dir.path / "test.excovery").string();
  Database db;
  Table* table = db.create_table(point_schema()).value();
  ASSERT_TRUE(table->insert({Value{7}, Value{"seven"}, Value{7.7}}).ok());
  ASSERT_TRUE(db.save(path).ok());

  Result<Database> loaded = Database::load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().table("Points")->row_count(), 1u);

  EXPECT_FALSE(Database::load((dir.path / "missing").string()).ok());
}

TEST(Database, CorruptFileRejected) {
  Bytes garbage{1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_FALSE(Database::deserialize(garbage).ok());
  Bytes truncated = [] {
    Database db;
    (void)db.create_table(point_schema());
    return db.serialize();
  }();
  truncated.resize(truncated.size() - 3);
  EXPECT_FALSE(Database::deserialize(truncated).ok());
}

// ---- ExperimentPackage (Table I) ----------------------------------------------------

TEST(Package, SchemaMatchesTableI) {
  ExperimentPackage package;
  // Exactly the eight tables of the paper's Table I, in order.
  EXPECT_EQ(package.database().table_names(),
            (std::vector<std::string>{
                "ExperimentInfo", "Logs", "EEFiles", "ExperimentMeasurements",
                "RunInfos", "ExtraRunMeasurements", "Events", "Packets"}));
  std::string schema = package.database().schema_description();
  EXPECT_NE(schema.find("ExperimentInfo | ExpXML, EEVersion, Name, Comment"),
            std::string::npos);
  EXPECT_NE(schema.find(
                "Events | RunID, NodeID, CommonTime, EventType, Parameter"),
            std::string::npos);
  EXPECT_NE(
      schema.find("Packets | RunID, NodeID, CommonTime, SrcNodeID, Data"),
      std::string::npos);
  EXPECT_NE(schema.find("RunInfos | RunID, NodeID, StartTime, TimeDiff"),
            std::string::npos);
}

TEST(Package, ExperimentInfoIsSingleTuple) {
  ExperimentPackage package;
  EXPECT_FALSE(package.description_xml().ok());  // not set yet
  ASSERT_TRUE(package.set_experiment_info("<experiment/>", "exp", "c").ok());
  EXPECT_FALSE(package.set_experiment_info("<x/>", "again", "").ok());
  EXPECT_EQ(package.description_xml().value(), "<experiment/>");
  EXPECT_EQ(package.experiment_name().value(), "exp");
  EXPECT_EQ(package.ee_version().value(), kEeVersion);
}

TEST(Package, EventAndPacketReadersSortByTime) {
  ExperimentPackage package;
  ASSERT_TRUE(package.add_event({1, "B", 2.0, "late", ""}).ok());
  ASSERT_TRUE(package.add_event({1, "A", 1.0, "early", ""}).ok());
  ASSERT_TRUE(package.add_event({2, "A", 0.5, "other_run", ""}).ok());
  ASSERT_TRUE(package.add_run_info({1, "A", 0.0, 0.001}).ok());
  ASSERT_TRUE(package.add_run_info({2, "A", 5.0, 0.002}).ok());

  Result<std::vector<EventRow>> run1 = package.events(1);
  ASSERT_TRUE(run1.ok());
  ASSERT_EQ(run1.value().size(), 2u);
  EXPECT_EQ(run1.value()[0].event_type, "early");
  EXPECT_EQ(run1.value()[1].event_type, "late");

  Result<std::vector<EventRow>> all = package.all_events();
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all.value().size(), 3u);
  EXPECT_EQ(all.value()[2].event_type, "other_run");

  EXPECT_EQ(package.run_ids(), (std::vector<std::int64_t>{1, 2}));
}

TEST(Package, SaveLoadPreservesEverything) {
  TempDir dir;
  std::string path = (dir.path / "exp.excovery").string();
  ExperimentPackage package;
  ASSERT_TRUE(package.set_experiment_info("<e/>", "n", "c").ok());
  ASSERT_TRUE(package.add_log("SU0", "log text").ok());
  ASSERT_TRUE(package.add_ee_file("master.bin", Bytes{1, 2, 3}).ok());
  ASSERT_TRUE(package.add_experiment_measurement(1, "env", "topo", "a b 1").ok());
  ASSERT_TRUE(package.add_run_info({1, "SU0", 0.0, -0.004}).ok());
  ASSERT_TRUE(package.add_extra_run_measurement(1, "SU0", "plugin/x", "7").ok());
  ASSERT_TRUE(package.add_event({1, "SU0", 0.5, "sd_start_search", "_t"}).ok());
  ASSERT_TRUE(package.add_packet({1, "SU0", 0.6, "SM0", Bytes{9, 9}}).ok());
  ASSERT_TRUE(package.save(path).ok());

  Result<ExperimentPackage> loaded = ExperimentPackage::load(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().experiment_name().value(), "n");
  EXPECT_EQ(loaded.value().log_for("SU0"), "log text");
  EXPECT_EQ(loaded.value().event_count(), 1u);
  EXPECT_EQ(loaded.value().packet_count(), 1u);
  Result<std::vector<PacketRow>> packets = loaded.value().packets(1);
  ASSERT_TRUE(packets.ok());
  ASSERT_EQ(packets.value().size(), 1u);
  EXPECT_EQ(packets.value()[0].src_node_id, "SM0");
  EXPECT_EQ(packets.value()[0].data, (Bytes{9, 9}));
}

TEST(Package, FromDatabaseValidatesSchema) {
  Database empty;
  EXPECT_FALSE(ExperimentPackage::from_database(std::move(empty)).ok());
}

// ---- Level2Store -------------------------------------------------------------------

TEST(Level2, RecordsPerNodeAndScopes) {
  Level2Store store;
  store.node("A").record_event({1, 100, "x", Value{}});
  store.node("A").record_event({2, 200, "y", Value{}});
  store.node("B").record_packet({1, 150, "A", Bytes{1}});
  store.node("A").add_run_blob(1, "m", "v");
  store.node("A").add_experiment_blob("topo", "t");
  store.node("A").add_plugin_measurement(1, "plug", "metric", "42");

  EXPECT_EQ(store.node_names(), (std::vector<std::string>{"A", "B"}));
  EXPECT_EQ(store.node("A").events().size(), 2u);
  EXPECT_EQ(store.node("B").packets().size(), 1u);
  EXPECT_EQ(store.node("A").plugin_data()[0].name, "plug/metric");
}

TEST(Level2, DiscardRunRemovesOnlyThatRun) {
  Level2Store store;
  store.node("A").record_event({1, 100, "x", Value{}});
  store.node("A").record_event({2, 200, "y", Value{}});
  store.add_sync({1, "A", 50, 0});
  store.add_sync({2, "A", 60, 1000});
  store.mark_run_complete(1);
  store.mark_run_complete(2);

  store.discard_run(1);
  EXPECT_EQ(store.node("A").events().size(), 1u);
  EXPECT_EQ(store.node("A").events()[0].run_id, 2);
  EXPECT_EQ(store.syncs().size(), 1u);
  EXPECT_FALSE(store.run_complete(1));
  EXPECT_TRUE(store.run_complete(2));
  EXPECT_EQ(store.offset_ns(2, "A"), 60);
  EXPECT_EQ(store.offset_ns(1, "A"), 0);  // gone
}

TEST(Level2, DirectoryRoundTrip) {
  TempDir dir;
  Level2Store store;
  store.node("SU0").record_event({1, 123, "e", Value{"p"}});
  store.node("SU0").append_log("hello\n");
  store.node("SM0").record_packet({1, 456, "SU0", Bytes{7, 8}});
  store.add_sync({1, "SU0", -5000, 0});
  store.mark_run_complete(1);
  ASSERT_TRUE(store.write_to_directory(dir.path.string()).ok());

  Result<Level2Store> loaded =
      Level2Store::load_from_directory(dir.path.string());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().node_names(),
            (std::vector<std::string>{"SM0", "SU0"}));
  ASSERT_EQ(loaded.value().node("SU0").events().size(), 1u);
  EXPECT_EQ(loaded.value().node("SU0").events()[0].parameter, Value{"p"});
  EXPECT_EQ(loaded.value().node("SU0").log(), "hello\n");
  EXPECT_EQ(loaded.value().node("SM0").packets()[0].data, (Bytes{7, 8}));
  EXPECT_EQ(loaded.value().offset_ns(1, "SU0"), -5000);
  EXPECT_TRUE(loaded.value().run_complete(1));
}

TEST(Level2, LoadFromEmptyDirectoryYieldsEmptyStore) {
  TempDir dir;
  Result<Level2Store> loaded =
      Level2Store::load_from_directory(dir.path.string());
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value().node_names().empty());
}

// ---- conditioning ---------------------------------------------------------------------

TEST(Conditioning, CommonTimeSubtractsOffset) {
  // local = common + offset  =>  common = local - offset.
  EXPECT_DOUBLE_EQ(to_common_time(1'500'000'000, 500'000'000), 1.0);
  EXPECT_DOUBLE_EQ(to_common_time(1'000'000'000, -250'000'000), 1.25);
}

TEST(Conditioning, UnifiesTimeBaseAcrossNodes) {
  Level2Store level2;
  // Two nodes observing the same instant: A's clock is +100ms, B's -50ms.
  level2.node("A").record_event({1, 1'100'000'000, "tick", Value{}});
  level2.node("B").record_event({1, 950'000'000, "tick", Value{}});
  level2.add_sync({1, "A", 100'000'000, 0});
  level2.add_sync({1, "B", -50'000'000, 0});
  level2.mark_run_complete(1);

  Result<ExperimentPackage> package = condition(level2, "<e/>", {});
  ASSERT_TRUE(package.ok());
  Result<std::vector<EventRow>> events = package.value().events(1);
  ASSERT_TRUE(events.ok());
  ASSERT_EQ(events.value().size(), 2u);
  EXPECT_NEAR(events.value()[0].common_time, 1.0, 1e-9);
  EXPECT_NEAR(events.value()[1].common_time, 1.0, 1e-9);
}

TEST(Conditioning, IncompleteRunsExcludedByDefault) {
  Level2Store level2;
  level2.node("A").record_event({1, 100, "done", Value{}});
  level2.node("A").record_event({2, 200, "aborted", Value{}});
  level2.add_sync({1, "A", 0, 0});
  level2.add_sync({2, "A", 0, 0});
  level2.mark_run_complete(1);  // run 2 aborted

  Result<ExperimentPackage> package = condition(level2, "<e/>", {});
  ASSERT_TRUE(package.ok());
  EXPECT_EQ(package.value().event_count(), 1u);
  EXPECT_EQ(package.value().run_ids(), (std::vector<std::int64_t>{1}));

  ConditioningOptions keep_all;
  keep_all.completed_runs_only = false;
  Result<ExperimentPackage> full = condition(level2, "<e/>", keep_all);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full.value().event_count(), 2u);
}

TEST(Conditioning, BlobsRouteToCorrectTables) {
  Level2Store level2;
  level2.node("A").add_experiment_blob("topology_before", "x y 2");
  level2.node("A").add_run_blob(1, "hops", "1");
  level2.node("A").add_plugin_measurement(1, "plug", "m", "v");
  level2.node("A").append_log("LOG LINE");
  level2.mark_run_complete(1);

  Result<ExperimentPackage> package = condition(level2, "<e/>", {});
  ASSERT_TRUE(package.ok());
  EXPECT_EQ(package.value().database().table("ExperimentMeasurements")
                ->row_count(),
            1u);
  EXPECT_EQ(
      package.value().database().table("ExtraRunMeasurements")->row_count(),
      2u);
  EXPECT_EQ(package.value().log_for("A"), "LOG LINE");
}

// ---- repository (level 4) ------------------------------------------------------------------

ExperimentPackage tiny_package(const std::string& name, int runs) {
  ExperimentPackage package;
  (void)package.set_experiment_info("<e/>", name, "");
  for (int run = 1; run <= runs; ++run) {
    (void)package.add_run_info({run, "A", 0.0, 0.0});
    (void)package.add_event({run, "A", 0.1, "sd_service_add", "SM0"});
  }
  return package;
}

TEST(Repository, StoreFetchAndIndex) {
  TempDir dir;
  Result<Repository> repo = Repository::open(dir.path.string());
  ASSERT_TRUE(repo.ok());
  EXPECT_EQ(repo.value().size(), 0u);

  ASSERT_TRUE(repo.value().store("exp-a", tiny_package("A", 2)).ok());
  ASSERT_TRUE(repo.value().store("exp-b", tiny_package("B", 3)).ok());
  EXPECT_FALSE(repo.value().store("exp-a", tiny_package("A", 1)).ok());
  EXPECT_FALSE(repo.value().store("../evil", tiny_package("E", 1)).ok());

  EXPECT_TRUE(repo.value().contains("exp-a"));
  EXPECT_EQ(repo.value().experiment_ids(),
            (std::vector<std::string>{"exp-a", "exp-b"}));
  Result<ExperimentPackage> fetched = repo.value().fetch("exp-b");
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched.value().experiment_name().value(), "B");
  EXPECT_FALSE(repo.value().fetch("nope").ok());
}

TEST(Repository, ReopenRebuildsIndexFromFiles) {
  TempDir dir;
  {
    Result<Repository> repo = Repository::open(dir.path.string());
    ASSERT_TRUE(repo.ok());
    ASSERT_TRUE(repo.value().store("exp-a", tiny_package("A", 1)).ok());
  }
  Result<Repository> reopened = Repository::open(dir.path.string());
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(reopened.value().contains("exp-a"));
}

TEST(Repository, CrossExperimentQueries) {
  TempDir dir;
  Result<Repository> repo = Repository::open(dir.path.string());
  ASSERT_TRUE(repo.ok());
  ASSERT_TRUE(repo.value().store("exp-a", tiny_package("A", 2)).ok());
  ASSERT_TRUE(repo.value().store("exp-b", tiny_package("B", 3)).ok());

  Result<std::vector<Repository::CrossEvent>> adds =
      repo.value().events_of_type("sd_service_add");
  ASSERT_TRUE(adds.ok());
  EXPECT_EQ(adds.value().size(), 5u);

  Result<std::vector<Repository::Summary>> summaries =
      repo.value().summaries();
  ASSERT_TRUE(summaries.ok());
  ASSERT_EQ(summaries.value().size(), 2u);
  EXPECT_EQ(summaries.value()[0].runs, 2u);
  EXPECT_EQ(summaries.value()[1].events, 3u);
}

}  // namespace
}  // namespace excovery::storage
