// Serialise DOM trees back to XML text.
#pragma once

#include <string>

#include "xml/dom.hpp"

namespace excovery::xml {

struct WriteOptions {
  bool pretty = true;       ///< newline + indentation per nesting level
  int indent_width = 2;     ///< spaces per level when pretty
  bool declaration = true;  ///< emit <?xml version="1.0" encoding="UTF-8"?>
};

/// Serialise an element subtree.
std::string write(const Element& root, const WriteOptions& options = {});

/// Serialise a document.
std::string write(const Document& doc, const WriteOptions& options = {});

}  // namespace excovery::xml
