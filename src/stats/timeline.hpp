// Experiment visualisation (§I: the formal description "allows for
// automatic checking, execution and additional features, such as
// visualisation of experiments").
//
// Renders a run's conditioned event record as a Fig. 11-style timeline:
// one lane per node, actions/events placed on a common time axis, phases
// annotated.  Output is plain text so it works in logs and terminals.
#pragma once

#include <string>

#include "common/error.hpp"
#include "storage/package.hpp"

namespace excovery::stats {

struct TimelineOptions {
  std::size_t width = 72;       ///< characters for the time axis
  bool mark_phases = true;      ///< annotate prepare/execute/clean-up
  /// Events drawn as lane markers; others are listed beneath.  Empty =
  /// every event gets a marker.
  std::vector<std::string> marker_events;
};

/// Render one run of a package as an ASCII timeline.
Result<std::string> render_timeline(const storage::ExperimentPackage& package,
                                    std::int64_t run_id,
                                    const TimelineOptions& options = {});

}  // namespace excovery::stats
