// Fig. 5 — "Several defined factors in the description and their levels":
// the actor_node_map blocking factor, a random-usage fact_pairs {5,20}, a
// constant-usage fact_bw {10,50,100} and a replication factor of 1000.
//
// Regenerated from running code: the exact Fig. 5 factor list is parsed
// from XML and the OFAT treatment plan ExCovery generates from it is
// printed (head + structure check).
#include "bench_common.hpp"

using namespace excovery;

namespace {

const char* kFig5Document = R"(
<experiment name="fig5" seed="1234">
  <nodelist><node id="A"/><node id="B"/></nodelist>
  <factorlist>
    <factor id="fact_nodes" type="actor_node_map" usage="blocking">
      <levels><level>
        <actor id="actor0"><instance id="0">A</instance></actor>
        <actor id="actor1"><instance id="0">B</instance></actor>
      </level></levels>
    </factor>
    <factor usage="random" type="int" id="fact_pairs">
      <levels>
        <level>5</level><level>20</level>
      </levels>
    </factor>
    <factor usage="constant" id="fact_bw" type="int">
      <levels>
        <level>10</level><level>50</level><level>100</level>
      </levels>
    </factor>
    <replicationfactor usage="replication" type="int"
        id="fact_replication_id">1000</replicationfactor>
  </factorlist>
  <processes>
    <node_process>
      <actor id="actor0" name="SM"><sd_actions/></actor>
      <actor id="actor1" name="SU"><sd_actions/></actor>
    </node_process>
  </processes>
</experiment>
)";

}  // namespace

int main() {
  bench::banner("bench_fig05_factors",
                "Fig. 5: factor definitions and their levels");

  core::ExperimentDescription description = bench::must(
      core::ExperimentDescription::parse(kFig5Document), "parse");
  std::printf("\nfactors parsed:\n");
  for (const core::Factor& factor : description.factors) {
    std::printf("  %-24s usage=%-11s type=%-15s %zu level(s)\n",
                factor.id.c_str(),
                std::string(core::to_string(factor.usage)).c_str(),
                factor.type.c_str(), factor.levels.size());
  }
  std::printf("  %-24s usage=replication                 %d replications\n",
              description.replication_factor_id.c_str(),
              description.replications);

  core::TreatmentPlan plan =
      bench::must(core::TreatmentPlan::generate(description), "plan");
  std::printf("\n%s\n", plan.format(8).c_str());

  // Structure checks against the paper's semantics.
  bool ok = true;
  if (plan.run_count() != 2u * 3u * 1000u) {
    std::printf("UNEXPECTED run count %zu (want 6000)\n", plan.run_count());
    ok = false;
  }
  // fact_bw (last factor) changes every treatment; fact_pairs varies least
  // among the swept factors (after the blocking actor map).
  const auto& runs = plan.runs();
  bool bw_changes = runs[0].treatment.level_int("fact_bw").value() !=
                    runs[1000].treatment.level_int("fact_bw").value();
  bool pairs_held = runs[0].treatment.level_int("fact_pairs").value() ==
                    runs[1000].treatment.level_int("fact_pairs").value();
  std::printf("OFAT structure: bw changes between treatments: %s, pairs held "
              "across first treatments: %s\n",
              bw_changes ? "yes" : "NO", pairs_held ? "yes" : "NO");
  std::printf("replication id exposed as factor level: %lld (run 1), %lld "
              "(run 2)\n",
              static_cast<long long>(
                  runs[0].treatment.level_int("fact_replication_id").value()),
              static_cast<long long>(
                  runs[1].treatment.level_int("fact_replication_id").value()));
  return ok && bw_changes && pairs_held ? 0 : 1;
}
