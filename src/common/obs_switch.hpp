// Compile-time switch for the observability hot-path hooks (src/obs).
//
// The build defines EXCOVERY_OBS_ENABLED=0 when configured with
// -DEXCOVERY_OBS=OFF; every instrumentation hook in the kernel, network and
// thread-pool hot paths sits behind `#if EXCOVERY_OBS_ENABLED`, so the OFF
// build collapses them to nothing and the instrumented layers compile to
// exactly the uninstrumented code.  The obs library itself (registries,
// trace buffers, exporters) stays available in both configurations — only
// the per-operation hooks disappear.
#pragma once

#ifndef EXCOVERY_OBS_ENABLED
#define EXCOVERY_OBS_ENABLED 1
#endif
