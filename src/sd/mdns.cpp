#include "sd/mdns.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>

#include "common/log.hpp"
#include "common/strings.hpp"

namespace excovery::sd {

namespace {
constexpr const char* kComponent = "sd.mdns";
}

MdnsAgent::MdnsAgent(net::Network& network, net::NodeId node,
                     const MdnsConfig& config)
    : network_(network),
      node_(node),
      config_(config),
      rng_(RngFactory(config.seed ^ fnv1a64(network.topology().node(node).name))
               .stream("mdns-agent")),
      cache_(network.scheduler()) {
  cache_.set_listener([this](CacheChange change,
                             const ServiceInstance& instance) {
    // Report discovery events only while a search for the type is active
    // (§V: events belong to the search process).
    if (searches_.find(instance.type) == searches_.end()) return;
    switch (change) {
      case CacheChange::kAdded:
        emit(events::kServiceAdd, Value{instance.instance_name});
        break;
      case CacheChange::kUpdated:
        emit(events::kServiceUpd, Value{instance.instance_name});
        break;
      case CacheChange::kRemoved:
      case CacheChange::kExpired:
        emit(events::kServiceDel, Value{instance.instance_name});
        break;
    }
  });
}

MdnsAgent::~MdnsAgent() {
  if (initialized_) (void)exit();
}

template <typename Fn>
void MdnsAgent::schedule(sim::SimDuration delay, Fn&& fn) {
  std::uint64_t generation = generation_.value();
  network_.scheduler().schedule(
      delay, [this, alive = generation_.token(), generation,
              fn = std::forward<Fn>(fn)]() mutable {
        if (*alive != generation) return;  // agent exited or was destroyed
        fn();
      });
}

Status MdnsAgent::init(SdRole role, const ValueMap& params) {
  if (initialized_) return err_state("mdns agent already initialised");
  if (role == SdRole::kServiceCacheManager) {
    return err_unsupported(
        "two-party mdns protocol has no SCM role; use the slp or hybrid "
        "protocol for three-party experiments");
  }
  // User-specified SDP parameters (§V Init SD "optional list of
  // parameters").
  if (const auto it = params.find("record_ttl"); it != params.end()) {
    EXC_ASSIGN_OR_RETURN(std::int64_t ttl, it->second.to_int());
    if (ttl < 0) return err_invalid("record_ttl must be >= 0");
    config_.record_ttl_seconds = static_cast<std::uint32_t>(ttl);
  }
  if (const auto it = params.find("probe_count"); it != params.end()) {
    EXC_ASSIGN_OR_RETURN(std::int64_t n, it->second.to_int());
    config_.probe_count = static_cast<int>(n);
  }
  role_ = role;
  initialized_ = true;

  network_.join_group(node_, net::Address::sd_multicast());
  network_.bind(node_, net::kSdPort,
                [this](net::NodeId, const net::Packet& packet) {
                  on_packet(packet);
                });

  // "Configuration Discovery and Monitoring": identity establishment takes
  // a short startup delay, after which participation is possible.
  schedule(config_.startup_delay,
           [this] { emit(events::kInitDone, Value{to_string(role_).data()}); });
  return {};
}

Status MdnsAgent::exit() {
  if (!initialized_) return err_state("mdns agent not initialised");
  // Goodbyes for everything still published.
  for (auto& [name, publication] : published_) {
    if (publication.probing) continue;  // never confirmed, nothing to revoke
    SdMessage goodbye;
    goodbye.kind = MessageKind::kGoodbye;
    goodbye.txn_id = next_txn();
    goodbye.service_type = publication.instance.type;
    goodbye.sender_name = network_.topology().node(node_).name;
    goodbye.records.push_back(ServiceRecord{publication.instance, 0});
    send_message(goodbye);
    counters_.goodbyes_sent++;
  }
  published_.clear();
  for (auto& [type, search] : searches_) {
    network_.scheduler().cancel(search.timer);
  }
  searches_.clear();
  cache_.clear();
  network_.unbind(node_, net::kSdPort);
  network_.leave_group(node_, net::Address::sd_multicast());
  generation_.bump();  // cancels all outstanding scheduled work
  initialized_ = false;
  emit(events::kExitDone);
  return {};
}

void MdnsAgent::crash() {
  if (!initialized_) return;
  // Ungraceful failure: no goodbyes, no exit event — the process is gone
  // mid-flight.  Peers keep our announced records until their cache TTLs
  // expire; our own cache, publications, and pending queries are lost.
  published_.clear();
  for (auto& [type, search] : searches_) {
    network_.scheduler().cancel(search.timer);
  }
  searches_.clear();
  cache_.clear();
  network_.unbind(node_, net::kSdPort);
  network_.leave_group(node_, net::Address::sd_multicast());
  generation_.bump();  // cancels all outstanding scheduled work
  initialized_ = false;
}

Status MdnsAgent::start_search(const ServiceType& type) {
  if (!initialized_) return err_state("start_search before init");
  if (searches_.find(type) != searches_.end()) {
    return err_state("search for '" + type + "' already active");
  }
  Search search;
  search.type = type;
  search.next_interval = config_.query_interval;
  searches_.emplace(type, std::move(search));
  // Root of this discovery's causal tree: the start_search event, the
  // passive head start and the first query round all descend from it.
  const std::uint64_t lin_search = network_.record_lineage(
      sim::LineageKind::kRoot, network_.lineage_ambient(), 0, node_, type);
  sim::LineageScope lin_search_scope(network_.scheduler(), lin_search);
  emit(events::kStartSearch, Value{type});

  // Passive head start: anything already cached counts as discovered.  The
  // discovery's lineage points at the packet that stored the record, via
  // the cache-hit event — "answered from cache" is an attributable edge.
  for (const ServiceInstance& instance : cache_.instances(type)) {
    const std::uint64_t lin_hit = network_.record_lineage(
        sim::LineageKind::kCacheHit, cache_.lineage(instance.instance_name),
        0, node_, instance.instance_name);
    sim::LineageScope lin_scope(network_.scheduler(), lin_hit);
    emit(events::kServiceAdd, Value{instance.instance_name});
  }

  // First query after a random short delay (mDNS: 20-120 ms).
  std::int64_t span =
      config_.first_query_max.nanos() - config_.first_query_min.nanos();
  sim::SimDuration first_delay =
      config_.first_query_min +
      sim::SimDuration(span > 0 ? rng_.uniform_int(0, span) : 0);
  schedule_query(type, first_delay);
  return {};
}

void MdnsAgent::schedule_query(const ServiceType& type,
                               sim::SimDuration delay) {
  std::uint64_t generation = generation_.value();
  auto handle = network_.scheduler().schedule(
      delay, [this, alive = generation_.token(), generation, type] {
    if (*alive != generation) return;
    auto it = searches_.find(type);
    if (it == searches_.end()) return;  // search stopped
    // One query round: the round's packet and the next round's timer both
    // descend from this event, so retransmission rounds chain — the
    // provenance walk can say "closed by round N".
    const std::uint32_t round = ++it->second.round;
    const std::uint64_t lin_query =
        network_.record_lineage(sim::LineageKind::kQuery,
                                network_.lineage_ambient(), round, node_, type);
    sim::LineageScope lin_scope(network_.scheduler(), lin_query);
    send_query(type);
    // Exponential back-off for the next round.
    sim::SimDuration next = it->second.next_interval;
    auto widened = static_cast<std::int64_t>(
        static_cast<double>(next.nanos()) * config_.query_backoff);
    it->second.next_interval =
        std::min(sim::SimDuration(widened), config_.query_interval_max);
    schedule_query(type, next);
  });
  if (auto it = searches_.find(type); it != searches_.end()) {
    it->second.timer = handle;
  }
}

void MdnsAgent::send_query(const ServiceType& type) {
  SdMessage query;
  query.kind = MessageKind::kQuery;
  query.txn_id = next_txn();
  query.service_type = type;
  query.sender_name = network_.topology().node(node_).name;
  // Known-answer suppression: list live cache entries with >50% TTL left.
  for (const ServiceInstance& instance : cache_.instances(type)) {
    std::uint32_t remaining = cache_.remaining_ttl(instance.instance_name);
    std::uint32_t original = cache_.original_ttl(instance.instance_name);
    if (original > 0 && remaining * 2 > original) {
      query.known_answers.push_back(
          KnownAnswer{instance.instance_name, remaining});
    }
  }
  counters_.queries_sent++;
  send_message(query);
}

Status MdnsAgent::stop_search(const ServiceType& type) {
  if (!initialized_) return err_state("stop_search before init");
  auto it = searches_.find(type);
  if (it == searches_.end()) {
    return err_state("no active search for '" + type + "'");
  }
  network_.scheduler().cancel(it->second.timer);
  searches_.erase(it);
  emit(events::kStopSearch, Value{type});
  return {};
}

Status MdnsAgent::start_publish(const ServiceInstance& instance) {
  if (!initialized_) return err_state("start_publish before init");
  if (role_ != SdRole::kServiceManager) {
    return err_state("only SM nodes publish services");
  }
  if (published_.find(instance.instance_name) != published_.end()) {
    return err_state("instance '" + instance.instance_name +
                     "' already published");
  }
  Publication publication;
  publication.instance = instance;
  if (publication.instance.provider.is_unspecified()) {
    publication.instance.provider = network_.topology().node(node_).address;
  }
  publication.probing = config_.probe_count > 0;
  publication.probes_left = config_.probe_count;
  publication.announces_left = config_.announce_count;
  std::string name = publication.instance.instance_name;
  published_.emplace(name, std::move(publication));
  emit(events::kStartPublish, Value{name});

  if (config_.probe_count > 0) {
    continue_probing(name);
  } else {
    continue_announcing(name);
  }
  return {};
}

void MdnsAgent::continue_probing(const std::string& instance_name) {
  auto it = published_.find(instance_name);
  if (it == published_.end()) return;
  Publication& publication = it->second;
  if (publication.probes_left == 0) {
    publication.probing = false;
    continue_announcing(instance_name);
    return;
  }
  publication.probes_left--;
  SdMessage probe;
  probe.kind = MessageKind::kProbe;
  probe.txn_id = next_txn();
  probe.service_type = publication.instance.type;
  probe.sender_name = network_.topology().node(node_).name;
  probe.records.push_back(
      ServiceRecord{publication.instance, config_.record_ttl_seconds});
  counters_.probes_sent++;
  send_message(probe);
  schedule(config_.probe_interval,
           [this, instance_name] { continue_probing(instance_name); });
}

void MdnsAgent::continue_announcing(const std::string& instance_name) {
  auto it = published_.find(instance_name);
  if (it == published_.end()) return;
  Publication& publication = it->second;
  if (publication.announces_left == 0) return;
  publication.announces_left--;
  SdMessage announce;
  announce.kind = MessageKind::kAnnounce;
  announce.txn_id = next_txn();
  announce.service_type = publication.instance.type;
  announce.sender_name = network_.topology().node(node_).name;
  announce.records.push_back(
      ServiceRecord{publication.instance, config_.record_ttl_seconds});
  counters_.announces_sent++;
  send_message(announce);
  if (publication.announces_left > 0) {
    schedule(config_.announce_interval,
             [this, instance_name] { continue_announcing(instance_name); });
  }
}

Status MdnsAgent::stop_publish(const std::string& instance_name) {
  if (!initialized_) return err_state("stop_publish before init");
  auto it = published_.find(instance_name);
  if (it == published_.end()) {
    return err_state("instance '" + instance_name + "' is not published");
  }
  if (!it->second.probing) {
    SdMessage goodbye;
    goodbye.kind = MessageKind::kGoodbye;
    goodbye.txn_id = next_txn();
    goodbye.service_type = it->second.instance.type;
    goodbye.sender_name = network_.topology().node(node_).name;
    goodbye.records.push_back(ServiceRecord{it->second.instance, 0});
    counters_.goodbyes_sent++;
    send_message(goodbye);
  }
  published_.erase(it);
  emit(events::kStopPublish, Value{instance_name});
  return {};
}

Status MdnsAgent::update_publication(const ServiceInstance& instance) {
  if (!initialized_) return err_state("update_publication before init");
  auto it = published_.find(instance.instance_name);
  if (it == published_.end()) {
    return err_state("instance '" + instance.instance_name +
                     "' is not published");
  }
  // §V: "Generates an event sd_service_upd ... before the update is
  // executed."
  emit(events::kServiceUpd, Value{instance.instance_name});
  ServiceInstance updated = instance;
  if (updated.provider.is_unspecified()) {
    updated.provider = network_.topology().node(node_).address;
  }
  updated.version = it->second.instance.version + 1;
  it->second.instance = updated;
  it->second.announces_left = config_.announce_count;
  continue_announcing(instance.instance_name);
  return {};
}

std::vector<ServiceInstance> MdnsAgent::discovered(
    const ServiceType& type) const {
  return cache_.instances(type);
}

void MdnsAgent::send_message(const SdMessage& message) {
  net::Packet packet;
  packet.dst = net::Address::sd_multicast();
  packet.src_port = net::kSdPort;
  packet.dst_port = net::kSdPort;
  packet.ttl = config_.multicast_ttl;
  packet.payload = encode(message);
  Result<std::uint64_t> sent = network_.send(node_, std::move(packet));
  if (!sent.ok()) {
    EXC_LOG_WARN(kComponent, "send failed: " << sent.error().to_string());
  }
}

void MdnsAgent::on_packet(const net::Packet& packet) {
  Result<SdMessage> decoded = decode(packet.payload);
  if (!decoded.ok()) {
    EXC_LOG_DEBUG(kComponent,
                  "dropping undecodable payload: "
                      << decoded.error().to_string());
    return;
  }
  const SdMessage& message = decoded.value();
  // Ignore our own multicast loopback.
  if (message.sender_name == network_.topology().node(node_).name) return;
  switch (message.kind) {
    case MessageKind::kQuery:
      handle_query(message);
      break;
    case MessageKind::kProbe:
      handle_probe(message);
      break;
    case MessageKind::kResponse:
    case MessageKind::kAnnounce:
    case MessageKind::kGoodbye:
      handle_records(message);
      break;
    default:
      break;  // three-party kinds are not ours
  }
}

void MdnsAgent::handle_query(const SdMessage& message) {
  // Collect our matching, confirmed publications.
  std::vector<ServiceRecord> answers;
  for (const auto& [name, publication] : published_) {
    if (publication.probing) continue;
    if (publication.instance.type != message.service_type) continue;
    // Known-answer suppression.
    bool suppressed = false;
    for (const KnownAnswer& known : message.known_answers) {
      if (known.instance_name == name &&
          known.remaining_ttl_seconds * 2 > config_.record_ttl_seconds) {
        suppressed = true;
        break;
      }
    }
    if (suppressed) {
      counters_.responses_suppressed++;
      continue;
    }
    answers.push_back(
        ServiceRecord{publication.instance, config_.record_ttl_seconds});
  }
  if (answers.empty()) return;

  // Respond after a random aggregation delay, echoing the query txn id
  // (request/response pairing).
  std::uint32_t txn = message.txn_id;
  ServiceType type = message.service_type;
  std::int64_t span =
      config_.response_delay_max.nanos() - config_.response_delay_min.nanos();
  sim::SimDuration delay =
      config_.response_delay_min +
      sim::SimDuration(span > 0 ? rng_.uniform_int(0, span) : 0);
  schedule(delay, [this, txn, type, answers = std::move(answers)] {
    SdMessage response;
    response.kind = MessageKind::kResponse;
    response.txn_id = txn;
    response.service_type = type;
    response.sender_name = network_.topology().node(node_).name;
    response.records = answers;
    counters_.responses_sent++;
    // Ambient context = the delivery of the query this answers (captured
    // when the aggregation timer was scheduled).
    const std::uint64_t lin_answer = network_.record_lineage(
        sim::LineageKind::kAnswer, network_.lineage_ambient(), txn, node_,
        "mdns_response");
    sim::LineageScope lin_scope(network_.scheduler(), lin_answer);
    send_message(response);
  });
}

void MdnsAgent::handle_probe(const SdMessage& message) {
  // A probe for a name we are also probing (or own) is a conflict.  The
  // mDNS rule is lexicographic tie-breaking; we resolve in favour of the
  // established owner, and a probing node renames.
  for (const ServiceRecord& record : message.records) {
    auto it = published_.find(record.instance.instance_name);
    if (it == published_.end()) continue;
    if (it->second.probing) {
      // We are still probing: the other side may be established or racing.
      counters_.conflicts_detected++;
      resolve_conflict(record.instance.instance_name);
    } else {
      // We own the name: defend it by answering immediately.
      SdMessage defence;
      defence.kind = MessageKind::kResponse;
      defence.txn_id = message.txn_id;
      defence.service_type = it->second.instance.type;
      defence.sender_name = network_.topology().node(node_).name;
      defence.records.push_back(
          ServiceRecord{it->second.instance, config_.record_ttl_seconds});
      counters_.responses_sent++;
      send_message(defence);
    }
  }
}

void MdnsAgent::resolve_conflict(const std::string& instance_name) {
  auto it = published_.find(instance_name);
  if (it == published_.end()) return;
  Publication publication = std::move(it->second);
  published_.erase(it);
  // Rename "name" -> "name-2" -> "name-3" ...
  std::string base = instance_name;
  int suffix = 2;
  std::size_t dash = base.rfind('-');
  if (dash != std::string::npos) {
    bool numeric = dash + 1 < base.size();
    for (std::size_t i = dash + 1; i < base.size(); ++i) {
      if (!std::isdigit(static_cast<unsigned char>(base[i]))) {
        numeric = false;
        break;
      }
    }
    if (numeric) {
      suffix = std::atoi(base.c_str() + dash + 1) + 1;
      base = base.substr(0, dash);
    }
  }
  std::string renamed = base + "-" + std::to_string(suffix);
  publication.instance.instance_name = renamed;
  publication.probing = config_.probe_count > 0;
  publication.probes_left = config_.probe_count;
  publication.announces_left = config_.announce_count;
  published_.emplace(renamed, std::move(publication));
  EXC_LOG_INFO(kComponent, "conflict: renamed '" << instance_name << "' to '"
                                                 << renamed << "'");
  if (config_.probe_count > 0) {
    continue_probing(renamed);
  } else {
    continue_announcing(renamed);
  }
}

void MdnsAgent::handle_records(const SdMessage& message) {
  for (const ServiceRecord& record : message.records) {
    // Conflict detection against our confirmed names.
    auto it = published_.find(record.instance.instance_name);
    if (it != published_.end() && it->second.probing &&
        record.ttl_seconds > 0) {
      counters_.conflicts_detected++;
      resolve_conflict(record.instance.instance_name);
      continue;
    }
    // The store event ties the cache entry to the packet delivering it;
    // the cache listener's sd_service_add fires under the same ambient
    // context, so fresh discoveries chain to the answer automatically.
    const std::uint64_t lin_store = network_.record_lineage(
        sim::LineageKind::kCacheStore, network_.lineage_ambient(), 0, node_,
        record.instance.instance_name);
    cache_.store(record, lin_store);
  }
}

}  // namespace excovery::sd
