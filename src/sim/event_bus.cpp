#include "sim/event_bus.hpp"

#include <algorithm>

namespace excovery::sim {

SubscriptionHandle EventBus::subscribe(std::string name, Callback fn) {
  std::uint64_t id = next_id_++;
  subscribers_.push_back(Subscriber{id, std::move(name), std::move(fn), false});
  return SubscriptionHandle(id);
}

void EventBus::unsubscribe(SubscriptionHandle handle) {
  if (!handle.valid()) return;
  for (Subscriber& s : subscribers_) {
    if (s.id == handle.id_) {
      s.removed = true;
      needs_compaction_ = true;
      return;
    }
  }
}

void EventBus::publish(const BusEvent& event) {
  ++published_;
  ++publish_depth_;
  // Index-based loop: callbacks may subscribe (push_back) reentrantly; those
  // new subscribers do not see the current event.
  std::size_t count = subscribers_.size();
  for (std::size_t i = 0; i < count; ++i) {
    Subscriber& s = subscribers_[i];
    if (s.removed) continue;
    if (!s.name.empty() && s.name != event.name) continue;
    s.fn(event);
  }
  --publish_depth_;
  if (publish_depth_ == 0 && needs_compaction_) {
    subscribers_.erase(
        std::remove_if(subscribers_.begin(), subscribers_.end(),
                       [](const Subscriber& s) { return s.removed; }),
        subscribers_.end());
    needs_compaction_ = false;
  }
}

}  // namespace excovery::sim
