#include "xml/writer.hpp"

#include "xml/parser.hpp"

namespace excovery::xml {

namespace {

void write_element(const Element& element, const WriteOptions& options,
                   int depth, std::string& out) {
  auto indent = [&](int level) {
    if (!options.pretty) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(level * options.indent_width), ' ');
  };

  if (depth > 0 || options.declaration) indent(depth);
  out.push_back('<');
  out += element.name();
  for (const Attribute& a : element.attributes()) {
    out.push_back(' ');
    out += a.name;
    out += "=\"";
    out += escape_attr(a.value);
    out.push_back('"');
  }

  std::string text = element.text();
  if (element.children().empty() && text.empty()) {
    out += " />";
    return;
  }
  out.push_back('>');

  if (element.children().empty()) {
    // Text-only element: keep text inline for readability.
    out += escape_text(text);
    out += "</";
    out += element.name();
    out.push_back('>');
    return;
  }

  if (!text.empty()) {
    indent(depth + 1);
    out += escape_text(text);
  }
  for (const ElementPtr& child : element.children()) {
    write_element(*child, options, depth + 1, out);
  }
  indent(depth);
  out += "</";
  out += element.name();
  out.push_back('>');
}

}  // namespace

std::string write(const Element& root, const WriteOptions& options) {
  std::string out;
  if (options.declaration) {
    out = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
  }
  WriteOptions inner = options;
  write_element(root, inner, 0, out);
  if (options.pretty) out.push_back('\n');
  return out;
}

std::string write(const Document& doc, const WriteOptions& options) {
  return write(*doc.root, options);
}

}  // namespace excovery::xml
