#include "net/routing.hpp"

#include <algorithm>
#include <cstdlib>

namespace excovery::net {

RoutingTable::RoutingTable(const Topology& topology) { rebuild(topology); }

void RoutingTable::build_adjacency(const Topology& topology,
                                   const std::set<LinkKey>* disabled) {
  // Adjacency lists, sorted for deterministic BFS order.  The lists (and
  // the per-source scratch below) live on the table and keep their
  // capacity between rebuilds.
  if (scratch_adjacency_.size() < size_) scratch_adjacency_.resize(size_);
  for (std::size_t i = 0; i < size_; ++i) scratch_adjacency_[i].clear();
  for (const Link& link : topology.links()) {
    if (disabled != nullptr &&
        disabled->count(link_key(link.a, link.b)) != 0) {
      continue;
    }
    scratch_adjacency_[link.a].push_back(link.b);
    scratch_adjacency_[link.b].push_back(link.a);
  }
  for (std::size_t i = 0; i < size_; ++i) {
    std::sort(scratch_adjacency_[i].begin(), scratch_adjacency_[i].end());
  }
}

void RoutingTable::rebuild(const Topology& topology) {
  rebuild(topology, std::set<LinkKey>{});
}

void RoutingTable::rebuild(const Topology& topology,
                           const std::set<LinkKey>& disabled) {
  size_ = topology.node_count();
  next_hop_.assign(size_ * size_, kInvalidNode);
  hops_.assign(size_ * size_, -1);
  build_adjacency(topology, disabled.empty() ? nullptr : &disabled);
  scratch_frontier_.reserve(size_);
  for (NodeId source = 0; source < size_; ++source) bfs_from(source);
}

void RoutingTable::bfs_from(NodeId source) {
  // Reset this source's rows, then BFS over the current adjacency.
  for (NodeId target = 0; target < size_; ++target) {
    next_hop_[index(source, target)] = kInvalidNode;
  }
  scratch_parent_.assign(size_, kInvalidNode);
  scratch_dist_.assign(size_, -1);
  scratch_frontier_.clear();
  scratch_frontier_.push_back(source);
  scratch_dist_[source] = 0;
  for (std::size_t head = 0; head < scratch_frontier_.size(); ++head) {
    NodeId current = scratch_frontier_[head];
    for (NodeId next : scratch_adjacency_[current]) {
      if (scratch_dist_[next] < 0) {
        scratch_dist_[next] =
            static_cast<std::int16_t>(scratch_dist_[current] + 1);
        scratch_parent_[next] = current;
        scratch_frontier_.push_back(next);
      }
    }
  }
  for (NodeId target = 0; target < size_; ++target) {
    hops_[index(source, target)] = scratch_dist_[target];
    if (target == source || scratch_dist_[target] < 0) continue;
    // Walk back from target to the neighbour of source.
    NodeId walk = target;
    while (scratch_parent_[walk] != source) walk = scratch_parent_[walk];
    next_hop_[index(source, target)] = walk;
  }
}

void RoutingTable::set_link_enabled(NodeId a, NodeId b, bool enabled) {
  if (a >= size_ || b >= size_ || a == b) return;
  std::vector<NodeId>& adj_a = scratch_adjacency_[a];
  std::vector<NodeId>& adj_b = scratch_adjacency_[b];
  if (enabled) {
    auto pos_a = std::lower_bound(adj_a.begin(), adj_a.end(), b);
    if (pos_a != adj_a.end() && *pos_a == b) return;  // already enabled
    adj_a.insert(pos_a, b);
    adj_b.insert(std::lower_bound(adj_b.begin(), adj_b.end(), a), a);
  } else {
    auto pos_a = std::lower_bound(adj_a.begin(), adj_a.end(), b);
    if (pos_a == adj_a.end() || *pos_a != b) return;  // already disabled
    adj_a.erase(pos_a);
    adj_b.erase(std::lower_bound(adj_b.begin(), adj_b.end(), a));
  }

  // Repair only the sources whose rows can change.  Each source's row is
  // read before it is (possibly) recomputed, and rows are independent, so
  // the pre-toggle distances below are always the old values.
  for (NodeId source = 0; source < size_; ++source) {
    const std::int16_t da = hops_[index(source, a)];
    const std::int16_t db = hops_[index(source, b)];
    if (enabled) {
      // A new edge between equally-distant nodes (including two nodes in
      // the same unreachable region, da == db == -1) is never a BFS
      // discovery edge and cannot shorten any path.
      if (da == db) continue;
    } else {
      // With the edge still present, its endpoints were either both
      // reachable or both unreachable from `source`; removing an edge
      // between unreachable nodes changes nothing.
      if (da < 0) continue;
      // Equal-distance edges are never BFS tree edges and lie on no
      // shortest path, so removing one leaves the row untouched.
      if (da != db + 1 && db != da + 1) continue;
    }
    bfs_from(source);
  }
}

NodeId RoutingTable::next_hop(NodeId from, NodeId to) const {
  if (from >= size_ || to >= size_) return kInvalidNode;
  return next_hop_[index(from, to)];
}

int RoutingTable::hop_count(NodeId from, NodeId to) const {
  if (from >= size_ || to >= size_) return -1;
  return hops_[index(from, to)];
}

std::vector<NodeId> RoutingTable::path(NodeId from, NodeId to) const {
  std::vector<NodeId> out;
  if (from >= size_ || to >= size_) return out;
  if (from == to) return {from};
  if (hop_count(from, to) < 0) return out;
  out.push_back(from);
  NodeId current = from;
  while (current != to) {
    current = next_hop(current, to);
    if (current == kInvalidNode) return {};
    out.push_back(current);
  }
  return out;
}

}  // namespace excovery::net
