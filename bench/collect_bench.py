#!/usr/bin/env python3
"""Merge the repository's BENCH_*.json result files into one summary table.

The perf-tracking benches (bench_kernel_hotpath, bench_storage_pipeline,
bench_faults, bench_topology_scale, bench_service_cache, ...) each leave a
JSON file in the
repository root: either the curated seed-vs-current trajectory format
(``benchmarks`` is a mapping of name -> {seed, current, speedup_*}) or raw
google-benchmark output (``benchmarks`` is a list).  Curated entries may
carry extra context fields (BENCH_topology.json records per-scale
generation/warm-up/flood seconds and routing memory); the table keeps the
common columns and the JSON stays the full record.  This script collects
every BENCH_*.json it finds and renders a single markdown summary,
BENCH_SUMMARY.md, so the perf trajectory of all subsystems can be read in
one place.

Usage:
    python3 bench/collect_bench.py            # writes <repo root>/BENCH_SUMMARY.md
    python3 bench/collect_bench.py --stdout   # prints the table instead
"""

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def format_rate(value):
    """Human-readable items/bytes per second."""
    if value is None:
        return ""
    for threshold, suffix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if value >= threshold:
            return f"{value / threshold:.2f}{suffix}/s"
    return f"{value:.2f}/s"


def format_ns(value):
    """Human-readable nanosecond duration."""
    if value is None:
        return ""
    for threshold, unit in ((1e9, "s"), (1e6, "ms"), (1e3, "us")):
        if value >= threshold:
            return f"{value / threshold:.2f} {unit}"
    return f"{value:.0f} ns"


def rate_of(measurement):
    if not measurement:
        return None
    return measurement.get("items_per_second") or measurement.get(
        "bytes_per_second")


def format_allocs(seed, current, entry):
    """Seed -> current heap allocations per call, when a bench records them.

    The zero-copy benches (bench_xml_rpc, bench_service_cache) count operator
    new calls per operation; the trajectory "336 -> 12" is the headline for
    allocation-focused work, so it earns a column.  bench_service_cache keeps
    its single per-hit count at entry level as ``hit_allocations``.
    """
    seed_allocs = (seed or {}).get("allocations")
    cur_allocs = (current or {}).get("allocations")
    if cur_allocs is None:
        cur_allocs = entry.get("hit_allocations")
    if cur_allocs is None:
        return ""
    if seed_allocs is None:
        return str(cur_allocs)
    return f"{seed_allocs} -> {cur_allocs}"


def curated_rows(benchmarks):
    """Rows from the curated trajectory format (mapping name -> entry)."""
    rows = []
    for name, entry in benchmarks.items():
        seed = entry.get("seed")
        current = entry.get("current")
        speedup = next(
            (entry[key] for key in entry if key.startswith("speedup")), None)
        rows.append({
            "name": name,
            "seed": format_rate(rate_of(seed)),
            "current": format_rate(rate_of(current)),
            "cpu": format_ns((current or {}).get("cpu_time_ns")),
            "allocs": format_allocs(seed, current, entry),
            "speedup": f"{speedup:.2f}x" if speedup is not None else "",
        })
    return rows


def gbench_rows(benchmarks):
    """Rows from raw google-benchmark JSON output (list of runs)."""
    rows = []
    for bench in benchmarks:
        if bench.get("run_type") == "aggregate":
            continue
        scale = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}.get(
            bench.get("time_unit", "ns"), 1.0)
        rows.append({
            "name": bench["name"],
            "seed": "",
            "current": format_rate(rate_of(bench)),
            "cpu": format_ns(bench["cpu_time"] * scale),
            "allocs": "",
            "speedup": "",
        })
    return rows


def rows_for(path):
    with path.open() as fh:
        data = json.load(fh)
    benchmarks = data.get("benchmarks", {})
    if isinstance(benchmarks, dict):
        return data, curated_rows(benchmarks)
    return data, gbench_rows(benchmarks)


def render(files):
    lines = ["# Benchmark summary", ""]
    lines.append("Merged from "
                 + ", ".join(f"`{path.name}`" for path in files)
                 + " by `bench/collect_bench.py`.")
    for path in files:
        try:
            data, rows = rows_for(path)
        except (json.JSONDecodeError, KeyError, TypeError) as error:
            lines += ["", f"## {path.name}", "", f"(unreadable: {error})"]
            continue
        lines += ["", f"## {path.name}", ""]
        stamp = (data.get("date") or data.get("date_current")
                 or data.get("context", {}).get("date", "unknown date"))
        lines.append(f"Recorded {stamp}.")
        if data.get("description"):
            lines += ["", data["description"]]
        lines += ["",
                  "| Benchmark | Seed rate | Current rate | Current CPU | "
                  "Allocs/call | Speedup |",
                  "|---|---|---|---|---|---|"]
        for row in rows:
            lines.append(
                "| {name} | {seed} | {current} | {cpu} | {allocs} "
                "| {speedup} |".format(**row))
    lines.append("")
    return "\n".join(lines)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--stdout", action="store_true",
                        help="print the summary instead of writing it")
    parser.add_argument("--root", type=Path, default=REPO_ROOT,
                        help="directory holding the BENCH_*.json files")
    args = parser.parse_args()

    files = sorted(args.root.glob("BENCH_*.json"))
    if not files:
        print(f"no BENCH_*.json files under {args.root}", file=sys.stderr)
        return 1
    summary = render(files)
    if args.stdout:
        print(summary)
    else:
        out = args.root / "BENCH_SUMMARY.md"
        out.write_text(summary)
        print(f"wrote {out} ({len(files)} input file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
