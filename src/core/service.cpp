#include "core/service.hpp"

#include "common/log.hpp"
#include "common/strings.hpp"
#include "core/master.hpp"
#include "core/scenario.hpp"

namespace excovery::core {

namespace {

std::shared_future<ServiceReply> ready_reply(ServiceReply reply) {
  std::promise<ServiceReply> promise;
  promise.set_value(std::move(reply));
  return promise.get_future().share();
}

}  // namespace

std::string_view to_string(SubmitOutcome outcome) noexcept {
  switch (outcome) {
    case SubmitOutcome::kMemoryHit: return "memory-hit";
    case SubmitOutcome::kDiskHit: return "disk-hit";
    case SubmitOutcome::kCoalesced: return "coalesced";
    case SubmitOutcome::kSimulated: return "simulated";
    case SubmitOutcome::kRejected: return "rejected";
    case SubmitOutcome::kFailed: return "failed";
  }
  return "?";
}

ExperimentService::ExperimentService(Config config)
    : config_(std::move(config)), pool_(config_.workers) {
  if (config_.obs != nullptr) {
    // Wall domain: cache behaviour depends on submission timing and must
    // never be exported into result packages (DESIGN.md §11).
    obs::MetricsRegistry& registry = config_.obs->registry();
    metric_ids_.hit =
        registry.counter("cache.hit", obs::MetricDomain::kWall);
    metric_ids_.miss =
        registry.counter("cache.miss", obs::MetricDomain::kWall);
    metric_ids_.singleflight =
        registry.counter("cache.singleflight", obs::MetricDomain::kWall);
    metric_ids_.rejected =
        registry.counter("queue.rejected", obs::MetricDomain::kWall);
    metric_ids_.depth =
        registry.gauge("queue.depth", obs::MetricDomain::kWall);
  }
}

void ExperimentService::record_queue_depth() {
  stats_.queue_depth = pending_;
  if (config_.obs != nullptr) {
    config_.obs->set_gauge(metric_ids_.depth,
                           static_cast<std::int64_t>(pending_));
  }
}

std::shared_ptr<const storage::ExperimentPackage>
ExperimentService::cache_get(const std::string& digest) {
  auto it = lru_index_.find(digest);
  if (it == lru_index_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);  // touch: move to front
  return it->second->second;
}

void ExperimentService::cache_put(
    const std::string& digest,
    std::shared_ptr<const storage::ExperimentPackage> package) {
  if (config_.memory_cache_capacity == 0) return;
  auto it = lru_index_.find(digest);
  if (it != lru_index_.end()) {
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second->second = std::move(package);
    return;
  }
  lru_.emplace_front(digest, std::move(package));
  lru_index_.emplace(digest, lru_.begin());
  while (lru_.size() > config_.memory_cache_capacity) {
    lru_index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

std::pair<std::shared_future<ServiceReply>, bool> ExperimentService::enqueue(
    const Submission& submission) {
  std::string digest = submission.digest();
  std::lock_guard lock(mutex_);

  // Single flight: an identical submission is already simulating — wait on
  // its result instead of starting another.
  if (auto it = flights_.find(digest); it != flights_.end()) {
    ++stats_.coalesced;
    if (config_.obs != nullptr) config_.obs->add(metric_ids_.singleflight);
    return {it->second->future, true};
  }

  ServiceReply reply;
  reply.digest = digest;

  if (auto package = cache_get(digest)) {
    ++stats_.memory_hits;
    if (config_.obs != nullptr) config_.obs->add(metric_ids_.hit);
    reply.outcome = SubmitOutcome::kMemoryHit;
    reply.package = std::move(package);
    return {ready_reply(std::move(reply)), false};
  }

  if (config_.repository != nullptr) {
    // One CAS index lookup: fetch directly and branch on the error code
    // (kNotFound is the ordinary cold-cache case, anything else is a
    // damaged entry) instead of probing contains_hash() first.
    Result<storage::ExperimentPackage> loaded =
        config_.repository->fetch_by_hash(digest);
    if (loaded.ok()) {
      auto package = std::make_shared<storage::ExperimentPackage>(
          std::move(loaded).value());
      cache_put(digest, package);
      ++stats_.disk_hits;
      if (config_.obs != nullptr) config_.obs->add(metric_ids_.hit);
      reply.outcome = SubmitOutcome::kDiskHit;
      reply.package = std::move(package);
      return {ready_reply(std::move(reply)), false};
    }
    if (loaded.error().code() != ErrorCode::kNotFound) {
      // A corrupt CAS entry degrades to a miss: re-simulate rather than
      // fail.
      EXC_LOG_WARN("service", "CAS entry " << digest << " unreadable ("
                                           << loaded.error().to_string()
                                           << "), re-simulating");
    }
  }

  // Admission control before counting the miss: a rejected submission was
  // never admitted to the queue.
  if (pending_ >= config_.max_queue_depth) {
    ++stats_.rejected;
    if (config_.obs != nullptr) config_.obs->add(metric_ids_.rejected);
    reply.outcome = SubmitOutcome::kRejected;
    reply.status = err_state(strings::format(
        "submission queue full (%zu simulations admitted, depth limit %zu)",
        pending_, config_.max_queue_depth));
    return {ready_reply(std::move(reply)), false};
  }

  ++stats_.misses;
  if (config_.obs != nullptr) config_.obs->add(metric_ids_.miss);
  ++pending_;
  record_queue_depth();

  auto flight = std::make_shared<Flight>();
  flight->future = flight->promise.get_future().share();
  flights_.emplace(digest, flight);
  std::shared_future<ServiceReply> future = flight->future;
  pool_.post([this, digest = std::move(digest), submission,
              flight = std::move(flight)]() mutable {
    run_flight(digest, std::move(submission), flight);
  });
  return {std::move(future), false};
}

Result<storage::ExperimentPackage> ExperimentService::simulate(
    const Submission& submission) {
  EXC_ASSIGN_OR_RETURN(
      net::Topology topology,
      scenario::topology_for(submission.description,
                             submission.scope.topology));
  SimPlatformConfig config;
  config.topology = std::move(topology);
  config.seed = submission.scope.platform_seed;
  EXC_ASSIGN_OR_RETURN(
      std::unique_ptr<SimPlatform> platform,
      SimPlatform::create(submission.description, std::move(config)));

  MasterOptions options;
  options.max_attempts_per_run = submission.scope.max_attempts_per_run;
  options.run_watchdog = submission.scope.run_watchdog;
  options.settle = submission.scope.settle;
  options.run_workers = submission.run_workers;
  ExperiMaster master(submission.description, *platform, std::move(options));
  return master.execute();
}

void ExperimentService::run_flight(const std::string& digest,
                                   Submission submission,
                                   const std::shared_ptr<Flight>& flight) {
  if (config_.before_simulate) config_.before_simulate(digest);
  Result<storage::ExperimentPackage> result = simulate(submission);

  ServiceReply reply;
  reply.digest = digest;
  {
    std::lock_guard lock(mutex_);
    if (result.ok()) {
      std::shared_ptr<const storage::ExperimentPackage> package =
          std::make_shared<storage::ExperimentPackage>(
              std::move(result).value());
      if (config_.repository != nullptr) {
        Status stored = config_.repository->store_by_hash(digest, *package);
        if (!stored.ok()) {
          // A full or read-only disk must not fail the submission: the
          // fresh package is still correct, only future disk hits are lost.
          EXC_LOG_WARN("service", "cannot persist "
                                      << digest << ": "
                                      << stored.error().to_string());
        }
      }
      cache_put(digest, package);
      ++stats_.simulations;
      reply.outcome = SubmitOutcome::kSimulated;
      reply.package = std::move(package);
    } else {
      ++stats_.failures;
      reply.outcome = SubmitOutcome::kFailed;
      reply.status = std::move(result).error();
    }
    // Remove the flight only after the cache holds the package, so a new
    // identical submission arriving now hits instead of re-simulating.
    flights_.erase(digest);
    --pending_;
    record_queue_depth();
  }
  flight->promise.set_value(std::move(reply));
}

ServiceReply ExperimentService::submit(const Submission& submission) {
  auto [future, attached] = enqueue(submission);
  ServiceReply reply = future.get();
  if (attached && reply.outcome == SubmitOutcome::kSimulated) {
    reply.outcome = SubmitOutcome::kCoalesced;
  }
  return reply;
}

std::shared_future<ServiceReply> ExperimentService::submit_async(
    const Submission& submission) {
  return enqueue(submission).first;
}

ServiceStats ExperimentService::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

std::size_t ExperimentService::memory_cache_size() const {
  std::lock_guard lock(mutex_);
  return lru_.size();
}

}  // namespace excovery::core
