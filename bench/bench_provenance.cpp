// Provenance / lineage overhead gate (DESIGN.md §16).
//
// The causal lineage log sits on the kernel's hottest paths: every
// send/hop/deliver records a 40-byte event into the always-on flight
// recorder ring.  Two configurations are measured against a detached
// baseline on the bench_kernel_hotpath workloads plus a full mDNS
// discovery cycle:
//
//  1. ring (gated, budget 3%): the production default — lineage attached,
//     flight-recorder ring only.  This is what every run pays.
//  2. graph (reported, not gated): full per-run graph retention plus
//     critical-path extraction, the mode an attached ObsContext enables.
//
// Results go to BENCH_provenance.json (curated format,
// bench/collect_bench.py).
//
// Flags:
//   --smoke     tiny iteration counts, no JSON, WARN-only gate — CI gate
//   --reps N    repetitions per mode (default 9; throughput = fastest rep,
//               gate = median of per-rep paired overheads)
//   --out PATH  override the JSON output path (default BENCH_provenance.json)
#include <ctime>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/strings.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "obs/provenance.hpp"
#include "sd/mdns.hpp"
#include "sim/lineage.hpp"
#include "sim/scheduler.hpp"

namespace {

using excovery::net::Address;
using excovery::net::NodeId;
using excovery::net::Packet;
using excovery::sim::SimDuration;

enum class Mode { kOff, kRing, kGraph };

// Minimum over repetitions: the workloads are deterministic, so timing
// noise (single-core VM, neighbours, preemption) is strictly additive and
// the fastest repetition is the truest measurement of each mode.  Used
// for the reported throughput.
double best(const std::vector<double>& values) {
  return *std::min_element(values.begin(), values.end());
}

// Median over repetitions: the gate statistic.  Overheads are computed
// per repetition from modes that ran back-to-back (pairing cancels the
// rep-scale drift that dominates on this host), and the median resists
// the single lucky/unlucky repetition that would swing a minimum.
double median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  return n % 2 == 1 ? values[n / 2]
                    : (values[n / 2 - 1] + values[n / 2]) / 2.0;
}

// Process CPU time: unlike the wall clock it does not charge the benchmark
// for time the VM spent preempted, which on a shared single-core host is
// the dominant noise source at the 3% resolution this gate needs.
double cpu_seconds() {
  timespec ts;
  clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

excovery::net::LinkModel lossless_link() {
  excovery::net::LinkModel model = excovery::net::LinkModel::ideal();
  model.loss = 0.0;
  model.jitter_frac = 0.0;
  return model;
}

void attach(excovery::net::Network& network, excovery::sim::LineageLog& log,
            Mode mode) {
  if (mode == Mode::kOff) return;
  log.set_graph_enabled(mode == Mode::kGraph);
  network.set_lineage(&log);
}

/// Multicast flood over an n x n grid — the dominant packet path of mesh
/// campaigns; every hop/deliver/dup records one lineage event.
double flood_grid(Mode mode, std::size_t side, int floods) {
  excovery::sim::Scheduler scheduler;
  excovery::net::Network network(
      scheduler, excovery::net::Topology::grid(side, side, lossless_link()),
      /*seed=*/7);
  network.set_capture_enabled(false);
  excovery::sim::LineageLog log;
  attach(network, log, mode);

  const Address group = Address::sd_multicast();
  std::uint64_t delivered = 0;
  for (NodeId n = 0; n < network.node_count(); ++n) {
    network.join_group(n, group);
    network.bind(n, excovery::net::kSdPort,
                 [&delivered](NodeId, const Packet&) { ++delivered; });
  }
  auto send_flood = [&] {
    Packet packet;
    packet.dst = group;
    packet.dst_port = excovery::net::kSdPort;
    packet.ttl = 32;
    packet.payload.assign(512, 0x6B);
    (void)network.send(0, std::move(packet));
  };
  send_flood();  // warm-up
  scheduler.run();
  network.reset_run_state();

  const double start = cpu_seconds();
  for (int i = 0; i < floods; ++i) {
    // One flood stands in for one run: the graph resets per attempt in
    // production, so retention stays bounded here too.
    log.begin_run(static_cast<std::uint64_t>(i + 1), 1);
    send_flood();
    scheduler.run();
    network.reset_run_state();
  }
  const double stop = cpu_seconds();
  if (delivered == 0) std::abort();
  return stop - start;
}

/// Unicast hop chain: every packet crosses length-1 links, each hop one
/// lineage record.
double unicast_chain(Mode mode, std::size_t length, int batches) {
  excovery::sim::Scheduler scheduler;
  excovery::net::Network network(
      scheduler, excovery::net::Topology::chain(length, lossless_link()),
      /*seed=*/7);
  network.set_capture_enabled(false);
  excovery::sim::LineageLog log;
  attach(network, log, mode);

  const NodeId last = static_cast<NodeId>(length - 1);
  std::uint64_t delivered = 0;
  network.bind(last, 4000,
               [&delivered](NodeId, const Packet&) { ++delivered; });
  auto send_one = [&] {
    Packet packet;
    packet.dst = network.topology().node(last).address;
    packet.dst_port = 4000;
    packet.payload.assign(256, 0x5A);
    (void)network.send(0, std::move(packet));
  };
  send_one();  // warm-up
  scheduler.run();

  const double start = cpu_seconds();
  for (int i = 0; i < batches; ++i) {
    log.begin_run(static_cast<std::uint64_t>(i + 1), 1);
    for (int j = 0; j < 16; ++j) send_one();
    scheduler.run();
  }
  const double stop = cpu_seconds();
  if (delivered == 0) std::abort();
  return stop - start;
}

/// Full mDNS discovery cycle: publish, search, query round, aggregated
/// answer, cache store — the protocol-level lineage sites on top of the
/// packet sites.  Graph mode additionally extracts the critical path, which
/// is what an attached ObsContext does at the end of every run.
double mdns_discovery(Mode mode, excovery::sim::LineageLog& log,
                      int cycles) {
  namespace sd = excovery::sd;
  // One persistent world, attached once — exactly how a platform replica
  // lives across runs in production.  Each cycle is one run: fresh agents,
  // begin_run, discovery, reset.
  excovery::sim::Scheduler scheduler;
  excovery::net::Network network(
      scheduler, excovery::net::Topology::full_mesh(2), /*seed=*/7);
  attach(network, log, mode);
  const std::uint16_t sm_label = log.intern("SM0");
  const std::uint16_t su_label = log.intern("SU0");
  // Mirror the core EventRecorder: SD events feed the lineage log so the
  // attribution pass has discovery anchors to walk back from.
  auto sink = [&log, &scheduler, mode](std::uint16_t node) {
    return [&log, &scheduler, mode, node](std::string_view event,
                                          const excovery::Value& param) {
      if (mode == Mode::kOff) return;
      const std::uint16_t peer =
          param.is_string() ? log.intern(param.as_string()) : 0;
      log.record(excovery::sim::LineageKind::kSdEvent,
                 scheduler.current_context(), 0, scheduler.now(), node,
                 peer, log.intern(event));
    };
  };

  std::uint64_t discovered = 0;
  const double start = cpu_seconds();
  for (int i = 0; i < cycles; ++i) {
    log.begin_run(static_cast<std::uint64_t>(i + 1), 1);
    sd::MdnsConfig config;
    config.probe_count = 0;
    config.announce_count = 0;
    sd::MdnsAgent sm(network, 0, config);
    sd::MdnsAgent su(network, 1, config);
    sm.set_event_sink(sink(sm_label));
    su.set_event_sink(sink(su_label));
    if (!sm.init(sd::SdRole::kServiceManager, {}).ok() ||
        !su.init(sd::SdRole::kServiceUser, {}).ok()) {
      std::abort();
    }
    scheduler.run_until(scheduler.now() + SimDuration::from_millis(100));
    sd::ServiceInstance instance;
    instance.instance_name = "svc";
    instance.type = "_t._udp";
    instance.port = 80;
    if (!sm.start_publish(instance).ok() ||
        !su.start_search("_t._udp").ok()) {
      std::abort();
    }
    scheduler.run_until(scheduler.now() + SimDuration::from_millis(500));
    discovered += su.discovered("_t._udp").size();
    if (mode == Mode::kGraph) {
      std::vector<excovery::obs::CriticalPath> paths =
          excovery::obs::extract_critical_paths(log);
#if EXCOVERY_OBS_ENABLED
      if (paths.empty()) std::abort();
#endif
    }
    network.reset_run_state();
  }
  const double stop = cpu_seconds();
  if (discovered != static_cast<std::uint64_t>(cycles)) std::abort();
  return stop - start;
}

struct Workload {
  std::string name;
  double items_per_iteration = 0.0;  ///< for items/s reporting
  std::function<double(Mode)> run;   ///< returns seconds for the fixed loop
  bool gated = true;  ///< ring overhead must fit the budget on this workload
};

std::string today() {
  std::time_t now = std::time(nullptr);
  char buffer[32];
  std::strftime(buffer, sizeof buffer, "%Y-%m-%d", std::localtime(&now));
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int reps = 9;
  std::string out = "BENCH_provenance.json";
  bool out_explicit = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      reps = 5;
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
      out_explicit = true;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--reps N] [--out PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  // Sized so every repetition runs for hundreds of milliseconds — shorter
  // reps cannot resolve a 3% question against scheduler noise.
  const int floods = smoke ? 600 : 6000;
  const int batches = smoke ? 6000 : 60000;
  const int cycles = smoke ? 6000 : 60000;
  // The discovery workload shares one log across iterations, like a
  // platform shares one log across runs: the interner stays warm and the
  // ring is allocated once.
  auto discovery_log = std::make_unique<excovery::sim::LineageLog>();
  std::vector<Workload> workloads;
  workloads.push_back(
      {"flood_grid_8x8", static_cast<double>(floods) * 64,
       [floods](Mode mode) { return flood_grid(mode, 8, floods); }});
  workloads.push_back(
      {"unicast_chain_8", static_cast<double>(batches) * 16 * 7,
       [batches](Mode mode) { return unicast_chain(mode, 8, batches); }});
  // Reported, not gated: the bare-sink baseline overstates the relative
  // cost of protocol-level recording — in production every SD event passes
  // through the EventRecorder's level-2 store write, which dwarfs the
  // lineage mirror.  The kernel packet workloads above are the gate.
  workloads.push_back(
      {"mdns_discovery", static_cast<double>(cycles),
       [cycles, &discovery_log](Mode mode) {
         return mdns_discovery(mode, *discovery_log, cycles);
       },
       /*gated=*/false});

  std::printf("provenance overhead bench: %d repetitions per mode%s\n", reps,
              smoke ? " (smoke)" : "");
#if !EXCOVERY_OBS_ENABLED
  std::printf("  (built with -DEXCOVERY_OBS=OFF: lineage is compiled out, "
              "all modes measure the same inert code)\n");
#endif

  const Mode kModes[] = {Mode::kOff, Mode::kRing, Mode::kGraph};
  const double budget_percent = 3.0;
  bool over_budget = false;
  struct Line {
    std::string workload;
    double off_s = 0.0, ring_s = 0.0, graph_s = 0.0;
    double ring_pct = 0.0, graph_pct = 0.0;
    double items = 0.0;
    bool gated = true;
  };
  std::vector<Line> lines;

  auto measure = [&](const Workload& workload) {
    std::vector<double> times[3];
    // Interleave modes within each repetition so clock drift (thermal,
    // noisy neighbours) biases no mode, and rotate the execution order
    // per repetition so no mode systematically inherits the cache /
    // frequency state of a fixed predecessor — with a rep count divisible
    // by 3 every mode occupies every position equally often.
    static const std::size_t kRotations[3][3] = {
        {0, 1, 2}, {1, 2, 0}, {2, 0, 1}};
    for (int rep = 0; rep < reps; ++rep) {
      const std::size_t* order = kRotations[rep % 3];
      double rep_times[3];
      for (std::size_t slot = 0; slot < 3; ++slot) {
        const std::size_t m = order[slot];
        rep_times[m] = workload.run(kModes[m]);
      }
      for (std::size_t m = 0; m < 3; ++m) times[m].push_back(rep_times[m]);
    }
    Line line;
    line.workload = workload.name;
    line.items = workload.items_per_iteration;
    line.gated = workload.gated;
    line.off_s = best(times[0]);
    line.ring_s = best(times[1]);
    line.graph_s = best(times[2]);
    // Gate on the median of per-repetition paired overheads: within a
    // repetition the three modes run back-to-back, so the ratio cancels
    // drift that the per-mode minima (taken in different repetitions)
    // would not.
    std::vector<double> ring_pcts, graph_pcts;
    for (int rep = 0; rep < reps; ++rep) {
      ring_pcts.push_back((times[1][rep] - times[0][rep]) / times[0][rep] *
                          100.0);
      graph_pcts.push_back((times[2][rep] - times[0][rep]) / times[0][rep] *
                           100.0);
    }
    line.ring_pct = median(std::move(ring_pcts));
    line.graph_pct = median(std::move(graph_pcts));
    return line;
  };

  for (const Workload& workload : workloads) {
    Line line = measure(workload);
    if (line.gated && line.ring_pct > budget_percent) {
      // Two strikes: a shared single-core host shows multi-second load
      // bursts that inflate one whole measurement pass (the baseline
      // throughput visibly dips with it).  Re-measure once; a genuine
      // regression is over budget both times.
      std::printf("  %-18s ring %+6.2f%% over budget — re-measuring once "
                  "to reject transient host load\n",
                  workload.name.c_str(), line.ring_pct);
      Line retry = measure(workload);
      if (retry.ring_pct < line.ring_pct) line = retry;
    }
    const char* verdict = !line.gated ? "not gated"
                          : line.ring_pct <= budget_percent ? "PASS"
                                                            : "OVER-BUDGET";
    std::printf("  %-18s off %8.2f Mitems/s   ring %+6.2f%% %s   "
                "graph %+7.2f%% (not gated)\n",
                workload.name.c_str(), line.items / line.off_s / 1e6,
                line.ring_pct, verdict, line.graph_pct);
    if (line.gated && line.ring_pct > budget_percent) over_budget = true;
    lines.push_back(std::move(line));
  }

  if (over_budget && !smoke) {
    std::fprintf(stderr,
                 "FAIL: flight-recorder lineage overhead exceeds %.1f%%\n",
                 budget_percent);
    return 1;
  }
  // Smoke mode still writes JSON when --out is explicit (CI uploads the
  // smoke trajectory); without it, never clobber the curated file.
  if (smoke && !out_explicit) return 0;

  std::string json;
  json += "{\n";
  json +=
      " \"description\": \"Causal-lineage overhead "
      "(bench/bench_provenance.cpp, DESIGN.md \\u00a716) on the "
      "bench_kernel_hotpath packet workloads plus a full mDNS discovery "
      "cycle. 'seed' = no lineage log attached (the pre-provenance "
      "behaviour); 'current' = the production default, the always-on "
      "flight-recorder ring recording every send/hop/deliver and "
      "protocol-level event. overhead_percent is gated (budget 3%) on the "
      "kernel packet workloads; mdns_discovery is reported ungated — its "
      "bare baseline overstates the relative cost of protocol-level "
      "recording, which in production rides the EventRecorder's far "
      "costlier store write. graph_overhead_percent additionally retains "
      "the full per-run graph and extracts critical paths, the mode an "
      "attached ObsContext enables — reported, not gated. Throughput is "
      "the minimum process-CPU time over interleaved repetitions; "
      "overhead_percent is the median of per-repetition paired overheads "
      "(modes run back-to-back within a repetition, so the ratio cancels "
      "rep-scale drift).\",\n";
  json += " \"machine\": \"vm\",\n";
  json += " \"date\": \"" + today() + "\",\n";
  json += " \"benchmarks\": {\n";
  bool first = true;
  for (const Line& line : lines) {
    if (!first) json += ",\n";
    first = false;
    json += excovery::strings::format(
        "  \"BM_Provenance/%s\": {\n"
        "   \"seed\": {\"items_per_second\": %.0f, \"cpu_time_ns\": %.3f},\n"
        "   \"current\": {\"items_per_second\": %.0f, \"cpu_time_ns\": "
        "%.3f},\n"
        "   \"overhead_percent\": %.3f,\n"
        "   \"graph_overhead_percent\": %.3f,\n"
        "   \"gated\": %s\n"
        "  }",
        line.workload.c_str(), line.items / line.off_s,
        line.off_s / line.items * 1e9, line.items / line.ring_s,
        line.ring_s / line.items * 1e9, line.ring_pct, line.graph_pct,
        line.gated ? "true" : "false");
  }
  json += "\n }\n}\n";

  std::FILE* file = std::fopen(out.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
