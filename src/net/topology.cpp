#include "net/topology.hpp"

#include <algorithm>
#include <cmath>

#include "common/strings.hpp"

namespace excovery::net {

namespace {

std::uint64_t pack_endpoints(NodeId a, NodeId b) noexcept {
  return a < b ? (static_cast<std::uint64_t>(a) << 32) | b
               : (static_cast<std::uint64_t>(b) << 32) | a;
}

}  // namespace

NodeId Topology::add_node(std::string name, std::optional<Address> address) {
  auto id = static_cast<NodeId>(nodes_.size());
  Address addr = address.value_or(Address::for_node(id + 1));
  nodes_.push_back(TopologyNode{std::move(name), addr, 0.0, 0.0});
  return id;
}

NodeId Topology::add_node(std::string name, double x, double y) {
  NodeId id = add_node(std::move(name));
  nodes_[id].x = x;
  nodes_[id].y = y;
  return id;
}

Status Topology::connect(NodeId a, NodeId b, const LinkModel& model) {
  if (a >= nodes_.size() || b >= nodes_.size()) {
    return err_invalid("link endpoint out of range");
  }
  if (a == b) return err_invalid("self-link not allowed");
  auto [it, inserted] = link_index_.try_emplace(
      pack_endpoints(a, b), static_cast<std::uint32_t>(links_.size()));
  if (!inserted) {
    return err_invalid(strings::format("nodes %u and %u already linked", a, b));
  }
  links_.push_back(Link{a, b, model});
  return {};
}

Result<NodeId> Topology::find(const std::string& name) const {
  // Fold nodes added since the last query into the index (append-only).
  for (; names_indexed_ < nodes_.size(); ++names_indexed_) {
    name_index_.try_emplace(nodes_[names_indexed_].name,
                            static_cast<NodeId>(names_indexed_));
  }
  auto it = name_index_.find(name);
  if (it != name_index_.end()) return it->second;
  return err_not_found("no node named '" + name + "'");
}

Result<NodeId> Topology::find(Address address) const {
  for (; addresses_indexed_ < nodes_.size(); ++addresses_indexed_) {
    address_index_.try_emplace(nodes_[addresses_indexed_].address.raw(),
                               static_cast<NodeId>(addresses_indexed_));
  }
  auto it = address_index_.find(address.raw());
  if (it != address_index_.end()) return it->second;
  return err_not_found("no node with address " + address.to_string());
}

std::vector<std::pair<NodeId, const LinkModel*>> Topology::neighbours(
    NodeId id) const {
  std::vector<std::pair<NodeId, const LinkModel*>> out;
  for (const Link& link : links_) {
    if (link.a == id) out.emplace_back(link.b, &link.model);
    if (link.b == id) out.emplace_back(link.a, &link.model);
  }
  return out;
}

std::ptrdiff_t Topology::link_index(NodeId a, NodeId b) const {
  if (a >= nodes_.size() || b >= nodes_.size() || a == b) return -1;
  auto it = link_index_.find(pack_endpoints(a, b));
  return it == link_index_.end() ? -1 : static_cast<std::ptrdiff_t>(it->second);
}

const LinkModel* Topology::link_between(NodeId a, NodeId b) const {
  std::ptrdiff_t index = link_index(a, b);
  return index < 0 ? nullptr : &links_[static_cast<std::size_t>(index)].model;
}

LinkModel* Topology::mutable_link_between(NodeId a, NodeId b) {
  std::ptrdiff_t index = link_index(a, b);
  return index < 0 ? nullptr : &links_[static_cast<std::size_t>(index)].model;
}

bool Topology::connected() const {
  if (nodes_.empty()) return true;
  // Flat CSR-style adjacency, built once: the former per-node neighbours()
  // scan made this O(V·E), which dominated mega-scale generation.
  std::vector<std::uint32_t> offset(nodes_.size() + 1, 0);
  for (const Link& link : links_) {
    offset[link.a + 1]++;
    offset[link.b + 1]++;
  }
  for (std::size_t i = 0; i < nodes_.size(); ++i) offset[i + 1] += offset[i];
  std::vector<NodeId> adjacency(offset[nodes_.size()]);
  std::vector<std::uint32_t> cursor(offset.begin(), offset.end() - 1);
  for (const Link& link : links_) {
    adjacency[cursor[link.a]++] = link.b;
    adjacency[cursor[link.b]++] = link.a;
  }
  std::vector<bool> seen(nodes_.size(), false);
  std::vector<NodeId> frontier;
  frontier.reserve(nodes_.size());
  frontier.push_back(0);
  seen[0] = true;
  std::size_t visited = 1;
  for (std::size_t head = 0; head < frontier.size(); ++head) {
    NodeId current = frontier[head];
    for (std::uint32_t i = offset[current]; i < offset[current + 1]; ++i) {
      NodeId next = adjacency[i];
      if (!seen[next]) {
        seen[next] = true;
        ++visited;
        frontier.push_back(next);
      }
    }
  }
  return visited == nodes_.size();
}

Topology Topology::chain(std::size_t length, const LinkModel& model) {
  Topology topo;
  for (std::size_t i = 0; i < length; ++i) {
    topo.add_node("n" + std::to_string(i), static_cast<double>(i), 0.0);
  }
  for (std::size_t i = 0; i + 1 < length; ++i) {
    (void)topo.connect(static_cast<NodeId>(i), static_cast<NodeId>(i + 1),
                       model);
  }
  return topo;
}

Topology Topology::grid(std::size_t width, std::size_t height,
                        const LinkModel& model) {
  Topology topo;
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      topo.add_node("n" + std::to_string(y * width + x),
                    static_cast<double>(x), static_cast<double>(y));
    }
  }
  auto id = [width](std::size_t x, std::size_t y) {
    return static_cast<NodeId>(y * width + x);
  };
  for (std::size_t y = 0; y < height; ++y) {
    for (std::size_t x = 0; x < width; ++x) {
      if (x + 1 < width) (void)topo.connect(id(x, y), id(x + 1, y), model);
      if (y + 1 < height) (void)topo.connect(id(x, y), id(x, y + 1), model);
    }
  }
  return topo;
}

Topology Topology::full_mesh(std::size_t size, const LinkModel& model) {
  Topology topo;
  for (std::size_t i = 0; i < size; ++i) {
    topo.add_node("n" + std::to_string(i));
  }
  for (std::size_t i = 0; i < size; ++i) {
    for (std::size_t j = i + 1; j < size; ++j) {
      (void)topo.connect(static_cast<NodeId>(i), static_cast<NodeId>(j),
                         model);
    }
  }
  return topo;
}

Result<Topology> Topology::random_geometric(std::size_t size, double radius,
                                            std::uint64_t seed,
                                            const LinkModel& model) {
  constexpr int kMaxAttempts = 64;
  RngFactory factory(seed);
  // Uniform-grid spatial index: cells at least `radius` wide, so every
  // neighbour of a node lies in its 3x3 cell block.  Cell count is bounded
  // by ~V cells to keep the index O(V) even for tiny radii.
  std::size_t cells_per_axis = 1;
  if (radius > 0.0 && radius < 1.0) {
    auto by_radius = static_cast<std::size_t>(1.0 / radius);
    auto by_nodes = static_cast<std::size_t>(
        std::sqrt(static_cast<double>(std::max<std::size_t>(size, 1)))) + 1;
    cells_per_axis = std::max<std::size_t>(1, std::min(by_radius, by_nodes));
  }
  for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
    Pcg32 rng = factory.stream("geometric-topology",
                               static_cast<std::uint64_t>(attempt));
    Topology topo;
    for (std::size_t i = 0; i < size; ++i) {
      topo.add_node("n" + std::to_string(i), rng.uniform01(), rng.uniform01());
    }
    // Bucket node ids by cell, in id order.
    auto cell_of = [cells_per_axis](double value) {
      auto cell = static_cast<std::size_t>(
          value * static_cast<double>(cells_per_axis));
      return std::min(cell, cells_per_axis - 1);
    };
    std::vector<std::vector<NodeId>> cells(cells_per_axis * cells_per_axis);
    for (std::size_t i = 0; i < size; ++i) {
      cells[cell_of(topo.nodes()[i].y) * cells_per_axis +
            cell_of(topo.nodes()[i].x)]
          .push_back(static_cast<NodeId>(i));
    }
    // For each node, candidates come from the 3x3 cell block; sorting the
    // higher-id candidates reproduces the exact link order (and therefore
    // byte-identical topologies) of the naive `for i { for j > i }` scan.
    std::vector<NodeId> candidates;
    for (std::size_t i = 0; i < size; ++i) {
      const double xi = topo.nodes()[i].x;
      const double yi = topo.nodes()[i].y;
      const std::size_t cx = cell_of(xi);
      const std::size_t cy = cell_of(yi);
      candidates.clear();
      for (std::size_t gy = cy > 0 ? cy - 1 : 0;
           gy <= std::min(cy + 1, cells_per_axis - 1); ++gy) {
        for (std::size_t gx = cx > 0 ? cx - 1 : 0;
             gx <= std::min(cx + 1, cells_per_axis - 1); ++gx) {
          for (NodeId j : cells[gy * cells_per_axis + gx]) {
            if (j > i) candidates.push_back(j);
          }
        }
      }
      std::sort(candidates.begin(), candidates.end());
      for (NodeId j : candidates) {
        double dx = xi - topo.nodes()[j].x;
        double dy = yi - topo.nodes()[j].y;
        if (std::sqrt(dx * dx + dy * dy) <= radius) {
          (void)topo.connect(static_cast<NodeId>(i), j, model);
        }
      }
    }
    if (topo.connected()) return topo;
  }
  return err_invalid(strings::format(
      "could not generate a connected geometric graph (size=%zu radius=%.3f)",
      size, radius));
}

}  // namespace excovery::net
