#include "core/description.hpp"

#include <algorithm>

#include "common/strings.hpp"
#include "xml/parser.hpp"
#include "xml/writer.hpp"

namespace excovery::core {

Result<FactorUsage> parse_factor_usage(const std::string& text) {
  std::string t = strings::to_lower(strings::trim(text));
  if (t == "blocking") return FactorUsage::kBlocking;
  if (t == "constant") return FactorUsage::kConstant;
  if (t == "random") return FactorUsage::kRandom;
  if (t == "replication") return FactorUsage::kReplication;
  return err_validation("unknown factor usage '" + text + "'");
}

std::string_view to_string(FactorUsage usage) noexcept {
  switch (usage) {
    case FactorUsage::kBlocking: return "blocking";
    case FactorUsage::kConstant: return "constant";
    case FactorUsage::kRandom: return "random";
    case FactorUsage::kReplication: return "replication";
  }
  return "?";
}

const ParamValue* ProcessAction::param(std::string_view name) const {
  for (const auto& [key, value] : params) {
    if (key == name) return &value;
  }
  return nullptr;
}

const Factor* ExperimentDescription::find_factor(std::string_view id) const {
  for (const Factor& factor : factors) {
    if (factor.id == id) return &factor;
  }
  return nullptr;
}

const ActorProcess* ExperimentDescription::find_actor(
    std::string_view actor_id) const {
  for (const ActorProcess& process : actor_processes) {
    if (process.actor_id == actor_id) return &process;
  }
  return nullptr;
}

std::string ExperimentDescription::info(const std::string& key) const {
  auto it = info_params.find(key);
  return it == info_params.end() ? "" : it->second.to_text();
}

// ===== parsing ==============================================================

namespace {

/// Parse a level element.  For actor_node_map factors, a level contains
/// <actor id="..."><instance id="0">A</instance>...</actor> children and
/// becomes a map actor-id -> array of node ids.  Plain levels become
/// string Values (typed coercion happens at use sites).
Result<Value> parse_level(const xml::Element& level, const std::string& type) {
  if (type == "actor_node_map") {
    ValueMap map;
    for (const xml::Element* actor : level.children_named("actor")) {
      EXC_ASSIGN_OR_RETURN(std::string actor_id, actor->require_attr("id"));
      ValueArray instances;
      for (const xml::Element* instance : actor->children_named("instance")) {
        instances.emplace_back(instance->text());
      }
      map.emplace(std::move(actor_id), Value{std::move(instances)});
    }
    return Value{std::move(map)};
  }
  return Value{strings::strip_quotes(level.text())};
}

Result<Factor> parse_factor(const xml::Element& element) {
  Factor factor;
  EXC_ASSIGN_OR_RETURN(factor.id, element.require_attr("id"));
  factor.type = element.attr_or("type", "string");
  EXC_ASSIGN_OR_RETURN(factor.usage,
                       parse_factor_usage(element.attr_or("usage", "constant")));
  EXC_ASSIGN_OR_RETURN(const xml::Element* levels,
                       element.require_child("levels"));
  for (const xml::Element* level : levels->children_named("level")) {
    EXC_ASSIGN_OR_RETURN(Value value, parse_level(*level, factor.type));
    factor.levels.push_back(std::move(value));
  }
  if (factor.levels.empty()) {
    return err_validation("factor '" + factor.id + "' has no levels");
  }
  return factor;
}

Result<NodeSetRef> parse_node_ref(const xml::Element& node) {
  NodeSetRef ref;
  ref.actor = node.attr_or("actor", "");
  ref.instance = node.attr_or("instance", "all");
  return ref;
}

Result<ParamValue> parse_param_value(const xml::Element& element) {
  if (const xml::Element* factorref = element.child("factorref")) {
    EXC_ASSIGN_OR_RETURN(std::string id, factorref->require_attr("id"));
    return ParamValue::factor(std::move(id));
  }
  if (const xml::Element* node = element.child("node")) {
    EXC_ASSIGN_OR_RETURN(NodeSetRef ref, parse_node_ref(*node));
    return ParamValue::nodes(std::move(ref));
  }
  return ParamValue::lit(Value{strings::strip_quotes(element.text())});
}

Result<ProcessAction> parse_action(const xml::Element& element) {
  ProcessAction action;
  action.name = std::string(element.name());
  for (const xml::Attribute& attr : element.attributes()) {
    action.params.emplace_back(std::string(attr.name),
                               ParamValue::lit(Value{std::string(attr.value)}));
  }
  for (const xml::Element& child : element.children()) {
    EXC_ASSIGN_OR_RETURN(ParamValue value, parse_param_value(child));
    action.params.emplace_back(std::string(child.name()), std::move(value));
  }
  // Bare text content (e.g. <event_flag>"done"</event_flag> shorthand)
  // becomes the "value" parameter.
  if (!element.has_children() && element.has_text() &&
      element.attributes().empty()) {
    action.params.emplace_back(
        "value", ParamValue::lit(Value{strings::strip_quotes(element.text())}));
  }
  return action;
}

Result<std::vector<ProcessAction>> parse_actions(const xml::Element& list) {
  std::vector<ProcessAction> actions;
  for (const xml::Element& child : list.children()) {
    EXC_ASSIGN_OR_RETURN(ProcessAction action, parse_action(child));
    actions.push_back(std::move(action));
  }
  return actions;
}

Result<PlatformNode> parse_platform_node(const xml::Element& element,
                                         bool requires_abstract) {
  PlatformNode node;
  EXC_ASSIGN_OR_RETURN(node.id, element.require_attr("id"));
  node.abstract_id = element.attr_or("abstract", "");
  node.address = element.attr_or("address", "");
  if (requires_abstract && node.abstract_id.empty()) {
    return err_validation("actor platform node '" + node.id +
                          "' missing abstract mapping");
  }
  return node;
}

}  // namespace

Result<ExperimentDescription> ExperimentDescription::from_xml(
    const xml::Element& root) {
  if (root.name() != "experiment") {
    return err_validation("root element must be <experiment>, got <" +
                          std::string(root.name()) + ">");
  }
  ExperimentDescription description;
  description.name = root.attr_or("name", "experiment");
  if (const std::string_view* seed = root.attr("seed")) {
    EXC_ASSIGN_OR_RETURN(std::int64_t s, Value{std::string(*seed)}.to_int());
    description.seed = static_cast<std::uint64_t>(s);
  }

  if (const xml::Element* params = root.child("parameterlist")) {
    for (const xml::Element* param : params->children_named("parameter")) {
      EXC_ASSIGN_OR_RETURN(std::string key, param->require_attr("key"));
      description.info_params.emplace(std::move(key), Value{param->text()});
    }
  }

  if (const xml::Element* nodes = root.child("nodelist")) {
    for (const xml::Element* node : nodes->children_named("node")) {
      EXC_ASSIGN_OR_RETURN(std::string id, node->require_attr("id"));
      description.abstract_nodes.push_back(std::move(id));
    }
  }

  if (const xml::Element* factorlist = root.child("factorlist")) {
    for (const xml::Element& child : factorlist->children()) {
      if (child.name() == "factor") {
        EXC_ASSIGN_OR_RETURN(Factor factor, parse_factor(child));
        if (factor.type == "actor_node_map") {
          description.node_factor_id = factor.id;
        }
        description.factors.push_back(std::move(factor));
      } else if (child.name() == "replicationfactor") {
        EXC_ASSIGN_OR_RETURN(description.replication_factor_id,
                             child.require_attr("id"));
        EXC_ASSIGN_OR_RETURN(std::int64_t n, Value{child.text()}.to_int());
        if (n < 1) return err_validation("replication factor must be >= 1");
        description.replications = static_cast<int>(n);
      }
    }
  }

  if (const xml::Element* processes = root.child("processes")) {
    for (const xml::Element& child : processes->children()) {
      if (child.name() == "node_process") {
        for (const xml::Element* actor : child.children_named("actor")) {
          ActorProcess process;
          EXC_ASSIGN_OR_RETURN(process.actor_id, actor->require_attr("id"));
          process.name = actor->attr_or("name", process.actor_id);
          if (const xml::Element* actions = actor->child("sd_actions")) {
            EXC_ASSIGN_OR_RETURN(process.actions, parse_actions(*actions));
          } else if (const xml::Element* generic = actor->child("actions")) {
            EXC_ASSIGN_OR_RETURN(process.actions, parse_actions(*generic));
          }
          description.actor_processes.push_back(std::move(process));
        }
      } else if (child.name() == "manipulation_process") {
        ManipulationProcess process;
        EXC_ASSIGN_OR_RETURN(process.node_id, child.require_attr("node"));
        if (const xml::Element* actions = child.child("actions")) {
          EXC_ASSIGN_OR_RETURN(process.actions, parse_actions(*actions));
        }
        description.manipulation_processes.push_back(std::move(process));
      } else if (child.name() == "env_process") {
        EnvProcess process;
        if (const xml::Element* actions = child.child("env_actions")) {
          EXC_ASSIGN_OR_RETURN(process.actions, parse_actions(*actions));
        }
        description.env_processes.push_back(std::move(process));
      }
    }
  }

  if (const xml::Element* platform = root.child("platform")) {
    if (const xml::Element* actors = platform->child("actor_nodes")) {
      for (const xml::Element* node : actors->children_named("node")) {
        EXC_ASSIGN_OR_RETURN(PlatformNode parsed,
                             parse_platform_node(*node, true));
        description.platform.actor_nodes.push_back(std::move(parsed));
      }
    }
    if (const xml::Element* envs = platform->child("environment_nodes")) {
      for (const xml::Element* node : envs->children_named("node")) {
        EXC_ASSIGN_OR_RETURN(PlatformNode parsed,
                             parse_platform_node(*node, false));
        description.platform.environment_nodes.push_back(std::move(parsed));
      }
    }
  }

  return description;
}

Result<ExperimentDescription> ExperimentDescription::parse(
    const std::string& xml_text) {
  EXC_ASSIGN_OR_RETURN(xml::Document doc, xml::parse(xml_text));
  EXC_ASSIGN_OR_RETURN(ExperimentDescription description,
                       from_xml(doc.root()));
  EXC_TRY(description.validate());
  return description;
}

// ===== serialisation ========================================================

namespace {

void write_level(const Value& level, const std::string& type,
                 xml::Element& parent) {
  xml::Element& element = parent.add_child("level");
  if (type == "actor_node_map" && level.is_map()) {
    for (const auto& [actor_id, instances] : level.as_map()) {
      xml::Element& actor = element.add_child("actor");
      actor.set_attr("id", actor_id);
      if (instances.is_array()) {
        int index = 0;
        for (const Value& instance : instances.as_array()) {
          xml::Element& inst = actor.add_child("instance");
          inst.set_attr("id", std::to_string(index++));
          inst.set_text(instance.to_text());
        }
      }
    }
  } else {
    element.set_text(level.to_text());
  }
}

void write_param(const std::string& name, const ParamValue& value,
                 xml::Element& action) {
  xml::Element& element = action.add_child(name);
  switch (value.kind) {
    case ParamValue::Kind::kLiteral:
      element.set_text(value.literal.to_text());
      break;
    case ParamValue::Kind::kFactorRef:
      element.add_child("factorref").set_attr("id", value.factor_id);
      break;
    case ParamValue::Kind::kNodeSet: {
      xml::Element& node = element.add_child("node");
      if (!value.node_set.actor.empty()) {
        node.set_attr("actor", value.node_set.actor);
      }
      node.set_attr("instance", value.node_set.instance);
      break;
    }
  }
}

void write_actions(const std::vector<ProcessAction>& actions,
                   xml::Element& list) {
  for (const ProcessAction& action : actions) {
    xml::Element& element = list.add_child(action.name);
    for (const auto& [name, value] : action.params) {
      write_param(name, value, element);
    }
  }
}

}  // namespace

xml::Document ExperimentDescription::to_xml() const {
  xml::Document doc("experiment");
  xml::Element& root = doc.root();
  root.set_attr("name", name);
  root.set_attr("seed", std::to_string(seed));

  if (!info_params.empty()) {
    xml::Element& params = root.add_child("parameterlist");
    for (const auto& [key, value] : info_params) {
      xml::Element& param = params.add_child("parameter");
      param.set_attr("key", key);
      param.set_text(value.to_text());
    }
  }

  xml::Element& nodes = root.add_child("nodelist");
  for (const std::string& id : abstract_nodes) {
    nodes.add_child("node").set_attr("id", id);
  }

  xml::Element& factorlist = root.add_child("factorlist");
  for (const Factor& factor : factors) {
    xml::Element& element = factorlist.add_child("factor");
    element.set_attr("id", factor.id);
    element.set_attr("type", factor.type);
    element.set_attr("usage", std::string(to_string(factor.usage)));
    xml::Element& levels = element.add_child("levels");
    for (const Value& level : factor.levels) {
      write_level(level, factor.type, levels);
    }
  }
  xml::Element& replication = factorlist.add_child("replicationfactor");
  replication.set_attr("usage", "replication");
  replication.set_attr("type", "int");
  replication.set_attr("id", replication_factor_id);
  replication.set_text(std::to_string(replications));

  xml::Element& processes = root.add_child("processes");
  if (!actor_processes.empty()) {
    xml::Element& node_process = processes.add_child("node_process");
    for (const ActorProcess& process : actor_processes) {
      xml::Element& actor = node_process.add_child("actor");
      actor.set_attr("id", process.actor_id);
      actor.set_attr("name", process.name);
      xml::Element& actions = actor.add_child("sd_actions");
      write_actions(process.actions, actions);
    }
  }
  for (const ManipulationProcess& process : manipulation_processes) {
    xml::Element& element = processes.add_child("manipulation_process");
    element.set_attr("node", process.node_id);
    xml::Element& actions = element.add_child("actions");
    write_actions(process.actions, actions);
  }
  for (const EnvProcess& process : env_processes) {
    xml::Element& element = processes.add_child("env_process");
    xml::Element& actions = element.add_child("env_actions");
    write_actions(process.actions, actions);
  }

  xml::Element& platform_element = root.add_child("platform");
  xml::Element& actor_nodes = platform_element.add_child("actor_nodes");
  for (const PlatformNode& node : platform.actor_nodes) {
    xml::Element& element = actor_nodes.add_child("node");
    element.set_attr("id", node.id);
    element.set_attr("abstract", node.abstract_id);
    if (!node.address.empty()) element.set_attr("address", node.address);
  }
  xml::Element& env_nodes = platform_element.add_child("environment_nodes");
  for (const PlatformNode& node : platform.environment_nodes) {
    xml::Element& element = env_nodes.add_child("node");
    element.set_attr("id", node.id);
    if (!node.address.empty()) element.set_attr("address", node.address);
  }

  return doc;
}

std::string ExperimentDescription::to_xml_text() const {
  return xml::write(to_xml());
}

// ===== validation ===========================================================

Status ExperimentDescription::validate() const {
  std::vector<std::string> problems;

  if (abstract_nodes.empty()) {
    problems.push_back("no abstract nodes declared");
  }
  if (replications < 1) problems.push_back("replications must be >= 1");

  // Factor ids unique.
  for (std::size_t i = 0; i < factors.size(); ++i) {
    for (std::size_t j = i + 1; j < factors.size(); ++j) {
      if (factors[i].id == factors[j].id) {
        problems.push_back("duplicate factor id '" + factors[i].id + "'");
      }
    }
  }

  // The actor map factor (if present) must reference declared abstract
  // nodes and declared actor processes.
  if (!node_factor_id.empty()) {
    const Factor* node_factor = find_factor(node_factor_id);
    if (!node_factor) {
      problems.push_back("node factor '" + node_factor_id + "' not found");
    } else {
      for (const Value& level : node_factor->levels) {
        if (!level.is_map()) {
          problems.push_back("actor_node_map level is not a map");
          continue;
        }
        for (const auto& [actor_id, instances] : level.as_map()) {
          if (!find_actor(actor_id)) {
            problems.push_back("actor map references undefined actor '" +
                               actor_id + "'");
          }
          if (instances.is_array()) {
            for (const Value& instance : instances.as_array()) {
              const std::string node = instance.to_text();
              if (std::find(abstract_nodes.begin(), abstract_nodes.end(),
                            node) == abstract_nodes.end()) {
                problems.push_back("actor map references undeclared node '" +
                                   node + "'");
              }
            }
          }
        }
      }
    }
  } else if (!actor_processes.empty()) {
    problems.push_back(
        "actor processes defined but no actor_node_map factor present");
  }

  // Manipulation processes must target declared abstract nodes.
  for (const ManipulationProcess& process : manipulation_processes) {
    if (std::find(abstract_nodes.begin(), abstract_nodes.end(),
                  process.node_id) == abstract_nodes.end()) {
      problems.push_back("manipulation process targets undeclared node '" +
                         process.node_id + "'");
    }
  }

  // Every factorref in any process must resolve.
  auto check_actions = [&](const std::vector<ProcessAction>& actions,
                           const std::string& where) {
    for (const ProcessAction& action : actions) {
      for (const auto& [param_name, value] : action.params) {
        if (value.kind == ParamValue::Kind::kFactorRef &&
            !find_factor(value.factor_id) &&
            value.factor_id != replication_factor_id) {
          problems.push_back(where + ": action '" + action.name +
                             "' references unknown factor '" +
                             value.factor_id + "' in parameter '" +
                             param_name + "'");
        }
      }
    }
  };
  for (const ActorProcess& process : actor_processes) {
    check_actions(process.actions, "actor " + process.actor_id);
  }
  for (const ManipulationProcess& process : manipulation_processes) {
    check_actions(process.actions, "manipulation on " + process.node_id);
  }
  for (const EnvProcess& process : env_processes) {
    check_actions(process.actions, "env process");
  }

  // Platform mapping: every abstract node needs a concrete node.
  if (!platform.actor_nodes.empty()) {
    for (const std::string& abstract : abstract_nodes) {
      bool mapped = std::any_of(platform.actor_nodes.begin(),
                                platform.actor_nodes.end(),
                                [&](const PlatformNode& node) {
                                  return node.abstract_id == abstract;
                                });
      if (!mapped) {
        problems.push_back("abstract node '" + abstract +
                           "' has no platform mapping");
      }
    }
  }

  if (problems.empty()) return {};
  return err_validation(strings::join(problems, "; "));
}

// ===== schema ===============================================================

const xml::Schema& description_schema() {
  static const xml::Schema schema = [] {
    xml::Schema s;
    s.element("experiment")
        .attr("name")
        .attr("seed")
        .child("parameterlist", xml::Occurs::optional())
        .child("nodelist", xml::Occurs::required())
        .child("factorlist", xml::Occurs::required())
        .child("processes", xml::Occurs::required())
        .child("platform", xml::Occurs::optional())
        .no_text();
    s.element("parameterlist")
        .child("parameter", xml::Occurs::any())
        .no_text();
    s.element("parameter").attr("key", /*required=*/true);
    s.element("nodelist").child("node", xml::Occurs::at_least(1)).no_text();
    s.element("factorlist")
        .child("factor", xml::Occurs::any())
        .child("replicationfactor", xml::Occurs::optional())
        .no_text();
    s.element("factor")
        .attr("id", true)
        .attr("type")
        .attr("usage", false,
              {"blocking", "constant", "random", "replication"})
        .child("levels", xml::Occurs::required())
        .child("description", xml::Occurs::optional())
        .no_text();
    s.element("levels").child("level", xml::Occurs::at_least(1)).no_text();
    s.element("level").open_children();
    s.element("replicationfactor").attr("id", true).attr("type").attr("usage");
    s.element("processes")
        .child("node_process", xml::Occurs::any())
        .child("manipulation_process", xml::Occurs::any())
        .child("env_process", xml::Occurs::any())
        .no_text();
    s.element("node_process")
        .child("actor", xml::Occurs::any())
        .child("nodes", xml::Occurs::optional())
        .no_text();
    s.element("actor")
        .attr("id", true)
        .attr("name")
        .child("sd_actions", xml::Occurs::optional())
        .child("actions", xml::Occurs::optional())
        .open_children()  // also appears inside actor_node_map levels
        .open_attrs()
        .no_text();
    s.element("manipulation_process")
        .attr("node", true)
        .child("actions", xml::Occurs::optional())
        .no_text();
    s.element("env_process")
        .child("env_actions", xml::Occurs::optional())
        .no_text();
    // Action lists hold arbitrary action elements (plugins can add more).
    s.element("sd_actions").open_children().no_text();
    s.element("actions").open_children().no_text();
    s.element("env_actions").open_children().no_text();
    s.element("factorref").attr("id", true);
    s.element("platform")
        .child("actor_nodes", xml::Occurs::optional())
        .child("environment_nodes", xml::Occurs::optional())
        .no_text();
    s.element("actor_nodes").child("node", xml::Occurs::any()).no_text();
    s.element("environment_nodes").child("node", xml::Occurs::any()).no_text();
    // <node> appears both as declaration and selector; keep attrs open.
    s.element("node").attr("id").attr("abstract").attr("address")
        .attr("actor").attr("instance");
    return s;
  }();
  return schema;
}

}  // namespace excovery::core
