// A small XML document object model.
//
// ExCovery's abstract experiment description is an XML document (§IV-C of
// the paper; Figures 4-10 show fragments).  This DOM supports everything
// those documents need: elements with attributes, text content, comments,
// and stable child ordering.  Namespaces and DTDs are out of scope.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/error.hpp"

namespace excovery::xml {

class Element;
using ElementPtr = std::unique_ptr<Element>;

/// One attribute (name="value"), order-preserving within an element.
struct Attribute {
  std::string name;
  std::string value;
};

/// An XML element node.  Children are owned.  Text content is modelled as
/// interleaved text segments so mixed content round-trips, but the common
/// access pattern is `text()` which concatenates and trims.
class Element {
 public:
  explicit Element(std::string name) : name_(std::move(name)) {}

  Element(const Element&) = delete;
  Element& operator=(const Element&) = delete;

  const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // --- attributes -------------------------------------------------------
  const std::vector<Attribute>& attributes() const noexcept { return attrs_; }
  /// Attribute value or nullptr.
  const std::string* attr(std::string_view name) const noexcept;
  /// Attribute value or a default.
  std::string attr_or(std::string_view name, std::string_view fallback) const;
  /// Attribute value or error (for required attributes).
  Result<std::string> require_attr(std::string_view name) const;
  /// Set (replace or append) an attribute.
  Element& set_attr(std::string_view name, std::string_view value);
  bool has_attr(std::string_view name) const noexcept {
    return attr(name) != nullptr;
  }

  // --- children ---------------------------------------------------------
  const std::vector<ElementPtr>& children() const noexcept { return children_; }
  /// Append a new child element and return a reference to it.
  Element& add_child(std::string name);
  /// Append an existing element subtree.
  Element& adopt(ElementPtr child);
  /// First child with the given name, or nullptr.
  const Element* child(std::string_view name) const noexcept;
  Element* child(std::string_view name) noexcept;
  /// First child with the given name, or error.
  Result<const Element*> require_child(std::string_view name) const;
  /// All children with the given name, in document order.
  std::vector<const Element*> children_named(std::string_view name) const;
  std::size_t child_count() const noexcept { return children_.size(); }

  // --- text -------------------------------------------------------------
  /// Concatenated, whitespace-trimmed character data of this element
  /// (excluding descendants).
  std::string text() const;
  /// Raw character data segments in document order.
  const std::vector<std::string>& text_segments() const noexcept {
    return text_segments_;
  }
  void append_text(std::string_view text);
  /// Replace all text content.
  Element& set_text(std::string_view text);
  /// Convenience: add `<name>text</name>` child.
  Element& add_text_child(std::string name, std::string_view text);

  /// Deep copy of this subtree.
  ElementPtr clone() const;

  /// Structural equality (name, attributes, trimmed text, children).
  bool equals(const Element& other) const;

 private:
  std::string name_;
  std::vector<Attribute> attrs_;
  std::vector<ElementPtr> children_;
  std::vector<std::string> text_segments_;
};

/// A parsed document: the root element plus any top-level comments kept for
/// fidelity of round-trips.
struct Document {
  ElementPtr root;
};

}  // namespace excovery::xml
