// Extraction and analysis of event- and packet-based metrics from level-3
// packages (§VI: "A set of functions exist for extraction and analysis of
// event and packet based metrics").
//
// The headline metric is responsiveness: "the probability that a number of
// SMs is found within a deadline, as required by the application calling
// SD" — the property the paper's case-study experiments ([25], [26])
// evaluate.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "stats/metrics.hpp"
#include "storage/package.hpp"

namespace excovery::stats {

/// The discovery outcome of one run from one searching node's perspective.
struct RunDiscovery {
  std::int64_t run_id = 0;
  std::string searcher;                     ///< SU node
  double search_start = 0.0;                ///< sd_start_search common time
  /// Provider identifier -> discovery latency t_R in seconds (time from
  /// search start to the sd_service_add event carrying that identifier).
  std::map<std::string, double> latencies;
  bool timed_out = false;                   ///< a wait_timeout followed
};

/// Extract per-run discovery outcomes for every searching node.
Result<std::vector<RunDiscovery>> discoveries(
    const storage::ExperimentPackage& package);

/// Responsiveness: fraction of runs in which the searcher discovered at
/// least `required` providers within `deadline_s` of starting its search.
/// One trial per (run, searcher).  Wilson 95% bounds included.
Result<Proportion> responsiveness(const storage::ExperimentPackage& package,
                                  double deadline_s, std::size_t required);

/// All individual discovery latencies (seconds), for distribution plots.
Result<std::vector<double>> discovery_latencies(
    const storage::ExperimentPackage& package);

/// First-discovery latency per (run, searcher) — the paper's t_R for the
/// one-shot process of Fig. 11.
Result<std::vector<double>> first_latencies(
    const storage::ExperimentPackage& package);

// ---- packet-level metrics ---------------------------------------------------

/// Per-run packet statistics derived from captures.
struct PacketStats {
  std::int64_t run_id = 0;
  std::size_t captured = 0;       ///< capture entries (tx + rx)
  std::size_t transmitted = 0;
  std::size_t received = 0;
  std::size_t sd_messages = 0;    ///< captures whose payload decodes as SD
  double bytes = 0.0;
};
Result<std::vector<PacketStats>> packet_stats(
    const storage::ExperimentPackage& package);

/// A matched SD request/response pair (via the transaction id the paper's
/// Avahi modification introduces, §VI).
struct RequestResponsePair {
  std::int64_t run_id = 0;
  std::uint32_t txn_id = 0;
  std::string requester;   ///< node that captured the query transmit
  std::string responder;   ///< node that sent the response
  double request_time = 0.0;
  double response_time = 0.0;  ///< first response arrival at the requester
  double rtt() const { return response_time - request_time; }
};

/// Pair queries with their responses at the requesting node.  Enables
/// "analysis of response times not only on SD operation level but on the
/// level of individual SD request and response packets".
Result<std::vector<RequestResponsePair>> pair_requests(
    const storage::ExperimentPackage& package);

/// Verify the causal sanity of the conditioned timeline: for every matched
/// pair, the response must not precede the request.  Returns the number of
/// causal violations (should be 0 after conditioning; large clock offsets
/// without conditioning produce violations — tests rely on this contrast).
Result<std::size_t> causal_violations(
    const storage::ExperimentPackage& package);

/// Packet-tracking analysis (§IV-A3 requires the platform to track packet
/// routes hop by hop): distribution of route lengths (hops traversed) over
/// all captured receptions, useful to verify multi-hop behaviour and to
/// derive "statistical connection parameters" (§IV-B2).
struct RouteStats {
  std::size_t receptions = 0;
  double mean_hops = 0.0;
  int max_hops = 0;
  /// hops -> count
  std::map<int, std::size_t> distribution;
};
Result<RouteStats> route_stats(const storage::ExperimentPackage& package);

/// Cross-node causal check built on the packet tracker's unique ids: a
/// packet must never be received (receiver clock) before it was sent
/// (sender clock).  Unlike causal_violations this compares timestamps from
/// *different* clocks, so it directly measures whether conditioning
/// established a valid global time line (§IV-B3: "avoiding causal
/// conflicts due to local clocks deviating").
Result<std::size_t> propagation_violations(
    const storage::ExperimentPackage& package);

}  // namespace excovery::stats
