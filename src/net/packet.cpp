#include "net/packet.hpp"

#include "common/bytes.hpp"

namespace excovery::net {

Bytes capture_to_wire(const CapturedPacket& captured) {
  ByteWriter w;
  w.u8(captured.direction == Direction::kReceive ? 0 : 1);
  const Packet& p = captured.packet;
  w.u32(p.src.raw());
  w.u32(p.dst.raw());
  w.u16(p.src_port);
  w.u16(p.dst_port);
  w.u8(p.ttl);
  w.u16(p.tag);
  w.u64(p.uid);
  w.u16(static_cast<std::uint16_t>(p.route.size()));
  for (NodeId hop : p.route) w.u32(hop);
  w.blob(p.payload);
  return w.take();
}

Result<WireImage> capture_from_wire(const Bytes& data) {
  ByteReader r(data);
  WireImage image;
  EXC_ASSIGN_OR_RETURN(std::uint8_t direction, r.u8());
  image.direction =
      direction == 0 ? Direction::kReceive : Direction::kTransmit;
  Packet& p = image.packet;
  EXC_ASSIGN_OR_RETURN(std::uint32_t src, r.u32());
  p.src = Address(src);
  EXC_ASSIGN_OR_RETURN(std::uint32_t dst, r.u32());
  p.dst = Address(dst);
  EXC_ASSIGN_OR_RETURN(p.src_port, r.u16());
  EXC_ASSIGN_OR_RETURN(p.dst_port, r.u16());
  EXC_ASSIGN_OR_RETURN(p.ttl, r.u8());
  EXC_ASSIGN_OR_RETURN(p.tag, r.u16());
  EXC_ASSIGN_OR_RETURN(p.uid, r.u64());
  EXC_ASSIGN_OR_RETURN(std::uint16_t hops, r.u16());
  for (std::uint16_t i = 0; i < hops; ++i) {
    EXC_ASSIGN_OR_RETURN(std::uint32_t hop, r.u32());
    p.route.push_back(hop);
  }
  EXC_ASSIGN_OR_RETURN(p.payload, r.blob());
  return image;
}

}  // namespace excovery::net
