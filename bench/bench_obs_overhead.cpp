// Observability overhead gate (DESIGN.md §11).
//
// Two promises are checked, on the same workloads bench_kernel_hotpath
// tracks:
//
//  1. Kernel throughput: the runtime-toggleable instrumentation the obs
//     layer adds to kernel hot paths — per-link packet counting
//     (Network::enable_link_stats) and the per-attempt kernel-counter
//     sampling into a MetricsShard — must cost under 3% of flood/unicast/
//     scheduler-churn throughput.  Per-packet lifecycle tracing is measured
//     too but not gated: it is explicitly opt-in (--packet-trace) because
//     one async pair per packet is never free.
//  2. Out-of-band-ness: a full experiment executed with an ObsContext
//     attached (metrics + trace + packet lifecycles) produces a
//     byte-identical conditioned package and is reported for context.
//
// Results go to BENCH_obs.json (curated format, bench/collect_bench.py).
//
// Flags:
//   --smoke     tiny iteration counts, no JSON, WARN-only gate — CI gate
//   --reps N    repetitions per mode (default 5, median taken)
//   --out PATH  override the JSON output path (default BENCH_obs.json)
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/strings.hpp"
#include "net/network.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "sim/scheduler.hpp"

namespace {

using excovery::Bytes;
using excovery::Result;
using excovery::net::Address;
using excovery::net::NodeId;
using excovery::net::Packet;
using excovery::sim::SimDuration;
using namespace excovery::core;
using scenario::TwoPartyOptions;

enum class Mode { kOff, kMetrics, kTrace };

double median(std::vector<double> values) {
  std::sort(values.begin(), values.end());
  return values[values.size() / 2];
}

excovery::net::LinkModel lossless_link() {
  excovery::net::LinkModel model = excovery::net::LinkModel::ideal();
  model.loss = 0.0;
  model.jitter_frac = 0.0;
  return model;
}

/// Install the obs-layer packet hook shape on a bench network: lifecycle
/// events rendered into a live TraceBuffer, like RunExecutor::on_packet_trace.
void install_packet_hook(excovery::net::Network& network,
                         excovery::obs::TraceBuffer& trace,
                         excovery::sim::Scheduler& scheduler) {
  namespace obs = excovery::obs;
  namespace net = excovery::net;
  network.set_packet_trace_hook(
      [&trace, &scheduler](const net::PacketTraceEvent& event) {
        const std::int64_t ts = scheduler.now().nanos();
        std::string pkt = excovery::strings::format(
            "pkt %llu", static_cast<unsigned long long>(event.uid));
        switch (event.kind) {
          case net::PacketTraceEvent::Kind::kSend:
            trace.async_begin(obs::Track::kSim, event.uid, std::move(pkt),
                              "packet", ts);
            break;
          case net::PacketTraceEvent::Kind::kDeliver:
          case net::PacketTraceEvent::Kind::kDrop:
            trace.async_end(obs::Track::kSim, event.uid, std::move(pkt),
                            "packet", ts);
            break;
          default:
            trace.instant(obs::Track::kSim, 0, std::move(pkt), "packet", ts);
            break;
        }
      });
}

/// Multicast flood over an n x n grid — the dominant packet path of mesh
/// campaigns.  kMetrics adds per-link counting; kTrace adds the packet hook.
double flood_grid(Mode mode, std::size_t side, int floods) {
  excovery::sim::Scheduler scheduler;
  excovery::net::Network network(
      scheduler, excovery::net::Topology::grid(side, side, lossless_link()),
      /*seed=*/7);
  network.set_capture_enabled(false);
  excovery::obs::TraceBuffer trace(true);
  if (mode != Mode::kOff) network.enable_link_stats();
  if (mode == Mode::kTrace) install_packet_hook(network, trace, scheduler);

  const Address group = Address::sd_multicast();
  std::uint64_t delivered = 0;
  for (NodeId n = 0; n < network.node_count(); ++n) {
    network.join_group(n, group);
    network.bind(n, excovery::net::kSdPort,
                 [&delivered](NodeId, const Packet&) { ++delivered; });
  }
  auto send_flood = [&] {
    Packet packet;
    packet.dst = group;
    packet.dst_port = excovery::net::kSdPort;
    packet.ttl = 32;
    packet.payload.assign(512, 0x6B);
    (void)network.send(0, std::move(packet));
  };
  send_flood();  // warm-up
  scheduler.run();
  network.reset_run_state();

  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < floods; ++i) {
    send_flood();
    scheduler.run();
    network.reset_run_state();  // clear dedup sets between floods
  }
  auto stop = std::chrono::steady_clock::now();
  if (delivered == 0) std::abort();
  return std::chrono::duration<double>(stop - start).count();
}

/// Unicast hop chain: every packet crosses length-1 links.
double unicast_chain(Mode mode, std::size_t length, int batches) {
  excovery::sim::Scheduler scheduler;
  excovery::net::Network network(
      scheduler, excovery::net::Topology::chain(length, lossless_link()),
      /*seed=*/7);
  network.set_capture_enabled(false);
  excovery::obs::TraceBuffer trace(true);
  if (mode != Mode::kOff) network.enable_link_stats();
  if (mode == Mode::kTrace) install_packet_hook(network, trace, scheduler);

  const NodeId last = static_cast<NodeId>(length - 1);
  std::uint64_t delivered = 0;
  network.bind(last, 4000,
               [&delivered](NodeId, const Packet&) { ++delivered; });
  auto send_one = [&] {
    Packet packet;
    // Node addresses are for_node(id + 1) — .0 is reserved — so resolve the
    // destination through the topology rather than hand-computing it.
    packet.dst = network.topology().node(last).address;
    packet.dst_port = 4000;
    packet.payload.assign(256, 0x5A);
    (void)network.send(0, std::move(packet));
  };
  send_one();  // warm-up
  scheduler.run();

  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < batches; ++i) {
    for (int j = 0; j < 16; ++j) send_one();
    scheduler.run();
  }
  auto stop = std::chrono::steady_clock::now();
  if (delivered == 0) std::abort();
  return std::chrono::duration<double>(stop - start).count();
}

/// Scheduler schedule/run churn with the per-attempt sampling the obs layer
/// performs: counter reads + shard adds once per batch (one batch stands in
/// for one run attempt).
double scheduler_churn(Mode mode, std::size_t batch, int iterations) {
  excovery::sim::Scheduler scheduler;
  excovery::obs::MetricsRegistry registry;
  excovery::obs::MetricsShard shard(&registry);
  const excovery::obs::MetricId executed_id =
      registry.counter("sched.events_executed");
  const excovery::obs::MetricId pending_id = registry.gauge("sched.pending");

  std::uint64_t sink = 0;
  for (std::size_t i = 0; i < batch; ++i) {  // warm internal pools
    scheduler.schedule(SimDuration(static_cast<std::int64_t>(i)),
                       [&sink, i] { sink += i; });
  }
  scheduler.run();

  auto start = std::chrono::steady_clock::now();
  std::uint64_t last_executed = scheduler.executed();
  for (int it = 0; it < iterations; ++it) {
    for (std::size_t i = 0; i < batch; ++i) {
      scheduler.schedule(SimDuration(static_cast<std::int64_t>(i % 64)),
                         [&sink, i] { sink += i; });
    }
    scheduler.run();
    if (mode != Mode::kOff) {
      const std::uint64_t executed = scheduler.executed();
      shard.add(executed_id, executed - last_executed);
      last_executed = executed;
      shard.set_gauge(pending_id,
                      static_cast<std::int64_t>(scheduler.max_pending()));
    }
  }
  auto stop = std::chrono::steady_clock::now();
  if (sink == 0) std::abort();
  return std::chrono::duration<double>(stop - start).count();
}

struct Workload {
  std::string name;
  double items_per_iteration = 0.0;  ///< for items/s reporting
  std::function<double(Mode)> run;   ///< returns seconds for the fixed loop
};

std::string today() {
  std::time_t now = std::time(nullptr);
  char buffer[32];
  std::strftime(buffer, sizeof buffer, "%Y-%m-%d", std::localtime(&now));
  return buffer;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int reps = 5;
  std::string out = "BENCH_obs.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
      reps = 3;
    } else if (std::strcmp(argv[i], "--reps") == 0 && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--smoke] [--reps N] [--out PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  const int floods = smoke ? 100 : 600;
  const int batches = smoke ? 2000 : 20000;
  const int churns = smoke ? 500 : 4000;
  std::vector<Workload> workloads;
  workloads.push_back(
      {"flood_grid_8x8", static_cast<double>(floods) * 64,
       [floods](Mode mode) { return flood_grid(mode, 8, floods); }});
  workloads.push_back(
      {"unicast_chain_8", static_cast<double>(batches) * 16 * 7,
       [batches](Mode mode) { return unicast_chain(mode, 8, batches); }});
  workloads.push_back(
      {"sched_churn_1024", static_cast<double>(churns) * 1024,
       [churns](Mode mode) { return scheduler_churn(mode, 1024, churns); }});

  std::printf("obs overhead bench: %d repetitions per mode%s\n", reps,
              smoke ? " (smoke)" : "");

  const Mode kModes[] = {Mode::kOff, Mode::kMetrics, Mode::kTrace};
  const double budget_percent = 3.0;
  bool over_budget = false;
  struct Line {
    std::string workload;
    double off_s = 0.0, metrics_s = 0.0, trace_s = 0.0;
    double items = 0.0;
  };
  std::vector<Line> lines;

  for (const Workload& workload : workloads) {
    std::vector<double> times[3];
    // Interleave modes within each repetition so clock drift (thermal,
    // noisy neighbours) biases no mode.
    for (int rep = 0; rep < reps; ++rep) {
      for (std::size_t m = 0; m < 3; ++m) {
        times[m].push_back(workload.run(kModes[m]));
      }
    }
    Line line;
    line.workload = workload.name;
    line.items = workload.items_per_iteration;
    line.off_s = median(times[0]);
    line.metrics_s = median(times[1]);
    line.trace_s = median(times[2]);
    const double metrics_pct =
        (line.metrics_s - line.off_s) / line.off_s * 100.0;
    const double trace_pct = (line.trace_s - line.off_s) / line.off_s * 100.0;
    std::printf("  %-18s off %8.2f Mitems/s   metrics %+6.2f%% %s   "
                "trace %+7.2f%% (not gated)\n",
                workload.name.c_str(), line.items / line.off_s / 1e6,
                metrics_pct,
                metrics_pct <= budget_percent ? "PASS" : "OVER-BUDGET",
                trace_pct);
    if (metrics_pct > budget_percent) over_budget = true;
    lines.push_back(std::move(line));
  }

  // Out-of-band check on a real experiment: attaching the full obs stack
  // (metrics + spans + packet lifecycles) must not change the package.
  TwoPartyOptions options;
  options.replications = smoke ? 6 : 40;
  options.environment_count = 1;
  excovery::obs::ObsConfig obs_config;
  obs_config.trace = true;
  obs_config.packet_trace = true;
  obs_config.progress_interval_s = 1e9;
  excovery::obs::ObsContext obs(obs_config);
  MasterOptions with_obs;
  with_obs.obs = &obs;
  Result<excovery::bench::Executed> plain =
      excovery::bench::execute(options, 42);
  Result<excovery::bench::Executed> observed =
      excovery::bench::execute(options, 42, {}, std::move(with_obs));
  if (!plain.ok() || !observed.ok()) {
    std::fprintf(stderr, "experiment execution failed\n");
    return 1;
  }
  if (plain.value().package.database().serialize() !=
      observed.value().package.database().serialize()) {
    std::fprintf(stderr, "FAIL: obs attachment changed the package bytes\n");
    return 1;
  }
  std::printf("  package bit-identical with full obs attached "
              "(%zu trace events, %zu ledger entries)\n",
              obs.trace().size(), obs.ledger().size());

  if (over_budget && !smoke) {
    std::fprintf(stderr, "FAIL: metrics-mode kernel overhead exceeds %.1f%%\n",
                 budget_percent);
    return 1;
  }
  if (smoke) return 0;

  std::string json;
  json += "{\n";
  json +=
      " \"description\": \"Observability kernel overhead "
      "(bench/bench_obs_overhead.cpp, DESIGN.md \\u00a711), on the "
      "bench_kernel_hotpath workloads. 'seed' = the workload with no obs "
      "instrumentation active (link stats off, no packet hook, no shard "
      "sampling — the pre-obs behaviour); 'current' = the same workload "
      "with metrics-grade instrumentation enabled (per-link packet "
      "counters plus per-batch kernel-counter sampling into a "
      "MetricsShard). overhead_percent is the gated value (budget 3%); "
      "trace_overhead_percent additionally installs the per-packet "
      "lifecycle hook emitting into a live TraceBuffer, which is opt-in "
      "and not gated. Median over interleaved repetitions; the bench also "
      "verifies a full experiment package is bit-identical with the "
      "complete obs stack attached.\",\n";
  json += " \"machine\": \"vm\",\n";
  json += " \"date\": \"" + today() + "\",\n";
  json += " \"benchmarks\": {\n";
  bool first = true;
  for (const Line& line : lines) {
    if (!first) json += ",\n";
    first = false;
    json += excovery::strings::format(
        "  \"BM_ObsOverhead/%s\": {\n"
        "   \"seed\": {\"items_per_second\": %.0f, \"cpu_time_ns\": %.3f},\n"
        "   \"current\": {\"items_per_second\": %.0f, \"cpu_time_ns\": "
        "%.3f},\n"
        "   \"overhead_percent\": %.3f,\n"
        "   \"trace_overhead_percent\": %.3f\n"
        "  }",
        line.workload.c_str(), line.items / line.off_s,
        line.off_s / line.items * 1e9, line.items / line.metrics_s,
        line.metrics_s / line.items * 1e9,
        (line.metrics_s - line.off_s) / line.off_s * 100.0,
        (line.trace_s - line.off_s) / line.off_s * 100.0);
  }
  json += "\n }\n}\n";

  std::FILE* file = std::fopen(out.c_str(), "w");
  if (file == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), file);
  std::fclose(file);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}
