// End-to-end smoke test: the complete Fig. 3 workflow on the Fig. 9/10
// case study — describe, set up the platform, execute, collect, condition,
// store — and the resulting package carries a coherent event timeline.
#include <gtest/gtest.h>

#include "core/master.hpp"
#include "core/scenario.hpp"
#include "stats/analysis.hpp"

namespace excovery {
namespace {

using core::scenario::TopologyOptions;
using core::scenario::TwoPartyOptions;

TEST(Smoke, TwoPartyDiscoveryEndToEnd) {
  TwoPartyOptions options;
  options.sm_count = 1;
  options.su_count = 1;
  options.environment_count = 2;
  options.replications = 3;
  options.deadline_s = 30.0;

  Result<core::ExperimentDescription> description =
      core::scenario::two_party_sd(options);
  ASSERT_TRUE(description.ok()) << description.error().to_string();

  Result<net::Topology> topology =
      core::scenario::topology_for(description.value(), TopologyOptions{});
  ASSERT_TRUE(topology.ok()) << topology.error().to_string();

  core::SimPlatformConfig config;
  config.topology = std::move(topology).value();
  config.seed = 42;
  Result<std::unique_ptr<core::SimPlatform>> platform =
      core::SimPlatform::create(description.value(), std::move(config));
  ASSERT_TRUE(platform.ok()) << platform.error().to_string();

  core::ExperiMaster master(description.value(), *platform.value());
  ASSERT_EQ(master.plan().run_count(), 3u);

  Result<storage::ExperimentPackage> package = master.execute();
  ASSERT_TRUE(package.ok()) << package.error().to_string();

  // Every run completed and is in the package.
  EXPECT_EQ(package.value().run_ids().size(), 3u);

  // The SU discovered the SM in every run, quickly (unloaded 1-hop mesh).
  Result<stats::Proportion> responsiveness =
      stats::responsiveness(package.value(), 5.0, 1);
  ASSERT_TRUE(responsiveness.ok());
  EXPECT_EQ(responsiveness.value().trials, 3u);
  EXPECT_DOUBLE_EQ(responsiveness.value().estimate, 1.0);

  // Event timeline of run 1 contains the Fig. 11 sequence in order.
  Result<std::vector<storage::EventRow>> events = package.value().events(1);
  ASSERT_TRUE(events.ok());
  std::vector<std::string> names;
  for (const storage::EventRow& event : events.value()) {
    names.push_back(event.event_type);
  }
  auto index_of = [&](const std::string& name) -> std::ptrdiff_t {
    auto it = std::find(names.begin(), names.end(), name);
    return it == names.end() ? -1 : std::distance(names.begin(), it);
  };
  ASSERT_GE(index_of("sd_start_publish"), 0);
  ASSERT_GE(index_of("sd_start_search"), 0);
  ASSERT_GE(index_of("sd_service_add"), 0);
  ASSERT_GE(index_of("done"), 0);
  EXPECT_LT(index_of("sd_start_publish"), index_of("sd_start_search"));
  EXPECT_LT(index_of("sd_start_search"), index_of("sd_service_add"));
  EXPECT_LT(index_of("sd_service_add"), index_of("done"));

  // Packets were captured and conditioned.
  EXPECT_GT(package.value().packet_count(), 0u);

  // Request/response pairing is causally sane after conditioning.
  Result<std::size_t> violations = stats::causal_violations(package.value());
  ASSERT_TRUE(violations.ok());
  EXPECT_EQ(violations.value(), 0u);
}

}  // namespace
}  // namespace excovery
