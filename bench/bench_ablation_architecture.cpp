// Architecture ablation (motivated by §III-B): two-party vs three-party vs
// hybrid on the same workload, healthy and with the SCM fault-injected.
//
// Expected shape: three-party wins on network load (unicast lookups at the
// directory instead of mesh-wide multicast), but collapses when its SCM
// dies; hybrid recovers by falling back to two-party operation; two-party
// is indifferent to the SCM.
#include "bench_common.hpp"

using namespace excovery;
using core::ParamValue;
using core::ProcessAction;

namespace {

struct Cell {
  double responsiveness = 0;
  double tx_packets_per_run = 0;
};

Cell run_cell(const char* protocol, bool with_scm, bool kill_scm,
              int replications) {
  core::scenario::TwoPartyOptions options;
  options.protocol = protocol;
  options.architecture = protocol;
  options.scm_count = with_scm ? 1 : 0;
  options.environment_count = 1;
  options.replications = replications;
  options.deadline_s = 12.0;
  options.su_start_delay_s = 3.0;  // fault lands before the search begins
  core::ExperimentDescription description = bench::must(
      core::scenario::two_party_sd(options), "description");

  if (kill_scm) {
    core::ManipulationProcess manipulation;
    manipulation.node_id = "SCM0";
    ProcessAction wait = {"wait_for_time", {}};
    wait.params.emplace_back("time", ParamValue::lit(Value{"1"}));
    manipulation.actions.push_back(std::move(wait));
    ProcessAction fault = {"fault_interface_start", {}};
    fault.params.emplace_back("direction", ParamValue::lit(Value{"both"}));
    manipulation.actions.push_back(std::move(fault));
    ProcessAction wait_done = {"wait_for_event", {}};
    wait_done.params.emplace_back("event_dependency",
                                  ParamValue::lit(Value{"done"}));
    manipulation.actions.push_back(std::move(wait_done));
    ProcessAction stop = {"fault_interface_stop", {}};
    manipulation.actions.push_back(std::move(stop));
    description.manipulation_processes.push_back(std::move(manipulation));
    Status valid = description.validate();
    if (!valid.ok()) {
      std::fprintf(stderr, "%s\n", valid.error().to_string().c_str());
      std::exit(1);
    }
  }

  bench::Executed executed = bench::must(
      bench::execute_description(std::move(description)), protocol);

  Cell cell;
  stats::Proportion p = bench::must(
      stats::responsiveness(executed.package, 12.0, 1), "responsiveness");
  cell.responsiveness = p.estimate;
  std::vector<stats::PacketStats> packet_stats = bench::must(
      stats::packet_stats(executed.package), "packet stats");
  double transmitted = 0;
  for (const stats::PacketStats& run : packet_stats) {
    transmitted += static_cast<double>(run.transmitted);
  }
  cell.tx_packets_per_run =
      packet_stats.empty() ? 0
                           : transmitted / static_cast<double>(
                                               packet_stats.size());
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  int replications = argc > 1 ? std::atoi(argv[1]) : 10;
  bench::banner("bench_ablation_architecture",
                "ablation: two-party vs three-party vs hybrid, healthy and "
                "with SCM failure");

  std::printf("\n%-14s %-22s %-22s\n", "", "healthy", "SCM killed at t=1s");
  std::printf("%-14s %-10s %-12s %-10s %-12s\n", "architecture", "resp.",
              "tx pkts/run", "resp.", "tx pkts/run");

  struct Row {
    const char* label;
    const char* protocol;
    bool with_scm;
  };
  for (const Row& row : {Row{"two-party", "mdns", false},
                         Row{"three-party", "slp", true},
                         Row{"hybrid", "hybrid", true}}) {
    Cell healthy = run_cell(row.protocol, row.with_scm, false, replications);
    Cell faulty = row.with_scm
                      ? run_cell(row.protocol, row.with_scm, true,
                                 replications)
                      : healthy;  // no SCM to kill in two-party
    std::printf("%-14s %-10.2f %-12.1f %-10.2f %-12.1f\n", row.label,
                healthy.responsiveness, healthy.tx_packets_per_run,
                faulty.responsiveness, faulty.tx_packets_per_run);
  }

  std::printf(
      "\nshape check: three-party's directory lookups keep its multicast\n"
      "load low but make it collapse with the SCM; hybrid pays a dual-stack\n"
      "overhead and survives; two-party is unaffected.\n");
  return 0;
}
