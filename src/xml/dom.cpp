#include "xml/dom.hpp"

#include <new>

namespace excovery::xml {

// ===== Arena ================================================================

void* Arena::allocate_slow(std::size_t size, std::size_t align) {
  std::size_t chunk = capacity_ ? capacity_ * 2 : 1024;
  if (chunk < size + align) chunk = size + align;
  chunks_.push_back(std::make_unique<char[]>(chunk));
  retired_ += used_;
  current_ = chunks_.back().get();
  capacity_ = chunk;
  used_ = 0;
  return allocate(size, align);  // guaranteed to fit in the fresh chunk
}

// ===== DocCore (name interning) =============================================

namespace {

std::size_t fnv1a(std::string_view s) noexcept {
  std::size_t h = 14695981039346656037ull;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

std::string_view DocCore::intern(std::string_view name, bool stable) {
  if (name.empty()) return {};
  if (slots_.empty()) slots_.resize(16);
  if ((count_ + 1) * 10 >= slots_.size() * 7) rehash();
  std::size_t mask = slots_.size() - 1;
  std::size_t slot = fnv1a(name) & mask;
  while (!slots_[slot].empty()) {
    if (slots_[slot] == name) return slots_[slot];
    slot = (slot + 1) & mask;
  }
  std::string_view stored = stable ? name : arena.store(name);
  slots_[slot] = stored;
  ++count_;
  return stored;
}

void DocCore::rehash() {
  std::vector<std::string_view> old = std::move(slots_);
  slots_.assign(old.empty() ? 16 : old.size() * 2, {});
  std::size_t mask = slots_.size() - 1;
  for (std::string_view v : old) {
    if (v.empty()) continue;
    std::size_t slot = fnv1a(v) & mask;
    while (!slots_[slot].empty()) slot = (slot + 1) & mask;
    slots_[slot] = v;
  }
}

// ===== Element ==============================================================

void Element::set_name(std::string_view name) {
  name_ = core_->intern(name);
}

const std::string_view* Element::attr(std::string_view name) const noexcept {
  for (const Attribute* a = first_attr_; a; a = a->next) {
    if (a->name == name) return &a->value;
  }
  return nullptr;
}

std::string Element::attr_or(std::string_view name,
                             std::string_view fallback) const {
  const std::string_view* v = attr(name);
  return std::string(v ? *v : fallback);
}

Result<std::string> Element::require_attr(std::string_view name) const {
  const std::string_view* v = attr(name);
  if (!v) {
    return err_validation("element <" + std::string(name_) +
                          "> missing attribute '" + std::string(name) + "'");
  }
  return std::string(*v);
}

Attribute* Element::find_attr(std::string_view name) noexcept {
  for (Attribute* a = first_attr_; a; a = const_cast<Attribute*>(a->next)) {
    if (a->name == name) return a;
  }
  return nullptr;
}

void Element::link_child(Element* child) noexcept {
  if (last_child_) {
    last_child_->next_sibling_ = child;
  } else {
    first_child_ = child;
  }
  last_child_ = child;
}

void Element::link_attr(Attribute* attr) noexcept {
  if (last_attr_) {
    last_attr_->next = attr;
  } else {
    first_attr_ = attr;
  }
  last_attr_ = attr;
}

void Element::link_text(TextSegment* segment) noexcept {
  if (last_text_) {
    last_text_->next = segment;
  } else {
    first_text_ = segment;
  }
  last_text_ = segment;
}

Element& Element::set_attr(std::string_view name, std::string_view value) {
  if (Attribute* existing = find_attr(name)) {
    existing->value = core_->arena.store(value);
    return *this;
  }
  auto* a = new (core_->arena.allocate(sizeof(Attribute), alignof(Attribute)))
      Attribute();
  a->name = core_->intern(name);
  a->value = core_->arena.store(value);
  link_attr(a);
  return *this;
}

Element& Element::add_child(std::string_view name) {
  auto* child =
      new (core_->arena.allocate(sizeof(Element), alignof(Element))) Element();
  child->core_ = core_;
  child->name_ = core_->intern(name);
  link_child(child);
  return *child;
}

Element& Element::add_subtree_copy(const Element& subtree) {
  Element& copy = add_child(subtree.name_);
  for (const Attribute* a = subtree.first_attr_; a; a = a->next) {
    copy.set_attr(a->name, a->value);
  }
  for (const TextSegment* s = subtree.first_text_; s; s = s->next) {
    copy.append_text(s->text);
  }
  for (const Element* c = subtree.first_child_; c; c = c->next_sibling_) {
    copy.add_subtree_copy(*c);
  }
  return copy;
}

const Element* Element::child(std::string_view name) const noexcept {
  for (const Element* c = first_child_; c; c = c->next_sibling_) {
    if (c->name_ == name) return c;
  }
  return nullptr;
}

Element* Element::child(std::string_view name) noexcept {
  for (Element* c = first_child_; c; c = c->next_sibling_) {
    if (c->name_ == name) return c;
  }
  return nullptr;
}

Result<const Element*> Element::require_child(std::string_view name) const {
  const Element* c = child(name);
  if (!c) {
    return err_validation("element <" + std::string(name_) +
                          "> missing child <" + std::string(name) + ">");
  }
  return c;
}

std::string Element::text() const {
  std::string out;
  for_each_text_span([&](std::string_view span) { out.append(span); });
  return out;
}

bool Element::has_text() const noexcept {
  for (const TextSegment* s = first_text_; s; s = s->next) {
    if (s->first_ns != std::string_view::npos) return true;
  }
  return false;
}

void Element::append_text(std::string_view text) {
  auto* segment =
      new (core_->arena.allocate(sizeof(TextSegment), alignof(TextSegment)))
          TextSegment();
  segment->set(core_->arena.store(text));
  link_text(segment);
}

Element& Element::set_text(std::string_view text) {
  first_text_ = nullptr;
  last_text_ = nullptr;
  if (!text.empty()) append_text(text);
  return *this;
}

Element& Element::add_text_child(std::string_view name, std::string_view text) {
  Element& c = add_child(name);
  c.set_text(text);
  return c;
}

bool Element::equals(const Element& other) const {
  if (name_ != other.name_) return false;
  const Attribute* a = first_attr_;
  const Attribute* b = other.first_attr_;
  while (a && b) {
    if (a->name != b->name || a->value != b->value) return false;
    a = a->next;
    b = b->next;
  }
  if (a || b) return false;
  if (text() != other.text()) return false;
  const Element* c = first_child_;
  const Element* d = other.first_child_;
  while (c && d) {
    if (!c->equals(*d)) return false;
    c = c->next_sibling_;
    d = d->next_sibling_;
  }
  return !c && !d;
}

// ===== Document =============================================================

Document::Document() : core_(std::make_unique<DocCore>()) {}

Document::Document(std::string_view root_name) : Document() {
  root_ = new_element(root_name, /*stable_name=*/false);
}

Element* Document::new_element(std::string_view name, bool stable_name) {
  auto* e =
      new (core_->arena.allocate(sizeof(Element), alignof(Element))) Element();
  e->core_ = core_.get();
  e->name_ = core_->intern(name, stable_name);
  return e;
}

Document Document::clone() const {
  Document copy(root().name());
  Element& to = copy.root();
  for (const Attribute* a = root().first_attr_; a; a = a->next) {
    to.set_attr(a->name, a->value);
  }
  for (const TextSegment* s = root().first_text_; s; s = s->next) {
    to.append_text(s->text);
  }
  for (const Element* c = root().first_child_; c; c = c->next_sibling_) {
    to.add_subtree_copy(*c);
  }
  return copy;
}

}  // namespace excovery::xml
