# Empty compiler generated dependencies file for excovery_common.
# This may be replaced when dependencies are built.
