#include "xml/parser.hpp"

#include <cctype>

namespace excovery::xml {

namespace {

/// Cursor over the input with line/column tracking for error messages.
class Cursor {
 public:
  explicit Cursor(std::string_view input) noexcept : input_(input) {}

  bool eof() const noexcept { return pos_ >= input_.size(); }
  char peek() const noexcept { return eof() ? '\0' : input_[pos_]; }
  char peek_at(std::size_t ahead) const noexcept {
    return pos_ + ahead < input_.size() ? input_[pos_ + ahead] : '\0';
  }

  char advance() noexcept {
    char c = input_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }

  bool consume(std::string_view literal) noexcept {
    if (input_.substr(pos_).substr(0, literal.size()) != literal) return false;
    for (std::size_t i = 0; i < literal.size(); ++i) advance();
    return true;
  }

  void skip_whitespace() noexcept {
    while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) {
      advance();
    }
  }

  Error error(std::string message) const {
    return err_parse("line " + std::to_string(line_) + ", column " +
                     std::to_string(column_) + ": " + std::move(message));
  }

  std::string_view rest() const noexcept { return input_.substr(pos_); }

 private:
  std::string_view input_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

bool is_name_start(char c) noexcept {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool is_name_char(char c) noexcept {
  return is_name_start(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

Result<std::string> parse_name(Cursor& cur) {
  if (!is_name_start(cur.peek())) {
    return cur.error("expected a name");
  }
  std::string name;
  while (!cur.eof() && is_name_char(cur.peek())) name.push_back(cur.advance());
  return name;
}

/// Decode &amp; &lt; &gt; &apos; &quot; &#NN; &#xNN;
Result<std::string> parse_entity(Cursor& cur) {
  // The '&' is already consumed.
  std::string entity;
  while (!cur.eof() && cur.peek() != ';') {
    entity.push_back(cur.advance());
    if (entity.size() > 8) return cur.error("unterminated entity reference");
  }
  if (cur.eof()) return cur.error("unterminated entity reference");
  cur.advance();  // ';'
  if (entity == "amp") return std::string("&");
  if (entity == "lt") return std::string("<");
  if (entity == "gt") return std::string(">");
  if (entity == "apos") return std::string("'");
  if (entity == "quot") return std::string("\"");
  if (!entity.empty() && entity[0] == '#') {
    int base = 10;
    std::size_t start = 1;
    if (entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X')) {
      base = 16;
      start = 2;
    }
    unsigned long code = 0;
    for (std::size_t i = start; i < entity.size(); ++i) {
      char c = entity[i];
      int digit;
      if (c >= '0' && c <= '9') digit = c - '0';
      else if (base == 16 && c >= 'a' && c <= 'f') digit = c - 'a' + 10;
      else if (base == 16 && c >= 'A' && c <= 'F') digit = c - 'A' + 10;
      else return cur.error("bad character reference &" + entity + ";");
      code = code * static_cast<unsigned long>(base) +
             static_cast<unsigned long>(digit);
      if (code > 0x10FFFF) {
        return cur.error("character reference out of range");
      }
    }
    // UTF-8 encode.
    std::string out;
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
    return out;
  }
  return cur.error("unknown entity &" + entity + ";");
}

Result<Attribute> parse_attribute(Cursor& cur) {
  EXC_ASSIGN_OR_RETURN(std::string name, parse_name(cur));
  cur.skip_whitespace();
  if (!cur.consume("=")) return cur.error("expected '=' after attribute name");
  cur.skip_whitespace();
  char quote = cur.peek();
  if (quote != '"' && quote != '\'') {
    return cur.error("expected quoted attribute value");
  }
  cur.advance();
  std::string value;
  while (!cur.eof() && cur.peek() != quote) {
    char c = cur.advance();
    if (c == '&') {
      EXC_ASSIGN_OR_RETURN(std::string decoded, parse_entity(cur));
      value += decoded;
    } else {
      value.push_back(c);
    }
  }
  if (cur.eof()) return cur.error("unterminated attribute value");
  cur.advance();  // closing quote
  return Attribute{std::move(name), std::move(value)};
}

Status skip_comment(Cursor& cur) {
  // "<!--" already consumed.
  for (;;) {
    if (cur.eof()) return cur.error("unterminated comment");
    if (cur.consume("-->")) return {};
    cur.advance();
  }
}

Status skip_pi(Cursor& cur) {
  // "<?" already consumed.
  for (;;) {
    if (cur.eof()) return cur.error("unterminated processing instruction");
    if (cur.consume("?>")) return {};
    cur.advance();
  }
}

Result<ElementPtr> parse_element_at(Cursor& cur, int depth) {
  constexpr int kMaxDepth = 256;
  if (depth > kMaxDepth) return cur.error("document nested too deeply");

  // '<' already consumed by caller.
  EXC_ASSIGN_OR_RETURN(std::string name, parse_name(cur));
  auto element = std::make_unique<Element>(std::move(name));

  // Attributes.
  for (;;) {
    cur.skip_whitespace();
    if (cur.consume("/>")) return element;
    if (cur.consume(">")) break;
    if (cur.eof()) return cur.error("unterminated start tag");
    EXC_ASSIGN_OR_RETURN(Attribute attr, parse_attribute(cur));
    if (element->has_attr(attr.name)) {
      return cur.error("duplicate attribute '" + attr.name + "'");
    }
    element->set_attr(attr.name, attr.value);
  }

  // Content.
  std::string text;
  auto flush_text = [&] {
    if (!text.empty()) {
      element->append_text(text);
      text.clear();
    }
  };
  for (;;) {
    if (cur.eof()) {
      return cur.error("unterminated element <" + element->name() + ">");
    }
    if (cur.peek() == '<') {
      if (cur.consume("<!--")) {
        EXC_TRY(skip_comment(cur));
        continue;
      }
      if (cur.consume("<![CDATA[")) {
        while (!cur.consume("]]>")) {
          if (cur.eof()) return cur.error("unterminated CDATA section");
          text.push_back(cur.advance());
        }
        continue;
      }
      if (cur.consume("<?")) {
        EXC_TRY(skip_pi(cur));
        continue;
      }
      if (cur.peek_at(1) == '/') {
        cur.advance();  // '<'
        cur.advance();  // '/'
        EXC_ASSIGN_OR_RETURN(std::string close, parse_name(cur));
        cur.skip_whitespace();
        if (!cur.consume(">")) return cur.error("malformed end tag");
        if (close != element->name()) {
          return cur.error("mismatched end tag </" + close + "> for <" +
                           element->name() + ">");
        }
        flush_text();
        return element;
      }
      // Child element.
      cur.advance();  // '<'
      flush_text();
      EXC_ASSIGN_OR_RETURN(ElementPtr child, parse_element_at(cur, depth + 1));
      element->adopt(std::move(child));
      continue;
    }
    char c = cur.advance();
    if (c == '&') {
      EXC_ASSIGN_OR_RETURN(std::string decoded, parse_entity(cur));
      text += decoded;
    } else {
      text.push_back(c);
    }
  }
}

}  // namespace

Result<Document> parse(std::string_view input) {
  Cursor cur(input);
  ElementPtr root;
  for (;;) {
    cur.skip_whitespace();
    if (cur.eof()) break;
    if (cur.consume("<!--")) {
      EXC_TRY(skip_comment(cur));
      continue;
    }
    if (cur.consume("<?")) {
      EXC_TRY(skip_pi(cur));
      continue;
    }
    if (cur.consume("<!")) {
      // DOCTYPE etc.: skip to '>'.
      while (!cur.eof() && cur.peek() != '>') cur.advance();
      if (!cur.consume(">")) return cur.error("unterminated declaration");
      continue;
    }
    if (!cur.consume("<")) {
      return cur.error("unexpected character data outside root element");
    }
    if (root) return cur.error("multiple root elements");
    EXC_ASSIGN_OR_RETURN(root, parse_element_at(cur, 0));
  }
  if (!root) return err_parse("document has no root element");
  return Document{std::move(root)};
}

Result<ElementPtr> parse_element(std::string_view input) {
  EXC_ASSIGN_OR_RETURN(Document doc, parse(input));
  return std::move(doc.root);
}

std::string escape_text(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string escape_attr(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

}  // namespace excovery::xml
