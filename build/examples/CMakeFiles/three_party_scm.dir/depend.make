# Empty dependencies file for three_party_scm.
# This may be replaced when dependencies are built.
