#include "sim/scheduler.hpp"

namespace excovery::sim {

TimerHandle Scheduler::schedule(SimDuration delay, Callback fn) {
  if (delay < SimDuration::zero()) delay = SimDuration::zero();
  return schedule_at(now_ + delay, std::move(fn));
}

TimerHandle Scheduler::schedule_at(SimTime when, Callback fn) {
  if (when < now_) when = now_;
  std::uint64_t id = next_id_++;
  queue_.push(Entry{when, next_seq_++, id,
                    std::make_shared<Callback>(std::move(fn))});
  live_.insert(id);
  return TimerHandle(id);
}

void Scheduler::cancel(TimerHandle handle) {
  if (!handle.valid()) return;
  // Erasing from the live set marks the queue entry as dead; the queue pop
  // skips entries whose id is no longer live.
  live_.erase(handle.id());
}

bool Scheduler::step() {
  while (!queue_.empty()) {
    Entry entry = queue_.top();
    queue_.pop();
    auto it = live_.find(entry.id);
    if (it == live_.end()) continue;  // cancelled
    live_.erase(it);
    now_ = entry.when;
    ++executed_;
    (*entry.fn)();
    return true;
  }
  return false;
}

std::size_t Scheduler::run(std::size_t limit) {
  std::size_t executed = 0;
  while ((limit == 0 || executed < limit) && step()) ++executed;
  return executed;
}

std::size_t Scheduler::run_until(SimTime deadline) {
  std::size_t executed = 0;
  while (!queue_.empty()) {
    // Skip over cancelled heads without advancing time.
    Entry entry = queue_.top();
    auto it = live_.find(entry.id);
    if (it == live_.end()) {
      queue_.pop();
      continue;
    }
    if (entry.when > deadline) break;
    queue_.pop();
    live_.erase(it);
    now_ = entry.when;
    ++executed_;
    ++executed;
    (*entry.fn)();
  }
  if (now_ < deadline) now_ = deadline;
  return executed;
}

}  // namespace excovery::sim
