file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_description.dir/bench_fig04_description.cpp.o"
  "CMakeFiles/bench_fig04_description.dir/bench_fig04_description.cpp.o.d"
  "bench_fig04_description"
  "bench_fig04_description.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_description.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
