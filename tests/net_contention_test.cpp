// Unit tests for the shared-medium contention model: per-node transmit
// serialisation and bounded-queue tail drop (what makes background load
// degrade discovery in a mesh, case study [26]).
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "sim/scheduler.hpp"

namespace excovery::net {
namespace {

Packet big_packet(Address dst, std::size_t payload = 1000) {
  Packet packet;
  packet.dst = dst;
  packet.src_port = 5000;
  packet.dst_port = 5000;
  packet.payload.assign(payload, 0x55);
  return packet;
}

LinkModel narrow_link() {
  LinkModel model;
  model.base_delay = sim::SimDuration::from_micros(100);
  model.jitter_frac = 0.0;
  model.bandwidth_bps = 1e6;  // 1 Mbit/s: a 1032-byte packet takes ~8.3 ms
  return model;
}

TEST(Contention, BackToBackSendsSerialise) {
  sim::Scheduler scheduler;
  Network network(scheduler, Topology::chain(2, narrow_link()), 1);
  std::vector<sim::SimTime> arrivals;
  network.bind(1, 5000, [&](NodeId, const Packet&) {
    arrivals.push_back(scheduler.now());
  });
  Address dst = network.topology().node(1).address;
  for (int i = 0; i < 3; ++i) (void)network.send(0, big_packet(dst));
  scheduler.run();

  ASSERT_EQ(arrivals.size(), 3u);
  // Each packet needs ~8.26 ms of airtime; arrivals must be spaced by at
  // least that, because the single radio serialises them.
  double airtime_s = 1032.0 * 8.0 / 1e6;
  EXPECT_GE((arrivals[1] - arrivals[0]).seconds(), airtime_s * 0.99);
  EXPECT_GE((arrivals[2] - arrivals[1]).seconds(), airtime_s * 0.99);
}

TEST(Contention, QueueOverflowDropsAreCounted) {
  sim::Scheduler scheduler;
  Network network(scheduler, Topology::chain(2, narrow_link()), 1);
  network.set_queue_limit(sim::SimDuration::from_millis(20));
  int received = 0;
  network.bind(1, 5000, [&](NodeId, const Packet&) { ++received; });
  Address dst = network.topology().node(1).address;
  // 20 ms of queue at ~8.3 ms/packet holds ~3 packets; flood 20.
  for (int i = 0; i < 20; ++i) (void)network.send(0, big_packet(dst));
  scheduler.run();

  EXPECT_GT(network.stats().dropped_queue, 0u);
  EXPECT_LT(received, 20);
  EXPECT_EQ(static_cast<std::uint64_t>(received) +
                network.stats().dropped_queue,
            20u);
}

TEST(Contention, ZeroLimitDisablesModel) {
  sim::Scheduler scheduler;
  Network network(scheduler, Topology::chain(2, narrow_link()), 1);
  network.set_queue_limit(sim::SimDuration::zero());
  std::vector<sim::SimTime> arrivals;
  network.bind(1, 5000, [&](NodeId, const Packet&) {
    arrivals.push_back(scheduler.now());
  });
  Address dst = network.topology().node(1).address;
  for (int i = 0; i < 5; ++i) (void)network.send(0, big_packet(dst));
  scheduler.run();

  ASSERT_EQ(arrivals.size(), 5u);
  EXPECT_EQ(network.stats().dropped_queue, 0u);
  // Without contention every packet sees the same hop delay: simultaneous
  // sends arrive simultaneously.
  EXPECT_EQ(arrivals.front(), arrivals.back());
}

TEST(Contention, IdleGapsDoNotAccumulateDebt) {
  sim::Scheduler scheduler;
  Network network(scheduler, Topology::chain(2, narrow_link()), 1);
  sim::SimTime arrival;
  network.bind(1, 5000,
               [&](NodeId, const Packet&) { arrival = scheduler.now(); });
  Address dst = network.topology().node(1).address;
  (void)network.send(0, big_packet(dst));
  scheduler.run();

  // A send long after the radio went idle pays no queueing delay.
  scheduler.run_until(scheduler.now() + sim::SimDuration::from_seconds(1));
  sim::SimTime start = scheduler.now();
  (void)network.send(0, big_packet(dst));
  scheduler.run();
  double airtime_s = 1032.0 * 8.0 / 1e6;
  EXPECT_LT((arrival - start).seconds(), airtime_s + 0.001);
}

TEST(Contention, IndependentSendersDoNotBlockEachOther) {
  sim::Scheduler scheduler;
  Network network(scheduler, Topology::full_mesh(3, narrow_link()), 1);
  std::map<std::string, sim::SimTime> arrivals;
  network.bind(2, 5000, [&](NodeId, const Packet& p) {
    arrivals[p.src.to_string()] = scheduler.now();
  });
  Address dst = network.topology().node(2).address;
  // Nodes 0 and 1 each send once at t=0: separate radios, no mutual
  // queueing (the model is per-sender, not a global medium).
  (void)network.send(0, big_packet(dst));
  (void)network.send(1, big_packet(dst));
  scheduler.run();
  ASSERT_EQ(arrivals.size(), 2u);
  double spread = std::abs(
      (arrivals.begin()->second - arrivals.rbegin()->second).seconds());
  EXPECT_LT(spread, 0.001);
}

}  // namespace
}  // namespace excovery::net
