#include "core/campaign.hpp"

#include <mutex>
#include <optional>

namespace excovery::core {

namespace {

Result<storage::ExperimentPackage> run_entry(CampaignEntry& entry,
                                             ThreadPool& pool) {
  EXC_TRY(entry.description.validate());
  EXC_ASSIGN_OR_RETURN(
      std::unique_ptr<SimPlatform> platform,
      SimPlatform::create(entry.description, std::move(entry.platform)));
  // Nesting rule: run-level workers ride the campaign pool, so total
  // threads stay bounded by the campaign worker count no matter how many
  // entries request run parallelism.  An entry that brings its own pool
  // keeps it.
  if (entry.master.run_pool == nullptr) entry.master.run_pool = &pool;
  ExperiMaster master(entry.description, *platform,
                      std::move(entry.master));
  return master.execute();
}

}  // namespace

std::vector<CampaignOutcome> run_campaign(std::vector<CampaignEntry> entries,
                                          const CampaignOptions& options) {
  std::vector<std::optional<CampaignOutcome>> slots(entries.size());
  {
    ThreadPool pool(options.workers);
    // Entries finish on worker threads; a user callback must not be asked
    // to cope with concurrent invocations, so serialize it here.
    std::mutex progress_mutex;
    pool.parallel_for(entries.size(), [&](std::size_t index) {
      CampaignEntry& entry = entries[index];
      Result<storage::ExperimentPackage> package = run_entry(entry, pool);
      if (options.progress) {
        std::lock_guard lock(progress_mutex);
        options.progress(entry.id, package.ok());
      }
      slots[index].emplace(entry.id, std::move(package));
    });
  }

  std::vector<CampaignOutcome> outcomes;
  outcomes.reserve(slots.size());
  for (std::optional<CampaignOutcome>& slot : slots) {
    outcomes.push_back(std::move(*slot));
  }

  if (options.archive) {
    for (const CampaignOutcome& outcome : outcomes) {
      if (!outcome.package.ok()) continue;
      if (options.archive->contains(outcome.id)) continue;
      (void)options.archive->store(outcome.id, outcome.package.value());
    }
  }
  return outcomes;
}

}  // namespace excovery::core
