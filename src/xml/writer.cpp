#include "xml/writer.hpp"

#include <algorithm>
#include <vector>

#include "xml/parser.hpp"

namespace excovery::xml {

namespace {

void write_element(const Element& element, const WriteOptions& options,
                   int depth, std::string& out) {
  auto indent = [&](int level) {
    if (!options.pretty) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(level * options.indent_width), ' ');
  };

  if (depth > 0 || options.declaration) indent(depth);
  out.push_back('<');
  out += element.name();
  for (const Attribute& a : element.attributes()) {
    out.push_back(' ');
    out += a.name;
    out += "=\"";
    out += escape_attr(a.value);
    out.push_back('"');
  }

  std::string text = element.text();
  if (element.children().empty() && text.empty()) {
    out += " />";
    return;
  }
  out.push_back('>');

  if (element.children().empty()) {
    // Text-only element: keep text inline for readability.
    out += escape_text(text);
    out += "</";
    out += element.name();
    out.push_back('>');
    return;
  }

  if (!text.empty()) {
    indent(depth + 1);
    out += escape_text(text);
  }
  for (const ElementPtr& child : element.children()) {
    write_element(*child, options, depth + 1, out);
  }
  indent(depth);
  out += "</";
  out += element.name();
  out.push_back('>');
}

void write_canonical_element(const Element& element, std::string& out) {
  out.push_back('<');
  out += element.name();
  // Attribute order is presentation, not meaning: emit sorted by name.
  // Stable sort keeps original order for (invalid) duplicate names, so the
  // output is still deterministic.
  std::vector<const Attribute*> attrs;
  attrs.reserve(element.attributes().size());
  for (const Attribute& a : element.attributes()) attrs.push_back(&a);
  std::stable_sort(attrs.begin(), attrs.end(),
                   [](const Attribute* a, const Attribute* b) {
                     return a->name < b->name;
                   });
  for (const Attribute* a : attrs) {
    out.push_back(' ');
    out += a->name;
    out += "=\"";
    out += escape_attr(a->value);
    out.push_back('"');
  }

  const std::string text = element.text();
  if (element.children().empty() && text.empty()) {
    out += "/>";
    return;
  }
  out.push_back('>');
  if (!text.empty()) out += escape_text(text);
  for (const ElementPtr& child : element.children()) {
    write_canonical_element(*child, out);
  }
  out += "</";
  out += element.name();
  out.push_back('>');
}

}  // namespace

std::string write(const Element& root, const WriteOptions& options) {
  std::string out;
  if (options.declaration) {
    out = "<?xml version=\"1.0\" encoding=\"UTF-8\"?>";
  }
  WriteOptions inner = options;
  write_element(root, inner, 0, out);
  if (options.pretty) out.push_back('\n');
  return out;
}

std::string write(const Document& doc, const WriteOptions& options) {
  return write(*doc.root, options);
}

std::string write_canonical(const Element& root) {
  std::string out;
  write_canonical_element(root, out);
  return out;
}

}  // namespace excovery::xml
