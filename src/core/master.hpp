// ExperiMaster: "a program that executes experiment runs as specified in
// the description.  Each run is a sequence of actions performed on the
// participating nodes" (§IV) ... "ExCovery manages series of experiments
// and recovers from failures by resuming aborted runs" (§VII).
//
// Per-run workflow (§IV-C1): each run consists of three phases —
//   preparation: reset the environment to a defined initial condition
//     (drop leftover packets, stop stray faults), run_init on every node,
//     time-sync measurement per participant, topology probe;
//   execution: all process interpreters (actor processes per mapped node,
//     manipulation processes, environment processes) run concurrently under
//     the discrete-event scheduler until completion or the run watchdog;
//   clean-up: run_exit on every node (stops roles/faults, collects packet
//     captures and plugin measurements).
//
// After all runs: collection & conditioning produce the level-3 package
// (storage::condition), completing the workflow of Fig. 3.
#pragma once

#include <functional>
#include <memory>

#include "core/description.hpp"
#include "core/interpreter.hpp"
#include "core/plan.hpp"
#include "core/platform.hpp"
#include "storage/conditioning.hpp"
#include "storage/package.hpp"

namespace excovery::core {

struct MasterOptions {
  /// Attempts per run before the experiment gives up (failure recovery).
  int max_attempts_per_run = 3;
  /// Simulated-time watchdog per run; a run whose processes have not all
  /// completed by then is aborted (and resumed/retried).
  sim::SimDuration run_watchdog = sim::SimDuration::from_seconds(300);
  /// Extra simulated settle time after the last process finishes, letting
  /// in-flight packets drain before clean-up.
  sim::SimDuration settle = sim::SimDuration::from_millis(200);
  /// Comment stored into ExperimentInfo.
  std::string comment;

  /// Progress callback: (run, attempt, ok).
  std::function<void(const RunSpec&, int attempt, bool ok)> progress;
  /// Test hook: force the given (run_id, attempt) to abort mid-run.
  std::function<bool(std::int64_t run_id, int attempt)> abort_hook;
};

class ExperiMaster : public ActionDispatcher {
 public:
  /// The master drives an already-created platform (the platform embodies
  /// the "platform setup" step of Fig. 3).
  ExperiMaster(const ExperimentDescription& description,
               SimPlatform& platform, MasterOptions options = {});

  /// Execute the full treatment plan and return the conditioned level-3
  /// package (collection + conditioning + storage of Fig. 3).
  Result<storage::ExperimentPackage> execute();

  /// Execute a single run (used by execute(); public for tests/benches).
  Status execute_run(const RunSpec& run, int attempt = 1);

  const TreatmentPlan& plan() const noexcept { return *plan_; }
  SimPlatform& platform() noexcept { return platform_; }

  /// Runs that completed (in execution order).
  const std::vector<std::int64_t>& completed_runs() const noexcept {
    return platform_.level2().completed_runs();
  }
  /// Total aborted attempts encountered (recovery metric).
  int aborted_attempts() const noexcept { return aborted_attempts_; }

 private:
  // ActionDispatcher implementation -----------------------------------------
  Status node_action(const std::string& concrete_node,
                     const std::string& method, ValueMap params) override;
  Status env_action(const std::string& method, ValueMap params) override;

  Status prepare_run(const RunSpec& run);
  Status run_processes(const RunSpec& run, int attempt);
  Status cleanup_run(const RunSpec& run);

  const ExperimentDescription& description_;
  SimPlatform& platform_;
  MasterOptions options_;
  std::unique_ptr<TreatmentPlan> plan_;
  const RunSpec* current_run_ = nullptr;
  faults::FaultHandle env_drop_all_;
  int aborted_attempts_ = 0;
  bool experiment_initialized_ = false;
};

}  // namespace excovery::core
