// A typed in-memory relational table with columnar storage.
//
// Together with Database this is the stand-in for the prototype's SQLite
// third-level store (§IV-F): typed columns, insertion, predicate scans and
// ordered iteration, serialisable into a single binary package.  The query
// surface is the small subset the paper's "reusable data access functions"
// need — not a SQL engine.
//
// Layout: one typed vector per column.  Int/double/bool columns are flat
// POD vectors with a one-byte-per-row cell tag (null / int / double);
// string columns store u32 ids into a per-table interning pool; columns of
// any other declared type (bytes, array, map) fall back to a plain Value
// vector.  Rows are materialised on demand through RowView, a cheap
// (pointer, index) cursor — callers that need whole Values still get them,
// hot paths read typed cells without boxing.
//
// Queries are accelerated by lazily built, mutation-maintained structures:
// `select_equals`/`count_equals` build a per-column hash index on first use
// (kept incrementally up to date by `insert`), and `order_by` caches the
// sort permutation per column (invalidated by `insert`).  Both reproduce
// the exact result order and Value comparison semantics of a linear
// predicate scan.
//
// RowViews (and string_views handed out by them) are invalidated by any
// mutation of the table, exactly like the row pointers of the previous
// row-oriented implementation.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "common/value.hpp"

namespace excovery::storage {

/// Column definition.
struct Column {
  std::string name;
  ValueType type = ValueType::kString;
  bool nullable = true;
};

/// Table definition.
struct TableSchema {
  std::string name;
  std::vector<Column> columns;

  /// Index of a column by name, or nullopt.
  std::optional<std::size_t> column_index(std::string_view name) const;
};

using Row = ValueArray;

class Table;

/// A cheap cursor to one row of a columnar table.  Cells materialise to
/// Value through operator[]; the typed accessors read the column storage
/// directly (they assert on kind mismatch, like Value's accessors).
class RowView {
 public:
  RowView() = default;

  std::size_t index() const noexcept { return row_; }
  std::size_t size() const noexcept;  ///< arity (number of columns)

  bool is_null(std::size_t column) const;
  /// Materialise one cell as a Value.
  Value operator[](std::size_t column) const;
  /// Materialise the whole row.
  Row materialize() const;

  std::int64_t as_int(std::size_t column) const;
  /// Numeric read; widens int cells like Value::as_double.
  double as_double(std::size_t column) const;
  bool as_bool(std::size_t column) const;
  /// View into the table's interning pool; valid until the next mutation.
  std::string_view as_string(std::size_t column) const;
  const Bytes& as_bytes(std::size_t column) const;

 private:
  friend class Table;
  RowView(const Table* table, std::uint32_t row) : table_(table), row_(row) {}

  const Table* table_ = nullptr;
  std::uint32_t row_ = 0;
};

using RowPredicate = std::function<bool(const RowView&)>;

class Table {
 public:
  explicit Table(TableSchema schema);

  const TableSchema& schema() const noexcept { return schema_; }
  const std::string& name() const noexcept { return schema_.name; }
  std::size_t row_count() const noexcept { return row_count_; }

  /// Cursor to row `index` (unchecked, like vector indexing).
  RowView row(std::size_t index) const {
    return RowView(this, static_cast<std::uint32_t>(index));
  }

  /// Insert a row; arity and types are checked (null allowed if nullable).
  Status insert(Row row);

  /// Rows matching a predicate (linear scan, insertion order).
  std::vector<RowView> select(const RowPredicate& predicate) const;
  /// Rows where column == value (hash-indexed; insertion order).
  std::vector<RowView> select_equals(std::string_view column,
                                     const Value& value) const;
  /// All rows ordered ascending by a column (stable; cached permutation).
  Result<std::vector<RowView>> order_by(std::string_view column) const;

  /// Count of rows matching column == value (hash-indexed).
  std::size_t count_equals(std::string_view column, const Value& value) const;

  /// Column value of a row by name (checked).
  Result<Value> cell(const RowView& row, std::string_view column) const;

  void clear();

  // ---- column-block serialisation (used by Database) ---------------------
  /// Append the interning dictionary plus one length-prefixed block per
  /// column to `writer`.
  void serialize_columns(ByteWriter& writer) const;
  /// Read back `rows` rows worth of column blocks; validates tags, string
  /// ids and nullability against the schema.
  Status deserialize_columns(ByteReader& reader, std::uint64_t rows);

 private:
  friend class RowView;

  /// Physical representation chosen from the declared column type.
  enum class ColumnKind : std::uint8_t {
    kInt64 = 0,
    kFloat64 = 1,
    kBool = 2,
    kString = 3,
    kGeneric = 4,
  };

  // Per-row cell tags for POD columns.
  static constexpr std::uint8_t kTagNull = 0;
  static constexpr std::uint8_t kTagValue = 1;   // int64 / bool lane
  static constexpr std::uint8_t kTagDouble = 2;  // double lane (kFloat64)
  static constexpr std::uint32_t kNullStringId = 0xFFFFFFFFu;

  /// Exact identity of a cell for hash lookups: the Value type discriminator
  /// plus a canonical 64-bit image of the content (string cells use the
  /// interned id; -0.0 is normalised to 0.0 to match Value equality).
  struct CellKey {
    std::uint8_t tag = 0;
    std::uint64_t bits = 0;
    bool operator==(const CellKey&) const = default;
  };
  struct CellKeyHash {
    std::size_t operator()(const CellKey& key) const noexcept;
  };
  using HashIndex =
      std::unordered_map<CellKey, std::vector<std::uint32_t>, CellKeyHash>;

  struct ColumnStore {
    ColumnKind kind = ColumnKind::kGeneric;
    std::vector<std::uint8_t> tags;     // kInt64/kFloat64/kBool
    std::vector<std::int64_t> i64;      // kInt64 values; kFloat64 int lane
    std::vector<double> f64;            // kFloat64 double lane
    std::vector<std::uint8_t> b8;       // kBool values
    std::vector<std::uint32_t> str;     // kString interned ids
    std::vector<Value> generic;         // kGeneric cells
    // Lazily built acceleration structures.  The hash index is maintained
    // incrementally by insert(); the sort permutation is dropped on any
    // mutation and rebuilt on the next order_by.
    mutable std::optional<HashIndex> hash_index;
    mutable std::optional<std::vector<std::uint32_t>> sort_permutation;
  };

  static ColumnKind kind_for(ValueType type) noexcept;

  std::uint32_t intern(std::string_view text);
  /// Key of the cell at (column, row).
  CellKey key_at(const ColumnStore& store, std::uint32_t row) const;
  /// Key a probe value would have in this column, or nullopt if no cell of
  /// the column can ever equal it (wrong type, unknown string, NaN).
  std::optional<CellKey> probe_key(const ColumnStore& store,
                                   const Value& value) const;
  const HashIndex& ensure_hash_index(const ColumnStore& store) const;
  const std::vector<std::uint32_t>& ensure_sort_permutation(
      std::size_t column) const;
  Value cell_value(std::size_t column, std::uint32_t row) const;
  /// Exactly Value::operator< on the materialised cells, without boxing.
  bool cell_less(const ColumnStore& store, std::uint32_t a,
                 std::uint32_t b) const;

  TableSchema schema_;
  std::vector<ColumnStore> columns_;
  std::size_t row_count_ = 0;
  std::vector<std::string> pool_;  // interned strings, id = position
  std::unordered_map<std::string, std::uint32_t> pool_ids_;
};

}  // namespace excovery::storage
