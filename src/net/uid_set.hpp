// Open-addressing set of packet uids for multicast duplicate suppression.
//
// `std::unordered_set` allocates a node per insert, which puts one heap
// allocation on every flood arrival.  This flat set probes linearly over a
// power-of-two table, never allocates in steady state (clear() keeps the
// table), and exploits that packet uids start at 1 so 0 can be the empty
// sentinel.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace excovery::net {

class UidSet {
 public:
  /// Insert `uid` (must be non-zero); returns true if it was not present.
  bool insert(std::uint64_t uid) {
    if (table_.empty() || (count_ + 1) * 4 > table_.size() * 3) grow();
    std::size_t mask = table_.size() - 1;
    std::size_t i = hash(uid) & mask;
    while (table_[i] != 0) {
      if (table_[i] == uid) return false;
      i = (i + 1) & mask;
    }
    table_[i] = uid;
    ++count_;
    return true;
  }

  bool contains(std::uint64_t uid) const {
    if (table_.empty()) return false;
    std::size_t mask = table_.size() - 1;
    std::size_t i = hash(uid) & mask;
    while (table_[i] != 0) {
      if (table_[i] == uid) return true;
      i = (i + 1) & mask;
    }
    return false;
  }

  std::size_t size() const noexcept { return count_; }

  /// Empty the set but keep the table, so per-run resets stay allocation
  /// free once the table has grown to the campaign's working size.
  void clear() {
    std::fill(table_.begin(), table_.end(), 0);
    count_ = 0;
  }

 private:
  static std::size_t hash(std::uint64_t uid) noexcept {
    // Fibonacci hashing spreads the sequential uids across the table.
    return static_cast<std::size_t>(uid * 0x9E3779B97F4A7C15ull >> 32);
  }

  void grow() {
    std::size_t next = table_.empty() ? 64 : table_.size() * 2;
    std::vector<std::uint64_t> old = std::move(table_);
    table_.assign(next, 0);
    std::size_t mask = table_.size() - 1;
    for (std::uint64_t uid : old) {
      if (uid == 0) continue;
      std::size_t i = hash(uid) & mask;
      while (table_[i] != 0) i = (i + 1) & mask;
      table_[i] = uid;
    }
  }

  std::vector<std::uint64_t> table_;
  std::size_t count_ = 0;
};

}  // namespace excovery::net
