#include "stats/analysis.hpp"

#include <algorithm>

#include "net/packet.hpp"
#include "sd/message.hpp"
#include "sd/model.hpp"

namespace excovery::stats {

Result<std::vector<RunDiscovery>> discoveries(
    const storage::ExperimentPackage& package) {
  std::vector<RunDiscovery> out;
  for (std::int64_t run_id : package.run_ids()) {
    EXC_ASSIGN_OR_RETURN(std::vector<storage::EventRow> events,
                         package.events(run_id));
    // One RunDiscovery per node that started a search in this run.
    std::map<std::string, RunDiscovery> by_searcher;
    for (const storage::EventRow& event : events) {
      if (event.event_type == sd::events::kStartSearch) {
        auto [it, inserted] =
            by_searcher.try_emplace(event.node_id, RunDiscovery{});
        if (inserted) {
          it->second.run_id = run_id;
          it->second.searcher = event.node_id;
          it->second.search_start = event.common_time;
        }
      } else if (event.event_type == sd::events::kServiceAdd) {
        auto it = by_searcher.find(event.node_id);
        if (it == by_searcher.end()) continue;  // add before search: cached
        double latency = event.common_time - it->second.search_start;
        // First add per provider wins.
        it->second.latencies.try_emplace(event.parameter, latency);
      } else if (event.event_type == "wait_timeout") {
        auto it = by_searcher.find(event.node_id);
        if (it != by_searcher.end()) it->second.timed_out = true;
      }
    }
    for (auto& [searcher, discovery] : by_searcher) {
      out.push_back(std::move(discovery));
    }
  }
  return out;
}

Result<Proportion> responsiveness(const storage::ExperimentPackage& package,
                                  double deadline_s, std::size_t required) {
  EXC_ASSIGN_OR_RETURN(std::vector<RunDiscovery> runs, discoveries(package));
  std::size_t successes = 0;
  for (const RunDiscovery& run : runs) {
    std::size_t within = 0;
    for (const auto& [provider, latency] : run.latencies) {
      if (latency <= deadline_s) ++within;
    }
    if (within >= required) ++successes;
  }
  return wilson(successes, runs.size());
}

Result<std::vector<double>> discovery_latencies(
    const storage::ExperimentPackage& package) {
  EXC_ASSIGN_OR_RETURN(std::vector<RunDiscovery> runs, discoveries(package));
  std::vector<double> out;
  for (const RunDiscovery& run : runs) {
    for (const auto& [provider, latency] : run.latencies) {
      out.push_back(latency);
    }
  }
  return out;
}

Result<std::vector<double>> first_latencies(
    const storage::ExperimentPackage& package) {
  EXC_ASSIGN_OR_RETURN(std::vector<RunDiscovery> runs, discoveries(package));
  std::vector<double> out;
  for (const RunDiscovery& run : runs) {
    double best = -1.0;
    for (const auto& [provider, latency] : run.latencies) {
      if (best < 0 || latency < best) best = latency;
    }
    if (best >= 0) out.push_back(best);
  }
  return out;
}

Result<std::vector<PacketStats>> packet_stats(
    const storage::ExperimentPackage& package) {
  std::vector<PacketStats> out;
  for (std::int64_t run_id : package.run_ids()) {
    EXC_ASSIGN_OR_RETURN(std::vector<storage::PacketRow> packets,
                         package.packets(run_id));
    PacketStats stats;
    stats.run_id = run_id;
    for (const storage::PacketRow& row : packets) {
      ++stats.captured;
      Result<net::WireImage> image = net::capture_from_wire(row.data);
      if (!image.ok()) continue;
      stats.bytes += static_cast<double>(image.value().packet.wire_size());
      if (image.value().direction == net::Direction::kTransmit) {
        ++stats.transmitted;
      } else {
        ++stats.received;
      }
      if (sd::decode(image.value().packet.payload).ok()) ++stats.sd_messages;
    }
    out.push_back(stats);
  }
  return out;
}

Result<std::vector<RequestResponsePair>> pair_requests(
    const storage::ExperimentPackage& package) {
  std::vector<RequestResponsePair> out;
  for (std::int64_t run_id : package.run_ids()) {
    EXC_ASSIGN_OR_RETURN(std::vector<storage::PacketRow> packets,
                         package.packets(run_id));
    // Matching is two-pass and deliberately independent of timestamp
    // order: with uncorrected clock offsets a response can carry an
    // *earlier* common time than its query, and causal_violations() must
    // be able to observe exactly that.
    struct Decoded {
      const storage::PacketRow* row;
      net::WireImage image;
      sd::SdMessage message;
    };
    std::vector<Decoded> decoded;
    decoded.reserve(packets.size());
    for (const storage::PacketRow& row : packets) {
      Result<net::WireImage> image = net::capture_from_wire(row.data);
      if (!image.ok()) continue;
      Result<sd::SdMessage> message =
          sd::decode(image.value().packet.payload);
      if (!message.ok()) continue;
      decoded.push_back(Decoded{&row, std::move(image).value(),
                                std::move(message).value()});
    }

    // Pass 1: queries transmitted, keyed by (requester, txn id).
    std::map<std::pair<std::string, std::uint32_t>, RequestResponsePair>
        pending;
    for (const Decoded& entry : decoded) {
      bool is_request =
          entry.message.kind == sd::MessageKind::kQuery ||
          entry.message.kind == sd::MessageKind::kDirectedQuery ||
          entry.message.kind == sd::MessageKind::kScmQuery;
      if (!is_request ||
          entry.image.direction != net::Direction::kTransmit) {
        continue;
      }
      RequestResponsePair pair;
      pair.run_id = run_id;
      pair.txn_id = entry.message.txn_id;
      pair.requester = entry.row->node_id;
      pair.request_time = entry.row->common_time;
      pending.try_emplace({entry.row->node_id, entry.message.txn_id}, pair);
    }
    // Pass 2: the first response (by recorded time) received back at the
    // requester wins.
    for (const Decoded& entry : decoded) {
      bool is_response =
          entry.message.kind == sd::MessageKind::kResponse ||
          entry.message.kind == sd::MessageKind::kDirectedReply ||
          entry.message.kind == sd::MessageKind::kScmAdvert;
      if (!is_response ||
          entry.image.direction != net::Direction::kReceive) {
        continue;
      }
      auto it = pending.find({entry.row->node_id, entry.message.txn_id});
      if (it == pending.end()) continue;  // unsolicited or not ours
      it->second.responder = entry.message.sender_name;
      it->second.response_time = entry.row->common_time;
      out.push_back(it->second);
      pending.erase(it);
    }
  }
  // Deterministic order.
  std::sort(out.begin(), out.end(),
            [](const RequestResponsePair& a, const RequestResponsePair& b) {
              if (a.run_id != b.run_id) return a.run_id < b.run_id;
              return a.request_time < b.request_time;
            });
  return out;
}

Result<RouteStats> route_stats(const storage::ExperimentPackage& package) {
  RouteStats stats;
  double total_hops = 0;
  for (std::int64_t run_id : package.run_ids()) {
    EXC_ASSIGN_OR_RETURN(std::vector<storage::PacketRow> packets,
                         package.packets(run_id));
    for (const storage::PacketRow& row : packets) {
      Result<net::WireImage> image = net::capture_from_wire(row.data);
      if (!image.ok()) continue;
      if (image.value().direction != net::Direction::kReceive) continue;
      if (image.value().packet.route.empty()) continue;
      int hops = static_cast<int>(image.value().packet.route.size()) - 1;
      ++stats.receptions;
      total_hops += hops;
      stats.max_hops = std::max(stats.max_hops, hops);
      stats.distribution[hops]++;
    }
  }
  if (stats.receptions > 0) {
    stats.mean_hops = total_hops / static_cast<double>(stats.receptions);
  }
  return stats;
}

Result<std::size_t> causal_violations(
    const storage::ExperimentPackage& package) {
  EXC_ASSIGN_OR_RETURN(std::vector<RequestResponsePair> pairs,
                       pair_requests(package));
  std::size_t violations = 0;
  for (const RequestResponsePair& pair : pairs) {
    if (pair.response_time < pair.request_time) ++violations;
  }
  return violations;
}

Result<std::size_t> propagation_violations(
    const storage::ExperimentPackage& package) {
  std::size_t violations = 0;
  for (std::int64_t run_id : package.run_ids()) {
    EXC_ASSIGN_OR_RETURN(std::vector<storage::PacketRow> packets,
                         package.packets(run_id));
    // First transmit time per packet uid (sender's conditioned clock).
    struct TxInfo {
      double time;
      std::string node;
    };
    std::map<std::uint64_t, TxInfo> tx_info;
    struct RxInfo {
      std::uint64_t uid;
      double time;
      std::string node;
    };
    std::vector<RxInfo> rx_events;
    for (const storage::PacketRow& row : packets) {
      Result<net::WireImage> image = net::capture_from_wire(row.data);
      if (!image.ok()) continue;
      if (image.value().direction == net::Direction::kTransmit) {
        auto [it, inserted] = tx_info.try_emplace(
            image.value().packet.uid, TxInfo{row.common_time, row.node_id});
        if (!inserted && row.common_time < it->second.time) {
          it->second = TxInfo{row.common_time, row.node_id};
        }
      } else {
        rx_events.push_back(
            RxInfo{image.value().packet.uid, row.common_time, row.node_id});
      }
    }
    for (const RxInfo& rx : rx_events) {
      auto it = tx_info.find(rx.uid);
      if (it == tx_info.end()) continue;  // sender not captured
      // Same-node loopback delivery shares one clock and carries no
      // propagation; only cross-node reception is checked.
      if (rx.node == it->second.node) continue;
      if (rx.time < it->second.time) ++violations;
    }
  }
  return violations;
}

}  // namespace excovery::stats
