// Fixed-size worker pool used to run independent experiment replications in
// parallel (see DESIGN.md §6).  Tasks communicate only through their return
// futures — no shared mutable state — so results are identical regardless of
// worker count.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/obs_switch.hpp"

namespace excovery {

/// Utilization callback for a ThreadPool (implemented by the observability
/// layer; declared here so common does not depend on obs).  on_task runs on
/// the worker thread after each task and must be thread-safe.
class ThreadPoolObserver {
 public:
  virtual ~ThreadPoolObserver() = default;
  virtual void on_task(std::int64_t queue_delay_ns, std::int64_t busy_ns) = 0;
};

class ThreadPool {
 public:
  /// `workers == 0` selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const noexcept { return threads_.size(); }

  /// Install (or clear, with nullptr) a utilization observer.  The observer
  /// must outlive the pool or be cleared before destruction; tasks enqueued
  /// while no observer is installed report a zero queue delay.
  void set_observer(ThreadPoolObserver* observer) noexcept {
    observer_.store(observer, std::memory_order_release);
  }

  /// Enqueue a task; returns a future for its result.
  template <typename Fn>
  auto submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>> {
    using R = std::invoke_result_t<Fn>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    enqueue([task]() mutable { (*task)(); });
    return future;
  }

  /// Enqueue a fire-and-forget task (no future).  Used for cooperative
  /// nesting: a pool task that needs helpers posts them and participates in
  /// the work itself, waiting only on a completion count — never on the
  /// helpers being scheduled — so sharing one pool between campaign- and
  /// run-level parallelism cannot deadlock.
  void post(std::function<void()> task);

  /// Run `fn(i)` for i in [0, count) across the pool and wait for all.
  void parallel_for(std::size_t count, const std::function<void(std::size_t)>& fn);

 private:
  struct QueuedTask {
    std::function<void()> fn;
    std::int64_t enqueued_ns = 0;  ///< steady-clock stamp; 0 = not observed
  };

  void enqueue(std::function<void()> fn);
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<QueuedTask> queue_;
  std::vector<std::thread> threads_;
  std::atomic<ThreadPoolObserver*> observer_{nullptr};
  bool stopping_ = false;
};

}  // namespace excovery
