// Error and Result types used across the whole ExCovery code base.
//
// The framework avoids exceptions on expected failure paths (malformed
// descriptions, missing nodes, storage corruption, ...) and instead threads
// Result<T> values through the APIs, reserving exceptions for programming
// errors.  This mirrors the Core Guidelines advice of using exceptions only
// for exceptional conditions while keeping recoverable errors explicit.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace excovery {

/// Coarse classification of recoverable errors.
enum class ErrorCode {
  kInvalidArgument,   ///< caller passed something malformed
  kParse,             ///< malformed XML / document structure
  kValidation,        ///< structurally valid but semantically wrong description
  kNotFound,          ///< referenced entity (node, factor, table, ...) missing
  kState,             ///< operation not legal in the current state
  kIo,                ///< file or storage I/O failed
  kTimeout,           ///< a wait_for_event or RPC deadline expired
  kRpc,               ///< control-channel failure
  kAborted,           ///< run aborted (fault recovery will resume it)
  kUnsupported,       ///< feature not available on this platform
  kInternal,          ///< invariant violation that was contained
};

/// Human-readable name of an ErrorCode ("timeout", "parse", ...).
std::string_view to_string(ErrorCode code) noexcept;

/// A recoverable error: a code plus a human-oriented message.
class [[nodiscard]] Error {
 public:
  Error(ErrorCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  ErrorCode code() const noexcept { return code_; }
  const std::string& message() const noexcept { return message_; }

  /// "timeout: waiting for event sd_service_add" style rendering.
  std::string to_string() const;

  /// Prefix the message with added context, keeping the code.
  Error with_context(std::string_view context) const;

 private:
  ErrorCode code_;
  std::string message_;
};

/// Result<T>: either a value or an Error.  Minimal std::expected stand-in
/// (std::expected is C++23; this project targets C++20).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : storage_(std::move(value)) {}        // NOLINT(google-explicit-constructor)
  Result(Error error) : storage_(std::move(error)) {}    // NOLINT(google-explicit-constructor)

  bool ok() const noexcept { return std::holds_alternative<T>(storage_); }
  explicit operator bool() const noexcept { return ok(); }

  T& value() & {
    assert(ok());
    return std::get<T>(storage_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(storage_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(storage_));
  }

  const Error& error() const& {
    assert(!ok());
    return std::get<Error>(storage_);
  }
  Error&& error() && {
    assert(!ok());
    return std::get<Error>(std::move(storage_));
  }

  T value_or(T fallback) const& {
    return ok() ? std::get<T>(storage_) : std::move(fallback);
  }

  /// Map the value through `fn`, passing errors through unchanged.
  template <typename Fn>
  auto map(Fn&& fn) && -> Result<decltype(fn(std::declval<T&&>()))> {
    if (!ok()) return std::get<Error>(std::move(storage_));
    return fn(std::get<T>(std::move(storage_)));
  }

  /// Attach context to the error, if any.
  Result<T> context(std::string_view ctx) && {
    if (ok()) return std::move(*this);
    return std::get<Error>(std::move(storage_)).with_context(ctx);
  }

 private:
  std::variant<T, Error> storage_;
};

/// Result<void> analogue: success or an Error.
class [[nodiscard]] Status {
 public:
  Status() = default;                                   // success
  Status(Error error) : error_(std::move(error)) {}     // NOLINT(google-explicit-constructor)

  static Status ok_status() { return {}; }

  bool ok() const noexcept { return !error_.has_value(); }
  explicit operator bool() const noexcept { return ok(); }

  const Error& error() const {
    assert(!ok());
    return *error_;
  }

  Status context(std::string_view ctx) && {
    if (ok()) return {};
    return error_->with_context(ctx);
  }

 private:
  std::optional<Error> error_;
};

/// Convenience factories.
inline Error err_invalid(std::string message) {
  return {ErrorCode::kInvalidArgument, std::move(message)};
}
inline Error err_parse(std::string message) {
  return {ErrorCode::kParse, std::move(message)};
}
inline Error err_validation(std::string message) {
  return {ErrorCode::kValidation, std::move(message)};
}
inline Error err_not_found(std::string message) {
  return {ErrorCode::kNotFound, std::move(message)};
}
inline Error err_state(std::string message) {
  return {ErrorCode::kState, std::move(message)};
}
inline Error err_io(std::string message) {
  return {ErrorCode::kIo, std::move(message)};
}
inline Error err_timeout(std::string message) {
  return {ErrorCode::kTimeout, std::move(message)};
}
inline Error err_rpc(std::string message) {
  return {ErrorCode::kRpc, std::move(message)};
}
inline Error err_aborted(std::string message) {
  return {ErrorCode::kAborted, std::move(message)};
}
inline Error err_unsupported(std::string message) {
  return {ErrorCode::kUnsupported, std::move(message)};
}
inline Error err_internal(std::string message) {
  return {ErrorCode::kInternal, std::move(message)};
}

}  // namespace excovery

/// Propagate the error of a Result/Status expression out of the enclosing
/// function (which must itself return a Result or Status).
#define EXC_TRY(expr)                          \
  do {                                         \
    auto exc_try_status_ = (expr);             \
    if (!exc_try_status_.ok())                 \
      return std::move(exc_try_status_).error(); \
  } while (false)

/// Assign the value of a Result expression to `lhs`, or propagate its error.
#define EXC_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return std::move(tmp).error();   \
  lhs = std::move(tmp).value()

#define EXC_ASSIGN_CONCAT_INNER(a, b) a##b
#define EXC_ASSIGN_CONCAT(a, b) EXC_ASSIGN_CONCAT_INNER(a, b)
#define EXC_ASSIGN_OR_RETURN(lhs, expr) \
  EXC_ASSIGN_OR_RETURN_IMPL(EXC_ASSIGN_CONCAT(exc_res_, __LINE__), lhs, expr)
