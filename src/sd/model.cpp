#include "sd/model.hpp"

#include "common/strings.hpp"

namespace excovery::sd {

Result<SdRole> parse_role(const std::string& text) {
  std::string t = strings::to_lower(strings::trim(strings::strip_quotes(text)));
  if (t == "su" || t == "user" || t == "service_user") {
    return SdRole::kServiceUser;
  }
  if (t == "sm" || t == "manager" || t == "service_manager") {
    return SdRole::kServiceManager;
  }
  if (t == "scm" || t == "cache" || t == "service_cache_manager") {
    return SdRole::kServiceCacheManager;
  }
  return err_invalid("unknown SD role '" + text + "'");
}

std::string_view to_string(SdRole role) noexcept {
  switch (role) {
    case SdRole::kServiceUser: return "SU";
    case SdRole::kServiceManager: return "SM";
    case SdRole::kServiceCacheManager: return "SCM";
  }
  return "?";
}

}  // namespace excovery::sd
