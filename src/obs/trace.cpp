#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <fstream>

namespace excovery::obs {

std::uint32_t current_thread_tid() {
  static std::atomic<std::uint32_t> next{1};
  thread_local std::uint32_t tid = next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::int64_t TraceBuffer::wall_now_ns() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - wall_origin_)
      .count();
}

void TraceBuffer::push(TraceEvent event) {
  std::lock_guard lock(mutex_);
  events_.push_back(std::move(event));
}

void TraceBuffer::complete(Track track, std::uint32_t tid, std::string name,
                           std::string category, std::int64_t ts_ns,
                           std::int64_t dur_ns, std::string args_json) {
  if (!enabled_) return;
  TraceEvent event;
  event.track = track;
  event.phase = 'X';
  event.ts_ns = ts_ns;
  event.dur_ns = dur_ns < 0 ? 0 : dur_ns;
  event.tid = tid;
  event.name = std::move(name);
  event.category = std::move(category);
  event.args_json = std::move(args_json);
  push(std::move(event));
}

void TraceBuffer::instant(Track track, std::uint32_t tid, std::string name,
                          std::string category, std::int64_t ts_ns,
                          std::string args_json) {
  if (!enabled_) return;
  TraceEvent event;
  event.track = track;
  event.phase = 'i';
  event.ts_ns = ts_ns;
  event.tid = tid;
  event.name = std::move(name);
  event.category = std::move(category);
  event.args_json = std::move(args_json);
  push(std::move(event));
}

void TraceBuffer::async_begin(Track track, std::uint64_t id, std::string name,
                              std::string category, std::int64_t ts_ns,
                              std::string args_json) {
  if (!enabled_) return;
  TraceEvent event;
  event.track = track;
  event.phase = 'b';
  event.ts_ns = ts_ns;
  event.async_id = id;
  event.name = std::move(name);
  event.category = std::move(category);
  event.args_json = std::move(args_json);
  push(std::move(event));
}

void TraceBuffer::async_end(Track track, std::uint64_t id, std::string name,
                            std::string category, std::int64_t ts_ns) {
  if (!enabled_) return;
  TraceEvent event;
  event.track = track;
  event.phase = 'e';
  event.ts_ns = ts_ns;
  event.async_id = id;
  event.name = std::move(name);
  event.category = std::move(category);
  push(std::move(event));
}

void TraceBuffer::counter(Track track, std::uint32_t tid, std::string name,
                          std::int64_t ts_ns, double value) {
  if (!enabled_) return;
  TraceEvent event;
  event.track = track;
  event.phase = 'C';
  event.ts_ns = ts_ns;
  event.tid = tid;
  event.name = std::move(name);
  char buf[64];
  std::snprintf(buf, sizeof buf, "{\"value\":%.17g}", value);
  event.args_json = buf;
  push(std::move(event));
}

std::size_t TraceBuffer::size() const {
  std::lock_guard lock(mutex_);
  return events_.size();
}

namespace {

void append_event_json(std::string& out, const TraceEvent& e) {
  char buf[160];
  out += "{\"name\":\"";
  out += json_escape(e.name);
  out += "\",\"cat\":\"";
  out += json_escape(e.category.empty() ? "excovery" : e.category);
  out += "\",\"ph\":\"";
  out += e.phase;
  out += '"';
  // trace_event timestamps are microseconds; keep sub-microsecond detail
  // with a fractional part.
  std::snprintf(buf, sizeof buf, ",\"ts\":%.3f",
                static_cast<double>(e.ts_ns) / 1000.0);
  out += buf;
  if (e.phase == 'X') {
    std::snprintf(buf, sizeof buf, ",\"dur\":%.3f",
                  static_cast<double>(e.dur_ns) / 1000.0);
    out += buf;
  }
  std::snprintf(buf, sizeof buf, ",\"pid\":%u",
                static_cast<unsigned>(e.track));
  out += buf;
  if (e.phase == 'b' || e.phase == 'e') {
    std::snprintf(buf, sizeof buf, ",\"id\":\"0x%llx\"",
                  static_cast<unsigned long long>(e.async_id));
    out += buf;
    out += ",\"tid\":0";
  } else {
    std::snprintf(buf, sizeof buf, ",\"tid\":%u", e.tid);
    out += buf;
  }
  if (e.phase == 'i') out += ",\"s\":\"t\"";
  if (!e.args_json.empty()) {
    out += ",\"args\":";
    out += e.args_json;
  }
  out += '}';
}

void append_metadata_json(std::string& out, unsigned pid, const char* name) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
                "\"tid\":0,\"args\":{\"name\":\"%s\"}}",
                pid, name);
  out += buf;
}

}  // namespace

std::string TraceBuffer::to_json() const {
  std::vector<TraceEvent> events;
  {
    std::lock_guard lock(mutex_);
    events = events_;
  }
  // Stable sort by (track, ts) keeps each track chronological while leaving
  // equal-timestamp events in emission order.
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.track != b.track) return a.track < b.track;
                     return a.ts_ns < b.ts_ns;
                   });

  std::string out;
  out.reserve(events.size() * 96 + 512);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  append_metadata_json(out, static_cast<unsigned>(Track::kWall),
                       "excovery wall clock");
  out += ",\n";
  append_metadata_json(out, static_cast<unsigned>(Track::kSim),
                       "excovery simulated time");
  for (const TraceEvent& e : events) {
    out += ",\n";
    append_event_json(out, e);
  }
  out += "\n]}\n";
  return out;
}

Status TraceBuffer::write_json(const std::string& path) const {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return err_io("cannot open trace output file " + path);
  std::string json = to_json();
  file.write(json.data(), static_cast<std::streamsize>(json.size()));
  file.flush();
  if (!file) return err_io("failed writing trace output file " + path);
  return Status::ok_status();
}

}  // namespace excovery::obs
