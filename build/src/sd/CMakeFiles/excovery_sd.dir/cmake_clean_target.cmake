file(REMOVE_RECURSE
  "libexcovery_sd.a"
)
