// Serialise DOM trees back to XML text.
//
// Both writers are two-pass: a counting pass computes the exact output
// size (escapes and indentation included), then the emit pass streams into
// a pre-sized buffer — no reallocation, no per-element temporaries.  The
// canonical writer additionally streams into an arbitrary Sink, so content
// addressing can hash canonical bytes without materialising them
// (core::campaign_digest feeds them straight into SHA-256).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "xml/dom.hpp"

namespace excovery::xml {

struct WriteOptions {
  bool pretty = true;       ///< newline + indentation per nesting level
  int indent_width = 2;     ///< spaces per level when pretty
  bool declaration = true;  ///< emit <?xml version="1.0" encoding="UTF-8"?>
};

/// Byte sink for streaming serialisation.  Chunks arrive in document
/// order; their concatenation is exactly the serialised text.
class Sink {
 public:
  virtual ~Sink() = default;
  virtual void write(const char* data, std::size_t size) = 0;
  void write(std::string_view chunk) { write(chunk.data(), chunk.size()); }
};

/// Serialise an element subtree.
std::string write(const Element& root, const WriteOptions& options = {});

/// Serialise a document.
std::string write(const Document& doc, const WriteOptions& options = {});

/// Canonical serialisation for content addressing: no XML declaration, no
/// indentation or inter-element whitespace, attributes sorted by name, and
/// character data reduced to the element's trimmed text() (emitted before
/// any children).  Two documents that differ only in attribute order,
/// indentation or surrounding whitespace canonicalise to the same string;
/// any change to names, attribute values, text or child order changes it.
std::string write_canonical(const Element& root);

/// Stream the canonical bytes into a sink without building a string.
void write_canonical(const Element& root, Sink& sink);

/// Exact byte count of write_canonical(root) without producing output.
std::size_t canonical_size(const Element& root);

}  // namespace excovery::xml
