// Unit tests for the network simulator: addressing, topology, routing,
// delivery, connection control, capture and tagging.
#include <gtest/gtest.h>

#include "net/network.hpp"
#include "net/routing.hpp"
#include "net/topology.hpp"
#include "sim/scheduler.hpp"

namespace excovery::net {
namespace {

Packet make_packet(Address dst, Port port = 5000,
                   std::size_t payload_size = 10) {
  Packet packet;
  packet.dst = dst;
  packet.src_port = port;
  packet.dst_port = port;
  packet.payload.assign(payload_size, 0x42);
  return packet;
}

// ---- Address -----------------------------------------------------------------

TEST(Address, FormattingAndParsing) {
  Address a(10, 0, 1, 2);
  EXPECT_EQ(a.to_string(), "10.0.1.2");
  Result<Address> parsed = Address::parse("10.0.1.2");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), a);
  EXPECT_FALSE(Address::parse("10.0.1").ok());
  EXPECT_FALSE(Address::parse("10.0.1.999").ok());
  EXPECT_FALSE(Address::parse("a.b.c.d").ok());
}

TEST(Address, Classification) {
  EXPECT_TRUE(Address::sd_multicast().is_multicast());
  EXPECT_TRUE(Address(239, 255, 255, 253).is_multicast());
  EXPECT_FALSE(Address(10, 0, 0, 1).is_multicast());
  EXPECT_TRUE(Address::broadcast().is_broadcast());
  EXPECT_TRUE(Address().is_unspecified());
}

TEST(Address, NodeAddressesAreUnique) {
  EXPECT_NE(Address::for_node(1), Address::for_node(2));
  EXPECT_EQ(Address::for_node(257).to_string(), "10.0.1.1");
}

// ---- Topology -------------------------------------------------------------------

TEST(Topology, GeneratorsProduceExpectedShape) {
  Topology chain = Topology::chain(5);
  EXPECT_EQ(chain.node_count(), 5u);
  EXPECT_EQ(chain.link_count(), 4u);
  EXPECT_TRUE(chain.connected());

  Topology grid = Topology::grid(3, 4);
  EXPECT_EQ(grid.node_count(), 12u);
  EXPECT_EQ(grid.link_count(), 3u * 3u + 2u * 4u);  // 17
  EXPECT_TRUE(grid.connected());

  Topology mesh = Topology::full_mesh(6);
  EXPECT_EQ(mesh.link_count(), 15u);
  EXPECT_TRUE(mesh.connected());
}

TEST(Topology, RandomGeometricIsConnectedAndDeterministic) {
  Result<Topology> a = Topology::random_geometric(20, 0.4, 7);
  Result<Topology> b = Topology::random_geometric(20, 0.4, 7);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(a.value().connected());
  EXPECT_EQ(a.value().link_count(), b.value().link_count());
  // Unconnectable parameters fail cleanly.
  EXPECT_FALSE(Topology::random_geometric(50, 0.01, 7).ok());
}

TEST(Topology, RejectsBadLinks) {
  Topology topo = Topology::chain(3);
  EXPECT_FALSE(topo.connect(0, 0).ok());    // self link
  EXPECT_FALSE(topo.connect(0, 1).ok());    // duplicate
  EXPECT_FALSE(topo.connect(0, 99).ok());   // out of range
}

TEST(Topology, LookupByNameAndAddress) {
  Topology topo = Topology::chain(3);
  Result<NodeId> found = topo.find("n1");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value(), 1u);
  EXPECT_FALSE(topo.find("nope").ok());
  Result<NodeId> by_addr = topo.find(topo.node(2).address);
  ASSERT_TRUE(by_addr.ok());
  EXPECT_EQ(by_addr.value(), 2u);
}

TEST(Topology, DisconnectedDetected) {
  Topology topo;
  topo.add_node("a");
  topo.add_node("b");
  EXPECT_FALSE(topo.connected());
}

// ---- LinkSet ---------------------------------------------------------------------

TEST(LinkSet, InsertEraseContainsNormaliseEndpoints) {
  LinkSet set;
  EXPECT_TRUE(set.empty());
  EXPECT_TRUE(set.insert(3, 1));
  EXPECT_FALSE(set.insert(1, 3));  // same undirected link
  EXPECT_TRUE(set.contains(1, 3));
  EXPECT_TRUE(set.contains(3, 1));
  EXPECT_FALSE(set.contains(1, 2));
  EXPECT_TRUE(set.insert(0, 2));
  EXPECT_EQ(set.size(), 2u);
  // Iteration yields packed keys in ascending (a, b) order.
  std::vector<PackedLink> keys(set.begin(), set.end());
  EXPECT_EQ(keys, (std::vector<PackedLink>{pack_link(0, 2), pack_link(1, 3)}));
  EXPECT_TRUE(set.erase(3, 1));
  EXPECT_FALSE(set.erase(3, 1));
  EXPECT_FALSE(set.contains(1, 3));
  set.clear();
  EXPECT_TRUE(set.empty());
}

// ---- Routing ---------------------------------------------------------------------

TEST(Routing, HopCountsOnChain) {
  Topology chain = Topology::chain(6);
  RoutingTable routing(chain);
  EXPECT_EQ(routing.hop_count(0, 5), 5);
  EXPECT_EQ(routing.hop_count(0, 0), 0);
  EXPECT_EQ(routing.hop_count(2, 4), 2);
  EXPECT_EQ(routing.next_hop(0, 5), 1u);
  std::vector<NodeId> path = routing.path(0, 3);
  EXPECT_EQ(path, (std::vector<NodeId>{0, 1, 2, 3}));
}

TEST(Routing, GridUsesShortestPaths) {
  Topology grid = Topology::grid(4, 4);
  RoutingTable routing(grid);
  // Corner to corner: manhattan distance 6.
  EXPECT_EQ(routing.hop_count(0, 15), 6);
}

TEST(Routing, OutOfRangeNodeIdsAreRejectedNotUndefined) {
  Topology chain = Topology::chain(4);
  RoutingTable routing(chain);
  // Every query entry point must reject ids beyond the topology (including
  // kInvalidNode itself) instead of indexing out of bounds.
  for (NodeId bad : {NodeId{4}, NodeId{100}, kInvalidNode}) {
    EXPECT_EQ(routing.next_hop(bad, 1), kInvalidNode);
    EXPECT_EQ(routing.next_hop(1, bad), kInvalidNode);
    EXPECT_EQ(routing.next_hop(bad, bad), kInvalidNode);
    EXPECT_EQ(routing.hop_count(bad, 1), -1);
    EXPECT_EQ(routing.hop_count(1, bad), -1);
    EXPECT_TRUE(routing.path(bad, 1).empty());
    EXPECT_TRUE(routing.path(1, bad).empty());
  }
  // Out-of-range link toggles are ignored, valid queries still work.
  routing.set_link_enabled(99, 1, false);
  routing.set_link_enabled(1, kInvalidNode, false);
  routing.set_link_enabled(2, 2, false);
  EXPECT_EQ(routing.hop_count(0, 3), 3);
}

TEST(Routing, LazyRowCacheIsBoundedAndInvisible) {
  Topology grid = Topology::grid(6, 6);
  RoutingTable routing(grid);
  routing.set_row_cache_capacity(4);
  EXPECT_EQ(routing.row_cache_capacity(), 4u);
  // Query from more sources than the cache holds; answers must match a
  // fresh unbounded table.
  RoutingTable reference(grid);
  for (NodeId from = 0; from < 36; ++from) {
    for (NodeId to = 0; to < 36; to += 5) {
      ASSERT_EQ(routing.hop_count(from, to), reference.hop_count(from, to));
      ASSERT_EQ(routing.next_hop(from, to), reference.next_hop(from, to));
    }
    EXPECT_LE(routing.cached_row_count(), 4u);
  }
  // Shrinking a warm cache evicts immediately.
  reference.set_row_cache_capacity(2);
  EXPECT_LE(reference.cached_row_count(), 2u);
  EXPECT_EQ(reference.hop_count(0, 35), routing.hop_count(0, 35));
}

TEST(Routing, SetLinkEnabledIgnoresLinksOutsideTheTopology) {
  Topology chain = Topology::chain(4);
  RoutingTable routing(chain);
  EXPECT_EQ(routing.hop_count(0, 3), 3);
  // 0-2 is not a topology link: disabling it must be a no-op, and a later
  // "enable" of it must not invent an edge.
  routing.set_link_enabled(0, 2, false);
  EXPECT_EQ(routing.hop_count(0, 3), 3);
  routing.set_link_enabled(0, 2, true);
  EXPECT_EQ(routing.hop_count(0, 2), 2);
}

TEST(Routing, UnreachableIsSignalled) {
  Topology topo;
  topo.add_node("a");
  topo.add_node("b");
  RoutingTable routing(topo);
  EXPECT_EQ(routing.hop_count(0, 1), -1);
  EXPECT_EQ(routing.next_hop(0, 1), kInvalidNode);
  EXPECT_TRUE(routing.path(0, 1).empty());
}

// ---- Network: unicast ----------------------------------------------------------------

TEST(Network, UnicastDeliversAcrossHops) {
  sim::Scheduler scheduler;
  Network network(scheduler, Topology::chain(4), 1);
  std::vector<Packet> received;
  network.bind(3, 5000, [&](NodeId, const Packet& p) { received.push_back(p); });

  Result<std::uint64_t> uid =
      network.send(0, make_packet(network.topology().node(3).address));
  ASSERT_TRUE(uid.ok());
  scheduler.run();

  ASSERT_EQ(received.size(), 1u);
  // Route tracking: every hop recorded (§IV-A3).
  EXPECT_EQ(received[0].route, (std::vector<NodeId>{0, 1, 2, 3}));
  EXPECT_EQ(network.stats().delivered, 1u);
  EXPECT_EQ(network.stats().forwarded, 2u);
}

TEST(Network, DeliveryTakesPositiveTime) {
  sim::Scheduler scheduler;
  Network network(scheduler, Topology::chain(3), 1);
  sim::SimTime arrival;
  network.bind(2, 5000,
               [&](NodeId, const Packet&) { arrival = scheduler.now(); });
  (void)network.send(0, make_packet(network.topology().node(2).address));
  scheduler.run();
  EXPECT_GT(arrival, sim::SimTime::zero());
  // Two hops of >= 500us base delay each.
  EXPECT_GE(arrival.nanos(), 2 * 500'000);
}

TEST(Network, SourceAddressEnforced) {
  sim::Scheduler scheduler;
  Network network(scheduler, Topology::chain(2), 1);
  Packet packet = make_packet(network.topology().node(1).address);
  packet.src = network.topology().node(1).address;  // wrong: not node 0's
  EXPECT_FALSE(network.send(0, std::move(packet)).ok());
}

TEST(Network, UnknownDestinationCounted) {
  sim::Scheduler scheduler;
  Network network(scheduler, Topology::chain(2), 1);
  (void)network.send(0, make_packet(Address(10, 9, 9, 9)));
  scheduler.run();
  EXPECT_EQ(network.stats().dropped_no_route, 1u);
}

TEST(Network, NoHandlerCounted) {
  sim::Scheduler scheduler;
  Network network(scheduler, Topology::chain(2), 1);
  (void)network.send(0, make_packet(network.topology().node(1).address));
  scheduler.run();
  EXPECT_EQ(network.stats().dropped_no_handler, 1u);
}

TEST(Network, LossyLinkDropsFraction) {
  sim::Scheduler scheduler;
  LinkModel lossy;
  lossy.loss = 0.5;
  Network network(scheduler, Topology::chain(2, lossy), 3);
  int received = 0;
  network.bind(1, 5000, [&](NodeId, const Packet&) { ++received; });
  for (int i = 0; i < 400; ++i) {
    (void)network.send(0, make_packet(network.topology().node(1).address));
  }
  scheduler.run();
  EXPECT_NEAR(received, 200, 50);
  EXPECT_EQ(network.stats().dropped_loss + network.stats().delivered, 400u);
}

// ---- Network: multicast -----------------------------------------------------------------

TEST(Network, MulticastFloodsToMembers) {
  sim::Scheduler scheduler;
  Network network(scheduler, Topology::grid(3, 3), 1);
  Address group = Address::sd_multicast();
  std::vector<NodeId> receivers;
  for (NodeId id : {2u, 4u, 8u}) {
    network.join_group(id, group);
    network.bind(id, 5353, [&receivers](NodeId node, const Packet&) {
      receivers.push_back(node);
    });
  }
  // Non-member with handler must NOT receive.
  bool nonmember_got = false;
  network.bind(5, 5353,
               [&](NodeId, const Packet&) { nonmember_got = true; });

  (void)network.send(0, make_packet(group, 5353));
  scheduler.run();

  std::sort(receivers.begin(), receivers.end());
  EXPECT_EQ(receivers, (std::vector<NodeId>{2, 4, 8}));
  EXPECT_FALSE(nonmember_got);
}

TEST(Network, MulticastLoopback) {
  sim::Scheduler scheduler;
  Network network(scheduler, Topology::chain(2), 1);
  Address group = Address::sd_multicast();
  network.join_group(0, group);
  int self_received = 0;
  network.bind(0, 5353, [&](NodeId, const Packet&) { ++self_received; });
  (void)network.send(0, make_packet(group, 5353));
  scheduler.run();
  EXPECT_EQ(self_received, 1);
}

TEST(Network, MulticastDuplicateSuppression) {
  sim::Scheduler scheduler;
  // Dense mesh: many redundant paths, each member must deliver once.
  Network network(scheduler, Topology::full_mesh(6), 1);
  Address group = Address::sd_multicast();
  std::map<NodeId, int> deliveries;
  for (NodeId id = 1; id < 6; ++id) {
    network.join_group(id, group);
    network.bind(id, 5353, [&deliveries](NodeId node, const Packet&) {
      deliveries[node]++;
    });
  }
  (void)network.send(0, make_packet(group, 5353));
  scheduler.run();
  ASSERT_EQ(deliveries.size(), 5u);
  for (const auto& [node, count] : deliveries) EXPECT_EQ(count, 1);
}

TEST(Network, MulticastTtlLimitsReach) {
  sim::Scheduler scheduler;
  Network network(scheduler, Topology::chain(6), 1);
  Address group = Address::sd_multicast();
  std::vector<NodeId> receivers;
  for (NodeId id = 1; id < 6; ++id) {
    network.join_group(id, group);
    network.bind(id, 5353, [&receivers](NodeId node, const Packet&) {
      receivers.push_back(node);
    });
  }
  Packet packet = make_packet(group, 5353);
  packet.ttl = 2;  // reaches nodes 1 and 2 only
  (void)network.send(0, std::move(packet));
  scheduler.run();
  std::sort(receivers.begin(), receivers.end());
  EXPECT_EQ(receivers, (std::vector<NodeId>{1, 2}));
}

TEST(Network, BroadcastReachesEveryHandler) {
  sim::Scheduler scheduler;
  Network network(scheduler, Topology::grid(2, 3), 1);
  int received = 0;
  for (NodeId id = 1; id < 6; ++id) {
    network.bind(id, 9, [&](NodeId, const Packet&) { ++received; });
  }
  (void)network.send(0, make_packet(Address::broadcast(), 9));
  scheduler.run();
  EXPECT_EQ(received, 5);
}

// ---- Connection control (§IV-A2) -----------------------------------------------------

TEST(Network, InterfaceDownBlocksTransmit) {
  sim::Scheduler scheduler;
  Network network(scheduler, Topology::chain(2), 1);
  int received = 0;
  network.bind(1, 5000, [&](NodeId, const Packet&) { ++received; });
  network.set_interface_up(0, Direction::kTransmit, false);
  (void)network.send(0, make_packet(network.topology().node(1).address));
  scheduler.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(network.stats().dropped_interface, 1u);

  network.set_interface_up(0, Direction::kTransmit, true);
  (void)network.send(0, make_packet(network.topology().node(1).address));
  scheduler.run();
  EXPECT_EQ(received, 1);
}

TEST(Network, InterfaceDownBlocksReceive) {
  sim::Scheduler scheduler;
  Network network(scheduler, Topology::chain(2), 1);
  int received = 0;
  network.bind(1, 5000, [&](NodeId, const Packet&) { ++received; });
  network.set_interface_up(1, Direction::kReceive, false);
  (void)network.send(0, make_packet(network.topology().node(1).address));
  scheduler.run();
  EXPECT_EQ(received, 0);
}

TEST(Network, DownedRelayBreaksForwarding) {
  sim::Scheduler scheduler;
  Network network(scheduler, Topology::chain(3), 1);
  int received = 0;
  network.bind(2, 5000, [&](NodeId, const Packet&) { ++received; });
  network.set_interface_up(1, Direction::kReceive, false);
  (void)network.send(0, make_packet(network.topology().node(2).address));
  scheduler.run();
  EXPECT_EQ(received, 0);
}

TEST(Network, FilterDrop) {
  sim::Scheduler scheduler;
  Network network(scheduler, Topology::chain(2), 1);
  int received = 0;
  network.bind(1, 5000, [&](NodeId, const Packet&) { ++received; });
  FilterHandle handle = network.add_filter(
      FilterScope{NodeId{0}, Direction::kTransmit},
      [](NodeId, Direction, Packet&) { return FilterVerdict::drop(); });
  (void)network.send(0, make_packet(network.topology().node(1).address));
  scheduler.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(network.stats().dropped_filter, 1u);

  network.remove_filter(handle);
  (void)network.send(0, make_packet(network.topology().node(1).address));
  scheduler.run();
  EXPECT_EQ(received, 1);
}

TEST(Network, FilterDelayPostponesDelivery) {
  sim::Scheduler scheduler;
  Network network(scheduler, Topology::chain(2), 1);
  sim::SimTime normal_arrival;
  sim::SimTime delayed_arrival;
  network.bind(1, 5000, [&](NodeId, const Packet&) {
    if (normal_arrival == sim::SimTime::zero()) {
      normal_arrival = scheduler.now();
    } else {
      delayed_arrival = scheduler.now();
    }
  });
  (void)network.send(0, make_packet(network.topology().node(1).address));
  scheduler.run();

  network.add_filter(
      FilterScope{NodeId{1}, Direction::kReceive},
      [](NodeId, Direction, Packet&) {
        return FilterVerdict::delayed(sim::SimDuration::from_millis(100));
      });
  sim::SimTime send_time = scheduler.now();
  (void)network.send(0, make_packet(network.topology().node(1).address));
  scheduler.run();
  EXPECT_GE((delayed_arrival - send_time).nanos(),
            sim::SimDuration::from_millis(100).nanos());
}

TEST(Network, FilterCanModifyContent) {
  sim::Scheduler scheduler;
  Network network(scheduler, Topology::chain(2), 1);
  Bytes seen;
  network.bind(1, 5000,
               [&](NodeId, const Packet& p) { seen = p.payload; });
  network.add_filter(FilterScope{std::nullopt, Direction::kTransmit},
                     [](NodeId, Direction, Packet& packet) {
                       if (!packet.payload.empty()) packet.payload[0] = 0xFF;
                       return FilterVerdict::pass();
                     });
  (void)network.send(0, make_packet(network.topology().node(1).address));
  scheduler.run();
  ASSERT_FALSE(seen.empty());
  EXPECT_EQ(seen[0], 0xFF);
}

// ---- Measurement (§IV-A3, §IV-B2) ------------------------------------------------------

TEST(Network, CapturesAtBothEndpoints) {
  sim::Scheduler scheduler;
  Network network(scheduler, Topology::chain(2), 1);
  network.bind(1, 5000, [](NodeId, const Packet&) {});
  (void)network.send(0, make_packet(network.topology().node(1).address));
  scheduler.run();
  ASSERT_EQ(network.captures(0).size(), 1u);
  ASSERT_EQ(network.captures(1).size(), 1u);
  EXPECT_EQ(network.captures(0)[0].direction, Direction::kTransmit);
  EXPECT_EQ(network.captures(1)[0].direction, Direction::kReceive);
  // Unaltered content.
  EXPECT_EQ(network.captures(1)[0].packet.payload,
            network.captures(0)[0].packet.payload);
}

TEST(Network, CaptureUsesLocalClock) {
  sim::Scheduler scheduler;
  Network network(scheduler, Topology::chain(2), 1);
  sim::ClockModel model;
  model.offset = sim::SimDuration::from_seconds(100);
  network.set_clock_model(1, model);
  network.bind(1, 5000, [](NodeId, const Packet&) {});
  (void)network.send(0, make_packet(network.topology().node(1).address));
  scheduler.run();
  ASSERT_EQ(network.captures(1).size(), 1u);
  EXPECT_GT(network.captures(1)[0].local_time,
            sim::SimTime::from_seconds(99));
}

TEST(Network, TaggerIncrementsPerSender) {
  sim::Scheduler scheduler;
  Network network(scheduler, Topology::chain(2), 1);
  network.set_capture_enabled(true);
  for (int i = 0; i < 3; ++i) {
    (void)network.send(0, make_packet(network.topology().node(1).address));
  }
  scheduler.run();
  const auto& captures = network.captures(0);
  ASSERT_EQ(captures.size(), 3u);
  EXPECT_EQ(captures[0].packet.tag, 1);
  EXPECT_EQ(captures[1].packet.tag, 2);
  EXPECT_EQ(captures[2].packet.tag, 3);
}

TEST(Network, UidsAreGloballyUnique) {
  sim::Scheduler scheduler;
  Network network(scheduler, Topology::chain(3), 1);
  std::set<std::uint64_t> uids;
  for (NodeId sender : {0u, 1u, 2u}) {
    for (int i = 0; i < 5; ++i) {
      Packet p = make_packet(network.topology().node(0).address);
      Result<std::uint64_t> uid = network.send(sender, std::move(p));
      ASSERT_TRUE(uid.ok());
      uids.insert(uid.value());
    }
  }
  EXPECT_EQ(uids.size(), 15u);
}

TEST(Network, CaptureDisableAndDrain) {
  sim::Scheduler scheduler;
  Network network(scheduler, Topology::chain(2), 1);
  network.set_capture_enabled(false);
  (void)network.send(0, make_packet(network.topology().node(1).address));
  scheduler.run();
  EXPECT_TRUE(network.captures(0).empty());

  network.set_capture_enabled(true);
  (void)network.send(0, make_packet(network.topology().node(1).address));
  scheduler.run();
  std::vector<CapturedPacket> drained = network.take_captures(0);
  EXPECT_EQ(drained.size(), 1u);
  EXPECT_TRUE(network.captures(0).empty());
}

TEST(Network, WireImageRoundTrip) {
  CapturedPacket captured;
  captured.direction = Direction::kTransmit;
  captured.packet = make_packet(Address(10, 0, 0, 2), 5353, 32);
  captured.packet.src = Address(10, 0, 0, 1);
  captured.packet.tag = 77;
  captured.packet.uid = 123456789;
  captured.packet.route = {0, 3, 5};
  Bytes wire = capture_to_wire(captured);
  Result<WireImage> back = capture_from_wire(wire);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().direction, Direction::kTransmit);
  EXPECT_EQ(back.value().packet.uid, 123456789u);
  EXPECT_EQ(back.value().packet.tag, 77);
  EXPECT_EQ(back.value().packet.route, (std::vector<NodeId>{0, 3, 5}));
  EXPECT_EQ(back.value().packet.payload, captured.packet.payload);
}

TEST(Network, RunStateResetClearsDedupAndCaptures) {
  sim::Scheduler scheduler;
  Network network(scheduler, Topology::full_mesh(3), 1);
  Address group = Address::sd_multicast();
  network.join_group(1, group);
  int received = 0;
  network.bind(1, 5353, [&](NodeId, const Packet&) { ++received; });
  (void)network.send(0, make_packet(group, 5353));
  scheduler.run();
  EXPECT_EQ(received, 1);
  network.reset_run_state();
  EXPECT_TRUE(network.captures(0).empty());
  (void)network.send(0, make_packet(group, 5353));
  scheduler.run();
  EXPECT_EQ(received, 2);
}

TEST(Network, LinkDegradationAtRuntime) {
  sim::Scheduler scheduler;
  Network network(scheduler, Topology::chain(2), 1);
  LinkModel broken;
  broken.loss = 1.0;
  ASSERT_TRUE(network.set_link_model(0, 1, broken).ok());
  int received = 0;
  network.bind(1, 5000, [&](NodeId, const Packet&) { ++received; });
  (void)network.send(0, make_packet(network.topology().node(1).address));
  scheduler.run();
  EXPECT_EQ(received, 0);
  EXPECT_FALSE(network.set_link_model(0, 0, broken).ok());
}

TEST(Network, HopCountMeasurement) {
  sim::Scheduler scheduler;
  Network network(scheduler, Topology::chain(5), 1);
  EXPECT_EQ(network.hop_count(0, 4), 4);
  EXPECT_EQ(network.hop_count(1, 1), 0);
}

}  // namespace
}  // namespace excovery::net
