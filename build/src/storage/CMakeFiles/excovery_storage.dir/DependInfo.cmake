
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/conditioning.cpp" "src/storage/CMakeFiles/excovery_storage.dir/conditioning.cpp.o" "gcc" "src/storage/CMakeFiles/excovery_storage.dir/conditioning.cpp.o.d"
  "/root/repo/src/storage/database.cpp" "src/storage/CMakeFiles/excovery_storage.dir/database.cpp.o" "gcc" "src/storage/CMakeFiles/excovery_storage.dir/database.cpp.o.d"
  "/root/repo/src/storage/level2.cpp" "src/storage/CMakeFiles/excovery_storage.dir/level2.cpp.o" "gcc" "src/storage/CMakeFiles/excovery_storage.dir/level2.cpp.o.d"
  "/root/repo/src/storage/package.cpp" "src/storage/CMakeFiles/excovery_storage.dir/package.cpp.o" "gcc" "src/storage/CMakeFiles/excovery_storage.dir/package.cpp.o.d"
  "/root/repo/src/storage/repository.cpp" "src/storage/CMakeFiles/excovery_storage.dir/repository.cpp.o" "gcc" "src/storage/CMakeFiles/excovery_storage.dir/repository.cpp.o.d"
  "/root/repo/src/storage/table.cpp" "src/storage/CMakeFiles/excovery_storage.dir/table.cpp.o" "gcc" "src/storage/CMakeFiles/excovery_storage.dir/table.cpp.o.d"
  "/root/repo/src/storage/warehouse.cpp" "src/storage/CMakeFiles/excovery_storage.dir/warehouse.cpp.o" "gcc" "src/storage/CMakeFiles/excovery_storage.dir/warehouse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/excovery_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/excovery_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
