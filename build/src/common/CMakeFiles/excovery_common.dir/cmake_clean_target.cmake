file(REMOVE_RECURSE
  "libexcovery_common.a"
)
