// Framework overhead ablation (motivated by §IV-B: observation "has to be
// done in the least invasive way" and §II-B's concern that measuring must
// not perturb the measured system).
//
// google-benchmark microbenchmarks of every framework hot path: event
// recording, packet capture, XML description parsing, schema validation,
// treatment plan generation, conditioning, and a full tiny experiment.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"
#include "storage/conditioning.hpp"
#include "xml/parser.hpp"

using namespace excovery;

namespace {

core::ExperimentDescription make_description(int replications = 10) {
  core::scenario::TwoPartyOptions options;
  options.replications = replications;
  options.pairs_levels = {2, 5};
  options.bw_levels = {10, 50, 100};
  options.loss_levels = {0.0, 0.2};
  return bench::must(core::scenario::two_party_sd(options), "description");
}

void BM_DescriptionParse(benchmark::State& state) {
  std::string xml_text = make_description().to_xml_text();
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::ExperimentDescription::parse(xml_text));
  }
  state.SetBytesProcessed(
      static_cast<std::int64_t>(xml_text.size() * state.iterations()));
}
BENCHMARK(BM_DescriptionParse);

void BM_DescriptionSerialize(benchmark::State& state) {
  core::ExperimentDescription description = make_description();
  for (auto _ : state) {
    benchmark::DoNotOptimize(description.to_xml_text());
  }
}
BENCHMARK(BM_DescriptionSerialize);

void BM_SchemaValidate(benchmark::State& state) {
  core::ExperimentDescription description = make_description();
  xml::Document doc = description.to_xml();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::description_schema().validate(doc.root()).ok());
  }
}
BENCHMARK(BM_SchemaValidate);

void BM_PlanGeneration(benchmark::State& state) {
  core::ExperimentDescription description =
      make_description(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::TreatmentPlan::generate(description));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * state.range(0) * 12);
}
BENCHMARK(BM_PlanGeneration)->Arg(10)->Arg(100)->Arg(1000);

void BM_EventRecording(benchmark::State& state) {
  sim::Scheduler scheduler;
  storage::Level2Store level2;
  core::EventRecorder recorder(scheduler, level2, nullptr);
  recorder.begin_run(1);
  Value parameter{"SM0"};
  for (auto _ : state) {
    recorder.record("SU0", "sd_service_add", parameter);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_EventRecording);

void BM_PacketCaptureToWire(benchmark::State& state) {
  net::CapturedPacket captured;
  captured.direction = net::Direction::kReceive;
  captured.packet.payload.assign(96, 0x42);
  captured.packet.route = {0, 1, 2};
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::capture_to_wire(captured));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_PacketCaptureToWire);

void BM_Conditioning(benchmark::State& state) {
  // A level-2 store with a realistic volume of raw data.
  storage::Level2Store level2;
  for (int run = 1; run <= 10; ++run) {
    for (const char* node : {"SM0", "SU0"}) {
      level2.add_sync({run, node, 1000, 0});
      for (int i = 0; i < 50; ++i) {
        level2.node(node).record_event(
            {run, run * 1000 + i, "sd_service_add", Value{"SM0"}});
        level2.node(node).record_packet(
            {run, run * 1000 + i, "SM0", Bytes(64, 0x11)});
      }
    }
    level2.mark_run_complete(run);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(storage::condition(level2, "<e/>", {}));
  }
  state.SetItemsProcessed(
      static_cast<std::int64_t>(state.iterations()) * 2000);
}
BENCHMARK(BM_Conditioning);

void BM_FullTinyExperiment(benchmark::State& state) {
  core::scenario::TwoPartyOptions options;
  options.replications = 1;
  options.environment_count = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::execute(options));
  }
}
BENCHMARK(BM_FullTinyExperiment)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  bench::banner("bench_ablation_overhead",
                "ablation: framework overhead on every measurement hot path");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
