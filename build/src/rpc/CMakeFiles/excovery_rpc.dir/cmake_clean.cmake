file(REMOVE_RECURSE
  "CMakeFiles/excovery_rpc.dir/codec.cpp.o"
  "CMakeFiles/excovery_rpc.dir/codec.cpp.o.d"
  "CMakeFiles/excovery_rpc.dir/endpoint.cpp.o"
  "CMakeFiles/excovery_rpc.dir/endpoint.cpp.o.d"
  "libexcovery_rpc.a"
  "libexcovery_rpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/excovery_rpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
