// Single-pass in-situ XML parser producing the arena DOM of dom.hpp.
//
// Supported: elements, attributes (single or double quoted), character data
// with the five predefined entities plus decimal/hex character references,
// CDATA sections, comments (skipped), processing instructions and XML
// declarations (skipped).  Errors carry line/column positions (computed
// lazily — the hot path never tracks them).
//
// Zero-copy contract: the input is retained inside the returned Document,
// and element names, attribute values and text segments are views into it
// whenever the source bytes need no transformation.  Only entity-bearing
// runs are decoded (once, into the document arena).  Whitespace between
// markup is the XML set exactly: space, tab, CR, LF — locale-free.
#pragma once

#include <string>
#include <string_view>

#include "common/error.hpp"
#include "xml/dom.hpp"

namespace excovery::xml {

/// Parse a complete document; exactly one root element is required.  The
/// input is copied once into the document's retained buffer.
Result<Document> parse(std::string_view input);

/// Zero-copy overload: takes ownership of the input buffer, which becomes
/// the document's backing store.
Result<Document> parse(std::string&& input);

/// Disambiguates string literals between the two overloads above.
inline Result<Document> parse(const char* input) {
  return parse(std::string_view(input));
}

/// Escape character data for inclusion in XML text ("&", "<", ">").
std::string escape_text(std::string_view text);

/// Escape an attribute value (also quotes).
std::string escape_attr(std::string_view text);

}  // namespace excovery::xml
