// Campaign runner: execute many independent experiments in parallel.
//
// Replications within one experiment are sequenced by the master (state is
// shared through the platform), but *experiments* — different descriptions,
// seeds, topologies — are pure functions of their inputs (DESIGN.md §6).
// The campaign runner fans a list of experiment configurations out over a
// thread pool and collects the conditioned packages in input order,
// bit-identical to sequential execution.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/thread_pool.hpp"
#include "core/description.hpp"
#include "core/master.hpp"
#include "core/platform.hpp"
#include "storage/package.hpp"
#include "storage/repository.hpp"

namespace excovery::core {

/// One experiment of a campaign.
struct CampaignEntry {
  std::string id;  ///< unique id (also the repository key, if archiving)
  ExperimentDescription description;
  SimPlatformConfig platform;   ///< topology + seed for this experiment
  MasterOptions master;
};

struct CampaignOutcome {
  std::string id;
  Result<storage::ExperimentPackage> package;

  CampaignOutcome(std::string id_, Result<storage::ExperimentPackage> p)
      : id(std::move(id_)), package(std::move(p)) {}
};

struct CampaignOptions {
  std::size_t workers = 0;  ///< 0 = hardware concurrency
  /// When set, every successful package is stored under its entry id.
  storage::Repository* archive = nullptr;
  /// Progress callback, invoked from worker threads as entries finish.
  std::function<void(const std::string& id, bool ok)> progress;
};

/// Execute all entries; outcomes are returned in input order.  Individual
/// failures do not stop the campaign.  Archiving (when requested) happens
/// on the calling thread after all entries finished.
std::vector<CampaignOutcome> run_campaign(std::vector<CampaignEntry> entries,
                                          const CampaignOptions& options = {});

}  // namespace excovery::core
