#include "rpc/endpoint.hpp"

namespace excovery::rpc {

void RpcServer::register_method(std::string name, Method method) {
  std::lock_guard lock(mutex_);
  methods_[std::move(name)] = std::move(method);
}

bool RpcServer::has_method(const std::string& name) const {
  std::lock_guard lock(mutex_);
  return methods_.find(name) != methods_.end();
}

std::size_t RpcServer::method_count() const {
  std::lock_guard lock(mutex_);
  return methods_.size();
}

Result<std::string> RpcServer::handle(const std::string& request_xml) {
  EXC_ASSIGN_OR_RETURN(MethodCall call, decode_call(request_xml));
  return encode(dispatch(call));
}

MethodResponse RpcServer::dispatch(const MethodCall& call) {
  Method method;
  {
    std::lock_guard lock(mutex_);
    auto it = methods_.find(call.method);
    if (it == methods_.end()) {
      return MethodResponse::fault(
          -32601, "method not found: " + call.method);
    }
    method = it->second;
  }
  // Hold the lock across execution as well: the prototype allows "only one
  // access at a time" per node object.  Re-acquire to serialise bodies.
  std::lock_guard lock(mutex_);
  Result<Value> outcome = method(call.params);
  if (!outcome.ok()) {
    return MethodResponse::fault(
        -32000, outcome.error().to_string());
  }
  return MethodResponse::success(std::move(outcome).value());
}

void InProcessTransport::attach(const std::string& endpoint,
                                RpcServer* server) {
  std::lock_guard lock(mutex_);
  servers_[endpoint] = server;
}

void InProcessTransport::detach(const std::string& endpoint) {
  std::lock_guard lock(mutex_);
  servers_.erase(endpoint);
}

std::size_t InProcessTransport::endpoint_count() const {
  std::lock_guard lock(mutex_);
  return servers_.size();
}

Result<std::string> InProcessTransport::round_trip(
    const std::string& endpoint, const std::string& request_xml) {
  RpcServer* server = nullptr;
  {
    std::lock_guard lock(mutex_);
    auto it = servers_.find(endpoint);
    if (it == servers_.end()) {
      return err_rpc("no server at endpoint '" + endpoint + "'");
    }
    server = it->second;
  }
  return server->handle(request_xml);
}

Result<Value> RpcClient::call(const std::string& method, ValueArray params) {
  MethodCall request{method, std::move(params)};
  EXC_ASSIGN_OR_RETURN(std::string response_xml,
                       transport_->round_trip(endpoint_, encode(request)));
  EXC_ASSIGN_OR_RETURN(MethodResponse response,
                       decode_response(response_xml));
  if (response.is_fault) {
    return err_rpc("fault " + std::to_string(response.fault_code) + " from " +
                   endpoint_ + "." + method + ": " + response.fault_string);
  }
  return std::move(response.result);
}

}  // namespace excovery::rpc
