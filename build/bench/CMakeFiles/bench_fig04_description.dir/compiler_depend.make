# Empty compiler generated dependencies file for bench_fig04_description.
# This may be replaced when dependencies are built.
