file(REMOVE_RECURSE
  "libexcovery_xml.a"
)
